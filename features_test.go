package p4update_test

import (
	"testing"
	"time"

	"p4update"
)

func TestFacadeFailureRecovery(t *testing.T) {
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(9),
		p4update.WithFailureRecovery(400*time.Millisecond, 3),
	)
	// Drop the first UNM on the 6->5 link.
	dropped := false
	net.Fabric().Drop = func(from, to p4update.NodeID, raw []byte) bool {
		if !dropped && from == 6 && to == 5 && len(raw) > 0 && raw[0] == 4 /* TypeUNM */ {
			dropped = true
			return true
		}
		return false
	}
	oldP, newP := p4update.SyntheticPaths()
	f, _ := net.AddFlow(0, 7, oldP, 1.0)
	u, err := net.UpdateFlow(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if !dropped {
		t.Fatal("drop not exercised")
	}
	if !u.Done() {
		t.Fatal("update did not recover")
	}
	if u.Retriggers == 0 {
		t.Error("no re-trigger recorded")
	}
}

func TestFacadeTwoPhaseCommit(t *testing.T) {
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(10),
		p4update.WithTwoPhaseCommit(),
		p4update.WithStrategy(p4update.StrategySL),
		p4update.WithInstallDelay(func() time.Duration { return 30 * time.Millisecond }),
	)
	oldP, newP := p4update.SyntheticPaths()
	f, _ := net.AddFlow(0, 7, oldP, 1.0)

	// Observe packet paths via per-switch taps.
	visited := map[uint32][]p4update.NodeID{}
	for _, id := range g.Nodes() {
		sw := net.Switch(id)
		sw.DataTap = func(s *p4update.Switch, d *p4update.DataPacket, _ p4update.PortID) {
			if !d.Probe {
				visited[d.Seq] = append(visited[d.Seq], s.ID)
			}
		}
	}
	seq := uint32(0)
	var inject func()
	inject = func() {
		seq++
		_ = net.SendPacket(f, seq)
		if net.Now() < 600*time.Millisecond {
			net.Schedule(5*time.Millisecond, inject)
		}
	}
	net.Schedule(0, inject)
	net.Schedule(40*time.Millisecond, func() {
		if _, err := net.UpdateFlow(f, newP); err != nil {
			t.Error(err)
		}
	})
	net.Run()

	eq := func(a, b []p4update.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for s, path := range visited {
		if !eq(path, oldP) && !eq(path, newP) {
			t.Fatalf("packet %d took a mixed path under 2PC: %v", s, path)
		}
	}
	if u, ok := net.Status(f, 2); !ok || !u.Done() {
		t.Fatal("update did not complete")
	}
}

func TestFacadeDestinationTree(t *testing.T) {
	g := p4update.B4()
	net := p4update.NewNetwork(g, p4update.WithSeed(11))
	root, _ := g.NodeByName("Virginia")
	base := p4update.ShortestPathTree(g, root)
	f, err := net.AddDestinationTree(root, base, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Every node reaches the root.
	for _, n := range g.Nodes() {
		if _, delivered := net.Forwarding(f, n); !delivered {
			t.Fatalf("node %d cannot reach the destination", n)
		}
	}
	// Baselines refuse destination trees.
	ez := p4update.NewNetwork(p4update.B4(), p4update.WithStrategy(p4update.StrategyEZSegway))
	if _, err := ez.UpdateDestinationTree(1, nil); err == nil {
		t.Error("ez-Segway strategy accepted a tree update")
	}
}

func TestFacadeEZSegwayQueuedUpdate(t *testing.T) {
	// Under StrategyEZSegway a second update of a flow still in flight is
	// returned immediately as a non-nil status in the Queued state and is
	// launched (and completed) once the first update finishes.
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(13),
		p4update.WithStrategy(p4update.StrategyEZSegway),
	)
	oldP, newP := p4update.SyntheticPaths()
	f, _ := net.AddFlow(0, 7, oldP, 1.0)
	u1, err := net.UpdateFlow(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := net.UpdateFlow(f, oldP)
	if err != nil {
		t.Fatal(err)
	}
	if u2 == nil {
		t.Fatal("deferred ez-Segway update returned nil status")
	}
	if !u2.Queued {
		t.Fatal("second update not in the Queued state")
	}
	net.Run()
	if !u1.Done() || !u2.Done() {
		t.Fatalf("updates did not complete: u1=%v u2=%v", u1.Done(), u2.Done())
	}
	if u2.Queued {
		t.Error("completed update still marked Queued")
	}
}

func TestFacadeChainedDualLayer(t *testing.T) {
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(12),
		p4update.WithStrategy(p4update.StrategyDL),
		p4update.WithChainedDualLayer(),
	)
	oldP, newP := p4update.SyntheticPaths()
	f, _ := net.AddFlow(0, 7, oldP, 1.0)
	if _, err := net.UpdateFlow(f, newP); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if _, err := net.UpdateFlow(f, oldP); err != nil {
		t.Fatal(err)
	}
	net.Run()
	u, ok := net.Status(f, 3)
	if !ok || !u.Done() {
		t.Fatal("chained DL update did not complete via the facade")
	}
}
