module p4update

go 1.22
