package p4update_test

import (
	"testing"
	"time"

	"p4update"
)

func TestQuickstartFlow(t *testing.T) {
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g, p4update.WithSeed(1))
	oldP, newP := p4update.SyntheticPaths()
	f, err := net.AddFlow(0, 7, oldP, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := net.UpdateFlow(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if !u.Done() {
		t.Fatal("update did not complete")
	}
	got, delivered := net.Forwarding(f, 0)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("forwarding %v, want %v", got, newP)
	}
	if stats := net.Stats(); stats.RulesApplied == 0 || stats.UNMReceived == 0 {
		t.Errorf("implausible stats: %+v", stats)
	}
}

func TestAllStrategiesConverge(t *testing.T) {
	for _, s := range []p4update.Strategy{
		p4update.StrategyAuto, p4update.StrategySL, p4update.StrategyDL,
		p4update.StrategyEZSegway, p4update.StrategyCentral,
	} {
		g := p4update.Synthetic()
		net := p4update.NewNetwork(g, p4update.WithSeed(3), p4update.WithStrategy(s))
		oldP, newP := p4update.SyntheticPaths()
		f, err := net.AddFlow(0, 7, oldP, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.UpdateFlow(f, newP); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		net.Run()
		u, ok := net.Status(f, 2)
		if !ok || !u.Done() {
			t.Fatalf("%v: update did not complete", s)
		}
		got, delivered := net.Forwarding(f, 0)
		if !delivered || len(got) != len(newP) {
			t.Fatalf("%v: forwarding %v, want %v", s, got, newP)
		}
	}
}

func TestStrategyStringer(t *testing.T) {
	want := map[p4update.Strategy]string{
		p4update.StrategyAuto:     "p4update-auto",
		p4update.StrategySL:       "p4update-sl",
		p4update.StrategyDL:       "p4update-dl",
		p4update.StrategyEZSegway: "ez-segway",
		p4update.StrategyCentral:  "central",
		p4update.Strategy(42):     "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestCongestionOptionEnforced(t *testing.T) {
	g := p4update.NewTopology("tiny")
	s1 := g.AddNode("s1", 0, 0)
	s2 := g.AddNode("s2", 0, 0)
	x := g.AddNode("x", 0, 0)
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	d := g.AddNode("d", 0, 0)
	lat := time.Millisecond
	g.AddLink(s1, x, lat, 100)
	g.AddLink(s2, x, lat, 100)
	g.AddLink(x, a, lat, 10)
	g.AddLink(x, b, lat, 10)
	g.AddLink(a, d, lat, 100)
	g.AddLink(b, d, lat, 100)

	net := p4update.NewNetwork(g, p4update.WithSeed(4), p4update.WithCongestionFreedom())
	f1, err := net.AddFlow(s1, d, []p4update.NodeID{s1, x, a, d}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddFlow(s2, d, []p4update.NodeID{s2, x, b, d}, 6); err != nil {
		t.Fatal(err)
	}
	// Move f1 onto x-b: must wait (6+6 > 10) — f2 never moves, so the
	// update stays incomplete but capacity is never violated.
	u, err := net.UpdateFlow(f1, []p4update.NodeID{s1, x, b, d})
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	if u.Done() {
		t.Fatal("move onto a full link completed")
	}
	sw := net.Switch(x)
	if got := sw.ReservedK(g.PortTo(x, b)); got > 10000 {
		t.Errorf("x-b oversubscribed: %d kbps", got)
	}
}

func TestSendPacketAndDeliveryObservation(t *testing.T) {
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g, p4update.WithSeed(5))
	oldP, _ := p4update.SyntheticPaths()
	f, _ := net.AddFlow(0, 7, oldP, 1.0)
	delivered := 0
	net.Fabric().OnDeliver = func(node p4update.NodeID, d *p4update.DataPacket) {
		if node == 7 && d.Seq == 1 {
			delivered++
		}
	}
	if err := net.SendPacket(f, 1); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if net.Stats().DataDelivered != 1 || delivered != 1 {
		t.Errorf("delivered = %d/%d, want 1/1", net.Stats().DataDelivered, delivered)
	}
	if err := net.SendPacket(999, 1); err == nil {
		t.Error("unknown flow accepted")
	}
}

func TestBadFlowRate(t *testing.T) {
	net := p4update.NewNetwork(p4update.Synthetic())
	if _, err := net.AddFlow(0, 7, []p4update.NodeID{0, 4, 2, 7}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}
