// Package p4update is a Go reproduction of "P4Update: Fast and Locally
// Verifiable Consistent Network Updates in the P4 Data Plane" (Zhou, He,
// Kellerer, Blenk, Foerster — CoNEXT '21).
//
// It bundles a deterministic discrete-event network simulator, a P4-style
// software-switch model (per-flow register arrays, clone, resubmit,
// capacity accounting), the P4Update update protocol (single-layer and
// dual-layer verification, congestion freedom with a dynamic data-plane
// scheduler), the evaluation baselines (ez-Segway, Central), and the
// harnesses regenerating the paper's figures.
//
// Quick start:
//
//	g := p4update.Synthetic()
//	net := p4update.NewNetwork(g, p4update.WithSeed(1))
//	oldPath, newPath := p4update.SyntheticPaths()
//	flow, _ := net.AddFlow(0, 7, oldPath, 1.0)
//	status, _ := net.UpdateFlow(flow, newPath)
//	net.Run()
//	fmt.Println(status.Done(), status.Completed-status.Sent)
package p4update

import (
	"fmt"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/wiring"
)

// Re-exported core types. Aliases keep the internal packages private while
// letting callers hold and use their values.
type (
	// Topology is a network graph of switches and capacity-annotated links.
	Topology = topo.Topology
	// NodeID identifies a switch in a Topology.
	NodeID = topo.NodeID
	// PortID is a node-local port index.
	PortID = topo.PortID
	// FlowID identifies a flow (hash of its src/dst pair).
	FlowID = packet.FlowID
	// UpdateStatus tracks one route update until probe-confirmed completion.
	UpdateStatus = controlplane.UpdateStatus
	// UpdateType selects single- or dual-layer P4Update operation.
	UpdateType = packet.UpdateType
	// Switch exposes the data-plane state of one node (registers, stats).
	Switch = dataplane.Switch
	// DataPacket is a data-plane packet (seen in Fabric observation hooks).
	DataPacket = packet.Data
	// Tree is a destination-rooted spanning tree (child -> parent edges)
	// for destination-based routing (§11).
	Tree = controlplane.Tree
)

// ShortestPathTree builds the hop-count shortest-path tree toward root.
var ShortestPathTree = controlplane.ShortestPathTree

// Update types.
const (
	SingleLayer = packet.UpdateSingle
	DualLayer   = packet.UpdateDual
)

// Weight selects the edge metric for path computation.
type Weight = topo.Weight

// Path weights.
const (
	ByLatency = topo.ByLatency
	ByHops    = topo.ByHops
)

// Topology builders (see internal/topo for details).
var (
	// NewTopology returns an empty topology.
	NewTopology = topo.New
	// Synthetic is the paper's Fig-1 example network.
	Synthetic = topo.Synthetic
	// SyntheticPaths returns the Fig-1 old and new flow paths.
	SyntheticPaths = topo.SyntheticPaths
	// B4 is a replica of Google's inter-datacenter WAN (12 nodes, 19 edges).
	B4 = topo.B4
	// Internet2 is a replica of the Internet2 backbone (16 nodes, 26 edges).
	Internet2 = topo.Internet2
	// AttMpls matches the Topology-Zoo AttMpls size (25 nodes, 56 edges).
	AttMpls = topo.AttMpls
	// Chinanet matches the Topology-Zoo Chinanet size (38 nodes, 62 edges).
	Chinanet = topo.Chinanet
	// FatTree builds a K-ary fat-tree switch topology.
	FatTree = topo.FatTree
	// EdgeSwitches lists a fat-tree's edge-layer switches.
	EdgeSwitches = topo.EdgeSwitches
)

// Strategy selects the update system a Network runs. It aliases the
// internal wiring strategy so the facade and the evaluation harness
// share one construction path.
//
// Deprecated: select systems by registered name via WithSystem
// ("p4update", "ez-segway", "central", "local-verify", "ppcu",
// "opt-oracle", ...; see Systems). The enum remains a thin alias layer
// over those names so existing callers keep compiling.
type Strategy = wiring.Strategy

// Strategies.
//
// Deprecated: use WithSystem with the corresponding registry name
// instead ("p4update", "p4update-sl", "p4update-dl", "ez-segway",
// "central").
const (
	// StrategyAuto runs P4Update with the §7.5 single/dual-layer policy.
	StrategyAuto = wiring.Auto
	// StrategySL forces single-layer P4Update.
	StrategySL = wiring.SingleLayer
	// StrategyDL forces dual-layer P4Update.
	StrategyDL = wiring.DualLayer
	// StrategyEZSegway runs the decentralized ez-Segway baseline.
	StrategyEZSegway = wiring.EZSegway
	// StrategyCentral runs the centralized dependency-graph baseline.
	StrategyCentral = wiring.Central
)

// Systems lists every registered update-system name accepted by
// WithSystem: the primary systems in evaluation order followed by the
// registered variants.
func Systems() []string { return wiring.AllNames() }

// TrialResult is the per-trial summary the parallel evaluation runner
// produces: identity (label, system, seed), wall-clock and virtual
// quiescence times, executed event count, and the measured update-time
// samples. cmd/p4update's -json export and the BENCH trajectories are
// lists of these.
type TrialResult = runner.Result

// TrialMetrics is the measured portion of a TrialResult.
type TrialMetrics = runner.Metrics

// TrialReport is a JSON-serializable run summary: worker/host counts,
// total wall-clock, and the merged per-trial results in deterministic
// trial order.
type TrialReport = runner.Report

// NewTrialReport assembles a TrialReport from merged trial results.
var NewTrialReport = runner.NewReport

type config = wiring.Config

// Option configures a Network.
type Option func(*config)

// WithSeed fixes the simulation seed (runs are fully deterministic per
// seed).
func WithSeed(seed int64) Option { return func(c *config) { c.Seed = seed } }

// WithStrategy selects the update system (default StrategyAuto).
//
// Deprecated: use WithSystem with a registered name instead.
func WithStrategy(s Strategy) Option { return func(c *config) { c.Strategy = s } }

// WithSystem selects the update system by its registered name (see
// Systems for the accepted names; default "p4update"). Building a
// Network with an unregistered name still yields a functional data
// plane, but UpdateFlow returns an error naming the available systems.
func WithSystem(name string) Option { return func(c *config) { c.System = name } }

// WithCongestionFreedom enables link-capacity enforcement and the dynamic
// inter-flow scheduler (§7.4).
func WithCongestionFreedom() Option { return func(c *config) { c.Congestion = true } }

// WithChainedDualLayer enables the Appendix-C extension allowing
// dual-layer updates to follow dual-layer updates.
func WithChainedDualLayer() Option { return func(c *config) { c.ChainedDL = true } }

// WithTwoPhaseCommit enables the §11 two-phase-commit integration:
// switches retain the previous configuration's rule and forward packets
// by their ingress-stamped version tag, giving Reitblatt-style per-packet
// consistency on top of P4Update's per-hop guarantees.
func WithTwoPhaseCommit() Option { return func(c *config) { c.TwoPhase = true } }

// WithFailureRecovery enables §11 failure recovery: switches watchdog
// each held indication for `timeout`; stalled updates are re-triggered by
// the controller up to maxRetriggers times.
func WithFailureRecovery(timeout time.Duration, maxRetriggers int) Option {
	return func(c *config) {
		c.WatchdogTimeout = timeout
		c.MaxRetriggers = maxRetriggers
	}
}

// WithInstallDelay sets the sampler for per-rule install latency.
func WithInstallDelay(f func() time.Duration) Option {
	return func(c *config) { c.InstallDelay = f }
}

// WithControllerAt pins the controller to a node (default: the topology
// centroid, as in §9.1).
func WithControllerAt(n NodeID) Option { return func(c *config) { c.Controller = &n } }

// WithSampledControlLatency draws each switch's control-channel latency
// once from the sampler (the fat-tree model of §9.1).
func WithSampledControlLatency(f func() time.Duration) Option {
	return func(c *config) { c.SampledControl = f }
}

// Network is a fully wired system under one update strategy.
type Network struct {
	sys *wiring.System
}

// NewNetwork builds switches for every node of t, wires the fabric and a
// controller, and installs the chosen update protocol.
func NewNetwork(t *Topology, opts ...Option) *Network {
	cfg := config{
		Seed:          1,
		MaxEvents:     50_000_000,
		CtrlProcDelay: 500 * time.Microsecond,
		CtrlQueueMean: 40 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Network{sys: wiring.New(t, cfg)}
}

// Topology returns the network's graph.
func (n *Network) Topology() *Topology { return n.sys.Topo }

// Controller exposes the control plane for advanced use (alarms, flow DB,
// manual plan pushes).
func (n *Network) Controller() *controlplane.Controller { return n.sys.Ctl }

// Switch returns the data-plane switch at a node.
func (n *Network) Switch(id NodeID) *Switch { return n.sys.Net.Switch(id) }

// Fabric exposes the data-plane network (failure-injection hooks,
// observation taps).
func (n *Network) Fabric() *dataplane.Network { return n.sys.Net }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sys.Eng.Now() }

// Run drains all simulation events and returns the quiescence time.
func (n *Network) Run() time.Duration { return n.sys.Eng.Run() }

// RunUntil executes events up to the given virtual instant.
func (n *Network) RunUntil(t time.Duration) time.Duration { return n.sys.Eng.RunUntil(t) }

// Schedule runs fn after a virtual delay (for scripting scenarios).
func (n *Network) Schedule(d time.Duration, fn func()) { n.sys.Eng.Schedule(d, fn) }

// AddFlow registers a flow from src to dst along path with the given rate
// bound in Mbps and installs its version-1 rules.
func (n *Network) AddFlow(src, dst NodeID, path []NodeID, rateMbps float64) (FlowID, error) {
	if rateMbps <= 0 {
		return 0, fmt.Errorf("p4update: flow rate must be positive")
	}
	return n.sys.Ctl.RegisterFlow(src, dst, path, uint32(rateMbps*1000))
}

// UpdateFlow triggers a consistent route update of flow f to newPath
// under the network's strategy. The returned status is always non-nil on
// success: under StrategyEZSegway an update requested while a previous
// update of the same flow is still in flight is returned in the Queued
// state and launches automatically once the ongoing update completes.
func (n *Network) UpdateFlow(f FlowID, newPath []NodeID) (*UpdateStatus, error) {
	return n.sys.Trigger(f, newPath)
}

// Status returns the tracked state of (flow, version).
func (n *Network) Status(f FlowID, version uint32) (*UpdateStatus, bool) {
	return n.sys.Ctl.Status(f, version)
}

// Forwarding traces flow f's current forwarding state from node `from`,
// returning the visited nodes and whether the trace reached the egress.
func (n *Network) Forwarding(f FlowID, from NodeID) ([]NodeID, bool) {
	return n.sys.Net.TracePath(f, from, n.sys.Topo.NumNodes()+2)
}

// SendPacket injects one data packet of flow f at its ingress and returns
// its sequence number (delivery can be observed via Fabric().OnDeliver).
func (n *Network) SendPacket(f FlowID, seq uint32) error {
	rec, ok := n.sys.Ctl.Flow(f)
	if !ok {
		return fmt.Errorf("p4update: unknown flow %d", f)
	}
	n.sys.Net.Switch(rec.Src).InjectData(&packet.Data{Flow: f, Seq: seq, TTL: 64})
	return nil
}

// AddDestinationTree installs destination-based routing toward root
// (§11): every node forwards traffic for root along the given tree.
func (n *Network) AddDestinationTree(root NodeID, tree Tree, rateMbps float64) (FlowID, error) {
	return n.sys.Ctl.RegisterTree(root, tree, uint32(rateMbps*1000))
}

// UpdateDestinationTree migrates the destination's routing onto newTree
// with a verified single-layer update fanning out from the root.
func (n *Network) UpdateDestinationTree(f FlowID, newTree Tree) (*UpdateStatus, error) {
	switch n.sys.SystemName() {
	case "p4update", "p4update-sl", "p4update-dl":
	default:
		return nil, fmt.Errorf("p4update: destination trees require a P4Update system")
	}
	return n.sys.Ctl.TriggerTreeUpdate(f, newTree)
}

// Stats aggregates switch counters across the network.
func (n *Network) Stats() dataplane.Stats {
	var total dataplane.Stats
	for _, sw := range n.sys.Net.Switches() {
		s := sw.Stats
		total.DataForwarded += s.DataForwarded
		total.DataDelivered += s.DataDelivered
		total.BlackholeDrops += s.BlackholeDrops
		total.TTLDrops += s.TTLDrops
		total.DecodeErrors += s.DecodeErrors
		total.UNMReceived += s.UNMReceived
		total.UIMReceived += s.UIMReceived
		total.AlarmsSent += s.AlarmsSent
		total.Resubmissions += s.Resubmissions
		total.RulesApplied += s.RulesApplied
		total.RulesCleaned += s.RulesCleaned
	}
	return total
}
