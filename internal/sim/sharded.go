// Sharded execution: conservative parallel DES inside a single trial.
//
// The fabric is partitioned into regions (topo.PartitionRegions); each
// region gets its own Engine and worker goroutine. The trial alternates
// between two phases:
//
//   - window: every region executes its queued events in parallel up to
//     the horizon H = T + L, where T is the global minimum pending event
//     time and L the partition lookahead (minimum cross-region link /
//     control-channel latency). Any event executed in the window has
//     at >= T, so everything it sends across a region (or to the
//     controller) lands at >= T+L = H — never inside the window. Cross
//     sends are therefore not delivered immediately: they are appended
//     to the sending region's action log and materialized at the next
//     barrier.
//
//   - barrier (cursor): a single goroutine replays the global event
//     order from a replica heap keyed by (time, global sequence). For
//     events a region already executed it "passes" them — flushing
//     their trace span into the master recorder and walking their
//     action log to assign global sequence numbers to their children —
//     and it directly executes everything that must observe or mutate
//     global state: controller code, cross-region deliveries that
//     arrived in the past of a region's local clock ("mini events"),
//     and commit hooks.
//
// The replica heap always contains the true next global event (a child
// enters when its parent is passed, and a parent always precedes its
// children), so the cursor reproduces the exact (time, FIFO) order of
// the sequential engine. The contract — enforced by the golden-trace
// equality tests — is that a sharded run produces byte-identical traces
// and metrics to a sequential one.
//
// Event keys. Sequential engines order same-instant events by their
// schedule sequence. Under sharding a window-scheduled child cannot
// know its global sequence yet (another region may schedule earlier
// peers at the same instant), so it is queued under a provisional key
// (pendBit | per-engine counter) and *re-keyed* to its real global
// sequence when the cursor walks its parent's action log: the slot's
// authoritative key changes and a fresh heap entry is pushed, while the
// old entry — recognizable because its seq no longer matches the slot
// key — is dropped on sight. Keys are never reused (both counters are
// monotone), which makes the entry/slot key match an exact test for
// "this is the authoritative entry".
package sim

import (
	"fmt"
	"sync"
	"time"

	"p4update/internal/trace"
)

// pendBit marks a provisional (window-assigned) event key awaiting its
// global sequence number.
const pendBit = uint64(1) << 63

// action log entry kinds.
const (
	actChildLocal = uint8(iota) // a window-scheduled same-region child
	actChildCross               // a send crossing regions (or to the root)
	actHook                     // a commit hook to replay at the barrier
)

// action records one side effect of a window-executed event, replayed
// by the cursor in execution order.
type action struct {
	kind     uint8
	dest     int32 // actChildCross: destination region, -1 = root
	at       time.Duration
	slot     int32  // actChildLocal: the child's slot in this region
	gen      uint32 // actChildLocal: the child's slot generation
	tracePos uint64 // actHook: region trace position at hook time
	fn       func()
	afn      func(any)
	arg      any
}

// execRec is the region-side account of one executed (or cancelled)
// event, consumed by the cursor in lockstep with its replica.
type execRec struct {
	at   time.Duration
	slot int32
	gen  uint32
	dead bool   // cancelled after global ordering; no effects to replay
	aEnd int32  // action log high-water mark after execution
	tEnd uint64 // region trace position after execution
}

// replica mirrors one globally-ordered event in the cursor's heap.
type replica struct {
	at     time.Duration
	key    uint64
	region int32 // -1: resident (root-engine) event
	slot   int32
	gen    uint32
}

// regionState is the cursor<->worker exchange for one region. The
// worker owns it during windows, the cursor at barriers; the phases are
// separated by channel sends and a WaitGroup, so no locking is needed.
type regionState struct {
	exec        []execRec
	execPtr     int
	actions     []action
	actPtr      int
	executedMax time.Duration // highest at this region has executed
	rec         *trace.Recorder
	flushPos    uint64
}

// Sharded is the conservative parallel runtime attached to a root
// engine. Construct with AttachSharded; afterwards Run/RunUntil on the
// root engine drive the window/barrier loop transparently.
type Sharded struct {
	root    *Engine
	regions []*Engine
	rs      []regionState
	lah     time.Duration

	gseq     uint64
	replicas []replica
	inWindow bool

	master *trace.Recorder

	// PreRun, when set, runs at the start of every Run/RunUntil. The
	// wiring layer uses it to refresh per-region hook copies that the
	// caller may have replaced after construction.
	PreRun func()

	work    []chan time.Duration
	wg      sync.WaitGroup
	started bool
}

// AttachSharded converts root into the coordinator of a sharded
// runtime with the given region count and lookahead. It must be called
// before any event is scheduled: pre-existing events would not be
// mirrored in the cursor's replica heap.
func AttachSharded(root *Engine, regions int, lookahead time.Duration) *Sharded {
	if regions < 1 || lookahead <= 0 {
		panic("sim: AttachSharded needs regions >= 1 and lookahead > 0")
	}
	if len(root.heap) > 0 {
		panic("sim: AttachSharded after events were scheduled")
	}
	s := &Sharded{root: root, lah: lookahead, master: root.Trace}
	root.sh = s
	root.shardID = -1
	s.regions = make([]*Engine, regions)
	s.rs = make([]regionState, regions)
	for r := range s.regions {
		// Region engines deliberately get no random source: region code
		// must never draw randomness (it would diverge from sequential
		// order), and a nil-deref makes a violation loud.
		e := &Engine{Strict: root.Strict, sh: s, shardID: int32(r)}
		s.regions[r] = e
		if s.master != nil {
			rr := trace.NewRegion()
			rr.Clock = e.Now
			e.Trace = rr
			s.rs[r].rec = rr
		}
	}
	return s
}

// NumRegions returns the region count.
func (s *Sharded) NumRegions() int { return len(s.regions) }

// RegionEngine returns region r's engine.
func (s *Sharded) RegionEngine(r int) *Engine { return s.regions[r] }

// Lookahead returns the conservative window extension.
func (s *Sharded) Lookahead() time.Duration { return s.lah }

// InWindow reports whether region workers are currently executing; the
// dataplane routing layer uses it to decide between direct scheduling
// (barrier) and action-log capture (window).
func (s *Sharded) InWindow() bool { return s.inWindow }

// PerShardScheduled returns per-engine scheduled-event counts:
// element 0 is the resident (root) engine, elements 1..R the regions.
func (s *Sharded) PerShardScheduled() []uint64 {
	out := make([]uint64, 1+len(s.regions))
	out[0] = s.root.nsched
	for i, e := range s.regions {
		out[i+1] = e.nsched
	}
	return out
}

func (s *Sharded) totalSteps() uint64 {
	n := s.root.nsteps
	for _, e := range s.regions {
		n += e.nsteps
	}
	return n
}

// LogCross records a window-context send that crosses regions (or
// targets the root). at is the absolute delivery instant; exactly one
// of fn/afn is non-nil.
func (s *Sharded) LogCross(src int32, at time.Duration, fn func(), afn func(any), arg any, dest int32) {
	st := &s.rs[src]
	st.actions = append(st.actions, action{
		kind: actChildCross, dest: dest, at: at, fn: fn, afn: afn, arg: arg,
	})
}

// LogHook records a window-context hook call (e.g. a commit callback
// that must observe global state). The cursor replays it at the exact
// global position of the event that raised it, flushing the region's
// trace up to the hook point first so recorded events interleave as in
// a sequential run.
func (s *Sharded) LogHook(src int32, fn func()) {
	st := &s.rs[src]
	var pos uint64
	if st.rec != nil {
		pos = st.rec.Pos()
	}
	st.actions = append(st.actions, action{kind: actHook, fn: fn, tracePos: pos})
}

// push is the sharded scheduling path for every engine with s attached.
func (s *Sharded) push(e *Engine, at time.Duration, fn func(), afn func(any), arg any) Timer {
	if s.inWindow {
		// Window context: e is the worker's own region engine (cross
		// sends are intercepted at the network layer before reaching an
		// engine). Queue under a provisional key and log the child so
		// the cursor can order it globally later.
		if e.shardID < 0 {
			panic("sim: window-context schedule on the root engine")
		}
		slot := e.allocSlot(fn, afn, arg)
		key := pendBit | e.pendIdx
		e.pendIdx++
		e.slots[slot].key = key
		e.heapPush(entry{at: at, seq: key, slot: slot})
		e.nsched++
		e.live++
		st := &s.rs[e.shardID]
		st.actions = append(st.actions, action{
			kind: actChildLocal, at: at, slot: slot, gen: e.slots[slot].gen,
		})
		return Timer{eng: e, slot: slot, gen: e.slots[slot].gen}
	}
	// Barrier context: assign the global sequence immediately.
	g := s.gseq
	s.gseq++
	return s.insertAssigned(e.shardID, at, fn, afn, arg, g)
}

// insertAssigned places an event with a final global key. Region-bound
// events whose instant the region has already executed past become
// "mini events" on the root engine, executed by the cursor at their
// exact global position.
func (s *Sharded) insertAssigned(dest int32, at time.Duration, fn func(), afn func(any), arg any, g uint64) Timer {
	target := s.root
	if dest >= 0 && at > s.rs[dest].executedMax {
		target = s.regions[dest]
	}
	slot := target.allocSlot(fn, afn, arg)
	sl := &target.slots[slot]
	sl.key = g
	target.heapPush(entry{at: at, seq: g, slot: slot})
	target.nsched++
	target.live++
	s.rpush(replica{at: at, key: g, region: target.shardID, slot: slot, gen: sl.gen})
	return Timer{eng: target, slot: slot, gen: sl.gen}
}

// setAllNow aligns every engine's clock with the cursor position, so
// barrier-executed code observes one consistent global time whichever
// engine it reads through.
func (s *Sharded) setAllNow(at time.Duration) {
	s.root.now = at
	for _, e := range s.regions {
		e.now = at
	}
}

func (s *Sharded) setBarrierTrace() {
	if s.master == nil {
		return
	}
	for _, e := range s.regions {
		e.Trace = s.master
	}
}

func (s *Sharded) setWindowTrace() {
	if s.master == nil {
		return
	}
	for r, e := range s.regions {
		e.Trace = s.rs[r].rec
	}
}

// flushTrace replays region r's staged trace span [flushPos, upTo) into
// the master recorder.
func (s *Sharded) flushTrace(r int32, upTo uint64) {
	st := &s.rs[r]
	if st.rec == nil {
		return
	}
	for i := st.flushPos; i < upTo; i++ {
		s.master.Absorb(st.rec.EventAt(i))
	}
	st.flushPos = upTo
}

// runWindow executes region r's queued events with at < h, recording
// each into the exec log for the cursor.
func (s *Sharded) runWindow(r int32, h time.Duration) {
	e := s.regions[r]
	st := &s.rs[r]

	// Compact logs the cursor fully consumed last barrier.
	if st.execPtr > 0 {
		n := copy(st.exec, st.exec[st.execPtr:])
		st.exec = st.exec[:n]
		st.execPtr = 0
	}
	if st.actPtr > 0 {
		n := copy(st.actions, st.actions[st.actPtr:])
		st.actions = st.actions[:n]
		for i := range st.exec {
			st.exec[i].aEnd -= int32(st.actPtr)
		}
		st.actPtr = 0
	}
	if st.rec != nil {
		st.rec.DropThrough(st.flushPos)
	}

	for {
		// Discard stale entries (left behind by re-keying or by a
		// cursor-buried cancellation; the authoritative account lives
		// elsewhere). Everything else — including dead-event reclamation
		// — is strictly gated by the horizon: an exec record (tombstones
		// included) logged for an instant beyond h would sit ahead of
		// records later windows produce for earlier instants, breaking
		// the cursor's in-order consumption.
		for len(e.heap) > 0 && e.heap[0].seq != e.slots[e.heap[0].slot].key {
			e.heapPop()
		}
		if len(e.heap) == 0 || e.heap[0].at >= h {
			return
		}
		head := e.heap[0]
		sl := &e.slots[head.slot]
		if !sl.live {
			e.heapPop()
			if head.seq&pendBit != 0 {
				// Cancelled before the cursor ordered it; the parent's
				// child-walk reclaims the slot.
				continue
			}
			// Cancelled after global ordering: tombstone so the cursor's
			// replica finds its account, then reclaim.
			st.exec = append(st.exec, execRec{
				at: head.at, slot: head.slot, gen: sl.gen, dead: true,
				aEnd: int32(len(st.actions)),
			})
			e.freeSlot(head.slot)
			continue
		}
		e.heapPop()
		fn, afn, arg := sl.fn, sl.afn, sl.arg
		gen := sl.gen
		e.live--
		e.freeSlot(head.slot)
		e.now = head.at
		e.nsteps++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		st.executedMax = head.at
		var tEnd uint64
		if st.rec != nil {
			tEnd = st.rec.Pos()
		}
		st.exec = append(st.exec, execRec{
			at: head.at, slot: head.slot, gen: gen,
			aEnd: int32(len(st.actions)), tEnd: tEnd,
		})
	}
}

// passRegion accounts one region-executed event at the cursor: flush
// its trace span and replay its action log, assigning global sequence
// numbers to its children in scheduling order.
func (s *Sharded) passRegion(r int32, e *Engine, rec execRec) {
	st := &s.rs[r]
	s.root.now = rec.at
	for st.actPtr < int(rec.aEnd) {
		a := st.actions[st.actPtr]
		st.actPtr++
		switch a.kind {
		case actChildLocal:
			g := s.gseq
			s.gseq++
			sl := &e.slots[a.slot]
			if sl.gen == a.gen {
				if sl.live {
					// Still queued under its provisional key: re-key into
					// the global order (the old heap entry goes stale).
					sl.key = g
					e.heapPush(entry{at: a.at, seq: g, slot: a.slot})
					s.rpush(replica{at: a.at, key: g, region: r, slot: a.slot, gen: a.gen})
				} else {
					// Cancelled before execution; account and reclaim.
					e.freeSlot(a.slot)
				}
			} else {
				// Already executed in a window; the exec log holds its
				// account, reached when the cursor pops this replica.
				s.rpush(replica{at: a.at, key: g, region: r, slot: a.slot, gen: a.gen})
			}
		case actChildCross:
			g := s.gseq
			s.gseq++
			s.insertAssigned(a.dest, a.at, a.fn, a.afn, a.arg, g)
		case actHook:
			s.flushTrace(r, a.tracePos)
			s.setAllNow(rec.at)
			a.fn()
		}
	}
	s.flushTrace(r, rec.tEnd)
}

// cursorDrain advances the global cursor until the replica heap is
// empty (returns true), the deadline is passed (returns true), or it
// reaches an event a region has not executed yet (returns false — the
// caller opens the next window there).
func (s *Sharded) cursorDrain(deadline time.Duration, bounded bool) bool {
	root := s.root
	for len(s.replicas) > 0 {
		top := s.replicas[0]
		if bounded && top.at > deadline {
			return true
		}
		if root.MaxEvents > 0 && s.totalSteps() >= root.MaxEvents {
			return true
		}
		if top.region >= 0 {
			e := s.regions[top.region]
			sl := &e.slots[top.slot]
			if sl.gen == top.gen {
				if sl.live {
					return false
				}
				// Cancelled while still queued; bury it and move on. The
				// key is invalidated explicitly (keys are never reused, so
				// any stale marker works) — otherwise the still-queued heap
				// entry would match and a later window would tombstone and
				// double-free the recycled slot.
				s.rpop()
				sl.key = ^uint64(0)
				e.freeSlot(top.slot)
				continue
			}
			s.rpop()
			st := &s.rs[top.region]
			rec := st.exec[st.execPtr]
			st.execPtr++
			if rec.slot != top.slot || rec.gen != top.gen || rec.at != top.at {
				panic(fmt.Sprintf("sim: sharded replay desync in region %d: exec(%v,%d,%d) vs replica(%v,%d,%d)",
					top.region, rec.at, rec.slot, rec.gen, top.at, top.slot, top.gen))
			}
			if rec.dead {
				continue
			}
			s.passRegion(top.region, e, rec)
			continue
		}
		// Resident event: the root heap is popped only here, in exact
		// replica order.
		if len(root.heap) == 0 || root.heap[0].slot != top.slot || root.heap[0].seq != top.key {
			panic("sim: sharded root heap desync")
		}
		root.heapPop()
		sl := &root.slots[top.slot]
		if sl.gen != top.gen {
			panic("sim: sharded root slot generation desync")
		}
		s.rpop()
		if !sl.live {
			root.freeSlot(top.slot)
			continue
		}
		fn, afn, arg := sl.fn, sl.afn, sl.arg
		root.live--
		root.freeSlot(top.slot)
		s.setAllNow(top.at)
		root.nsteps++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		if root.AfterStep != nil {
			root.AfterStep()
		}
	}
	return true
}

func (s *Sharded) startWorkers() {
	if s.started {
		return
	}
	s.started = true
	s.work = make([]chan time.Duration, len(s.regions))
	for r := range s.regions {
		ch := make(chan time.Duration)
		s.work[r] = ch
		go func(r int32, ch chan time.Duration) {
			for h := range ch {
				s.runWindow(r, h)
				s.wg.Done()
			}
		}(int32(r), ch)
	}
}

func (s *Sharded) stopWorkers() {
	if !s.started {
		return
	}
	for _, ch := range s.work {
		close(ch)
	}
	s.work = nil
	s.started = false
}

// run is the window/barrier loop behind Run and RunUntil on a sharded
// root engine.
func (s *Sharded) run(deadline time.Duration, bounded bool) time.Duration {
	root := s.root
	if s.PreRun != nil {
		s.PreRun()
	}
	s.startWorkers()
	defer s.stopWorkers()
	for {
		s.setBarrierTrace()
		if s.cursorDrain(deadline, bounded) {
			break
		}
		t := s.replicas[0].at
		h := t + s.lah
		if bounded && h > deadline {
			h = deadline + 1
		}
		s.setWindowTrace()
		s.inWindow = true
		for r, e := range s.regions {
			if len(e.heap) > 0 && e.heap[0].at < h {
				s.wg.Add(1)
				s.work[r] <- h
			}
		}
		s.wg.Wait()
		s.inWindow = false
	}
	if bounded && root.now < deadline {
		root.now = deadline
	}
	return root.now
}

// replica heap: a 4-ary min-heap ordered by (at, key), mirroring the
// engine heap discipline.

func replicaLess(a, b replica) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

func (s *Sharded) rpush(it replica) {
	s.replicas = append(s.replicas, it)
	i := len(s.replicas) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !replicaLess(s.replicas[i], s.replicas[p]) {
			break
		}
		s.replicas[i], s.replicas[p] = s.replicas[p], s.replicas[i]
		i = p
	}
}

func (s *Sharded) rpop() {
	n := len(s.replicas) - 1
	s.replicas[0] = s.replicas[n]
	s.replicas = s.replicas[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if replicaLess(s.replicas[c], s.replicas[best]) {
				best = c
			}
		}
		if !replicaLess(s.replicas[best], s.replicas[i]) {
			break
		}
		s.replicas[i], s.replicas[best] = s.replicas[best], s.replicas[i]
		i = best
	}
}
