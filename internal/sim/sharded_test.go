package sim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"p4update/internal/trace"
)

// The sharded runtime's contract is exact equivalence: the same
// node-addressed workload executed sequentially and under parallel
// region windows must produce identical traces, clocks, and counters.
// These tests drive randomized event trees through a miniature fabric
// that routes sends the same way the dataplane does (same-region
// schedules in-window, cross-region sends via the action log, direct
// inserts at barriers), covering the re-key, mini-event, and
// cancellation paths without the protocol stack on top.

// miniSpec is one precomputed event of the workload tree. The tree is
// generated up front (never during execution) so both runs execute the
// exact same script regardless of event interleaving.
type miniSpec struct {
	node     int
	children []int
	cdelay   []time.Duration
	// timer, when > 0, makes the event arm a same-node timer with this
	// delay and schedule a same-node canceller at cancelAt: depending on
	// the generated delays the cancel lands before the fire (testing
	// Timer.Stop on pending, possibly re-keyed slots) or after it
	// (testing Stop as a no-op).
	timer    time.Duration
	cancelAt time.Duration
}

// miniFabric maps workload nodes onto engines, mirroring the
// dataplane's routing seam.
type miniFabric struct {
	sh     *Sharded
	engOf  []*Engine
	region []int32
	timers []Timer
	specs  []miniSpec
}

func (m *miniFabric) send(from, to int, delay time.Duration, fn func()) {
	if m.sh != nil && m.sh.InWindow() {
		if m.region[from] == m.region[to] {
			m.engOf[to].Schedule(delay, fn)
			return
		}
		m.sh.LogCross(m.region[from], m.engOf[from].Now()+delay, fn, nil, nil, m.region[to])
		return
	}
	m.engOf[to].Schedule(delay, fn)
}

func (m *miniFabric) exec(id int) func() {
	return func() {
		sp := &m.specs[id]
		e := m.engOf[sp.node]
		if tr := e.Trace; tr != nil {
			tr.Verdict(int32(sp.node), trace.CodeApplySL, uint32(id), 0, 0, 0)
		}
		for i, cid := range sp.children {
			m.send(sp.node, m.specs[cid].node, sp.cdelay[i], m.exec(cid))
		}
		if sp.timer > 0 {
			tid := uint32(id) | 1<<20
			m.timers[id] = e.Schedule(sp.timer, func() {
				if tr := e.Trace; tr != nil {
					tr.Verdict(int32(sp.node), trace.CodeApplySL, tid, 0, 0, 0)
				}
			})
			cancel := id
			m.send(sp.node, sp.node, sp.cancelAt, func() { m.timers[cancel].Stop() })
		}
	}
}

// genSpecs builds a deterministic random event tree over the node set.
// Cross-region and region-to-resident child delays respect the
// lookahead (the conservative contract the dataplane guarantees);
// same-region and resident-originated delays are unconstrained, so
// resident events routinely spawn sub-lookahead "mini events" into the
// regions.
func genSpecs(rng *rand.Rand, region []int32, lah time.Duration, roots, maxDepth int) []miniSpec {
	var specs []miniSpec
	nodes := len(region)
	var grow func(node, depth int) int
	grow = func(node, depth int) int {
		id := len(specs)
		specs = append(specs, miniSpec{node: node})
		if rng.Intn(3) == 0 {
			specs[id].timer = time.Duration(1+rng.Intn(2000)) * time.Microsecond
			specs[id].cancelAt = time.Duration(1+rng.Intn(2000)) * time.Microsecond
		}
		if depth >= maxDepth {
			return id
		}
		nkids := rng.Intn(4)
		for k := 0; k < nkids; k++ {
			to := rng.Intn(nodes)
			var d time.Duration
			if region[node] == region[to] || region[node] < 0 {
				d = time.Duration(rng.Intn(3000)) * time.Microsecond
			} else {
				d = lah + time.Duration(rng.Intn(2000))*time.Microsecond
			}
			cid := grow(to, depth+1)
			specs[id].children = append(specs[id].children, cid)
			specs[id].cdelay = append(specs[id].cdelay, d)
		}
		return id
	}
	for r := 0; r < roots; r++ {
		grow(rng.Intn(nodes), 0)
	}
	return specs
}

// runMini executes the workload and returns the trace log plus final
// engine counters. shards <= 1 runs one sequential engine; otherwise
// the nodes are spread over two regions plus a resident node.
func runMini(t *testing.T, specs []miniSpec, region []int32, lah time.Duration, shards int, splitRun bool) ([]byte, time.Duration, uint64, uint64) {
	t.Helper()
	rec := trace.New(trace.Options{Cap: 1 << 16})
	m := &miniFabric{region: region, specs: specs, timers: make([]Timer, len(specs))}
	var root *Engine
	if shards <= 1 {
		root = New(1)
		root.Trace = rec
		rec.Clock = root.Now
		m.engOf = make([]*Engine, len(region))
		for i := range m.engOf {
			m.engOf[i] = root
		}
	} else {
		root = New(1)
		root.Trace = rec
		rec.Clock = root.Now
		m.sh = AttachSharded(root, shards, lah)
		m.engOf = make([]*Engine, len(region))
		for i, r := range region {
			if r < 0 {
				m.engOf[i] = root
			} else {
				m.engOf[i] = m.sh.RegionEngine(int(r))
			}
		}
	}
	// Seed the roots of the tree (barrier context: direct inserts).
	for id, sp := range specs {
		if isRoot(specs, id) {
			m.engOf[sp.node].Schedule(time.Duration(id)*time.Microsecond, m.exec(id))
		}
	}
	if splitRun {
		root.RunUntil(2 * time.Millisecond)
	}
	root.Run()
	if root.Pending() != 0 {
		t.Fatalf("shards=%d: %d events still pending after Run", shards, root.Pending())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), root.Now(), root.Steps(), root.Scheduled()
}

// isRoot reports whether id is a tree root (no parent references it).
func isRoot(specs []miniSpec, id int) bool {
	for i := range specs {
		for _, c := range specs[i].children {
			if c == id {
				return false
			}
		}
	}
	return true
}

func testShardedEquivalence(t *testing.T, splitRun bool) {
	region := []int32{-1, 0, 0, 1, 1, 1}
	const lah = time.Millisecond
	for seed := int64(0); seed < 8; seed++ {
		specs := genSpecs(rand.New(rand.NewSource(seed)), region, lah, 6, 4)
		seqLog, seqNow, seqSteps, seqSched := runMini(t, specs, region, lah, 1, splitRun)
		shLog, shNow, shSteps, shSched := runMini(t, specs, region, lah, 2, splitRun)
		if !bytes.Equal(seqLog, shLog) {
			t.Fatalf("seed %d: trace diverged:\nseq:\n%s\nsharded:\n%s", seed, seqLog, shLog)
		}
		if seqNow != shNow || seqSteps != shSteps || seqSched != shSched {
			t.Fatalf("seed %d: counters diverged: now %v/%v steps %d/%d sched %d/%d",
				seed, seqNow, shNow, seqSteps, shSteps, seqSched, shSched)
		}
	}
}

// TestShardedEquivalenceRandomTrees is the core sequential-vs-sharded
// equality property over randomized workloads.
func TestShardedEquivalenceRandomTrees(t *testing.T) {
	testShardedEquivalence(t, false)
}

// TestShardedEquivalenceRunUntil replays the same property with the run
// split across a RunUntil deadline and a final Run, covering the
// bounded-horizon path and worker restart across calls.
func TestShardedEquivalenceRunUntil(t *testing.T) {
	testShardedEquivalence(t, true)
}

// TestAttachShardedPreconditions pins the attach-time panics: a
// non-positive lookahead and a root engine that already holds events
// are both construction bugs.
func TestAttachShardedPreconditions(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { AttachSharded(New(1), 2, 0) })
	mustPanic("zero regions", func() { AttachSharded(New(1), 0, time.Millisecond) })
	mustPanic("pre-scheduled root", func() {
		e := New(1)
		e.Schedule(time.Millisecond, func() {})
		AttachSharded(e, 2, time.Millisecond)
	})
	mustPanic("window schedule on root", func() {
		e := New(1)
		s := AttachSharded(e, 1, time.Millisecond)
		s.inWindow = true
		e.Schedule(time.Millisecond, func() {})
	})
}
