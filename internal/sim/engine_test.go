package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("end time = %v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d ran out of order (got %d)", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var at []time.Duration
	e.Schedule(time.Millisecond, func() {
		at = append(at, e.Now())
		e.Schedule(2*time.Millisecond, func() {
			at = append(at, e.Now())
		})
	})
	e.Run()
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 3*time.Millisecond {
		t.Fatalf("timestamps = %v", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New(1)
	ran := false
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-time.Second, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.Schedule(time.Millisecond, func() { ran = true })
	tm.Stop()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(30*time.Millisecond, func() { got = append(got, 2) })
	e.RunUntil(20 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("ran %d events, want 1", len(got))
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	e.Run()
	if len(got) != 2 {
		t.Fatalf("ran %d events after Run, want 2", len(got))
	}
}

func TestMaxEventsBackstop(t *testing.T) {
	e := New(1)
	e.MaxEvents = 50
	var loop func()
	n := 0
	loop = func() {
		n++
		e.Schedule(time.Millisecond, loop)
	}
	e.Schedule(0, loop)
	e.Run()
	if n != 50 {
		t.Fatalf("executed %d events, want 50", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := New(seed)
		var trace []time.Duration
		for i := 0; i < 20; i++ {
			e.Schedule(time.Duration(e.Rand().Intn(100))*time.Millisecond, func() {
				trace = append(trace, e.Now())
				if e.Rand().Intn(2) == 0 {
					e.Schedule(time.Duration(e.Rand().Intn(10))*time.Millisecond, func() {
						trace = append(trace, e.Now())
					})
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAt(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(10*time.Millisecond, func() {
		e.ScheduleAt(5*time.Millisecond, func() { at = e.Now() }) // in the past: clamps
	})
	e.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past ScheduleAt ran at %v, want clamped to 10ms", at)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	New(1).Schedule(0, nil)
}

// TestRunUntilCancelledAtDeadline is a regression test for the old
// RunUntil, which popped dead head events in its own loop, bypassing
// the unified skip logic. Cancelled timers sitting exactly at and
// around the deadline must be discarded without executing, and live
// events past the deadline must stay queued.
func TestRunUntilCancelledAtDeadline(t *testing.T) {
	e := New(1)
	var got []int
	t1 := e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(15*time.Millisecond, func() { got = append(got, 2) })
	t3 := e.Schedule(20*time.Millisecond, func() { got = append(got, 3) }) // at the deadline
	t4 := e.Schedule(25*time.Millisecond, func() { got = append(got, 4) }) // past it
	e.Schedule(30*time.Millisecond, func() { got = append(got, 5) })
	t1.Stop()
	t3.Stop()
	t4.Stop()
	e.RunUntil(20 * time.Millisecond)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("ran %v, want [2]", got)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("after Run got %v, want [2 5]", got)
	}
}

// TestRunUntilMaxEventsWithDeadHeads verifies the MaxEvents backstop is
// honoured even when cancelled events pepper the queue (the old code
// popped dead heads outside the backstop check).
func TestRunUntilMaxEventsWithDeadHeads(t *testing.T) {
	e := New(1)
	e.MaxEvents = 3
	n := 0
	for i := 0; i < 10; i++ {
		tm := e.Schedule(time.Duration(2*i)*time.Millisecond, func() { n++ })
		e.Schedule(time.Duration(2*i+1)*time.Millisecond, func() { n++ })
		tm.Stop()
	}
	e.RunUntil(time.Second)
	if n != 3 {
		t.Fatalf("executed %d events, want 3 (MaxEvents)", n)
	}
}

func TestStrictScheduleAtPanics(t *testing.T) {
	e := New(1)
	e.Strict = true
	var recovered any
	e.Schedule(10*time.Millisecond, func() {
		defer func() { recovered = recover() }()
		e.ScheduleAt(5*time.Millisecond, func() {})
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Strict ScheduleAt into the past did not panic")
	}
	// Non-strict engines must keep the historical clamping behaviour.
	e2 := New(1)
	ran := false
	e2.Schedule(10*time.Millisecond, func() {
		e2.ScheduleAt(5*time.Millisecond, func() { ran = true })
	})
	e2.Run()
	if !ran {
		t.Fatal("lenient ScheduleAt did not clamp and run")
	}
}

// TestFIFOSurvivesSlotReuse drives schedule/cancel/reschedule churn so
// pooled slots are recycled mid-instant, then asserts same-instant FIFO
// order still follows scheduling order, not slot order.
func TestFIFOSurvivesSlotReuse(t *testing.T) {
	e := New(1)
	var got []int
	// Interleave doomed timers with live ones so the free list hands
	// out low-numbered slots to late schedules.
	var doomed []Timer
	for i := 0; i < 50; i++ {
		doomed = append(doomed, e.Schedule(5*time.Millisecond, func() { t.Fatal("cancelled event ran") }))
	}
	for _, tm := range doomed {
		tm.Stop()
	}
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
		// Churn: schedule and immediately cancel between live events.
		e.Schedule(5*time.Millisecond, func() { t.Fatal("cancelled event ran") }).Stop()
	}
	// Second wave at the same instant, scheduled from inside an event.
	e.Schedule(time.Millisecond, func() {
		for i := 50; i < 100; i++ {
			i := i
			e.Schedule(4*time.Millisecond, func() { got = append(got, i) })
		}
	})
	e.Run()
	if len(got) != 100 {
		t.Fatalf("ran %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d ran out of order (got %d)", i, v)
		}
	}
}

func TestScheduleArg(t *testing.T) {
	e := New(1)
	var got []int
	fn := func(a any) { got = append(got, *a.(*int)) }
	x, y := 1, 2
	e.Schedule(10*time.Millisecond, func() { got = append(got, 3) })
	e.ScheduleArg(time.Millisecond, fn, &x)
	tm := e.ScheduleArg(2*time.Millisecond, fn, &y)
	tm.Stop()
	e.ScheduleArg(5*time.Millisecond, fn, &y)
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestScheduledCounter(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	tm.Stop()
	e.Run()
	if got := e.Scheduled(); got != 2 {
		t.Fatalf("Scheduled = %d, want 2 (cancelled events count)", got)
	}
	if got := e.Steps(); got != 1 {
		t.Fatalf("Steps = %d, want 1", got)
	}
}

func TestPendingTracksCancelledTimers(t *testing.T) {
	e := New(1)
	t1 := e.Schedule(10*time.Millisecond, func() {})
	t2 := e.Schedule(20*time.Millisecond, func() {})
	e.Schedule(30*time.Millisecond, func() {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	t1.Stop()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after Stop = %d, want 2", got)
	}
	t1.Stop() // double-Stop must not double-count
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after double Stop = %d, want 2", got)
	}
	if !e.Step() { // runs the 20ms event (10ms one is cancelled)
		t.Fatal("Step found no live event")
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("cancelled event executed: now = %v", e.Now())
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after Step = %d, want 1", got)
	}
	t2.Stop() // stopping an already-fired timer is a no-op
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after firing-then-Stop = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
	e.Schedule(time.Millisecond, func() {})
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after re-Schedule = %d, want 1", got)
	}
}
