// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant are executed in scheduling order
// (FIFO), which makes every run with the same seed fully deterministic —
// a property the protocol property-tests rely on.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	eng *Engine
	ev  *event
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer (only the first call takes effect).
func (t *Timer) Stop() {
	if t != nil && t.ev != nil && !t.ev.dead {
		t.ev.dead = true
		t.eng.live--
	}
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nsteps uint64
	// live counts queued events that are neither cancelled nor executed,
	// so Pending is O(1) instead of a heap scan.
	live int
	// MaxEvents bounds a run as a runaway-loop backstop (0 = unlimited).
	MaxEvents uint64
}

// New returns an engine whose random streams are derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. The returned Timer may be used to cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.live++
	return &Timer{eng: e, ev: ev}
}

// ScheduleAt runs fn at absolute virtual instant at (clamped to now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	return e.Schedule(at-e.now, fn)
}

// Step executes the next pending event. It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time ran backwards: %v < %v", ev.at, e.now))
		}
		// Mark consumed before running so a late Timer.Stop is a no-op.
		ev.dead = true
		e.live--
		e.now = ev.at
		e.nsteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or MaxEvents is hit.
// It returns the virtual time at which the simulation quiesced.
func (e *Engine) Run() time.Duration {
	for e.Step() {
		if e.MaxEvents > 0 && e.nsteps >= e.MaxEvents {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// later stay queued; the clock is advanced to deadline if it quiesced early.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
		if e.MaxEvents > 0 && e.nsteps >= e.MaxEvents {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of live queued events (cancelled timers
// excluded). It is O(1): the count is maintained incrementally by
// Schedule, Step, and Timer.Stop.
func (e *Engine) Pending() int { return e.live }
