// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant are executed in scheduling order
// (FIFO), which makes every run with the same seed fully deterministic —
// a property the protocol property-tests rely on.
//
// The event queue is allocation-free in steady state: event payloads
// live in a pooled slot arena reused through a free list, and the
// priority queue is a value-typed 4-ary heap of {at, seq, slot}
// entries. Schedule, Step, and Timer.Stop therefore do zero heap
// allocations once the arena has grown to the simulation's high-water
// mark. The engine is single-threaded by contract, so the pool needs no
// locking.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"p4update/internal/trace"
)

// entry is one element of the value-typed 4-ary event heap. The slot
// index points into Engine.slots, where the payload lives; keeping the
// heap free of pointers makes sifting cheap and allocation-free.
type entry struct {
	at   time.Duration
	seq  uint64
	slot int32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventSlot holds a scheduled event's payload. Slots are recycled via
// the engine's free list; gen disambiguates a recycled slot from the
// incarnation an outstanding Timer refers to.
//
// Exactly one heap entry references a live or cancelled slot at any
// time: Timer.Stop only marks the slot dead, and the slot returns to
// the free list when its heap entry is discarded (peekLive) or executed
// (Step). This invariant is what lets heap entries omit a generation.
type eventSlot struct {
	fn   func()
	afn  func(any)
	arg  any
	gen  uint32
	live bool
	// key is the authoritative heap key of this slot's current
	// incarnation under sharded execution (see sharded.go): a heap entry
	// whose seq differs from it is stale and dropped on sight. Unused
	// (and never read) on an unsharded engine.
	key uint64
}

// Timer is a handle to a scheduled event that can be cancelled. The
// zero value is a valid no-op timer.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer (only the first call takes effect).
func (t Timer) Stop() {
	e := t.eng
	if e == nil {
		return
	}
	s := &e.slots[t.slot]
	if s.gen != t.gen || !s.live {
		return
	}
	s.live = false
	// Drop closure references now; the slot itself is reclaimed when
	// its heap entry surfaces.
	s.fn, s.afn, s.arg = nil, nil, nil
	e.live--
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now    time.Duration
	heap   []entry
	slots  []eventSlot
	free   []int32
	seq    uint64
	rng    *rand.Rand
	nsteps uint64
	nsched uint64
	// live counts queued events that are neither cancelled nor executed,
	// so Pending is O(1) instead of a heap scan.
	live int
	// MaxEvents bounds a run as a runaway-loop backstop (0 = unlimited).
	MaxEvents uint64
	// Strict makes scheduling into the past a panic instead of silently
	// clamping to now, so protocol bugs surface in tests.
	Strict bool
	// AfterStep, when set, runs after every executed event. It is the
	// observation hook of the continuous invariant auditor
	// (internal/audit): it must only read simulation state, never
	// schedule events or draw from the engine's random streams, so an
	// audited run stays step-for-step identical to an unaudited one.
	AfterStep func()
	// Trace is the trial's flight recorder (nil = tracing off). The
	// engine is its carrier, not a user: every protocol layer reaches
	// the recorder through its engine pointer, paying one nil check per
	// instrumentation site. Like AfterStep, recording is pure
	// observation, so a traced run is step-for-step identical to an
	// untraced one.
	Trace *trace.Recorder

	// sh links this engine into a sharded runtime (nil = plain
	// sequential engine; the hot path stays allocation-free and
	// branch-identical apart from one nil check in push). shardID is the
	// region this engine executes, or -1 for the root/coordinator.
	// pendIdx issues provisional window keys (see sharded.go).
	sh      *Sharded
	shardID int32
	pendIdx uint64
}

// New returns an engine whose random streams are derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps reports how many events have been executed so far. On a
// sharded root engine it aggregates across all region engines, so the
// count matches a sequential run of the same trial.
func (e *Engine) Steps() uint64 {
	if e.sh != nil && e.shardID < 0 {
		return e.sh.totalSteps()
	}
	return e.nsteps
}

// Scheduled reports how many events have been scheduled so far,
// including cancelled ones. On a sharded root engine this is the global
// sequence counter, which at quiescence equals the sequential count.
func (e *Engine) Scheduled() uint64 {
	if e.sh != nil && e.shardID < 0 {
		return e.sh.gseq
	}
	return e.nsched
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. The returned Timer may be used to cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return e.push(e.now+delay, fn, nil, nil)
}

// ScheduleArg runs fn(arg) after delay of virtual time. It exists so
// hot paths can schedule a long-lived method value plus a pooled
// argument instead of allocating a fresh closure per event.
func (e *Engine) ScheduleArg(delay time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: ScheduleArg with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return e.push(e.now+delay, nil, fn, arg)
}

// ScheduleAt runs fn at absolute virtual instant at. A past instant is
// clamped to now, unless Strict is set, in which case it panics.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < e.now {
		e.mustNotRegress(at)
		at = e.now
	}
	return e.push(at, fn, nil, nil)
}

// mustNotRegress flags an attempt to schedule into the past. Under
// Strict it panics; otherwise the caller clamps to now, preserving the
// engine's historical lenient behaviour.
func (e *Engine) mustNotRegress(at time.Duration) {
	if e.Strict {
		panic(fmt.Sprintf("sim: ScheduleAt into the past: %v < now %v", at, e.now))
	}
}

// push allocates a slot (reusing the free list), stores the payload,
// and inserts a heap entry. Exactly one of fn/afn is non-nil. Engines
// attached to a sharded runtime divert to its key-assignment logic.
func (e *Engine) push(at time.Duration, fn func(), afn func(any), arg any) Timer {
	if e.sh != nil {
		return e.sh.push(e, at, fn, afn, arg)
	}
	slot := e.allocSlot(fn, afn, arg)
	e.heapPush(entry{at: at, seq: e.seq, slot: slot})
	e.seq++
	e.nsched++
	e.live++
	return Timer{eng: e, slot: slot, gen: e.slots[slot].gen}
}

// allocSlot takes a slot from the free list (or grows the arena) and
// stores the payload.
func (e *Engine) allocSlot(fn func(), afn func(any), arg any) int32 {
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		slot = int32(len(e.slots) - 1)
	}
	s := &e.slots[slot]
	s.fn, s.afn, s.arg = fn, afn, arg
	s.live = true
	return slot
}

// freeSlot returns a slot to the free list, bumping its generation so
// stale Timers become no-ops.
func (e *Engine) freeSlot(slot int32) {
	s := &e.slots[slot]
	s.fn, s.afn, s.arg = nil, nil, nil
	s.live = false
	s.gen++
	e.free = append(e.free, slot)
}

// peekLive discards cancelled events at the head of the heap (freeing
// their slots) and reports whether a live event remains. This is the
// single place dead events are skipped; Step and RunUntil both go
// through it, so the MaxEvents backstop and the skip logic cannot
// diverge.
func (e *Engine) peekLive() bool {
	for len(e.heap) > 0 {
		slot := e.heap[0].slot
		if e.slots[slot].live {
			return true
		}
		e.heapPop()
		e.freeSlot(slot)
	}
	return false
}

// Step executes the next pending event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if !e.peekLive() {
		return false
	}
	head := e.heap[0]
	e.heapPop()
	if head.at < e.now {
		panic(fmt.Sprintf("sim: time ran backwards: %v < %v", head.at, e.now))
	}
	s := &e.slots[head.slot]
	fn, afn, arg := s.fn, s.afn, s.arg
	// Reclaim the slot before running so a late Timer.Stop is a no-op
	// and the slot is immediately reusable by events fn schedules.
	e.live--
	e.freeSlot(head.slot)
	e.now = head.at
	e.nsteps++
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	if e.AfterStep != nil {
		e.AfterStep()
	}
	return true
}

// Run executes events until the queue drains or MaxEvents is hit.
// It returns the virtual time at which the simulation quiesced. On a
// sharded root engine it drives the parallel window/barrier loop.
func (e *Engine) Run() time.Duration {
	if e.sh != nil && e.shardID < 0 {
		return e.sh.run(0, false)
	}
	for e.Step() {
		if e.MaxEvents > 0 && e.nsteps >= e.MaxEvents {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// later stay queued; the clock is advanced to deadline if it quiesced early.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.sh != nil && e.shardID < 0 {
		return e.sh.run(deadline, true)
	}
	for e.peekLive() {
		if e.heap[0].at > deadline {
			break
		}
		e.Step()
		if e.MaxEvents > 0 && e.nsteps >= e.MaxEvents {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// NextAt reports the timestamp of the next live queued event, if any.
// It lets a real-time host (cmd/controllerd, cmd/switchd) sleep exactly
// until the next virtual deadline instead of polling. Not supported on
// a sharded root engine.
func (e *Engine) NextAt() (time.Duration, bool) {
	if !e.peekLive() {
		return 0, false
	}
	return e.heap[0].at, true
}

// Pending reports the number of live queued events (cancelled timers
// excluded). It is O(1): the count is maintained incrementally by
// Schedule, Step, and Timer.Stop. On a sharded root engine it sums the
// region engines' queues.
func (e *Engine) Pending() int {
	if e.sh != nil && e.shardID < 0 {
		n := e.live
		for _, re := range e.sh.regions {
			n += re.live
		}
		return n
	}
	return e.live
}

// heapPush inserts it into the 4-ary min-heap.
func (e *Engine) heapPush(it entry) {
	e.heap = append(e.heap, it)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// heapPop removes the minimum entry from the 4-ary min-heap.
func (e *Engine) heapPop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !entryLess(e.heap[best], e.heap[i]) {
			break
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		i = best
	}
}
