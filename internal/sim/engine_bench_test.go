package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleStep measures the engine's hot loop in steady
// state: one Schedule plus one Step per iteration with a prebuilt
// closure. With the pooled event queue this must run at 0 allocs/op.
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := New(1)
	fn := func() {}
	// Warm the queue so slices reach their steady-state capacity.
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleStopStep exercises slot churn: half the events
// are cancelled before they fire, as protocol watchdogs do.
func BenchmarkEngineScheduleStopStep(b *testing.B) {
	e := New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(time.Microsecond, fn)
		e.Schedule(2*time.Microsecond, fn)
		t.Stop()
		e.Step()
	}
}
