package sim

import (
	"testing"
	"time"
)

// TestHotPathZeroAllocsNilTrace guards the flight recorder's
// zero-overhead contract at the engine level: with no recorder attached
// (Trace == nil, the default), the steady-state Schedule+Step loop must
// not allocate. Benchmarks report allocs but do not fail on them; this
// assertion does.
func TestHotPathZeroAllocsNilTrace(t *testing.T) {
	e := New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	e.Run()
	if e.Trace != nil {
		t.Fatal("fresh engine unexpectedly carries a recorder")
	}
	allocs := testing.AllocsPerRun(10000, func() {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("engine hot path allocates %.1f/op with nil recorder, want 0", allocs)
	}
}
