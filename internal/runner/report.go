package runner

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// Report is the JSON export of one evaluation run: the merged per-trial
// results plus the execution context needed to interpret wall-clock
// numbers (worker count, host parallelism). It is the payload format of
// cmd/p4update's -json flag and of the BENCH_*.json trajectory files.
type Report struct {
	Name       string        `json:"name"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GoVersion  string        `json:"go_version"`
	Trials     int           `json:"trials"`
	Failed     int           `json:"failed"`
	WallClock  time.Duration `json:"wall_clock_ns"`
	Results    []Result      `json:"results"`
}

// NewReport assembles a report over merged results.
func NewReport(name string, workers int, wallClock time.Duration, results []Result) *Report {
	return &Report{
		Name:       name,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Trials:     len(results),
		Failed:     Failed(results),
		WallClock:  wallClock,
		Results:    results,
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
