package runner_test

// Determinism and fault-tolerance coverage for the systems added behind
// the update-system registry (local-verify, ppcu, opt-oracle). The
// pre-existing grids cover them too (the default system list now spans
// the whole registry), but these tests pin the new systems' guarantees
// in isolation so a regression names them directly.

import (
	"reflect"
	"testing"

	"p4update/internal/experiments"
	"p4update/internal/runner"
	"p4update/internal/topo"
)

var newSystems = []experiments.SystemKind{
	experiments.KindLocalVerify,
	experiments.KindPPCU,
	experiments.KindOptOracle,
}

// TestNewSystemsDeterministicAcrossWorkerCounts shards the single-flow
// grid restricted to the three new systems across 1, 2, 4 and 8 workers
// and requires identical merged results — including each trial's Extra
// metrics, which therefore must only carry deterministic values.
func TestNewSystemsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []runner.Result {
		r, err := experiments.Fig7SingleFlowOpts(topo.Synthetic, "synthetic-new", 6, 1,
			experiments.RunOptions{Workers: workers, Systems: newSystems})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stripHost(r.Trials)
	}
	seq := run(1)
	for i, r := range seq {
		if r.Failed || len(r.Samples) == 0 {
			t.Fatalf("trial %d (%s) did not complete: %s", i, r.Label, r.Err)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("new systems workers=%d produced different merged results", workers)
		}
	}
}

// TestNewSystemsCompleteUnderFaults runs the chaos cell the §11
// evaluation calls heavy — 20% frame loss, 20% reordering, one switch
// crash/restart cycle — with the invariant auditor sweeping every step,
// and requires every flow update of every new system to complete: their
// recovery paths (instruction re-sends, round re-sends, phase re-flips)
// must survive arbitrary loss like P4Update's do.
func TestNewSystemsCompleteUnderFaults(t *testing.T) {
	res, err := experiments.FaultSweep([]float64{0.2}, []float64{0.2}, 1, 1, 2, 1,
		experiments.RunOptions{Systems: newSystems})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Trials {
		if r.Failed {
			t.Fatalf("trial %d (%s) crashed: %s", i, r.Label, r.Err)
		}
	}
	for _, row := range res.Rows {
		if row.Failed > 0 {
			t.Errorf("%s: %d runs crashed", row.System, row.Failed)
		}
		if row.FlowsDone != row.Flows {
			t.Errorf("%s: %d/%d flow updates completed under loss=%.2f reorder=%.2f",
				row.System, row.FlowsDone, row.Flows, row.Cell.Loss, row.Cell.Reorder)
		}
		if v := row.Violations(); v != 0 {
			t.Errorf("%s: auditor observed %d invariant violations", row.System, v)
		}
	}
}
