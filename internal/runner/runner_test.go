package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"p4update/internal/topo"
	"p4update/internal/wiring"
)

// sleepTrial returns a trial that sleeps and then emits its index as a
// one-sample metric.
func sleepTrial(i int, d time.Duration) Trial {
	return Trial{
		Label:  fmt.Sprintf("trial%02d", i),
		System: "test",
		Seed:   int64(i),
		Run: func() (Metrics, error) {
			time.Sleep(d)
			return Metrics{Samples: []time.Duration{time.Duration(i)}}, nil
		},
	}
}

func TestPoolMergesByTrialIndex(t *testing.T) {
	// Later trials sleep less, so under parallel execution they complete
	// first; the merged results must still come back in submission order.
	const n = 8
	trials := make([]Trial, n)
	for i := 0; i < n; i++ {
		trials[i] = sleepTrial(i, time.Duration(n-i)*5*time.Millisecond)
	}
	p := &Pool{Workers: 4}
	results := p.Run(trials)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if want := fmt.Sprintf("trial%02d", i); r.Label != want {
			t.Errorf("result %d labeled %q, want %q", i, r.Label, want)
		}
		if len(r.Samples) != 1 || r.Samples[0] != time.Duration(i) {
			t.Errorf("result %d carries samples %v", i, r.Samples)
		}
		if r.Failed {
			t.Errorf("result %d unexpectedly failed: %s", i, r.Err)
		}
	}
}

// stripWallClock zeroes the host-side fields (wall time, allocation
// counters) so runs are comparable; only simulation outputs remain.
func stripWallClock(results []Result) []Result {
	out := make([]Result, len(results))
	copy(out, results)
	for i := range out {
		out[i].WallClock = 0
		out[i].Allocs = 0
		out[i].AllocBytes = 0
	}
	return out
}

func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []Trial {
		trials := make([]Trial, 12)
		for i := range trials {
			i := i
			trials[i] = Trial{
				Label:  fmt.Sprintf("t%d", i),
				System: "test",
				Seed:   int64(i),
				Run: func() (Metrics, error) {
					return Metrics{
						Samples: []time.Duration{time.Duration(i * i)},
						Values:  map[string]float64{"v": float64(i)},
					}, nil
				},
			}
		}
		return trials
	}
	seq := stripWallClock((&Pool{Workers: 1}).Run(mk()))
	for _, workers := range []int{2, 4, 8} {
		par := stripWallClock((&Pool{Workers: workers}).Run(mk()))
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d produced different merged results", workers)
		}
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	trials := []Trial{
		sleepTrial(0, 0),
		{Label: "boom", System: "test", Run: func() (Metrics, error) { panic("kaboom") }},
		sleepTrial(2, 0),
	}
	results := (&Pool{Workers: 2}).Run(trials)
	if results[0].Failed || results[2].Failed {
		t.Error("healthy trials marked failed")
	}
	if !results[1].Failed {
		t.Fatal("panicking trial not marked failed")
	}
	if !strings.Contains(results[1].Err, "panicked") || !strings.Contains(results[1].Err, "kaboom") {
		t.Errorf("panic error = %q", results[1].Err)
	}
	if Failed(results) != 1 {
		t.Errorf("Failed = %d, want 1", Failed(results))
	}
}

func TestPoolTimeoutRecordsFailedTrial(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	trials := []Trial{
		{Label: "stuck", System: "test", Run: func() (Metrics, error) {
			<-block
			return Metrics{}, nil
		}},
		sleepTrial(1, 0),
	}
	results := (&Pool{Workers: 2, Timeout: 20 * time.Millisecond}).Run(trials)
	if !results[0].Failed || !strings.Contains(results[0].Err, "timed out") {
		t.Fatalf("stuck trial: failed=%v err=%q", results[0].Failed, results[0].Err)
	}
	if results[1].Failed {
		t.Error("fast trial marked failed")
	}
}

func TestPoolNilRunIsFailure(t *testing.T) {
	results := (&Pool{}).Run([]Trial{{Label: "empty"}})
	if !results[0].Failed {
		t.Fatal("trial without Run not marked failed")
	}
}

func TestBedTrialWiresFullSystem(t *testing.T) {
	oldP, newP := topo.SyntheticPaths()
	trial := BedTrial("bed", "p4update-auto", topo.Synthetic(),
		wiring.Config{Seed: 1, MaxEvents: 1_000_000},
		func(sys *wiring.System) (Metrics, error) {
			f, err := sys.Ctl.RegisterFlow(0, 7, oldP, 1000)
			if err != nil {
				return Metrics{}, err
			}
			u, err := sys.Trigger(f, newP)
			if err != nil {
				return Metrics{}, err
			}
			sys.Eng.Run()
			if !u.Done() {
				return Metrics{}, fmt.Errorf("update did not complete")
			}
			return Metrics{Samples: []time.Duration{u.Completed - u.Sent}}, nil
		})
	results := (&Pool{Workers: 1}).Run([]Trial{trial})
	r := results[0]
	if r.Failed {
		t.Fatalf("bed trial failed: %s", r.Err)
	}
	if len(r.Samples) != 1 || r.Samples[0] <= 0 {
		t.Fatalf("samples = %v", r.Samples)
	}
	if r.VirtualTime <= 0 || r.Events == 0 {
		t.Errorf("engine metrics not captured: virtual=%v events=%d", r.VirtualTime, r.Events)
	}
	if r.Seed != 1 {
		t.Errorf("seed = %d, want 1 (from wiring config)", r.Seed)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	results := (&Pool{Workers: 2}).Run([]Trial{sleepTrial(0, 0), sleepTrial(1, 0)})
	rep := NewReport("unit", 2, 123*time.Millisecond, results)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Workers != 2 || back.Trials != 2 || back.Failed != 0 {
		t.Errorf("round-tripped header = %+v", back)
	}
	if len(back.Results) != 2 || back.Results[1].Label != "trial01" {
		t.Errorf("round-tripped results = %+v", back.Results)
	}
}
