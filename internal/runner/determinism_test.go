package runner_test

// Cross-package determinism tests: they drive the real experiment
// constructors (internal/experiments) through the pool at several
// worker counts and require identical merged output. They live in an
// external test package because experiments imports runner.

import (
	"reflect"
	"testing"
	"time"

	"p4update/internal/experiments"
	"p4update/internal/runner"
	"p4update/internal/topo"
)

// stripHost zeroes host-side measurements (wall clock, allocation
// deltas) that legitimately vary between runs and across worker counts.
func stripHost(results []runner.Result) []runner.Result {
	out := make([]runner.Result, len(results))
	copy(out, results)
	for i := range out {
		out[i].WallClock = 0
		out[i].Allocs = 0
		out[i].AllocBytes = 0
	}
	return out
}

func TestFig7DeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []runner.Result {
		r, err := experiments.Fig7SingleFlowOpts(topo.Synthetic, "synthetic", 6, 1,
			experiments.RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stripHost(r.Trials)
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("fig7 workers=%d produced different merged results", workers)
		}
	}
}

// TestManyFlowsDeterministicAcrossWorkerCounts runs the many-flow scale
// experiment — hundreds of simultaneous updates per trial over one
// shared frozen snapshot, plan cache and workload cache — at several
// worker counts and requires byte-identical merged results. 150 flows
// on B4 exceeds its 132 distinct (src, dst) pairs, so the salted
// flow-ID path is exercised too.
func TestManyFlowsDeterministicAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name    string
		mk      func() *topo.Topology
		fatTree bool
		flows   int
		runs    int
	}{
		{"b4", topo.B4, false, 150, 4},
		{"fattree8", func() *topo.Topology { return topo.FatTree(8) }, true, 200, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) []runner.Result {
				r, err := experiments.Fig7ManyFlowsOpts(tc.mk, tc.name, tc.fatTree, tc.flows, tc.runs, 1,
					experiments.RunOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return stripHost(r.Trials)
			}
			seq := run(1)
			for i, r := range seq {
				if r.Failed {
					t.Fatalf("trial %d (%s) failed: %s", i, r.Label, r.Err)
				}
			}
			for _, workers := range []int{2, 4, 8} {
				if par := run(workers); !reflect.DeepEqual(seq, par) {
					t.Fatalf("manyflows %s workers=%d produced different merged results", tc.name, workers)
				}
			}
		})
	}
}

// TestFig8DeterministicAcrossWorkerCounts checks the fig8 grid's
// deterministic skeleton — trial order, labels, systems, seeds,
// failure status — across worker counts. The measured Values are
// host wall-clock preparation times, so they are stripped along with
// the other host metrics.
func TestFig8DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 grid is slow under -short")
	}
	run := func(workers int) []runner.Result {
		r, err := experiments.Fig8Opts(false, 10, 2, 1,
			experiments.RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := stripHost(r.Trials)
		for i := range out {
			out[i].Values = nil
		}
		return out
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("fig8 produced no trials")
	}
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("fig8 workers=%d produced different merged results", workers)
		}
	}
}

// TestChurnDeterministicAcrossWorkerCounts runs the streaming churn
// scenario — Poisson arrivals/departures, reroute waves, live-flow slot
// recycling, incremental oracle repair, batched UIM emission — at
// several worker counts and requires byte-identical merged results.
// Host-side values (wall clock, allocs, wall throughput) are stripped;
// everything else, including the per-update samples and the harness
// counters, must match exactly.
func TestChurnDeterministicAcrossWorkerCounts(t *testing.T) {
	co := experiments.DefaultChurnOpts()
	co.ArrivalRate = 600
	co.MeanLifetime = 250 * time.Millisecond
	co.Duration = 400 * time.Millisecond
	run := func(workers int) []runner.Result {
		r, err := experiments.RunChurn(func() *topo.Topology { return topo.FatTree(4) },
			"fattree4", 4, 1, co, experiments.RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := stripHost(r.Trials)
		for i := range out {
			vals := make(map[string]float64, len(out[i].Values))
			for k, v := range out[i].Values {
				if k == "wall_flows_per_sec" {
					continue
				}
				vals[k] = v
			}
			out[i].Values = vals
		}
		return out
	}
	seq := run(1)
	for i, r := range seq {
		if r.Failed {
			t.Fatalf("trial %d (%s) failed: %s", i, r.Label, r.Err)
		}
		if len(r.Samples) == 0 {
			t.Fatalf("trial %d (%s) completed no updates", i, r.Label)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("churn workers=%d produced different merged results", workers)
		}
	}
}

// TestFaultSweepDeterministicAcrossWorkerCounts runs the chaos sweep —
// per-trial fault injection plus the every-step invariant auditor — at
// several worker counts and requires byte-identical merged results,
// rendered table included: the injector's split PRNG streams and the
// auditor's sweeps are strictly per-trial state, so sharding must not
// leak into them.
func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (string, []runner.Result) {
		r, err := experiments.FaultSweep([]float64{0, 0.1}, []float64{0.1}, 1, 1, 2, 1,
			experiments.RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r.String(), stripHost(r.Trials)
	}
	seqTable, seq := run(1)
	if len(seq) == 0 {
		t.Fatal("fault sweep produced no trials")
	}
	for _, workers := range []int{2, 4, 8} {
		parTable, par := run(workers)
		if parTable != seqTable {
			t.Fatalf("faults workers=%d rendered a different table:\n%s\nvs\n%s", workers, parTable, seqTable)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("faults workers=%d produced different merged results", workers)
		}
	}
}
