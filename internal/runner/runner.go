// Package runner executes evaluation trials in parallel.
//
// The paper's evaluation grid — topology × system × seed — consists of
// fully independent trials: every trial owns its simulation engine, its
// random streams, and its topology instance, so trials shard across a
// worker pool without any shared state. The pool guarantees
// deterministic merging: results are returned ordered by trial index,
// never by completion order, so a parallel run's merged output is
// byte-identical to a sequential run over the same trial list.
//
// A trial that panics or exceeds the per-trial timeout is recorded as a
// failed Result instead of killing the run.
package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/wiring"
)

// Metrics is the measured portion of one trial: wall-clock cost,
// virtual quiescence time and executed event count of the simulation,
// the update-time samples the trial contributes to its figure, and any
// named scalar metrics (Fig. 8 reports preparation-time ratios).
type Metrics struct {
	// WallClock is the host time the trial took (filled by the pool).
	WallClock time.Duration `json:"wall_clock_ns"`
	// VirtualTime is the simulation's quiescence instant.
	VirtualTime time.Duration `json:"virtual_ns,omitempty"`
	// Events is the number of simulation events executed.
	Events uint64 `json:"events,omitempty"`
	// EventsScheduled is the number of simulation events scheduled
	// (including cancelled timers); deterministic per seed.
	EventsScheduled uint64 `json:"events_scheduled,omitempty"`
	// Allocs and AllocBytes are the host heap allocations observed
	// during the trial (filled by the pool). They are host-side
	// profiling aids, not simulation outputs: with more than one worker
	// the runtime counters are shared, so concurrent trials contaminate
	// each other's deltas, and the runtime flushes allocation counts in
	// span-sized batches, so individual deltas are coarse (meaningful in
	// aggregate over many trials). Determinism comparisons must ignore
	// them, like WallClock.
	Allocs     uint64 `json:"allocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Shards is the number of region workers that executed the trial (1 =
	// sequential, including every sharding fallback); Gomaxprocs the host
	// parallelism available to them; ShardEventsScheduled the per-engine
	// scheduled-event counts (element 0 the resident/root engine, then one
	// per region). Shards and ShardEventsScheduled describe the execution
	// strategy, not the simulation (a sharded trial's Samples/Events/
	// traces are byte-identical to sequential); Gomaxprocs is host-side
	// like WallClock. Determinism comparisons must ignore all three.
	Shards               int      `json:"shards,omitempty"`
	Gomaxprocs           int      `json:"gomaxprocs,omitempty"`
	ShardEventsScheduled []uint64 `json:"shard_events_scheduled,omitempty"`
	// Samples are the trial's measured update times. An empty slice
	// marks a trial whose update did not complete (a failed run in the
	// figure's sense, distinct from a crashed trial).
	Samples []time.Duration `json:"samples_ns,omitempty"`
	// Values holds named scalar metrics (e.g. Fig. 8's "ratio").
	Values map[string]float64 `json:"values,omitempty"`
	// Extra holds per-system metric extras reported through the update
	// system's metrics hook (wiring.MetricsReporter) — e.g. Central's
	// dependency rounds — so the report schema stays stable as systems
	// are added.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Report carries a structured per-trial operator report (e.g. the
	// soak scenario's SLO report) as pre-marshaled JSON, riding into the
	// JSON trial export verbatim; nil for trials without one. Trial
	// bodies marshal it themselves so it derives only from virtual-time
	// state and stays byte-identical across worker counts.
	Report json.RawMessage `json:"report,omitempty"`
	// Trace summarizes the trial's flight-recorder content (event counts
	// by kind/class and by node); nil when tracing was off. It sits next
	// to the alloc counters in the JSON trial report.
	Trace *trace.Summary `json:"trace,omitempty"`
	// TraceRec is the trial's recorder itself, for callers that export
	// the full event log (never serialized into reports).
	TraceRec *trace.Recorder `json:"-"`
}

// Trial is one cell of the evaluation grid.
type Trial struct {
	// Label names the trial for reports ("fig7a/run3").
	Label string `json:"label"`
	// System is the evaluated system's display name.
	System string `json:"system"`
	// Seed is the trial's simulation seed.
	Seed int64 `json:"seed"`
	// Run executes the trial and returns its measurements. The pool
	// fills Metrics.WallClock itself.
	Run func() (Metrics, error) `json:"-"`
}

// BedTrial builds a Trial that wires a full system from the shared
// construction path — g is the (typically frozen, figure-shared)
// topology, cfg carries the system kind, seed and bed configuration —
// and hands it to body. VirtualTime and Events are captured from the
// engine after body returns.
//
// All trials of a grid share g read-only: freezing it (topo.Freeze)
// makes concurrent path queries safe and routes them through the shared
// snapshot oracle, so per-trial setup no longer rebuilds the topology
// or re-warms a private path cache.
func BedTrial(label, system string, g *topo.Topology, cfg wiring.Config,
	body func(*wiring.System) (Metrics, error)) Trial {
	return Trial{
		Label:  label,
		System: system,
		Seed:   cfg.Seed,
		Run: func() (Metrics, error) {
			sys := wiring.New(g, cfg)
			m, err := body(sys)
			if extra := sys.ExtraMetrics(); len(extra) > 0 {
				if m.Extra == nil {
					m.Extra = extra
				} else {
					for k, v := range extra {
						if _, taken := m.Extra[k]; !taken {
							m.Extra[k] = v
						}
					}
				}
			}
			m.VirtualTime = sys.Eng.Now()
			m.Events = sys.Eng.Steps()
			m.EventsScheduled = sys.Eng.Scheduled()
			m.Shards = sys.EffectiveShards()
			m.Gomaxprocs = runtime.GOMAXPROCS(0)
			if sys.Sharded != nil {
				m.ShardEventsScheduled = sys.Sharded.PerShardScheduled()
			}
			if sys.Trace != nil {
				m.Trace = sys.Trace.Summarize()
				m.TraceRec = sys.Trace
			}
			return m, err
		},
	}
}

// Result is one trial's outcome.
type Result struct {
	// Index is the trial's position in the submitted list; results are
	// always merged in index order.
	Index  int    `json:"index"`
	Label  string `json:"label"`
	System string `json:"system"`
	Seed   int64  `json:"seed"`
	Metrics
	// Failed marks a trial that panicked, timed out, or returned an
	// error; Err carries the message.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// Pool runs trials across a fixed set of workers.
type Pool struct {
	// Workers is the concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each trial's wall-clock execution (0 = unlimited).
	// A timed-out trial's goroutine is abandoned (the simulation cannot
	// be interrupted mid-event); its engine's MaxEvents backstop keeps
	// the leak bounded.
	Timeout time.Duration
}

// NumWorkers reports the effective worker count.
func (p *Pool) NumWorkers() int {
	if p == nil || p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// Run executes all trials and returns their results ordered by trial
// index. It never returns early: failed trials are recorded in place.
func (p *Pool) Run(trials []Trial) []Result {
	results := make([]Result, len(trials))
	workers := p.NumWorkers()
	if workers > len(trials) {
		workers = len(trials)
	}
	if workers <= 1 {
		sc := newScratch()
		for i, t := range trials {
			results[i] = p.runOne(i, t, sc)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker reuses one scratch (outcome channel + timeout
			// timer) across all the trials it executes.
			sc := newScratch()
			for i := range jobs {
				results[i] = p.runOne(i, trials[i], sc)
			}
		}()
	}
	for i := range trials {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// outcome is one trial's raw return, passed from the execution
// goroutine to the supervising worker.
type outcome struct {
	m   Metrics
	err error
}

// scratch is per-worker reusable trial-supervision state: the outcome
// channel and the timeout timer survive across trials, so supervising a
// trial allocates nothing beyond the execution goroutine itself.
type scratch struct {
	done  chan outcome
	timer *time.Timer
}

func newScratch() *scratch {
	return &scratch{done: make(chan outcome, 1)}
}

// runOne executes a single trial with panic recovery and the pool's
// per-trial timeout, reusing the worker's scratch.
func (p *Pool) runOne(index int, t Trial, sc *scratch) Result {
	res := Result{Index: index, Label: t.Label, System: t.System, Seed: t.Seed}
	start := time.Now()
	allocs0, bytes0 := readAllocs()
	m, err := p.execute(t, sc)
	m.WallClock = time.Since(start)
	allocs1, bytes1 := readAllocs()
	m.Allocs = allocs1 - allocs0
	m.AllocBytes = bytes1 - bytes0
	res.Metrics = m
	if err != nil {
		res.Failed = true
		res.Err = err.Error()
	}
	return res
}

func (p *Pool) execute(t Trial, sc *scratch) (Metrics, error) {
	if t.Run == nil {
		return Metrics{}, fmt.Errorf("runner: trial %q has no Run function", t.Label)
	}
	if p == nil || p.Timeout <= 0 {
		return recoverRun(t)
	}
	done := sc.done
	go func() {
		m, err := recoverRun(t)
		done <- outcome{m, err}
	}()
	if sc.timer == nil {
		sc.timer = time.NewTimer(p.Timeout)
	} else {
		sc.timer.Reset(p.Timeout)
	}
	select {
	case o := <-done:
		if !sc.timer.Stop() {
			// The timer fired concurrently with the outcome; drain it so
			// the next trial's Reset starts from a clean channel.
			select {
			case <-sc.timer.C:
			default:
			}
		}
		return o.m, o.err
	case <-sc.timer.C:
		// The abandoned goroutine still owns sc.done and will write its
		// late outcome there; hand the worker a fresh scratch so a stale
		// result can never be attributed to a later trial.
		sc.done = make(chan outcome, 1)
		sc.timer = nil
		return Metrics{}, fmt.Errorf("runner: trial %q timed out after %v", t.Label, p.Timeout)
	}
}

// recoverRun converts a trial panic into an error.
func recoverRun(t Trial) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: trial %q panicked: %v", t.Label, r)
		}
	}()
	return t.Run()
}

// readAllocs samples the runtime's cumulative heap-allocation counters
// (object count and bytes) without a stop-the-world pause.
func readAllocs() (objects, bytes uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// Failed counts the trials that crashed or timed out.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Failed {
			n++
		}
	}
	return n
}
