package ezsegway

import (
	"testing"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

type bed struct {
	eng *sim.Engine
	net *dataplane.Network
	ctl *controlplane.Controller
	ez  *Controller
}

func newBed(g *topo.Topology, seed int64, congestion bool) *bed {
	eng := sim.New(seed)
	eng.MaxEvents = 2_000_000
	net := dataplane.NewNetwork(eng, g)
	net.SetHandler(&Handler{Congestion: congestion})
	node := controlplane.UseCentroidControl(net)
	ctl := controlplane.NewController(net, node)
	return &bed{eng: eng, net: net, ctl: ctl, ez: NewController(ctl)}
}

func TestPreparePlanSegments(t *testing.T) {
	g := topo.Synthetic()
	oldP, newP := topo.SyntheticPaths()
	plan, err := PreparePlan(g, 1, oldP, newP, 2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(plan.Segments))
	}
	// Changed nodes: v0,v1 (segment 1), v2,v3 (segment 2), v4,v5,v6
	// (segment 3) — 7 rule changes, v7 unchanged.
	if len(plan.Changed) != 7 {
		t.Errorf("changed = %v, want 7 nodes", plan.Changed)
	}
	// The backward segment {v2,v3,v4} must be gated on v4's own apply.
	var v4 *packet.EZI
	for i, tgt := range plan.Targets {
		if tgt == 4 {
			v4 = plan.Msgs[i].(*packet.EZI)
		}
	}
	if v4 == nil {
		t.Fatal("no instruction for v4")
	}
	if !v4.Flags.Has(packet.EZInitAfterApply) {
		t.Errorf("v4 flags = %b, want EZInitAfterApply (in_loop upstream segment)", v4.Flags)
	}
}

func TestEZUpdateCompletes(t *testing.T) {
	g := topo.Synthetic()
	b := newBed(g, 1, false)
	oldP, newP := topo.SyntheticPaths()
	f, err := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.ez.TriggerUpdate(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	b.eng.Run()
	if !u.Done() {
		t.Fatal("ez-Segway update did not complete")
	}
	got, delivered := b.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v, want %v", got, newP)
	}
}

func TestEZSerializesUpdatesPerFlow(t *testing.T) {
	// ez-Segway defers a new update until the ongoing one completed
	// (§4.2: no fast-forward).
	g := topo.Synthetic()
	b := newBed(g, 2, false)
	oldP, newP := topo.SyntheticPaths()
	f, _ := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	u1, err := b.ez.TriggerUpdate(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := b.ez.TriggerUpdate(f, []topo.NodeID{0, 1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if u2 == nil {
		t.Fatal("deferred update returned a nil status")
	}
	if !u2.Queued {
		t.Fatal("second update launched while the first was in flight (not Queued)")
	}
	if u2.Version != 0 || u2.Sent != 0 {
		t.Errorf("queued status prematurely filled: version=%d sent=%v", u2.Version, u2.Sent)
	}
	b.eng.Run()
	if !u1.Done() {
		t.Fatal("first update did not complete")
	}
	if u2.Queued {
		t.Error("deferred update still marked Queued after launch")
	}
	if !u2.Done() {
		t.Fatal("deferred second update did not run to completion")
	}
	u2st, ok := b.ctl.Status(f, 3)
	if !ok || u2st != u2 {
		t.Fatal("tracked version-3 status is not the record handed out at trigger time")
	}
	if u2.Sent < u1.Completed {
		t.Errorf("deferred update sent at %v, before first completed at %v", u2.Sent, u1.Completed)
	}
	got, _ := b.net.TracePath(f, 0, 20)
	want := []topo.NodeID{0, 1, 2, 7}
	if len(got) != len(want) {
		t.Fatalf("final path %v, want %v", got, want)
	}
}

func TestEZLoopsOnMissingIntermediateUpdate(t *testing.T) {
	// The Fig-2 scenario: configuration (c) deploys while (b) is lost in
	// transit; without verification, ez-Segway creates the v1,v2,v3
	// forwarding loop until (b) finally arrives.
	g, cfgA, cfgB, cfgC := topo.Fig2Scenario()
	b := newBed(g, 3, false)
	_ = cfgA
	f, err := b.ctl.RegisterFlow(0, 4, []topo.NodeID{0, 1, 2, 3, 4}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := b.ctl.Flow(f)

	// (b): v0,v1,v2,v4 — reroutes v2 to v4 directly.
	pathB := []topo.NodeID{0, 1, 2, 4}
	planB, err := PreparePlan(g, f, rec.Path, pathB, 2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (c): v0,v3,v1,v2,v4 computed against (b) as believed-current state.
	pathC := []topo.NodeID{0, 3, 1, 2, 4}
	planC, err := PreparePlan(g, f, pathB, pathC, 3, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (c)'s instruction set must not touch v2 (its rule is unchanged
	// between (b) and (c)) — that is why the loop can form.
	for _, tgt := range planC.Targets {
		if tgt == 2 {
			t.Fatal("(c) instructs v2; scenario assumption broken")
		}
	}
	// Deploy (c) now; (b) arrives 500 ms later.
	b.ctl.PushMessages(f, 3, pathB, pathC, planC.Changed, planC.Targets, planC.Msgs, rec)
	b.eng.Schedule(500*time.Millisecond, func() {
		for i := range planB.Msgs {
			b.net.SendToSwitch(planB.Targets[i], planB.Msgs[i], 0)
		}
	})

	loopSeen := false
	for b.eng.Step() {
		visited, _ := b.net.TracePath(f, 0, 12)
		seen := map[topo.NodeID]bool{}
		for _, n := range visited {
			if seen[n] {
				loopSeen = true
			}
			seen[n] = true
		}
	}
	if !loopSeen {
		t.Error("ez-Segway never formed the Fig-2 loop (expected without verification)")
	}
	// After (b) arrived the state converges to (c)'s intent.
	got, delivered := b.net.TracePath(f, 0, 12)
	if !delivered {
		t.Fatalf("final state not delivering: %v", got)
	}
	for i, n := range got {
		if n != pathC[i] {
			t.Fatalf("final path %v, want %v", got, pathC)
		}
	}
	_ = cfgB
	_ = cfgC
}

func TestEZCongestionWaitsForCapacity(t *testing.T) {
	g := topo.New("y")
	s1 := g.AddNode("S1", 0, 0)
	s2 := g.AddNode("S2", 0, 0)
	x := g.AddNode("X", 0, 0)
	a := g.AddNode("A", 0, 0)
	bn := g.AddNode("B", 0, 0)
	c := g.AddNode("C", 0, 0)
	tt := g.AddNode("T", 0, 0)
	lat := time.Millisecond
	g.AddLink(s1, x, lat, 1000)
	g.AddLink(s2, x, lat, 1000)
	g.AddLink(x, a, lat, 10)
	g.AddLink(x, bn, lat, 10)
	g.AddLink(x, c, lat, 10)
	g.AddLink(a, tt, lat, 1000)
	g.AddLink(bn, tt, lat, 1000)
	g.AddLink(c, tt, lat, 1000)

	b := newBed(g, 4, true)
	f1, _ := b.ctl.RegisterFlow(s1, tt, []topo.NodeID{s1, x, a, tt}, 6000)
	f2, _ := b.ctl.RegisterFlow(s2, tt, []topo.NodeID{s2, x, bn, tt}, 6000)
	u1, err := b.ez.TriggerUpdate(f1, []topo.NodeID{s1, x, bn, tt})
	if err != nil {
		t.Fatal(err)
	}
	b.eng.Schedule(50*time.Millisecond, func() {
		if _, err := b.ez.TriggerUpdate(f2, []topo.NodeID{s2, x, c, tt}); err != nil {
			t.Error(err)
		}
	})
	for b.eng.Step() {
		sw := b.net.Switch(x)
		for p := topo.PortID(0); int(p) < g.Degree(x); p++ {
			if sw.ReservedK(p) > sw.CapacityK(p) {
				t.Fatalf("over capacity on X port %d", p)
			}
		}
	}
	if !u1.Done() {
		t.Fatal("blocked ez move never completed")
	}
	u2, ok := b.ctl.Status(f2, 2)
	if !ok || !u2.Done() {
		t.Fatal("f2 move did not complete")
	}
	if u1.Completed <= u2.Completed {
		t.Errorf("f1 (%v) should finish after f2 (%v) freed X-B", u1.Completed, u2.Completed)
	}
}
