// Package ezsegway implements the ez-Segway baseline (Nguyen et al.,
// SOSR'17) as adapted for the paper's evaluation (§9.1): the control plane
// partitions a flow update into in_loop / not_in_loop segments and
// computes the congestion dependency graph centrally; the data plane
// propagates notification messages upstream through each segment, with
// in_loop segments waiting for their downstream dependency. There is no
// local verification and no version fast-forward: the controller defers a
// new update of a flow until the previous one completed.
package ezsegway

import (
	"fmt"
	"sort"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Plan is a prepared ez-Segway update.
type Plan struct {
	Flow    packet.FlowID
	Version uint32
	NewPath []topo.NodeID
	// Changed lists the nodes whose forwarding rule changes (the
	// completion set).
	Changed []topo.NodeID
	// Targets/Msgs are the per-switch instructions.
	Targets []topo.NodeID
	Msgs    []packet.Message
	// Segments is the in_loop/not_in_loop decomposition (diagnostics).
	Segments []controlplane.Segment
	// ExecOrder holds, per needed segment, the update order encoded into
	// the segment's egress gateway (the original system ships this
	// vector with the instruction).
	ExecOrder [][]topo.NodeID
	// Deps maps each in_loop segment index to the downstream segment it
	// waits for.
	Deps map[int]int
}

// PreparePlan computes the ez-Segway instruction set for one flow update.
// Only switches participating in a changed segment receive instructions:
// rule-changers get their new port, segment egress-gateways get the
// initiation role (immediate for not_in_loop, after-own-apply for
// in_loop).
func PreparePlan(t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version uint32, sizeK uint32, priority uint8) (*Plan, error) {
	return PreparePlanDep(t, flow, oldPath, newPath, version, sizeK, priority, 0)
}

// PreparePlanDep is PreparePlan with an explicit static inter-flow
// dependency: every instruction carries the flow whose move must precede
// this one (0 = none).
func PreparePlanDep(t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version uint32, sizeK uint32, priority uint8, depFlow packet.FlowID) (*Plan, error) {

	if err := t.ValidatePath(newPath); err != nil {
		return nil, fmt.Errorf("ezsegway: new path: %w", err)
	}
	seg, err := controlplane.SegmentPaths(oldPath, newPath)
	if err != nil {
		return nil, fmt.Errorf("ezsegway: %w", err)
	}
	oldNext := make(map[topo.NodeID]topo.NodeID, len(oldPath))
	for i := 0; i+1 < len(oldPath); i++ {
		oldNext[oldPath[i]] = oldPath[i+1]
	}
	newNext := make(map[topo.NodeID]topo.NodeID, len(newPath))
	newIdx := make(map[topo.NodeID]int, len(newPath))
	for i, n := range newPath {
		newIdx[n] = i
		if i+1 < len(newPath) {
			newNext[n] = newPath[i+1]
		}
	}
	changes := func(n topo.NodeID) bool {
		nn, onNew := newNext[n]
		if !onNew {
			return false
		}
		on, onOld := oldNext[n]
		return !onOld || on != nn
	}

	p := &Plan{Flow: flow, Version: version, NewPath: newPath, Segments: seg.Segments}
	instr := make(map[topo.NodeID]*packet.EZI)
	get := func(n topo.NodeID) *packet.EZI {
		m, ok := instr[n]
		if !ok {
			m = &packet.EZI{
				Flow: flow, Version: version, FlowSizeK: sizeK,
				EgressPort: packet.NoPort, ChildPort: packet.NoPort,
				Priority: priority, DepFlow: depFlow,
			}
			if i := newIdx[n]; i+1 < len(newPath) {
				m.EgressPort = uint16(t.PortTo(n, newPath[i+1]))
			}
			if i := newIdx[n]; i > 0 {
				m.ChildPort = uint16(t.PortTo(n, newPath[i-1]))
			}
			if newIdx[n] == 0 {
				m.Flags |= packet.EZIngress
			}
			if newIdx[n] == len(newPath)-1 {
				m.Flags |= packet.EZEgress
			}
			instr[n] = m
		}
		return m
	}

	for _, s := range seg.Segments {
		// A segment needs work when any of its rule-setting nodes
		// (everything but the segment egress gateway) changes.
		needed := false
		for _, n := range s.Nodes[:len(s.Nodes)-1] {
			if changes(n) {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		for i, n := range s.Nodes[:len(s.Nodes)-1] {
			in := get(n)
			if i > 0 {
				in.Flags |= packet.EZRelay // segment interior
			}
			if changes(n) {
				p.Changed = append(p.Changed, n)
			}
		}
		eg := get(s.EgressGW)
		switch {
		case s.Forward || !changes(s.EgressGW):
			// not_in_loop segments start immediately; a gateway whose
			// own rule never changes has no downstream dependency.
			eg.Flags |= packet.EZInitNow
		default:
			eg.Flags |= packet.EZInitAfterApply
		}
		// Encode the intra-segment update order into the segment egress
		// (egress-to-ingress), as the original system does.
		order := make([]topo.NodeID, 0, len(s.Nodes))
		for i := len(s.Nodes) - 2; i >= 0; i-- {
			order = append(order, s.Nodes[i])
		}
		p.ExecOrder = append(p.ExecOrder, order)
	}
	// Resolve inter-segment dependencies: each in_loop segment waits for
	// its downstream neighbor chain.
	p.Deps = make(map[int]int)
	for i, s := range seg.Segments {
		if !s.Forward && i > 0 {
			p.Deps[i] = i - 1
		}
	}
	// Emit instructions in node-ID order: the send order must not depend
	// on map iteration, or same-instant message ties break differently
	// across runs of the same seed.
	targets := make([]topo.NodeID, 0, len(instr))
	for n := range instr {
		targets = append(targets, n)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, n := range targets {
		p.Targets = append(p.Targets, n)
		p.Msgs = append(p.Msgs, instr[n])
	}
	return p, nil
}

// flowEZState is the per-flow, per-switch baseline state.
type flowEZState struct {
	instr   *packet.EZI
	applied bool
	started bool // upstream segment initiated
	// depWaived releases a static-dependency wait after the fallback
	// timeout (the CP-computed graph can contain cycles).
	depWaived bool
}

func ezState(st *dataplane.FlowState) *flowEZState {
	es, ok := st.Proto.(*flowEZState)
	if !ok {
		es = &flowEZState{}
		st.Proto = es
	}
	return es
}

// Handler is the ez-Segway data-plane handler.
type Handler struct {
	// Congestion enables the per-link capacity check before a move
	// (waiters are woken FIFO; ez-Segway's scheduling order comes from
	// the CP-computed priorities, not from dynamic data-plane state).
	Congestion bool
}

var _ dataplane.Handler = (*Handler)(nil)
var _ dataplane.MessageHandler = (*Handler)(nil)

// HandleUIM is unused by ez-Segway (instructions arrive as EZI).
func (h *Handler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {}

// HandleUNM is unused by ez-Segway.
func (h *Handler) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {}

// HandleMessage dispatches the baseline message types.
func (h *Handler) HandleMessage(sw *dataplane.Switch, m packet.Message, inPort topo.PortID) {
	switch m := m.(type) {
	case *packet.EZI:
		h.handleEZI(sw, m)
	case *packet.EZN:
		h.handleEZN(sw, m)
	}
}

func (h *Handler) handleEZI(sw *dataplane.Switch, m *packet.EZI) {
	st := sw.State(m.Flow)
	es := ezState(st)
	if es.instr != nil && m.Version <= es.instr.Version {
		return
	}
	es.instr = m
	es.applied = false
	es.started = false
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}
	switch {
	case m.Flags.Has(packet.EZEgress):
		// The egress has nothing to move; mark applied and initiate.
		es.applied = true
		h.initiate(sw, m, es)
	case m.Flags.Has(packet.EZInitNow):
		h.initiate(sw, m, es)
	}
	sw.WakeUIMWaiters(m.Flow)
}

// initiate starts the upstream segment by notifying the child.
func (h *Handler) initiate(sw *dataplane.Switch, m *packet.EZI, es *flowEZState) {
	if es.started || m.ChildPort == packet.NoPort {
		es.started = true
		return
	}
	es.started = true
	ezn := sw.Pool().GetEZN()
	ezn.Flow, ezn.Version = m.Flow, m.Version
	sw.Network().SendPort(sw.ID, topo.PortID(int32(m.ChildPort)), ezn)
	sw.Pool().PutEZN(ezn)
}

func (h *Handler) handleEZN(sw *dataplane.Switch, m *packet.EZN) {
	// m may be pool-owned and recycled when dispatch returns, but the
	// closures below (parks, the dependency timeout, the Apply commit)
	// outlive this call — rebind m to a private copy up front.
	cp := *m
	m = &cp
	st := sw.State(m.Flow)
	es := ezState(st)
	if es.instr == nil || es.instr.Version < m.Version {
		// Instruction not here yet: wait (resubmission).
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeWaitUIM,
			uint32(m.Flow), m.Version, 0, 0)
		sw.ParkOnUIM(m.Flow, func() { h.handleEZN(sw, m) })
		return
	}
	if es.instr.Version > m.Version || es.applied {
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Version, 0, 0)
		return // stale or duplicate notification
	}
	instr := es.instr
	newPort := dataplane.PortLocal
	if instr.EgressPort != packet.NoPort {
		newPort = topo.PortID(int32(instr.EgressPort))
	}
	if h.Congestion && newPort != dataplane.PortLocal &&
		!(st.HasRule && st.EgressPort == newPort && st.FlowSizeK >= instr.FlowSizeK) {
		// Static CP-computed dependency: wait until the depended flow has
		// vacated the contested link, even if capacity already suffices —
		// ez-Segway's scheduler follows the precomputed order, it cannot
		// observe live capacity the way P4Update's dynamic scheduler does.
		if dep := instr.DepFlow; dep != 0 && !es.depWaived {
			if dst, ok := sw.PeekState(dep); ok && dst.HasRule && dst.EgressPort == newPort {
				sw.Tracer().Verdict(int32(sw.ID), trace.CodeWaitDependency,
					uint32(m.Flow), m.Version, uint32(dep), uint32(int32(newPort)))
				sw.ParkOnCapacity(newPort, func() { h.handleEZN(sw, m) })
				// Fallback: the static graph can contain cycles; waive
				// the dependency after a timeout and retry on capacity
				// alone.
				sw.Network().Eng.Schedule(500*time.Millisecond, func() {
					if !es.applied {
						es.depWaived = true
						h.handleEZN(sw, m)
					}
				})
				return
			}
		}
		if sw.RemainingK(newPort) < uint64(instr.FlowSizeK) {
			sw.Tracer().Verdict(int32(sw.ID), trace.CodeCapacityBlock,
				uint32(m.Flow), m.Version, uint32(int32(newPort)), uint32(instr.FlowSizeK))
			sw.ParkOnCapacity(newPort, func() { h.handleEZN(sw, m) })
			return
		}
		sw.StageReservation(m.Flow, newPort, instr.FlowSizeK, instr.Version)
	}
	sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyEZ,
		uint32(m.Flow), m.Version, uint32(int32(newPort)), 0)
	portChanged := !st.HasRule || st.EgressPort != newPort
	sw.Apply(portChanged, func() {
		ok := sw.CommitState(m.Flow, dataplane.Commit{
			Port:    newPort,
			Version: instr.Version,
			// ez-Segway carries no distance labels; keep the old ones.
			Distance:    st.NewDistance,
			OldVersion:  st.NewVersion,
			OldDistance: st.OldDistance,
			SizeK:       instr.FlowSizeK,
			Type:        packet.UpdateSingle,
		})
		if !ok {
			return
		}
		es.applied = true
		// Segment-interior nodes relay the notification upstream.
		if instr.Flags.Has(packet.EZRelay) && instr.ChildPort != packet.NoPort {
			ezn := sw.Pool().GetEZN()
			ezn.Flow, ezn.Version = m.Flow, m.Version
			sw.Network().SendPort(sw.ID, topo.PortID(int32(instr.ChildPort)), ezn)
			sw.Pool().PutEZN(ezn)
		}
		if instr.Flags.Has(packet.EZIngress) {
			// Flow ingress: report completion of the final segment.
			sw.SendUFM(&packet.UFM{
				Flow: m.Flow, Version: m.Version, Status: packet.StatusUpdated,
			})
		}
		// A gateway that just applied may now initiate its in_loop
		// upstream segment (the downstream dependency resolved).
		if instr.Flags.Has(packet.EZInitAfterApply) {
			es.started = false
			h.initiate(sw, instr, es)
		}
	})
}

// Controller drives ez-Segway updates: it wraps the shared tracking
// controller and serializes updates per flow (no fast-forward — a new
// configuration waits for the ongoing update to complete, §4.2).
type Controller struct {
	Ctl *controlplane.Controller
	// Congestion enables the centralized dependency-graph computation;
	// its result is shipped with the instructions as static priorities
	// and dependency edges.
	Congestion bool

	queued map[packet.FlowID][]queuedUpdate
	active map[packet.FlowID]*controlplane.UpdateStatus
	// activeUpdates mirrors the in-flight moves for dependency-graph
	// recomputation.
	activeUpdates map[packet.FlowID]FlowUpdate
	// PrepTime accumulates pure control-plane preparation time across
	// triggered updates (measured with the wall clock, as in Fig. 8).
	PrepTime time.Duration
	// Plans, when set, memoizes plan and dependency-graph preparation
	// across trials that share a frozen topology (internal/plancache via
	// the unified controlplane.Planner seam). Cached plans are shared and
	// immutable; the handlers copy EZI/EZN state before mutating, so
	// sharing is safe.
	Plans controlplane.Planner
}

// PrepareCached memoizes PreparePlanDep through p under an 'e'-prefixed
// key; a nil planner computes directly.
func PrepareCached(p controlplane.Planner, t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version, sizeK uint32, prio uint8, dep packet.FlowID) (*Plan, error) {

	if p == nil {
		return PreparePlanDep(t, flow, oldPath, newPath, version, sizeK, prio, dep)
	}
	var k controlplane.KeyBuf
	k.U8('e')
	k.U32(uint32(flow))
	k.U32(version)
	k.U32(sizeK)
	k.U8(prio)
	k.U32(uint32(dep))
	k.Path(oldPath)
	k.Path(newPath)
	v, err := p.Memo(t, k.String(), func() (any, error) {
		return PreparePlanDep(t, flow, oldPath, newPath, version, sizeK, prio, dep)
	})
	plan, _ := v.(*Plan)
	return plan, err
}

// depGraph pairs the congestion dependency maps so they fit through the
// planner's single memoized value.
type depGraph struct {
	classes map[packet.FlowID]uint8
	edges   map[packet.FlowID]packet.FlowID
}

// DependenciesCached memoizes ComputeCongestionDependencies through p
// under a 'd'-prefixed key; a nil planner computes directly. The
// returned maps are shared across trials: read-only. Callers pass the
// update set in a deterministic (flow-sorted) order, so identical
// in-flight sets key identically.
func DependenciesCached(p controlplane.Planner, t *topo.Topology, updates []FlowUpdate) (map[packet.FlowID]uint8, map[packet.FlowID]packet.FlowID) {
	if p == nil {
		return ComputeCongestionDependencies(t, updates)
	}
	var k controlplane.KeyBuf
	k.U8('d')
	k.U32(uint32(len(updates)))
	for _, u := range updates {
		k.U32(uint32(u.Flow))
		k.U32(u.SizeK)
		k.Path(u.Old)
		k.Path(u.New)
	}
	v, _ := p.Memo(t, k.String(), func() (any, error) {
		classes, edges := ComputeCongestionDependencies(t, updates)
		return depGraph{classes, edges}, nil
	})
	g, _ := v.(depGraph)
	return g.classes, g.edges
}

type queuedUpdate struct {
	newPath []topo.NodeID
	// status is the Queued-state record handed to the caller at trigger
	// time; launch fills it in.
	status *controlplane.UpdateStatus
}

// NewController wires an ez-Segway control plane over the shared tracker.
func NewController(ctl *controlplane.Controller) *Controller {
	c := &Controller{
		Ctl:           ctl,
		queued:        make(map[packet.FlowID][]queuedUpdate),
		active:        make(map[packet.FlowID]*controlplane.UpdateStatus),
		activeUpdates: make(map[packet.FlowID]FlowUpdate),
	}
	prev := ctl.OnComplete
	ctl.OnComplete = func(u *controlplane.UpdateStatus) {
		if prev != nil {
			prev(u)
		}
		c.onComplete(u)
	}
	return c
}

// TriggerUpdate schedules an update of f to newPath and always returns a
// non-nil status on success. If an update of f is in flight, the new one
// is deferred until completion and the returned status is in the Queued
// state (Version and Sent zero); the same record is filled in when the
// deferred update launches, so callers can hold it across Run.
func (c *Controller) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	if _, busy := c.active[f]; busy {
		if _, known := c.Ctl.Flow(f); !known {
			return nil, fmt.Errorf("ezsegway: unknown flow %d", f)
		}
		u := &controlplane.UpdateStatus{Flow: f, Queued: true}
		c.queued[f] = append(c.queued[f], queuedUpdate{newPath: newPath, status: u})
		return u, nil
	}
	return c.launch(f, newPath, nil)
}

// launch prepares and pushes the update, filling pre (a Queued-state
// record) when the update was deferred; pre may be nil.
func (c *Controller) launch(f packet.FlowID, newPath []topo.NodeID, pre *controlplane.UpdateStatus) (*controlplane.UpdateStatus, error) {
	rec, ok := c.Ctl.Flow(f)
	if !ok {
		return nil, fmt.Errorf("ezsegway: unknown flow %d", f)
	}
	version := rec.Version + 1
	oldPath := rec.Path
	start := time.Now()
	var prio uint8
	var dep packet.FlowID
	if c.Congestion {
		// Recompute the global dependency graph over the in-flight moves
		// (the centralized preparation P4Update eliminates, Fig. 8b).
		c.activeUpdates[f] = FlowUpdate{Flow: f, Old: oldPath, New: newPath, SizeK: rec.SizeK}
		set := make([]FlowUpdate, 0, len(c.activeUpdates))
		for _, fu := range c.activeUpdates {
			set = append(set, fu)
		}
		// The dependency edges pick the first qualifying flow in set
		// order; sort so the choice is stable across runs.
		sort.Slice(set, func(i, j int) bool { return set[i].Flow < set[j].Flow })
		classes, edges := DependenciesCached(c.Plans, c.Ctl.Topo, set)
		prio = classes[f]
		dep = edges[f]
	}
	plan, err := PrepareCached(c.Plans, c.Ctl.Topo, f, oldPath, newPath, version, rec.SizeK, prio, dep)
	c.PrepTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	u := c.Ctl.PushMessagesInto(pre, f, version, oldPath, newPath, plan.Changed, plan.Targets, plan.Msgs, rec)
	if len(plan.Changed) == 0 {
		// Nothing to move: the update is trivially complete.
		u.Completed = c.Ctl.Eng.Now()
		return u, nil
	}
	c.active[f] = u
	return u, nil
}

func (c *Controller) onComplete(u *controlplane.UpdateStatus) {
	if cur, ok := c.active[u.Flow]; !ok || cur != u {
		return
	}
	delete(c.active, u.Flow)
	delete(c.activeUpdates, u.Flow)
	if q := c.queued[u.Flow]; len(q) > 0 {
		next := q[0]
		c.queued[u.Flow] = q[1:]
		if _, err := c.launch(u.Flow, next.newPath, next.status); err != nil {
			// Unlaunchable deferred update: drop it (the handed-out
			// status stays Queued and never completes).
			_ = err
		}
	}
}
