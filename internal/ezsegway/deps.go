package ezsegway

import (
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// FlowUpdate describes one flow's intended move for the centralized
// congestion dependency analysis.
type FlowUpdate struct {
	Flow     packet.FlowID
	Old, New []topo.NodeID
	SizeK    uint32
}

// pathLinks returns the set of links a path traverses.
func pathLinks(t *topo.Topology, path []topo.NodeID) map[topo.LinkID]bool {
	out := make(map[topo.LinkID]bool, len(path))
	for i := 0; i+1 < len(path); i++ {
		l, _ := t.LinkBetween(path[i], path[i+1])
		out[l.ID] = true
	}
	return out
}

// ComputeCongestionDependencies is ez-Segway's control-plane congestion
// preparation (§9.1: "ez-Segway implements a centralized dependency graph
// generation, which assigns three types of update priorities"). For every
// pair of updates it checks whether one's move onto a link needs the
// other to vacate it first (the link cannot hold both demands plus the
// standing load), builds the dependency graph, and layers it into three
// priority classes. The returned map assigns each flow its class
// (2 = must move first, 1 = has dependencies, 0 = unconstrained).
//
// This is the computation P4Update eliminates by resolving inter-flow
// dependencies dynamically in the data plane — the paper's Fig. 8b times
// exactly this asymmetry.
//
// The second return value gives, per flow, one concrete flow whose move
// must be confirmed first (zero if none); the data plane enforces it.
func ComputeCongestionDependencies(t *topo.Topology, updates []FlowUpdate) (map[packet.FlowID]uint8, map[packet.FlowID]packet.FlowID) {
	n := len(updates)
	gained := make([]map[topo.LinkID]bool, n)
	freed := make([]map[topo.LinkID]bool, n)
	standing := make(map[topo.LinkID]uint64) // load of old configuration
	for i, u := range updates {
		oldL := pathLinks(t, u.Old)
		newL := pathLinks(t, u.New)
		gained[i] = make(map[topo.LinkID]bool)
		freed[i] = make(map[topo.LinkID]bool)
		for l := range newL {
			if !oldL[l] {
				gained[i][l] = true
			}
		}
		for l := range oldL {
			standing[l] += uint64(u.SizeK)
			if !newL[l] {
				freed[i][l] = true
			}
		}
	}
	// deps[i] -> set of j that must move before i.
	deps := make([][]int, n)
	rdeps := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			for l := range gained[i] {
				if !freed[j][l] {
					continue
				}
				capK := uint64(t.Link(l).Capacity * 1000)
				if standing[l]+uint64(updates[i].SizeK) > capK {
					deps[i] = append(deps[i], j)
					rdeps[j] = append(rdeps[j], i)
					break
				}
			}
		}
	}
	out := make(map[packet.FlowID]uint8, n)
	edge := make(map[packet.FlowID]packet.FlowID, n)
	for i, u := range updates {
		switch {
		case len(rdeps[i]) > 0:
			out[u.Flow] = 2 // others wait on this move: highest class
		case len(deps[i]) > 0:
			out[u.Flow] = 1 // waits on others
		default:
			out[u.Flow] = 0
		}
		if len(deps[i]) > 0 {
			edge[u.Flow] = updates[deps[i][0]].Flow
		}
	}
	return out, edge
}
