package ezsegway

import (
	"testing"
	"time"

	"p4update/internal/topo"
)

// depsTopo: two sources feed X, which fans out to A/B/C toward D.
func depsTopo() *topo.Topology {
	g := topo.New("deps")
	for _, n := range []string{"S1", "S2", "X", "A", "B", "C", "D"} {
		g.AddNode(n, 0, 0)
	}
	id := func(n string) topo.NodeID { i, _ := g.NodeByName(n); return i }
	lat := time.Millisecond
	g.AddLink(id("S1"), id("X"), lat, 100)
	g.AddLink(id("S2"), id("X"), lat, 100)
	g.AddLink(id("X"), id("A"), lat, 1) // 1000 kbps contested links
	g.AddLink(id("X"), id("B"), lat, 1)
	g.AddLink(id("X"), id("C"), lat, 1)
	g.AddLink(id("A"), id("D"), lat, 100)
	g.AddLink(id("B"), id("D"), lat, 100)
	g.AddLink(id("C"), id("D"), lat, 100)
	return g
}

func TestComputeCongestionDependencies(t *testing.T) {
	g := depsTopo()
	id := func(n string) topo.NodeID { i, _ := g.NodeByName(n); return i }
	path := func(names ...string) []topo.NodeID {
		out := make([]topo.NodeID, len(names))
		for i, n := range names {
			out[i] = id(n)
		}
		return out
	}
	// f1 moves onto X-B, which only fits after f2 (600 of 1000 kbps on
	// X-B) vacates toward X-C.
	updates := []FlowUpdate{
		{Flow: 1, Old: path("S1", "X", "A", "D"), New: path("S1", "X", "B", "D"), SizeK: 600},
		{Flow: 2, Old: path("S2", "X", "B", "D"), New: path("S2", "X", "C", "D"), SizeK: 600},
	}
	classes, edges := ComputeCongestionDependencies(g, updates)
	if classes[1] != 1 {
		t.Errorf("f1 class = %d, want 1 (waits on others)", classes[1])
	}
	if classes[2] != 2 {
		t.Errorf("f2 class = %d, want 2 (others wait on it)", classes[2])
	}
	if edges[1] != 2 {
		t.Errorf("f1 dependency = %d, want flow 2", edges[1])
	}
	if _, has := edges[2]; has {
		t.Error("f2 should have no dependency")
	}
}

func TestComputeCongestionDependenciesNoContention(t *testing.T) {
	g := depsTopo()
	id := func(n string) topo.NodeID { i, _ := g.NodeByName(n); return i }
	updates := []FlowUpdate{
		{Flow: 1,
			Old:   []topo.NodeID{id("S1"), id("X"), id("A"), id("D")},
			New:   []topo.NodeID{id("S1"), id("X"), id("B"), id("D")},
			SizeK: 100},
		{Flow: 2,
			Old:   []topo.NodeID{id("S2"), id("X"), id("B"), id("D")},
			New:   []topo.NodeID{id("S2"), id("X"), id("C"), id("D")},
			SizeK: 100},
	}
	classes, edges := ComputeCongestionDependencies(g, updates)
	for f, c := range classes {
		if c != 0 {
			t.Errorf("flow %d class = %d, want 0 (links have headroom)", f, c)
		}
	}
	if len(edges) != 0 {
		t.Errorf("edges = %v, want none", edges)
	}
}
