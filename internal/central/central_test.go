package central

import (
	"testing"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

type bed struct {
	eng *sim.Engine
	net *dataplane.Network
	ctl *controlplane.Controller
	co  *Coordinator
}

func newBed(g *topo.Topology, seed int64, congestion bool) *bed {
	eng := sim.New(seed)
	eng.MaxEvents = 2_000_000
	net := dataplane.NewNetwork(eng, g)
	net.SetHandler(&Handler{})
	node := controlplane.UseCentroidControl(net)
	ctl := controlplane.NewController(net, node)
	co := NewCoordinator(ctl, 500*time.Microsecond)
	co.Congestion = congestion
	return &bed{eng: eng, net: net, ctl: ctl, co: co}
}

func TestCentralUpdateCompletes(t *testing.T) {
	g := topo.Synthetic()
	b := newBed(g, 1, false)
	oldP, newP := topo.SyntheticPaths()
	f, err := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.co.TriggerUpdate(f, newP)
	if err != nil {
		t.Fatal(err)
	}
	b.eng.Run()
	if !u.Done() {
		t.Fatal("central update did not complete")
	}
	got, delivered := b.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v, want %v", got, newP)
	}
	for i := range newP {
		if got[i] != newP[i] {
			t.Fatalf("final path %v, want %v", got, newP)
		}
	}
}

func TestCentralStaysConsistentPerRound(t *testing.T) {
	g := topo.Synthetic()
	b := newBed(g, 2, false)
	oldP, newP := topo.SyntheticPaths()
	f, _ := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := b.co.TriggerUpdate(f, newP); err != nil {
		t.Fatal(err)
	}
	for b.eng.Step() {
		visited, delivered := b.net.TracePath(f, 0, 12)
		seen := map[topo.NodeID]bool{}
		for _, n := range visited {
			if seen[n] {
				t.Fatalf("t=%v: central rounds formed a loop: %v", b.eng.Now(), visited)
			}
			seen[n] = true
		}
		if !delivered {
			t.Fatalf("t=%v: blackhole under central rounds: %v", b.eng.Now(), visited)
		}
	}
}

func TestCentralUsesMultipleRounds(t *testing.T) {
	// The Fig-1 update cannot deploy in one shot: v2's move depends on
	// v4's (backward segment), so at least two rounds are required.
	g := topo.Synthetic()
	b := newBed(g, 3, false)
	oldP, newP := topo.SyntheticPaths()
	f, _ := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := b.co.TriggerUpdate(f, newP); err != nil {
		t.Fatal(err)
	}
	// Snapshot the run before it completes and is deleted.
	var rounds *int
	for _, r := range b.co.runs {
		rounds = &r.Rounds
	}
	if rounds == nil {
		t.Fatal("no active run")
	}
	b.eng.Run()
	if *rounds < 2 {
		t.Errorf("rounds = %d, want >= 2 (v2 depends on v4)", *rounds)
	}
}

func TestCentralSlowerThanDataPlaneCoordination(t *testing.T) {
	// Central pays a control round trip per dependency level; on the
	// segmented Fig-1 update it must be slower than both in-network
	// systems would be. Compare against the pure propagation floor.
	g := topo.Synthetic()
	b := newBed(g, 4, false)
	oldP, newP := topo.SyntheticPaths()
	f, _ := b.ctl.RegisterFlow(0, 7, oldP, 1000)
	u, _ := b.co.TriggerUpdate(f, newP)
	b.eng.Run()
	if !u.Done() {
		t.Fatal("no completion")
	}
	// Two rounds with ACKs: >= 2 * 2 * max control latency is a loose
	// floor; just assert it is not instantaneous.
	if u.Completed-u.Sent < 80*time.Millisecond {
		t.Errorf("central completed implausibly fast: %v", u.Completed-u.Sent)
	}
}

func TestCentralCongestionFilterDefersMoves(t *testing.T) {
	g := topo.New("y")
	s1 := g.AddNode("S1", 0, 0)
	s2 := g.AddNode("S2", 0, 0)
	x := g.AddNode("X", 0, 0)
	a := g.AddNode("A", 0, 0)
	bb := g.AddNode("B", 0, 0)
	c := g.AddNode("C", 0, 0)
	tt := g.AddNode("T", 0, 0)
	lat := time.Millisecond
	g.AddLink(s1, x, lat, 1000)
	g.AddLink(s2, x, lat, 1000)
	g.AddLink(x, a, lat, 10)
	g.AddLink(x, bb, lat, 10)
	g.AddLink(x, c, lat, 10)
	g.AddLink(a, tt, lat, 1000)
	g.AddLink(bb, tt, lat, 1000)
	g.AddLink(c, tt, lat, 1000)

	b := newBed(g, 5, true)
	f1, _ := b.ctl.RegisterFlow(s1, tt, []topo.NodeID{s1, x, a, tt}, 6000)
	f2, _ := b.ctl.RegisterFlow(s2, tt, []topo.NodeID{s2, x, bb, tt}, 6000)
	u1, err := b.co.TriggerUpdate(f1, []topo.NodeID{s1, x, bb, tt})
	if err != nil {
		t.Fatal(err)
	}
	var u2 *controlplane.UpdateStatus
	b.eng.Schedule(30*time.Millisecond, func() {
		var err error
		u2, err = b.co.TriggerUpdate(f2, []topo.NodeID{s2, x, c, tt})
		if err != nil {
			t.Error(err)
		}
	})
	// f1 is stuck behind f2; the coordinator retries its round when f2's
	// ACK lands. Re-push on progress comes from f2's run completing —
	// drive the clock and then nudge the blocked run.
	for b.eng.Step() {
		sw := b.net.Switch(x)
		for p := topo.PortID(0); int(p) < g.Degree(x); p++ {
			if sw.ReservedK(p) > sw.CapacityK(p) {
				t.Fatalf("over capacity on X port %d", p)
			}
		}
	}
	if u2 == nil || !u2.Done() {
		t.Fatal("f2 did not complete")
	}
	if !u1.Done() {
		t.Fatal("f1 never completed after capacity freed")
	}
	if u1.Completed <= u2.Completed {
		t.Errorf("f1 (%v) should complete after f2 (%v)", u1.Completed, u2.Completed)
	}
}
