// Package central implements the centralized baseline of the paper's
// evaluation (§9.1): the controller computes a dependency graph and
// greedily updates, per round, every node that can safely change without
// creating a loop or blackhole (Mahajan & Wattenhofer / Dionysus style).
// After each round it waits for per-node acknowledgements — which incur
// control-channel latency plus controller queuing and processing delay
// (Jarschel et al.) — recomputes the dependency relation on the reported
// state, and pushes the next round.
package central

import (
	"fmt"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Handler is the data-plane agent of the centralized baseline: a plain
// SDN switch that applies whatever rule the controller sends and
// acknowledges it.
type Handler struct{}

var _ dataplane.Handler = (*Handler)(nil)

// HandleUIM applies the instruction after the install delay and ACKs.
func (h *Handler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}
	if st.HasRule && m.Version <= st.NewVersion {
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Version, 0, 0)
		return
	}
	newPort := dataplane.PortLocal
	if m.EgressPort != packet.NoPort {
		newPort = topo.PortID(int32(m.EgressPort))
	}
	sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyCentral,
		uint32(m.Flow), m.Version, uint32(int32(newPort)), 0)
	portChanged := !st.HasRule || st.EgressPort != newPort
	sw.Apply(portChanged, func() {
		if sw.CommitState(m.Flow, dataplane.Commit{
			Port:        newPort,
			Version:     m.Version,
			Distance:    m.NewDistance,
			OldVersion:  st.NewVersion,
			OldDistance: st.NewDistance,
			SizeK:       m.FlowSizeK,
			Type:        packet.UpdateSingle,
		}) {
			sw.SendUFM(&packet.UFM{
				Flow: m.Flow, Version: m.Version, Status: packet.StatusUpdated,
			})
		}
	})
}

// HandleUNM is unused by the centralized baseline.
func (h *Handler) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {}

// Coordinator drives centralized round-based updates.
type Coordinator struct {
	Ctl *controlplane.Controller
	// ProcDelay is the controller's per-message processing time; queued
	// messages serialize behind each other (single-threaded controller,
	// §9.1).
	ProcDelay time.Duration
	// QueueDelay, when set, samples the extra controller queuing delay
	// each notification experiences behind the controller's other
	// control-plane work (path setup, monitoring — §9.1, Jarschel et
	// al.).
	QueueDelay func() time.Duration
	// Congestion additionally enforces link capacities in the round
	// computation.
	Congestion bool
	// TotalRounds accumulates dependency rounds across every update the
	// coordinator drove (reported via the wiring metrics hook).
	TotalRounds uint64

	// busyUntil models the controller's single-server processing queue.
	busyUntil time.Duration
	// retryArmed guards the starvation-retry timer; retryIdle counts
	// consecutive retries without acknowledged progress.
	retryArmed bool
	retryIdle  int

	runs map[runKey]*run
}

type runKey struct {
	flow    packet.FlowID
	version uint32
}

// run is one in-flight centralized update.
type run struct {
	flow    packet.FlowID
	version uint32
	sizeK   uint32
	newPath []topo.NodeID
	newNext map[topo.NodeID]topo.NodeID
	// view is the controller's view of the flow's current next hops
	// (PortLocal modeled as the node itself being terminal).
	view map[topo.NodeID]topo.NodeID // missing = no rule
	done map[topo.NodeID]bool        // nodes already on the new rule
	out  map[topo.NodeID]bool        // nodes updated in the current round
	// Rounds counts dependency rounds (diagnostics).
	Rounds int
}

// NewCoordinator wires the centralized baseline over the shared tracker.
func NewCoordinator(ctl *controlplane.Controller, procDelay time.Duration) *Coordinator {
	c := &Coordinator{
		Ctl:       ctl,
		ProcDelay: procDelay,
		runs:      make(map[runKey]*run),
	}
	prev := ctl.OnUFM
	ctl.OnUFM = func(u packet.UFM) {
		if prev != nil {
			prev(u)
		}
		c.onUFM(u)
	}
	return c
}

// TriggerUpdate starts a centralized update of flow f to newPath.
func (c *Coordinator) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	rec, ok := c.Ctl.Flow(f)
	if !ok {
		return nil, fmt.Errorf("central: unknown flow %d", f)
	}
	if err := c.Ctl.Topo.ValidatePath(newPath); err != nil {
		return nil, fmt.Errorf("central: %w", err)
	}
	version := rec.Version + 1
	r := &run{
		flow:    f,
		version: version,
		sizeK:   rec.SizeK,
		newPath: newPath,
		newNext: make(map[topo.NodeID]topo.NodeID),
		view:    make(map[topo.NodeID]topo.NodeID),
		done:    make(map[topo.NodeID]bool),
		out:     make(map[topo.NodeID]bool),
	}
	for i := 0; i+1 < len(newPath); i++ {
		r.newNext[newPath[i]] = newPath[i+1]
	}
	for i := 0; i+1 < len(rec.Path); i++ {
		r.view[rec.Path[i]] = rec.Path[i+1]
	}
	egress := newPath[len(newPath)-1]
	r.view[egress] = egress // terminal
	r.done[egress] = true   // the egress never changes for a same-dst flow

	// Completion set: nodes whose next hop changes (fresh nodes always
	// count — beware the map zero value aliasing node 0).
	var changed []topo.NodeID
	for i := 0; i+1 < len(newPath); i++ {
		n := newPath[i]
		if cur, hasRule := r.view[n]; hasRule && cur == r.newNext[n] {
			r.done[n] = true
		} else {
			changed = append(changed, n)
		}
	}
	u := c.Ctl.TrackOnly(f, version, rec.Path, newPath, changed, rec)
	if len(changed) == 0 {
		u.Completed = c.Ctl.Eng.Now()
		return u, nil
	}
	c.runs[runKey{f, version}] = r
	c.pushRound(r)
	c.scheduleRetry()
	return u, nil
}

// scheduleRetry arms a low-frequency retry loop: capacity can free
// without producing an acknowledgement (rule cleanup), so starved runs
// re-evaluate their rounds periodically. The loop gives up after a long
// streak without progress (gridlocked moves stay incomplete).
func (c *Coordinator) scheduleRetry() {
	if c.retryArmed {
		return
	}
	c.retryArmed = true
	c.Ctl.Eng.Schedule(50*time.Millisecond, func() {
		c.retryArmed = false
		if len(c.runs) == 0 || c.retryIdle > 200 {
			return
		}
		c.retryIdle++
		for _, r := range c.runs {
			if len(r.out) == 0 {
				c.pushRound(r)
			}
		}
		c.scheduleRetry()
	})
}

// safeNow reports whether updating node n to its new rule keeps the
// flow's forwarding loop- and blackhole-free against the controller's
// *confirmed* view: installing a rule at a fresh node is always safe (no
// traffic can reach it yet), while changing an existing rule requires the
// walk from n to reach the egress over confirmed rules only — batched
// peers do not count, because rounds deploy asynchronously.
func (r *run) safeNow(n topo.NodeID) bool {
	if _, hasRule := r.view[n]; !hasRule {
		return true // fresh install
	}
	seen := map[topo.NodeID]bool{n: true}
	cur := r.newNext[n]
	for {
		if seen[cur] {
			return false // loop
		}
		seen[cur] = true
		nxt, ok := r.view[cur]
		if !ok {
			return false // downstream rule not confirmed yet
		}
		if nxt == cur {
			return true // terminal (egress)
		}
		cur = nxt
	}
}

// pushRound computes the maximal greedily-safe node set and sends it.
func (c *Coordinator) pushRound(r *run) {
	r.Rounds++
	c.TotalRounds++
	var batch []topo.NodeID
	// Greedy from the egress end of the new path (downstream first
	// maximizes per-round progress, as in dependency-graph schedulers).
	for i := len(r.newPath) - 2; i >= 0; i-- {
		n := r.newPath[i]
		if r.done[n] || r.out[n] {
			continue
		}
		if !r.safeNow(n) {
			continue
		}
		batch = append(batch, n)
	}
	if c.Congestion {
		batch = c.capacityFilter(r, batch)
	}
	if len(batch) == 0 {
		return // wait for outstanding ACKs to unlock progress
	}
	c.Ctl.Eng.Trace.Round(uint32(r.flow), r.version, uint32(len(batch)))
	t := c.Ctl.Topo
	now := c.Ctl.Eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	for _, n := range batch {
		r.out[n] = true
		uim := &packet.UIM{
			Flow:       r.flow,
			Version:    r.version,
			EgressPort: packet.NoPort,
			ChildPort:  packet.NoPort,
			FlowSizeK:  r.sizeK,
		}
		if nxt := r.newNext[n]; nxt != n {
			uim.EgressPort = uint16(t.PortTo(n, nxt))
		}
		// Outbound messages serialize through the same single-threaded
		// controller as the acknowledgements (§9.1).
		c.busyUntil += c.ProcDelay
		if c.QueueDelay != nil {
			c.busyUntil += c.QueueDelay()
		}
		c.Ctl.Net.SendToSwitch(n, uim, c.busyUntil-now)
	}
}

// capacityFilter drops batch members whose move would exceed a link
// capacity in the controller's view of current placements.
func (c *Coordinator) capacityFilter(r *run, batch []topo.NodeID) []topo.NodeID {
	t := c.Ctl.Topo
	type npPort struct {
		n topo.NodeID
		p topo.PortID
	}
	planned := make(map[npPort]uint64)
	var out []topo.NodeID
	for _, n := range batch {
		nxt := r.newNext[n]
		if cur, ok := r.view[n]; ok && cur == nxt {
			out = append(out, n)
			continue
		}
		sw := c.Ctl.Net.Switch(n)
		port := t.PortTo(n, nxt)
		key := npPort{n, port}
		if sw.RemainingK(port) >= planned[key]+uint64(r.sizeK) {
			planned[key] += uint64(r.sizeK)
			out = append(out, n)
		}
	}
	return out
}

// onUFM feeds acknowledgements through the controller's processing queue
// and, once a round's stragglers are in, computes the next round.
func (c *Coordinator) onUFM(u packet.UFM) {
	if u.Status != packet.StatusUpdated {
		return
	}
	r, ok := c.runs[runKey{u.Flow, u.Version}]
	if !ok {
		return
	}
	// Single-server processing queue: each notification occupies the
	// controller for ProcDelay.
	now := c.Ctl.Eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += c.ProcDelay
	if c.QueueDelay != nil {
		c.busyUntil += c.QueueDelay()
	}
	readyAt := c.busyUntil
	node := topo.NodeID(u.Node)
	c.Ctl.Eng.ScheduleAt(readyAt, func() {
		if !r.out[node] {
			return
		}
		delete(r.out, node)
		r.done[node] = true
		r.view[node] = r.newNext[node]
		c.retryIdle = 0
		allDone := true
		for i := 0; i+1 < len(r.newPath); i++ {
			if !r.done[r.newPath[i]] {
				allDone = false
				break
			}
		}
		if allDone {
			delete(c.runs, runKey{r.flow, r.version})
		} else {
			c.pushRound(r)
		}
		// An acknowledged move may have freed capacity another run's
		// round was deferred on; retry idle runs.
		for _, other := range c.runs {
			if other != r && len(other.out) == 0 {
				c.pushRound(other)
			}
		}
	})
}
