// Package traffic generates evaluation workloads: gravity-model traffic
// matrices (Roughan, CCR'05) and the multi-flow update scenario of the
// paper's §9.1 (every node picks a uniform-random destination, the old
// path is the shortest path, the new path the 2nd-shortest, and flow
// sizes are drawn from the gravity model scaled close to capacity, with
// rejection sampling until the configuration is feasible).
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"p4update/internal/controlplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// FlowSpec is one flow of a workload with its update intent.
type FlowSpec struct {
	Src, Dst topo.NodeID
	Old, New []topo.NodeID
	SizeK    uint32
	// Salt disambiguates multiple flows over the same (src, dst) pair
	// (the scale workload exceeds a small topology's pair count); 0
	// keeps the historical pair-hash identifier.
	Salt uint16
}

// ID returns the flow's wire identifier.
func (f FlowSpec) ID() packet.FlowID {
	return packet.HashFlowSalt(uint16(f.Src), uint16(f.Dst), f.Salt)
}

// GravityWeights draws one positive weight per node (exponential, mean 1).
func GravityWeights(t *topo.Topology, rng *rand.Rand) []float64 {
	w := make([]float64, t.NumNodes())
	for i := range w {
		w[i] = rng.ExpFloat64() + 0.05 // avoid degenerate zero weights
	}
	return w
}

// GravityDemand returns the gravity-model demand fraction between src and
// dst: w_s * w_d / sum(w)^2, so that all pairwise demands sum to ~1.
func GravityDemand(w []float64, src, dst topo.NodeID) float64 {
	var sum float64
	for _, x := range w {
		sum += x
	}
	return w[src] * w[dst] / (sum * sum)
}

// Config tunes workload generation.
type Config struct {
	// Utilization is the target fraction of the bottleneck capacity the
	// generated traffic aims for ("close to the network's capacity").
	Utilization float64
	// MaxAttempts bounds the rejection sampling.
	MaxAttempts int
	// Candidates restricts sources/destinations (nil = all nodes); the
	// fat-tree scenario uses the edge switches.
	Candidates []topo.NodeID
}

// DefaultConfig mirrors the paper's multi-flow setup.
func DefaultConfig() Config {
	return Config{Utilization: 0.85, MaxAttempts: 400}
}

// MultiFlowWorkload builds the §9.1 multiple-flow scenario: one flow per
// candidate node to a uniform-random distinct destination, old = shortest
// path, new = 2nd-shortest path, gravity sizes scaled to the target
// utilization, resampled until both the old and the new configuration
// respect every link capacity.
func MultiFlowWorkload(t *topo.Topology, rng *rand.Rand, cfg Config) ([]FlowSpec, error) {
	nodes := cfg.Candidates
	if nodes == nil {
		nodes = t.Nodes()
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("traffic: need at least two candidate nodes")
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 200
	}
	for a := 0; a < attempts; a++ {
		flows, ok := sampleWorkload(t, rng, cfg, nodes)
		if ok {
			return flows, nil
		}
	}
	return nil, fmt.Errorf("traffic: no feasible workload in %d attempts", attempts)
}

func sampleWorkload(t *topo.Topology, rng *rand.Rand, cfg Config, nodes []topo.NodeID) ([]FlowSpec, bool) {
	w := GravityWeights(t, rng)
	var flows []FlowSpec
	seenPair := map[[2]topo.NodeID]bool{}
	for _, src := range nodes {
		dst := nodes[rng.Intn(len(nodes))]
		for dst == src {
			dst = nodes[rng.Intn(len(nodes))]
		}
		if seenPair[[2]topo.NodeID{src, dst}] {
			continue // FlowIDs hash the pair; avoid duplicates
		}
		seenPair[[2]topo.NodeID{src, dst}] = true
		// Hop-count shortest paths, as in the paper's path selection; the
		// 2nd-shortest detour then often crosses links other flows vacate,
		// creating the inter-flow dependencies the scenario targets.
		paths := t.KShortestPaths(src, dst, 2, topo.ByHops)
		if len(paths) < 2 {
			return nil, false
		}
		flows = append(flows, FlowSpec{
			Src: src, Dst: dst, Old: paths[0], New: paths[1],
		})
	}
	// Scale gravity demands so the most loaded link of the old
	// configuration reaches the target utilization.
	demands := make([]float64, len(flows))
	var maxLoadFrac float64
	loads := map[topo.LinkID]float64{} // demand units per link
	addLoad := func(path []topo.NodeID, d float64) {
		for i := 0; i+1 < len(path); i++ {
			l, _ := t.LinkBetween(path[i], path[i+1])
			loads[l.ID] += d / (l.Capacity * 1000)
		}
	}
	for i, f := range flows {
		demands[i] = GravityDemand(w, f.Src, f.Dst)
		addLoad(f.Old, demands[i])
	}
	for id, frac := range loads {
		_ = id
		if frac > maxLoadFrac {
			maxLoadFrac = frac
		}
	}
	if maxLoadFrac == 0 {
		return nil, false
	}
	scale := cfg.Utilization / maxLoadFrac
	for i := range flows {
		// addLoad normalized by capacities in kbps, so demand*scale is
		// already a kbps size.
		k := uint32(demands[i] * scale)
		if k == 0 {
			k = 1
		}
		flows[i].SizeK = k
	}
	// Feasibility: both configurations must respect every capacity, and
	// the transition must be performable by atomic per-flow moves in some
	// order (consistent migration can be impossible otherwise — the
	// 15-puzzle effect of §7.4; the paper regenerates such traffic).
	if !Feasible(t, flows, false) || !Feasible(t, flows, true) || !Transitionable(t, flows) {
		return nil, false
	}
	return flows, true
}

// ManyFlowWorkload builds the scale scenario: n simultaneous flow
// updates between uniform-random candidate pairs, old = shortest path,
// new = 2nd-shortest (hop count, as in the multi-flow scenario), unit
// flow sizes so link capacity never binds — the scale regime measures
// coordination cost across hundreds of concurrent updates, not
// congestion resolution. When n exceeds the number of distinct pairs,
// pairs repeat with an increasing Salt so every flow keeps a distinct
// wire ID. Path pairs are memoized per (src, dst), so on a frozen
// topology the whole workload costs two Dijkstra-backed queries per
// distinct pair — once per grid, not per trial.
func ManyFlowWorkload(t *topo.Topology, rng *rand.Rand, n int, candidates []topo.NodeID) ([]FlowSpec, error) {
	nodes := candidates
	if nodes == nil {
		nodes = t.Nodes()
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("traffic: need at least two candidate nodes")
	}
	if n <= 0 {
		return nil, fmt.Errorf("traffic: need a positive flow count, got %d", n)
	}
	type pathPair struct {
		old, new []topo.NodeID
		ok       bool
	}
	memo := make(map[[2]topo.NodeID]pathPair)
	salts := make(map[[2]topo.NodeID]uint16)
	used := make(map[packet.FlowID]bool, n)
	flows := make([]FlowSpec, 0, n)
	maxAttempts := 50*n + 1000
	for attempts := 0; len(flows) < n; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("traffic: only %d of %d flows in %d attempts (too few pairs with alternative paths in %s)",
				len(flows), n, maxAttempts, t.Name)
		}
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		if dst == src {
			continue
		}
		key := [2]topo.NodeID{src, dst}
		pp, seen := memo[key]
		if !seen {
			if paths := t.KShortestPaths(src, dst, 2, topo.ByHops); len(paths) >= 2 {
				pp = pathPair{old: paths[0], new: paths[1], ok: true}
			}
			memo[key] = pp
		}
		if !pp.ok {
			continue
		}
		salt := salts[key]
		id := packet.HashFlowSalt(uint16(src), uint16(dst), salt)
		for used[id] {
			// Skip over 32-bit hash collisions with already-issued IDs.
			salt++
			id = packet.HashFlowSalt(uint16(src), uint16(dst), salt)
		}
		salts[key] = salt + 1
		used[id] = true
		flows = append(flows, FlowSpec{
			Src: src, Dst: dst, Old: pp.old, New: pp.new, SizeK: 1, Salt: salt,
		})
	}
	return flows, nil
}

// Transitionable reports whether some sequential order of atomic per-flow
// moves migrates the old configuration to the new one without ever
// exceeding a link capacity. Greedy selection is sound here: moving a
// flow only releases capacity for the rest, so any greedily movable flow
// can be moved first.
func Transitionable(t *topo.Topology, flows []FlowSpec) bool {
	loads := map[topo.LinkID]uint64{}
	add := func(path []topo.NodeID, k uint32, sign int) {
		for i := 0; i+1 < len(path); i++ {
			l, _ := t.LinkBetween(path[i], path[i+1])
			if sign > 0 {
				loads[l.ID] += uint64(k)
			} else {
				loads[l.ID] -= uint64(k)
			}
		}
	}
	for _, f := range flows {
		add(f.Old, f.SizeK, +1)
	}
	moved := make([]bool, len(flows))
	remaining := len(flows)
	for remaining > 0 {
		progress := false
		for i, f := range flows {
			if moved[i] {
				continue
			}
			fits := true
			onOld := map[topo.LinkID]bool{}
			for j := 0; j+1 < len(f.Old); j++ {
				l, _ := t.LinkBetween(f.Old[j], f.Old[j+1])
				onOld[l.ID] = true
			}
			for j := 0; j+1 < len(f.New); j++ {
				l, _ := t.LinkBetween(f.New[j], f.New[j+1])
				if onOld[l.ID] {
					continue // capacity already held on shared links
				}
				if loads[l.ID]+uint64(f.SizeK) > uint64(t.Link(l.ID).Capacity*1000) {
					fits = false
					break
				}
			}
			if !fits {
				continue
			}
			add(f.Old, f.SizeK, -1)
			add(f.New, f.SizeK, +1)
			moved[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return false
		}
	}
	return true
}

// SegmentedSingleFlow searches old/new path pairs (both drawn from the
// k-shortest sets of every node pair) for the combination whose dual-layer
// segmentation is richest in backward segments with interior nodes — the
// paper's single-flow scenario intentionally selects both paths "to
// traverse a long distance within the topology and to trigger
// segmentation" (§9.1). The search is deterministic; compute it once per
// topology and reuse the result across runs.
func SegmentedSingleFlow(t *topo.Topology, sizeK uint32) (FlowSpec, error) {
	bestScore := 0
	var spec FlowSpec
	for _, s := range t.Nodes() {
		for _, d := range t.Nodes() {
			if d <= s {
				continue
			}
			paths := t.KShortestPaths(s, d, 30, topo.ByLatency)
			for i, old := range paths {
				for j, nw := range paths {
					if i == j {
						continue
					}
					seg, err := controlplane.SegmentPaths(old, nw)
					if err != nil {
						continue
					}
					score := 0
					for _, sgm := range seg.Segments {
						if !sgm.Forward {
							score += 1 + 2*(len(sgm.Nodes)-2)
						}
					}
					if score > bestScore {
						bestScore = score
						spec = FlowSpec{Src: s, Dst: d, Old: old, New: nw, SizeK: sizeK}
					}
				}
			}
		}
	}
	if bestScore == 0 {
		return SingleLongFlow(t, sizeK)
	}
	return spec, nil
}

// Feasible reports whether the old (useNew=false) or new (useNew=true)
// configuration respects all link capacities.
func Feasible(t *topo.Topology, flows []FlowSpec, useNew bool) bool {
	loads := map[topo.LinkID]uint64{}
	for _, f := range flows {
		path := f.Old
		if useNew {
			path = f.New
		}
		for i := 0; i+1 < len(path); i++ {
			l, _ := t.LinkBetween(path[i], path[i+1])
			loads[l.ID] += uint64(f.SizeK)
		}
	}
	for id, load := range loads {
		if load > uint64(t.Link(id).Capacity*1000) {
			return false
		}
	}
	return true
}

// SingleLongFlow returns the paper's single-flow scenario: a flow between
// the latency-farthest node pair whose old and new paths "have been
// intentionally selected to traverse a long distance within the topology
// and to trigger segmentation" (§9.1). Among the k-shortest alternatives
// it prefers the first one whose dual-layer segmentation contains a
// backward segment, falling back to the longest alternative.
func SingleLongFlow(t *topo.Topology, sizeK uint32) (FlowSpec, error) {
	type pair struct {
		s, d topo.NodeID
		dist float64
	}
	var pairs []pair
	for _, s := range t.Nodes() {
		dist := t.Distances(s, topo.ByLatency)
		for d, v := range dist {
			if topo.NodeID(d) > s && v < 1e18 {
				pairs = append(pairs, pair{s, topo.NodeID(d), v})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].dist > pairs[j].dist })

	var fallback *FlowSpec
	for _, pr := range pairs {
		paths := t.KShortestPaths(pr.s, pr.d, 40, topo.ByLatency)
		if len(paths) < 2 {
			continue
		}
		old := paths[0]
		if fallback == nil {
			longest := paths[1]
			for _, cand := range paths[1:] {
				if len(cand) > len(longest) {
					longest = cand
				}
			}
			fallback = &FlowSpec{Src: pr.s, Dst: pr.d, Old: old, New: longest, SizeK: sizeK}
		}
		// Prefer the candidate whose backward segments hold the most
		// interior nodes — those are the updates dual-layer verification
		// accelerates (interiors pre-install while the gateway waits).
		var best []topo.NodeID
		bestScore := 0
		for _, cand := range paths[1:] {
			seg, err := controlplane.SegmentPaths(old, cand)
			if err != nil {
				continue
			}
			score := 0
			for _, sgm := range seg.Segments {
				if !sgm.Forward {
					score += 1 + (len(sgm.Nodes) - 2)
				}
			}
			if score > bestScore {
				bestScore = score
				best = cand
			}
		}
		if best != nil {
			return FlowSpec{Src: pr.s, Dst: pr.d, Old: old, New: best, SizeK: sizeK}, nil
		}
	}
	if fallback != nil {
		return *fallback, nil
	}
	return FlowSpec{}, fmt.Errorf("traffic: no alternative paths in %s", t.Name)
}
