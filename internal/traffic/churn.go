package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// ChurnConfig tunes a streaming churn workload.
type ChurnConfig struct {
	// ArrivalRate is the mean flow arrival rate in flows per second of
	// virtual time (Poisson process).
	ArrivalRate float64
	// MeanLifetime is the mean flow lifetime (exponential); steady-state
	// live population approaches ArrivalRate * MeanLifetime.
	MeanLifetime time.Duration
	// Duration is the admission window: no arrivals or reroute triggers
	// are generated past it.
	Duration time.Duration
	// RerouteEvery is the mean interval between single-link latency
	// perturbations (Poisson; 0 disables reroutes).
	RerouteEvery time.Duration
	// LatencyJitter is the one-time per-link multiplicative latency
	// jitter applied when the workload is created: each link's latency
	// is scaled by a seeded uniform factor in [1, 1+LatencyJitter].
	// Equal-cost topologies (fat-trees) need this so shortest paths are
	// unique and incremental oracle repair is path-exact (see
	// internal/topo/repair.go); 0 disables it.
	LatencyJitter float64
	// Candidates restricts flow endpoints (nil = all nodes); fat-tree
	// churn uses the edge switches.
	Candidates []topo.NodeID
}

// ChurnArrival is one flow arrival event.
type ChurnArrival struct {
	At       time.Duration
	Src, Dst topo.NodeID
	Salt     uint16
	Lifetime time.Duration
}

// ID returns the arrival's wire flow identifier.
func (a ChurnArrival) ID() packet.FlowID {
	return packet.HashFlowSalt(uint16(a.Src), uint16(a.Dst), a.Salt)
}

// ChurnReroute is one link perturbation event: the link's latency is
// set to Factor times its (post-jitter) base latency, forcing every
// flow whose shortest path changes to be rerouted.
type ChurnReroute struct {
	At     time.Duration
	Link   topo.LinkID
	Factor float64
}

// ChurnWorkload is a deterministic generator of Poisson flow
// arrivals/departures and continuous reroute triggers over virtual
// time. The two event streams draw from independent seeded RNGs, so
// consuming one stream never perturbs the other, and the whole
// workload is reproducible across worker and shard counts (the harness
// drives both streams from root-engine events in a fixed order).
type ChurnWorkload struct {
	t   *topo.Topology
	cfg ChurnConfig

	arrivals *rand.Rand
	reroutes *rand.Rand
	nodes    []topo.NodeID
	salts    map[[2]topo.NodeID]uint16
	tArr     time.Duration
	tRr      time.Duration
	base     []time.Duration // post-jitter per-link base latencies
}

// NewChurnWorkload validates cfg and seeds the generator, applying the
// configured latency jitter to t (which must be unfrozen when
// LatencyJitter > 0).
func NewChurnWorkload(t *topo.Topology, seed int64, cfg ChurnConfig) (*ChurnWorkload, error) {
	if cfg.ArrivalRate <= 0 {
		return nil, fmt.Errorf("traffic: churn needs a positive arrival rate, got %g", cfg.ArrivalRate)
	}
	if cfg.MeanLifetime <= 0 {
		return nil, fmt.Errorf("traffic: churn needs a positive mean lifetime, got %v", cfg.MeanLifetime)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("traffic: churn needs a positive duration, got %v", cfg.Duration)
	}
	nodes := cfg.Candidates
	if nodes == nil {
		nodes = t.Nodes()
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("traffic: churn needs at least two candidate nodes")
	}
	w := &ChurnWorkload{
		t:        t,
		cfg:      cfg,
		arrivals: rand.New(rand.NewSource(seed)),
		reroutes: rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		nodes:    nodes,
		salts:    make(map[[2]topo.NodeID]uint16),
	}
	if cfg.LatencyJitter > 0 {
		JitterLatencies(t, seed, cfg.LatencyJitter)
	}
	w.base = make([]time.Duration, t.NumLinks())
	for _, l := range t.Links() {
		w.base[l.ID] = l.Latency
	}
	return w, nil
}

// JitterLatencies applies a one-time seeded multiplicative latency
// jitter to every link of t: each latency is scaled by an independent
// uniform factor in [1, 1+jitter). Equal-cost topologies (fat-trees)
// need it so shortest paths are unique and incremental oracle repair
// is path-exact (see internal/topo/repair.go). t must be unfrozen.
// Callers that wire control latencies off the topology should jitter
// before wiring; NewChurnWorkload applies the same function when
// ChurnConfig.LatencyJitter is set.
func JitterLatencies(t *topo.Topology, seed int64, jitter float64) {
	jrng := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
	for _, l := range t.Links() {
		f := 1 + jitter*jrng.Float64()
		t.SetLinkLatency(l.ID, time.Duration(float64(l.Latency)*f))
	}
}

// BaseLatency returns the post-jitter base latency of link id, the
// reference point reroute factors multiply (so repeated perturbations
// of one link never drift).
func (w *ChurnWorkload) BaseLatency(id topo.LinkID) time.Duration { return w.base[id] }

// NextArrival returns the next flow arrival, or false once the
// admission window is exhausted. taken reports whether a candidate
// FlowID is currently in use (live in the fabric); colliding IDs are
// skipped by bumping the pair's salt, which keeps every live wire ID
// unique without the generator tracking historical flows.
func (w *ChurnWorkload) NextArrival(taken func(packet.FlowID) bool) (ChurnArrival, bool) {
	dt := w.arrivals.ExpFloat64() / w.cfg.ArrivalRate
	w.tArr += time.Duration(dt * float64(time.Second))
	if w.tArr > w.cfg.Duration {
		return ChurnArrival{}, false
	}
	src := w.nodes[w.arrivals.Intn(len(w.nodes))]
	dst := w.nodes[w.arrivals.Intn(len(w.nodes))]
	for dst == src {
		dst = w.nodes[w.arrivals.Intn(len(w.nodes))]
	}
	key := [2]topo.NodeID{src, dst}
	salt := w.salts[key]
	for taken != nil && taken(packet.HashFlowSalt(uint16(src), uint16(dst), salt)) {
		salt++
	}
	w.salts[key] = salt + 1
	life := time.Duration(w.arrivals.ExpFloat64() * float64(w.cfg.MeanLifetime))
	if life <= 0 {
		life = time.Nanosecond
	}
	return ChurnArrival{At: w.tArr, Src: src, Dst: dst, Salt: salt, Lifetime: life}, true
}

// NextReroute returns the next link perturbation, or false once the
// admission window is exhausted (or reroutes are disabled). Factors
// are uniform in [0.5, 2.0) around the link's base latency.
func (w *ChurnWorkload) NextReroute() (ChurnReroute, bool) {
	if w.cfg.RerouteEvery <= 0 {
		return ChurnReroute{}, false
	}
	w.tRr += time.Duration(w.reroutes.ExpFloat64() * float64(w.cfg.RerouteEvery))
	if w.tRr > w.cfg.Duration {
		return ChurnReroute{}, false
	}
	id := topo.LinkID(w.reroutes.Intn(w.t.NumLinks()))
	f := 0.5 + 1.5*w.reroutes.Float64()
	return ChurnReroute{At: w.tRr, Link: id, Factor: f}, true
}
