package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p4update/internal/controlplane"
	"p4update/internal/topo"
)

func TestGravityDemandsSumToOne(t *testing.T) {
	g := topo.B4()
	rng := rand.New(rand.NewSource(1))
	w := GravityWeights(g, rng)
	var sum float64
	for _, s := range g.Nodes() {
		for _, d := range g.Nodes() {
			sum += GravityDemand(w, s, d)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("gravity demands sum to %f, want 1", sum)
	}
}

func TestGravityDemandProperty(t *testing.T) {
	g := topo.Internet2()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := GravityWeights(g, rng)
		for _, x := range w {
			if x <= 0 {
				return false
			}
		}
		return GravityDemand(w, 0, 1) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiFlowWorkloadInvariants(t *testing.T) {
	for _, mk := range []func() *topo.Topology{topo.B4, topo.Internet2} {
		g := mk()
		rng := rand.New(rand.NewSource(3))
		flows, err := MultiFlowWorkload(g, rng, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if len(flows) == 0 {
			t.Fatalf("%s: empty workload", g.Name)
		}
		seen := map[[2]topo.NodeID]bool{}
		for _, f := range flows {
			if f.Src == f.Dst {
				t.Errorf("%s: self flow", g.Name)
			}
			if seen[[2]topo.NodeID{f.Src, f.Dst}] {
				t.Errorf("%s: duplicate pair (FlowID collision)", g.Name)
			}
			seen[[2]topo.NodeID{f.Src, f.Dst}] = true
			if err := g.ValidatePath(f.Old); err != nil {
				t.Errorf("%s: bad old path: %v", g.Name, err)
			}
			if err := g.ValidatePath(f.New); err != nil {
				t.Errorf("%s: bad new path: %v", g.Name, err)
			}
			if f.SizeK == 0 {
				t.Errorf("%s: zero-size flow", g.Name)
			}
		}
		if !Feasible(g, flows, false) || !Feasible(g, flows, true) {
			t.Errorf("%s: infeasible workload returned", g.Name)
		}
		if !Transitionable(g, flows) {
			t.Errorf("%s: untransitionable workload returned", g.Name)
		}
	}
}

func TestMultiFlowWorkloadCandidates(t *testing.T) {
	g := topo.FatTree(4)
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig()
	cfg.Candidates = topo.EdgeSwitches(g)
	flows, err := MultiFlowWorkload(g, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[topo.NodeID]bool{}
	for _, e := range cfg.Candidates {
		allowed[e] = true
	}
	for _, f := range flows {
		if !allowed[f.Src] || !allowed[f.Dst] {
			t.Errorf("flow %d->%d outside candidate set", f.Src, f.Dst)
		}
	}
}

func TestMultiFlowWorkloadTooFewCandidates(t *testing.T) {
	g := topo.B4()
	cfg := DefaultConfig()
	cfg.Candidates = []topo.NodeID{0}
	if _, err := MultiFlowWorkload(g, rand.New(rand.NewSource(1)), cfg); err == nil {
		t.Error("single candidate accepted")
	}
}

func TestFeasible(t *testing.T) {
	g := topo.New("pair")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	g.AddLink(a, b, 1, 1) // 1 Mbps = 1000 kbps
	flows := []FlowSpec{
		{Src: a, Dst: b, Old: []topo.NodeID{a, b}, New: []topo.NodeID{a, b}, SizeK: 600},
		{Src: b, Dst: a, Old: []topo.NodeID{b, a}, New: []topo.NodeID{b, a}, SizeK: 600},
	}
	// 1200 > 1000 on the single link (reservations share the undirected
	// link in this model).
	if Feasible(g, flows, false) {
		t.Error("oversubscription accepted")
	}
	flows[1].SizeK = 300
	if !Feasible(g, flows, false) {
		t.Error("feasible load rejected")
	}
}

func TestTransitionableDetectsSwapDeadlock(t *testing.T) {
	// Two flows swapping links with no spare capacity cannot migrate via
	// atomic moves.
	g := topo.New("swap")
	s1 := g.AddNode("s1", 0, 0)
	s2 := g.AddNode("s2", 0, 0)
	x := g.AddNode("x", 0, 0)
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	d := g.AddNode("d", 0, 0)
	g.AddLink(s1, x, 1, 100)
	g.AddLink(s2, x, 1, 100)
	g.AddLink(x, a, 1, 1) // 1000 kbps each
	g.AddLink(x, b, 1, 1)
	g.AddLink(a, d, 1, 100)
	g.AddLink(b, d, 1, 100)
	flows := []FlowSpec{
		{Src: s1, Dst: d, Old: []topo.NodeID{s1, x, a, d}, New: []topo.NodeID{s1, x, b, d}, SizeK: 600},
		{Src: s2, Dst: d, Old: []topo.NodeID{s2, x, b, d}, New: []topo.NodeID{s2, x, a, d}, SizeK: 600},
	}
	if Transitionable(g, flows) {
		t.Error("circular swap reported transitionable")
	}
	// With smaller flows the swap fits.
	flows[0].SizeK, flows[1].SizeK = 400, 400
	if !Transitionable(g, flows) {
		t.Error("fitting swap rejected")
	}
}

func TestSingleLongFlowAndSegmented(t *testing.T) {
	for _, mk := range []func() *topo.Topology{topo.B4, topo.Internet2} {
		g := mk()
		f, err := SingleLongFlow(g, 1000)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := g.ValidatePath(f.Old); err != nil {
			t.Fatal(err)
		}
		if err := g.ValidatePath(f.New); err != nil {
			t.Fatal(err)
		}
		sf, err := SegmentedSingleFlow(g, 1000)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		seg, err := controlplane.SegmentPaths(sf.Old, sf.New)
		if err != nil {
			t.Fatal(err)
		}
		interiorBackward := 0
		for _, s := range seg.Segments {
			if !s.Forward {
				interiorBackward += 1 + (len(s.Nodes) - 2)
			}
		}
		if interiorBackward == 0 {
			t.Errorf("%s: segmented flow has no backward structure", g.Name)
		}
	}
}

func TestFlowSpecID(t *testing.T) {
	a := FlowSpec{Src: 1, Dst: 2}
	b := FlowSpec{Src: 2, Dst: 1}
	if a.ID() == b.ID() {
		t.Error("direction not distinguished")
	}
	if a.ID() != (FlowSpec{Src: 1, Dst: 2, SizeK: 99}).ID() {
		t.Error("ID must depend only on the src/dst pair")
	}
}
