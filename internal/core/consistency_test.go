package core_test

import (
	"math/rand"
	"testing"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// stepAndCheck drives the simulation one event at a time, asserting after
// every event that the flow's forwarding state is blackhole- and loop-free
// from the ingress: the trace must reach the egress without repeating a
// node (the consistency invariant of §5).
func stepAndCheck(t *testing.T, tb *testbed, f packet.FlowID, ingress topo.NodeID) {
	t.Helper()
	limit := tb.topo.NumNodes() + 2
	for tb.eng.Step() {
		visited, delivered := tb.net.TracePath(f, ingress, limit)
		seen := map[topo.NodeID]bool{}
		for _, n := range visited {
			if seen[n] {
				t.Fatalf("t=%v: forwarding loop: %v", tb.eng.Now(), visited)
			}
			seen[n] = true
		}
		if !delivered {
			t.Fatalf("t=%v: blackhole: trace %v did not reach the egress", tb.eng.Now(), visited)
		}
		if tb.eng.Steps() > 2_000_000 {
			t.Fatal("simulation runaway")
		}
	}
}

func TestInvariantHeldThroughoutSL(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle)); err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
}

func TestInvariantHeldThroughoutDL(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual)); err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
}

func TestCorruptedDistanceUIMRejected(t *testing.T) {
	// §7.1 scenario (ii): the controller miscomputes distances so a
	// parent claims the same distance as its child. The switches must
	// alarm and never implement a loop.
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)

	rec, _ := tb.ctl.Flow(f)
	plan, err := controlplane.PreparePlan(tb.topo, f, rec.Path, newP, 2, rec.SizeK, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: give v2 (index 2 on the new path) the same distance as
	// its parent v3 (Fig. 6b).
	plan.UIMs[2].NewDistance = plan.UIMs[3].NewDistance
	var alarms int
	tb.ctl.OnAlarm = func(u packet.UFM) {
		if u.Reason == packet.ReasonDistance {
			alarms++
		}
	}
	u, _ := tb.ctl.Push(plan, rec)
	stepAndCheck(t, tb, f, 0)

	if alarms == 0 {
		t.Error("no distance alarm raised for the corrupted UIM")
	}
	if u.Done() {
		t.Error("corrupted update reported complete")
	}
}

func TestOutOfOrderVersionsFastForward(t *testing.T) {
	// §4.1/§4.2: version 3 arrives and deploys before the delayed
	// version 2; the network must converge to version 3 and stay
	// consistent; late version-2 messages are rejected as outdated.
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	rec, _ := tb.ctl.Flow(f)

	// Version 2: the segmented Fig-1 update (will be delayed).
	plan2, err := controlplane.PreparePlan(tb.topo, f, oldP, newP, 2, rec.SizeK, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	// Version 3: a short detour, computed against the *intended* v2
	// state (the controller believes v2 deployed).
	path3 := []topo.NodeID{0, 1, 2, 7}
	plan3, err := controlplane.PreparePlan(tb.topo, f, newP, path3, 3, rec.SizeK, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	// Deploy v3 now; v2's messages trickle in 300 ms later.
	if _, err := tb.ctl.Push(plan3, rec); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(300*time.Millisecond, func() {
		for i, uim := range plan2.UIMs {
			tb.net.SendToSwitch(plan2.Targets[i], uim, 0)
		}
	})
	var outdatedAlarms int
	tb.ctl.OnAlarm = func(u packet.UFM) {
		if u.Reason == packet.ReasonOutdated {
			outdatedAlarms++
		}
	}
	stepAndCheck(t, tb, f, 0)

	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(path3) {
		t.Fatalf("final path %v, want %v", got, path3)
	}
	for i := range path3 {
		if got[i] != path3[i] {
			t.Fatalf("final path %v, want %v (highest version)", got, path3)
		}
	}
	if outdatedAlarms == 0 {
		t.Error("stale version-2 messages raised no outdated alarms")
	}
}

func TestDroppedUIMStallsConsistently(t *testing.T) {
	// A lost indication stalls the update at that node, but the mixed
	// state must stay consistent (traffic delivered, no loops).
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	tb.net.DropControl = func(node topo.NodeID, toController bool, raw []byte) bool {
		return !toController && node == 3 // v3 never receives its UIM
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if u.Done() {
		t.Error("update completed despite a lost UIM")
	}
	// v3 must not have applied; v4..v7 (downstream of the gap) may have.
	if st, ok := tb.net.Switch(3).PeekState(f); ok && st.HasRule {
		t.Error("v3 applied a rule without its UIM")
	}
}

func TestDroppedUNMStallsConsistently(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	dropped := false
	tb.net.Drop = func(from, to topo.NodeID, raw []byte) bool {
		// Drop the first UNM crossing 5->4.
		if m, err := packet.Decode(raw); err == nil {
			if _, isUNM := m.(*packet.UNM); isUNM && from == 5 && to == 4 && !dropped {
				dropped = true
				return true
			}
		}
		return false
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if !dropped {
		t.Fatal("test did not exercise the drop")
	}
	if u.Done() {
		t.Error("SL update completed despite a lost UNM (no retransmit in base protocol)")
	}
}

func TestRandomizedDelaysAndReorderingProperty(t *testing.T) {
	// Property: under arbitrary control-plane reordering, per-node
	// install delays and random data-plane jitter, the invariant holds
	// after every event and the update completes.
	for trial := 0; trial < 25; trial++ {
		seed := int64(1000 + trial)
		g := topo.Synthetic()
		tb := newTestbed(g, seed, &core.Protocol{})
		rng := rand.New(rand.NewSource(seed))
		tb.net.ExtraControlDelay = func(topo.NodeID, bool, []byte) time.Duration {
			return time.Duration(rng.Intn(400)) * time.Millisecond
		}
		tb.net.ExtraDelay = func(topo.NodeID, topo.NodeID, []byte) time.Duration {
			return time.Duration(rng.Intn(10)) * time.Millisecond
		}
		tb.net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond))
		})
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		ut := packet.UpdateSingle
		if trial%2 == 0 {
			ut = packet.UpdateDual
		}
		u, err := tb.ctl.TriggerUpdate(f, newP, &ut)
		if err != nil {
			t.Fatal(err)
		}
		stepAndCheck(t, tb, f, 0)
		if !u.Done() {
			t.Fatalf("trial %d (%v): update did not complete", trial, ut)
		}
	}
}

func TestSequentialUpdatesConvergeToHighestVersion(t *testing.T) {
	// Several updates in rapid succession with overlapping deliveries:
	// the network must converge to the last (highest-version) path and
	// stay consistent throughout (§4.2 fast-forward).
	g := topo.Synthetic()
	tb := newTestbed(g, 99, &core.Protocol{})
	rng := rand.New(rand.NewSource(99))
	tb.net.ExtraControlDelay = func(topo.NodeID, bool, []byte) time.Duration {
		return time.Duration(rng.Intn(200)) * time.Millisecond
	}
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	rec, _ := tb.ctl.Flow(f)

	paths := [][]topo.NodeID{
		newP,                     // v2
		{0, 4, 5, 6, 7},          // v3
		{0, 1, 2, 7},             // v4
		{0, 4, 2, 7},             // v5 (back to the original)
		{0, 1, 2, 3, 4, 5, 6, 7}, // v6
	}
	prev := oldP
	for i, p := range paths {
		plan, err := controlplane.PreparePlan(tb.topo, f, prev, p, uint32(i+2), rec.SizeK, forceType(packet.UpdateSingle))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.ctl.Push(plan, rec); err != nil {
			t.Fatal(err)
		}
		prev = p
	}
	stepAndCheck(t, tb, f, 0)

	want := paths[len(paths)-1]
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(want) {
		t.Fatalf("final path %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final path %v, want %v", got, want)
		}
	}
	// The highest version must have completed.
	u, ok := tb.ctl.Status(f, uint32(len(paths)+1))
	if !ok || !u.Done() {
		t.Error("highest-version update did not complete")
	}
}

func TestMangledUNMDiscarded(t *testing.T) {
	// Bit-flipped frames must not crash the pipeline or corrupt state:
	// undecodable frames count as decode errors; decodable-but-wrong
	// labels are rejected by verification.
	g := topo.Synthetic()
	tb := newTestbed(g, 5, &core.Protocol{})
	rng := rand.New(rand.NewSource(5))
	tb.net.Mangle = func(from, to topo.NodeID, raw []byte) []byte {
		if rng.Intn(4) == 0 && len(raw) > 0 {
			out := append([]byte{}, raw...)
			out[rng.Intn(len(out))] ^= 0xff
			return out
		}
		return raw
	}
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle)); err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0) // invariant must hold regardless of outcome
}

func TestEngineDeterminismAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		g := topo.Synthetic()
		tb := newTestbed(g, 42, &core.Protocol{})
		rng := tb.eng.Rand()
		tb.net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(30*time.Millisecond))
		})
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		u, _ := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
		tb.eng.Run()
		if !u.Done() {
			t.Fatal("update did not complete")
		}
		return u.Completed - u.Sent
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
	_ = sim.New // keep the import meaningful if helpers change
}

func TestDuplicatedUNMsIdempotent(t *testing.T) {
	// At-least-once delivery: every data-plane frame is delivered twice.
	// Verification must treat replays as duplicates; the update completes
	// exactly once and stays consistent throughout.
	for _, ut := range []packet.UpdateType{packet.UpdateSingle, packet.UpdateDual} {
		g := topo.Synthetic()
		tb := newTestbed(g, 81, &core.Protocol{})
		tb.net.Duplicate = func(topo.NodeID, topo.NodeID, []byte) bool { return true }
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		u, err := tb.ctl.TriggerUpdate(f, newP, &ut)
		if err != nil {
			t.Fatal(err)
		}
		stepAndCheck(t, tb, f, 0)
		if !u.Done() {
			t.Fatalf("%v: update did not complete under duplication", ut)
		}
		// Each node committed this version exactly once.
		var applied uint64
		for _, sw := range tb.net.Switches() {
			applied += sw.Stats.RulesApplied
		}
		if applied != uint64(len(newP)) {
			t.Errorf("%v: %d rule commits, want %d (no double applies)", ut, applied, len(newP))
		}
	}
}

func TestDuplicatedControlAndDataUnderCongestion(t *testing.T) {
	// Duplication combined with the congestion gate: staged reservations
	// must not be double-booked by replayed notifications.
	g := topo.Synthetic()
	tb := newTestbed(g, 82, &core.Protocol{Congestion: true})
	tb.net.Duplicate = func(topo.NodeID, topo.NodeID, []byte) bool { return true }
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 600_000) // 600 Mbps of 1000
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	for tb.eng.Step() {
		for _, sw := range tb.net.Switches() {
			for p := topo.PortID(0); int(p) < tb.topo.Degree(sw.ID); p++ {
				if sw.ReservedK(p) > sw.CapacityK(p) {
					t.Fatalf("node %d port %d over capacity under duplication", sw.ID, p)
				}
			}
		}
	}
	if !u.Done() {
		t.Fatal("update did not complete")
	}
	// Final reservations: exactly one 600 Mbps booking per new-path link.
	for i := 0; i+1 < len(newP); i++ {
		sw := tb.net.Switch(newP[i])
		port := tb.topo.PortTo(newP[i], newP[i+1])
		if got := sw.ReservedK(port); got != 600_000 {
			t.Errorf("link %d->%d reserved %d, want 600000", newP[i], newP[i+1], got)
		}
	}
}
