package core_test

import (
	"math/rand"
	"testing"
	"time"

	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

func TestChainedDualLayerUpdates(t *testing.T) {
	// Appendix C: consecutive dual-layer updates. The base algorithm
	// requires a single-layer update in between; with the extension the
	// second DL update converges directly.
	run := func(allowChained bool) (doneV2, doneV3 bool) {
		g := topo.Synthetic()
		tb := newTestbed(g, 51, &core.Protocol{AllowChainedDL: allowChained})
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		u2, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		// Second DL update: back to the short path (this segmentation
		// contains the backward segment {4,...,2} w.r.t. the long path).
		u3, err := tb.ctl.TriggerUpdate(f, oldP, forceType(packet.UpdateDual))
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		return u2.Done(), u3.Done()
	}

	d2, d3 := run(false)
	if !d2 {
		t.Fatal("first DL update failed even without chaining")
	}
	if d3 {
		t.Error("base algorithm completed a chained DL update (should stall at gateways)")
	}
	d2, d3 = run(true)
	if !d2 || !d3 {
		t.Fatalf("extension: v2 done=%v v3 done=%v, want both", d2, d3)
	}
}

func TestChainedDLInvariantHeld(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 52, &core.Protocol{AllowChainedDL: true})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if _, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual)); err != nil {
		t.Fatal(err)
	}
	// Fire the second DL update while the first is still in flight.
	tb.eng.Schedule(100*time.Millisecond, func() {
		if _, err := tb.ctl.TriggerUpdate(f, []topo.NodeID{0, 4, 2, 7}, forceType(packet.UpdateDual)); err != nil {
			t.Error(err)
		}
	})
	stepAndCheck(t, tb, f, 0)
	u, ok := tb.ctl.Status(f, 3)
	if !ok || !u.Done() {
		t.Fatal("overlapping chained DL update did not converge")
	}
}

func TestMultiFlowInvariantStepping(t *testing.T) {
	// System-level property: under the Fig-7d workload (congestion
	// freedom, gravity traffic), every flow's forwarding stays loop- and
	// blackhole-free after every single event.
	g := topo.B4()
	cfg := struct{ seed int64 }{seed: 61}
	tb := newTestbed(g, cfg.seed, &core.Protocol{Congestion: true})
	rng := rand.New(rand.NewSource(cfg.seed))
	flows, err := traffic.MultiFlowWorkload(g, rng, traffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range flows {
		if _, err := tb.ctl.RegisterFlow(fs.Src, fs.Dst, fs.Old, fs.SizeK); err != nil {
			t.Fatal(err)
		}
	}
	for _, fs := range flows {
		if _, err := tb.ctl.TriggerUpdate(fs.ID(), fs.New, nil); err != nil {
			t.Fatal(err)
		}
	}
	limit := g.NumNodes() + 2
	for tb.eng.Step() {
		for _, fs := range flows {
			visited, delivered := tb.net.TracePath(fs.ID(), fs.Src, limit)
			seen := map[topo.NodeID]bool{}
			for _, n := range visited {
				if seen[n] {
					t.Fatalf("flow %d->%d loops: %v", fs.Src, fs.Dst, visited)
				}
				seen[n] = true
			}
			if !delivered {
				t.Fatalf("flow %d->%d blackholed: %v", fs.Src, fs.Dst, visited)
			}
		}
		// Capacity safety across all switches.
		for _, sw := range tb.net.Switches() {
			for p := topo.PortID(0); int(p) < g.Degree(sw.ID); p++ {
				if sw.ReservedK(p) > sw.CapacityK(p) {
					t.Fatalf("node %d port %d over capacity", sw.ID, p)
				}
			}
		}
		if tb.eng.Steps() > 500_000 {
			t.Fatal("runaway")
		}
	}
	for _, fs := range flows {
		u, ok := tb.ctl.Status(fs.ID(), 2)
		if !ok || !u.Done() {
			t.Errorf("flow %d->%d update incomplete", fs.Src, fs.Dst)
		}
	}
}

func TestEmittedUNMSemantics(t *testing.T) {
	// The coordination contract of §7.2/§B, checked on the wire: after
	// the egress applies, its notification carries Vn=version, Dn=0 and
	// Do=0 (segment ID zero); after an interior node applies, its
	// notification carries the inherited Do and an incremented counter.
	g := topo.Synthetic()
	tb := newTestbed(g, 71, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)

	type obs struct {
		from, to topo.NodeID
		m        packet.UNM
	}
	var unms []obs
	tb.net.Mangle = func(from, to topo.NodeID, raw []byte) []byte {
		if m, err := packet.Decode(raw); err == nil {
			if u, ok := m.(*packet.UNM); ok {
				unms = append(unms, obs{from, to, *u})
			}
		}
		return raw
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !u.Done() {
		t.Fatal("update did not complete")
	}
	var sawEgress, sawInherit bool
	for _, o := range unms {
		if o.m.Vn != 2 {
			t.Fatalf("UNM with wrong version: %+v", o.m)
		}
		if o.from == 7 {
			if o.m.Dn != 0 || o.m.Do != 0 {
				t.Errorf("egress UNM labels: %+v", o.m)
			}
			sawEgress = true
		}
		if o.from == 6 && o.m.Do == 0 && o.m.Counter == 1 {
			sawInherit = true // v6 inherited Do=0 from v7 and counted one hop
		}
	}
	if !sawEgress || !sawInherit {
		t.Errorf("missing expected notifications: egress=%v inherit=%v (total %d)",
			sawEgress, sawInherit, len(unms))
	}

	// Table-1 register effects at a gateway: v4 must hold the inherited
	// segment ID 0 and last update type DL.
	st, _ := tb.net.Switch(4).PeekState(f)
	if st.OldDistance != 0 || st.LastType != packet.UpdateDual {
		t.Errorf("gateway registers: oldDist=%d lastType=%v", st.OldDistance, st.LastType)
	}
	_ = dataplane.FreshDistance
}
