package core

import (
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Protocol is the P4Update data-plane handler: it wires the verification
// procedures into the switch pipeline and implements the UNM coordination
// of §7.2/§B plus the congestion extension of §7.4/§A.2.
type Protocol struct {
	// Congestion enables the per-link capacity gate and the dynamic
	// inter-flow priority scheduler.
	Congestion bool
	// AllowChainedDL enables the Appendix-C extension letting dual-layer
	// updates follow dual-layer updates.
	AllowChainedDL bool
	// WatchdogTimeout, when nonzero, makes switches monitor the arrival
	// of the update for each indication they hold; if the configured
	// version has not been applied when the timer fires, the switch
	// assumes the notification was lost in transit and reports
	// StatusStalled so the controller can re-trigger (§11 "Failures in
	// the Update Process"). The watchdog re-arms after firing — a single
	// report can itself be lost on a lossy control channel — bounded by
	// MaxStallReports per awaited version.
	WatchdogTimeout time.Duration
	// MaxStallReports bounds how many StatusStalled reports a node sends
	// for one awaited version (0 means the default of 8). The budget
	// resets whenever the indication is retransmitted, so every
	// controller retrigger buys a fresh round of local monitoring.
	MaxStallReports int
}

// defaultMaxStallReports is the per-version stall-report budget.
const defaultMaxStallReports = 8

var _ dataplane.Handler = (*Protocol)(nil)

// portFromWire converts a UIM wire port to a topo.PortID.
func portFromWire(p uint16) topo.PortID {
	if p == packet.NoPort {
		return dataplane.PortLocal
	}
	return topo.PortID(int32(p))
}

// HandleUIM processes an Update Indication Message: it stores the highest
// indication, verifies the flow-size bound (§A.2), applies immediately at
// the flow egress, performs the dual-layer early emission at segment
// gateways, and wakes notifications parked on the indication.
func (p *Protocol) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	if st.UIM != nil && m.Version < st.UIM.Version {
		return // stale indication
	}
	if st.UIM != nil && m.Version == st.UIM.Version {
		// Same version again: either a §11 destination-tree indication
		// adding another child to the clone group, or a failure-recovery
		// retransmission. Nodes that already applied re-emit so the
		// notification chain resumes past a loss; dual-layer gateways
		// repeat their early proposal.
		p.addChild(st, m)
		switch {
		case st.HasRule && st.NewVersion == m.Version:
			p.emit(sw, m.Flow, st, st.UIM, packet.LayerIntra)
		case m.UpdateType == packet.UpdateDual && m.Role.Has(packet.RoleGateway):
			p.emit(sw, m.Flow, st, st.UIM, packet.LayerInter)
		}
		sw.WakeUIMWaiters(m.Flow)
		if p.WatchdogTimeout > 0 && (!st.HasRule || st.NewVersion < m.Version) {
			// A retransmission restarts local monitoring with a fresh
			// report budget.
			st.StallReports = 0
			p.armWatchdog(sw, m.Flow, m.Version)
		}
		return
	}
	// Flow-size verification: a flow's size bound is immutable (§A.2);
	// a mismatching indication is discarded and reported.
	if p.Congestion && st.HasRule && st.FlowSizeK != 0 &&
		m.FlowSizeK != st.FlowSizeK {
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeRejectFlowSize,
			uint32(m.Flow), m.Version, uint32(m.FlowSizeK), uint32(st.FlowSizeK))
		sw.Alarm(m.Flow, m.Version, packet.ReasonFlowSize)
		return
	}
	st.UIM = m
	st.ChildPorts = st.ChildPorts[:0]
	p.addChild(st, m)
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}

	switch {
	case m.Role.Has(packet.RoleEgress):
		// §7.2: the egress applies directly once the indication is well
		// formed (new distance 0, newer version).
		if m.NewDistance != 0 {
			sw.Tracer().Verdict(int32(sw.ID), trace.CodeRejectDistance,
				uint32(m.Flow), m.Version, uint32(m.NewDistance), 0)
			sw.Alarm(m.Flow, m.Version, packet.ReasonDistance)
			return
		}
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyEgress,
			uint32(m.Flow), m.Version, 0, 0)
		p.stageApply(sw, m.Flow, st, m, Verdict{
			Decision:  DecisionApply,
			OldVer:    st.NewVersion,
			Inherited: 0, // the egress anchors segment ID 0
			Counter:   0,
			Code:      trace.CodeApplyEgress,
		})
	case m.UpdateType == packet.UpdateDual && m.Role.Has(packet.RoleGateway):
		// Dual-layer early emission: every segment egress-gateway
		// proposes its current segment ID upstream as soon as it knows
		// the new configuration, before updating itself. Forward
		// segments therefore start in parallel immediately.
		p.emit(sw, m.Flow, st, m, packet.LayerInter)
	}
	sw.WakeUIMWaiters(m.Flow)
	if p.WatchdogTimeout > 0 {
		st.StallReports = 0
		p.armWatchdog(sw, m.Flow, m.Version)
	}
}

// armWatchdog schedules one §11 stall check for (flow, version). If the
// version is still awaited when the timer fires, the node reports
// StatusStalled and re-arms — a one-shot report is not enough on a
// control channel that can also lose the report itself. The per-version
// budget (FlowState.StallReports, reset on every indication arrival)
// keeps an abandoned update from reporting forever.
func (p *Protocol) armWatchdog(sw *dataplane.Switch, flow packet.FlowID, version uint32) {
	sw.Network().Eng.Schedule(p.WatchdogTimeout, func() {
		cur, ok := sw.PeekState(flow)
		if !ok {
			return
		}
		if cur.UIM == nil || cur.UIM.Version != version ||
			(cur.HasRule && cur.NewVersion >= version) || cur.Applying {
			return // applied, superseded, or mid-install
		}
		limit := p.MaxStallReports
		if limit <= 0 {
			limit = defaultMaxStallReports
		}
		if int(cur.StallReports) >= limit {
			return // budget spent; controller-side recovery takes over
		}
		cur.StallReports++
		sw.Tracer().Watchdog(int32(sw.ID), uint32(flow), version,
			uint32(cur.StallReports))
		sw.SendUFM(&packet.UFM{
			Flow: flow, Version: version, Status: packet.StatusStalled,
		})
		p.armWatchdog(sw, flow, version)
	})
}

// HandleUNM processes an Update Notification Message per Alg. 1/Alg. 2.
func (p *Protocol) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {
	st := sw.State(m.Flow)

	var v Verdict
	if m.UpdateType != packet.UpdateDual ||
		(st.UIM != nil && m.Vn == st.UIM.Version && st.UIM.UpdateType != packet.UpdateDual) {
		// Alg. 2 lines 2-3: fall back to single-layer verification when
		// either side is not dual-layer.
		v = VerifySL(st, m)
	} else {
		v = VerifyDL(st, m, p.AllowChainedDL)
	}
	sw.Tracer().Verdict(int32(sw.ID), v.Code,
		uint32(m.Flow), m.Vn, uint32(m.Dn), uint32(m.Do))

	switch v.Decision {
	case DecisionWaitUIM:
		// Park a copy: m is pool-owned and recycled after dispatch.
		cp := *m
		sw.ParkOnUIM(m.Flow, func() { p.HandleUNM(sw, &cp, inPort) })
	case DecisionReject:
		sw.Alarm(m.Flow, m.Vn, v.Reason)
	case DecisionWaitDependency, DecisionDuplicate:
		// Drop. For WaitDependency the downstream gateway re-emits after
		// its own update, which re-triggers verification here.
	case DecisionInherit:
		st.OldDistance = v.Inherited
		st.Counter = v.Counter
		p.emit(sw, m.Flow, st, st.UIM, m.Layer)
	case DecisionApply:
		uim := st.UIM
		if st.Applying && st.ApplyingVersion >= uim.Version {
			// An install for this (or a newer) version is in flight. The
			// notification may still carry a smaller inherited distance,
			// so re-verify once the install commits (it will then take
			// the branch-3 inheritance path).
			sw.Tracer().Verdict(int32(sw.ID), trace.CodeWaitUIM,
				uint32(m.Flow), m.Vn, uint32(m.Dn), uint32(m.Do))
			cp := *m
			sw.ParkOnUIM(m.Flow, func() { p.HandleUNM(sw, &cp, inPort) })
			return
		}
		if p.Congestion && !p.congestionGate(sw, m, inPort, st, uim) {
			return // parked on capacity or priority
		}
		p.stageApply(sw, m.Flow, st, uim, v)
	}
}

// stageApply stages the rule change (egress_port_updated) and commits it
// after the switch's install delay, then runs the post-apply coordination.
func (p *Protocol) stageApply(sw *dataplane.Switch, f packet.FlowID, st *dataplane.FlowState, uim *packet.UIM, v Verdict) {
	if st.Applying && st.ApplyingVersion >= uim.Version {
		return // an equal-or-newer install is already in flight
	}
	st.Applying = true
	st.ApplyingVersion = uim.Version
	st.EgressPortUpdated = portFromWire(uim.EgressPort)
	portChanged := !st.HasRule || st.EgressPort != st.EgressPortUpdated
	sw.Apply(portChanged, func() {
		if sw.CommitRule(f, uim, v.OldVer, v.Inherited, v.Counter) {
			p.afterApply(sw, f, sw.State(f), uim)
		} else if st.ApplyingVersion == uim.Version {
			st.Applying = false
		}
	})
}

// afterApply notifies the child (upstream neighbor on the new path) and,
// at the flow ingress, reports completion to the controller.
func (p *Protocol) afterApply(sw *dataplane.Switch, f packet.FlowID, st *dataplane.FlowState, uim *packet.UIM) {
	p.emit(sw, f, st, uim, packet.LayerIntra)
	// Re-examine notifications that arrived while the install was in
	// flight (they may carry smaller inherited distances).
	sw.WakeUIMWaiters(f)
	if uim.Role.Has(packet.RoleIngress) {
		sw.SendUFM(&packet.UFM{
			Flow: f, Version: uim.Version, Status: packet.StatusUpdated,
		})
	}
}

// addChild records the indication's child port in the version's clone
// group (destination trees deliver one indication per child).
func (p *Protocol) addChild(st *dataplane.FlowState, m *packet.UIM) {
	port := portFromWire(m.ChildPort)
	if port == dataplane.PortLocal {
		return
	}
	for _, c := range st.ChildPorts {
		if c == port {
			return
		}
	}
	st.ChildPorts = append(st.ChildPorts, port)
}

// emit clones a UNM toward the node's children on the new path (the
// clone group has one port for path flows, one per child for destination
// trees). The labels
// are positional (from the indication); the carried old distance is the
// node's effective segment ID: the inherited old distance once the node
// runs this version, its current applied distance before that (the early
// proposal of the dual-layer intuition in §3.2).
func (p *Protocol) emit(sw *dataplane.Switch, f packet.FlowID, st *dataplane.FlowState, uim *packet.UIM, layer packet.Layer) {
	if uim == nil || len(st.ChildPorts) == 0 {
		return // the ingress / a tree leaf has no children
	}
	do := st.CurrentDistance()
	vo := uim.Version - 1
	if st.HasRule && st.NewVersion == uim.Version {
		do = st.OldDistance
		if uim.UpdateType != packet.UpdateDual {
			vo = st.OldVersion
		}
	}
	for _, child := range st.ChildPorts {
		// SendUNM serializes synchronously, so a pooled struct can be
		// recycled as soon as it returns.
		unm := sw.Pool().GetUNM()
		*unm = packet.UNM{
			Flow:       f,
			Layer:      layer,
			UpdateType: uim.UpdateType,
			Vn:         uim.Version,
			Dn:         uim.NewDistance,
			Vo:         vo,
			Do:         do,
			Counter:    st.Counter,
		}
		sw.SendUNM(child, unm)
		sw.Pool().PutUNM(unm)
	}
}

// congestionGate implements the local capacity check of §A.2 and the
// dynamic priority scheduler of §7.4. It returns true when the move may
// proceed; otherwise the notification is parked and false returned.
func (p *Protocol) congestionGate(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID, st *dataplane.FlowState, uim *packet.UIM) bool {
	newPort := portFromWire(uim.EgressPort)
	if newPort == dataplane.PortLocal {
		return true // egress needs no outgoing capacity
	}
	if st.HasRule && st.EgressPort == newPort && st.FlowSizeK >= uim.FlowSizeK {
		return true // capacity already allocated on the same link
	}
	// Dynamic priority (§7.4): if another flow is blocked waiting for the
	// capacity this flow currently occupies, this flow's move is what
	// frees it — it becomes high priority.
	if st.HasRule && sw.HasCapacityWaiters(st.EgressPort) {
		if st.Priority != dataplane.PriorityHigh {
			sw.Tracer().Verdict(int32(sw.ID), trace.CodePriorityPromote,
				uint32(m.Flow), m.Vn, uint32(int32(st.EgressPort)), uint32(int32(newPort)))
		}
		st.Priority = dataplane.PriorityHigh
	}
	if sw.RemainingK(newPort) < uint64(uim.FlowSizeK) {
		// Insufficient capacity: every flow that wants to move away from
		// this link becomes high priority so it can free the capacity.
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeCapacityBlock,
			uint32(m.Flow), m.Vn, uint32(int32(newPort)), uint32(uim.FlowSizeK))
		sw.RaisePriorityOfMoversFrom(newPort)
		if st.Priority == dataplane.PriorityHigh {
			sw.MarkHighWaiting(newPort, m.Flow)
		}
		cp := *m
		sw.ParkOnCapacity(newPort, func() { p.HandleUNM(sw, &cp, inPort) })
		return false
	}
	// Capacity suffices, but a low-priority flow must let waiting
	// high-priority flows onto the link first.
	if st.Priority == dataplane.PriorityLow && sw.HighWaitingOn(newPort, m.Flow) {
		sw.Tracer().Verdict(int32(sw.ID), trace.CodePriorityYield,
			uint32(m.Flow), m.Vn, uint32(int32(newPort)), uint32(uim.FlowSizeK))
		cp := *m
		sw.ParkOnCapacity(newPort, func() { p.HandleUNM(sw, &cp, inPort) })
		return false
	}
	// Book the capacity now so concurrent gate decisions during the
	// install delay cannot oversubscribe the link.
	sw.StageReservation(m.Flow, newPort, uim.FlowSizeK, uim.Version)
	return true
}
