package core_test

import (
	"testing"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// altTree returns a spanning tree toward root that differs from the
// shortest-path tree: each node prefers its second-best adjacent parent
// when that keeps the relation a valid tree.
func altTree(g *topo.Topology, root topo.NodeID, base controlplane.Tree) controlplane.Tree {
	alt := controlplane.Tree{}
	for n, p := range base {
		alt[n] = p
	}
	for _, n := range g.Nodes() {
		if n == root {
			continue
		}
		for _, nb := range g.Neighbors(n) {
			if nb == alt[n] {
				continue
			}
			old := alt[n]
			alt[n] = nb
			if _, err := controlplane.TreeDepths(g, root, alt); err == nil {
				break // keep the change
			}
			alt[n] = old
		}
	}
	return alt
}

// checkTreeInvariant asserts every node's trace reaches the root without
// loops after every event.
func checkTreeInvariant(t *testing.T, tb *testbed, f packet.FlowID, root topo.NodeID) {
	t.Helper()
	limit := tb.topo.NumNodes() + 2
	for tb.eng.Step() {
		for _, n := range tb.topo.Nodes() {
			visited, delivered := tb.net.TracePath(f, n, limit)
			seen := map[topo.NodeID]bool{}
			for _, v := range visited {
				if seen[v] {
					t.Fatalf("t=%v: loop in destination tree from %d: %v", tb.eng.Now(), n, visited)
				}
				seen[v] = true
			}
			if !delivered || visited[len(visited)-1] != root {
				t.Fatalf("t=%v: node %d cannot reach root: %v", tb.eng.Now(), n, visited)
			}
		}
		if tb.eng.Steps() > 2_000_000 {
			t.Fatal("runaway")
		}
	}
}

func TestDestinationTreeUpdate(t *testing.T) {
	// §11 "Destination-Based Routing": migrate the whole destination tree
	// with a verified single-layer update fanning out from the root.
	g := topo.Synthetic()
	tb := newTestbed(g, 41, &core.Protocol{})
	root := topo.NodeID(7)
	base := controlplane.ShortestPathTree(g, root)
	f, err := tb.ctl.RegisterTree(root, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every node can reach the root initially.
	for _, n := range g.Nodes() {
		if _, delivered := tb.net.TracePath(f, n, 12); !delivered {
			t.Fatalf("node %d cannot reach root before update", n)
		}
	}
	next := altTree(g, root, base)
	changed := 0
	for n := range next {
		if next[n] != base[n] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("alternate tree identical to base; fixture broken")
	}
	u, err := tb.ctl.TriggerTreeUpdate(f, next)
	if err != nil {
		t.Fatal(err)
	}
	checkTreeInvariant(t, tb, f, root)
	if !u.Done() {
		t.Fatal("tree update did not complete")
	}
	// The forwarding state equals the new tree.
	for n, parent := range next {
		st, ok := tb.net.Switch(n).PeekState(f)
		if !ok || !st.HasRule {
			t.Fatalf("node %d lost its rule", n)
		}
		nb, _ := g.NeighborAt(n, st.EgressPort)
		if nb != parent {
			t.Errorf("node %d forwards to %d, want %d", n, nb, parent)
		}
	}
}

func TestDestinationTreeUpdateWithStragglers(t *testing.T) {
	g := topo.B4()
	tb := newTestbed(g, 42, &core.Protocol{})
	rng := tb.eng.Rand()
	tb.net.SetInstallDelay(func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(50*time.Millisecond))
	})
	root := topo.NodeID(4) // Atlanta
	base := controlplane.ShortestPathTree(g, root)
	f, err := tb.ctl.RegisterTree(root, base, 100)
	if err != nil {
		t.Fatal(err)
	}
	u, err := tb.ctl.TriggerTreeUpdate(f, altTree(g, root, base))
	if err != nil {
		t.Fatal(err)
	}
	checkTreeInvariant(t, tb, f, root)
	if !u.Done() {
		t.Fatal("tree update with stragglers did not complete")
	}
}

func TestDestinationTreeRejectsBadTree(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 43, &core.Protocol{})
	root := topo.NodeID(7)
	f, _ := tb.ctl.RegisterTree(root, controlplane.ShortestPathTree(g, root), 100)
	if _, err := tb.ctl.TriggerTreeUpdate(f, controlplane.Tree{1: 2, 2: 1}); err == nil {
		t.Error("cyclic tree accepted")
	}
	if _, err := tb.ctl.TriggerTreeUpdate(999, nil); err == nil {
		t.Error("unknown destination flow accepted")
	}
}
