package core_test

import (
	"testing"
	"time"

	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// pathsEqual reports a == b.
func pathsEqual(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runTwoPhaseTrace runs an SL update while injecting a packet every 5 ms
// and returns, per sequence number, the nodes it visited.
func runTwoPhaseTrace(t *testing.T, twoPhase bool) map[uint32][]topo.NodeID {
	t.Helper()
	g := topo.Synthetic()
	tb := newTestbed(g, 31, &core.Protocol{})
	if twoPhase {
		for _, sw := range tb.net.Switches() {
			sw.TwoPhase = true
		}
	}
	// Slow installs spread the transition out so packets see mixed state.
	rng := tb.eng.Rand()
	tb.net.SetInstallDelay(func() time.Duration {
		return time.Duration(rng.ExpFloat64() * float64(30*time.Millisecond))
	})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)

	visited := make(map[uint32][]topo.NodeID)
	for _, sw := range tb.net.Switches() {
		sw := sw
		sw.DataTap = func(s *dataplane.Switch, d *packet.Data, _ topo.PortID) {
			if !d.Probe {
				visited[d.Seq] = append(visited[d.Seq], s.ID)
			}
		}
	}
	seq := uint32(0)
	var inject func()
	inject = func() {
		seq++
		tb.net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: seq, TTL: 32})
		if tb.eng.Now() < 800*time.Millisecond {
			tb.eng.Schedule(5*time.Millisecond, inject)
		}
	}
	tb.eng.Schedule(0, inject)
	tb.eng.Schedule(50*time.Millisecond, func() {
		if _, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle)); err != nil {
			t.Error(err)
		}
	})
	tb.eng.Run()
	return visited
}

func TestTwoPhasePerPacketConsistency(t *testing.T) {
	// §11 "2-Phase Commit Updates": with tag-based forwarding, every
	// packet traverses exactly the old path or exactly the new path —
	// never a mix — while P4Update's per-hop guarantees keep the
	// transition loop- and blackhole-free.
	oldP, newP := topo.SyntheticPaths()
	visited := runTwoPhaseTrace(t, true)
	if len(visited) < 100 {
		t.Fatalf("only %d packets observed", len(visited))
	}
	sawOld, sawNew := 0, 0
	for seq, path := range visited {
		switch {
		case pathsEqual(path, oldP):
			sawOld++
		case pathsEqual(path, newP):
			sawNew++
		default:
			t.Fatalf("packet %d took a mixed path: %v", seq, path)
		}
	}
	if sawOld == 0 || sawNew == 0 {
		t.Errorf("transition not observed: old=%d new=%d", sawOld, sawNew)
	}
}

func TestWithoutTwoPhaseMixedPathsOccur(t *testing.T) {
	// The contrast: plain P4Update guarantees per-hop consistency (no
	// loops/blackholes) but not per-packet path purity — some packets
	// legitimately traverse a consistent mix of old and new rules.
	oldP, newP := topo.SyntheticPaths()
	visited := runTwoPhaseTrace(t, false)
	mixed := 0
	for _, path := range visited {
		if !pathsEqual(path, oldP) && !pathsEqual(path, newP) {
			mixed++
			// Even mixed paths must be loop-free and delivered.
			seen := map[topo.NodeID]bool{}
			for _, n := range path {
				if seen[n] {
					t.Fatalf("looped packet path: %v", path)
				}
				seen[n] = true
			}
			if path[len(path)-1] != 7 {
				t.Fatalf("undelivered packet path: %v", path)
			}
		}
	}
	if mixed == 0 {
		t.Skip("no mixed paths observed in this seed (transition too sharp)")
	}
}
