package core_test

import (
	"testing"

	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// TestDecisionCoverage drives every verification decision code of the
// flight recorder's decision log (trace.CoreCodes) and fails naming any
// code no scenario emitted. Two organic end-to-end updates cover the
// common paths; the crafted scenarios pin each remaining branch by
// feeding hand-built UIMs/UNMs straight into the protocol handlers with
// the register state set up to select exactly that branch.
func TestDecisionCoverage(t *testing.T) {
	var recs []*trace.Recorder

	// traced builds a recorded testbed on the Fig-1 topology.
	traced := func(proto *core.Protocol) (*testbed, *trace.Recorder) {
		tb := newTestbed(topo.Synthetic(), 1, proto)
		rec := trace.New(trace.Options{})
		rec.Clock = tb.eng.Now
		tb.eng.Trace = rec
		recs = append(recs, rec)
		return tb, rec
	}

	// Organic coverage: a full single-layer and a full dual-layer update
	// on the Fig-1 scenario (egress apply, SL apply, DL segment/gateway
	// applies, inheritance, dependency waits).
	for _, ut := range []packet.UpdateType{packet.UpdateSingle, packet.UpdateDual} {
		tb, _ := traced(&core.Protocol{})
		oldP, newP := topo.SyntheticPaths()
		f, err := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		if err != nil {
			t.Fatal(err)
		}
		u, err := tb.ctl.TriggerUpdate(f, newP, forceType(ut))
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		if !u.Done() {
			t.Fatalf("organic %v update did not complete", ut)
		}
	}

	// Crafted scenarios. Each runs on a fresh testbed and calls the
	// handlers directly on node v2; the engine is never run, so the
	// verdicts observed are exactly the synchronous decisions.
	const f = packet.FlowID(42)
	g := topo.Synthetic()
	pDown := g.PortTo(2, 7)  // v2's old-path downstream port
	pDown2 := g.PortTo(2, 3) // an alternative downstream port
	pIn := g.PortTo(2, 4)    // the port a UNM would arrive on

	// uim builds an indication for v2 with the given labels.
	uim := func(ver uint32, nd uint16, egress topo.PortID, sizeK uint32, ut packet.UpdateType, role packet.Role) *packet.UIM {
		return &packet.UIM{
			Flow: f, Version: ver, NewDistance: nd,
			EgressPort: uint16(int32(egress)), ChildPort: packet.NoPort,
			FlowSizeK: sizeK, UpdateType: ut, Role: role,
		}
	}
	// unm builds a notification as v2's downstream parent would send it.
	unm := func(vn uint32, dn uint16, vo uint32, do uint16, counter uint16, ut packet.UpdateType) *packet.UNM {
		return &packet.UNM{Flow: f, UpdateType: ut, Vn: vn, Dn: dn, Vo: vo, Do: do, Counter: counter}
	}

	type scenario struct {
		name  string
		proto *core.Protocol
		want  trace.Code
		run   func(p *core.Protocol, sw *dataplane.Switch)
	}
	scenarios := []scenario{
		{
			name: "wait-uim", want: trace.CodeWaitUIM,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Notification ahead of any indication: park (Alg. 1 l. 10).
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "reject-outdated", want: trace.CodeRejectOutdated,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				p.HandleUIM(sw, uim(3, 3, pDown, 1000, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "duplicate", want: trace.CodeDuplicate,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Already running the notified version: the echo is noise.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.EgressPort = true, 2, pDown
				p.HandleUIM(sw, uim(2, 3, pDown, 1000, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "reject-distance", want: trace.CodeRejectDistance,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Dn(UIM)=5 but Dn(UNM)+1=3: inconsistent labels.
				p.HandleUIM(sw, uim(2, 5, pDown, 1000, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "reject-flow-size", want: trace.CodeRejectFlowSize,
			proto: &core.Protocol{Congestion: true},
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// §A.2: the size bound is immutable; a mismatch is reported.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.EgressPort, st.FlowSizeK = true, 1, pDown, 1000
				p.HandleUIM(sw, uim(2, 3, pDown, 500, packet.UpdateSingle, 0))
			},
		},
		{
			name: "apply-egress", want: trace.CodeApplyEgress,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				p.HandleUIM(sw, uim(2, 0, dataplane.PortLocal, 1000, packet.UpdateSingle, packet.RoleEgress))
			},
		},
		{
			name: "apply-sl", want: trace.CodeApplySL,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				p.HandleUIM(sw, uim(2, 3, pDown, 1000, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "apply-dl-segment", want: trace.CodeApplyDLSegment,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Fresh node inside a segment inherits the parent's Do.
				p.HandleUIM(sw, uim(2, 3, pDown, 1000, packet.UpdateDual, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 4, 0, packet.UpdateDual), pIn)
			},
		},
		{
			name: "apply-dl-gateway", want: trace.CodeApplyDLGateway,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Gateway one version behind; segment-ID gate 6 > 4 passes.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.NewDistance = true, 1, 6
				st.EgressPort, st.LastType = pDown, packet.UpdateSingle
				p.HandleUIM(sw, uim(2, 3, pDown2, 1000, packet.UpdateDual, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 4, 0, packet.UpdateDual), pIn)
			},
		},
		{
			name: "wait-dependency", want: trace.CodeWaitDependency,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Same gateway but the proposed segment ID 7 is not smaller
				// than the node's distance 6: the move could close a loop.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.NewDistance = true, 1, 6
				st.EgressPort, st.LastType = pDown, packet.UpdateSingle
				p.HandleUIM(sw, uim(2, 3, pDown2, 1000, packet.UpdateDual, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 7, 0, packet.UpdateDual), pIn)
			},
		},
		{
			name: "inherit-distance", want: trace.CodeInherit,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Already updated; the notification carries a smaller Do.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.OldVersion = true, 2, 1
				st.NewDistance, st.OldDistance, st.EgressPort = 3, 5, pDown
				p.HandleUIM(sw, uim(2, 3, pDown, 1000, packet.UpdateDual, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 4, 0, packet.UpdateDual), pIn)
			},
		},
		{
			name: "inherit-counter", want: trace.CodeInheritCounter,
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Equal Do; the hop counter breaks the symmetry (Alg. 2).
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.OldVersion = true, 2, 1
				st.NewDistance, st.OldDistance, st.Counter, st.EgressPort = 3, 4, 3, pDown
				p.HandleUIM(sw, uim(2, 3, pDown, 1000, packet.UpdateDual, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 4, 1, packet.UpdateDual), pIn)
			},
		},
		{
			name: "capacity-block", want: trace.CodeCapacityBlock,
			proto: &core.Protocol{Congestion: true},
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// The verified move wants more capacity than the link has.
				p.HandleUIM(sw, uim(2, 3, pDown, 1<<31, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "priority-yield", want: trace.CodePriorityYield,
			proto: &core.Protocol{Congestion: true},
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Capacity suffices, but a high-priority flow is already
				// waiting on the link: the low-priority move yields.
				sw.MarkHighWaiting(pDown, f+1)
				p.HandleUIM(sw, uim(2, 3, pDown, 10, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
		{
			name: "priority-promote", want: trace.CodePriorityPromote,
			proto: &core.Protocol{Congestion: true},
			run: func(p *core.Protocol, sw *dataplane.Switch) {
				// Another flow is parked on the link this flow occupies:
				// moving away frees it, so the mover turns high priority.
				st := sw.State(f)
				st.HasRule, st.NewVersion, st.EgressPort, st.FlowSizeK = true, 1, pDown, 10
				sw.ParkOnCapacity(pDown, func() {})
				p.HandleUIM(sw, uim(2, 3, pDown2, 10, packet.UpdateSingle, 0))
				p.HandleUNM(sw, unm(2, 2, 1, 3, 0, packet.UpdateSingle), pIn)
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			proto := sc.proto
			if proto == nil {
				proto = &core.Protocol{}
			}
			tb, rec := traced(proto)
			sc.run(proto, tb.net.Switch(2))
			if got := rec.CountByKindClass(trace.KindVerdict, uint8(sc.want)); got == 0 {
				t.Errorf("scenario %q did not emit verdict %s",
					sc.name, trace.ClassLabel(trace.KindVerdict, uint8(sc.want)))
			}
		})
	}

	// The lock: every core decision code must have been recorded by at
	// least one scenario above.
	for _, code := range trace.CoreCodes() {
		var n uint64
		for _, rec := range recs {
			n += rec.CountByKindClass(trace.KindVerdict, uint8(code))
		}
		if n == 0 {
			t.Errorf("decision code %q has no covering scenario",
				trace.ClassLabel(trace.KindVerdict, uint8(code)))
		}
	}
}
