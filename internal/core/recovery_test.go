package core_test

import (
	"testing"
	"time"

	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// dropFirstUNM installs a fault plan dropping the first notification
// crossing from->to. The returned injector's RuleHits(0) reports
// whether the drop fired.
func dropFirstUNM(tb *testbed, from, to topo.NodeID) *faults.Injector {
	return faults.Attach(tb.net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.DropMatching(from, to, packet.TypeUNM, 1),
	}})
}

func TestRecoveryFromLostUNM(t *testing.T) {
	// §11 "Failures in the Update Process": a lost notification stalls
	// the chain; watchdogs report it and the controller re-triggers.
	g := topo.Synthetic()
	tb := newTestbed(g, 21, &core.Protocol{WatchdogTimeout: 500 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	inj := dropFirstUNM(tb, 5, 4)
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0) // the invariant must hold during recovery too
	if inj.RuleHits(0) != 1 {
		t.Fatal("drop not exercised")
	}
	if !u.Done() {
		t.Fatal("update did not recover from the lost UNM")
	}
	if u.Retriggers == 0 {
		t.Error("completion without any re-trigger — watchdog never fired?")
	}
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v, want %v", got, newP)
	}
}

func TestRecoveryDualLayer(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 22, &core.Protocol{WatchdogTimeout: 500 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	inj := dropFirstUNM(tb, 6, 5)
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if inj.RuleHits(0) != 1 {
		t.Fatal("drop not exercised")
	}
	if !u.Done() {
		t.Fatal("dual-layer update did not recover")
	}
}

func TestRecoveryBounded(t *testing.T) {
	// With every UNM into v4 dropped forever, recovery retries its
	// bounded number of times and then gives up; consistency holds.
	g := topo.Synthetic()
	tb := newTestbed(g, 23, &core.Protocol{WatchdogTimeout: 200 * time.Millisecond})
	tb.ctl.MaxRetriggers = 2
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	faults.Attach(tb.net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.DropMatching(faults.AnyNode, 4, packet.TypeUNM, 0),
	}})
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if u.Done() {
		t.Fatal("update completed despite a permanently broken link")
	}
	if u.Retriggers != 2 {
		t.Errorf("retriggers = %d, want exactly MaxRetriggers", u.Retriggers)
	}
}

func TestRecoveryFromLostControllerUIM(t *testing.T) {
	// Regression: SendToSwitch used to bypass the fault hooks entirely,
	// so a lost controller->switch indication was untestable. Drop the
	// first UIM into a mid-path node: the node never learns about the
	// update, its upstream neighbors hold their indications, their §11
	// watchdogs report the stall, and the controller re-sends the plan.
	g := topo.Synthetic()
	tb := newTestbed(g, 25, &core.Protocol{WatchdogTimeout: 500 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	inj := faults.Attach(tb.net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.DropMatching(dataplane.NodeController, newP[len(newP)/2], packet.TypeUIM, 1),
	}})
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if inj.RuleHits(0) != 1 {
		t.Fatal("UIM drop not exercised")
	}
	if !u.Done() {
		t.Fatal("update did not recover from the lost controller UIM")
	}
	if u.Retriggers == 0 {
		t.Error("completion without any re-trigger — stall never reported?")
	}
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v, want %v", got, newP)
	}
}

func TestWatchdogQuietOnSuccess(t *testing.T) {
	// A healthy update must not produce stalled reports.
	g := topo.Synthetic()
	tb := newTestbed(g, 24, &core.Protocol{WatchdogTimeout: 300 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	u, err := tb.ctl.TriggerUpdate(f, newP, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !u.Done() {
		t.Fatal("update did not complete")
	}
	if u.Retriggers != 0 {
		t.Errorf("healthy update re-triggered %d times", u.Retriggers)
	}
}
