package core_test

import (
	"testing"
	"time"

	"p4update/internal/core"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// dropFirstUNM drops the first notification crossing from->to.
func dropFirstUNM(tb *testbed, from, to topo.NodeID) *bool {
	dropped := new(bool)
	tb.net.Drop = func(f, t topo.NodeID, raw []byte) bool {
		if *dropped || f != from || t != to {
			return false
		}
		if m, err := packet.Decode(raw); err == nil {
			if _, isUNM := m.(*packet.UNM); isUNM {
				*dropped = true
				return true
			}
		}
		return false
	}
	return dropped
}

func TestRecoveryFromLostUNM(t *testing.T) {
	// §11 "Failures in the Update Process": a lost notification stalls
	// the chain; watchdogs report it and the controller re-triggers.
	g := topo.Synthetic()
	tb := newTestbed(g, 21, &core.Protocol{WatchdogTimeout: 500 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	dropped := dropFirstUNM(tb, 5, 4)
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0) // the invariant must hold during recovery too
	if !*dropped {
		t.Fatal("drop not exercised")
	}
	if !u.Done() {
		t.Fatal("update did not recover from the lost UNM")
	}
	if u.Retriggers == 0 {
		t.Error("completion without any re-trigger — watchdog never fired?")
	}
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v, want %v", got, newP)
	}
}

func TestRecoveryDualLayer(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 22, &core.Protocol{WatchdogTimeout: 500 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	dropped := dropFirstUNM(tb, 6, 5)
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if !*dropped {
		t.Fatal("drop not exercised")
	}
	if !u.Done() {
		t.Fatal("dual-layer update did not recover")
	}
}

func TestRecoveryBounded(t *testing.T) {
	// With every UNM into v4 dropped forever, recovery retries its
	// bounded number of times and then gives up; consistency holds.
	g := topo.Synthetic()
	tb := newTestbed(g, 23, &core.Protocol{WatchdogTimeout: 200 * time.Millisecond})
	tb.ctl.MaxRetriggers = 2
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	tb.net.Drop = func(from, to topo.NodeID, raw []byte) bool {
		if to != 4 {
			return false
		}
		m, err := packet.Decode(raw)
		if err != nil {
			return false
		}
		_, isUNM := m.(*packet.UNM)
		return isUNM
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	stepAndCheck(t, tb, f, 0)
	if u.Done() {
		t.Fatal("update completed despite a permanently broken link")
	}
	if u.Retriggers != 2 {
		t.Errorf("retriggers = %d, want exactly MaxRetriggers", u.Retriggers)
	}
}

func TestWatchdogQuietOnSuccess(t *testing.T) {
	// A healthy update must not produce stalled reports.
	g := topo.Synthetic()
	tb := newTestbed(g, 24, &core.Protocol{WatchdogTimeout: 300 * time.Millisecond})
	tb.ctl.MaxRetriggers = 3
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	u, err := tb.ctl.TriggerUpdate(f, newP, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !u.Done() {
		t.Fatal("update did not complete")
	}
	if u.Retriggers != 0 {
		t.Errorf("healthy update re-triggered %d times", u.Retriggers)
	}
}
