package core

import (
	"testing"
	"testing/quick"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
)

// stateWith builds a FlowState resembling a node that applied version v at
// distance d (old registers oldV/oldD) and holds the given UIM.
func stateWith(v uint32, d uint16, oldV uint32, oldD uint16, uim *packet.UIM) *dataplane.FlowState {
	st := &dataplane.FlowState{
		NewVersion:  v,
		NewDistance: d,
		OldVersion:  oldV,
		OldDistance: oldD,
		HasRule:     true,
		UIM:         uim,
	}
	return st
}

func uimSL(version uint32, dn uint16) *packet.UIM {
	return &packet.UIM{Version: version, NewDistance: dn, UpdateType: packet.UpdateSingle}
}

func uimDL(version uint32, dn uint16) *packet.UIM {
	return &packet.UIM{Version: version, NewDistance: dn, UpdateType: packet.UpdateDual}
}

// --- Alg. 1 (single layer) -------------------------------------------------

func TestSLConsistent(t *testing.T) {
	// Fig. 6a: node with Dn(UIM)=2 receives UNM with Dn=1, same version.
	st := stateWith(1, 3, 0, 3, uimSL(2, 2))
	v := VerifySL(st, &packet.UNM{Vn: 2, Dn: 1})
	if v.Decision != DecisionApply {
		t.Fatalf("decision = %v, want apply", v.Decision)
	}
	if v.OldVer != 1 || v.Inherited != 3 {
		t.Errorf("apply archives old config: oldVer=%d inherited=%d", v.OldVer, v.Inherited)
	}
	if v.Counter != 0 {
		t.Errorf("SL counter = %d, want 0", v.Counter)
	}
}

func TestSLDistanceError(t *testing.T) {
	// Fig. 6b: parent claims the same distance -> potential loop.
	st := stateWith(1, 3, 0, 3, uimSL(2, 2))
	v := VerifySL(st, &packet.UNM{Vn: 2, Dn: 2})
	if v.Decision != DecisionReject || v.Reason != packet.ReasonDistance {
		t.Fatalf("got %v/%v, want reject/distance", v.Decision, v.Reason)
	}
	// Parent further away than myself is equally inconsistent.
	v = VerifySL(st, &packet.UNM{Vn: 2, Dn: 3})
	if v.Decision != DecisionReject {
		t.Fatalf("got %v, want reject", v.Decision)
	}
}

func TestSLVersionOutdated(t *testing.T) {
	// Fig. 6c: notification older than the stored indication.
	st := stateWith(1, 3, 0, 3, uimSL(3, 2))
	v := VerifySL(st, &packet.UNM{Vn: 2, Dn: 1})
	if v.Decision != DecisionReject || v.Reason != packet.ReasonOutdated {
		t.Fatalf("got %v/%v, want reject/outdated", v.Decision, v.Reason)
	}
}

func TestSLWaitForUIM(t *testing.T) {
	// Notification for a future version: wait (Alg. 1 line 10).
	st := stateWith(1, 3, 0, 3, uimSL(2, 2))
	v := VerifySL(st, &packet.UNM{Vn: 5, Dn: 1})
	if v.Decision != DecisionWaitUIM {
		t.Fatalf("got %v, want wait-uim", v.Decision)
	}
	// No UIM at all: also wait.
	st.UIM = nil
	v = VerifySL(st, &packet.UNM{Vn: 2, Dn: 1})
	if v.Decision != DecisionWaitUIM {
		t.Fatalf("no UIM: got %v, want wait-uim", v.Decision)
	}
}

func TestSLDuplicate(t *testing.T) {
	// Node already runs the notified version.
	st := stateWith(2, 2, 1, 3, uimSL(2, 2))
	v := VerifySL(st, &packet.UNM{Vn: 2, Dn: 1})
	if v.Decision != DecisionDuplicate {
		t.Fatalf("got %v, want duplicate", v.Decision)
	}
}

func TestSLFastForwardSkipsVersions(t *testing.T) {
	// §4.2: a node at version 1 can jump directly to version 5 — only
	// equality with the freshest UIM matters, not contiguity.
	st := stateWith(1, 3, 0, 3, uimSL(5, 2))
	v := VerifySL(st, &packet.UNM{Vn: 5, Dn: 1})
	if v.Decision != DecisionApply {
		t.Fatalf("fast-forward: got %v, want apply", v.Decision)
	}
	if v.OldVer != 1 {
		t.Errorf("fast-forward archives applied version 1, got %d", v.OldVer)
	}
}

func TestSLFreshNode(t *testing.T) {
	st := &dataplane.FlowState{
		NewDistance: dataplane.FreshDistance,
		OldDistance: dataplane.FreshDistance,
		UIM:         uimSL(1, 4),
	}
	v := VerifySL(st, &packet.UNM{Vn: 1, Dn: 3})
	if v.Decision != DecisionApply {
		t.Fatalf("fresh node install: got %v, want apply", v.Decision)
	}
	if v.Inherited != dataplane.FreshDistance {
		t.Errorf("fresh node inherits FreshDistance, got %d", v.Inherited)
	}
}

func TestSLDistanceWrapGuard(t *testing.T) {
	// A parent claiming distance 0xffff must not wrap to matching 0.
	st := &dataplane.FlowState{UIM: uimSL(1, 0)}
	v := VerifySL(st, &packet.UNM{Vn: 1, Dn: 0xffff})
	if v.Decision == DecisionApply {
		t.Fatal("distance 0xffff+1 wrapped around to 0")
	}
}

// --- Alg. 2 (dual layer) ---------------------------------------------------

func TestDLInteriorFreshInheritsDo(t *testing.T) {
	// Fresh node inside a segment: applies, inherits parent's Do,
	// increments the counter (Alg. 2 lines 9-16).
	st := &dataplane.FlowState{
		NewDistance: dataplane.FreshDistance,
		OldDistance: dataplane.FreshDistance,
		UIM:         uimDL(2, 6),
	}
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 5, Do: 1, Counter: 2, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionApply {
		t.Fatalf("got %v, want apply", v.Decision)
	}
	if v.Inherited != 1 || v.Counter != 3 || v.OldVer != 1 {
		t.Errorf("inherit: do=%d c=%d oldV=%d, want 1,3,1", v.Inherited, v.Counter, v.OldVer)
	}
}

func TestDLInteriorLaggingVersion(t *testing.T) {
	// Node two versions behind counts as inside-segment.
	st := stateWith(1, 4, 0, 4, uimDL(4, 6))
	v := VerifyDL(st, &packet.UNM{Vn: 4, Vo: 3, Dn: 5, Do: 0, Counter: 0, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionApply {
		t.Fatalf("got %v, want apply", v.Decision)
	}
	if v.OldVer != 3 {
		t.Errorf("oldVer = %d, want Vn-1 = 3", v.OldVer)
	}
}

func TestDLInteriorDistanceMismatch(t *testing.T) {
	st := &dataplane.FlowState{UIM: uimDL(2, 6)}
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 3, Do: 1, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionReject || v.Reason != packet.ReasonDistance {
		t.Fatalf("got %v/%v, want reject/distance", v.Decision, v.Reason)
	}
}

func TestDLGatewayAcceptsSmallerSegmentID(t *testing.T) {
	// The §3.2 intuition: v2 (current distance 1) accepts proposal with
	// segment ID 0 (0 < 1).
	st := stateWith(1, 1, 0, 1, uimDL(2, 5))
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 4, Do: 0, Counter: 4, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionApply {
		t.Fatalf("got %v, want apply", v.Decision)
	}
	if v.Inherited != 0 || v.OldVer != 1 || v.Counter != 5 {
		t.Errorf("gateway apply: do=%d oldV=%d c=%d", v.Inherited, v.OldVer, v.Counter)
	}
}

func TestDLGatewayRejectsLargerSegmentID(t *testing.T) {
	// v2 (current distance 1) rejects proposal with segment ID 2 (2 > 1):
	// the backward-segment dependency is unresolved.
	st := stateWith(1, 1, 0, 1, uimDL(2, 5))
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 4, Do: 2, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionWaitDependency {
		t.Fatalf("got %v, want wait-dependency", v.Decision)
	}
	// Equal segment ID is equally unsafe.
	v = VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 4, Do: 1, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionWaitDependency {
		t.Fatalf("equal Do: got %v, want wait-dependency", v.Decision)
	}
}

func TestDLGatewayRequiresPreviousSingleLayer(t *testing.T) {
	st := stateWith(1, 1, 0, 1, uimDL(2, 5))
	st.LastType = packet.UpdateDual
	m := &packet.UNM{Vn: 2, Vo: 1, Dn: 4, Do: 0, UpdateType: packet.UpdateDual}
	if v := VerifyDL(st, m, false); v.Decision != DecisionWaitDependency {
		t.Fatalf("chained DL without extension: got %v, want wait-dependency", v.Decision)
	}
	// The Appendix-C extension lifts the restriction.
	if v := VerifyDL(st, m, true); v.Decision != DecisionApply {
		t.Fatalf("chained DL with extension: got %v, want apply", v.Decision)
	}
}

func TestDLBranch3InheritsSmallerDo(t *testing.T) {
	// Already-updated node passes a strictly smaller Do upstream.
	uim := uimDL(2, 6)
	st := stateWith(2, 6, 1, 2, uim)
	st.Counter = 3
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 5, Do: 0, Counter: 5, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionInherit {
		t.Fatalf("got %v, want inherit", v.Decision)
	}
	if v.Inherited != 0 || v.Counter != 6 {
		t.Errorf("inherit: do=%d c=%d, want 0,6", v.Inherited, v.Counter)
	}
}

func TestDLBranch3CounterBreaksTies(t *testing.T) {
	uim := uimDL(2, 6)
	st := stateWith(2, 6, 1, 2, uim)
	st.Counter = 9
	// Equal Do, smaller counter: inherit (symmetry breaking).
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 5, Do: 2, Counter: 4, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionInherit {
		t.Fatalf("got %v, want inherit", v.Decision)
	}
	// Equal Do, equal-or-larger counter: nothing new.
	v = VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 5, Do: 2, Counter: 9, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionDuplicate {
		t.Fatalf("got %v, want duplicate", v.Decision)
	}
	// Larger Do: nothing new.
	v = VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 5, Do: 3, Counter: 0, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionDuplicate {
		t.Fatalf("got %v, want duplicate", v.Decision)
	}
}

func TestDLWaitAndOutdated(t *testing.T) {
	st := stateWith(1, 1, 0, 1, uimDL(2, 5))
	if v := VerifyDL(st, &packet.UNM{Vn: 7, Vo: 6, Dn: 4, UpdateType: packet.UpdateDual}, false); v.Decision != DecisionWaitUIM {
		t.Errorf("future version: got %v, want wait-uim", v.Decision)
	}
	if v := VerifyDL(st, &packet.UNM{Vn: 1, Vo: 0, Dn: 4, UpdateType: packet.UpdateDual}, false); v.Decision != DecisionReject {
		t.Errorf("outdated: got %v, want reject", v.Decision)
	}
}

func TestDLGatewayDistanceMismatchRejected(t *testing.T) {
	st := stateWith(1, 1, 0, 1, uimDL(2, 5))
	v := VerifyDL(st, &packet.UNM{Vn: 2, Vo: 1, Dn: 2, Do: 0, UpdateType: packet.UpdateDual}, false)
	if v.Decision != DecisionReject || v.Reason != packet.ReasonDistance {
		t.Fatalf("got %v/%v, want reject/distance", v.Decision, v.Reason)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		DecisionApply:          "apply",
		DecisionInherit:        "inherit",
		DecisionWaitUIM:        "wait-uim",
		DecisionWaitDependency: "wait-dependency",
		DecisionDuplicate:      "duplicate",
		DecisionReject:         "reject",
		Decision(42):           "unknown",
	} {
		if d.String() != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestVerifyNeverAcceptsDistanceViolations(t *testing.T) {
	// Property over random register/notification combinations: an Apply
	// (or Inherit) verdict implies the parent relation Dn(UIM)=Dn(UNM)+1
	// holds — the invariant behind Theorem 1's loop freedom — and a
	// dual-layer gateway apply additionally implies the inherited segment
	// ID strictly shrinks.
	f := func(hasRule bool, appliedV uint32, d, od uint16, uimV uint32, uimD uint16,
		unmV uint32, unmD, unmDo, c uint16, lastDual, chained bool) bool {

		st := &dataplane.FlowState{
			HasRule:     hasRule,
			NewVersion:  appliedV,
			NewDistance: d,
			OldVersion:  appliedV - 1,
			OldDistance: od,
		}
		if lastDual {
			st.LastType = packet.UpdateDual
		}
		if !hasRule {
			st.NewDistance = dataplane.FreshDistance
		}
		st.UIM = &packet.UIM{Version: uimV, NewDistance: uimD, UpdateType: packet.UpdateDual}
		m := &packet.UNM{Vn: unmV, Vo: unmV - 1, Dn: unmD, Do: unmDo, Counter: c, UpdateType: packet.UpdateDual}

		for _, v := range []Verdict{VerifySL(st, m), VerifyDL(st, m, chained)} {
			switch v.Decision {
			case DecisionApply, DecisionInherit:
				if uint32(uimD) != uint32(unmD)+1 {
					return false // distance violation accepted
				}
				if unmV != uimV {
					return false // version mismatch accepted
				}
			}
		}
		// Gateway-specific: an Apply at an exactly-one-behind node with a
		// rule must have strictly shrunk the segment ID.
		if hasRule && appliedV+1 == unmV {
			v := VerifyDL(st, m, chained)
			if v.Decision == DecisionApply && !(st.CurrentDistance() > m.Do) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
