package core_test

import (
	"testing"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// testbed wires a full system on the given topology.
type testbed struct {
	eng  *sim.Engine
	topo *topo.Topology
	net  *dataplane.Network
	ctl  *controlplane.Controller
}

func newTestbed(t *topo.Topology, seed int64, proto *core.Protocol) *testbed {
	eng := sim.New(seed)
	eng.MaxEvents = 5_000_000
	net := dataplane.NewNetwork(eng, t)
	net.SetHandler(proto)
	node := controlplane.UseCentroidControl(net)
	ctl := controlplane.NewController(net, node)
	return &testbed{eng: eng, topo: t, net: net, ctl: ctl}
}

func forceType(ut packet.UpdateType) *packet.UpdateType { return &ut }

// assertNoLoopsEver installs a tap asserting the current forwarding state
// never contains a loop reachable from the flow ingress.
func assertLoopFree(t *testing.T, tb *testbed, f packet.FlowID, ingress topo.NodeID) {
	t.Helper()
	visited, _ := tb.net.TracePath(f, ingress, tb.topo.NumNodes()+2)
	seen := map[topo.NodeID]bool{}
	for _, n := range visited {
		if seen[n] {
			t.Fatalf("forwarding loop through node %d: %v", n, visited)
		}
		seen[n] = true
	}
}

func TestSLUpdateSynthetic(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 1, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, err := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()

	if !u.Done() {
		t.Fatal("SL update did not complete")
	}
	if len(u.Alarms) != 0 {
		t.Fatalf("unexpected alarms: %v", u.Alarms)
	}
	// The final forwarding state must be the new path.
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v (delivered=%v), want %v", got, delivered, newP)
	}
	for i := range newP {
		if got[i] != newP[i] {
			t.Fatalf("final path %v, want %v", got, newP)
		}
	}
	// SL is sequential: total time at least 7 hops of 20 ms UNM travel.
	elapsed := u.Completed - u.Sent
	if elapsed < 7*20*time.Millisecond {
		t.Errorf("SL update finished implausibly fast: %v", elapsed)
	}
}

func TestDLUpdateSynthetic(t *testing.T) {
	g := topo.Synthetic()
	tb := newTestbed(g, 1, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, err := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u, err := tb.ctl.TriggerUpdate(f, newP, forceType(packet.UpdateDual))
	if err != nil {
		t.Fatal(err)
	}
	if u.Plan.Type != packet.UpdateDual {
		t.Fatal("plan did not force dual layer")
	}
	// The Fig-1 segmentation: gateways v0,v2,v4,v7; middle segment backward.
	wantGW := []topo.NodeID{0, 2, 4, 7}
	if len(u.Plan.Seg.Gateways) != len(wantGW) {
		t.Fatalf("gateways = %v, want %v", u.Plan.Seg.Gateways, wantGW)
	}
	for i, g := range wantGW {
		if u.Plan.Seg.Gateways[i] != g {
			t.Fatalf("gateways = %v, want %v", u.Plan.Seg.Gateways, wantGW)
		}
	}
	segs := u.Plan.Seg.Segments
	if len(segs) != 3 || !segs[0].Forward || segs[1].Forward || !segs[2].Forward {
		t.Fatalf("segment classification wrong: %+v", segs)
	}

	tb.eng.Run()
	if !u.Done() {
		t.Fatal("DL update did not complete")
	}
	if len(u.Alarms) != 0 {
		t.Fatalf("unexpected alarms: %v", u.Alarms)
	}
	got, delivered := tb.net.TracePath(f, 0, 20)
	if !delivered || len(got) != len(newP) {
		t.Fatalf("final path %v (delivered=%v), want %v", got, delivered, newP)
	}
	assertLoopFree(t, tb, f, 0)

	// After convergence all nodes on the new path share segment ID 0
	// (iterative inheritance reached everyone).
	for _, n := range newP {
		st, ok := tb.net.Switch(n).PeekState(f)
		if !ok {
			t.Fatalf("node %d has no state", n)
		}
		if st.OldDistance != 0 {
			t.Errorf("node %d old_distance = %d, want 0 (inherited)", n, st.OldDistance)
		}
	}
}

func TestDLFasterThanSLOnSegmentedUpdate(t *testing.T) {
	run := func(ut packet.UpdateType) time.Duration {
		g := topo.Synthetic()
		tb := newTestbed(g, 7, &core.Protocol{})
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		u, err := tb.ctl.TriggerUpdate(f, newP, forceType(ut))
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		if !u.Done() {
			t.Fatalf("%v update did not complete", ut)
		}
		return u.Completed - u.Sent
	}
	sl := run(packet.UpdateSingle)
	dl := run(packet.UpdateDual)
	if dl >= sl {
		t.Errorf("DL (%v) not faster than SL (%v) on the segmented Fig-1 update", dl, sl)
	}
}

func TestAutoSelectionPolicy(t *testing.T) {
	// Fig-1 scenario has a backward segment: must pick dual layer.
	g := topo.Synthetic()
	tb := newTestbed(g, 1, &core.Protocol{})
	oldP, newP := topo.SyntheticPaths()
	f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
	u, err := tb.ctl.TriggerUpdate(f, newP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Plan.Type != packet.UpdateDual {
		t.Errorf("auto selection picked %v, want DL (backward segment present)", u.Plan.Type)
	}
	tb.eng.Run()
	if !u.Done() {
		t.Fatal("auto update did not complete")
	}

	// A small forward-only detour must pick single layer.
	tb2 := newTestbed(topo.Synthetic(), 1, &core.Protocol{})
	f2, _ := tb2.ctl.RegisterFlow(0, 7, []topo.NodeID{0, 4, 2, 7}, 1000)
	// Detour the middle: 0,4,5,6,7 — v4 switches to v5; 4,5,6 new rules.
	u2, err := tb2.ctl.TriggerUpdate(f2, []topo.NodeID{0, 4, 5, 6, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Plan.Type != packet.UpdateSingle {
		t.Errorf("auto selection picked %v, want SL (few forward-only updates)", u2.Plan.Type)
	}
	tb2.eng.Run()
	if !u2.Done() {
		t.Fatal("SL auto update did not complete")
	}
}

func TestUpdateWithInstallDelays(t *testing.T) {
	// Per-node rule-install delays (the Dionysus-motivated straggler
	// model of §9.1) must not break correctness.
	for _, ut := range []packet.UpdateType{packet.UpdateSingle, packet.UpdateDual} {
		g := topo.Synthetic()
		tb := newTestbed(g, 3, &core.Protocol{})
		rng := tb.eng.Rand()
		tb.net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(100*time.Millisecond))
		})
		oldP, newP := topo.SyntheticPaths()
		f, _ := tb.ctl.RegisterFlow(0, 7, oldP, 1000)
		u, err := tb.ctl.TriggerUpdate(f, newP, forceType(ut))
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		if !u.Done() {
			t.Fatalf("%v update with delays did not complete", ut)
		}
		got, delivered := tb.net.TracePath(f, 0, 20)
		if !delivered || len(got) != len(newP) {
			t.Fatalf("%v: final path %v", ut, got)
		}
	}
}

func TestUpdateOnWANTopologies(t *testing.T) {
	for _, g := range []*topo.Topology{topo.B4(), topo.Internet2()} {
		tb := newTestbed(g, 11, &core.Protocol{})
		// Long flow: between the two latency-farthest nodes.
		src, dst := farthestPair(g)
		oldP := g.ShortestPath(src, dst, topo.ByLatency)
		ks := g.KShortestPaths(src, dst, 2, topo.ByLatency)
		if len(ks) < 2 {
			t.Fatalf("%s: no 2nd shortest path", g.Name)
		}
		newP := ks[1]
		f, err := tb.ctl.RegisterFlow(src, dst, oldP, 1000)
		if err != nil {
			t.Fatal(err)
		}
		u, err := tb.ctl.TriggerUpdate(f, newP, nil)
		if err != nil {
			t.Fatal(err)
		}
		tb.eng.Run()
		if !u.Done() {
			t.Fatalf("%s: update did not complete (pick=%v)", g.Name, u.Plan.Type)
		}
		got, delivered := tb.net.TracePath(f, src, g.NumNodes()+1)
		if !delivered {
			t.Fatalf("%s: traffic not delivered after update: %v", g.Name, got)
		}
		assertLoopFree(t, tb, f, src)
	}
}

func farthestPair(g *topo.Topology) (topo.NodeID, topo.NodeID) {
	var bs, bd topo.NodeID
	best := -1.0
	for _, s := range g.Nodes() {
		dist := g.Distances(s, topo.ByLatency)
		for d, v := range dist {
			if v > best {
				best = v
				bs, bd = s, topo.NodeID(d)
			}
		}
	}
	return bs, bd
}
