package core_test

import (
	"testing"
	"time"

	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// starTopo builds the congestion scenario fixture: sources S1..S4 attach
// to a hub X with parallel capacity-10 links to A,B,C,D which all reach T.
//
//	S* - X - {A,B,C,D} - T
func starTopo() *topo.Topology {
	t := topo.New("star")
	names := []string{"S1", "S2", "S3", "S4", "X", "A", "B", "C", "D", "T"}
	for _, n := range names {
		t.AddNode(n, 0, 0)
	}
	id := func(n string) topo.NodeID {
		i, _ := t.NodeByName(n)
		return i
	}
	lat := time.Millisecond
	for _, s := range []string{"S1", "S2", "S3", "S4"} {
		t.AddLink(id(s), id("X"), lat, 1000) // source links: ample
	}
	for _, m := range []string{"A", "B", "C", "D"} {
		t.AddLink(id("X"), id(m), lat, 10) // contested middle links: 10 Mbps
		t.AddLink(id(m), id("T"), lat, 1000)
	}
	return t
}

func nodeID(t *topo.Topology, name string) topo.NodeID {
	id, ok := t.NodeByName(name)
	if !ok {
		panic("unknown node " + name)
	}
	return id
}

// checkCapacityNeverExceeded steps the simulation, asserting reservations
// never exceed link capacity on any switch port.
func checkCapacityNeverExceeded(t *testing.T, tb *testbed) {
	t.Helper()
	for tb.eng.Step() {
		for _, sw := range tb.net.Switches() {
			for p := topo.PortID(0); int(p) < tb.topo.Degree(sw.ID); p++ {
				if sw.ReservedK(p) > sw.CapacityK(p) {
					t.Fatalf("t=%v: node %d port %d over capacity: %d > %d kbps",
						tb.eng.Now(), sw.ID, p, sw.ReservedK(p), sw.CapacityK(p))
				}
			}
		}
		if tb.eng.Steps() > 2_000_000 {
			t.Fatal("simulation runaway")
		}
	}
}

func TestCongestionBlockedMoveWaitsForDependency(t *testing.T) {
	g := starTopo()
	tb := newTestbed(g, 1, &core.Protocol{Congestion: true})
	X, A, B, C, T := nodeID(g, "X"), nodeID(g, "A"), nodeID(g, "B"), nodeID(g, "C"), nodeID(g, "T")
	S1, S2 := nodeID(g, "S1"), nodeID(g, "S2")

	// f1: S1->X->A->T (6 Mbps), wants X->B. f2: S2->X->B->T (6 Mbps),
	// wants X->C. f1's move is blocked until f2 vacates X-B.
	f1, err := tb.ctl.RegisterFlow(S1, T, []topo.NodeID{S1, X, A, T}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tb.ctl.RegisterFlow(S2, T, []topo.NodeID{S2, X, B, T}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := tb.ctl.TriggerUpdate(f1, []topo.NodeID{S1, X, B, T}, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	// f2's update arrives noticeably later, so f1 genuinely blocks first.
	var u2 *upStatus
	tb.eng.Schedule(50*time.Millisecond, func() {
		u, err := tb.ctl.TriggerUpdate(f2, []topo.NodeID{S2, X, C, T}, forceType(packet.UpdateSingle))
		if err != nil {
			t.Error(err)
			return
		}
		u2 = &upStatus{u.Done, func() time.Duration { return u.Completed }}
	})
	checkCapacityNeverExceeded(t, tb)

	if !u1.Done() {
		t.Fatal("f1's blocked move never completed")
	}
	if u2 == nil || !u2.done() {
		t.Fatal("f2's move did not complete")
	}
	if u1.Completed <= u2.completed() {
		t.Errorf("f1 (%v) should complete after f2 (%v) freed the link",
			u1.Completed, u2.completed())
	}
	// Final reservations at X: f1 on X-B, f2 on X-C, X-A empty.
	sw := tb.net.Switch(X)
	if got := sw.ReservedK(g.PortTo(X, B)); got != 6000 {
		t.Errorf("X-B reserved %d, want 6000", got)
	}
	if got := sw.ReservedK(g.PortTo(X, C)); got != 6000 {
		t.Errorf("X-C reserved %d, want 6000", got)
	}
	if got := sw.ReservedK(g.PortTo(X, A)); got != 0 {
		t.Errorf("X-A reserved %d, want 0", got)
	}
}

type upStatus struct {
	done      func() bool
	completed func() time.Duration
}

func TestCongestionPriorityGate(t *testing.T) {
	// §7.4: a low-priority flow may not take a link a high-priority flow
	// is waiting for, even when capacity suffices.
	g := starTopo()
	tb := newTestbed(g, 2, &core.Protocol{Congestion: true})
	X, A, B, C, D, T := nodeID(g, "X"), nodeID(g, "A"), nodeID(g, "B"), nodeID(g, "C"), nodeID(g, "D"), nodeID(g, "T")
	S1, S2, S3, S4 := nodeID(g, "S1"), nodeID(g, "S2"), nodeID(g, "S3"), nodeID(g, "S4")

	// f2 occupies X-B (6), wants X-C. f4 occupies X-C (6), wants X-D.
	// f1 (6) wants X-B -> blocked -> raises f2 to high priority.
	// f2 blocked on X-C -> raises f4; f2 is high and waits on X-C.
	// f3 (1 Mbps, low) wants X-C too: capacity would suffice, but it
	// must yield to the waiting high-priority f2.
	f2, _ := tb.ctl.RegisterFlow(S2, T, []topo.NodeID{S2, X, B, T}, 6000)
	f4, _ := tb.ctl.RegisterFlow(S4, T, []topo.NodeID{S4, X, C, T}, 6000)
	f1, _ := tb.ctl.RegisterFlow(S1, T, []topo.NodeID{S1, X, A, T}, 6000)
	f3, _ := tb.ctl.RegisterFlow(S3, T, []topo.NodeID{S3, X, A, T}, 1000)

	var applyOrder []packet.FlowID
	prevOnApply := tb.net.OnApply
	tb.net.OnApply = func(n topo.NodeID, f packet.FlowID, v uint32) {
		if n == X && v == 2 {
			applyOrder = append(applyOrder, f)
		}
		prevOnApply(n, f, v)
	}

	// Updates in an order that creates the chain before f3 tries.
	if _, err := tb.ctl.TriggerUpdate(f1, []topo.NodeID{S1, X, B, T}, forceType(packet.UpdateSingle)); err != nil {
		t.Fatal(err)
	}
	tb.eng.Schedule(20*time.Millisecond, func() {
		if _, err := tb.ctl.TriggerUpdate(f2, []topo.NodeID{S2, X, C, T}, forceType(packet.UpdateSingle)); err != nil {
			t.Error(err)
		}
	})
	tb.eng.Schedule(40*time.Millisecond, func() {
		if _, err := tb.ctl.TriggerUpdate(f3, []topo.NodeID{S3, X, C, T}, forceType(packet.UpdateSingle)); err != nil {
			t.Error(err)
		}
	})
	tb.eng.Schedule(200*time.Millisecond, func() {
		if _, err := tb.ctl.TriggerUpdate(f4, []topo.NodeID{S4, X, D, T}, forceType(packet.UpdateSingle)); err != nil {
			t.Error(err)
		}
	})
	checkCapacityNeverExceeded(t, tb)

	// All four eventually complete.
	for _, f := range []packet.FlowID{f1, f2, f3, f4} {
		u, ok := tb.ctl.Status(f, 2)
		if !ok || !u.Done() {
			t.Fatalf("flow %d update did not complete", f)
		}
	}
	// f3 (low) must commit its X move after f2 (high).
	pos := map[packet.FlowID]int{}
	for i, f := range applyOrder {
		pos[f] = i
	}
	if pos[f3] < pos[f2] {
		t.Errorf("low-priority f3 overtook waiting high-priority f2: order %v", applyOrder)
	}
}

func TestCongestionFlowSizeMismatchAlarms(t *testing.T) {
	g := starTopo()
	tb := newTestbed(g, 3, &core.Protocol{Congestion: true})
	X, A, B, T := nodeID(g, "X"), nodeID(g, "A"), nodeID(g, "B"), nodeID(g, "T")
	S1 := nodeID(g, "S1")
	f1, _ := tb.ctl.RegisterFlow(S1, T, []topo.NodeID{S1, X, A, T}, 6000)

	rec, _ := tb.ctl.Flow(f1)
	rec.SizeK = 9000 // the controller's view drifted: size bound changed
	var alarms int
	tb.ctl.OnAlarm = func(u packet.UFM) {
		if u.Reason == packet.ReasonFlowSize {
			alarms++
		}
	}
	u, err := tb.ctl.TriggerUpdate(f1, []topo.NodeID{S1, X, B, T}, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if alarms == 0 {
		t.Error("flow-size mismatch raised no alarm")
	}
	if u.Done() {
		t.Error("size-mismatched update reported complete")
	}
}

func TestCongestionSamePortMoveNeedsNoHeadroom(t *testing.T) {
	// A node whose new next hop equals its old one must not be blocked
	// even on a saturated link (§A.2: capacity already allocated).
	g := starTopo()
	tb := newTestbed(g, 4, &core.Protocol{Congestion: true})
	X, A, B, T := nodeID(g, "X"), nodeID(g, "A"), nodeID(g, "B"), nodeID(g, "T")
	S1 := nodeID(g, "S1")
	// Flow saturates X-A completely (10 Mbps of 10).
	f1, _ := tb.ctl.RegisterFlow(S1, T, []topo.NodeID{S1, X, A, T}, 10000)
	// New path keeps X->A but changes the tail: A->... there is only
	// A-T, so reroute the head instead: keep X-A, which means only
	// version relabeling along the same links.
	u, err := tb.ctl.TriggerUpdate(f1, []topo.NodeID{S1, X, A, T}, forceType(packet.UpdateSingle))
	if err != nil {
		t.Fatal(err)
	}
	tb.eng.Run()
	if !u.Done() {
		t.Fatal("same-path relabel update blocked by its own reservation")
	}
	sw := tb.net.Switch(X)
	if got := sw.ReservedK(g.PortTo(X, A)); got != 10000 {
		t.Errorf("X-A reserved %d, want 10000 (not double-booked)", got)
	}
	_ = B
	_ = dataplane.PortLocal
}
