// Package core implements the paper's primary contribution: the locally
// verifiable consistent-update protocol P4Update. It contains
//
//   - the pure verification procedures of Alg. 1 (single-layer) and
//     Alg. 2 (dual-layer, with old-distance inheritance and the hop
//     counter for symmetry breaking),
//   - the coordination rules generating and relaying Update Notification
//     Messages (§7.2 and Appendix B), and
//   - the congestion-freedom extension with the dynamic, data-plane-local
//     inter-flow priority scheduler (§7.4, Appendix A.2).
//
// The protocol plugs into the switch substrate through
// dataplane.Handler; verification itself is side-effect free and unit
// tested branch by branch.
package core

import (
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/trace"
)

// Decision is the outcome class of a verification step.
type Decision int

// Decisions.
const (
	// DecisionApply: verification succeeded (VS=1); stage and commit the
	// new forwarding rule.
	DecisionApply Decision = iota
	// DecisionInherit: Alg. 2 branch 3 — the node is already on this
	// version but inherits a smaller old distance (or equal distance
	// with smaller counter) and passes it upstream.
	DecisionInherit
	// DecisionWaitUIM: the notification refers to a version for which no
	// UIM has arrived yet; park it (Alg. 1 line 10 / Alg. 2 line 5).
	DecisionWaitUIM
	// DecisionWaitDependency: the dual-layer gateway gate Dn(v) > Do(UNM)
	// failed — the backward-segment dependency is unresolved; the node
	// drops the proposal and awaits the re-emission that follows the
	// downstream gateway's own update.
	DecisionWaitDependency
	// DecisionDuplicate: the notification carries no new information.
	DecisionDuplicate
	// DecisionReject: the update is inconsistent; drop the UNM and raise
	// an alarm to the controller.
	DecisionReject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionApply:
		return "apply"
	case DecisionInherit:
		return "inherit"
	case DecisionWaitUIM:
		return "wait-uim"
	case DecisionWaitDependency:
		return "wait-dependency"
	case DecisionDuplicate:
		return "duplicate"
	case DecisionReject:
		return "reject"
	default:
		return "unknown"
	}
}

// Verdict is the full outcome of a verification step. For DecisionApply it
// carries the register values the commit must write; for DecisionInherit
// the inherited old distance and counter; for DecisionReject the alarm
// reason.
type Verdict struct {
	Decision  Decision
	Reason    packet.AlarmReason
	OldVer    uint32 // old_version to record on apply
	Inherited uint16 // old_distance (segment ID) to record
	Counter   uint16 // counter to record
	// Code labels the exact branch that produced the verdict for the
	// flight recorder's decision log; it refines Decision (e.g. the two
	// inherit arms — smaller distance vs. hop-counter symmetry break —
	// share DecisionInherit but carry distinct codes).
	Code trace.Code
}

// appliedVersion returns the node's applied configuration version (0 for
// a fresh node without a rule).
func appliedVersion(st *dataplane.FlowState) uint32 {
	if !st.HasRule {
		return 0
	}
	return st.NewVersion
}

// distanceMatches checks Dn(UIM) = Dn(UNM) + 1 in wide arithmetic so the
// fresh-distance sentinel cannot wrap around.
func distanceMatches(uimDn, unmDn uint16) bool {
	return uint32(uimDn) == uint32(unmDn)+1
}

// VerifySL is Alg. 1: single-layer verification at a node with register
// state st for the notification m. st.UIM is the highest indication
// received (nil if none).
func VerifySL(st *dataplane.FlowState, m *packet.UNM) Verdict {
	uim := st.UIM
	// Line 9-10: the notification is ahead of our indication; wait.
	if uim == nil || m.Vn > uim.Version {
		return Verdict{Decision: DecisionWaitUIM, Code: trace.CodeWaitUIM}
	}
	// Line 11-12: the notification is outdated; drop and inform.
	if m.Vn < uim.Version {
		return Verdict{Decision: DecisionReject, Reason: packet.ReasonOutdated, Code: trace.CodeRejectOutdated}
	}
	// Versions match (line 4). Discard echoes for configs we already run.
	if appliedVersion(st) >= m.Vn {
		return Verdict{Decision: DecisionDuplicate, Code: trace.CodeDuplicate}
	}
	// Line 5: the parent's new distance must be exactly one smaller.
	if !distanceMatches(uim.NewDistance, m.Dn) {
		return Verdict{Decision: DecisionReject, Reason: packet.ReasonDistance, Code: trace.CodeRejectDistance}
	}
	// Line 6: verification successful. A single-layer update archives the
	// previous configuration into the old_* registers.
	return Verdict{
		Decision:  DecisionApply,
		OldVer:    appliedVersion(st),
		Inherited: st.CurrentDistance(),
		Counter:   0,
		Code:      trace.CodeApplySL,
	}
}

// VerifyDL is Alg. 2: dual-layer verification. allowChainedDL enables the
// Appendix-C extension permitting dual-layer updates to follow dual-layer
// updates (the base algorithm requires the previous update at a gateway to
// be single-layer).
func VerifyDL(st *dataplane.FlowState, m *packet.UNM, allowChainedDL bool) Verdict {
	uim := st.UIM
	// Lines 4-5: wait until the matching UIM arrives.
	if uim == nil || m.Vn > uim.Version {
		return Verdict{Decision: DecisionWaitUIM, Code: trace.CodeWaitUIM}
	}
	// Lines 6-7: outdated update; drop and inform.
	if m.Vn < uim.Version {
		return Verdict{Decision: DecisionReject, Reason: packet.ReasonOutdated, Code: trace.CodeRejectOutdated}
	}
	applied := appliedVersion(st)

	switch {
	case !st.HasRule || applied+1 < m.Vn:
		// Lines 9-16: node inside a segment — fresh or lagging by more
		// than one version. It inherits the parent's old distance.
		if !distanceMatches(uim.NewDistance, m.Dn) {
			return Verdict{Decision: DecisionReject, Reason: packet.ReasonDistance, Code: trace.CodeRejectDistance}
		}
		return Verdict{
			Decision:  DecisionApply,
			OldVer:    m.Vn - 1, // line 13
			Inherited: m.Do,     // line 14
			Counter:   m.Counter + 1,
			Code:      trace.CodeApplyDLSegment,
		}

	case applied+1 == m.Vn && m.Vn == m.Vo+1:
		// Lines 17-23: gateway node (end/start of a segment).
		if !distanceMatches(uim.NewDistance, m.Dn) {
			return Verdict{Decision: DecisionReject, Reason: packet.ReasonDistance, Code: trace.CodeRejectDistance}
		}
		if st.LastType == packet.UpdateDual && !allowChainedDL {
			// Base algorithm: a dual-layer update must follow a
			// single-layer one; drop and await a later configuration.
			return Verdict{Decision: DecisionWaitDependency, Code: trace.CodeWaitDependency}
		}
		// Line 19: the proposed segment ID must be strictly smaller than
		// the node's current distance, else the move could close a loop.
		if st.CurrentDistance() > m.Do {
			return Verdict{
				Decision:  DecisionApply,
				OldVer:    m.Vo, // line 21
				Inherited: m.Do,
				Counter:   m.Counter + 1,
				Code:      trace.CodeApplyDLGateway,
			}
		}
		return Verdict{Decision: DecisionWaitDependency, Code: trace.CodeWaitDependency}

	case applied == m.Vn && st.OldVersion == m.Vo:
		// Lines 24-28: already updated; pass smaller old distances
		// upstream (iterative inheritance), counter breaks ties.
		if st.NewDistance == uim.NewDistance && distanceMatches(uim.NewDistance, m.Dn) {
			if st.OldDistance > m.Do {
				return Verdict{
					Decision:  DecisionInherit,
					Inherited: m.Do,
					Counter:   m.Counter + 1,
					Code:      trace.CodeInherit,
				}
			}
			if st.OldDistance == m.Do && st.Counter > m.Counter {
				return Verdict{
					Decision:  DecisionInherit,
					Inherited: m.Do,
					Counter:   m.Counter + 1,
					Code:      trace.CodeInheritCounter,
				}
			}
		}
		return Verdict{Decision: DecisionDuplicate, Code: trace.CodeDuplicate}

	default:
		return Verdict{Decision: DecisionDuplicate, Code: trace.CodeDuplicate}
	}
}
