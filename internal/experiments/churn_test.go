package experiments

import (
	"reflect"
	"testing"
	"time"

	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/wiring"
)

// smokeChurnOpts is a fast configuration exercising every harness path:
// arrivals, departures (mean lifetime below the window), reroute waves,
// deferred retirement, and UIM batching.
func smokeChurnOpts() ChurnOpts {
	return ChurnOpts{
		ArrivalRate:   800,
		MeanLifetime:  300 * time.Millisecond,
		Duration:      500 * time.Millisecond,
		Drain:         300 * time.Millisecond,
		RerouteEvery:  25 * time.Millisecond,
		LatencyJitter: 0.2,
		EdgeOnly:      true,
		RetireGrace:   20 * time.Millisecond,
	}
}

func churnValues(t *testing.T, r runner.Result) map[string]float64 {
	t.Helper()
	if r.Failed {
		t.Fatalf("trial %s failed: %s", r.Label, r.Err)
	}
	return r.Values
}

func TestChurnSmoke(t *testing.T) {
	res, err := RunChurn(func() *topo.Topology { return topo.FatTree(4) },
		"fattree4", 1, 1, smokeChurnOpts(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := churnValues(t, res.Trials[0])
	if v["arrivals"] == 0 {
		t.Fatal("no arrivals")
	}
	if v["updates_completed"] == 0 {
		t.Fatal("no completed updates — reroute waves never triggered")
	}
	if v["trigger_errors"] != 0 {
		t.Fatalf("%v trigger errors", v["trigger_errors"])
	}
	// Conservation: every arrived flow is either retired or still live.
	if got, want := v["retired"]+v["end_live"], v["arrivals"]; got != want {
		t.Fatalf("flow conservation broken: retired+end_live=%v, arrivals=%v", got, want)
	}
	// Slot recycling bounds the interning table by peak live flows, not
	// historical arrivals.
	if v["flow_slots"] > v["peak_live"] {
		t.Fatalf("flow slots %v exceed peak live %v — recycling broken", v["flow_slots"], v["peak_live"])
	}
	if v["arrivals"] > v["peak_live"]*1.5 && v["flow_slots"] >= v["arrivals"] {
		t.Fatalf("slots track historical flows (%v slots for %v arrivals)", v["flow_slots"], v["arrivals"])
	}
	// Waves batch their UIMs: multi-update waves must produce batch frames.
	if v["updates_triggered"] > 50 && v["batch_frames"] == 0 {
		t.Fatalf("no UIM batch frames despite %v triggered updates", v["updates_triggered"])
	}
	if v["updates_completed"] > 0 && v["update_p99_ms"] < v["update_p50_ms"] {
		t.Fatalf("p99 %v below p50 %v", v["update_p99_ms"], v["update_p50_ms"])
	}
}

// TestChurnAuditSmoke reruns the smoke scenario with the continuous
// invariant auditor attached (which forces sequential execution) and
// requires a clean audit: slot recycling must never leave the auditor
// a stale flow view or a false version regression.
func TestChurnAuditSmoke(t *testing.T) {
	co := smokeChurnOpts()
	g := topo.FatTree(4)
	bed := DefaultBedConfig()
	cfg := bed.WiringConfig(KindP4Update, 1)
	cfg.AuditEvery = 200
	trial := runner.BedTrial("churn/audit", KindP4Update.String(), g, cfg,
		func(sys *wiring.System) (runner.Metrics, error) {
			return runChurnTrial(sys, g, cfg.Seed, co)
		})
	res := (&runner.Pool{Workers: 1}).Run([]runner.Trial{trial})
	v := churnValues(t, res[0])
	if v["updates_completed"] == 0 {
		t.Fatal("audited churn run completed no updates")
	}
}

// stripChurnHost drops host-side values (wall clock, alloc counters,
// wall throughput) that legitimately differ between runs.
func stripChurnHost(results []runner.Result) []runner.Result {
	out := make([]runner.Result, len(results))
	copy(out, results)
	for i := range out {
		out[i].WallClock = 0
		out[i].Allocs = 0
		out[i].AllocBytes = 0
		out[i].Shards = 0
		out[i].Gomaxprocs = 0
		out[i].ShardEventsScheduled = nil
		vals := make(map[string]float64, len(out[i].Values))
		for k, v := range out[i].Values {
			if k == "wall_flows_per_sec" {
				continue
			}
			vals[k] = v
		}
		out[i].Values = vals
	}
	return out
}

// TestChurnDeterministicAcrossShards runs the same churn trial
// sequentially and under the sharded runtime at several region counts
// and requires identical merged results: the harness drives arrivals,
// departures and reroute waves purely from resident (root-engine)
// events, which the sharded cursor replays at their exact timestamps.
func TestChurnDeterministicAcrossShards(t *testing.T) {
	co := smokeChurnOpts()
	run := func(shards int) []runner.Result {
		res, err := RunChurn(func() *topo.Topology { return topo.FatTree(4) },
			"fattree4", 2, 1, co, RunOptions{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if shards > 1 {
			for _, r := range res.Trials {
				if r.Metrics.Shards < 2 {
					t.Fatalf("shards=%d: trial %s fell back to sequential execution", shards, r.Label)
				}
			}
		}
		return stripChurnHost(res.Trials)
	}
	seq := run(0)
	for i, r := range seq {
		if r.Failed {
			t.Fatalf("trial %d (%s) failed: %s", i, r.Label, r.Err)
		}
		if r.Values["updates_completed"] == 0 {
			t.Fatalf("trial %d completed no updates", i)
		}
	}
	for _, shards := range []int{2, 4} {
		if par := run(shards); !reflect.DeepEqual(seq, par) {
			t.Fatalf("churn shards=%d produced different merged results", shards)
		}
	}
}
