package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/ezsegway"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/wiring"
)

// PacketObs is one observed packet reception.
type PacketObs struct {
	At  time.Duration
	Seq uint32
}

// Fig2Result reproduces the paper's Fig. 2 for one system: packet traces
// at v1 and at the egress v4 while configuration (c) deploys before the
// delayed configuration (b).
type Fig2Result struct {
	System SystemKind
	V1     []PacketObs
	V4     []PacketObs
	// Window is the gray area of the figure: from deploying (c) until
	// the missing (b) messages are sent.
	WindowStart, WindowEnd time.Duration
	// Sent counts injected packets, DupAtV1 duplicate receptions at v1
	// (looped packets), LostAtV4 sequence numbers never delivered.
	Sent     int
	DupAtV1  int
	LostAtV4 int
}

// String summarizes the trace in the terms the paper uses.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s sent=%d  received@v4=%d  lost@v4=%d  looped(dup)@v1=%d\n",
		r.System, r.Sent, len(uniqueSeqs(r.V4)), r.LostAtV4, r.DupAtV1)
	return b.String()
}

func uniqueSeqs(obs []PacketObs) map[uint32]int {
	m := map[uint32]int{}
	for _, o := range obs {
		m[o.Seq]++
	}
	return m
}

// Fig2 runs the inconsistent-update scenario of §4.1 on the given system
// (P4Update or ez-Segway): data packets at 125 pps with TTL 64 from v0 to
// v4; configuration (c) deploys at 200 ms, configuration (b)'s delayed
// messages arrive at 600 ms.
func Fig2(kind SystemKind, seed int64) (*Fig2Result, error) {
	res, _, err := Fig2Opts(kind, seed, nil)
	return res, err
}

// Fig2Opts is Fig2 with an optional flight recorder attached to the
// trial (nil tr runs untraced). The recorder is returned alongside the
// result so callers can export the event log.
func Fig2Opts(kind SystemKind, seed int64, tr *trace.Options) (*Fig2Result, *trace.Recorder, error) {
	return Fig2Sharded(kind, seed, tr, 1)
}

// Fig2Sharded is Fig2Opts executed under the sharded engine with the
// given region-worker request (<= 1 runs sequentially). The scenario's
// result and trace are byte-identical for every shard count.
func Fig2Sharded(kind SystemKind, seed int64, tr *trace.Options, shards int) (*Fig2Result, *trace.Recorder, error) {
	g, _, _, _ := topo.Fig2Scenario()
	cfg := DefaultBedConfig()
	wcfg := cfg.WiringConfig(kind, seed)
	wcfg.Trace = tr
	wcfg.Shards = shards
	b := &Bed{Kind: kind, System: wiring.New(g, wcfg)}

	pathA := []topo.NodeID{0, 1, 2, 3, 4}
	pathB := []topo.NodeID{0, 1, 2, 4}
	pathC := []topo.NodeID{0, 3, 1, 2, 4}
	f, err := b.Ctl.RegisterFlow(0, 4, pathA, 1000)
	if err != nil {
		return nil, nil, err
	}
	rec, _ := b.Ctl.Flow(f)

	res := &Fig2Result{
		System:      kind,
		WindowStart: 200 * time.Millisecond,
		WindowEnd:   600 * time.Millisecond,
	}
	// Observation taps.
	b.Net.Switch(1).DataTap = func(sw *dataplane.Switch, d *packet.Data, _ topo.PortID) {
		res.V1 = append(res.V1, PacketObs{At: sw.Now(), Seq: d.Seq})
	}
	b.Net.OnDeliver = func(node topo.NodeID, d *packet.Data) {
		if node == 4 {
			// Clock read through the delivering switch, so the observation
			// carries the executing engine's time under sharded execution
			// (identical to b.Eng.Now() sequentially).
			res.V4 = append(res.V4, PacketObs{At: b.Net.Switch(node).Now(), Seq: d.Seq})
		}
	}

	// Prepare both configurations the way an oblivious controller would:
	// (b) against (a), then (c) against the *believed-deployed* (b).
	var sendB, sendC func()
	switch kind {
	case KindEZSegway:
		planB, err := ezsegway.PreparePlan(g, f, pathA, pathB, 2, rec.SizeK, 0)
		if err != nil {
			return nil, nil, err
		}
		planC, err := ezsegway.PreparePlan(g, f, pathB, pathC, 3, rec.SizeK, 0)
		if err != nil {
			return nil, nil, err
		}
		sendC = func() {
			for i := range planC.Msgs {
				b.Net.SendToSwitch(planC.Targets[i], planC.Msgs[i], 0)
			}
		}
		sendB = func() {
			for i := range planB.Msgs {
				b.Net.SendToSwitch(planB.Targets[i], planB.Msgs[i], 0)
			}
		}
	case KindP4Update:
		sl := packet.UpdateSingle
		planB, err := controlplane.PreparePlan(g, f, pathA, pathB, 2, rec.SizeK, &sl)
		if err != nil {
			return nil, nil, err
		}
		planC, err := controlplane.PreparePlan(g, f, pathB, pathC, 3, rec.SizeK, &sl)
		if err != nil {
			return nil, nil, err
		}
		sendC = func() {
			for i := range planC.UIMs {
				b.Net.SendToSwitch(planC.Targets[i], planC.UIMs[i], 0)
			}
		}
		sendB = func() {
			for i := range planB.UIMs {
				b.Net.SendToSwitch(planB.Targets[i], planB.UIMs[i], 0)
			}
		}
	default:
		return nil, nil, fmt.Errorf("fig2 compares P4Update and ez-Segway only")
	}

	b.Eng.Schedule(res.WindowStart, sendC)
	b.Eng.Schedule(res.WindowEnd, sendB)

	// 125 pps source at v0 for 1.2 s. The injector is scheduled in v0's
	// execution context (ScheduleNode), so under sharded execution the
	// packet source lives in v0's region instead of forcing a barrier
	// per packet; sequentially ScheduleNode is exactly Eng.Schedule.
	const pps = 125
	interval := time.Second / pps
	seq := uint32(0)
	var inject func()
	inject = func() {
		seq++
		res.Sent++
		b.Net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: seq, TTL: 64})
		if b.Net.Switch(0).Now() < 1200*time.Millisecond {
			b.Net.ScheduleNode(0, interval, inject)
		}
	}
	b.Net.ScheduleNode(0, 100*time.Millisecond, inject)

	b.Eng.Run()

	for _, n := range uniqueSeqs(res.V1) {
		if n > 1 {
			res.DupAtV1 += n - 1
		}
	}
	got := uniqueSeqs(res.V4)
	for s := uint32(1); s <= seq; s++ {
		if got[s] == 0 {
			res.LostAtV4++
		}
	}
	return res, b.Trace, nil
}
