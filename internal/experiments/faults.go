package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/faults"
	"p4update/internal/plancache"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// faultSweepFlows is the per-trial workload size of the chaos sweep:
// small enough that the every-step auditor stays cheap, large enough
// that several flows cross every chaotic link.
const faultSweepFlows = 12

// faultWatchdog is the §11 recovery cadence used by the sweep for both
// the switch-side stall watchdog and the controller-side completion
// watchdog.
const faultWatchdog = 250 * time.Millisecond

// FaultCell is one cell of the chaos grid: a (loss, reorder) rate pair
// applied to the data fabric and both control-channel directions.
type FaultCell struct {
	Loss    float64
	Reorder float64
}

// FaultRow aggregates one system's runs in one grid cell.
type FaultRow struct {
	System SystemKind
	Cell   FaultCell
	// Runs is the number of trials; Completed how many finished every
	// flow update; Failed how many crashed or timed out outright.
	Runs      int
	Completed int
	Failed    int
	// FlowsDone / Flows count individual flow updates across the runs.
	FlowsDone int
	Flows     int
	// MeanDone is the mean last-flow completion time of completed runs.
	MeanDone time.Duration
	// Retriggers sums §11 recovery re-transmissions across the runs.
	Retriggers uint64
	// Audit violation totals across the runs.
	Blackholes         uint64
	Loops              uint64
	OverCapacity       uint64
	VersionRegressions uint64
	Sweeps             uint64
}

// Violations is the row's summed violation count.
func (r *FaultRow) Violations() uint64 {
	return r.Blackholes + r.Loops + r.OverCapacity + r.VersionRegressions
}

// FaultsResult is the chaos sweep: completion and audit outcomes for
// every system under every fault cell.
type FaultsResult struct {
	Label string
	Rows  []FaultRow
	// Trials are the merged per-trial runner results (system-major,
	// cell-middle, run-minor) for JSON export.
	Trials []runner.Result
}

// String renders the sweep as one row per (system, cell): the paper's
// §11 claim in table form — P4Update keeps completing with zero
// violations while faults climb, the baselines stall or go dark.
func (r *FaultsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Faults: %s ==\n", r.Label)
	fmt.Fprintf(&b, "%-10s %5s %7s %9s %11s %10s %10s %5s %7s %7s\n",
		"system", "loss", "reorder", "runs-done", "flows-done",
		"mean-time", "retriggers", "loops", "blkhole", "overcap")
	for i := range r.Rows {
		row := &r.Rows[i]
		mean := "-"
		if row.MeanDone > 0 {
			mean = row.MeanDone.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-10s %5.2f %7.2f %5d/%-3d %7d/%-3d %10s %10d %5d %7d %7d\n",
			row.System, row.Cell.Loss, row.Cell.Reorder,
			row.Completed, row.Runs, row.FlowsDone, row.Flows,
			mean, row.Retriggers, row.Loops, row.Blackholes, row.OverCapacity)
	}
	return b.String()
}

// faultPlan builds the chaos plan of one grid cell: the loss and
// reorder rates hit the data fabric and both control-channel
// directions, and the optional crash schedule takes down `crashes`
// switches in staggered 150 ms outage windows. The plan seed is left
// zero so wiring derives it from the trial seed — every system of a
// run faces the same chaos.
func faultPlan(g *topo.Topology, cell FaultCell, crashes, run int) *faults.Plan {
	r := faults.Rates{
		Drop:      cell.Loss,
		Reorder:   cell.Reorder,
		ReorderBy: 2 * time.Millisecond,
	}
	p := &faults.Plan{Data: r, Up: r, Down: r}
	n := g.NumNodes()
	for i := 0; i < crashes; i++ {
		at := time.Duration(300+200*i) * time.Millisecond
		p.Crashes = append(p.Crashes, faults.Crash{
			Node:    topo.NodeID((run*7 + 3*i + 1) % n),
			At:      at,
			Restore: at + 150*time.Millisecond,
		})
	}
	return p
}

// FaultSweep runs the chaos grid on the frozen B4 topology: for every
// system, fault cell (loss × reorder), and run, a many-flow workload is
// updated under the cell's deterministic fault plan while the invariant
// auditor sweeps the live forwarding state every auditEvery engine
// steps. Results are merged in trial-index order, so the rendered table
// is byte-identical for every worker count.
func FaultSweep(lossRates, reorderRates []float64, crashes, auditEvery, runs int, seed int64, opt RunOptions) (*FaultsResult, error) {
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.05, 0.1, 0.2}
	}
	if len(reorderRates) == 0 {
		reorderRates = []float64{0, 0.1}
	}
	if auditEvery <= 0 {
		auditEvery = 1
	}
	var cells []FaultCell
	for _, l := range lossRates {
		for _, o := range reorderRates {
			cells = append(cells, FaultCell{Loss: l, Reorder: o})
		}
	}

	g := topo.B4()
	g.Freeze()
	plans := plancache.New(g)
	workloads := newWorkloadCache()
	res := &FaultsResult{
		Label: fmt.Sprintf("B4, %d flows, %d runs/cell, audit every %d steps",
			faultSweepFlows, runs, auditEvery),
	}

	systems := opt.systems()
	trials := make([]runner.Trial, 0, len(systems)*len(cells)*runs)
	for _, kind := range systems {
		for _, cell := range cells {
			for run := 0; run < runs; run++ {
				trials = append(trials, faultTrial(g, plans, workloads, kind, cell, crashes, auditEvery, run, seed, opt.Trace))
			}
		}
	}
	res.Trials = opt.Pool().Run(trials)

	for ki, kind := range systems {
		for ci, cell := range cells {
			row := FaultRow{System: kind, Cell: cell, Runs: runs}
			var doneSum time.Duration
			for run := 0; run < runs; run++ {
				r := res.Trials[(ki*len(cells)+ci)*runs+run]
				if r.Failed {
					row.Failed++
					continue
				}
				v := r.Values
				row.Flows += int(v["flows"])
				row.FlowsDone += int(v["completed"])
				row.Retriggers += uint64(v["retriggers"])
				row.Blackholes += uint64(v["audit_blackholes"])
				row.Loops += uint64(v["audit_loops"])
				row.OverCapacity += uint64(v["audit_over_capacity"])
				row.VersionRegressions += uint64(v["audit_version_regressions"])
				row.Sweeps += uint64(v["audit_sweeps"])
				if len(r.Samples) > 0 {
					row.Completed++
					doneSum += r.Samples[0]
				}
			}
			if row.Completed > 0 {
				row.MeanDone = doneSum / time.Duration(row.Completed)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// faultTrial builds one chaos trial: the run's shared workload updated
// under the cell's fault plan with the §11 recovery machinery armed and
// the auditor attached.
func faultTrial(g *topo.Topology, plans *plancache.Cache, workloads *workloadCache,
	kind SystemKind, cell FaultCell, crashes, auditEvery, run int, seed int64, tr *trace.Options) runner.Trial {
	cfg := DefaultBedConfig()
	wcfg := cfg.WiringConfig(kind, seed+int64(run))
	wcfg.Plans = plans
	wcfg.Trace = tr
	wcfg.WatchdogTimeout = faultWatchdog
	wcfg.ProbeTimeout = faultWatchdog
	wcfg.MaxRetriggers = 25
	wcfg.AuditEvery = auditEvery
	wcfg.Faults = faultPlan(g, cell, crashes, run)
	label := fmt.Sprintf("faults/%s/loss%.2f-reorder%.2f/run%02d", kind, cell.Loss, cell.Reorder, run)
	return runner.BedTrial(label, kind.String(), g, wcfg,
		func(sys *wiring.System) (runner.Metrics, error) {
			b := &Bed{Kind: kind, System: sys}
			// The workload depends only on the run index: every system
			// and every fault cell of a run updates the same flows.
			flows, err := workloads.get(int64(run), func() ([]traffic.FlowSpec, error) {
				return traffic.ManyFlowWorkload(g, newWorkloadRand(seed+int64(run)), faultSweepFlows, nil)
			})
			if err != nil {
				return runner.Metrics{}, err
			}
			if err := b.Register(flows); err != nil {
				return runner.Metrics{}, err
			}
			var updates []*controlplane.UpdateStatus
			for _, f := range flows {
				u, err := b.Trigger(f.ID(), f.New)
				if err != nil {
					return runner.Metrics{}, fmt.Errorf("%s: trigger: %w", kind, err)
				}
				if u != nil {
					updates = append(updates, u)
				}
			}
			b.Eng.Run()

			var last time.Duration
			done, retr := 0, 0
			for _, u := range updates {
				retr += u.Retriggers
				if !u.Done() {
					continue
				}
				done++
				if u.Completed > last {
					last = u.Completed
				}
			}
			m := runner.Metrics{Values: map[string]float64{
				"loss":       cell.Loss,
				"reorder":    cell.Reorder,
				"flows":      float64(len(updates)),
				"completed":  float64(done),
				"retriggers": float64(retr),
			}}
			if sys.Aud != nil {
				rep := sys.Aud.Report()
				m.Values["audit_sweeps"] = float64(rep.Sweeps)
				m.Values["audit_blackholes"] = float64(rep.Blackholes)
				m.Values["audit_loops"] = float64(rep.Loops)
				m.Values["audit_over_capacity"] = float64(rep.OverCapacity)
				m.Values["audit_version_regressions"] = float64(rep.VersionRegressions)
			}
			if sys.Inj != nil {
				st := &sys.Inj.Stats
				m.Values["faults_dropped"] = float64(st.Dropped + st.RuleDrops + st.PartitionDrops)
				m.Values["faults_reordered"] = float64(st.Reordered)
				m.Values["faults_crashes"] = float64(st.Crashes)
			}
			// A run's completion-time sample only counts when every flow
			// finished; partial completion is visible in the counters.
			if done == len(updates) && last > 0 {
				m.Samples = []time.Duration{last}
			}
			return m, nil
		})
}
