package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p4update/internal/runner"
	"p4update/internal/soak"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// ChurnOpts tunes the streaming churn experiment: a Poisson stream of
// flow arrivals and departures sustained over virtual time, with
// continuous single-link latency perturbations forcing reroute waves
// through the update system under test.
type ChurnOpts struct {
	// ArrivalRate is the flow arrival rate (flows per second of virtual
	// time); MeanLifetime the mean exponential flow lifetime. The
	// steady-state live population approaches ArrivalRate*MeanLifetime.
	ArrivalRate  float64
	MeanLifetime time.Duration
	// Duration is the admission window; the trial then drains for Drain
	// extra virtual time so in-flight updates and departures settle.
	Duration time.Duration
	Drain    time.Duration
	// RerouteEvery is the mean interval between link perturbations
	// (0 disables reroutes — pure arrival/departure churn).
	RerouteEvery time.Duration
	// LatencyJitter perturbs link latencies once at setup so shortest
	// paths are unique (required on equal-cost fat-trees for exact
	// incremental oracle repair; see internal/topo/repair.go).
	LatencyJitter float64
	// EdgeOnly restricts flow endpoints to the topology's degree-minimal
	// edge layer (fat-tree edge switches).
	EdgeOnly bool
	// RetireGrace delays data-plane teardown of a departed flow after
	// its last update completes, letting stale cleanup frames drain
	// before the flow's slot is recycled.
	RetireGrace time.Duration
}

// DefaultChurnOpts returns a short smoke-scale configuration; the
// headline benchmark scales ArrivalRate/Duration up (see BENCH_churn).
func DefaultChurnOpts() ChurnOpts {
	return ChurnOpts{
		ArrivalRate:   2000,
		MeanLifetime:  2 * time.Second,
		Duration:      2 * time.Second,
		Drain:         500 * time.Millisecond,
		RerouteEvery:  20 * time.Millisecond,
		LatencyJitter: 0.2,
		EdgeOnly:      true,
		RetireGrace:   50 * time.Millisecond,
	}
}

// ChurnResult is the merged outcome of a churn grid.
type ChurnResult struct {
	Label  string
	Opts   ChurnOpts
	Trials []runner.Result
}

// String renders one summary row per trial: live-flow peak, completed
// update count with p50/p99 completion times, and the sustained
// wall-clock arrival throughput.
func (r *ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Churn: %s ==\n", r.Label)
	for _, t := range r.Trials {
		if t.Failed {
			fmt.Fprintf(&b, "%-24s FAILED: %s\n", t.Label, t.Err)
			continue
		}
		v := t.Values
		fmt.Fprintf(&b,
			"%-24s peak_live=%d arrivals=%d departures=%d updates=%d p50=%.2fms p99=%.2fms waves=%d flows/s(wall)=%.0f\n",
			t.Label, int(v["peak_live"]), int(v["arrivals"]), int(v["departures"]),
			int(v["updates_completed"]), v["update_p50_ms"], v["update_p99_ms"],
			int(v["waves"]), v["wall_flows_per_sec"])
	}
	return b.String()
}

// soakOptions translates churn knobs into the shared harness options
// (no storm timeline, no retrigger budget — pure churn).
func (o ChurnOpts) soakOptions() soak.Options {
	return soak.Options{
		ArrivalRate:  o.ArrivalRate,
		MeanLifetime: o.MeanLifetime,
		Duration:     o.Duration,
		Drain:        o.Drain,
		RerouteEvery: o.RerouteEvery,
		EdgeOnly:     o.EdgeOnly,
		RetireGrace:  o.RetireGrace,
	}
}

// runChurnTrial executes one trial body on an already wired system. The
// event loop lives in internal/soak — the fault-aware superset harness;
// with no injector attached it schedules the identical resident event
// sequence the original churn driver did, so churn output is unchanged.
func runChurnTrial(sys *wiring.System, g *topo.Topology, seed int64, opt ChurnOpts) (runner.Metrics, error) {
	start := time.Now()
	so := opt.soakOptions()
	w, err := soak.NewWorkload(g, seed, so)
	if err != nil {
		return runner.Metrics{}, err
	}
	h := soak.NewHarness(sys, g, w, so)
	h.Start()
	sys.Eng.RunUntil(opt.Duration + opt.Drain)

	c := h.Counters()
	samples := h.Samples()
	m := runner.Metrics{Samples: samples}
	m.Values = map[string]float64{
		"arrivals":          float64(c.Arrivals),
		"departures":        float64(c.Departures),
		"retired":           float64(c.Retired),
		"peak_live":         float64(c.PeakLive),
		"end_live":          float64(h.LiveFlows()),
		"flow_slots":        float64(sys.Net.NumFlowSlots()),
		"waves":             float64(c.Waves),
		"updates_triggered": float64(c.Triggered),
		"updates_completed": float64(c.Completed),
		"skipped_busy":      float64(c.SkippedBusy),
		"skipped_same":      float64(c.SkippedSame),
		"trigger_errors":    float64(c.TriggerErrs),
		"batch_frames":      float64(sys.Ctl.BatchFrames),
		"batched_uims":      float64(sys.Ctl.BatchedUIMs),
	}
	if len(samples) > 0 {
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, s := range sorted {
			sum += s
		}
		q := func(p float64) float64 {
			i := int(p * float64(len(sorted)-1))
			return float64(sorted[i]) / float64(time.Millisecond)
		}
		m.Values["update_p50_ms"] = q(0.50)
		m.Values["update_p99_ms"] = q(0.99)
		m.Values["update_mean_ms"] = float64(sum) / float64(len(sorted)) / float64(time.Millisecond)
	}
	// Host-side throughput: how many arrivals the simulation sustained
	// per wall-clock second. Like WallClock/Allocs, determinism
	// comparisons must ignore it.
	if el := time.Since(start).Seconds(); el > 0 {
		m.Values["wall_flows_per_sec"] = float64(c.Arrivals) / el
	}
	return m, nil
}

// churnSystems resolves the grid's system list: churn defaults to
// P4Update only (the headline perf scenario) rather than the full
// registered comparison.
func churnSystems(opt RunOptions) []SystemKind {
	if len(opt.Systems) > 0 {
		return opt.Systems
	}
	return []SystemKind{KindP4Update}
}

// RunChurn runs the streaming churn scenario on topology builder mk:
// `runs` independent trials per system, each sustaining a Poisson
// arrival/departure stream with continuous reroute waves. Every trial
// owns a private unfrozen topology instance — reroutes perturb link
// latencies in place and the path oracle repairs its cache
// incrementally — so the grid builds one topology per trial
// sequentially up front and shares nothing.
func RunChurn(mk func() *topo.Topology, label string, runs int, seed int64, co ChurnOpts, opt RunOptions) (*ChurnResult, error) {
	if co.ArrivalRate <= 0 || co.Duration <= 0 || co.MeanLifetime <= 0 {
		return nil, fmt.Errorf("experiments: churn needs positive rate/lifetime/duration")
	}
	res := &ChurnResult{Label: label, Opts: co}
	bed := DefaultBedConfig()
	systems := churnSystems(opt)
	trials := make([]runner.Trial, 0, len(systems)*runs)
	for _, kind := range systems {
		for run := 0; run < runs; run++ {
			trialSeed := seed + int64(run)*7919
			g := mk()
			if co.LatencyJitter > 0 {
				// One-time seeded jitter, applied before wiring so control
				// latencies and region partitions see the jittered weights;
				// makes fat-tree shortest paths unique (exact incremental
				// repair, see internal/topo/repair.go).
				traffic.JitterLatencies(g, trialSeed, co.LatencyJitter)
			}
			cfg := bed.WiringConfig(kind, trialSeed)
			cfg.Shards = opt.Shards
			opts := co
			trials = append(trials, runner.BedTrial(
				fmt.Sprintf("churn/%s/run%d", label, run), kind.String(), g, cfg,
				func(sys *wiring.System) (runner.Metrics, error) {
					return runChurnTrial(sys, g, cfg.Seed, opts)
				}))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	return res, nil
}
