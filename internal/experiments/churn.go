package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/packet"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// ChurnOpts tunes the streaming churn experiment: a Poisson stream of
// flow arrivals and departures sustained over virtual time, with
// continuous single-link latency perturbations forcing reroute waves
// through the update system under test.
type ChurnOpts struct {
	// ArrivalRate is the flow arrival rate (flows per second of virtual
	// time); MeanLifetime the mean exponential flow lifetime. The
	// steady-state live population approaches ArrivalRate*MeanLifetime.
	ArrivalRate  float64
	MeanLifetime time.Duration
	// Duration is the admission window; the trial then drains for Drain
	// extra virtual time so in-flight updates and departures settle.
	Duration time.Duration
	Drain    time.Duration
	// RerouteEvery is the mean interval between link perturbations
	// (0 disables reroutes — pure arrival/departure churn).
	RerouteEvery time.Duration
	// LatencyJitter perturbs link latencies once at setup so shortest
	// paths are unique (required on equal-cost fat-trees for exact
	// incremental oracle repair; see internal/topo/repair.go).
	LatencyJitter float64
	// EdgeOnly restricts flow endpoints to the topology's degree-minimal
	// edge layer (fat-tree edge switches).
	EdgeOnly bool
	// RetireGrace delays data-plane teardown of a departed flow after
	// its last update completes, letting stale cleanup frames drain
	// before the flow's slot is recycled.
	RetireGrace time.Duration
}

// DefaultChurnOpts returns a short smoke-scale configuration; the
// headline benchmark scales ArrivalRate/Duration up (see BENCH_churn).
func DefaultChurnOpts() ChurnOpts {
	return ChurnOpts{
		ArrivalRate:   2000,
		MeanLifetime:  2 * time.Second,
		Duration:      2 * time.Second,
		Drain:         500 * time.Millisecond,
		RerouteEvery:  20 * time.Millisecond,
		LatencyJitter: 0.2,
		EdgeOnly:      true,
		RetireGrace:   50 * time.Millisecond,
	}
}

// ChurnResult is the merged outcome of a churn grid.
type ChurnResult struct {
	Label  string
	Opts   ChurnOpts
	Trials []runner.Result
}

// String renders one summary row per trial: live-flow peak, completed
// update count with p50/p99 completion times, and the sustained
// wall-clock arrival throughput.
func (r *ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Churn: %s ==\n", r.Label)
	for _, t := range r.Trials {
		if t.Failed {
			fmt.Fprintf(&b, "%-24s FAILED: %s\n", t.Label, t.Err)
			continue
		}
		v := t.Values
		fmt.Fprintf(&b,
			"%-24s peak_live=%d arrivals=%d departures=%d updates=%d p50=%.2fms p99=%.2fms waves=%d flows/s(wall)=%.0f\n",
			t.Label, int(v["peak_live"]), int(v["arrivals"]), int(v["departures"]),
			int(v["updates_completed"]), v["update_p50_ms"], v["update_p99_ms"],
			int(v["waves"]), v["wall_flows_per_sec"])
	}
	return b.String()
}

// churnFlow is the harness's view of one live flow.
type churnFlow struct {
	src, dst topo.NodeID
	path     []topo.NodeID
	updating bool
	departed bool
}

// churnHarness drives one churn trial: it owns the live-flow table and
// the link→flows index, and schedules every arrival, departure, and
// reroute wave as resident (root-engine) events — so a sharded
// execution replays the identical sequence at barriers and the trial
// stays byte-identical across shard counts.
type churnHarness struct {
	sys *wiring.System
	g   *topo.Topology
	w   *traffic.ChurnWorkload
	opt ChurnOpts

	live      map[packet.FlowID]*churnFlow
	linkFlows map[topo.LinkID]map[packet.FlowID]struct{}
	samples   []time.Duration

	arrivals, departures, retired uint64
	waves, triggered, completed   uint64
	skippedBusy, skippedSame      uint64
	triggerErrs                   uint64
	peakLive                      int

	scratch []packet.FlowID // sorted wave worklist, reused
}

// pathLinks calls fn with the LinkID of every hop of path.
func (h *churnHarness) pathLinks(path []topo.NodeID, fn func(topo.LinkID)) {
	for i := 0; i+1 < len(path); i++ {
		l, ok := h.g.LinkBetween(path[i], path[i+1])
		if !ok {
			panic(fmt.Sprintf("churn: no link %d-%d on flow path", path[i], path[i+1]))
		}
		fn(l.ID)
	}
}

func (h *churnHarness) indexFlow(f packet.FlowID, path []topo.NodeID) {
	h.pathLinks(path, func(id topo.LinkID) {
		m := h.linkFlows[id]
		if m == nil {
			m = make(map[packet.FlowID]struct{})
			h.linkFlows[id] = m
		}
		m[f] = struct{}{}
	})
}

func (h *churnHarness) unindexFlow(f packet.FlowID, path []topo.NodeID) {
	h.pathLinks(path, func(id topo.LinkID) {
		delete(h.linkFlows[id], f)
	})
}

// retire tears the flow down everywhere: harness tables, controller
// Flow DB, and the data-plane interning slot (recycled for the next
// arrival). Callers only retire quiescent flows — either never updated,
// or RetireGrace after their last update completed.
func (h *churnHarness) retire(f packet.FlowID) {
	cf, ok := h.live[f]
	if !ok {
		return
	}
	h.unindexFlow(f, cf.path)
	delete(h.live, f)
	h.sys.Ctl.UnregisterFlow(f)
	h.sys.Net.RetireFlow(f)
	h.retired++
}

// onArrival registers the flow along the current shortest path and
// schedules its departure and the next arrival.
func (h *churnHarness) onArrival(a traffic.ChurnArrival) {
	f := a.ID()
	path := h.g.ShortestPath(a.Src, a.Dst, topo.ByLatency)
	if err := h.sys.Ctl.RegisterFlowID(f, a.Src, a.Dst, path, 1); err != nil {
		panic(fmt.Sprintf("churn: register: %v", err))
	}
	cf := &churnFlow{src: a.Src, dst: a.Dst, path: path}
	h.live[f] = cf
	h.indexFlow(f, path)
	h.arrivals++
	if len(h.live) > h.peakLive {
		h.peakLive = len(h.live)
	}
	h.sys.Eng.ScheduleAt(a.At+a.Lifetime, func() { h.onDeparture(f) })
	h.scheduleNextArrival()
}

// onDeparture retires the flow immediately when it is quiescent, or
// defers teardown to update completion when a reroute is in flight.
func (h *churnHarness) onDeparture(f packet.FlowID) {
	cf, ok := h.live[f]
	if !ok {
		return
	}
	h.departures++
	if cf.updating {
		cf.departed = true
		return
	}
	h.retire(f)
}

// onReroute applies the link perturbation and triggers one update per
// affected flow whose shortest path changed, batching the wave's UIMs
// per destination switch. Affected flows are visited in FlowID order so
// the wave's trigger sequence is deterministic.
func (h *churnHarness) onReroute(r traffic.ChurnReroute) {
	base := h.w.BaseLatency(r.Link)
	h.g.SetLinkLatency(r.Link, time.Duration(float64(base)*r.Factor))
	h.waves++

	h.scratch = h.scratch[:0]
	for f := range h.linkFlows[r.Link] {
		h.scratch = append(h.scratch, f)
	}
	sort.Slice(h.scratch, func(i, j int) bool { return h.scratch[i] < h.scratch[j] })

	h.sys.Ctl.BeginUIMBatch()
	for _, f := range h.scratch {
		cf := h.live[f]
		if cf == nil || cf.updating || cf.departed {
			h.skippedBusy++
			continue
		}
		sp := h.g.ShortestPath(cf.src, cf.dst, topo.ByLatency)
		if samePath(sp, cf.path) {
			h.skippedSame++
			continue
		}
		if _, err := h.sys.Trigger(f, sp); err != nil {
			h.triggerErrs++
			continue
		}
		h.unindexFlow(f, cf.path)
		cf.path = sp
		cf.updating = true
		h.indexFlow(f, sp)
		h.triggered++
	}
	h.sys.Ctl.FlushUIMBatch()
	h.scheduleNextReroute()
}

// onUpdateComplete samples the update time, drops the per-update
// tracking record (the updates map holds only in-flight work), and
// finishes a deferred departure after the retire grace.
func (h *churnHarness) onUpdateComplete(f packet.FlowID, version uint32, d time.Duration) {
	h.completed++
	h.samples = append(h.samples, d)
	h.sys.Ctl.ForgetUpdate(f, version)
	cf, ok := h.live[f]
	if !ok {
		return
	}
	cf.updating = false
	if cf.departed {
		h.sys.Eng.Schedule(h.opt.RetireGrace, func() { h.retire(f) })
	}
}

func (h *churnHarness) scheduleNextArrival() {
	a, ok := h.w.NextArrival(func(f packet.FlowID) bool {
		_, taken := h.live[f]
		return taken
	})
	if !ok {
		return
	}
	h.sys.Eng.ScheduleAt(a.At, func() { h.onArrival(a) })
}

func (h *churnHarness) scheduleNextReroute() {
	r, ok := h.w.NextReroute()
	if !ok {
		return
	}
	h.sys.Eng.ScheduleAt(r.At, func() { h.onReroute(r) })
}

func samePath(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runChurnTrial executes one trial body on an already wired system.
func runChurnTrial(sys *wiring.System, g *topo.Topology, seed int64, opt ChurnOpts) (runner.Metrics, error) {
	start := time.Now()
	cand := g.Nodes()
	if opt.EdgeOnly {
		cand = topo.EdgeSwitches(g)
	}
	w, err := traffic.NewChurnWorkload(g, seed, traffic.ChurnConfig{
		ArrivalRate:  opt.ArrivalRate,
		MeanLifetime: opt.MeanLifetime,
		Duration:     opt.Duration,
		RerouteEvery: opt.RerouteEvery,
		// Jitter is applied by the caller before wiring (control
		// latencies derive from link latencies); never here.
		LatencyJitter: 0,
		Candidates:    cand,
	})
	if err != nil {
		return runner.Metrics{}, err
	}
	h := &churnHarness{
		sys:       sys,
		g:         g,
		w:         w,
		opt:       opt,
		live:      make(map[packet.FlowID]*churnFlow),
		linkFlows: make(map[topo.LinkID]map[packet.FlowID]struct{}),
	}
	sys.Ctl.OnComplete = func(u *controlplane.UpdateStatus) {
		h.onUpdateComplete(u.Flow, u.Version, u.Completed-u.Sent)
	}
	h.scheduleNextArrival()
	h.scheduleNextReroute()
	sys.Eng.RunUntil(opt.Duration + opt.Drain)

	m := runner.Metrics{Samples: h.samples}
	m.Values = map[string]float64{
		"arrivals":          float64(h.arrivals),
		"departures":        float64(h.departures),
		"retired":           float64(h.retired),
		"peak_live":         float64(h.peakLive),
		"end_live":          float64(len(h.live)),
		"flow_slots":        float64(sys.Net.NumFlowSlots()),
		"waves":             float64(h.waves),
		"updates_triggered": float64(h.triggered),
		"updates_completed": float64(h.completed),
		"skipped_busy":      float64(h.skippedBusy),
		"skipped_same":      float64(h.skippedSame),
		"trigger_errors":    float64(h.triggerErrs),
		"batch_frames":      float64(sys.Ctl.BatchFrames),
		"batched_uims":      float64(sys.Ctl.BatchedUIMs),
	}
	if len(h.samples) > 0 {
		sorted := append([]time.Duration(nil), h.samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, s := range sorted {
			sum += s
		}
		q := func(p float64) float64 {
			i := int(p * float64(len(sorted)-1))
			return float64(sorted[i]) / float64(time.Millisecond)
		}
		m.Values["update_p50_ms"] = q(0.50)
		m.Values["update_p99_ms"] = q(0.99)
		m.Values["update_mean_ms"] = float64(sum) / float64(len(sorted)) / float64(time.Millisecond)
	}
	// Host-side throughput: how many arrivals the simulation sustained
	// per wall-clock second. Like WallClock/Allocs, determinism
	// comparisons must ignore it.
	if el := time.Since(start).Seconds(); el > 0 {
		m.Values["wall_flows_per_sec"] = float64(h.arrivals) / el
	}
	return m, nil
}

// churnSystems resolves the grid's system list: churn defaults to
// P4Update only (the headline perf scenario) rather than the full
// registered comparison.
func churnSystems(opt RunOptions) []SystemKind {
	if len(opt.Systems) > 0 {
		return opt.Systems
	}
	return []SystemKind{KindP4Update}
}

// RunChurn runs the streaming churn scenario on topology builder mk:
// `runs` independent trials per system, each sustaining a Poisson
// arrival/departure stream with continuous reroute waves. Every trial
// owns a private unfrozen topology instance — reroutes perturb link
// latencies in place and the path oracle repairs its cache
// incrementally — so the grid builds one topology per trial
// sequentially up front and shares nothing.
func RunChurn(mk func() *topo.Topology, label string, runs int, seed int64, co ChurnOpts, opt RunOptions) (*ChurnResult, error) {
	if co.ArrivalRate <= 0 || co.Duration <= 0 || co.MeanLifetime <= 0 {
		return nil, fmt.Errorf("experiments: churn needs positive rate/lifetime/duration")
	}
	res := &ChurnResult{Label: label, Opts: co}
	bed := DefaultBedConfig()
	systems := churnSystems(opt)
	trials := make([]runner.Trial, 0, len(systems)*runs)
	for _, kind := range systems {
		for run := 0; run < runs; run++ {
			trialSeed := seed + int64(run)*7919
			g := mk()
			if co.LatencyJitter > 0 {
				// One-time seeded jitter, applied before wiring so control
				// latencies and region partitions see the jittered weights;
				// makes fat-tree shortest paths unique (exact incremental
				// repair, see internal/topo/repair.go).
				traffic.JitterLatencies(g, trialSeed, co.LatencyJitter)
			}
			cfg := bed.WiringConfig(kind, trialSeed)
			cfg.Shards = opt.Shards
			opts := co
			trials = append(trials, runner.BedTrial(
				fmt.Sprintf("churn/%s/run%d", label, run), kind.String(), g, cfg,
				func(sys *wiring.System) (runner.Metrics, error) {
					return runChurnTrial(sys, g, cfg.Seed, opts)
				}))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	return res, nil
}
