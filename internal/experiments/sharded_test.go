package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"p4update/internal/topo"
	"p4update/internal/trace"
)

// These tests are the sharded engine's core contract (see
// internal/sim/sharded.go): executing a trial across parallel region
// workers must produce a flight-recorder log and trial metrics
// byte-identical to the sequential engine, for every registered update
// system and every shard count.

var shardCounts = []int{2, 4, 8}

// shardedTraceOpts are roomy enough that nothing ring-drops, so the
// byte comparison covers every recorded event.
func shardedTraceOpts() *trace.Options {
	return &trace.Options{Cap: 1 << 18}
}

func TestFig2ShardedEquality(t *testing.T) {
	for _, kind := range []SystemKind{KindP4Update, KindEZSegway} {
		seqRes, seqRec, err := Fig2Sharded(kind, 1, shardedTraceOpts(), 1)
		if err != nil {
			t.Fatalf("%s sequential: %v", kind, err)
		}
		seqLog := jsonl(t, seqRec)
		for _, shards := range shardCounts {
			shRes, shRec, err := Fig2Sharded(kind, 1, shardedTraceOpts(), shards)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", kind, shards, err)
			}
			if !reflect.DeepEqual(seqRes, shRes) {
				t.Errorf("%s shards=%d: result diverged:\nseq: %+v\nsh:  %+v",
					kind, shards, seqRes, shRes)
			}
			shLog := jsonl(t, shRec)
			if !bytes.Equal(seqLog, shLog) {
				t.Errorf("%s shards=%d: trace diverged: %s",
					kind, shards, firstDiffLine(seqLog, shLog))
			}
		}
	}
}

// fig7Fingerprint is the determinism-relevant slice of one trial's
// metrics: everything except the host-side and execution-strategy
// fields (WallClock, Allocs, Shards, Gomaxprocs, ShardEventsScheduled),
// which legitimately differ between sequential and sharded runs.
type fig7Fingerprint struct {
	label           string
	failed          bool
	err             string
	virtualTime     time.Duration
	events          uint64
	eventsScheduled uint64
	samples         []time.Duration
	traceLog        []byte
}

func fig7Fingerprints(t *testing.T, res *Fig7Result) []fig7Fingerprint {
	t.Helper()
	out := make([]fig7Fingerprint, len(res.Trials))
	for i, r := range res.Trials {
		out[i] = fig7Fingerprint{
			label: r.Label, failed: r.Failed, err: r.Err,
			virtualTime: r.VirtualTime, events: r.Events,
			eventsScheduled: r.EventsScheduled, samples: r.Samples,
		}
		if r.TraceRec != nil {
			out[i].traceLog = jsonl(t, r.TraceRec)
		}
	}
	return out
}

func compareFig7(t *testing.T, tag string, seq, sh []fig7Fingerprint) {
	t.Helper()
	if len(seq) != len(sh) {
		t.Fatalf("%s: trial count diverged: %d vs %d", tag, len(seq), len(sh))
	}
	for i := range seq {
		if seq[i].label != sh[i].label || seq[i].failed != sh[i].failed ||
			seq[i].err != sh[i].err || seq[i].virtualTime != sh[i].virtualTime ||
			seq[i].events != sh[i].events || seq[i].eventsScheduled != sh[i].eventsScheduled ||
			!reflect.DeepEqual(seq[i].samples, sh[i].samples) {
			t.Errorf("%s: trial %q metrics diverged:\nseq: %+v\nsh:  %+v",
				tag, seq[i].label, seq[i], sh[i])
			continue
		}
		if !bytes.Equal(seq[i].traceLog, sh[i].traceLog) {
			t.Errorf("%s: trial %q trace diverged: %s",
				tag, seq[i].label, firstDiffLine(seq[i].traceLog, sh[i].traceLog))
		}
	}
}

// TestFig7B4ShardedEquality runs the full six-system Fig. 7 B4 grid
// sequentially and under every shard count, comparing per-trial traces
// and metrics. The single-flow scenario's per-node random install
// delays force the sequential fallback (equality is then trivial but
// still asserts the fallback path); the scale scenario genuinely
// shards.
func TestFig7B4ShardedEquality(t *testing.T) {
	run := func(shards int) []fig7Fingerprint {
		res, err := Fig7SingleFlowOpts(topo.B4, "b4", 2, 42,
			RunOptions{Workers: 1, Trace: shardedTraceOpts(), Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return fig7Fingerprints(t, res)
	}
	seq := run(1)
	for _, shards := range shardCounts {
		compareFig7(t, fmt.Sprintf("b4 single-flow shards=%d", shards), seq, run(shards))
	}
}

// TestManyFlowsShardedEquality is the genuinely-parallel grid: the
// fat-tree scale scenario (constant install delay, sampled control
// latencies, no congestion) shards for every system.
func TestManyFlowsShardedEquality(t *testing.T) {
	run := func(shards int) []fig7Fingerprint {
		res, err := Fig7ManyFlowsOpts(func() *topo.Topology { return topo.FatTree(4) },
			"scale-ft4", true, 30, 2, 7,
			RunOptions{Workers: 1, Trace: shardedTraceOpts(), Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return fig7Fingerprints(t, res)
	}
	seq := run(1)
	for _, shards := range shardCounts {
		compareFig7(t, fmt.Sprintf("ft4 scale shards=%d", shards), seq, run(shards))
	}
}
