// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §9): the inconsistent-update demonstration (Fig. 2),
// the fast-forward demonstration (Fig. 4), the total-update-time CDFs on
// the synthetic, B4, Internet2 and fat-tree topologies (Fig. 7a–f), and
// the control-plane preparation-time ratios (Fig. 8a/b). Each experiment
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"p4update/internal/central"
	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/ezsegway"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// SystemKind selects the evaluated update system.
type SystemKind int

// The three systems of the paper's comparison.
const (
	KindP4Update SystemKind = iota
	KindEZSegway
	KindCentral
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	switch k {
	case KindP4Update:
		return "P4Update"
	case KindEZSegway:
		return "ez-Segway"
	case KindCentral:
		return "Central"
	default:
		return "unknown"
	}
}

// AllSystems lists the systems in the paper's plotting order.
var AllSystems = []SystemKind{KindP4Update, KindEZSegway, KindCentral}

// BedConfig tunes a testbed instance.
type BedConfig struct {
	// Congestion enables capacity enforcement in all systems.
	Congestion bool
	// NodeDelayMean, when nonzero, gives every switch an exponential
	// rule-install delay with this mean (the Dionysus-motivated
	// straggler model of §9.1's single-flow scenario).
	NodeDelayMean time.Duration
	// BaseInstallDelay is the constant rule-install time used when
	// NodeDelayMean is zero (a BMv2-like table write).
	BaseInstallDelay time.Duration
	// FatTreeControl samples per-switch control latencies from a normal
	// distribution (Huang et al.) instead of centroid propagation.
	FatTreeControl bool
	// CtrlProcDelay is the Central coordinator's per-message processing
	// time.
	CtrlProcDelay time.Duration
	// CtrlQueueMean is the mean of the exponential queuing delay each
	// Central controller message experiences behind the controller's
	// other work (path setup, monitoring; §9.1 / Liu et al. [52] report
	// control-plane reaction times up to hundreds of milliseconds).
	CtrlQueueMean time.Duration
}

// DefaultBedConfig returns the §9.1 defaults.
func DefaultBedConfig() BedConfig {
	return BedConfig{
		BaseInstallDelay: time.Millisecond,
		CtrlProcDelay:    500 * time.Microsecond,
		CtrlQueueMean:    40 * time.Millisecond,
	}
}

// Bed is one fully wired system-under-test.
type Bed struct {
	Kind SystemKind
	Eng  *sim.Engine
	Net  *dataplane.Network
	Ctl  *controlplane.Controller
	EZ   *ezsegway.Controller
	CO   *central.Coordinator
}

// NewBed builds a testbed of the given kind on topology g.
func NewBed(kind SystemKind, g *topo.Topology, seed int64, cfg BedConfig) *Bed {
	eng := sim.New(seed)
	eng.MaxEvents = 20_000_000
	net := dataplane.NewNetwork(eng, g)

	switch kind {
	case KindP4Update:
		net.SetHandler(&core.Protocol{Congestion: cfg.Congestion})
	case KindEZSegway:
		net.SetHandler(&ezsegway.Handler{Congestion: cfg.Congestion})
	case KindCentral:
		net.SetHandler(&central.Handler{})
	}

	var node topo.NodeID
	if cfg.FatTreeControl {
		node = g.Centroid()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		controlplane.UseSampledControl(net, func() time.Duration {
			// Huang et al. measured switch control-path latencies of a
			// few milliseconds; clamp the normal sample to stay positive.
			d := time.Duration((4 + 2*rng.NormFloat64()) * float64(time.Millisecond))
			if d < 500*time.Microsecond {
				d = 500 * time.Microsecond
			}
			return d
		})
	} else {
		node = controlplane.UseCentroidControl(net)
	}
	ctl := controlplane.NewController(net, node)

	b := &Bed{Kind: kind, Eng: eng, Net: net, Ctl: ctl}
	switch kind {
	case KindEZSegway:
		b.EZ = ezsegway.NewController(ctl)
		b.EZ.Congestion = cfg.Congestion
	case KindCentral:
		b.CO = central.NewCoordinator(ctl, cfg.CtrlProcDelay)
		b.CO.Congestion = cfg.Congestion
		// The controller also serves path setup and monitoring traffic;
		// every message queues behind it (§9.1, Jarschel et al.).
		if cfg.CtrlQueueMean > 0 {
			qrng := eng.Rand()
			mean := float64(cfg.CtrlQueueMean)
			b.CO.QueueDelay = func() time.Duration {
				return time.Duration(qrng.ExpFloat64() * mean)
			}
		}
	}

	if cfg.NodeDelayMean > 0 {
		mean := float64(cfg.NodeDelayMean)
		rng := eng.Rand()
		net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * mean)
		})
	} else if cfg.BaseInstallDelay > 0 {
		d := cfg.BaseInstallDelay
		net.SetInstallDelay(func() time.Duration { return d })
	}
	return b
}

// Register installs the workload's flows (version 1 state).
func (b *Bed) Register(flows []traffic.FlowSpec) error {
	for _, f := range flows {
		if _, err := b.Ctl.RegisterFlow(f.Src, f.Dst, f.Old, f.SizeK); err != nil {
			return fmt.Errorf("register %d->%d: %w", f.Src, f.Dst, err)
		}
	}
	return nil
}

// Trigger starts the flow's update under the bed's system.
func (b *Bed) Trigger(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	switch b.Kind {
	case KindP4Update:
		return b.Ctl.TriggerUpdate(f, newPath, nil)
	case KindEZSegway:
		return b.EZ.TriggerUpdate(f, newPath)
	case KindCentral:
		return b.CO.TriggerUpdate(f, newPath)
	default:
		return nil, fmt.Errorf("unknown system kind %d", b.Kind)
	}
}
