// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §9): the inconsistent-update demonstration (Fig. 2),
// the fast-forward demonstration (Fig. 4), the total-update-time CDFs on
// the synthetic, B4, Internet2 and fat-tree topologies (Fig. 7a–f), and
// the control-plane preparation-time ratios (Fig. 8a/b). Each experiment
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/packet"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// SystemKind selects the evaluated update system by its wiring registry
// name; any registered name is a valid kind.
type SystemKind string

// The registered systems: the paper's three-way comparison plus the
// systems added behind the registry.
const (
	KindP4Update    SystemKind = "p4update"
	KindEZSegway    SystemKind = "ez-segway"
	KindCentral     SystemKind = "central"
	KindLocalVerify SystemKind = "local-verify"
	KindPPCU        SystemKind = "ppcu"
	KindOptOracle   SystemKind = "opt-oracle"
)

// String implements fmt.Stringer: the registry display name, or the raw
// name for unregistered kinds.
func (k SystemKind) String() string {
	if sys, ok := wiring.Lookup(string(k)); ok {
		return sys.DisplayName()
	}
	if k == "" {
		return "unknown"
	}
	return string(k)
}

// AllSystems lists the registered primary systems in their registration
// (and plotting) order.
func AllSystems() []SystemKind {
	names := wiring.Names()
	out := make([]SystemKind, len(names))
	for i, n := range names {
		out[i] = SystemKind(n)
	}
	return out
}

// RunOptions controls how an experiment's trial grid executes. The zero
// value runs one worker per core with no per-trial timeout; results are
// merged in trial-index order either way, so the output is identical
// for every worker count.
type RunOptions struct {
	// Workers is the trial-pool concurrency (<= 0: GOMAXPROCS).
	Workers int
	// Timeout bounds each trial's wall-clock execution (0 = none); a
	// timed-out trial is recorded as a failed run.
	Timeout time.Duration
	// Trace, when set, attaches a flight recorder to every trial of the
	// grid (one recorder per trial — the pool shares nothing, so traced
	// parallel runs stay deterministic). Each trial's report then carries
	// a trace summary, and its Metrics.TraceRec exposes the full log.
	Trace *trace.Options
	// Systems, when non-empty, restricts a grid to these systems;
	// empty runs every registered primary system (AllSystems).
	Systems []SystemKind
	// Shards, when > 1, requests sharded execution inside every trial
	// (wiring.Config.Shards): the topology is partitioned into regions
	// executed by parallel workers under the conservative window/barrier
	// runtime. Results are byte-identical to sequential execution;
	// configurations the runtime cannot reproduce exactly fall back to
	// the sequential engine per trial.
	Shards int
}

// systems resolves the grid's system list.
func (o RunOptions) systems() []SystemKind {
	if len(o.Systems) > 0 {
		return o.Systems
	}
	return AllSystems()
}

// Pool builds the trial pool for these options.
func (o RunOptions) Pool() *runner.Pool {
	return &runner.Pool{Workers: o.Workers, Timeout: o.Timeout}
}

// BedConfig tunes a testbed instance.
type BedConfig struct {
	// Congestion enables capacity enforcement in all systems.
	Congestion bool
	// NodeDelayMean, when nonzero, gives every switch an exponential
	// rule-install delay with this mean (the Dionysus-motivated
	// straggler model of §9.1's single-flow scenario).
	NodeDelayMean time.Duration
	// BaseInstallDelay is the constant rule-install time used when
	// NodeDelayMean is zero (a BMv2-like table write).
	BaseInstallDelay time.Duration
	// FatTreeControl samples per-switch control latencies from a normal
	// distribution (Huang et al.) instead of centroid propagation.
	FatTreeControl bool
	// CtrlProcDelay is the Central coordinator's per-message processing
	// time.
	CtrlProcDelay time.Duration
	// CtrlQueueMean is the mean of the exponential queuing delay each
	// Central controller message experiences behind the controller's
	// other work (path setup, monitoring; §9.1 / Liu et al. [52] report
	// control-plane reaction times up to hundreds of milliseconds).
	CtrlQueueMean time.Duration
}

// DefaultBedConfig returns the §9.1 defaults.
func DefaultBedConfig() BedConfig {
	return BedConfig{
		BaseInstallDelay: time.Millisecond,
		CtrlProcDelay:    500 * time.Microsecond,
		CtrlQueueMean:    40 * time.Millisecond,
	}
}

// WiringConfig translates the testbed knobs into the shared wiring
// configuration — the same construction path p4update.NewNetwork uses.
func (cfg BedConfig) WiringConfig(kind SystemKind, seed int64) wiring.Config {
	return wiring.Config{
		Seed:             seed,
		System:           string(kind),
		Congestion:       cfg.Congestion,
		MaxEvents:        20_000_000,
		NodeDelayMean:    cfg.NodeDelayMean,
		BaseInstallDelay: cfg.BaseInstallDelay,
		FatTreeControl:   cfg.FatTreeControl,
		CtrlProcDelay:    cfg.CtrlProcDelay,
		CtrlQueueMean:    cfg.CtrlQueueMean,
	}
}

// Bed is one fully wired system-under-test. It embeds the shared wiring
// system (engine, data plane, controllers) built from the same options
// the public p4update API exposes.
type Bed struct {
	Kind SystemKind
	*wiring.System
}

// NewBed builds a testbed of the given kind on topology g.
func NewBed(kind SystemKind, g *topo.Topology, seed int64, cfg BedConfig) *Bed {
	return &Bed{Kind: kind, System: wiring.New(g, cfg.WiringConfig(kind, seed))}
}

// Register installs the workload's flows (version 1 state). Flow IDs
// come from the specs themselves so salted scale workloads register
// distinct flows over repeated (src, dst) pairs.
func (b *Bed) Register(flows []traffic.FlowSpec) error {
	for _, f := range flows {
		if err := b.Ctl.RegisterFlowID(f.ID(), f.Src, f.Dst, f.Old, f.SizeK); err != nil {
			return fmt.Errorf("register %d->%d: %w", f.Src, f.Dst, err)
		}
	}
	return nil
}

// workloadCache memoizes per-run workloads shared by all systems of a
// figure: the same (seed, run) workload is generated exactly once —
// even when parallel trial workers race for it — and handed read-only
// to every trial. FlowSpecs are never mutated after generation, so
// sharing is safe.
type workloadCache struct {
	mu      sync.Mutex
	entries map[int64]*workloadEntry
}

type workloadEntry struct {
	once  sync.Once
	flows []traffic.FlowSpec
	err   error
}

func newWorkloadCache() *workloadCache {
	return &workloadCache{entries: make(map[int64]*workloadEntry)}
}

// get returns the workload for key, generating it via gen on first use
// (single-flight: concurrent callers of the same key block on the one
// generation).
func (c *workloadCache) get(key int64, gen func() ([]traffic.FlowSpec, error)) ([]traffic.FlowSpec, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &workloadEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.flows, e.err = gen() })
	return e.flows, e.err
}

// Trigger starts the flow's update under the bed's system.
func (b *Bed) Trigger(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return b.System.Trigger(f, newPath)
}
