package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"p4update/internal/faults"
	"p4update/internal/runner"
	"p4update/internal/soak"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// SoakOpts tunes the soak scenario: the streaming churn workload
// sustained under a compiled storm with the invariant auditor sweeping
// continuously and the §11 recovery machinery armed.
type SoakOpts struct {
	// Churn carries the workload knobs (arrival rate, lifetime,
	// admission window, drain, reroute cadence, retire grace).
	Churn ChurnOpts
	// Profiles are the storm profiles to sweep (built-in names; see
	// faults.StormNames). Empty defaults to squall — the acceptance
	// regime.
	Profiles []string
	// AuditEvery is the invariant-audit sweep period in engine steps.
	AuditEvery int
	// Watchdog is the §11 recovery cadence for both the switch-side
	// stall watchdog and the controller-side completion watchdog;
	// MaxRetriggers the per-update retrigger budget.
	Watchdog      time.Duration
	MaxRetriggers int
}

// DefaultSoakOpts returns the smoke-scale soak configuration: ~600
// steady-state flows on B4 for 10 virtual seconds. The headline
// benchmark (BENCH_soak) scales duration up.
func DefaultSoakOpts() SoakOpts {
	return SoakOpts{
		Churn: ChurnOpts{
			ArrivalRate:   300,
			MeanLifetime:  2 * time.Second,
			Duration:      10 * time.Second,
			Drain:         2 * time.Second,
			RerouteEvery:  40 * time.Millisecond,
			LatencyJitter: 0.2,
			RetireGrace:   50 * time.Millisecond,
		},
		Profiles:      []string{"squall"},
		AuditEvery:    200,
		Watchdog:      250 * time.Millisecond,
		MaxRetriggers: 25,
	}
}

// SoakResult is the merged outcome of a soak grid.
type SoakResult struct {
	Label  string
	Opts   SoakOpts
	Trials []runner.Result
	// Reports are the per-trial operator reports, index-aligned with
	// Trials (nil for failed trials).
	Reports []*soak.Report
}

// String renders the operator table: one row per (system × storm × run)
// cell with the headline SLOs — availability, completion quantiles,
// completion accounting, retrigger budget burn, episode recovery.
func (r *SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Soak: %s ==\n", r.Label)
	fmt.Fprintf(&b, "%-29s %-10s %8s %19s %13s %7s %7s %6s %7s %6s %7s %5s\n",
		"trial", "storm", "avail%", "p50/p99/p999(ms)", "done/trig",
		"confirm", "orphan", "stall", "retrig", "burn%", "recov", "viol")
	for i, t := range r.Trials {
		if t.Failed {
			fmt.Fprintf(&b, "%-29s FAILED: %s\n", t.Label, t.Err)
			continue
		}
		rep := r.Reports[i]
		if rep == nil {
			fmt.Fprintf(&b, "%-29s (no report)\n", t.Label)
			continue
		}
		recovered, episodes := 0, 0
		for _, cl := range rep.Classes {
			recovered += cl.Recovered
			episodes += cl.Episodes
		}
		fmt.Fprintf(&b, "%-29s %-10s %8.3f %6.2f/%5.2f/%5.2f %6d/%-6d %7d %7d %6d %7d %6.2f %3d/%-3d %5d\n",
			t.Label, rep.Profile, rep.AvailabilityPct,
			rep.Latency.P50Ms, rep.Latency.P99Ms, rep.Latency.P999Ms,
			rep.UpdatesCompleted, rep.UpdatesTriggered,
			rep.Confirming, rep.CrashOrphaned, rep.Stalled,
			rep.Retriggers, rep.BudgetBurnPct,
			recovered, episodes, rep.Violations.Total)
	}
	return b.String()
}

// soakSystems resolves the grid's system list: the paper's three-way
// comparison by default (the storm regime is where the decentralized
// baselines differ most).
func soakSystems(opt RunOptions) []SystemKind {
	if len(opt.Systems) > 0 {
		return opt.Systems
	}
	return []SystemKind{KindP4Update, KindEZSegway, KindCentral}
}

// soakMetrics flattens the report's headline numbers into the runner's
// scalar metric map (the JSON report itself rides in Metrics.Report).
func soakMetrics(rep *soak.Report) map[string]float64 {
	v := map[string]float64{
		"availability_pct":  rep.AvailabilityPct,
		"audited_sec":       rep.AuditedSec,
		"unavailable_sec":   rep.UnavailableSec,
		"audit_sweeps":      float64(rep.Sweeps),
		"arrivals":          float64(rep.Arrivals),
		"departures":        float64(rep.Departures),
		"retired":           float64(rep.Retired),
		"peak_live":         float64(rep.PeakLive),
		"end_live":          float64(rep.EndLive),
		"waves":             float64(rep.Waves),
		"waves_deferred":    float64(rep.WavesDeferred),
		"retire_deferrals":  float64(rep.RetireDeferrals),
		"updates_triggered": float64(rep.UpdatesTriggered),
		"updates_completed": float64(rep.UpdatesCompleted),
		"in_flight":         float64(rep.InFlight),
		"confirming":        float64(rep.Confirming),
		"crash_orphaned":    float64(rep.CrashOrphaned),
		"stalled":           float64(rep.Stalled),
		"retriggers":        float64(rep.Retriggers),
		"probe_retries":     float64(rep.ProbeRetries),
		"budget_burn_pct":   rep.BudgetBurnPct,
		"violations_total":  float64(rep.Violations.Total),
		"update_p50_ms":     rep.Latency.P50Ms,
		"update_p99_ms":     rep.Latency.P99Ms,
		"update_p999_ms":    rep.Latency.P999Ms,
	}
	if rep.Injection != nil {
		v["faults_dropped"] = float64(rep.Injection.Dropped + rep.Injection.PartitionDrops)
		v["faults_crashes"] = float64(rep.Injection.Crashes)
	}
	return v
}

// RunSoak runs the fabric-operator soak grid on topology builder mk:
// for every system, storm profile, and run, the streaming churn
// workload is sustained while the profile's compiled storm fires
// recurring fault episodes, the auditor sweeps every AuditEvery steps,
// and a flight recorder keeps the trailing event window for post-mortem.
// Every trial owns a private unfrozen topology (reroutes perturb link
// latencies in place); every system of a (profile, run) cell faces the
// byte-identical storm schedule. Trials are merged in index order, so
// reports are byte-identical across worker counts.
func RunSoak(mk func() *topo.Topology, label string, runs int, seed int64, so SoakOpts, opt RunOptions) (*SoakResult, error) {
	co := so.Churn
	if co.ArrivalRate <= 0 || co.Duration <= 0 || co.MeanLifetime <= 0 {
		return nil, fmt.Errorf("experiments: soak needs positive rate/lifetime/duration")
	}
	if so.AuditEvery <= 0 {
		so.AuditEvery = 200
	}
	if len(so.Profiles) == 0 {
		so.Profiles = []string{"squall"}
	}
	profiles := make([]faults.StormProfile, 0, len(so.Profiles))
	for _, name := range so.Profiles {
		p, ok := faults.LookupStorm(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown storm profile %q (have %s)",
				name, strings.Join(faults.StormNames(), ", "))
		}
		profiles = append(profiles, p)
	}

	res := &SoakResult{Label: label, Opts: so}
	bed := DefaultBedConfig()
	systems := soakSystems(opt)
	trials := make([]runner.Trial, 0, len(systems)*len(profiles)*runs)
	for _, kind := range systems {
		for _, profile := range profiles {
			for run := 0; run < runs; run++ {
				trialSeed := seed + int64(run)*7919
				g := mk()
				if co.LatencyJitter > 0 {
					traffic.JitterLatencies(g, trialSeed, co.LatencyJitter)
				}
				// The storm seed depends only on (profile, run): every
				// system of a cell faces the identical episode schedule.
				plan, episodes := faults.BuildStorm(g, trialSeed, co.Duration, profile)

				wcfg := bed.WiringConfig(kind, trialSeed)
				wcfg.Shards = opt.Shards
				wcfg.Faults = plan
				wcfg.AuditEvery = so.AuditEvery
				wcfg.WatchdogTimeout = so.Watchdog
				wcfg.ProbeTimeout = so.Watchdog
				wcfg.MaxRetriggers = so.MaxRetriggers
				// Appendix C: repeated reroute waves make back-to-back
				// dual-layer updates on one flow routine, and the base
				// algorithm's gateway rule parks the second one until "a
				// later configuration" — which never comes, because the
				// wave scan skips flows with an update in flight. The
				// chained-DL extension is the paper's answer for exactly
				// this always-on regime.
				wcfg.ChainedDL = true
				// Long soaks run far past the figure-scale event budget.
				wcfg.MaxEvents = 200_000_000
				wcfg.Trace = opt.Trace
				if wcfg.Trace == nil {
					// Always keep a flight-recorder ring for post-mortem:
					// on an audit violation the CLI dumps the trailing
					// window.
					wcfg.Trace = &trace.Options{}
				}

				sopt := co.soakOptions()
				sopt.Episodes = episodes
				sopt.MaxRetriggers = so.MaxRetriggers
				kindName := string(kind)
				profileName := profile.Name
				trials = append(trials, runner.BedTrial(
					fmt.Sprintf("soak/%s/%s/%s/run%d", label, kindName, profileName, run),
					kind.String(), g, wcfg,
					func(sys *wiring.System) (runner.Metrics, error) {
						w, err := soak.NewWorkload(g, trialSeed, sopt)
						if err != nil {
							return runner.Metrics{}, err
						}
						h := soak.NewHarness(sys, g, w, sopt)
						h.Start()
						sys.Eng.RunUntil(co.Duration + co.Drain)

						rep := h.Finish(kindName, profileName, trialSeed)
						raw, err := rep.Marshal()
						if err != nil {
							return runner.Metrics{}, err
						}
						return runner.Metrics{
							Samples: h.Samples(),
							Values:  soakMetrics(rep),
							Report:  raw,
						}, nil
					}))
			}
		}
	}
	res.Trials = opt.Pool().Run(trials)
	res.Reports = make([]*soak.Report, len(res.Trials))
	for i, t := range res.Trials {
		if t.Failed || len(t.Report) == 0 {
			continue
		}
		rep := new(soak.Report)
		if err := json.Unmarshal(t.Report, rep); err != nil {
			return nil, fmt.Errorf("experiments: trial %s report: %w", t.Label, err)
		}
		res.Reports[i] = rep
	}
	return res, nil
}
