package experiments

import (
	"bytes"
	"testing"
	"time"

	"p4update/internal/topo"
)

// smokeSoakOpts is the seconds-scale soak configuration used by the
// fixed-seed gate: ~225 steady-state flows on B4 for 4 virtual seconds
// under the squall storm (10% ambient loss+reorder, recurring loss
// bursts, crash/restore cycles, controller partitions).
func smokeSoakOpts() SoakOpts {
	so := DefaultSoakOpts()
	so.Churn.ArrivalRate = 150
	so.Churn.MeanLifetime = 1500 * time.Millisecond
	so.Churn.Duration = 4 * time.Second
	so.Churn.Drain = 1500 * time.Millisecond
	return so
}

// TestSoakSmoke is the acceptance gate: under the squall storm P4Update
// sustains ≥ 99% availability, completes every update not orphaned by a
// switch outage, and records zero invariant violations — while at least
// one baseline stalls or violates. Fixed seeds; the storm schedule is
// identical for every system.
func TestSoakSmoke(t *testing.T) {
	res, err := RunSoak(topo.B4, "B4", 1, 42, smokeSoakOpts(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var p4OK bool
	var baselineDegraded bool
	for i, tr := range res.Trials {
		if tr.Failed {
			t.Fatalf("%s failed: %s", tr.Label, tr.Err)
		}
		rep := res.Reports[i]
		if rep == nil {
			t.Fatalf("%s: no operator report", tr.Label)
		}
		t.Logf("%s: avail=%.3f%% done/trig=%d/%d orphan=%d stall=%d retrig=%d burn=%.2f%% viol=%d",
			tr.Label, rep.AvailabilityPct, rep.UpdatesCompleted, rep.UpdatesTriggered,
			rep.CrashOrphaned, rep.Stalled, rep.Retriggers, rep.BudgetBurnPct, rep.Violations.Total)

		if rep.Sweeps == 0 {
			t.Errorf("%s: auditor never swept", tr.Label)
		}
		if len(rep.Classes) == 0 || len(rep.Episodes) == 0 {
			t.Errorf("%s: report lacks per-class/per-episode SLO sections", tr.Label)
		}
		switch rep.System {
		case "p4update":
			if rep.AvailabilityPct >= 99 && rep.Stalled == 0 && rep.Violations.Total == 0 {
				p4OK = true
			} else {
				t.Errorf("p4update degraded: avail=%.3f%% stalled=%d violations=%d",
					rep.AvailabilityPct, rep.Stalled, rep.Violations.Total)
			}
			if rep.Retriggers == 0 {
				t.Error("p4update recorded no retriggers under squall — recovery machinery idle?")
			}
		default:
			if rep.Stalled > 0 || rep.Violations.Total > 0 {
				baselineDegraded = true
			}
		}
	}
	if !p4OK {
		t.Error("p4update did not meet the soak SLO")
	}
	if !baselineDegraded {
		t.Error("no baseline stalled or violated under squall — the storm is too gentle to discriminate")
	}
}

// TestSoakReportsDeterministicAcrossWorkers asserts byte-identical
// operator reports for worker counts {1, 2, 4, 8}.
func TestSoakReportsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	so := smokeSoakOpts()
	so.Churn.Duration = 2 * time.Second
	so.Churn.Drain = time.Second
	var base [][]byte
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := RunSoak(topo.B4, "B4", 1, 7, so, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports := make([][]byte, len(res.Trials))
		for i, tr := range res.Trials {
			if tr.Failed {
				t.Fatalf("workers=%d: %s failed: %s", workers, tr.Label, tr.Err)
			}
			reports[i] = tr.Report
		}
		if base == nil {
			base = reports
			continue
		}
		for i := range reports {
			if !bytes.Equal(base[i], reports[i]) {
				t.Fatalf("workers=%d: report %d differs from workers=1", workers, i)
			}
		}
	}
}

// TestSoakShardingFallback asserts that faulted soak trials refuse
// sharded execution: the fallback matrix forces the sequential engine,
// so every trial must report EffectiveShards == 1 even when 4 region
// workers were requested.
func TestSoakShardingFallback(t *testing.T) {
	so := smokeSoakOpts()
	so.Churn.Duration = time.Second
	so.Churn.Drain = 500 * time.Millisecond
	res, err := RunSoak(topo.B4, "B4", 1, 3, so, RunOptions{Shards: 4, Systems: []SystemKind{KindP4Update}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.Failed {
			t.Fatalf("%s failed: %s", tr.Label, tr.Err)
		}
		if tr.Shards != 1 {
			t.Errorf("%s: EffectiveShards = %d, want 1 (faulted trials must fall back to sequential)",
				tr.Label, tr.Shards)
		}
	}
}
