package experiments

import (
	"fmt"
	"testing"

	"p4update/internal/topo"
	"p4update/internal/traffic"
)

func TestContentionLevel(t *testing.T) {
	for _, util := range []float64{0.85, 0.95} {
		g := topo.B4()
		cfg := DefaultBedConfig()
		cfg.Congestion = true
		b := NewBed(KindP4Update, g, 7, cfg)
		tc := traffic.DefaultConfig()
		tc.Utilization = util
		flows, err := traffic.MultiFlowWorkload(g, newWorkloadRand(7), tc)
		if err != nil {
			t.Fatal(err)
		}
		b.Register(flows)
		for _, f := range flows {
			b.Trigger(f.ID(), f.New)
		}
		b.Eng.Run()
		var resub, parked uint64
		for _, sw := range b.Net.Switches() {
			resub += sw.Stats.Resubmissions
		}
		fmt.Printf("util=%.2f flows=%d resubmissions=%d parked=%d\n", util, len(flows), resub, parked)
	}
}
