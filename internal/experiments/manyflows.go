package experiments

import (
	"fmt"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/plancache"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// Fig7ManyFlows runs the many-flow scale scenario: nFlows simultaneous
// flow updates (the paper's regime is 100–1000) on one shared frozen
// topology, measuring the completion time of the last flow. Unlike the
// Fig. 7 multi-flow scenario, capacity enforcement is off — at this
// scale the interesting cost is coordinating hundreds of concurrent
// consistent updates, not congestion resolution — and flows carry unit
// sizes. The same per-run workload (same seed) is presented to every
// system; trials execute on the default parallel pool.
func Fig7ManyFlows(mk func() *topo.Topology, label string, fatTree bool, nFlows, runs int, seed int64) (*Fig7Result, error) {
	return Fig7ManyFlowsOpts(mk, label, fatTree, nFlows, runs, seed, RunOptions{})
}

// Fig7ManyFlowsOpts is Fig7ManyFlows with explicit execution options.
func Fig7ManyFlowsOpts(mk func() *topo.Topology, label string, fatTree bool, nFlows, runs int, seed int64, opt RunOptions) (*Fig7Result, error) {
	if nFlows <= 0 {
		return nil, fmt.Errorf("manyflows: need a positive flow count, got %d", nFlows)
	}
	res := &Fig7Result{Label: fmt.Sprintf("%s – %d flows", label, nFlows)}
	g := mk()
	g.Freeze()
	var candidates []topo.NodeID
	if fatTree {
		candidates = topo.EdgeSwitches(g)
	}
	plans := plancache.New(g)
	workloads := newWorkloadCache()
	runFig7Grid(res, runs, opt, func(kind SystemKind, run int) runner.Trial {
		cfg := DefaultBedConfig()
		cfg.FatTreeControl = fatTree
		wcfg := cfg.WiringConfig(kind, seed+int64(run))
		wcfg.Plans = plans
		wcfg.Trace = opt.Trace
		wcfg.Shards = opt.Shards
		return runner.BedTrial(
			fmt.Sprintf("%s/%s/run%02d", label, kind, run), kind.String(),
			g, wcfg,
			func(sys *wiring.System) (runner.Metrics, error) {
				b := &Bed{Kind: kind, System: sys}
				flows, err := workloads.get(int64(run), func() ([]traffic.FlowSpec, error) {
					return traffic.ManyFlowWorkload(g, newWorkloadRand(seed+int64(run)), nFlows, candidates)
				})
				if err != nil {
					return runner.Metrics{}, err
				}
				if err := b.Register(flows); err != nil {
					return runner.Metrics{}, err
				}
				updates := make([]*controlplane.UpdateStatus, 0, len(flows))
				for _, f := range flows {
					u, err := b.Trigger(f.ID(), f.New)
					if err != nil {
						return runner.Metrics{}, fmt.Errorf("%s: trigger: %w", kind, err)
					}
					if u != nil {
						updates = append(updates, u)
					}
				}
				b.Eng.Run()
				var last time.Duration
				for _, u := range updates {
					if !u.Done() {
						return runner.Metrics{}, nil // incomplete: failed run
					}
					if u.Completed > last {
						last = u.Completed
					}
				}
				if last == 0 {
					return runner.Metrics{}, nil
				}
				return runner.Metrics{Samples: []time.Duration{last}}, nil
			})
	})
	return res, nil
}
