package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/ezsegway"
	"p4update/internal/metrics"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// Fig8Row is one bar of the paper's Fig. 8: the ratio of control-plane
// preparation time between DL-P4Update and ez-Segway on one topology.
type Fig8Row struct {
	Topo         string
	Nodes, Edges int
	// Ratio is the mean over runs of (P4Update prep ÷ ez-Segway prep);
	// CI is the 99% confidence half-width.
	Ratio, CI float64
	// P4UPerUpdate / EZPerUpdate are mean wall-clock preparation times
	// per update.
	P4UPerUpdate, EZPerUpdate time.Duration
}

// Fig8Result is one subfigure (with or without congestion freedom).
type Fig8Result struct {
	Congestion bool
	Rows       []Fig8Row
	// Trials are the merged per-trial runner results (topology-major,
	// run-minor) for JSON export.
	Trials []runner.Result
}

// String renders the subfigure the way the paper annotates it: topology
// (nodes, edges) and the mean runtime ratio.
func (r *Fig8Result) String() string {
	var b strings.Builder
	title := "w/o congestion-freedom"
	if r.Congestion {
		title = "with congestion-freedom"
	}
	fmt.Fprintf(&b, "== Fig. 8: control-plane preparation ratio (%s) ==\n", title)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s (%2d, %2d)  ratio=%.4g ±%.2g   (P4Update %v/upd, ez-Segway %v/upd)\n",
			row.Topo, row.Nodes, row.Edges, row.Ratio, row.CI,
			row.P4UPerUpdate, row.EZPerUpdate)
	}
	return b.String()
}

// fig8Topologies are the four networks of Fig. 8 with their (nodes,
// edges) annotations.
func fig8Topologies() []func() *topo.Topology {
	return []func() *topo.Topology{topo.B4, topo.Internet2, topo.AttMpls, topo.Chinanet}
}

// Fig8 measures the control-plane preparation cost of `updates` flow
// updates, repeated `runs` times, on each evaluation topology. Without
// congestion freedom both systems compute per-flow labeling/segmentation;
// with congestion freedom ez-Segway additionally recomputes the global
// inter-flow dependency graph per update, which P4Update offloads to the
// data plane entirely.
func Fig8(congestion bool, updates, runs int, seed int64) (*Fig8Result, error) {
	return Fig8Opts(congestion, updates, runs, seed, RunOptions{})
}

// fig8Trial measures one run: `updates` preparations of both systems on
// one topology, returning the wall-clock totals as named values.
func fig8Trial(mk func() *topo.Topology, congestion bool, updates int, seed int64, run int) runner.Trial {
	g := mk()
	return runner.Trial{
		Label:  fmt.Sprintf("fig8/%s/run%02d", g.Name, run),
		System: "prep-ratio",
		Seed:   seed + int64(run),
		Run: func() (runner.Metrics, error) {
			rng := newWorkloadRand(seed + int64(run))
			// The network's standing flows: one per node to a random
			// destination (old = shortest, new = 2nd-shortest).
			cfg := traffic.DefaultConfig()
			cfg.Utilization = 0.6
			flows, err := traffic.MultiFlowWorkload(g, rng, cfg)
			if err != nil {
				return runner.Metrics{}, fmt.Errorf("fig8 %s: %w", g.Name, err)
			}
			updateSet := make([]ezsegway.FlowUpdate, len(flows))
			for i, f := range flows {
				updateSet[i] = ezsegway.FlowUpdate{
					Flow: f.ID(), Old: f.Old, New: f.New, SizeK: f.SizeK,
				}
			}
			var p4u, ez time.Duration
			for i := 0; i < updates; i++ {
				f := flows[rng.Intn(len(flows))]
				oldP, newP := f.Old, f.New
				if i%2 == 1 {
					oldP, newP = newP, oldP // alternate direction
				}
				start := time.Now()
				if _, err := controlplane.PreparePlan(g, f.ID(), oldP, newP, uint32(i+2), f.SizeK, nil); err != nil {
					return runner.Metrics{}, fmt.Errorf("fig8 %s p4u: %w", g.Name, err)
				}
				p4u += time.Since(start)

				start = time.Now()
				if _, err := ezsegway.PreparePlan(g, f.ID(), oldP, newP, uint32(i+2), f.SizeK, 0); err != nil {
					return runner.Metrics{}, fmt.Errorf("fig8 %s ez: %w", g.Name, err)
				}
				if congestion {
					_, _ = ezsegway.ComputeCongestionDependencies(g, updateSet)
				}
				ez += time.Since(start)
			}
			m := runner.Metrics{Values: map[string]float64{
				"p4u_ns": float64(p4u),
				"ez_ns":  float64(ez),
			}}
			if ez > 0 {
				m.Values["ratio"] = float64(p4u) / float64(ez)
			}
			return m, nil
		},
	}
}

// Fig8Opts is Fig8 with explicit execution options: the (topology × run)
// grid shards across the trial pool; rows merge in trial-index order.
// Note the per-trial metrics are wall-clock measurements, so heavily
// oversubscribed workers can inflate both systems' absolute times — the
// reported quantity is their ratio, measured within one trial, which is
// robust to that.
func Fig8Opts(congestion bool, updates, runs int, seed int64, opt RunOptions) (*Fig8Result, error) {
	res := &Fig8Result{Congestion: congestion}
	topos := fig8Topologies()
	trials := make([]runner.Trial, 0, len(topos)*runs)
	for _, mk := range topos {
		for run := 0; run < runs; run++ {
			trials = append(trials, fig8Trial(mk, congestion, updates, seed, run))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	for ti, mk := range topos {
		g := mk()
		var ratios []float64
		var p4uTotal, ezTotal time.Duration
		for run := 0; run < runs; run++ {
			r := res.Trials[ti*runs+run]
			if r.Failed {
				return nil, fmt.Errorf("fig8 %s: %s", g.Name, r.Err)
			}
			if ratio, ok := r.Values["ratio"]; ok {
				ratios = append(ratios, ratio)
			}
			p4uTotal += time.Duration(r.Values["p4u_ns"])
			ezTotal += time.Duration(r.Values["ez_ns"])
		}
		mean, ci := metrics.MeanCI(ratios)
		totalUpdates := updates * runs
		res.Rows = append(res.Rows, Fig8Row{
			Topo:         g.Name,
			Nodes:        g.NumNodes(),
			Edges:        g.NumLinks(),
			Ratio:        mean,
			CI:           ci,
			P4UPerUpdate: p4uTotal / time.Duration(totalUpdates),
			EZPerUpdate:  ezTotal / time.Duration(totalUpdates),
		})
	}
	return res, nil
}
