package experiments

import (
	"strings"
	"testing"
	"time"

	"p4update/internal/topo"
)

func TestFig2EZSegwayLoopsAndLoses(t *testing.T) {
	r, err := Fig2(KindEZSegway, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DupAtV1 == 0 {
		t.Error("ez-Segway: expected looped (duplicate) packets at v1")
	}
	if r.LostAtV4 == 0 {
		t.Error("ez-Segway: expected TTL losses at v4")
	}
	if len(r.V4) == 0 {
		t.Error("ez-Segway: no packets delivered at all")
	}
}

func TestFig2P4UpdateConsistent(t *testing.T) {
	r, err := Fig2(KindP4Update, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DupAtV1 != 0 {
		t.Errorf("P4Update: %d duplicate packets at v1, want 0", r.DupAtV1)
	}
	if r.LostAtV4 != 0 {
		t.Errorf("P4Update: %d lost packets at v4, want 0", r.LostAtV4)
	}
	if r.Sent == 0 || len(r.V4) != r.Sent {
		t.Errorf("P4Update: sent=%d delivered=%d, want all delivered once", r.Sent, len(r.V4))
	}
}

func TestFig4FastForwardBeatWaiting(t *testing.T) {
	r, err := Fig4(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.P4Update.Mean() >= r.EZSegway.Mean() {
		t.Errorf("P4Update U3 mean %v not faster than ez-Segway %v",
			r.P4Update.Mean(), r.EZSegway.Mean())
	}
	// The paper reports about 4x; require at least 2x for the shape.
	if f := float64(r.EZSegway.Mean()) / float64(r.P4Update.Mean()); f < 2 {
		t.Errorf("fast-forward speed-up %.2fx, want >= 2x", f)
	}
	if !strings.Contains(r.String(), "speed-up") {
		t.Error("summary missing speed-up line")
	}
}

func TestFig7SingleFlowSynthetic(t *testing.T) {
	r, err := Fig7SingleFlow(topo.Synthetic, "synthetic", 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	means := map[SystemKind]time.Duration{}
	for _, s := range r.Series {
		if s.Failed > 0 {
			t.Fatalf("%v: %d failed runs", s.System, s.Failed)
		}
		if s.CDF.N() != 5 {
			t.Fatalf("%v: %d samples, want 5", s.System, s.CDF.N())
		}
		means[s.System] = s.CDF.Mean()
	}
	// Ordering of the paper: P4Update < ez-Segway < Central.
	if !(means[KindP4Update] < means[KindEZSegway]) {
		t.Errorf("P4Update (%v) not faster than ez-Segway (%v)",
			means[KindP4Update], means[KindEZSegway])
	}
	if !(means[KindEZSegway] < means[KindCentral]) {
		t.Errorf("ez-Segway (%v) not faster than Central (%v)",
			means[KindEZSegway], means[KindCentral])
	}
}

func TestFig7MultiFlowSynthetic(t *testing.T) {
	r, err := Fig7MultiFlow(topo.Synthetic, "synthetic", false, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if s.Failed > 0 {
			t.Fatalf("%v: %d failed runs", s.System, s.Failed)
		}
	}
	out := r.String()
	if !strings.Contains(out, "P4Update vs ez-Segway") {
		t.Error("summary missing improvement line")
	}
	if rows := r.CDFSeries(); !strings.Contains(rows, "fraction") {
		t.Error("CDF series missing header")
	}
}

func TestFig8WithoutCongestion(t *testing.T) {
	r, err := Fig8(false, 50, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 topologies", len(r.Rows))
	}
	sizes := [][2]int{{12, 19}, {16, 26}, {25, 56}, {38, 62}}
	for i, row := range r.Rows {
		if row.Nodes != sizes[i][0] || row.Edges != sizes[i][1] {
			t.Errorf("%s: (%d,%d), want (%d,%d)", row.Topo, row.Nodes, row.Edges, sizes[i][0], sizes[i][1])
		}
		if row.Ratio <= 0 {
			t.Errorf("%s: nonpositive ratio %f", row.Topo, row.Ratio)
		}
		// Without congestion both preparations are the same order of
		// magnitude (the paper reports ~0.7).
		if row.Ratio > 3 {
			t.Errorf("%s: ratio %f implausibly large", row.Topo, row.Ratio)
		}
	}
}

func TestFig8WithCongestion(t *testing.T) {
	r, err := Fig8(true, 30, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// With congestion freedom ez-Segway pays the dependency graph:
		// P4Update must be dramatically cheaper (paper: 0.02 .. 0.002).
		if row.Ratio > 0.5 {
			t.Errorf("%s: congestion ratio %f, want << 1", row.Topo, row.Ratio)
		}
	}
	// Ratios shrink as networks grow (more standing flows): the largest
	// topology must show a smaller ratio than the smallest.
	if first, last := r.Rows[0].Ratio, r.Rows[3].Ratio; last >= first {
		t.Errorf("ratio should shrink with topology size: %f (B4) vs %f (Chinanet)", first, last)
	}
}

func TestSystemKindString(t *testing.T) {
	cases := []struct {
		kind SystemKind
		want string
	}{
		{KindP4Update, "P4Update"},
		{KindEZSegway, "ez-Segway"},
		{KindCentral, "Central"},
		{KindLocalVerify, "LocalVerify"},
		{KindPPCU, "PPCU"},
		{KindOptOracle, "OptOracle"},
		{SystemKind(""), "unknown"},
		{SystemKind("no-such-system"), "no-such-system"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("SystemKind(%q).String() = %q, want %q", string(c.kind), got, c.want)
		}
	}
}

func TestFig7ParallelMatchesSequential(t *testing.T) {
	// The determinism guarantee of the trial runner: results are merged by
	// trial index, so the parallel run is byte-identical to the sequential
	// one regardless of completion order.
	seq, err := Fig7SingleFlowOpts(topo.Synthetic, "synthetic", 4, 100, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig7SingleFlowOpts(topo.Synthetic, "synthetic", 4, 100, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel summary differs from sequential:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
			seq.String(), par.String())
	}
	if seq.CDFSeries() != par.CDFSeries() {
		t.Error("parallel CDF series differs from sequential")
	}
}
