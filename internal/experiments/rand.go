package experiments

import "math/rand"

// newWorkloadRand derives the per-run workload RNG. It is separate from
// the simulation engine's RNG so every system sees the identical workload
// for a given run index.
func newWorkloadRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x6f10))
}
