package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/metrics"
	"p4update/internal/plancache"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// Series is one system's empirical update-time distribution.
type Series struct {
	System  SystemKind
	CDF     *metrics.CDF
	Failed  int // runs that did not complete (should be zero)
	Samples []time.Duration
}

// Fig7Result is one subplot of the paper's Fig. 7.
type Fig7Result struct {
	Label  string
	Series []Series
	// Trials are the merged per-trial runner results (index order:
	// system-major, run-minor) for JSON export.
	Trials []runner.Result
}

// String renders the subplot in the paper's reporting style: one summary
// row per system plus the relative improvement of P4Update over both
// competitors (cf. "fat-tree: −28.6%, B4: −39.1%, Internet2: −31.4%").
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 7: %s ==\n", r.Label)
	var p4u, ez time.Duration
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-10s %s", s.System, s.CDF.Summary())
		if s.Failed > 0 {
			fmt.Fprintf(&b, "  FAILED=%d", s.Failed)
		}
		b.WriteByte('\n')
		switch s.System {
		case KindP4Update:
			p4u = s.CDF.Mean()
		case KindEZSegway:
			ez = s.CDF.Mean()
		}
	}
	if p4u > 0 && ez > 0 {
		fmt.Fprintf(&b, "P4Update vs ez-Segway (mean): %+.1f%%\n",
			metrics.Improvement(p4u, ez))
	}
	return b.String()
}

// CDFSeries renders per-system CDF rows for plotting.
func (r *Fig7Result) CDFSeries() string {
	var b strings.Builder
	for _, s := range r.Series {
		fmt.Fprintf(&b, "# %s — %s (ms, fraction)\n", r.Label, s.System)
		b.WriteString(s.CDF.Rows())
	}
	return b.String()
}

// singleFlowSpec picks the paper's engineered single-flow scenario: the
// exact Fig-1 paths on the synthetic topology, and a segmented long flow
// elsewhere.
func singleFlowSpec(g *topo.Topology) (traffic.FlowSpec, error) {
	if g.Name == "synthetic" {
		oldP, newP := topo.SyntheticPaths()
		return traffic.FlowSpec{Src: oldP[0], Dst: oldP[len(oldP)-1], Old: oldP, New: newP, SizeK: 1000}, nil
	}
	return traffic.SegmentedSingleFlow(g, 1000)
}

// runFig7Grid shards the (system × run) trial grid across the pool and
// merges the results back in trial-index order (system-major, run-minor
// — exactly the order the sequential loops produced), so the rendered
// figure is byte-identical whatever the worker count.
func runFig7Grid(res *Fig7Result, runs int, opt RunOptions, mkTrial func(kind SystemKind, run int) runner.Trial) {
	systems := opt.systems()
	trials := make([]runner.Trial, 0, len(systems)*runs)
	for _, kind := range systems {
		for run := 0; run < runs; run++ {
			trials = append(trials, mkTrial(kind, run))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	for ki, kind := range systems {
		var samples []time.Duration
		failed := 0
		for run := 0; run < runs; run++ {
			r := res.Trials[ki*runs+run]
			// A trial without samples did not complete its update; a
			// Failed trial crashed or timed out. Both count as failed
			// runs instead of aborting the figure.
			if r.Failed || len(r.Samples) == 0 {
				failed++
				continue
			}
			samples = append(samples, r.Samples...)
		}
		res.Series = append(res.Series, Series{
			System: kind, CDF: metrics.NewCDF(samples), Failed: failed, Samples: samples,
		})
	}
}

// Fig7SingleFlow runs the single-flow scenario on topology builder mk:
// one long flow (old = shortest, new = 2nd-shortest between the farthest
// pair), per-node exp(nodeDelay) rule-install delays, `runs` repetitions.
// Trials execute on the default parallel pool (one worker per core).
func Fig7SingleFlow(mk func() *topo.Topology, label string, runs int, seed int64) (*Fig7Result, error) {
	return Fig7SingleFlowOpts(mk, label, runs, seed, RunOptions{})
}

// Fig7SingleFlowOpts is Fig7SingleFlow with explicit execution options.
func Fig7SingleFlowOpts(mk func() *topo.Topology, label string, runs int, seed int64, opt RunOptions) (*Fig7Result, error) {
	res := &Fig7Result{Label: label + " – single flow"}
	// One topology for the whole grid: frozen so all trial workers share
	// it (and its snapshot path oracle) read-only, and the flow spec is
	// derived from the same instance instead of a throwaway build.
	g := mk()
	g.Freeze()
	spec, err := singleFlowSpec(g) // deterministic; shared across runs
	if err != nil {
		return nil, err
	}
	plans := plancache.New(g)
	runFig7Grid(res, runs, opt, func(kind SystemKind, run int) runner.Trial {
		cfg := DefaultBedConfig()
		cfg.NodeDelayMean = 100 * time.Millisecond
		wcfg := cfg.WiringConfig(kind, seed+int64(run))
		wcfg.Plans = plans
		wcfg.Trace = opt.Trace
		wcfg.Shards = opt.Shards
		return runner.BedTrial(
			fmt.Sprintf("%s/%s/run%02d", label, kind, run), kind.String(),
			g, wcfg,
			func(sys *wiring.System) (runner.Metrics, error) {
				b := &Bed{Kind: kind, System: sys}
				if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
					return runner.Metrics{}, err
				}
				u, err := b.Trigger(spec.ID(), spec.New)
				if err != nil {
					return runner.Metrics{}, err
				}
				b.Eng.Run()
				if u == nil || !u.Done() {
					return runner.Metrics{}, nil // incomplete: failed run
				}
				return runner.Metrics{Samples: []time.Duration{u.Completed - u.Sent}}, nil
			})
	})
	return res, nil
}

// Fig7MultiFlow runs the multiple-flow scenario: every candidate node
// picks a random destination (old = shortest, new = 2nd-shortest), flow
// sizes follow the gravity model scaled near capacity, congestion freedom
// is enforced, and the measurement is the completion time of the last
// flow. The same per-run workload (same seed) is presented to every
// system. Trials execute on the default parallel pool.
func Fig7MultiFlow(mk func() *topo.Topology, label string, fatTree bool, runs int, seed int64) (*Fig7Result, error) {
	return Fig7MultiFlowOpts(mk, label, fatTree, runs, seed, RunOptions{})
}

// Fig7MultiFlowOpts is Fig7MultiFlow with explicit execution options.
func Fig7MultiFlowOpts(mk func() *topo.Topology, label string, fatTree bool, runs int, seed int64, opt RunOptions) (*Fig7Result, error) {
	res := &Fig7Result{Label: label + " – multiple flows"}
	g := mk()
	g.Freeze()
	var candidates []topo.NodeID
	if fatTree {
		candidates = topo.EdgeSwitches(g)
	}
	plans := plancache.New(g)
	workloads := newWorkloadCache()
	runFig7Grid(res, runs, opt, func(kind SystemKind, run int) runner.Trial {
		cfg := DefaultBedConfig()
		cfg.Congestion = true
		cfg.FatTreeControl = fatTree
		wcfg := cfg.WiringConfig(kind, seed+int64(run))
		wcfg.Plans = plans
		wcfg.Trace = opt.Trace
		wcfg.Shards = opt.Shards
		return runner.BedTrial(
			fmt.Sprintf("%s/%s/run%02d", label, kind, run), kind.String(),
			g, wcfg,
			func(sys *wiring.System) (runner.Metrics, error) {
				b := &Bed{Kind: kind, System: sys}
				// Workload depends only on the run index so each system
				// sees the identical scenario; the cache generates it once
				// per run and shares it (read-only) across the systems.
				flows, err := workloads.get(int64(run), func() ([]traffic.FlowSpec, error) {
					tcfg := traffic.DefaultConfig()
					tcfg.Candidates = candidates
					return traffic.MultiFlowWorkload(g, newWorkloadRand(seed+int64(run)), tcfg)
				})
				if err != nil {
					return runner.Metrics{}, err
				}
				if err := b.Register(flows); err != nil {
					return runner.Metrics{}, err
				}
				var updates []*controlplane.UpdateStatus
				for _, f := range flows {
					u, err := b.Trigger(f.ID(), f.New)
					if err != nil {
						return runner.Metrics{}, fmt.Errorf("%s: trigger: %w", kind, err)
					}
					if u != nil {
						updates = append(updates, u)
					}
				}
				b.Eng.Run()
				var last time.Duration
				for _, u := range updates {
					if !u.Done() {
						return runner.Metrics{}, nil // incomplete: failed run
					}
					if u.Completed > last {
						last = u.Completed
					}
				}
				if last == 0 {
					return runner.Metrics{}, nil
				}
				return runner.Metrics{Samples: []time.Duration{last}}, nil
			})
	})
	return res, nil
}
