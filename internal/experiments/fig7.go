package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/metrics"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// Series is one system's empirical update-time distribution.
type Series struct {
	System  SystemKind
	CDF     *metrics.CDF
	Failed  int // runs that did not complete (should be zero)
	Samples []time.Duration
}

// Fig7Result is one subplot of the paper's Fig. 7.
type Fig7Result struct {
	Label  string
	Series []Series
}

// String renders the subplot in the paper's reporting style: one summary
// row per system plus the relative improvement of P4Update over both
// competitors (cf. "fat-tree: −28.6%, B4: −39.1%, Internet2: −31.4%").
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 7: %s ==\n", r.Label)
	var p4u, ez time.Duration
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-10s %s", s.System, s.CDF.Summary())
		if s.Failed > 0 {
			fmt.Fprintf(&b, "  FAILED=%d", s.Failed)
		}
		b.WriteByte('\n')
		switch s.System {
		case KindP4Update:
			p4u = s.CDF.Mean()
		case KindEZSegway:
			ez = s.CDF.Mean()
		}
	}
	if p4u > 0 && ez > 0 {
		fmt.Fprintf(&b, "P4Update vs ez-Segway (mean): %+.1f%%\n",
			metrics.Improvement(p4u, ez))
	}
	return b.String()
}

// CDFSeries renders per-system CDF rows for plotting.
func (r *Fig7Result) CDFSeries() string {
	var b strings.Builder
	for _, s := range r.Series {
		fmt.Fprintf(&b, "# %s — %s (ms, fraction)\n", r.Label, s.System)
		b.WriteString(s.CDF.Rows())
	}
	return b.String()
}

// singleFlowSpec picks the paper's engineered single-flow scenario: the
// exact Fig-1 paths on the synthetic topology, and a segmented long flow
// elsewhere.
func singleFlowSpec(g *topo.Topology) (traffic.FlowSpec, error) {
	if g.Name == "synthetic" {
		oldP, newP := topo.SyntheticPaths()
		return traffic.FlowSpec{Src: oldP[0], Dst: oldP[len(oldP)-1], Old: oldP, New: newP, SizeK: 1000}, nil
	}
	return traffic.SegmentedSingleFlow(g, 1000)
}

// Fig7SingleFlow runs the single-flow scenario on topology builder mk:
// one long flow (old = shortest, new = 2nd-shortest between the farthest
// pair), per-node exp(nodeDelay) rule-install delays, `runs` repetitions.
func Fig7SingleFlow(mk func() *topo.Topology, label string, runs int, seed int64) (*Fig7Result, error) {
	res := &Fig7Result{Label: label + " – single flow"}
	g := mk()
	spec, err := singleFlowSpec(g) // deterministic; reuse across runs
	if err != nil {
		return nil, err
	}
	for _, kind := range AllSystems {
		var samples []time.Duration
		failed := 0
		for run := 0; run < runs; run++ {
			cfg := DefaultBedConfig()
			cfg.NodeDelayMean = 100 * time.Millisecond
			b := NewBed(kind, g, seed+int64(run), cfg)
			if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
				return nil, err
			}
			u, err := b.Trigger(spec.ID(), spec.New)
			if err != nil {
				return nil, err
			}
			b.Eng.Run()
			if u == nil || !u.Done() {
				failed++
				continue
			}
			samples = append(samples, u.Completed-u.Sent)
		}
		res.Series = append(res.Series, Series{
			System: kind, CDF: metrics.NewCDF(samples), Failed: failed, Samples: samples,
		})
	}
	return res, nil
}

// Fig7MultiFlow runs the multiple-flow scenario: every candidate node
// picks a random destination (old = shortest, new = 2nd-shortest), flow
// sizes follow the gravity model scaled near capacity, congestion freedom
// is enforced, and the measurement is the completion time of the last
// flow. The same per-run workload (same seed) is presented to every
// system.
func Fig7MultiFlow(mk func() *topo.Topology, label string, fatTree bool, runs int, seed int64) (*Fig7Result, error) {
	res := &Fig7Result{Label: label + " – multiple flows"}
	for _, kind := range AllSystems {
		var samples []time.Duration
		failed := 0
		for run := 0; run < runs; run++ {
			g := mk()
			cfg := DefaultBedConfig()
			cfg.Congestion = true
			cfg.FatTreeControl = fatTree
			b := NewBed(kind, g, seed+int64(run), cfg)

			tcfg := traffic.DefaultConfig()
			if fatTree {
				tcfg.Candidates = topo.EdgeSwitches(g)
			}
			// Workload depends only on the run index so each system sees
			// the identical scenario.
			wrng := newWorkloadRand(seed + int64(run))
			flows, err := traffic.MultiFlowWorkload(g, wrng, tcfg)
			if err != nil {
				return nil, err
			}
			if err := b.Register(flows); err != nil {
				return nil, err
			}
			var updates []*controlplane.UpdateStatus
			ok := true
			var ids []packet.FlowID
			for _, f := range flows {
				u, err := b.Trigger(f.ID(), f.New)
				if err != nil {
					return nil, fmt.Errorf("%s: trigger: %w", kind, err)
				}
				if u != nil {
					updates = append(updates, u)
				}
				ids = append(ids, f.ID())
			}
			b.Eng.Run()
			var last time.Duration
			for _, u := range updates {
				if !u.Done() {
					ok = false
					break
				}
				if u.Completed > last {
					last = u.Completed
				}
			}
			_ = ids
			if !ok || last == 0 {
				failed++
				continue
			}
			samples = append(samples, last)
		}
		res.Series = append(res.Series, Series{
			System: kind, CDF: metrics.NewCDF(samples), Failed: failed, Samples: samples,
		})
	}
	return res, nil
}
