package experiments

import (
	"testing"
	"time"

	"p4update/internal/plancache"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// runBenchTrial executes one Fig-7 synthetic single-flow P4Update trial,
// optionally with a flight recorder attached.
func runBenchTrial(tb testing.TB, g *topo.Topology, plans *plancache.Cache, spec traffic.FlowSpec, tr *trace.Options) *wiring.System {
	cfg := DefaultBedConfig()
	cfg.NodeDelayMean = 100 * time.Millisecond
	wcfg := cfg.WiringConfig(KindP4Update, 1)
	wcfg.Plans = plans
	wcfg.Trace = tr
	bed := &Bed{Kind: KindP4Update, System: wiring.New(g, wcfg)}
	if err := bed.Register([]traffic.FlowSpec{spec}); err != nil {
		tb.Fatal(err)
	}
	u, err := bed.Trigger(spec.ID(), spec.New)
	if err != nil {
		tb.Fatal(err)
	}
	bed.Eng.Run()
	if u == nil || !u.Done() {
		tb.Fatal("benchmark trial did not complete")
	}
	return bed.System
}

func benchFig7Trial(b *testing.B, tr *trace.Options) {
	g := topo.Synthetic()
	g.Freeze()
	spec, err := singleFlowSpec(g)
	if err != nil {
		b.Fatal(err)
	}
	plans := plancache.New(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchTrial(b, g, plans, spec, tr)
	}
}

// BenchmarkFig7TrialUntraced is the zero-overhead baseline: the recorder
// is nil, so every trace call must reduce to a nil check.
func BenchmarkFig7TrialUntraced(b *testing.B) { benchFig7Trial(b, nil) }

// BenchmarkFig7TrialTraced runs the same trial with the flight recorder
// attached, bounding the cost of tracing a trial end to end.
func BenchmarkFig7TrialTraced(b *testing.B) { benchFig7Trial(b, &trace.Options{}) }

// TestTraceZeroVirtualOverhead locks in that attaching the recorder is
// pure observation: the traced trial must make exactly the same
// simulation — same quiescence instant, same event count, same update
// time — as the untraced one.
func TestTraceZeroVirtualOverhead(t *testing.T) {
	g := topo.Synthetic()
	g.Freeze()
	spec, err := singleFlowSpec(g)
	if err != nil {
		t.Fatal(err)
	}
	plans := plancache.New(g)
	plain := runBenchTrial(t, g, plans, spec, nil)
	traced := runBenchTrial(t, g, plans, spec, &trace.Options{})
	if plain.Trace != nil {
		t.Error("untraced trial carries a recorder")
	}
	if traced.Trace == nil || traced.Trace.Recorded() == 0 {
		t.Fatal("traced trial recorded no events")
	}
	if a, b := plain.Eng.Now(), traced.Eng.Now(); a != b {
		t.Errorf("virtual quiescence differs: untraced %v, traced %v", a, b)
	}
	if a, b := plain.Eng.Steps(), traced.Eng.Steps(); a != b {
		t.Errorf("event count differs: untraced %d, traced %d", a, b)
	}
}
