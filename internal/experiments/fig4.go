package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/metrics"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// fig4Topology is the six-node network of §4.2. Paths:
//
//	V1 (initial): 0,1,2,3,4,5
//	V2 (complex): 0,2,1,4,3,5 — rule changes at every hop, with the two
//	              backward segments {2,1} and {4,3}
//	V3 (simple):  0,4,5
func fig4Topology() (g *topo.Topology, v1, v2, v3 []topo.NodeID) {
	g = topo.New("fig4")
	for i := 0; i < 6; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 0, 0)
	}
	const lat = 20 * time.Millisecond
	for _, e := range [][2]topo.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 2}, {1, 4}, {3, 5}, {0, 4},
	} {
		g.AddLink(e[0], e[1], lat, topo.DefaultWANCapacity)
	}
	return g,
		[]topo.NodeID{0, 1, 2, 3, 4, 5},
		[]topo.NodeID{0, 2, 1, 4, 3, 5},
		[]topo.NodeID{0, 4, 5}
}

// Fig4Result reproduces the paper's Fig. 4: the CDF of the completion
// time of update U3, requested while the complex U2 is still in flight.
// P4Update fast-forwards; ez-Segway must wait for U2 to finish.
type Fig4Result struct {
	P4Update *metrics.CDF
	EZSegway *metrics.CDF
}

// String renders the comparison with the speed-up factor (the paper
// reports ≈4×).
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("== Fig. 4: two sequential updates (U3 completion) ==\n")
	fmt.Fprintf(&b, "%-10s %s\n", "P4Update", r.P4Update.Summary())
	fmt.Fprintf(&b, "%-10s %s\n", "ez-Segway", r.EZSegway.Summary())
	if m := r.P4Update.Mean(); m > 0 {
		fmt.Fprintf(&b, "speed-up (mean): %.1fx\n",
			float64(r.EZSegway.Mean())/float64(m))
	}
	return b.String()
}

// Fig4 runs the fast-forward scenario `runs` times per system.
func Fig4(runs int, seed int64) (*Fig4Result, error) {
	run := func(kind SystemKind, s int64) (time.Duration, error) {
		g, v1, v2, v3 := fig4Topology()
		cfg := DefaultBedConfig()
		cfg.NodeDelayMean = 100 * time.Millisecond
		b := NewBed(kind, g, s, cfg)
		if err := b.Register([]traffic.FlowSpec{{Src: 0, Dst: 5, Old: v1, SizeK: 1000}}); err != nil {
			return 0, err
		}
		f := traffic.FlowSpec{Src: 0, Dst: 5}.ID()
		if _, err := b.Trigger(f, v2); err != nil {
			return 0, err
		}
		// The controller realizes U3 is preferable 10 ms later, while U2
		// is still deploying.
		var requestAt time.Duration
		var u3 *controlplane.UpdateStatus
		b.Eng.Schedule(10*time.Millisecond, func() {
			requestAt = b.Eng.Now()
			u, err := b.Trigger(f, v3)
			if err != nil {
				return
			}
			// Under ez-Segway this status starts Queued (U2 still in
			// flight) and is filled in when the deferred U3 launches.
			u3 = u
		})
		b.Eng.Run()
		if u3 == nil || !u3.Done() {
			return 0, fmt.Errorf("%v: U3 did not complete", kind)
		}
		return u3.Completed - requestAt, nil
	}

	res := &Fig4Result{}
	var p4u, ez []time.Duration
	for i := 0; i < runs; i++ {
		d, err := run(KindP4Update, seed+int64(i))
		if err != nil {
			return nil, err
		}
		p4u = append(p4u, d)
		d, err = run(KindEZSegway, seed+int64(i))
		if err != nil {
			return nil, err
		}
		ez = append(ez, d)
	}
	res.P4Update = metrics.NewCDF(p4u)
	res.EZSegway = metrics.NewCDF(ez)
	return res, nil
}
