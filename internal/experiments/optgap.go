package experiments

import (
	"fmt"
	"strings"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/metrics"
	"p4update/internal/optoracle"
	"p4update/internal/plancache"
	"p4update/internal/runner"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// OptGapSeries is one system's round-count profile against the oracle
// bound: how many commit rounds its executions actually took, relative
// to the minimal schedule the offline oracle proves sufficient for the
// same path pairs.
type OptGapSeries struct {
	System SystemKind
	CDF    *metrics.CDF
	Failed int
	// Rounds and Bound are the per-trial means of the measured commit
	// rounds and the oracle's lower bound; Gap is their ratio (1.0 =
	// provably round-optimal executions).
	Rounds float64
	Bound  float64
	Gap    float64
	// Violations counts trials whose measured rounds fell below the
	// bound — impossible if both the tracker and the oracle are correct,
	// so any nonzero value is a bug, not a result.
	Violations int
}

// OptGapResult is one optimality-gap table (the fig7-style evaluation
// extended with the oracle column).
type OptGapResult struct {
	Label  string
	Series []OptGapSeries
	// Violations totals the per-series bound violations (must be 0).
	Violations int
	// Trials are the merged per-trial runner results (system-major, run-
	// minor); each trial's Extra carries "rounds" and "opt_bound".
	Trials []runner.Result
}

// String renders the table: one row per system with the measured
// update-time summary, mean commit rounds, the oracle bound, and the
// optimality gap.
func (r *OptGapResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Optimality gap: %s ==\n", r.Label)
	fmt.Fprintf(&b, "%-11s %-44s %8s %8s %8s\n", "system", "update time", "rounds", "opt", "gap")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-11s %-44s %8.2f %8.2f %7.2fx", s.System, s.CDF.Summary(), s.Rounds, s.Bound, s.Gap)
		if s.Failed > 0 {
			fmt.Fprintf(&b, "  FAILED=%d", s.Failed)
		}
		if s.Violations > 0 {
			fmt.Fprintf(&b, "  BOUND-VIOLATIONS=%d", s.Violations)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "round-bound violations: %d\n", r.Violations)
	return b.String()
}

// roundExtras scores one completed update against the oracle: measured
// commit rounds from the tracker, the oracle bound for the path pair,
// and whether the bound was violated.
func roundExtras(sys *wiring.System, plans *plancache.Cache, g *topo.Topology,
	f traffic.FlowSpec, version uint32, extra map[string]float64) {
	measured := float64(sys.Rounds.Rounds(f.ID(), version))
	bound := float64(optoracle.RoundsCached(plans, g, f.Old, f.New))
	extra["rounds"] += measured
	extra["opt_bound"] += bound
	if measured < bound {
		extra["bound_violations"]++
	}
}

// aggregateOptGap folds the merged trial grid into per-system series
// (same system-major trial order as runFig7Grid).
func aggregateOptGap(res *OptGapResult, systems []SystemKind, runs int) {
	for ki, kind := range systems {
		s := OptGapSeries{System: kind}
		var samples []time.Duration
		var rounds, bound float64
		completed := 0
		for run := 0; run < runs; run++ {
			r := res.Trials[ki*runs+run]
			if r.Failed || len(r.Samples) == 0 {
				s.Failed++
				continue
			}
			samples = append(samples, r.Samples...)
			completed++
			rounds += r.Extra["rounds"]
			bound += r.Extra["opt_bound"]
			s.Violations += int(r.Extra["bound_violations"])
		}
		s.CDF = metrics.NewCDF(samples)
		if completed > 0 {
			s.Rounds = rounds / float64(completed)
			s.Bound = bound / float64(completed)
		}
		if s.Bound > 0 {
			s.Gap = s.Rounds / s.Bound
		}
		res.Violations += s.Violations
		res.Series = append(res.Series, s)
	}
}

// OptGapSingleFlow runs the Fig. 7 single-flow scenario (one long flow,
// exponential per-node install delays) with the round tracker attached
// and scores every trial against the oracle's round bound.
func OptGapSingleFlow(mk func() *topo.Topology, label string, runs int, seed int64, opt RunOptions) (*OptGapResult, error) {
	res := &OptGapResult{Label: label + " – single flow"}
	g := mk()
	g.Freeze()
	spec, err := singleFlowSpec(g)
	if err != nil {
		return nil, err
	}
	plans := plancache.New(g)
	systems := opt.systems()
	trials := make([]runner.Trial, 0, len(systems)*runs)
	for _, kind := range systems {
		for run := 0; run < runs; run++ {
			kind, run := kind, run
			cfg := DefaultBedConfig()
			cfg.NodeDelayMean = 100 * time.Millisecond
			wcfg := cfg.WiringConfig(kind, seed+int64(run))
			wcfg.Plans = plans
			wcfg.Trace = opt.Trace
			wcfg.Shards = opt.Shards
			wcfg.TrackRounds = true
			trials = append(trials, runner.BedTrial(
				fmt.Sprintf("%s/%s/run%02d", label, kind, run), kind.String(),
				g, wcfg,
				func(sys *wiring.System) (runner.Metrics, error) {
					b := &Bed{Kind: kind, System: sys}
					if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
						return runner.Metrics{}, err
					}
					u, err := b.Trigger(spec.ID(), spec.New)
					if err != nil {
						return runner.Metrics{}, err
					}
					b.Eng.Run()
					if u == nil || !u.Done() {
						return runner.Metrics{}, nil // incomplete: failed run
					}
					extra := make(map[string]float64)
					roundExtras(sys, plans, g, spec, u.Version, extra)
					return runner.Metrics{
						Samples: []time.Duration{u.Completed - u.Sent},
						Extra:   extra,
					}, nil
				}))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	aggregateOptGap(res, systems, runs)
	return res, nil
}

// OptGapMultiFlow runs the Fig. 7 multiple-flow scenario (gravity-model
// workload, congestion enforced) with round tracking; each trial's
// rounds and bound sum over the workload's flows, and the bound is
// checked per flow.
func OptGapMultiFlow(mk func() *topo.Topology, label string, runs int, seed int64, opt RunOptions) (*OptGapResult, error) {
	res := &OptGapResult{Label: label + " – multiple flows"}
	g := mk()
	g.Freeze()
	plans := plancache.New(g)
	workloads := newWorkloadCache()
	systems := opt.systems()
	trials := make([]runner.Trial, 0, len(systems)*runs)
	for _, kind := range systems {
		for run := 0; run < runs; run++ {
			kind, run := kind, run
			cfg := DefaultBedConfig()
			cfg.Congestion = true
			wcfg := cfg.WiringConfig(kind, seed+int64(run))
			wcfg.Plans = plans
			wcfg.Trace = opt.Trace
			wcfg.Shards = opt.Shards
			wcfg.TrackRounds = true
			trials = append(trials, runner.BedTrial(
				fmt.Sprintf("%s/%s/run%02d", label, kind, run), kind.String(),
				g, wcfg,
				func(sys *wiring.System) (runner.Metrics, error) {
					b := &Bed{Kind: kind, System: sys}
					flows, err := workloads.get(int64(run), func() ([]traffic.FlowSpec, error) {
						return traffic.MultiFlowWorkload(g, newWorkloadRand(seed+int64(run)), traffic.DefaultConfig())
					})
					if err != nil {
						return runner.Metrics{}, err
					}
					if err := b.Register(flows); err != nil {
						return runner.Metrics{}, err
					}
					type pending struct {
						spec traffic.FlowSpec
						u    *controlplane.UpdateStatus
					}
					var updates []pending
					for _, f := range flows {
						u, err := b.Trigger(f.ID(), f.New)
						if err != nil {
							return runner.Metrics{}, fmt.Errorf("%s: trigger: %w", kind, err)
						}
						if u != nil {
							updates = append(updates, pending{f, u})
						}
					}
					b.Eng.Run()
					var last time.Duration
					extra := make(map[string]float64)
					for _, p := range updates {
						if !p.u.Done() {
							return runner.Metrics{}, nil // incomplete: failed run
						}
						if p.u.Completed > last {
							last = p.u.Completed
						}
						roundExtras(sys, plans, g, p.spec, p.u.Version, extra)
					}
					if last == 0 {
						return runner.Metrics{}, nil
					}
					return runner.Metrics{
						Samples: []time.Duration{last},
						Extra:   extra,
					}, nil
				}))
		}
	}
	res.Trials = opt.Pool().Run(trials)
	aggregateOptGap(res, systems, runs)
	return res, nil
}
