package experiments

import (
	"testing"

	"p4update/internal/optoracle"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// TestOptGapBoundRespected runs the optimality-gap evaluation on B4 —
// both the single-flow and the congestion-constrained multi-flow
// scenario — across every registered system and asserts the oracle's
// contract on every trial: the measured commit rounds of each completed
// update never undercut the offline schedule's lower bound.
func TestOptGapBoundRespected(t *testing.T) {
	single, err := OptGapSingleFlow(topo.B4, "B4", 3, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := OptGapMultiFlow(topo.B4, "B4", 2, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*OptGapResult{single, multi} {
		if res.Violations != 0 {
			t.Errorf("%s: %d round-bound violations (measured < oracle)", res.Label, res.Violations)
		}
		if len(res.Series) != len(AllSystems()) {
			t.Fatalf("%s: %d series, want %d", res.Label, len(res.Series), len(AllSystems()))
		}
		for _, s := range res.Series {
			if s.Failed > 0 {
				t.Errorf("%s/%s: %d failed runs", res.Label, s.System, s.Failed)
			}
			if s.Bound <= 0 {
				t.Errorf("%s/%s: oracle bound %.2f, want > 0", res.Label, s.System, s.Bound)
			}
			if s.Rounds < s.Bound {
				t.Errorf("%s/%s: mean rounds %.2f below bound %.2f", res.Label, s.System, s.Rounds, s.Bound)
			}
		}
	}
	// Per-trial Extra carries the raw scores for the JSON export.
	for _, r := range single.Trials {
		if r.Failed || len(r.Samples) == 0 {
			continue
		}
		if r.Extra["rounds"] < r.Extra["opt_bound"] {
			t.Errorf("%s: rounds %.0f < bound %.0f", r.Label, r.Extra["rounds"], r.Extra["opt_bound"])
		}
	}
}

// TestOracleScheduleMatchesExecutor cross-checks the bound against the
// oracle's own live execution on the Fig-1 scenario: the idealized
// executor must use exactly as many rounds as the offline schedule.
func TestOracleScheduleMatchesExecutor(t *testing.T) {
	g := topo.Synthetic()
	oldP, newP := topo.SyntheticPaths()
	want := optoracle.Rounds(oldP, newP)
	if want <= 0 {
		t.Fatalf("oracle bound %d for the Fig-1 path change, want > 0", want)
	}
	b := NewBed(KindOptOracle, g, 1, DefaultBedConfig())
	spec := traffic.FlowSpec{Src: oldP[0], Dst: oldP[len(oldP)-1], Old: oldP, New: newP, SizeK: 1000}
	if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
		t.Fatal(err)
	}
	u, err := b.Trigger(spec.ID(), newP)
	if err != nil {
		t.Fatal(err)
	}
	b.Eng.Run()
	if !u.Done() {
		t.Fatal("oracle execution did not complete")
	}
	if got := int(b.System.OO.TotalRounds); got != want {
		t.Errorf("oracle executed %d rounds, schedule has %d", got, want)
	}
}
