package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"p4update/internal/topo"
	"p4update/internal/trace"
)

// The golden-trace tests pin the flight recorder's event log for two
// canonical trials byte for byte: the Fig-2 inconsistent-update scenario
// under P4Update and the Fig-7 B4 single-flow trial. Any change to the
// protocol's message order, verification decisions, or the trace format
// itself shows up as a golden diff.
//
// To regenerate the golden files after an intentional change:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenTrace
//
// then review the diff of internal/experiments/testdata/*.jsonl like any
// other code change.

// checkGolden compares got against the named golden file, rewriting the
// file instead when UPDATE_GOLDEN=1 is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Point at the first diverging line to make the diff actionable.
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("%s: trace diverges at line %d:\n got: %s\nwant: %s",
				path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s: trace length changed: got %d lines, want %d",
		path, len(gotLines), len(wantLines))
}

func jsonl(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	if rec == nil {
		t.Fatal("trial carried no trace recorder")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTraceFig2(t *testing.T) {
	_, rec, err := Fig2Opts(KindP4Update, 1, &trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_fig2_p4update.jsonl", jsonl(t, rec))
}

func TestGoldenTraceFig7B4(t *testing.T) {
	res, err := Fig7SingleFlowOpts(topo.B4, "B4", 1, 1,
		RunOptions{Workers: 1, Trace: &trace.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	// Trial 0 is P4Update run00 (system-major, run-minor grid order).
	tr := res.Trials[0]
	if tr.System != KindP4Update.String() {
		t.Fatalf("trial 0 is %s, want P4Update", tr.System)
	}
	checkGolden(t, "golden_fig7_b4_p4update.jsonl", jsonl(t, tr.TraceRec))
}

// TestGoldenTraceFig7B4NewSystems pins the event logs of the three
// registry-added systems on the same B4 single-flow trial the P4Update
// golden covers: their instruction waves, verification verdicts, phase
// flips and round boundaries are locked byte for byte.
func TestGoldenTraceFig7B4NewSystems(t *testing.T) {
	kinds := []SystemKind{KindLocalVerify, KindPPCU, KindOptOracle}
	res, err := Fig7SingleFlowOpts(topo.B4, "B4", 1, 1,
		RunOptions{Workers: 1, Trace: &trace.Options{}, Systems: kinds})
	if err != nil {
		t.Fatal(err)
	}
	files := []string{
		"golden_fig7_b4_localverify.jsonl",
		"golden_fig7_b4_ppcu.jsonl",
		"golden_fig7_b4_optoracle.jsonl",
	}
	if len(res.Trials) != len(files) {
		t.Fatalf("%d trials, want %d", len(res.Trials), len(files))
	}
	for i, tr := range res.Trials {
		if tr.System != kinds[i].String() {
			t.Fatalf("trial %d is %s, want %s", i, tr.System, kinds[i])
		}
		checkGolden(t, files[i], jsonl(t, tr.TraceRec))
	}
}

// TestTraceDeterministicAcrossWorkers locks in that tracing does not
// depend on trial scheduling: the same grid run under 1, 2, 4 and 8
// workers must produce byte-identical event logs for every trial. Each
// trial owns its recorder and its engine's virtual clock, so worker
// interleaving must be invisible.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) [][]byte {
		res, err := Fig7SingleFlowOpts(topo.Synthetic, "synthetic", 2, 1,
			RunOptions{Workers: workers, Trace: &trace.Options{}})
		if err != nil {
			t.Fatal(err)
		}
		logs := make([][]byte, len(res.Trials))
		for i, tr := range res.Trials {
			logs[i] = jsonl(t, tr.TraceRec)
			if len(logs[i]) == 0 {
				t.Fatalf("workers=%d trial %d (%s): empty trace", workers, i, tr.Label)
			}
		}
		return logs
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d trials, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("workers=%d trial %d: trace differs from sequential run (%s)",
					workers, i, firstDiffLine(got[i], want[i]))
			}
		}
	}
}

func firstDiffLine(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d: %s vs %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}
