package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"p4update/internal/packet"
	"p4update/internal/trace"
)

// TestNilRecorder pins the zero-overhead contract: every recording and
// query method must be a no-op on a nil recorder, because that is
// exactly what every instrumentation site holds when tracing is off.
func TestNilRecorder(t *testing.T) {
	var r *trace.Recorder
	r.Rec(0, trace.KindSend, 3, 1, 2, 3, 4)
	r.Send(0, 3, 1, 7, 2)
	r.Recv(1, 3, 0, 7, 2)
	r.Verdict(0, trace.CodeApplySL, 7, 2, 0, 0)
	r.Commit(0, 7, 2, 1, 3)
	r.Crash(0, 1)
	r.Restore(0, 1)
	r.Watchdog(trace.NodeController, 7, 2, 1)
	r.Alarm(0, 1, 7, 2)
	r.Round(7, 2, 3)
	if got := r.Recorded(); got != 0 {
		t.Errorf("nil Recorded() = %d, want 0", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Errorf("nil Dropped() = %d, want 0", got)
	}
	if got := r.Events(); got != nil {
		t.Errorf("nil Events() = %v, want nil", got)
	}
	if got := r.CountByKindClass(trace.KindSend, 3); got != 0 {
		t.Errorf("nil CountByKindClass = %d, want 0", got)
	}
	if got := r.Summarize(); got != nil {
		t.Errorf("nil Summarize() = %v, want nil", got)
	}
}

// TestNilRecorderAllocs asserts the traced-off fast path allocates
// nothing: the recording helpers on a nil recorder are what the hot
// loop executes on every instrumented site.
func TestNilRecorderAllocs(t *testing.T) {
	var r *trace.Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Send(0, 3, 1, 7, 2)
		r.Verdict(0, trace.CodeApplySL, 7, 2, 0, 0)
		r.Commit(0, 7, 2, 1, 3)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder helpers allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestRecSteadyStateAllocs asserts recording itself is allocation-free
// once the ring is full and the node-counter table has grown to its
// high-water mark — the traced hot loop must not churn the heap either.
func TestRecSteadyStateAllocs(t *testing.T) {
	r := trace.New(trace.Options{Cap: 64})
	for i := 0; i < 128; i++ { // fill the ring and touch the nodes
		r.Send(int32(i%4), 3, 1, 7, 2)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Send(2, 3, 1, 7, 2)
		r.Verdict(3, trace.CodeApplySL, 7, 2, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Rec allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEventsOrderNoWrap(t *testing.T) {
	r := trace.New(trace.Options{Cap: 16})
	for i := uint32(0); i < 5; i++ {
		r.Send(int32(i), 3, 1, i, 1)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("Events() len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) || ev.Flow != uint32(i) {
			t.Errorf("event %d: seq=%d flow=%d, want %d/%d", i, ev.Seq, ev.Flow, i, i)
		}
	}
}

func TestRingWrap(t *testing.T) {
	r := trace.New(trace.Options{Cap: 4})
	for i := uint32(0); i < 10; i++ {
		r.Send(0, 3, 1, i, 1)
	}
	if got := r.Recorded(); got != 10 {
		t.Errorf("Recorded() = %d, want 10", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(6 + i) // the oldest retained event is seq 6
		if ev.Seq != want {
			t.Errorf("event %d: seq = %d, want %d", i, ev.Seq, want)
		}
	}
	// The incremental counters keep counting past the overflow.
	if got := r.CountByKindClass(trace.KindSend, 3); got != 10 {
		t.Errorf("CountByKindClass(send, UIM) = %d, want 10", got)
	}
}

func TestClockStampsEvents(t *testing.T) {
	r := trace.New(trace.Options{Cap: 8})
	now := 5 * time.Millisecond
	r.Clock = func() time.Duration { return now }
	r.Send(0, 3, 1, 1, 1)
	now = 9 * time.Millisecond
	r.Commit(0, 1, 1, 2, 0)
	evs := r.Events()
	if evs[0].At != 5*time.Millisecond || evs[1].At != 9*time.Millisecond {
		t.Errorf("timestamps = %v, %v; want 5ms, 9ms", evs[0].At, evs[1].At)
	}
}

// TestWriteJSONL checks the JSONL exporter emits one valid JSON object
// per line, in sequence order, with the symbolic class labels.
func TestWriteJSONL(t *testing.T) {
	r := trace.New(trace.Options{Cap: 16})
	r.Clock = func() time.Duration { return time.Millisecond }
	r.Send(trace.NodeController, 3, 2, 7, 4)
	r.Recv(2, 3, trace.NodeController, 7, 4)
	r.Verdict(2, trace.CodeApplyEgress, 7, 4, 0, 0)
	r.Commit(2, 7, 4, 1, 0)
	r.Alarm(3, 1, 7, 4)
	r.Watchdog(3, 7, 4, 1)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	type row struct {
		Seq  uint64 `json:"seq"`
		At   int64  `json:"at_ns"`
		Node int32  `json:"node"`
		Kind string `json:"kind"`
		Cls  string `json:"class"`
		Peer *int32 `json:"peer"`
		Flow uint32 `json:"flow"`
		Ver  uint32 `json:"ver"`
	}
	var rows []row
	for i, l := range lines {
		var rr row
		if err := json.Unmarshal([]byte(l), &rr); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, l)
		}
		if rr.Seq != uint64(i) {
			t.Errorf("line %d: seq = %d, want %d", i, rr.Seq, i)
		}
		rows = append(rows, rr)
	}
	if rows[0].Kind != "send" || rows[0].Cls != "UIM" || rows[0].Node != -1 ||
		rows[0].Peer == nil || *rows[0].Peer != 2 {
		t.Errorf("send row mismatch: %+v", rows[0])
	}
	if rows[1].Kind != "recv" || rows[1].Peer == nil || *rows[1].Peer != -1 {
		t.Errorf("recv row mismatch: %+v", rows[1])
	}
	if rows[2].Kind != "verdict" || rows[2].Cls != "apply-egress" {
		t.Errorf("verdict row mismatch: %+v", rows[2])
	}
	if rows[4].Kind != "alarm" || rows[4].Cls != "distance" {
		t.Errorf("alarm row mismatch: %+v", rows[4])
	}
	if rows[5].Kind != "watchdog" || rows[5].Flow != 7 {
		t.Errorf("watchdog row mismatch: %+v", rows[5])
	}
}

// TestWriteChrome checks the Chrome trace_event export parses as JSON
// and carries one named lane per node plus the instant events.
func TestWriteChrome(t *testing.T) {
	r := trace.New(trace.Options{Cap: 16})
	r.Send(trace.NodeController, 3, 0, 7, 2)
	r.Recv(0, 3, trace.NodeController, 7, 2)
	r.Commit(0, 7, 2, 1, 0)

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int32  `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	// 2 thread_name metadata rows (controller + switch 0) + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	var lanes []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes = append(lanes, ev.Args["name"].(string))
		}
	}
	if len(lanes) != 2 || lanes[0] != "controller" || lanes[1] != "switch 0" {
		t.Errorf("lanes = %v, want [controller, switch 0]", lanes)
	}
	if ev := doc.TraceEvents[2]; ev.Ph != "i" || ev.Name != "send:UIM" || ev.Tid != 0 {
		t.Errorf("first instant event mismatch: %+v", ev)
	}
}

func TestSummarize(t *testing.T) {
	r := trace.New(trace.Options{Cap: 4})
	for i := 0; i < 6; i++ {
		r.Send(0, 3, 1, 7, 2)
	}
	r.Verdict(1, trace.CodeCapacityBlock, 7, 2, 0, 0)
	r.Round(7, 2, 3)

	s := r.Summarize()
	if s.Events != 8 || s.Dropped != 4 {
		t.Errorf("Events/Dropped = %d/%d, want 8/4", s.Events, s.Dropped)
	}
	if s.ByClass["send:UIM"] != 6 {
		t.Errorf("ByClass[send:UIM] = %d, want 6", s.ByClass["send:UIM"])
	}
	if s.ByClass["verdict:capacity-block"] != 1 {
		t.Errorf("ByClass[verdict:capacity-block] = %d, want 1", s.ByClass["verdict:capacity-block"])
	}
	if s.ByClass["round"] != 1 {
		t.Errorf("ByClass[round] = %d, want 1", s.ByClass["round"])
	}
	if s.ByNode["n0"] != 6 || s.ByNode["n1"] != 1 || s.ByNode["ctl"] != 1 {
		t.Errorf("ByNode = %v, want n0:6 n1:1 ctl:1", s.ByNode)
	}
	// The summary is JSON-serializable (it rides in trial reports).
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("Summary not serializable: %v", err)
	}
}

// TestMsgNamesMatchPacket pins the exporter's name tables to the packet
// package's wire constants. trace cannot import packet (the dependency
// runs the other way through sim), so the tables are mirrored by hand —
// this test is what keeps them honest.
func TestMsgNamesMatchPacket(t *testing.T) {
	want := map[uint8]string{
		uint8(packet.TypeData): "DATA",
		uint8(packet.TypeFRM):  "FRM",
		uint8(packet.TypeUIM):  "UIM",
		uint8(packet.TypeUNM):  "UNM",
		uint8(packet.TypeUFM):  "UFM",
		uint8(packet.TypeEZI):  "EZI",
		uint8(packet.TypeEZN):  "EZN",
		uint8(packet.TypeCLN):  "CLN",
	}
	for typ, name := range want {
		if got := trace.MsgName(typ); got != name {
			t.Errorf("MsgName(%d) = %q, want %q", typ, got, name)
		}
	}
	alarms := map[packet.AlarmReason]string{
		packet.ReasonNone:     "none",
		packet.ReasonDistance: "distance",
		packet.ReasonOutdated: "outdated",
		packet.ReasonFlowSize: "flow-size",
	}
	for reason, name := range alarms {
		if got := trace.ClassLabel(trace.KindAlarm, uint8(reason)); got != name {
			t.Errorf("ClassLabel(alarm, %d) = %q, want %q", reason, got, name)
		}
	}
}

// TestCoreCodesComplete checks the coverage universe is well-formed:
// distinct codes, all named, and containing every verdict family.
func TestCoreCodesComplete(t *testing.T) {
	codes := trace.CoreCodes()
	seen := map[trace.Code]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Errorf("duplicate code %v", c)
		}
		seen[c] = true
		if c.String() == "unknown" {
			t.Errorf("code %d has no name", c)
		}
	}
	for _, must := range []trace.Code{
		trace.CodeApplySL, trace.CodeApplyEgress, trace.CodeApplyDLSegment,
		trace.CodeApplyDLGateway, trace.CodeInherit, trace.CodeInheritCounter,
		trace.CodeWaitUIM, trace.CodeWaitDependency, trace.CodeDuplicate,
		trace.CodeRejectOutdated, trace.CodeRejectDistance, trace.CodeRejectFlowSize,
		trace.CodeCapacityBlock, trace.CodePriorityYield, trace.CodePriorityPromote,
	} {
		if !seen[must] {
			t.Errorf("CoreCodes() missing %v", must)
		}
	}
	// The baseline apply codes are deliberately outside the core universe.
	if seen[trace.CodeApplyEZ] || seen[trace.CodeApplyCentral] {
		t.Errorf("CoreCodes() must exclude the baseline apply codes")
	}
}

// TestJSONLDeterministic re-exports the same recorder twice and expects
// byte-identical output (the golden-trace suite depends on this).
func TestJSONLDeterministic(t *testing.T) {
	r := trace.New(trace.Options{Cap: 8})
	for i := uint32(0); i < 12; i++ { // wraps
		r.Send(int32(i%3), 4, 1, i, 1)
	}
	var a, b bytes.Buffer
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("repeated JSONL export differs")
	}
}
