package trace

// Region staging support for the sharded event engine (internal/sim).
//
// Under sharded execution each region engine records into its own
// *unbounded* staging recorder while its worker runs ahead of the global
// cursor; at every barrier the cursor replays the per-event trace spans
// into the trial's master recorder in exact global order via Absorb,
// re-stamping sequence numbers so the merged log is byte-identical to a
// sequential run. Staging recorders never ring-drop (a drop would lose
// events the master still needs); the cursor compacts them with
// DropThrough once a span has been flushed.

// NewRegion returns an unbounded staging recorder. It grows instead of
// ring-dropping and supports absolute-sequence access (EventAt) plus
// prefix compaction (DropThrough).
func NewRegion() *Recorder {
	return &Recorder{unbounded: true}
}

// Pos returns the recorder's next sequence number; the half-open span
// [a.Pos(), b.Pos()) brackets everything recorded between two calls.
func (r *Recorder) Pos() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// EventAt returns the event with absolute sequence number seq. Only
// valid on an unbounded recorder for seq in [base, Pos()) where base is
// the highest DropThrough watermark.
func (r *Recorder) EventAt(seq uint64) Event {
	return r.buf[seq-r.base]
}

// DropThrough discards all events with sequence numbers below pos,
// reclaiming staging space once the cursor has flushed them.
func (r *Recorder) DropThrough(pos uint64) {
	if r == nil || pos <= r.base {
		return
	}
	n := copy(r.buf, r.buf[pos-r.base:])
	r.buf = r.buf[:n]
	r.base = pos
}

// Absorb appends an event recorded elsewhere, re-stamping its sequence
// number onto this recorder while preserving its original timestamp and
// payload. Counters update exactly as if the event had been recorded
// here directly.
func (r *Recorder) Absorb(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.seq
	r.put(ev)
}
