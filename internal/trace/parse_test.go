package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// TestParseJSONLRoundTrip pins parse(write(events)) == events across
// every kind the exporter distinguishes.
func TestParseJSONLRoundTrip(t *testing.T) {
	r := New(Options{Cap: 64})
	var now time.Duration
	r.Clock = func() time.Duration { return now }

	now = 1 * time.Millisecond
	r.Send(3, 3 /* UIM */, 4, 7, 2)
	r.Recv(4, 3, 3, 7, 2)
	now = 2 * time.Millisecond
	r.Verdict(4, CodeApplySL, 7, 2, 9, 8)
	r.Commit(4, 7, 2, 1, 0)
	r.Crash(4, 1)
	r.Restore(4, 2)
	r.Watchdog(NodeController, 7, 2, 1)
	r.Alarm(4, 1 /* distance */, 7, 2)
	r.Round(7, 2, 3)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParseJSONLRejects covers the parser's error paths.
func TestParseJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      "{not json}\n",
		"unknown kind":  `{"seq":1,"at_ns":0,"node":0,"kind":"nope","flow":0,"ver":0,"a":0,"b":0}` + "\n",
		"missing class": `{"seq":1,"at_ns":0,"node":0,"kind":"verdict","flow":0,"ver":0,"a":0,"b":0}` + "\n",
		"bad class":     `{"seq":1,"at_ns":0,"node":0,"kind":"verdict","class":"zzz","flow":0,"ver":0,"a":0,"b":0}` + "\n",
		"missing peer":  `{"seq":1,"at_ns":0,"node":0,"kind":"send","class":"UIM","flow":0,"ver":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ParseJSONL(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
