// Package trace is the flight recorder of the simulation: a per-trial
// ring buffer of fixed-size value-typed event records capturing every
// protocol-relevant step — message sends and receptions, Alg. 1/Alg. 2
// verification verdicts with their reason codes, rule commits,
// crash/restore epochs, and watchdog firings — so a misbehaving trial
// can be explained from its decision log instead of re-run under a
// debugger.
//
// The recorder is wired through sim.Engine.Trace and reached from every
// protocol layer via a single nil-checked pointer load, so a traced-off
// run pays one predictable branch per site: the hot loop stays at
// 0 allocs/op and produces byte-identical output. Recording itself is
// pure observation — it never schedules events, mutates protocol state,
// or draws randomness — so a traced run is step-for-step identical to
// an untraced one, and the emitted JSONL is identical across any trial
// worker count.
//
// Records hold only interned numeric IDs (flow IDs, node IDs, enum
// codes); the symbolic names appear exclusively in the exporters.
package trace

import "time"

// Kind classifies an event record.
type Kind uint8

// Event kinds.
const (
	// KindSend: a protocol message left a node (Class = wire message
	// type, A = destination node, data packets excluded).
	KindSend Kind = iota + 1
	// KindRecv: a protocol message was decoded at a node (Class = wire
	// message type, A = source node).
	KindRecv
	// KindVerdict: a verification or scheduling decision (Class = Code).
	KindVerdict
	// KindCommit: a forwarding rule committed (A = egress port, B = new
	// distance).
	KindCommit
	// KindCrash: the node failed fail-stop (A = new epoch).
	KindCrash
	// KindRestore: the node came back online (A = epoch).
	KindRestore
	// KindWatchdog: a §11 recovery watchdog fired (A = report/retrigger
	// count). Node -1 is the controller-side completion watchdog.
	KindWatchdog
	// KindAlarm: the node raised a StatusAlarm UFM (Class = AlarmReason).
	KindAlarm
	// KindRound: the Central coordinator pushed a dependency round
	// (A = batch size).
	KindRound

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindVerdict:
		return "verdict"
	case KindCommit:
		return "commit"
	case KindCrash:
		return "crash"
	case KindRestore:
		return "restore"
	case KindWatchdog:
		return "watchdog"
	case KindAlarm:
		return "alarm"
	case KindRound:
		return "round"
	default:
		return "unknown"
	}
}

// Code is a verdict reason code: why a node applied, deferred, or
// rejected an update step. The codes refine core.Decision with the
// branch that produced it, so the decision log distinguishes e.g. a
// distance inheritance from a hop-counter symmetry break.
type Code uint8

// Verdict reason codes.
const (
	// CodeApplySL: Alg. 1 line 6 — single-layer verification succeeded.
	CodeApplySL Code = iota + 1
	// CodeApplyEgress: §7.2 — the flow egress applies directly on a
	// well-formed indication.
	CodeApplyEgress
	// CodeApplyDLSegment: Alg. 2 lines 9–16 — a segment-interior (fresh
	// or lagging) node applies, inheriting the parent's segment ID.
	CodeApplyDLSegment
	// CodeApplyDLGateway: Alg. 2 lines 19–21 — the gateway gate
	// Dn(v) > Do(UNM) passed.
	CodeApplyDLGateway
	// CodeInherit: Alg. 2 lines 24–27 — an already-updated node inherits
	// a strictly smaller old distance (segment ID) and passes it on.
	CodeInherit
	// CodeInheritCounter: Alg. 2 lines 24–27 with equal old distances —
	// the hop counter breaks the symmetry.
	CodeInheritCounter
	// CodeWaitUIM: the notification is ahead of the node's indication
	// (Alg. 1 line 10 / Alg. 2 line 5); parked until the UIM arrives.
	CodeWaitUIM
	// CodeWaitDependency: the dual-layer gateway gate failed — the
	// backward-segment dependency is unresolved.
	CodeWaitDependency
	// CodeDuplicate: the notification carries no new information.
	CodeDuplicate
	// CodeRejectOutdated: version mismatch — the notification is older
	// than the node's indication.
	CodeRejectOutdated
	// CodeRejectDistance: distance gap — Dn(UIM) != Dn(UNM)+1, or a
	// malformed egress indication.
	CodeRejectDistance
	// CodeRejectFlowSize: the flow's immutable size bound changed (§A.2).
	CodeRejectFlowSize
	// CodeCapacityBlock: the §A.2 capacity gate parked the move — the
	// target link lacks headroom.
	CodeCapacityBlock
	// CodePriorityYield: a low-priority flow yielded the link to waiting
	// high-priority flows (§7.4).
	CodePriorityYield
	// CodePriorityPromote: the flow obtained high priority because its
	// move frees capacity another flow waits for (§7.4).
	CodePriorityPromote
	// CodeApplyEZ: the ez-Segway baseline applied an instruction.
	CodeApplyEZ
	// CodeApplyCentral: the Central baseline applied a round instruction.
	CodeApplyCentral
	// CodeApplyLV: the LocalVerify baseline verified its downstream
	// confirmation and applied.
	CodeApplyLV
	// CodeApplyPPCU: the PPCU baseline applied a per-packet-consistency
	// phase rule.
	CodeApplyPPCU
	// CodeApplyOracle: the OptOracle executor applied a round
	// instruction.
	CodeApplyOracle

	numCodes
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case CodeApplySL:
		return "apply-sl"
	case CodeApplyEgress:
		return "apply-egress"
	case CodeApplyDLSegment:
		return "apply-dl-segment"
	case CodeApplyDLGateway:
		return "apply-dl-gateway"
	case CodeInherit:
		return "inherit-distance"
	case CodeInheritCounter:
		return "inherit-counter"
	case CodeWaitUIM:
		return "wait-uim"
	case CodeWaitDependency:
		return "wait-dependency"
	case CodeDuplicate:
		return "duplicate"
	case CodeRejectOutdated:
		return "reject-outdated"
	case CodeRejectDistance:
		return "reject-distance"
	case CodeRejectFlowSize:
		return "reject-flow-size"
	case CodeCapacityBlock:
		return "capacity-block"
	case CodePriorityYield:
		return "priority-yield"
	case CodePriorityPromote:
		return "priority-promote"
	case CodeApplyEZ:
		return "apply-ez"
	case CodeApplyCentral:
		return "apply-central"
	case CodeApplyLV:
		return "apply-lv"
	case CodeApplyPPCU:
		return "apply-ppcu"
	case CodeApplyOracle:
		return "apply-oracle"
	default:
		return "unknown"
	}
}

// CoreCodes lists every reason code the P4Update protocol itself can
// emit (the baseline-only apply codes excluded). The decision-coverage
// suite fails if any of these is never exercised — a canary against
// dead verification branches.
func CoreCodes() []Code {
	codes := make([]Code, 0, int(CodePriorityPromote))
	for c := CodeApplySL; c <= CodePriorityPromote; c++ {
		codes = append(codes, c)
	}
	return codes
}

// NodeController is the Node value representing the controller.
const NodeController int32 = -1

// Event is one fixed-size flight-recorder record. The meaning of Class,
// A and B depends on Kind (see the Kind constants); Flow and Ver are the
// wire flow ID and configuration version where applicable.
type Event struct {
	Seq   uint64
	At    time.Duration
	Node  int32
	Kind  Kind
	Class uint8
	Flow  uint32
	Ver   uint32
	A     uint32
	B     uint32
}

// DefaultCap is the default ring capacity in events.
const DefaultCap = 1 << 14

// maxClass bounds the per-class counter table; every Class value in use
// (message types ≤ 18, reason codes ≤ 17, alarm reasons ≤ 3) fits.
const maxClass = 32

// Options configures a recorder.
type Options struct {
	// Cap is the ring capacity in events (<= 0: DefaultCap). When the
	// ring overflows, the oldest events are dropped; the per-class and
	// per-node counters keep counting.
	Cap int
}

// Recorder is the per-trial flight recorder. All recording methods are
// safe on a nil receiver (they return immediately), so instrumentation
// sites need no nil guard of their own beyond loading the pointer. The
// recorder is single-threaded by the same contract as the engine.
type Recorder struct {
	// Clock supplies event timestamps; wiring binds it to the trial
	// engine's virtual clock. Nil stamps zero.
	Clock func() time.Duration

	buf []Event
	seq uint64
	// unbounded recorders (region staging buffers, see region.go) grow
	// instead of ring-dropping; base is the absolute sequence number of
	// buf[0] after DropThrough compaction.
	unbounded bool
	base      uint64

	counts [numKinds][maxClass]uint64
	// nodeCounts is indexed by node+1 (slot 0 = controller), grown on
	// first touch.
	nodeCounts []uint64
}

// New builds a recorder with a preallocated ring.
func New(opt Options) *Recorder {
	c := opt.Cap
	if c <= 0 {
		c = DefaultCap
	}
	return &Recorder{buf: make([]Event, 0, c)}
}

// Rec appends one event. It is the single recording primitive behind
// the typed helpers; in steady state (ring full) it allocates nothing.
func (r *Recorder) Rec(node int32, kind Kind, class uint8, flow, ver, a, b uint32) {
	if r == nil {
		return
	}
	var at time.Duration
	if r.Clock != nil {
		at = r.Clock()
	}
	r.put(Event{Seq: r.seq, At: at, Node: node, Kind: kind, Class: class,
		Flow: flow, Ver: ver, A: a, B: b})
}

// put stores an already-built event (Seq must equal r.seq) and updates
// the counters. It is the shared tail of Rec and Absorb.
func (r *Recorder) put(ev Event) {
	if len(r.buf) < cap(r.buf) || r.unbounded {
		r.buf = append(r.buf, ev)
	} else {
		// The ring position of seq is seq%cap — consistent with where the
		// append path placed the first cap events.
		r.buf[r.seq%uint64(cap(r.buf))] = ev
	}
	r.seq++
	if ev.Kind < numKinds && ev.Class < maxClass {
		r.counts[ev.Kind][ev.Class]++
	}
	if idx := int(ev.Node) + 1; idx >= 0 {
		for idx >= len(r.nodeCounts) {
			r.nodeCounts = append(r.nodeCounts, 0)
		}
		r.nodeCounts[idx]++
	}
}

// Send records a protocol message leaving node toward peer.
func (r *Recorder) Send(node int32, msgType uint8, peer int32, flow, ver uint32) {
	r.Rec(node, KindSend, msgType, flow, ver, uint32(peer), 0)
}

// Recv records a protocol message decoded at node, arrived from peer.
func (r *Recorder) Recv(node int32, msgType uint8, peer int32, flow, ver uint32) {
	r.Rec(node, KindRecv, msgType, flow, ver, uint32(peer), 0)
}

// Verdict records a verification or scheduling decision at node.
func (r *Recorder) Verdict(node int32, code Code, flow, ver, a, b uint32) {
	r.Rec(node, KindVerdict, uint8(code), flow, ver, a, b)
}

// Commit records a committed forwarding rule at node.
func (r *Recorder) Commit(node int32, flow, ver uint32, port int32, dist uint32) {
	r.Rec(node, KindCommit, 0, flow, ver, uint32(port), dist)
}

// Crash records a fail-stop switch failure.
func (r *Recorder) Crash(node int32, epoch uint32) {
	r.Rec(node, KindCrash, 0, 0, 0, epoch, 0)
}

// Restore records a switch restart.
func (r *Recorder) Restore(node int32, epoch uint32) {
	r.Rec(node, KindRestore, 0, 0, 0, epoch, 0)
}

// Watchdog records a §11 recovery watchdog firing (node -1: the
// controller-side completion watchdog; count is the report/retrigger
// number).
func (r *Recorder) Watchdog(node int32, flow, ver, count uint32) {
	r.Rec(node, KindWatchdog, 0, flow, ver, count, 0)
}

// Alarm records a StatusAlarm report raised at node.
func (r *Recorder) Alarm(node int32, reason uint8, flow, ver uint32) {
	r.Rec(node, KindAlarm, reason, flow, ver, 0, 0)
}

// Round records a Central coordinator dependency round of batch nodes.
func (r *Recorder) Round(flow, ver, batch uint32) {
	r.Rec(NodeController, KindRound, 0, flow, ver, batch, 0)
}

// Recorded reports how many events were recorded in total, including
// any the ring has since dropped.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// Dropped reports how many of the recorded events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil || r.seq <= uint64(len(r.buf)) {
		return 0
	}
	return r.seq - uint64(len(r.buf))
}

// Events returns the retained events in recording (sequence) order. The
// slice is a copy; mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	n := len(r.buf)
	out := make([]Event, n)
	if r.seq > uint64(n) {
		// The ring wrapped: the oldest retained event sits at seq%n.
		start := int(r.seq % uint64(n))
		copy(out, r.buf[start:])
		copy(out[n-start:], r.buf[:start])
	} else {
		copy(out, r.buf)
	}
	return out
}

// CountByKindClass returns how many events of (kind, class) were
// recorded, counting dropped ones.
func (r *Recorder) CountByKindClass(kind Kind, class uint8) uint64 {
	if r == nil || kind >= numKinds || class >= maxClass {
		return 0
	}
	return r.counts[kind][class]
}
