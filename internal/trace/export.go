package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// MsgName names a wire message type for the exporters. It mirrors the
// packet package's MsgType values (trace cannot import packet — the
// dependency runs the other way); a test in trace's external test
// package pins the two tables together.
func MsgName(t uint8) string {
	switch t {
	case 1:
		return "DATA"
	case 2:
		return "FRM"
	case 3:
		return "UIM"
	case 4:
		return "UNM"
	case 5:
		return "UFM"
	case 16:
		return "EZI"
	case 17:
		return "EZN"
	case 18:
		return "CLN"
	default:
		return "T" + strconv.Itoa(int(t))
	}
}

// alarmName names an AlarmReason (mirrors packet.AlarmReason, pinned by
// the same external test).
func alarmName(r uint8) string {
	switch r {
	case 0:
		return "none"
	case 1:
		return "distance"
	case 2:
		return "outdated"
	case 3:
		return "flow-size"
	default:
		return "reason-" + strconv.Itoa(int(r))
	}
}

// ClassLabel renders an event's Class symbolically for its Kind.
func ClassLabel(kind Kind, class uint8) string {
	switch kind {
	case KindSend, KindRecv:
		return MsgName(class)
	case KindVerdict:
		return Code(class).String()
	case KindAlarm:
		return alarmName(class)
	default:
		return ""
	}
}

// classKey is ClassLabel prefixed by the kind, the counter key of
// Summary.ByClass ("send:UIM", "verdict:apply-sl", "commit").
func classKey(kind Kind, class uint8) string {
	if l := ClassLabel(kind, class); l != "" {
		return kind.String() + ":" + l
	}
	return kind.String()
}

// WriteJSONL writes the retained events as deterministic JSONL: one
// event per line in sequence order with a fixed field order, so two
// traces are comparable byte-for-byte. Numeric Class values are
// rendered symbolically (message name, reason code); A carries the
// peer node for send/recv events and is rendered signed (the
// controller is -1).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range r.Events() {
		var err error
		switch ev.Kind {
		case KindSend, KindRecv:
			_, err = fmt.Fprintf(bw,
				"{\"seq\":%d,\"at_ns\":%d,\"node\":%d,\"kind\":%q,\"class\":%q,\"peer\":%d,\"flow\":%d,\"ver\":%d}\n",
				ev.Seq, int64(ev.At), ev.Node, ev.Kind.String(), ClassLabel(ev.Kind, ev.Class),
				int32(ev.A), ev.Flow, ev.Ver)
		case KindVerdict, KindAlarm:
			_, err = fmt.Fprintf(bw,
				"{\"seq\":%d,\"at_ns\":%d,\"node\":%d,\"kind\":%q,\"class\":%q,\"flow\":%d,\"ver\":%d,\"a\":%d,\"b\":%d}\n",
				ev.Seq, int64(ev.At), ev.Node, ev.Kind.String(), ClassLabel(ev.Kind, ev.Class),
				ev.Flow, ev.Ver, ev.A, ev.B)
		default:
			_, err = fmt.Fprintf(bw,
				"{\"seq\":%d,\"at_ns\":%d,\"node\":%d,\"kind\":%q,\"flow\":%d,\"ver\":%d,\"a\":%d,\"b\":%d}\n",
				ev.Seq, int64(ev.At), ev.Node, ev.Kind.String(), ev.Flow, ev.Ver, ev.A, ev.B)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChrome writes the retained events in Chrome trace_event format
// (the JSON object form), so a trial opens directly in chrome://tracing
// or Perfetto: one lane (thread) per switch plus one for the
// controller, every event an instant marker at its virtual time
// (microseconds). pid is always 1; tid is node+1 so the controller
// (node -1) lands on tid 0.
func (r *Recorder) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	events := r.Events()

	// Thread-name metadata first: one lane per node that appears.
	nodes := make(map[int32]bool)
	for _, ev := range events {
		nodes[ev.Node] = true
	}
	ids := make([]int32, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	first := true
	for _, n := range ids {
		name := "switch " + strconv.Itoa(int(n))
		if n == NodeController {
			name = "controller"
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		if _, err := fmt.Fprintf(bw,
			"{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%q}}",
			n+1, name); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		if _, err := fmt.Fprintf(bw,
			"{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"+
				"\"args\":{\"seq\":%d,\"flow\":%d,\"ver\":%d,\"a\":%d,\"b\":%d}}",
			classKey(ev.Kind, ev.Class), ev.Kind.String(), float64(ev.At)/1e3, ev.Node+1,
			ev.Seq, ev.Flow, ev.Ver, ev.A, ev.B); err != nil {
			return err
		}
	}
	_, err := io.WriteString(bw, "\n]}\n")
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Summary is the per-trial event accounting exported next to the
// runner's alloc counters in JSON trial reports. Map keys are symbolic
// ("send:UIM", "verdict:capacity-block", "n3", "ctl"), and
// encoding/json sorts them, so reports stay deterministic.
type Summary struct {
	// Events counts everything recorded; Dropped how many of those the
	// ring overwrote (counters keep counting past overflow).
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped,omitempty"`
	// ByClass counts events per kind:class; ByNode per node ("ctl" is
	// the controller).
	ByClass map[string]uint64 `json:"by_class,omitempty"`
	ByNode  map[string]uint64 `json:"by_node,omitempty"`
}

// Summarize builds the trial summary from the incremental counters
// (exact even when the ring dropped events).
func (r *Recorder) Summarize() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{Events: r.Recorded(), Dropped: r.Dropped()}
	for kind := Kind(1); kind < numKinds; kind++ {
		for class := 0; class < maxClass; class++ {
			if n := r.counts[kind][class]; n > 0 {
				if s.ByClass == nil {
					s.ByClass = make(map[string]uint64)
				}
				s.ByClass[classKey(kind, uint8(class))] += n
			}
		}
	}
	for idx, n := range r.nodeCounts {
		if n == 0 {
			continue
		}
		if s.ByNode == nil {
			s.ByNode = make(map[string]uint64)
		}
		key := "n" + strconv.Itoa(idx-1)
		if idx == 0 {
			key = "ctl"
		}
		s.ByNode[key] = n
	}
	return s
}
