package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// jsonEvent mirrors WriteJSONL's field set; optional fields are
// pointers so absent and zero stay distinguishable.
type jsonEvent struct {
	Seq   uint64  `json:"seq"`
	AtNS  int64   `json:"at_ns"`
	Node  int32   `json:"node"`
	Kind  string  `json:"kind"`
	Class *string `json:"class"`
	Peer  *int32  `json:"peer"`
	Flow  uint32  `json:"flow"`
	Ver   uint32  `json:"ver"`
	A     *uint32 `json:"a"`
	B     *uint32 `json:"b"`
}

// parseTables holds the reverse of the String()/label mappings the
// exporter uses. Built once, by asking the forward maps themselves, so
// the two directions cannot drift.
type parseTables struct {
	kinds  map[string]Kind
	codes  map[string]uint8 // verdict classes
	msgs   map[string]uint8 // send/recv classes
	alarms map[string]uint8 // alarm classes
}

var (
	tables     parseTables
	tablesOnce sync.Once
)

func buildParseTables() {
	tables.kinds = make(map[string]Kind)
	for k := Kind(1); k < numKinds; k++ {
		tables.kinds[k.String()] = k
	}
	tables.codes = make(map[string]uint8)
	for c := Code(1); c < numCodes; c++ {
		tables.codes[c.String()] = uint8(c)
	}
	tables.msgs = make(map[string]uint8)
	tables.alarms = make(map[string]uint8)
	for t := 0; t < 256; t++ {
		tables.msgs[MsgName(uint8(t))] = uint8(t)
		tables.alarms[alarmName(uint8(t))] = uint8(t)
	}
}

// ParseJSONL reads a WriteJSONL stream back into events — the
// deployment mode's path from a process's dumped flight recording to
// the replay-diff comparator. Round-trip with WriteJSONL is exact:
// parse(write(events)) == events for every exported field.
func ParseJSONL(r io.Reader) ([]Event, error) {
	tablesOnce.Do(buildParseTables)
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := tables.kinds[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, je.Kind)
		}
		ev := Event{
			Seq:  je.Seq,
			At:   time.Duration(je.AtNS),
			Node: je.Node,
			Kind: kind,
			Flow: je.Flow,
			Ver:  je.Ver,
		}
		switch kind {
		case KindSend, KindRecv:
			if je.Class == nil || je.Peer == nil {
				return nil, fmt.Errorf("trace: line %d: %s event missing class/peer", line, je.Kind)
			}
			cls, ok := tables.msgs[*je.Class]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown message class %q", line, *je.Class)
			}
			ev.Class = cls
			ev.A = uint32(*je.Peer)
		case KindVerdict, KindAlarm:
			if je.Class == nil {
				return nil, fmt.Errorf("trace: line %d: %s event missing class", line, je.Kind)
			}
			tbl := tables.codes
			if kind == KindAlarm {
				tbl = tables.alarms
			}
			cls, ok := tbl[*je.Class]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown %s class %q", line, je.Kind, *je.Class)
			}
			ev.Class = cls
			if je.A != nil {
				ev.A = *je.A
			}
			if je.B != nil {
				ev.B = *je.B
			}
		default:
			if je.A != nil {
				ev.A = *je.A
			}
			if je.B != nil {
				ev.B = *je.B
			}
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return events, nil
}
