package topo

import (
	"math"
	"sort"
	"sync"
)

// distKey identifies one memoized single-source distance sweep.
type distKey struct {
	src NodeID
	w   Weight
}

// pathKey identifies one memoized point-to-point query. avoid is an
// FNV-1a hash of the sorted avoid set (0 for the empty set), so Yen
// spur queries with distinct blocked sets occupy distinct entries.
type pathKey struct {
	src, dst NodeID
	w        Weight
	avoid    uint64
}

// oracleItem is a value-typed Dijkstra frontier entry.
type oracleItem struct {
	node NodeID
	dist float64
}

// PathOracle memoizes shortest-path computation over one Topology.
//
// Results are cached per (src, dst, weight, avoid-set-hash) and
// invalidated wholesale whenever the topology mutates (AddNode/AddLink
// bump Topology.version). The Dijkstra sweep itself runs on reusable
// scratch buffers — distance, predecessor, and heap-position arrays
// plus a value-typed binary heap — so a cache miss allocates only the
// slice that is retained in the cache, and a hit allocates nothing.
//
// Cached slices are shared: callers must treat them as read-only. The
// Topology wrapper methods that historically handed out fresh slices
// (ShortestPath, shortestPathAvoiding) copy on the way out; Distances
// intentionally does not, per its documented contract.
//
// The oracle is safe for concurrent readers (a mutex serializes
// queries); topology mutation is not concurrent-safe, matching the
// Topology contract.
type PathOracle struct {
	t  *Topology
	mu sync.Mutex

	version      uint64
	dist         map[distKey][]float64
	path         map[pathKey][]NodeID
	pathCost     map[pathKey]float64
	centroid     NodeID
	haveCentroid bool

	// Dijkstra scratch, sized to the topology's node count.
	d    []float64
	prev []NodeID
	pos  []int32 // heap index per node, -1 when absent
	h    []oracleItem
}

func newPathOracle(t *Topology) *PathOracle {
	return &PathOracle{t: t}
}

// refresh flushes the caches if the topology changed and (re)sizes the
// scratch buffers. Callers hold o.mu.
func (o *PathOracle) refresh() {
	if o.dist != nil && o.version == o.t.version {
		return
	}
	o.version = o.t.version
	o.dist = make(map[distKey][]float64)
	o.path = make(map[pathKey][]NodeID)
	o.pathCost = make(map[pathKey]float64)
	o.haveCentroid = false
	n := o.t.NumNodes()
	if cap(o.d) < n {
		o.d = make([]float64, n)
		o.prev = make([]NodeID, n)
		o.pos = make([]int32, n)
	}
	o.d = o.d[:n]
	o.prev = o.prev[:n]
	o.pos = o.pos[:n]
}

// Distances returns minimum weights from src to every node (math.Inf(1)
// for unreachable nodes). The returned slice is owned by the oracle's
// cache and must not be modified.
func (o *PathOracle) Distances(src NodeID, w Weight) []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.refresh()
	k := distKey{src, w}
	if d, ok := o.dist[k]; ok {
		return d
	}
	o.sweep(src, w)
	out := make([]float64, len(o.d))
	copy(out, o.d)
	o.dist[k] = out
	return out
}

// ShortestPath returns the minimum-weight path from src to dst, or nil
// if unreachable. The returned slice is owned by the oracle's cache and
// must not be modified.
func (o *PathOracle) ShortestPath(src, dst NodeID, w Weight) []NodeID {
	p, _ := o.shortestAvoiding(src, dst, w, nil, nil)
	return p
}

// shortestAvoiding is the memoized Yen spur primitive. The returned
// slice is cache-owned and read-only; Topology.shortestPathAvoiding
// copies before handing ownership to callers.
func (o *PathOracle) shortestAvoiding(src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	o.mu.Lock()
	defer o.mu.Unlock()
	o.refresh()
	k := pathKey{src, dst, w, hashAvoid(blockedNodes, blockedEdges)}
	if p, ok := o.path[k]; ok {
		return p, o.pathCost[k]
	}
	p, cost := o.spurPath(src, dst, w, blockedNodes, blockedEdges)
	o.path[k] = p
	o.pathCost[k] = cost
	return p, cost
}

// Centroid returns the node minimizing the worst-case latency-weighted
// distance to all other nodes, memoized per topology generation.
func (o *PathOracle) Centroid() NodeID {
	o.mu.Lock()
	if o.dist != nil && o.version == o.t.version && o.haveCentroid {
		c := o.centroid
		o.mu.Unlock()
		return c
	}
	o.mu.Unlock()

	best := NodeID(0)
	bestWorst := math.Inf(1)
	for _, n := range o.t.Nodes() {
		dist := o.Distances(n, ByLatency)
		worst := 0.0
		for _, d := range dist {
			if d > worst {
				worst = d
			}
		}
		if worst < bestWorst {
			bestWorst = worst
			best = n
		}
	}

	o.mu.Lock()
	o.refresh()
	o.centroid = best
	o.haveCentroid = true
	o.mu.Unlock()
	return best
}

// sweep runs a full single-source Dijkstra into o.d. Callers hold o.mu.
// The relaxation and heap discipline mirror the original container/heap
// implementation exactly so tie-breaking (and hence every derived path)
// is byte-identical to the pre-oracle code.
func (o *PathOracle) sweep(src NodeID, w Weight) {
	t := o.t
	for i := range o.d {
		o.d[i] = math.Inf(1)
		o.pos[i] = -1
	}
	o.d[src] = 0
	o.h = o.h[:0]
	o.hPush(src, 0)
	for len(o.h) > 0 {
		cur := o.hPop()
		for _, ad := range t.adj[cur.node] {
			alt := cur.dist + t.edgeWeight(t.links[ad.link], w)
			if alt < o.d[ad.neighbor] {
				o.d[ad.neighbor] = alt
				if o.pos[ad.neighbor] >= 0 {
					o.hFix(ad.neighbor, alt)
				} else {
					o.hPush(ad.neighbor, alt)
				}
			}
		}
	}
}

// spurPath runs Dijkstra from src toward dst, skipping the given nodes
// and directed edges, and reconstructs the path into a fresh slice.
// Callers hold o.mu.
func (o *PathOracle) spurPath(src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	if src == dst {
		return []NodeID{src}, 0
	}
	t := o.t
	for i := range o.d {
		o.d[i] = math.Inf(1)
		o.prev[i] = -1
		o.pos[i] = -1
	}
	o.d[src] = 0
	o.h = o.h[:0]
	o.hPush(src, 0)
	for len(o.h) > 0 {
		cur := o.hPop()
		if cur.node == dst {
			break
		}
		for _, ad := range t.adj[cur.node] {
			if blockedNodes[ad.neighbor] || blockedEdges[[2]NodeID{cur.node, ad.neighbor}] {
				continue
			}
			alt := cur.dist + t.edgeWeight(t.links[ad.link], w)
			if alt < o.d[ad.neighbor] {
				o.d[ad.neighbor] = alt
				o.prev[ad.neighbor] = cur.node
				if o.pos[ad.neighbor] >= 0 {
					o.hFix(ad.neighbor, alt)
				} else {
					o.hPush(ad.neighbor, alt)
				}
			}
		}
	}
	if math.IsInf(o.d[dst], 1) {
		return nil, math.Inf(1)
	}
	n := 0
	for v := dst; v != -1; v = o.prev[v] {
		n++
	}
	path := make([]NodeID, n)
	for v, i := dst, n-1; v != -1; v, i = o.prev[v], i-1 {
		path[i] = v
	}
	return path, o.d[dst]
}

// hashAvoid hashes an avoid set deterministically (FNV-1a over the
// sorted members). The empty set hashes to 0.
func hashAvoid(nodes map[NodeID]bool, edges map[[2]NodeID]bool) uint64 {
	if len(nodes) == 0 && len(edges) == 0 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	ns := make([]NodeID, 0, len(nodes))
	for n := range nodes {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	for _, n := range ns {
		mix(uint64(uint32(n)))
	}
	mix(0xffffffffffffffff) // separator between node and edge members
	es := make([][2]NodeID, 0, len(edges))
	for e := range edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	for _, e := range es {
		mix(uint64(uint32(e[0]))<<32 | uint64(uint32(e[1])))
	}
	return h
}

// The heap helpers below replicate container/heap's sift discipline
// (including its tie behaviour) over a value-typed slice with a
// position index, so pop order — and therefore deterministic
// tie-breaking in derived paths — matches the original pointer-heap
// implementation bit for bit.

func (o *PathOracle) hLess(i, j int) bool { return o.h[i].dist < o.h[j].dist }

func (o *PathOracle) hSwap(i, j int) {
	o.h[i], o.h[j] = o.h[j], o.h[i]
	o.pos[o.h[i].node] = int32(i)
	o.pos[o.h[j].node] = int32(j)
}

func (o *PathOracle) hPush(node NodeID, dist float64) {
	o.h = append(o.h, oracleItem{node: node, dist: dist})
	o.pos[node] = int32(len(o.h) - 1)
	o.hUp(len(o.h) - 1)
}

func (o *PathOracle) hPop() oracleItem {
	n := len(o.h) - 1
	o.hSwap(0, n)
	it := o.h[n]
	o.h = o.h[:n]
	o.pos[it.node] = -1
	if n > 0 {
		o.hDown(0, n)
	}
	return it
}

// hFix restores heap order after node's key changed to dist.
func (o *PathOracle) hFix(node NodeID, dist float64) {
	i := int(o.pos[node])
	o.h[i].dist = dist
	if !o.hDown(i, len(o.h)) {
		o.hUp(i)
	}
}

func (o *PathOracle) hUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !o.hLess(i, p) {
			break
		}
		o.hSwap(i, p)
		i = p
	}
}

func (o *PathOracle) hDown(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && o.hLess(j2, j1) {
			j = j2
		}
		if !o.hLess(j, i) {
			break
		}
		o.hSwap(i, j)
		i = j
	}
	return i > i0
}
