package topo

import (
	"sort"
	"time"
)

// Weight selects the edge metric used for path computation.
type Weight int

const (
	// ByLatency weights edges by propagation latency (seconds).
	ByLatency Weight = iota
	// ByHops weights every edge 1.
	ByHops
)

func (t *Topology) edgeWeight(l Link, w Weight) float64 {
	if w == ByHops {
		return 1
	}
	return l.Latency.Seconds()
}

// ShortestPath returns the minimum-weight path from src to dst, or nil if
// unreachable. Ties are broken deterministically by neighbor order. The
// computation is memoized in the topology's PathOracle; the caller owns
// the returned slice (it is a copy of the cached path).
func (t *Topology) ShortestPath(src, dst NodeID, w Weight) []NodeID {
	path, _ := t.shortestPathAvoiding(src, dst, w, nil, nil)
	return path
}

// Distances returns minimum weights from src to every node (math.Inf(1)
// for unreachable nodes). The result is memoized in the topology's
// PathOracle and shared between callers: treat it as read-only.
func (t *Topology) Distances(src NodeID, w Weight) []float64 {
	if s := t.snapshot(); s != nil {
		return s.Oracle().Distances(src, w)
	}
	return t.Oracle().Distances(src, w)
}

// shortestPathAvoiding runs Dijkstra while skipping the given nodes and
// directed edges; used as the spur-path primitive of Yen's algorithm.
// It consults the PathOracle cache and copies the cached path so the
// caller gets an owned slice, as it always has.
func (t *Topology) shortestPathAvoiding(src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	var p []NodeID
	var cost float64
	if s := t.snapshot(); s != nil {
		p, cost = s.Oracle().shortestAvoiding(src, dst, w, blockedNodes, blockedEdges)
	} else {
		p, cost = t.Oracle().shortestAvoiding(src, dst, w, blockedNodes, blockedEdges)
	}
	if p == nil {
		return nil, cost
	}
	out := make([]NodeID, len(p))
	copy(out, p)
	return out, cost
}

type candidate struct {
	path []NodeID
	cost float64
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// non-decreasing weight order (Yen's algorithm).
func (t *Topology) KShortestPaths(src, dst NodeID, k int, w Weight) [][]NodeID {
	if k <= 0 {
		return nil
	}
	first, cost := t.shortestPathAvoiding(src, dst, w, nil, nil)
	if first == nil {
		return nil
	}
	result := [][]NodeID{first}
	costs := []float64{cost}
	var pool []candidate

	for len(result) < k {
		prevPath := result[len(result)-1]
		for i := 0; i+1 < len(prevPath); i++ {
			spurNode := prevPath[i]
			rootPath := prevPath[:i+1]

			blockedEdges := make(map[[2]NodeID]bool)
			for _, p := range result {
				if len(p) > i && equalPath(p[:i+1], rootPath) {
					blockedEdges[[2]NodeID{p[i], p[i+1]}] = true
				}
			}
			blockedNodes := make(map[NodeID]bool)
			for _, n := range rootPath[:len(rootPath)-1] {
				blockedNodes[n] = true
			}
			spur, spurCost := t.shortestPathAvoiding(spurNode, dst, w, blockedNodes, blockedEdges)
			if spur == nil {
				continue
			}
			total := append(append([]NodeID{}, rootPath[:len(rootPath)-1]...), spur...)
			rootCost := 0.0
			for j := 0; j+1 < len(rootPath); j++ {
				l, _ := t.LinkBetween(rootPath[j], rootPath[j+1])
				rootCost += t.edgeWeight(l, w)
			}
			c := candidate{path: total, cost: rootCost + spurCost}
			dup := false
			for _, existing := range pool {
				if equalPath(existing.path, c.path) {
					dup = true
					break
				}
			}
			for _, existing := range result {
				if equalPath(existing, c.path) {
					dup = true
					break
				}
			}
			if !dup {
				pool = append(pool, c)
			}
		}
		if len(pool) == 0 {
			break
		}
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].cost < pool[j].cost })
		best := pool[0]
		pool = pool[1:]
		result = append(result, best.path)
		costs = append(costs, best.cost)
	}
	_ = costs
	return result
}

func equalPath(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Centroid returns the node minimizing the worst-case latency-weighted
// distance to all other nodes (the paper places the controller there).
// The result is memoized per topology generation.
func (t *Topology) Centroid() NodeID {
	if s := t.snapshot(); s != nil {
		return s.Oracle().Centroid()
	}
	return t.Oracle().Centroid()
}

// ControlLatencies returns the control-channel latency from the controller
// node to every switch: the latency-weighted shortest-path distance. On a
// frozen topology the result is memoized and shared: treat it as
// read-only.
func (t *Topology) ControlLatencies(controller NodeID) []time.Duration {
	if s := t.snapshot(); s != nil {
		return s.Oracle().ControlLatencies(controller)
	}
	dist := t.Distances(controller, ByLatency)
	out := make([]time.Duration, len(dist))
	for i, d := range dist {
		out[i] = time.Duration(d * float64(time.Second))
	}
	return out
}
