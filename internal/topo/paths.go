package topo

import (
	"container/heap"
	"math"
	"sort"
	"time"
)

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q *pq) update(it *pqItem) { heap.Fix(q, it.idx) }

// Weight selects the edge metric used for path computation.
type Weight int

const (
	// ByLatency weights edges by propagation latency (seconds).
	ByLatency Weight = iota
	// ByHops weights every edge 1.
	ByHops
)

func (t *Topology) edgeWeight(l Link, w Weight) float64 {
	if w == ByHops {
		return 1
	}
	return l.Latency.Seconds()
}

// ShortestPath returns the minimum-weight path from src to dst, or nil if
// unreachable. Ties are broken deterministically by neighbor order.
func (t *Topology) ShortestPath(src, dst NodeID, w Weight) []NodeID {
	path, _ := t.shortestPathAvoiding(src, dst, w, nil, nil)
	return path
}

// Distances returns minimum weights from src to every node (math.Inf(1)
// for unreachable nodes).
func (t *Topology) Distances(src NodeID, w Weight) []float64 {
	dist := make([]float64, len(t.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	items := make([]*pqItem, len(t.nodes))
	q := &pq{}
	it := &pqItem{node: src, dist: 0}
	items[src] = it
	heap.Push(q, it)
	for q.Len() > 0 {
		cur := heap.Pop(q).(*pqItem)
		items[cur.node] = nil
		for _, ad := range t.adj[cur.node] {
			alt := cur.dist + t.edgeWeight(t.links[ad.link], w)
			if alt < dist[ad.neighbor] {
				dist[ad.neighbor] = alt
				if items[ad.neighbor] != nil {
					items[ad.neighbor].dist = alt
					q.update(items[ad.neighbor])
				} else {
					ni := &pqItem{node: ad.neighbor, dist: alt}
					items[ad.neighbor] = ni
					heap.Push(q, ni)
				}
			}
		}
	}
	return dist
}

// shortestPathAvoiding runs Dijkstra while skipping the given nodes and
// directed edges; used as the spur-path primitive of Yen's algorithm.
func (t *Topology) shortestPathAvoiding(src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	if src == dst {
		return []NodeID{src}, 0
	}
	dist := make([]float64, len(t.nodes))
	prev := make([]NodeID, len(t.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	items := make([]*pqItem, len(t.nodes))
	q := &pq{}
	it := &pqItem{node: src, dist: 0}
	items[src] = it
	heap.Push(q, it)
	for q.Len() > 0 {
		cur := heap.Pop(q).(*pqItem)
		items[cur.node] = nil
		if cur.node == dst {
			break
		}
		for _, ad := range t.adj[cur.node] {
			if blockedNodes[ad.neighbor] || blockedEdges[[2]NodeID{cur.node, ad.neighbor}] {
				continue
			}
			alt := cur.dist + t.edgeWeight(t.links[ad.link], w)
			if alt < dist[ad.neighbor] {
				dist[ad.neighbor] = alt
				prev[ad.neighbor] = cur.node
				if items[ad.neighbor] != nil {
					items[ad.neighbor].dist = alt
					q.update(items[ad.neighbor])
				} else {
					ni := &pqItem{node: ad.neighbor, dist: alt}
					items[ad.neighbor] = ni
					heap.Push(q, ni)
				}
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	var path []NodeID
	for n := dst; n != -1; n = prev[n] {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst]
}

type candidate struct {
	path []NodeID
	cost float64
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// non-decreasing weight order (Yen's algorithm).
func (t *Topology) KShortestPaths(src, dst NodeID, k int, w Weight) [][]NodeID {
	if k <= 0 {
		return nil
	}
	first, cost := t.shortestPathAvoiding(src, dst, w, nil, nil)
	if first == nil {
		return nil
	}
	result := [][]NodeID{first}
	costs := []float64{cost}
	var pool []candidate

	for len(result) < k {
		prevPath := result[len(result)-1]
		for i := 0; i+1 < len(prevPath); i++ {
			spurNode := prevPath[i]
			rootPath := prevPath[:i+1]

			blockedEdges := make(map[[2]NodeID]bool)
			for _, p := range result {
				if len(p) > i && equalPath(p[:i+1], rootPath) {
					blockedEdges[[2]NodeID{p[i], p[i+1]}] = true
				}
			}
			blockedNodes := make(map[NodeID]bool)
			for _, n := range rootPath[:len(rootPath)-1] {
				blockedNodes[n] = true
			}
			spur, spurCost := t.shortestPathAvoiding(spurNode, dst, w, blockedNodes, blockedEdges)
			if spur == nil {
				continue
			}
			total := append(append([]NodeID{}, rootPath[:len(rootPath)-1]...), spur...)
			rootCost := 0.0
			for j := 0; j+1 < len(rootPath); j++ {
				l, _ := t.LinkBetween(rootPath[j], rootPath[j+1])
				rootCost += t.edgeWeight(l, w)
			}
			c := candidate{path: total, cost: rootCost + spurCost}
			dup := false
			for _, existing := range pool {
				if equalPath(existing.path, c.path) {
					dup = true
					break
				}
			}
			for _, existing := range result {
				if equalPath(existing, c.path) {
					dup = true
					break
				}
			}
			if !dup {
				pool = append(pool, c)
			}
		}
		if len(pool) == 0 {
			break
		}
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].cost < pool[j].cost })
		best := pool[0]
		pool = pool[1:]
		result = append(result, best.path)
		costs = append(costs, best.cost)
	}
	_ = costs
	return result
}

func equalPath(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Centroid returns the node minimizing the worst-case latency-weighted
// distance to all other nodes (the paper places the controller there).
func (t *Topology) Centroid() NodeID {
	best := NodeID(0)
	bestWorst := math.Inf(1)
	for _, n := range t.Nodes() {
		dist := t.Distances(n, ByLatency)
		worst := 0.0
		for _, d := range dist {
			if d > worst {
				worst = d
			}
		}
		if worst < bestWorst {
			bestWorst = worst
			best = n
		}
	}
	return best
}

// ControlLatencies returns the control-channel latency from the controller
// node to every switch: the latency-weighted shortest-path distance.
func (t *Topology) ControlLatencies(controller NodeID) []time.Duration {
	dist := t.Distances(controller, ByLatency)
	out := make([]time.Duration, len(dist))
	for i, d := range dist {
		out[i] = time.Duration(d * float64(time.Second))
	}
	return out
}
