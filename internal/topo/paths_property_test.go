package topo

import (
	"math/rand"
	"testing"
	"time"
)

// randomConnected builds a deterministic random connected graph with n
// nodes and extra chord edges.
func randomConnected(n int, extra int, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	t := New("rand")
	for i := 0; i < n; i++ {
		t.AddNode("", 0, 0)
	}
	// Random spanning tree.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		t.AddLink(a, b, time.Duration(1+rng.Intn(20))*time.Millisecond, 100)
	}
	for e := 0; e < extra; e++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if _, exists := t.LinkBetween(a, b); exists {
			continue
		}
		t.AddLink(a, b, time.Duration(1+rng.Intn(20))*time.Millisecond, 100)
	}
	return t
}

// bruteShortest enumerates all simple paths (small n!) and returns the
// cheapest latency.
func bruteShortest(t *Topology, src, dst NodeID) float64 {
	best := -1.0
	var dfs func(cur NodeID, cost float64, seen map[NodeID]bool)
	dfs = func(cur NodeID, cost float64, seen map[NodeID]bool) {
		if cur == dst {
			if best < 0 || cost < best {
				best = cost
			}
			return
		}
		for _, nb := range t.Neighbors(cur) {
			if seen[nb] {
				continue
			}
			l, _ := t.LinkBetween(cur, nb)
			seen[nb] = true
			dfs(nb, cost+l.Latency.Seconds(), seen)
			delete(seen, nb)
		}
	}
	dfs(src, 0, map[NodeID]bool{src: true})
	return best
}

func TestShortestPathMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := randomConnected(7, 5, seed)
		for _, src := range g.Nodes() {
			for _, dst := range g.Nodes() {
				if src == dst {
					continue
				}
				p := g.ShortestPath(src, dst, ByLatency)
				if p == nil {
					t.Fatalf("seed %d: no path %d->%d in connected graph", seed, src, dst)
				}
				got := g.PathLatency(p).Seconds()
				want := bruteShortest(g, src, dst)
				if diff := got - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("seed %d: %d->%d dijkstra %.6f vs brute %.6f (path %v)",
						seed, src, dst, got, want, p)
				}
			}
		}
	}
}

func TestKShortestPathsProperties(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomConnected(8, 6, 100+seed)
		src, dst := NodeID(0), NodeID(7)
		paths := g.KShortestPaths(src, dst, 6, ByLatency)
		if len(paths) == 0 {
			t.Fatalf("seed %d: no paths", seed)
		}
		seen := map[string]bool{}
		prev := -1.0
		for _, p := range paths {
			// Simple, valid, endpoints correct.
			if err := g.ValidatePath(p); err != nil {
				t.Fatalf("seed %d: invalid path %v: %v", seed, p, err)
			}
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("seed %d: endpoints wrong: %v", seed, p)
			}
			// Unique.
			key := ""
			for _, n := range p {
				key += string(rune(n)) + ","
			}
			if seen[key] {
				t.Fatalf("seed %d: duplicate path %v", seed, p)
			}
			seen[key] = true
			// Non-decreasing cost.
			c := g.PathLatency(p).Seconds()
			if c < prev-1e-9 {
				t.Fatalf("seed %d: cost regressed: %v", seed, paths)
			}
			prev = c
		}
		// First path is the shortest path.
		if g.PathLatency(paths[0]) != g.PathLatency(g.ShortestPath(src, dst, ByLatency)) {
			t.Fatalf("seed %d: first k-path not shortest", seed)
		}
	}
}

func TestDistancesSymmetricOnUndirectedGraph(t *testing.T) {
	g := randomConnected(9, 7, 5)
	for _, a := range g.Nodes() {
		da := g.Distances(a, ByLatency)
		for _, b := range g.Nodes() {
			db := g.Distances(b, ByLatency)
			if diff := da[b] - db[a]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("asymmetric distances %d<->%d: %f vs %f", a, b, da[b], db[a])
			}
		}
	}
}
