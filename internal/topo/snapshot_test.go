package topo

import (
	"reflect"
	"sync"
	"testing"
)

func TestFreezeIdempotentAndImmutable(t *testing.T) {
	g := B4()
	s1 := g.Freeze()
	s2 := g.Freeze()
	if s1 != s2 {
		t.Fatal("Freeze is not idempotent")
	}
	if !g.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen topology did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddNode", func() { g.AddNode("x", 0, 0) })
	mustPanic("AddLink", func() { g.AddLink(0, 5, 1, 1) })
}

func TestSnapshotMatchesTopology(t *testing.T) {
	for _, mk := range []func() *Topology{Synthetic, B4, Internet2, func() *Topology { return FatTree(4) }} {
		frozen := mk()
		frozen.Freeze()
		plain := mk()
		n := plain.NumNodes()
		if frozen.NumNodes() != n {
			t.Fatalf("%s: node count mismatch", plain.Name)
		}
		for src := NodeID(0); int(src) < n; src++ {
			for _, w := range []Weight{ByLatency, ByHops} {
				df := frozen.Distances(src, w)
				dp := plain.Distances(src, w)
				if !reflect.DeepEqual(df, dp) {
					t.Fatalf("%s: Distances(%d,%v) differ", plain.Name, src, w)
				}
			}
			for dst := NodeID(0); int(dst) < n; dst++ {
				pf := frozen.ShortestPath(src, dst, ByLatency)
				pp := plain.ShortestPath(src, dst, ByLatency)
				if !reflect.DeepEqual(pf, pp) {
					t.Fatalf("%s: ShortestPath(%d,%d) = %v, want %v", plain.Name, src, dst, pf, pp)
				}
			}
		}
		// Yen's spur queries (blocked nodes/edges) must also agree.
		kf := frozen.KShortestPaths(0, NodeID(n-1), 5, ByHops)
		kp := plain.KShortestPaths(0, NodeID(n-1), 5, ByHops)
		if !reflect.DeepEqual(kf, kp) {
			t.Fatalf("%s: KShortestPaths differ:\nfrozen %v\nplain  %v", plain.Name, kf, kp)
		}
		if frozen.Centroid() != plain.Centroid() {
			t.Fatalf("%s: Centroid differs", plain.Name)
		}
		if !reflect.DeepEqual(frozen.ControlLatencies(frozen.Centroid()), plain.ControlLatencies(plain.Centroid())) {
			t.Fatalf("%s: ControlLatencies differ", plain.Name)
		}
		for _, node := range []string{plain.nodes[0].Name, plain.nodes[n-1].Name} {
			idF, okF := frozen.NodeByName(node)
			idP, okP := plain.NodeByName(node)
			if idF != idP || okF != okP {
				t.Fatalf("%s: NodeByName(%q) = %d,%v want %d,%v", plain.Name, node, idF, okF, idP, okP)
			}
		}
	}
}

// TestSharedOracleConcurrent hammers one frozen snapshot from 8
// goroutines (run under -race via make race): every worker issues the
// full query mix — distances, shortest paths, Yen spur queries with
// avoid sets, centroid, control latencies — and checks the results
// against a private unfrozen reference topology.
func TestSharedOracleConcurrent(t *testing.T) {
	g := Internet2()
	g.Freeze()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ref := Internet2() // private, unfrozen reference
			n := g.NumNodes()
			for iter := 0; iter < 3; iter++ {
				for src := NodeID(0); int(src) < n; src++ {
					// Rotate the starting dst per worker so goroutines
					// collide on some keys and single-flight others.
					for d := 0; d < n; d++ {
						dst := NodeID((d + w) % n)
						got := g.ShortestPath(src, dst, ByLatency)
						want := ref.ShortestPath(src, dst, ByLatency)
						if !reflect.DeepEqual(got, want) {
							t.Errorf("worker %d: ShortestPath(%d,%d) = %v, want %v", w, src, dst, got, want)
							return
						}
					}
					gd := g.Distances(src, ByHops)
					rd := ref.Distances(src, ByHops)
					if !reflect.DeepEqual(gd, rd) {
						t.Errorf("worker %d: Distances(%d) differ", w, src)
						return
					}
				}
				if got, want := g.KShortestPaths(0, NodeID(n-1), 4, ByLatency), ref.KShortestPaths(0, NodeID(n-1), 4, ByLatency); !reflect.DeepEqual(got, want) {
					t.Errorf("worker %d: KShortestPaths differ", w)
					return
				}
				if g.Centroid() != ref.Centroid() {
					t.Errorf("worker %d: Centroid differs", w)
					return
				}
				lat := g.ControlLatencies(g.Centroid())
				if !reflect.DeepEqual(lat, ref.ControlLatencies(ref.Centroid())) {
					t.Errorf("worker %d: ControlLatencies differ", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
