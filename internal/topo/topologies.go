package topo

import (
	"fmt"
	"sort"
	"time"
)

// DefaultWANCapacity is the per-direction link capacity (Mbps) used for the
// WAN evaluation topologies.
const DefaultWANCapacity = 1000.0

// Synthetic returns the 8-node example topology of the paper's Fig. 1.
// Nodes are named v0..v7; every link has a homogeneous 20 ms latency as in
// §9.1. The old path of the example flow is v0,v4,v2,v7 and the new path
// v0,v1,v2,v3,v4,v5,v6,v7.
func Synthetic() *Topology {
	t := New("synthetic")
	for i := 0; i < 8; i++ {
		t.AddNode(fmt.Sprintf("v%d", i), 0, 0)
	}
	const lat = 20 * time.Millisecond
	edges := [][2]NodeID{
		{0, 4}, {4, 2}, {2, 7}, // old path
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, // new path
	}
	for _, e := range edges {
		t.AddLink(e[0], e[1], lat, DefaultWANCapacity)
	}
	return t
}

// SyntheticPaths returns the old and new flow paths of the Fig-1 example.
func SyntheticPaths() (oldPath, newPath []NodeID) {
	return []NodeID{0, 4, 2, 7}, []NodeID{0, 1, 2, 3, 4, 5, 6, 7}
}

// Fig2Scenario returns the 5-node topology of the paper's Fig. 2 together
// with the three configurations (a), (b), (c) as next-hop maps for the
// single flow v0→v4.
//
// (a) initial: v0→v1→v2→v3→v4
// (b) partial: reroutes v2 directly to v4
// (c) latest:  path v0→v3→v1→v2→v4
//
// Deploying (c) while (b) is delayed leaves v2→v3 in place, creating the
// v1,v2,v3 forwarding loop the paper demonstrates.
func Fig2Scenario() (t *Topology, configA, configB, configC map[NodeID]NodeID) {
	t = New("fig2")
	for i := 0; i < 5; i++ {
		t.AddNode(fmt.Sprintf("v%d", i), 0, 0)
	}
	// Software-switch-like latency: the loop must consume the TTL well
	// within the inconsistency window, as in the paper's testbed.
	const lat = time.Millisecond
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {2, 4}, {0, 3}, {1, 3}} {
		t.AddLink(e[0], e[1], lat, DefaultWANCapacity)
	}
	configA = map[NodeID]NodeID{0: 1, 1: 2, 2: 3, 3: 4}
	configB = map[NodeID]NodeID{0: 1, 1: 2, 2: 4}       // update of v2 only
	configC = map[NodeID]NodeID{0: 3, 3: 1, 1: 2, 2: 4} // assumes (b) applied
	return t, configA, configB, configC
}

// B4 returns a 12-node, 19-edge replica of Google's B4 inter-datacenter
// WAN (Jain et al., SIGCOMM'13). Site coordinates are approximate; link
// latencies derive from great-circle distance at 2·10^8 m/s.
func B4() *Topology {
	t := New("b4")
	type site struct {
		name     string
		lat, lon float64
	}
	sites := []site{
		{"Oregon", 45.60, -121.18},     // 0 The Dalles
		{"California", 37.42, -122.08}, // 1 Mountain View
		{"Iowa", 41.26, -95.86},        // 2 Council Bluffs
		{"Oklahoma", 36.31, -95.32},    // 3 Pryor
		{"Atlanta", 33.75, -84.39},     // 4 Douglas County
		{"SCarolina", 33.19, -80.01},   // 5 Berkeley County
		{"Virginia", 39.04, -77.49},    // 6 Ashburn
		{"Dublin", 53.35, -6.26},       // 7
		{"Belgium", 50.47, 3.87},       // 8 St. Ghislain
		{"Finland", 60.57, 27.19},      // 9 Hamina
		{"Taiwan", 24.07, 120.54},      // 10 Changhua
		{"Singapore", 1.35, 103.82},    // 11
	}
	for _, s := range sites {
		t.AddNode(s.name, s.lat, s.lon)
	}
	edges := [][2]NodeID{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4},
		{4, 5}, {5, 6}, {4, 6}, {6, 7}, {6, 8}, {7, 8}, {8, 9},
		{7, 9}, {0, 10}, {1, 10}, {10, 11}, {11, 8},
	}
	for _, e := range edges {
		t.geoLink(e[0], e[1], DefaultWANCapacity)
	}
	return t
}

// Internet2 returns a 16-node, 26-edge replica of the Internet2 research
// backbone with US-city coordinates.
func Internet2() *Topology {
	t := New("internet2")
	type site struct {
		name     string
		lat, lon float64
	}
	sites := []site{
		{"Seattle", 47.61, -122.33},    // 0
		{"Sunnyvale", 37.37, -122.04},  // 1
		{"LosAngeles", 34.05, -118.24}, // 2
		{"SaltLake", 40.76, -111.89},   // 3
		{"Denver", 39.74, -104.99},     // 4
		{"ElPaso", 31.76, -106.49},     // 5
		{"Houston", 29.76, -95.37},     // 6
		{"KansasCity", 39.10, -94.58},  // 7
		{"Dallas", 32.78, -96.80},      // 8
		{"Chicago", 41.88, -87.63},     // 9
		{"Atlanta", 33.75, -84.39},     // 10
		{"Nashville", 36.16, -86.78},   // 11
		{"Washington", 38.91, -77.04},  // 12
		{"NewYork", 40.71, -74.01},     // 13
		{"Cleveland", 41.50, -81.69},   // 14
		{"Boston", 42.36, -71.06},      // 15
	}
	for _, s := range sites {
		t.AddNode(s.name, s.lat, s.lon)
	}
	edges := [][2]NodeID{
		{0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 5}, {2, 3}, {3, 4},
		{4, 7}, {4, 5}, {5, 6}, {6, 8}, {8, 7}, {7, 9}, {9, 14},
		{14, 13}, {13, 15}, {15, 14}, {13, 12}, {12, 14}, {12, 10},
		{10, 6}, {10, 11}, {11, 8}, {11, 9}, {9, 13}, {0, 9},
	}
	for _, e := range edges {
		t.geoLink(e[0], e[1], DefaultWANCapacity)
	}
	return t
}

// geoMesh builds a connected topology over the given coordinates with
// exactly wantEdges edges: a minimum spanning tree by geographic distance
// plus the shortest remaining pairs. Used to replicate Topology-Zoo sizes
// (AttMpls, Chinanet) where only node/edge counts matter to the paper's
// Fig. 8 (see DESIGN.md substitution table).
func geoMesh(name string, names []string, coords [][2]float64, wantEdges int) *Topology {
	t := New(name)
	n := len(names)
	for i := 0; i < n; i++ {
		t.AddNode(names[i], coords[i][0], coords[i][1])
	}
	if wantEdges < n-1 || wantEdges > n*(n-1)/2 {
		panic("topo: geoMesh edge budget out of range")
	}
	type pair struct {
		a, b NodeID
		km   float64
	}
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, pair{NodeID(i), NodeID(j),
				HaversineKm(coords[i][0], coords[i][1], coords[j][0], coords[j][1])})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].km < pairs[j].km })

	// Kruskal MST first, then fill with shortest unused pairs.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	used := make(map[[2]NodeID]bool)
	added := 0
	for _, p := range pairs {
		if added >= n-1 {
			break
		}
		ra, rb := find(int(p.a)), find(int(p.b))
		if ra == rb {
			continue
		}
		parent[ra] = rb
		t.geoLink(p.a, p.b, DefaultWANCapacity)
		used[[2]NodeID{p.a, p.b}] = true
		added++
	}
	for _, p := range pairs {
		if added >= wantEdges {
			break
		}
		if used[[2]NodeID{p.a, p.b}] {
			continue
		}
		t.geoLink(p.a, p.b, DefaultWANCapacity)
		used[[2]NodeID{p.a, p.b}] = true
		added++
	}
	return t
}

// AttMpls returns a 25-node, 56-edge topology matching the Topology-Zoo
// AttMpls size, over US-city coordinates.
func AttMpls() *Topology {
	names := []string{
		"NewYork", "Chicago", "Washington", "Atlanta", "Dallas",
		"LosAngeles", "SanFrancisco", "Seattle", "Denver", "KansasCity",
		"Houston", "Miami", "Boston", "Philadelphia", "Phoenix",
		"Detroit", "Minneapolis", "StLouis", "Orlando", "Cleveland",
		"Nashville", "Portland", "SaltLake", "Austin", "Charlotte",
	}
	coords := [][2]float64{
		{40.71, -74.01}, {41.88, -87.63}, {38.91, -77.04}, {33.75, -84.39}, {32.78, -96.80},
		{34.05, -118.24}, {37.77, -122.42}, {47.61, -122.33}, {39.74, -104.99}, {39.10, -94.58},
		{29.76, -95.37}, {25.76, -80.19}, {42.36, -71.06}, {39.95, -75.17}, {33.45, -112.07},
		{42.33, -83.05}, {44.98, -93.27}, {38.63, -90.20}, {28.54, -81.38}, {41.50, -81.69},
		{36.16, -86.78}, {45.51, -122.68}, {40.76, -111.89}, {30.27, -97.74}, {35.23, -80.84},
	}
	return geoMesh("attmpls", names, coords, 56)
}

// Chinanet returns a 38-node, 62-edge topology matching the Topology-Zoo
// Chinanet size, over Chinese-city coordinates.
func Chinanet() *Topology {
	names := []string{
		"Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Chengdu",
		"Chongqing", "Wuhan", "Xian", "Hangzhou", "Nanjing",
		"Tianjin", "Shenyang", "Harbin", "Changchun", "Jinan",
		"Qingdao", "Zhengzhou", "Changsha", "Fuzhou", "Xiamen",
		"Kunming", "Guiyang", "Nanning", "Haikou", "Lanzhou",
		"Xining", "Urumqi", "Hohhot", "Taiyuan", "Shijiazhuang",
		"Hefei", "Nanchang", "Wenzhou", "Ningbo", "Dalian",
		"Suzhou", "Dongguan", "Lhasa",
	}
	coords := [][2]float64{
		{39.90, 116.40}, {31.23, 121.47}, {23.13, 113.26}, {22.54, 114.06}, {30.57, 104.07},
		{29.56, 106.55}, {30.59, 114.31}, {34.34, 108.94}, {30.27, 120.16}, {32.06, 118.80},
		{39.34, 117.36}, {41.81, 123.43}, {45.80, 126.53}, {43.82, 125.32}, {36.65, 117.12},
		{36.07, 120.38}, {34.75, 113.63}, {28.23, 112.94}, {26.07, 119.30}, {24.48, 118.09},
		{25.04, 102.72}, {26.65, 106.63}, {22.82, 108.37}, {20.04, 110.20}, {36.06, 103.83},
		{36.62, 101.78}, {43.83, 87.62}, {40.84, 111.75}, {37.87, 112.55}, {38.04, 114.51},
		{31.82, 117.23}, {28.68, 115.86}, {28.00, 120.67}, {29.87, 121.54}, {38.91, 121.61},
		{31.30, 120.58}, {23.02, 113.75}, {29.65, 91.14},
	}
	return geoMesh("chinanet", names, coords, 62)
}

// FatTree returns a K-ary fat-tree switch topology (K even): (K/2)^2 core
// switches and K pods of K/2 aggregation + K/2 edge switches. Links have a
// homogeneous datacenter latency of 100µs and 10 Gbps capacity. Hosts are
// not modeled; flows run between edge switches.
func FatTree(k int) *Topology {
	if k < 2 || k%2 != 0 {
		panic("topo: FatTree requires even k >= 2")
	}
	t := New(fmt.Sprintf("fattree-k%d", k))
	const lat = 100 * time.Microsecond
	const capacity = 10000.0
	half := k / 2

	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = t.AddNode(fmt.Sprintf("core%d", i), 0, 0)
	}
	agg := make([][]NodeID, k)
	edge := make([][]NodeID, k)
	for p := 0; p < k; p++ {
		agg[p] = make([]NodeID, half)
		edge[p] = make([]NodeID, half)
		for i := 0; i < half; i++ {
			agg[p][i] = t.AddNode(fmt.Sprintf("agg%d_%d", p, i), 0, 0)
		}
		for i := 0; i < half; i++ {
			edge[p][i] = t.AddNode(fmt.Sprintf("edge%d_%d", p, i), 0, 0)
		}
		for a := 0; a < half; a++ {
			for e := 0; e < half; e++ {
				t.AddLink(agg[p][a], edge[p][e], lat, capacity)
			}
		}
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				t.AddLink(core[a*half+c], agg[p][a], lat, capacity)
			}
		}
	}
	return t
}

// EdgeSwitches returns the edge-layer switches of a FatTree topology.
func EdgeSwitches(t *Topology) []NodeID {
	var out []NodeID
	for _, id := range t.Nodes() {
		if len(t.Node(id).Name) >= 4 && t.Node(id).Name[:4] == "edge" {
			out = append(out, id)
		}
	}
	return out
}
