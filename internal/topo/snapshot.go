package topo

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Snapshot is an immutable, read-optimized view of a frozen Topology:
// CSR-style adjacency arrays, frozen per-edge weights, and a node-name
// index table, shared read-only by every trial of a figure. Its
// SharedOracle memoizes path computation concurrently (read-mostly,
// single-flight on miss), so each (src, dst, weight, avoid) Dijkstra
// runs once per grid instead of once per trial.
//
// A Snapshot is created by Topology.Freeze, which marks the topology
// immutable; all Snapshot methods are safe for concurrent use.
type Snapshot struct {
	t       *Topology
	version uint64

	// CSR adjacency: node n's attachments are rows
	// adjStart[n] .. adjStart[n+1] of the edge arrays, in port order
	// (identical to Topology.adj iteration order, so Dijkstra
	// relaxation order — and therefore tie-breaking — is unchanged).
	adjStart    []int32
	adjNeighbor []NodeID
	adjPort     []PortID
	adjLink     []LinkID
	// wLatency is the frozen ByLatency weight per directed CSR edge
	// (ByHops is the constant 1 and needs no table).
	wLatency []float64

	// nameIndex maps node names to IDs (first occurrence wins, matching
	// Topology.NodeByName's linear scan).
	nameIndex map[string]NodeID

	oracle *SharedOracle
}

// Freeze marks the topology immutable and returns its shared snapshot.
// Further AddNode/AddLink calls panic. Freeze is idempotent and safe
// for concurrent use; every call returns the same Snapshot.
func (t *Topology) Freeze() *Snapshot {
	t.snapOnce.Do(func() {
		t.frozen = true
		t.snap = newSnapshot(t)
	})
	return t.snap
}

// Frozen reports whether Freeze has been called.
func (t *Topology) Frozen() bool { return t.snap != nil }

// snapshot returns the topology's snapshot when frozen, else nil. The
// path wrapper methods use it to route queries to the shared oracle.
func (t *Topology) snapshot() *Snapshot { return t.snap }

func newSnapshot(t *Topology) *Snapshot {
	n := t.NumNodes()
	edges := 0
	for _, row := range t.adj {
		edges += len(row)
	}
	s := &Snapshot{
		t:           t,
		version:     t.version,
		adjStart:    make([]int32, n+1),
		adjNeighbor: make([]NodeID, 0, edges),
		adjPort:     make([]PortID, 0, edges),
		adjLink:     make([]LinkID, 0, edges),
		wLatency:    make([]float64, 0, edges),
		nameIndex:   make(map[string]NodeID, n),
	}
	for i, row := range t.adj {
		s.adjStart[i] = int32(len(s.adjNeighbor))
		for _, ad := range row {
			s.adjNeighbor = append(s.adjNeighbor, ad.neighbor)
			s.adjPort = append(s.adjPort, ad.port)
			s.adjLink = append(s.adjLink, ad.link)
			s.wLatency = append(s.wLatency, t.links[ad.link].Latency.Seconds())
		}
	}
	s.adjStart[n] = int32(len(s.adjNeighbor))
	for i := len(t.nodes) - 1; i >= 0; i-- {
		// Reverse order so the first occurrence of a duplicate name wins.
		s.nameIndex[t.nodes[i].Name] = t.nodes[i].ID
	}
	s.oracle = newSharedOracle(s)
	return s
}

// Topo returns the frozen topology the snapshot was built from.
func (s *Snapshot) Topo() *Topology { return s.t }

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return len(s.adjStart) - 1 }

// Degree returns the number of links attached to n.
func (s *Snapshot) Degree(n NodeID) int {
	return int(s.adjStart[n+1] - s.adjStart[n])
}

// NodeByName returns the first node with the given name via the frozen
// index table.
func (s *Snapshot) NodeByName(name string) (NodeID, bool) {
	id, ok := s.nameIndex[name]
	return id, ok
}

// Oracle returns the snapshot's concurrency-safe shared path oracle.
func (s *Snapshot) Oracle() *SharedOracle { return s.oracle }

// pathEntry is one memoized point-to-point result.
type pathEntry struct {
	path []NodeID
	cost float64
}

// dijkstraScratch holds the per-sweep working set (distance,
// predecessor and heap-position arrays plus the value-typed heap),
// recycled through a sync.Pool so concurrent cache misses allocate only
// the slices retained in the cache.
type dijkstraScratch struct {
	d    []float64
	prev []NodeID
	pos  []int32
	h    []oracleItem
}

// SharedOracle memoizes shortest-path computation over a Snapshot.
//
// Unlike PathOracle (one mutex, per-topology-instance), SharedOracle is
// built for many concurrent readers over one shared snapshot: hits take
// only an RLock, and misses are single-flighted — the first caller of a
// key computes it on pooled scratch while later callers of the same key
// wait for that one computation instead of repeating it.
//
// Cached slices are shared and read-only, matching the PathOracle
// contract. The sweep itself replicates PathOracle's heap discipline
// exactly, so every derived path is byte-identical whether a topology
// is frozen or not.
type SharedOracle struct {
	s *Snapshot

	mu       sync.RWMutex
	dist     map[distKey][]float64
	path     map[pathKey]pathEntry
	ctrl     map[NodeID][]time.Duration
	inflight map[interface{}]chan struct{}

	centroidOnce sync.Once
	centroid     NodeID

	scratch sync.Pool
}

func newSharedOracle(s *Snapshot) *SharedOracle {
	o := &SharedOracle{
		s:        s,
		dist:     make(map[distKey][]float64),
		path:     make(map[pathKey]pathEntry),
		ctrl:     make(map[NodeID][]time.Duration),
		inflight: make(map[interface{}]chan struct{}),
	}
	o.scratch.New = func() interface{} {
		n := s.NumNodes()
		return &dijkstraScratch{
			d:    make([]float64, n),
			prev: make([]NodeID, n),
			pos:  make([]int32, n),
		}
	}
	return o
}

// acquire resolves key against cache via lookup (called under RLock),
// single-flighting misses: exactly one caller per key runs compute
// (outside all locks) and publishes via store (called under Lock);
// concurrent callers of the same key block until it lands.
func (o *SharedOracle) acquire(key interface{}, lookup func() bool, compute func(), store func()) {
	for {
		o.mu.RLock()
		hit := lookup()
		o.mu.RUnlock()
		if hit {
			return
		}
		o.mu.Lock()
		if lookup() {
			o.mu.Unlock()
			return
		}
		if done, ok := o.inflight[key]; ok {
			o.mu.Unlock()
			<-done
			continue // re-read the cache; the flight owner stored it
		}
		done := make(chan struct{})
		o.inflight[key] = done
		o.mu.Unlock()

		compute()

		o.mu.Lock()
		store()
		delete(o.inflight, key)
		o.mu.Unlock()
		close(done)
		return
	}
}

// Distances returns minimum weights from src to every node (math.Inf(1)
// for unreachable nodes). The returned slice is cache-owned: read-only.
func (o *SharedOracle) Distances(src NodeID, w Weight) []float64 {
	k := distKey{src, w}
	var out []float64
	o.acquire(k,
		func() bool { var ok bool; out, ok = o.dist[k]; return ok },
		func() {
			sc := o.scratch.Get().(*dijkstraScratch)
			o.s.sweep(sc, src, w)
			out = make([]float64, len(sc.d))
			copy(out, sc.d)
			o.scratch.Put(sc)
		},
		func() { o.dist[k] = out },
	)
	return out
}

// ShortestPath returns the minimum-weight path from src to dst, or nil
// if unreachable. The returned slice is cache-owned: read-only.
func (o *SharedOracle) ShortestPath(src, dst NodeID, w Weight) []NodeID {
	p, _ := o.shortestAvoiding(src, dst, w, nil, nil)
	return p
}

// shortestAvoiding is the memoized Yen spur primitive, keyed like
// PathOracle.shortestAvoiding. The returned slice is cache-owned.
func (o *SharedOracle) shortestAvoiding(src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	k := pathKey{src, dst, w, hashAvoid(blockedNodes, blockedEdges)}
	var e pathEntry
	o.acquire(k,
		func() bool { var ok bool; e, ok = o.path[k]; return ok },
		func() {
			sc := o.scratch.Get().(*dijkstraScratch)
			e.path, e.cost = o.s.spurPath(sc, src, dst, w, blockedNodes, blockedEdges)
			o.scratch.Put(sc)
		},
		func() { o.path[k] = e },
	)
	return e.path, e.cost
}

// Centroid returns the node minimizing the worst-case latency-weighted
// distance to all other nodes, computed once per snapshot.
func (o *SharedOracle) Centroid() NodeID {
	o.centroidOnce.Do(func() {
		best := NodeID(0)
		bestWorst := math.Inf(1)
		for n := 0; n < o.s.NumNodes(); n++ {
			dist := o.Distances(NodeID(n), ByLatency)
			worst := 0.0
			for _, d := range dist {
				if d > worst {
					worst = d
				}
			}
			if worst < bestWorst {
				bestWorst = worst
				best = NodeID(n)
			}
		}
		o.centroid = best
	})
	return o.centroid
}

// ControlLatencies returns the control-channel latency from the
// controller node to every switch, memoized per controller placement.
// The returned slice is cache-owned: read-only.
func (o *SharedOracle) ControlLatencies(controller NodeID) []time.Duration {
	// key type differs from distKey/pathKey so flights cannot collide.
	type ctrlKey struct{ n NodeID }
	k := ctrlKey{controller}
	var out []time.Duration
	o.acquire(k,
		func() bool { var ok bool; out, ok = o.ctrl[controller]; return ok },
		func() {
			dist := o.Distances(controller, ByLatency)
			out = make([]time.Duration, len(dist))
			for i, d := range dist {
				out[i] = time.Duration(d * float64(time.Second))
			}
		},
		func() { o.ctrl[controller] = out },
	)
	return out
}

// edgeW returns the weight of directed CSR edge ei under w.
func (s *Snapshot) edgeW(ei int32, w Weight) float64 {
	if w == ByHops {
		return 1
	}
	return s.wLatency[ei]
}

// sweep runs a full single-source Dijkstra into sc.d over the CSR
// arrays. The relaxation and heap discipline mirror PathOracle.sweep
// (and thus the original container/heap code) exactly, so tie-breaking
// is byte-identical.
func (s *Snapshot) sweep(sc *dijkstraScratch, src NodeID, w Weight) {
	for i := range sc.d {
		sc.d[i] = math.Inf(1)
		sc.pos[i] = -1
	}
	sc.d[src] = 0
	sc.h = sc.h[:0]
	sc.hPush(src, 0)
	for len(sc.h) > 0 {
		cur := sc.hPop()
		for ei := s.adjStart[cur.node]; ei < s.adjStart[cur.node+1]; ei++ {
			nb := s.adjNeighbor[ei]
			alt := cur.dist + s.edgeW(ei, w)
			if alt < sc.d[nb] {
				sc.d[nb] = alt
				if sc.pos[nb] >= 0 {
					sc.hFix(nb, alt)
				} else {
					sc.hPush(nb, alt)
				}
			}
		}
	}
}

// spurPath mirrors PathOracle.spurPath over the CSR arrays.
func (s *Snapshot) spurPath(sc *dijkstraScratch, src, dst NodeID, w Weight,
	blockedNodes map[NodeID]bool, blockedEdges map[[2]NodeID]bool) ([]NodeID, float64) {

	if src == dst {
		return []NodeID{src}, 0
	}
	for i := range sc.d {
		sc.d[i] = math.Inf(1)
		sc.prev[i] = -1
		sc.pos[i] = -1
	}
	sc.d[src] = 0
	sc.h = sc.h[:0]
	sc.hPush(src, 0)
	for len(sc.h) > 0 {
		cur := sc.hPop()
		if cur.node == dst {
			break
		}
		for ei := s.adjStart[cur.node]; ei < s.adjStart[cur.node+1]; ei++ {
			nb := s.adjNeighbor[ei]
			if blockedNodes[nb] || blockedEdges[[2]NodeID{cur.node, nb}] {
				continue
			}
			alt := cur.dist + s.edgeW(ei, w)
			if alt < sc.d[nb] {
				sc.d[nb] = alt
				sc.prev[nb] = cur.node
				if sc.pos[nb] >= 0 {
					sc.hFix(nb, alt)
				} else {
					sc.hPush(nb, alt)
				}
			}
		}
	}
	if math.IsInf(sc.d[dst], 1) {
		return nil, math.Inf(1)
	}
	n := 0
	for v := dst; v != -1; v = sc.prev[v] {
		n++
	}
	path := make([]NodeID, n)
	for v, i := dst, n-1; v != -1; v, i = sc.prev[v], i-1 {
		path[i] = v
	}
	return path, sc.d[dst]
}

// The scratch heap helpers replicate container/heap's sift discipline
// exactly like PathOracle's (see oracle.go); they operate on the pooled
// scratch so concurrent sweeps never share mutable state.

func (sc *dijkstraScratch) hLess(i, j int) bool { return sc.h[i].dist < sc.h[j].dist }

func (sc *dijkstraScratch) hSwap(i, j int) {
	sc.h[i], sc.h[j] = sc.h[j], sc.h[i]
	sc.pos[sc.h[i].node] = int32(i)
	sc.pos[sc.h[j].node] = int32(j)
}

func (sc *dijkstraScratch) hPush(node NodeID, dist float64) {
	sc.h = append(sc.h, oracleItem{node: node, dist: dist})
	sc.pos[node] = int32(len(sc.h) - 1)
	sc.hUp(len(sc.h) - 1)
}

func (sc *dijkstraScratch) hPop() oracleItem {
	n := len(sc.h) - 1
	sc.hSwap(0, n)
	it := sc.h[n]
	sc.h = sc.h[:n]
	sc.pos[it.node] = -1
	if n > 0 {
		sc.hDown(0, n)
	}
	return it
}

func (sc *dijkstraScratch) hFix(node NodeID, dist float64) {
	i := int(sc.pos[node])
	sc.h[i].dist = dist
	if !sc.hDown(i, len(sc.h)) {
		sc.hUp(i)
	}
}

func (sc *dijkstraScratch) hUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !sc.hLess(i, p) {
			break
		}
		sc.hSwap(i, p)
		i = p
	}
}

func (sc *dijkstraScratch) hDown(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && sc.hLess(j2, j1) {
			j = j2
		}
		if !sc.hLess(j, i) {
			break
		}
		sc.hSwap(i, j)
		i = j
	}
	return i > i0
}

// mustNotBeFrozen panics when a mutation reaches a frozen topology.
func (t *Topology) mustNotBeFrozen(op string) {
	if t.frozen {
		panic(fmt.Sprintf("topo: %s on frozen topology %q", op, t.Name))
	}
}
