package topo

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func oracleLine(n int) *Topology {
	g := New("line")
	for i := 0; i < n; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(NodeID(i), NodeID(i+1), time.Millisecond, 100)
	}
	return g
}

func TestOracleMemoizesDistances(t *testing.T) {
	g := oracleLine(5)
	d1 := g.Distances(0, ByHops)
	d2 := g.Distances(0, ByHops)
	if &d1[0] != &d2[0] {
		t.Fatal("repeated Distances did not return the memoized slice")
	}
	if d1[4] != 4 {
		t.Fatalf("dist to node 4 = %v, want 4", d1[4])
	}
	// Different weight is a different cache entry.
	dl := g.Distances(0, ByLatency)
	if &dl[0] == &d1[0] {
		t.Fatal("ByLatency shares the ByHops cache entry")
	}
}

func TestOracleInvalidatedByMutation(t *testing.T) {
	g := oracleLine(5)
	before := g.Distances(0, ByHops)
	if before[4] != 4 {
		t.Fatalf("dist = %v, want 4", before[4])
	}
	p := g.ShortestPath(0, 4, ByHops)
	if len(p) != 5 {
		t.Fatalf("path = %v, want 5 hops", p)
	}
	v := g.Version()
	g.AddLink(0, 4, time.Millisecond, 100) // shortcut
	if g.Version() == v {
		t.Fatal("AddLink did not bump the topology version")
	}
	after := g.Distances(0, ByHops)
	if after[4] != 1 {
		t.Fatalf("post-mutation dist = %v, want 1 (stale cache?)", after[4])
	}
	if p2 := g.ShortestPath(0, 4, ByHops); len(p2) != 2 {
		t.Fatalf("post-mutation path = %v, want [0 4]", p2)
	}
	if g.Centroid() != 2 && g.Centroid() != g.Centroid() {
		t.Fatal("Centroid unstable after mutation")
	}
}

func TestOracleShortestPathCopies(t *testing.T) {
	g := oracleLine(5)
	p1 := g.ShortestPath(0, 4, ByHops)
	p1[0] = 99 // caller owns the copy; must not poison the cache
	p2 := g.ShortestPath(0, 4, ByHops)
	if p2[0] != 0 {
		t.Fatalf("cache poisoned by caller mutation: %v", p2)
	}
}

func TestOracleSpurCacheDistinguishesAvoidSets(t *testing.T) {
	g := New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	g.AddLink(0, 1, time.Millisecond, 100)
	g.AddLink(1, 3, time.Millisecond, 100)
	g.AddLink(0, 2, time.Millisecond, 100)
	g.AddLink(2, 3, time.Millisecond, 100)
	free, _ := g.shortestPathAvoiding(0, 3, ByHops, nil, nil)
	blocked, _ := g.shortestPathAvoiding(0, 3, ByHops, map[NodeID]bool{free[1]: true}, nil)
	if reflect.DeepEqual(free, blocked) {
		t.Fatalf("avoid set ignored: both paths %v", free)
	}
	// Re-querying each must hit the right entry.
	free2, _ := g.shortestPathAvoiding(0, 3, ByHops, nil, nil)
	blocked2, _ := g.shortestPathAvoiding(0, 3, ByHops, map[NodeID]bool{free[1]: true}, nil)
	if !reflect.DeepEqual(free, free2) || !reflect.DeepEqual(blocked, blocked2) {
		t.Fatal("cached avoid-set queries diverge from fresh ones")
	}
}

// TestOracleConcurrentReaders exercises the mutex: parallel workers
// share prebuilt topologies, so concurrent queries must be safe.
func TestOracleConcurrentReaders(t *testing.T) {
	g := oracleLine(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				src := NodeID((seed + j) % 16)
				dst := NodeID((seed * j) % 16)
				g.Distances(src, ByLatency)
				g.ShortestPath(src, dst, ByHops)
			}
			g.Centroid()
		}(i)
	}
	wg.Wait()
}
