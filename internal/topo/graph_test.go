package topo

import (
	"testing"
	"time"
)

func line(n int) *Topology {
	t := New("line")
	for i := 0; i < n; i++ {
		t.AddNode("", 0, 0)
	}
	for i := 0; i+1 < n; i++ {
		t.AddLink(NodeID(i), NodeID(i+1), time.Millisecond, 100)
	}
	return t
}

func TestAddLinkPorts(t *testing.T) {
	g := New("t")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	g.AddLink(a, b, time.Millisecond, 10)
	g.AddLink(a, c, time.Millisecond, 10)

	if p := g.PortTo(a, b); p != 0 {
		t.Errorf("PortTo(a,b) = %d, want 0", p)
	}
	if p := g.PortTo(a, c); p != 1 {
		t.Errorf("PortTo(a,c) = %d, want 1", p)
	}
	if p := g.PortTo(b, a); p != 0 {
		t.Errorf("PortTo(b,a) = %d, want 0", p)
	}
	if p := g.PortTo(b, c); p != InvalidPort {
		t.Errorf("PortTo(b,c) = %d, want InvalidPort", p)
	}
	if nb, ok := g.NeighborAt(a, 1); !ok || nb != c {
		t.Errorf("NeighborAt(a,1) = %d,%v, want c,true", nb, ok)
	}
	if _, ok := g.NeighborAt(a, 5); ok {
		t.Error("NeighborAt(a,5) should fail")
	}
	if g.Degree(a) != 2 || g.Degree(b) != 1 {
		t.Errorf("degrees = %d,%d", g.Degree(a), g.Degree(b))
	}
}

func TestLinkOtherAndPortAt(t *testing.T) {
	g := line(2)
	l, ok := g.LinkBetween(0, 1)
	if !ok {
		t.Fatal("no link")
	}
	if l.Other(0) != 1 || l.Other(1) != 0 {
		t.Error("Other broken")
	}
	if l.PortAt(0) != l.PortA || l.PortAt(1) != l.PortB {
		t.Error("PortAt broken")
	}
}

func TestDuplicateLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := line(2)
	g.AddLink(0, 1, time.Millisecond, 1)
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := line(2)
	g.AddLink(0, 0, time.Millisecond, 1)
}

func TestConnected(t *testing.T) {
	g := line(4)
	if !g.Connected() {
		t.Error("line should be connected")
	}
	g2 := New("t")
	g2.AddNode("a", 0, 0)
	g2.AddNode("b", 0, 0)
	if g2.Connected() {
		t.Error("two isolated nodes should not be connected")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	p := g.ShortestPath(0, 4, ByHops)
	if len(p) != 5 {
		t.Fatalf("path = %v", p)
	}
	for i, n := range p {
		if n != NodeID(i) {
			t.Fatalf("path = %v", p)
		}
	}
	if g.ShortestPath(2, 2, ByHops)[0] != 2 {
		t.Error("self path broken")
	}
}

func TestShortestPathPrefersLowLatency(t *testing.T) {
	g := New("t")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	g.AddLink(a, b, 100*time.Millisecond, 10) // direct but slow
	g.AddLink(a, c, time.Millisecond, 10)
	g.AddLink(c, b, time.Millisecond, 10)
	p := g.ShortestPath(a, b, ByLatency)
	if len(p) != 3 || p[1] != c {
		t.Fatalf("path = %v, want via c", p)
	}
	p = g.ShortestPath(a, b, ByHops)
	if len(p) != 2 {
		t.Fatalf("hop path = %v, want direct", p)
	}
}

func TestKShortestPaths(t *testing.T) {
	// Diamond: two disjoint 2-hop paths plus a 3-hop path.
	g := New("t")
	s := g.AddNode("s", 0, 0)
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	d := g.AddNode("d", 0, 0)
	g.AddLink(s, a, time.Millisecond, 10)
	g.AddLink(a, d, time.Millisecond, 10)
	g.AddLink(s, b, 2*time.Millisecond, 10)
	g.AddLink(b, d, 2*time.Millisecond, 10)
	g.AddLink(a, c, time.Millisecond, 10)
	g.AddLink(c, d, time.Millisecond, 10)

	paths := g.KShortestPaths(s, d, 3, ByLatency)
	if len(paths) != 3 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	if len(paths[0]) != 3 || paths[0][1] != a {
		t.Errorf("1st path = %v, want s,a,d", paths[0])
	}
	// All returned paths must be simple and valid.
	for _, p := range paths {
		if err := g.ValidatePath(p); err != nil {
			t.Errorf("invalid path %v: %v", p, err)
		}
	}
	// Costs must be non-decreasing.
	for i := 1; i < len(paths); i++ {
		if g.PathLatency(paths[i]) < g.PathLatency(paths[i-1]) {
			t.Errorf("path %d cheaper than path %d", i, i-1)
		}
	}
}

func TestKShortestFewerAvailable(t *testing.T) {
	g := line(3)
	paths := g.KShortestPaths(0, 2, 5, ByHops)
	if len(paths) != 1 {
		t.Fatalf("line has one simple path, got %d", len(paths))
	}
}

func TestValidatePath(t *testing.T) {
	g := line(4)
	if err := g.ValidatePath([]NodeID{0, 1, 2, 3}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath([]NodeID{0, 2}); err == nil {
		t.Error("non-adjacent accepted")
	}
	if err := g.ValidatePath([]NodeID{0, 1, 0}); err == nil {
		t.Error("repeated node accepted")
	}
	if err := g.ValidatePath(nil); err == nil {
		t.Error("empty path accepted")
	}
	if err := g.ValidatePath([]NodeID{9}); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestCentroidLine(t *testing.T) {
	g := line(5)
	c := g.Centroid()
	if c != 2 {
		t.Errorf("centroid of 5-line = %d, want 2", c)
	}
}

func TestControlLatencies(t *testing.T) {
	g := line(3)
	lats := g.ControlLatencies(0)
	if lats[0] != 0 {
		t.Errorf("self latency = %v", lats[0])
	}
	if lats[2] != 2*time.Millisecond {
		t.Errorf("latency to node 2 = %v, want 2ms", lats[2])
	}
}

func TestPathLatency(t *testing.T) {
	g := line(4)
	if got := g.PathLatency([]NodeID{0, 1, 2, 3}); got != 3*time.Millisecond {
		t.Errorf("PathLatency = %v, want 3ms", got)
	}
}
