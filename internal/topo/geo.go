package topo

import (
	"math"
	"time"
)

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// propagationKmPerSec is the signal speed in optical fiber (~2/3 c), the
// figure the paper's §9.1 uses to derive WAN link latencies.
const propagationKmPerSec = 200000.0

// HaversineKm returns the great-circle distance between two coordinates
// in kilometers.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const rad = math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// GeoLatency returns the propagation delay between two coordinates through
// optical fiber.
func GeoLatency(lat1, lon1, lat2, lon2 float64) time.Duration {
	km := HaversineKm(lat1, lon1, lat2, lon2)
	sec := km / propagationKmPerSec
	d := time.Duration(sec * float64(time.Second))
	if d < 100*time.Microsecond { // floor: co-located sites still traverse gear
		d = 100 * time.Microsecond
	}
	return d
}

// geoLink adds a link between a and b whose latency derives from the node
// coordinates.
func (t *Topology) geoLink(a, b NodeID, capacity float64) LinkID {
	na, nb := t.Node(a), t.Node(b)
	return t.AddLink(a, b, GeoLatency(na.Lat, na.Lon, nb.Lat, nb.Lon), capacity)
}
