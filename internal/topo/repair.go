package topo

import "time"

// Incremental oracle repair after a single-link latency change
// (Topology.SetLinkLatency). The previous design flushed every memoized
// sweep and path whenever the topology version moved; under streaming
// churn a reroute perturbs one link every few hundred microseconds of
// virtual time, and a full flush makes every live flow's next path
// query a cold Dijkstra. Repair instead:
//
//   - latency decrease: every cached ByLatency distance sweep is
//     repaired in place by a bounded Dijkstra seeded from the improved
//     link endpoint (classic dynamic-SSSP decrease pass). The repaired
//     values are bit-identical to a full recompute because both take
//     the minimum over the same left-to-right float addition chains.
//   - latency increase: a sweep is dropped only when the link lies on
//     its shortest-path DAG (d[A]+oldW == d[B] or the mirror); sweeps
//     that never used the link keep their exact values.
//   - cached paths: dropped when the path crosses the link, or — on a
//     decrease — when a lower bound on the best path through the link
//     (endpoint sweeps + new weight) could undercut the cached cost.
//     Everything else is untouched, so a reroute wave invalidates only
//     the affected pairs.
//
// ByHops entries ignore latency entirely and always survive.
//
// Caveat (documented in DESIGN.md): a kept path entry is guaranteed
// identical to a full recompute only when the shortest path is unique.
// Under exact float-cost ties the global heap pop order that breaks
// ties can shift, so equal-cost topologies (e.g. a fat-tree with
// uniform link latencies) should jitter weights before relying on
// repair for path — not distance — identity. Distances are exact
// either way.

// linkLatencyChanged repairs the memoized caches after link l's latency
// changed from oldLat to its current value. Called by SetLinkLatency
// with the topology already mutated.
func (o *PathOracle) linkLatencyChanged(l Link, oldLat time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dist == nil || o.version != o.t.version {
		// Caches empty or already pending a full flush: nothing to repair.
		return
	}
	newW := l.Latency.Seconds()
	oldW := oldLat.Seconds()
	decrease := newW < oldW
	o.haveCentroid = false

	// Pass 1: distance sweeps. Deleting during range is safe; inserting
	// is not, so fresh endpoint sweeps (pass 2) wait until this loop is
	// done.
	for k, d := range o.dist {
		if k.w != ByLatency {
			continue
		}
		if decrease {
			o.repairDecrease(d, l, newW)
		} else if d[l.A]+oldW == d[l.B] || d[l.B]+oldW == d[l.A] {
			delete(o.dist, k)
		}
	}

	// Pass 2: scoped path invalidation. On a decrease the only way a
	// cached path goes stale without crossing the link is a new, cheaper
	// route through it; dA/dB bound that route's cost from below.
	var dA, dB []float64
	if decrease {
		dA = o.distLocked(l.A)
		dB = o.distLocked(l.B)
	}
	for k, p := range o.path {
		if k.w != ByLatency {
			continue
		}
		if pathUsesLink(p, l) {
			delete(o.path, k)
			delete(o.pathCost, k)
			continue
		}
		if decrease {
			cost := o.pathCost[k]
			lb := dA[k.src] + newW + dB[k.dst]
			if alt := dB[k.src] + newW + dA[k.dst]; alt < lb {
				lb = alt
			}
			// Small relative slack: lb and cost come from different
			// float addition orders, so a mathematically-equal route
			// can land a few ulps on either side. Over-deleting is
			// always safe; keeping a beatable entry is not.
			if lb <= cost+cost*1e-9+1e-12 {
				delete(o.path, k)
				delete(o.pathCost, k)
			}
		}
	}
}

// repairDecrease applies the dynamic-SSSP decrease pass to one cached
// sweep in place: seed the frontier with the endpoint the cheaper link
// now improves, then relax outward until no distance drops. Callers
// hold o.mu; d is a cache-owned slice of len NumNodes.
func (o *PathOracle) repairDecrease(d []float64, l Link, newW float64) {
	for i := range o.pos {
		o.pos[i] = -1
	}
	o.h = o.h[:0]
	if alt := d[l.A] + newW; alt < d[l.B] {
		d[l.B] = alt
		o.hPush(l.B, alt)
	}
	if alt := d[l.B] + newW; alt < d[l.A] {
		d[l.A] = alt
		o.hPush(l.A, alt)
	}
	t := o.t
	for len(o.h) > 0 {
		cur := o.hPop()
		for _, ad := range t.adj[cur.node] {
			alt := cur.dist + t.edgeWeight(t.links[ad.link], ByLatency)
			if alt < d[ad.neighbor] {
				d[ad.neighbor] = alt
				if o.pos[ad.neighbor] >= 0 {
					o.hFix(ad.neighbor, alt)
				} else {
					o.hPush(ad.neighbor, alt)
				}
			}
		}
	}
}

// distLocked returns the ByLatency sweep from src, consulting and
// populating the cache. Callers hold o.mu and must not be mid-range
// over o.dist.
func (o *PathOracle) distLocked(src NodeID) []float64 {
	k := distKey{src, ByLatency}
	if d, ok := o.dist[k]; ok {
		return d
	}
	o.sweep(src, ByLatency)
	out := make([]float64, len(o.d))
	copy(out, o.d)
	o.dist[k] = out
	return out
}

// pathUsesLink reports whether p traverses l in either direction. A nil
// (unreachable) cached path trivially does not.
func pathUsesLink(p []NodeID, l Link) bool {
	for i := 0; i+1 < len(p); i++ {
		if (p[i] == l.A && p[i+1] == l.B) || (p[i] == l.B && p[i+1] == l.A) {
			return true
		}
	}
	return false
}
