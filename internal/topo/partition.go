package topo

import "time"

// RegionPlan is a deterministic partition of a topology into switch
// regions for the sharded event engine (internal/sim). Nodes in the
// Resident set (controller-co-located switches, or any switch whose
// control-channel latency is too small to bound) are not assigned to a
// region: their events execute on the coordinator engine.
//
// Lookahead is the conservative parallel-DES horizon: the minimum over
// (a) the latency of every link crossing two regions and (b) the
// control-channel latency of every region-assigned switch. Regions may
// execute events up to the global minimum next-event time plus
// Lookahead without observing each other, because any cross-region (or
// switch-to-controller) effect takes at least Lookahead of virtual time
// to arrive. A plan with Lookahead <= 0 or fewer than two regions is
// unusable; callers fall back to sequential execution.
type RegionPlan struct {
	// Regions is the effective region count (may be lower than
	// requested when the topology has too few assignable nodes).
	Regions int
	// NodeRegion maps every node to its region, or -1 for resident
	// (coordinator-executed) nodes.
	NodeRegion []int32
	// Lookahead is the safe conservative window extension.
	Lookahead time.Duration
	// CutLinks counts links whose endpoints sit in different regions.
	CutLinks int
	// Resident lists the coordinator-executed nodes in ascending order.
	Resident []NodeID
}

// PartitionRegions splits t into at most r regions, minimizing the
// region edge cut with a farthest-seed greedy BFS heuristic. The
// partition is a pure function of (t, r, resident, ctrlLat): identical
// inputs always produce the identical plan, which the sharded engine's
// byte-identical-trace contract depends on.
//
// resident lists nodes that must stay coordinator-executed; ctrlLat
// (indexed by NodeID, nil allowed) additionally forces any node with a
// non-positive control latency into the resident set, since such a node
// could reach the controller faster than any lookahead window. Links
// with non-positive latency are contracted: their endpoints always land
// in the same region so zero-latency coupling never crosses regions.
func PartitionRegions(t *Topology, r int, resident []NodeID, ctrlLat []time.Duration) RegionPlan {
	n := t.NumNodes()
	plan := RegionPlan{NodeRegion: make([]int32, n)}
	isResident := make([]bool, n)
	for _, id := range resident {
		if id >= 0 && int(id) < n {
			isResident[id] = true
		}
	}
	for id := 0; id < n && id < len(ctrlLat); id++ {
		if ctrlLat[id] <= 0 {
			isResident[id] = true
		}
	}

	// Contract zero-latency links (among non-resident nodes) with a
	// union-find, so a "super node" is the unit of assignment.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range t.links {
		if l.Latency <= 0 && !isResident[l.A] && !isResident[l.B] {
			ra, rb := find(int32(l.A)), find(int32(l.B))
			if ra != rb {
				if ra < rb { // root = lowest member ID, for determinism
					parent[rb] = ra
				} else {
					parent[ra] = rb
				}
			}
		}
	}

	// Assignable super-node roots in ascending ID order.
	var supers []int32
	superIdx := make([]int32, n) // root -> dense super index
	for i := range superIdx {
		superIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if isResident[i] {
			continue
		}
		root := find(int32(i))
		if superIdx[root] < 0 {
			superIdx[root] = int32(len(supers))
			supers = append(supers, root)
		}
	}
	if r > len(supers) {
		r = len(supers)
	}
	if r < 1 {
		r = 0
	}

	// Super-node adjacency in deterministic order: for each super (by
	// member ID order), every neighbor super reached over any member's
	// links in port order.
	superAdj := make([][]int32, len(supers))
	memberLists := make([][]NodeID, len(supers))
	for i := 0; i < n; i++ {
		if isResident[i] {
			continue
		}
		si := superIdx[find(int32(i))]
		memberLists[si] = append(memberLists[si], NodeID(i))
	}
	for si, members := range memberLists {
		seen := map[int32]bool{int32(si): true}
		for _, m := range members {
			for _, ad := range t.adj[m] {
				if isResident[ad.neighbor] {
					continue
				}
				sj := superIdx[find(int32(ad.neighbor))]
				if !seen[sj] {
					seen[sj] = true
					superAdj[si] = append(superAdj[si], sj)
				}
			}
		}
	}

	// Farthest-point seeds: start from the lowest-ID super, then
	// repeatedly take the super maximizing hop distance to the chosen
	// set (ties break to the lowest super index).
	region := make([]int32, len(supers))
	for i := range region {
		region[i] = -1
	}
	var seeds []int32
	if r > 0 {
		dist := make([]int, len(supers))
		for i := range dist {
			dist[i] = 1 << 30
		}
		bfsFrom := func(s int32) {
			dist[s] = 0
			queue := []int32{s}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, nb := range superAdj[cur] {
					if dist[nb] > dist[cur]+1 {
						dist[nb] = dist[cur] + 1
						queue = append(queue, nb)
					}
				}
			}
		}
		seeds = append(seeds, 0)
		bfsFrom(0)
		for len(seeds) < r {
			best, bestD := int32(-1), -1
			for i := range supers {
				if region[i] == -1 && dist[i] > bestD && !contains(seeds, int32(i)) {
					best, bestD = int32(i), dist[i]
				}
			}
			if best < 0 {
				break
			}
			seeds = append(seeds, best)
			// Re-relax distances toward the enlarged seed set.
			dist[best] = 0
			bfsFrom(best)
		}
		for ri, s := range seeds {
			region[s] = int32(ri)
		}
	}

	// Round-robin multi-source BFS growth: each region claims its
	// frontier's unassigned neighbors in turn, keeping sizes balanced
	// and the cut local.
	queues := make([][]int32, len(seeds))
	for ri, s := range seeds {
		queues[ri] = []int32{s}
	}
	for {
		progressed := false
		for ri := range queues {
			if len(queues[ri]) == 0 {
				continue
			}
			cur := queues[ri][0]
			queues[ri] = queues[ri][1:]
			progressed = true
			for _, nb := range superAdj[cur] {
				if region[nb] == -1 {
					region[nb] = int32(ri)
					queues[ri] = append(queues[ri], nb)
				}
			}
		}
		if !progressed {
			break
		}
	}
	// Disconnected leftovers join the lowest region so every assignable
	// node lands somewhere.
	for i := range region {
		if region[i] == -1 {
			region[i] = 0
		}
	}

	for i := 0; i < n; i++ {
		if isResident[i] {
			plan.NodeRegion[i] = -1
			plan.Resident = append(plan.Resident, NodeID(i))
		} else {
			plan.NodeRegion[i] = region[superIdx[find(int32(i))]]
		}
	}
	plan.Regions = len(seeds)

	// Lookahead: min cut-link latency and min control latency of any
	// region-assigned node.
	la := time.Duration(0)
	consider := func(d time.Duration) {
		if la == 0 || d < la {
			la = d
		}
	}
	for _, l := range t.links {
		ra, rb := plan.NodeRegion[l.A], plan.NodeRegion[l.B]
		if ra >= 0 && rb >= 0 && ra != rb {
			plan.CutLinks++
			consider(l.Latency)
		}
	}
	for i := 0; i < n; i++ {
		if plan.NodeRegion[i] >= 0 && i < len(ctrlLat) {
			consider(ctrlLat[i])
		}
	}
	plan.Lookahead = la
	return plan
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
