package topo

import (
	"math/rand"
	"testing"
	"time"
)

// jitterLatencies applies a deterministic per-link multiplicative
// jitter so shortest paths become unique (uniform fat-tree latencies
// are massively tied, and kept path entries are only guaranteed exact
// under unique optima — see repair.go).
func jitterLatencies(t *Topology, rng *rand.Rand) {
	for _, l := range t.Links() {
		f := 1 + 0.2*rng.Float64()
		t.SetLinkLatency(l.ID, time.Duration(float64(l.Latency)*f))
	}
}

// cloneWithLatencies rebuilds the topology via mk and copies the live
// instance's current per-link latencies in, before any oracle query —
// so every query against the clone is a cold full recompute.
func cloneWithLatencies(mk func() *Topology, live *Topology) *Topology {
	fresh := mk()
	for _, l := range live.Links() {
		fresh.SetLinkLatency(l.ID, l.Latency)
	}
	return fresh
}

// warm populates the live oracle's caches: every single-source sweep
// under both weights, all-pairs shortest paths, and a sample of Yen
// k-shortest queries (avoid-set path entries).
func warm(t *Topology, pairStride int) {
	for _, n := range t.Nodes() {
		t.Distances(n, ByLatency)
		t.Distances(n, ByHops)
	}
	nodes := t.Nodes()
	for _, s := range nodes {
		for _, d := range nodes {
			if s != d {
				t.ShortestPath(s, d, ByLatency)
			}
		}
	}
	for i := 0; i < len(nodes); i += pairStride {
		s, d := nodes[i], nodes[(i+len(nodes)/2)%len(nodes)]
		if s != d {
			t.KShortestPaths(s, d, 3, ByLatency)
		}
	}
}

// compareAgainstFresh asserts that every query against the repaired
// live oracle matches a cold full recompute on an identical topology.
func compareAgainstFresh(t *testing.T, live, fresh *Topology, pairStride int) {
	t.Helper()
	nodes := live.Nodes()
	for _, w := range []Weight{ByLatency, ByHops} {
		for _, n := range nodes {
			got, want := live.Distances(n, w), fresh.Distances(n, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Distances(%d, %v)[%d] = %v, fresh recompute %v", n, w, i, got[i], want[i])
				}
			}
		}
	}
	for _, s := range nodes {
		for _, d := range nodes {
			if s == d {
				continue
			}
			got, want := live.ShortestPath(s, d, ByLatency), fresh.ShortestPath(s, d, ByLatency)
			if !equalPath(got, want) {
				t.Fatalf("ShortestPath(%d,%d) = %v, fresh recompute %v", s, d, got, want)
			}
		}
	}
	for i := 0; i < len(nodes); i += pairStride {
		s, d := nodes[i], nodes[(i+len(nodes)/2)%len(nodes)]
		if s == d {
			continue
		}
		got, want := live.KShortestPaths(s, d, 3, ByLatency), fresh.KShortestPaths(s, d, 3, ByLatency)
		if len(got) != len(want) {
			t.Fatalf("KShortestPaths(%d,%d): %d paths, fresh recompute %d", s, d, len(got), len(want))
		}
		for j := range want {
			if !equalPath(got[j], want[j]) {
				t.Fatalf("KShortestPaths(%d,%d)[%d] = %v, fresh recompute %v", s, d, j, got[j], want[j])
			}
		}
	}
}

// TestRepairMatchesFullRecompute is the differential acceptance test
// for incremental oracle repair: a seeded sequence of single-link
// latency perturbations, after each of which every memoized query must
// equal a cold recompute on a topology built with the final latencies.
func TestRepairMatchesFullRecompute(t *testing.T) {
	cases := []struct {
		name   string
		mk     func() *Topology
		jitter bool
	}{
		{"b4", B4, false},
		{"internet2", Internet2, false},
		{"fattree4", func() *Topology { return FatTree(4) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := tc.mk()
			mk := tc.mk
			if tc.jitter {
				jrng := rand.New(rand.NewSource(42))
				jitterLatencies(live, jrng)
				mk = func() *Topology {
					g := tc.mk()
					jitterLatencies(g, rand.New(rand.NewSource(42)))
					return g
				}
			}
			base := make([]time.Duration, live.NumLinks())
			for _, l := range live.Links() {
				base[l.ID] = l.Latency
			}
			const stride = 3
			warm(live, stride)
			rng := rand.New(rand.NewSource(7))
			for round := 0; round < 40; round++ {
				id := LinkID(rng.Intn(live.NumLinks()))
				f := 0.5 + 1.5*rng.Float64()
				lat := time.Duration(float64(base[id]) * f)
				live.SetLinkLatency(id, lat)
				fresh := cloneWithLatencies(mk, live)
				compareAgainstFresh(t, live, fresh, stride)
				// Re-warm so later rounds repair a fully populated cache
				// again (compareAgainstFresh already re-populates most of
				// it as a side effect of querying).
				warm(live, stride)
			}
		})
	}
}

// TestRepairKeepsUnaffectedEntries is the perf property behind the
// repair: an increase on a link that lies on no cached shortest-path
// DAG must leave the memoized sweeps in place (no full flush), and a
// change must never bump the topology version.
func TestRepairKeepsUnaffectedEntries(t *testing.T) {
	g := B4()
	warm(g, 3)
	o := g.Oracle()
	v := g.Version()
	o.mu.Lock()
	before := len(o.dist)
	o.mu.Unlock()
	if before == 0 {
		t.Fatal("warm populated no distance sweeps")
	}
	// Find a link on no cached shortest-path DAG by testing the
	// increase condition directly against every sweep.
	var victim Link
	found := false
	for _, l := range g.Links() {
		w := l.Latency.Seconds()
		onDAG := false
		o.mu.Lock()
		for k, d := range o.dist {
			if k.w == ByLatency && (d[l.A]+w == d[l.B] || d[l.B]+w == d[l.A]) {
				onDAG = true
				break
			}
		}
		o.mu.Unlock()
		if !onDAG {
			victim, found = l, true
			break
		}
	}
	if !found {
		t.Skip("every link lies on some cached shortest-path DAG")
	}
	g.SetLinkLatency(victim.ID, victim.Latency+time.Millisecond)
	o.mu.Lock()
	after := len(o.dist)
	o.mu.Unlock()
	if after != before {
		t.Fatalf("off-DAG increase dropped sweeps: %d -> %d", before, after)
	}
	if g.Version() != v {
		t.Fatalf("SetLinkLatency bumped the topology version: %d -> %d", v, g.Version())
	}
	// And the repaired caches must still answer correctly.
	fresh := cloneWithLatencies(B4, g)
	compareAgainstFresh(t, g, fresh, 3)
}

// TestSetLinkLatencyFrozenPanics pins the mutation guard.
func TestSetLinkLatencyFrozenPanics(t *testing.T) {
	g := B4()
	g.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("SetLinkLatency on a frozen topology did not panic")
		}
	}()
	g.SetLinkLatency(0, time.Millisecond)
}
