// Package topo models network topologies: nodes with geographic
// coordinates, capacity-annotated bidirectional links with per-node port
// numbering, and path computation (shortest and k-shortest paths).
//
// The evaluation topologies of the paper (the Fig-1 synthetic network, B4,
// Internet2, AttMpls, Chinanet and a K=4 fat-tree) are provided as builders.
package topo

import (
	"fmt"
	"sync"
	"time"
)

// NodeID identifies a node (switch) within a Topology.
type NodeID int32

// PortID is a node-local port index. Port p of node n attaches to exactly
// one link; the controller channel is not a port.
type PortID int32

// InvalidPort is returned when no port matches a query.
const InvalidPort PortID = -1

// LinkID identifies an undirected link within a Topology.
type LinkID int32

// Node is a switch with an optional geographic position (degrees).
type Node struct {
	ID   NodeID
	Name string
	Lat  float64
	Lon  float64
}

// Link is an undirected edge between two nodes. Capacity is the per
// direction capacity in abstract bandwidth units (we use Mbps).
type Link struct {
	ID       LinkID
	A, B     NodeID
	PortA    PortID // local port at A facing B
	PortB    PortID // local port at B facing A
	Latency  time.Duration
	Capacity float64
}

// Other returns the endpoint of l that is not n.
func (l Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// PortAt returns the local port of l at node n.
func (l Link) PortAt(n NodeID) PortID {
	if l.A == n {
		return l.PortA
	}
	return l.PortB
}

// adjacency is one outgoing attachment of a node.
type adjacency struct {
	neighbor NodeID
	port     PortID
	link     LinkID
}

// Topology is a connected undirected graph of switches.
type Topology struct {
	Name  string
	nodes []Node
	links []Link
	adj   [][]adjacency // indexed by NodeID, ordered by PortID

	// version counts mutations (AddNode/AddLink); the PathOracle uses
	// it to invalidate memoized path computations.
	version uint64
	oracle  *PathOracle
	once    sync.Once

	// frozen marks the topology immutable (set by Freeze); snap is the
	// shared read-only view handed to concurrent trial workers.
	frozen   bool
	snap     *Snapshot
	snapOnce sync.Once
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name}
}

// AddNode appends a node and returns its ID. It panics on a frozen
// topology.
func (t *Topology) AddNode(name string, lat, lon float64) NodeID {
	t.mustNotBeFrozen("AddNode")
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Lat: lat, Lon: lon})
	t.adj = append(t.adj, nil)
	t.version++
	return id
}

// AddLink connects a and b with the given latency and per-direction
// capacity, allocating the next free port at each endpoint.
func (t *Topology) AddLink(a, b NodeID, latency time.Duration, capacity float64) LinkID {
	t.mustNotBeFrozen("AddLink")
	if a == b {
		panic(fmt.Sprintf("topo: self-loop at node %d", a))
	}
	if int(a) >= len(t.nodes) || int(b) >= len(t.nodes) || a < 0 || b < 0 {
		panic(fmt.Sprintf("topo: AddLink with unknown node %d-%d", a, b))
	}
	for _, ad := range t.adj[a] {
		if ad.neighbor == b {
			panic(fmt.Sprintf("topo: duplicate link %d-%d", a, b))
		}
	}
	id := LinkID(len(t.links))
	pa := PortID(len(t.adj[a]))
	pb := PortID(len(t.adj[b]))
	t.links = append(t.links, Link{
		ID: id, A: a, B: b, PortA: pa, PortB: pb,
		Latency: latency, Capacity: capacity,
	})
	t.adj[a] = append(t.adj[a], adjacency{neighbor: b, port: pa, link: id})
	t.adj[b] = append(t.adj[b], adjacency{neighbor: a, port: pb, link: id})
	t.version++
	return id
}

// SetLinkLatency changes the propagation latency of link id in place.
// Unlike AddNode/AddLink it does NOT bump the mutation version: the
// path oracle is repaired incrementally (dynamic SSSP plus scoped
// per-pair invalidation) instead of flushing every memoized sweep and
// path. Distance slices previously returned by Distances are repaired
// in place, so holders observe the post-change values. It panics on a
// frozen topology.
func (t *Topology) SetLinkLatency(id LinkID, latency time.Duration) {
	t.mustNotBeFrozen("SetLinkLatency")
	if id < 0 || int(id) >= len(t.links) {
		panic(fmt.Sprintf("topo: SetLinkLatency with unknown link %d", id))
	}
	l := &t.links[id]
	if l.Latency == latency {
		return
	}
	old := l.Latency
	l.Latency = latency
	if t.oracle != nil {
		t.oracle.linkLatencyChanged(*l, old)
	}
}

// Version counts topology mutations. The PathOracle compares it against
// its own snapshot to decide when memoized results are stale.
func (t *Topology) Version() uint64 { return t.version }

// Oracle returns the topology's memoizing path oracle, creating it on
// first use. Creation is guarded by a sync.Once so concurrent readers
// (parallel trial workers sharing a topology) are safe.
func (t *Topology) Oracle() *PathOracle {
	t.once.Do(func() { t.oracle = newPathOracle(t) })
	return t.oracle
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the undirected link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Nodes returns all node IDs in order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, len(t.nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// NodeByName returns the first node with the given name. On a frozen
// topology the lookup uses the snapshot's index table.
func (t *Topology) NodeByName(name string) (NodeID, bool) {
	if s := t.snapshot(); s != nil {
		return s.NodeByName(name)
	}
	for _, n := range t.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns a copy of all links.
func (t *Topology) Links() []Link {
	out := make([]Link, len(t.links))
	copy(out, t.links)
	return out
}

// Degree returns the number of links attached to n.
func (t *Topology) Degree(n NodeID) int { return len(t.adj[n]) }

// Neighbors returns n's neighbors in port order.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, len(t.adj[n]))
	for i, ad := range t.adj[n] {
		out[i] = ad.neighbor
	}
	return out
}

// PortTo returns the local port of n that faces neighbor, or InvalidPort.
func (t *Topology) PortTo(n, neighbor NodeID) PortID {
	for _, ad := range t.adj[n] {
		if ad.neighbor == neighbor {
			return ad.port
		}
	}
	return InvalidPort
}

// NeighborAt returns the neighbor reached through port p of n.
func (t *Topology) NeighborAt(n NodeID, p PortID) (NodeID, bool) {
	if p < 0 || int(p) >= len(t.adj[n]) {
		return 0, false
	}
	return t.adj[n][p].neighbor, true
}

// LinkAt returns the link attached to port p of n.
func (t *Topology) LinkAt(n NodeID, p PortID) (Link, bool) {
	if p < 0 || int(p) >= len(t.adj[n]) {
		return Link{}, false
	}
	return t.links[t.adj[n][p].link], true
}

// LinkBetween returns the link connecting a and b, if any.
func (t *Topology) LinkBetween(a, b NodeID) (Link, bool) {
	for _, ad := range t.adj[a] {
		if ad.neighbor == b {
			return t.links[ad.link], true
		}
	}
	return Link{}, false
}

// Latency returns the propagation latency between adjacent nodes a and b.
// It panics if a and b are not adjacent.
func (t *Topology) Latency(a, b NodeID) time.Duration {
	l, ok := t.LinkBetween(a, b)
	if !ok {
		panic(fmt.Sprintf("topo: Latency(%d,%d): not adjacent", a, b))
	}
	return l.Latency
}

// Connected reports whether the graph is connected.
func (t *Topology) Connected() bool {
	if len(t.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(t.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ad := range t.adj[n] {
			if !seen[ad.neighbor] {
				seen[ad.neighbor] = true
				count++
				stack = append(stack, ad.neighbor)
			}
		}
	}
	return count == len(t.nodes)
}

// PathLatency returns the summed link latency along path (a node sequence
// of adjacent nodes).
func (t *Topology) PathLatency(path []NodeID) time.Duration {
	var d time.Duration
	for i := 0; i+1 < len(path); i++ {
		d += t.Latency(path[i], path[i+1])
	}
	return d
}

// ValidatePath reports an error unless path is a sequence of distinct,
// pairwise-adjacent nodes.
func (t *Topology) ValidatePath(path []NodeID) error {
	if len(path) == 0 {
		return fmt.Errorf("empty path")
	}
	seen := make(map[NodeID]bool, len(path))
	for i, n := range path {
		if n < 0 || int(n) >= len(t.nodes) {
			return fmt.Errorf("unknown node %d at position %d", n, i)
		}
		if seen[n] {
			return fmt.Errorf("node %d repeats at position %d", n, i)
		}
		seen[n] = true
		if i+1 < len(path) {
			if t.PortTo(n, path[i+1]) == InvalidPort {
				return fmt.Errorf("nodes %d and %d not adjacent", n, path[i+1])
			}
		}
	}
	return nil
}
