package topo

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// uniformCtrl returns a control-latency vector with the same positive
// latency everywhere.
func uniformCtrl(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// TestPartitionDeterministic pins the partitioner's pure-function
// contract: identical inputs produce the identical plan, on every
// evaluation topology.
func TestPartitionDeterministic(t *testing.T) {
	for _, mk := range []func() *Topology{B4, Internet2, func() *Topology { return FatTree(8) }} {
		g := mk()
		ctrl := uniformCtrl(g.NumNodes(), time.Millisecond)
		for _, r := range []int{2, 4, 8} {
			a := PartitionRegions(g, r, nil, ctrl)
			b := PartitionRegions(g, r, nil, ctrl)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s r=%d: plans differ across calls", g.Name, r)
			}
		}
	}
}

// TestPartitionCoverage checks every node lands in exactly one region
// (or the resident set), region indexes are dense, and the lookahead is
// positive on the evaluation topologies.
func TestPartitionCoverage(t *testing.T) {
	for _, mk := range []func() *Topology{B4, Internet2, func() *Topology { return FatTree(8) }} {
		g := mk()
		ctrl := uniformCtrl(g.NumNodes(), time.Millisecond)
		for _, r := range []int{2, 3, 4, 8} {
			plan := PartitionRegions(g, r, nil, ctrl)
			if plan.Regions < 2 || plan.Regions > r {
				t.Fatalf("%s r=%d: got %d regions", g.Name, r, plan.Regions)
			}
			if plan.Lookahead <= 0 {
				t.Fatalf("%s r=%d: non-positive lookahead %v", g.Name, r, plan.Lookahead)
			}
			seen := make([]bool, plan.Regions)
			for id, reg := range plan.NodeRegion {
				if reg < 0 {
					t.Fatalf("%s r=%d: node %d resident despite positive control latency", g.Name, r, id)
				}
				if int(reg) >= plan.Regions {
					t.Fatalf("%s r=%d: node %d in out-of-range region %d", g.Name, r, id, reg)
				}
				seen[reg] = true
			}
			for reg, ok := range seen {
				if !ok {
					t.Fatalf("%s r=%d: region %d is empty", g.Name, r, reg)
				}
			}
		}
	}
}

// TestPartitionResidentAbsorption checks that explicitly listed nodes
// and nodes with non-positive control latency end up resident.
func TestPartitionResidentAbsorption(t *testing.T) {
	g := B4()
	ctrl := uniformCtrl(g.NumNodes(), time.Millisecond)
	ctrl[3] = 0 // controller-co-located switch
	plan := PartitionRegions(g, 4, []NodeID{5}, ctrl)
	if plan.NodeRegion[3] != -1 || plan.NodeRegion[5] != -1 {
		t.Fatalf("expected nodes 3 and 5 resident, got regions %d and %d",
			plan.NodeRegion[3], plan.NodeRegion[5])
	}
	if !reflect.DeepEqual(plan.Resident, []NodeID{3, 5}) {
		t.Fatalf("resident list = %v, want [3 5]", plan.Resident)
	}
}

// TestPartitionZeroLatencyContraction checks zero-latency links never
// cross regions: their endpoints are contracted into one super node.
func TestPartitionZeroLatencyContraction(t *testing.T) {
	g := New("contract")
	for i := 0; i < 6; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 0, 0)
	}
	// 0-1-2 and 3-4-5 chains with a zero-latency middle link in each.
	g.AddLink(0, 1, time.Millisecond, 0)
	g.AddLink(1, 2, 0, 0)
	g.AddLink(3, 4, 0, 0)
	g.AddLink(4, 5, time.Millisecond, 0)
	g.AddLink(2, 3, time.Millisecond, 0)
	plan := PartitionRegions(g, 4, nil, uniformCtrl(6, time.Millisecond))
	if plan.NodeRegion[1] != plan.NodeRegion[2] {
		t.Fatalf("zero-latency link 1-2 crosses regions: %d vs %d",
			plan.NodeRegion[1], plan.NodeRegion[2])
	}
	if plan.NodeRegion[3] != plan.NodeRegion[4] {
		t.Fatalf("zero-latency link 3-4 crosses regions: %d vs %d",
			plan.NodeRegion[3], plan.NodeRegion[4])
	}
	if plan.Lookahead <= 0 {
		t.Fatalf("lookahead %v, want positive", plan.Lookahead)
	}
}

// TestPartitionClampsRegions checks a request for more regions than
// assignable super nodes clamps rather than fabricating empty regions.
func TestPartitionClampsRegions(t *testing.T) {
	g := New("tiny")
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), 0, 0)
	}
	g.AddLink(0, 1, time.Millisecond, 0)
	g.AddLink(1, 2, time.Millisecond, 0)
	plan := PartitionRegions(g, 8, nil, uniformCtrl(3, time.Millisecond))
	if plan.Regions > 3 {
		t.Fatalf("got %d regions from 3 nodes", plan.Regions)
	}
	// All-resident topologies yield zero regions.
	empty := PartitionRegions(g, 4, []NodeID{0, 1, 2}, nil)
	if empty.Regions != 0 {
		t.Fatalf("all-resident plan has %d regions, want 0", empty.Regions)
	}
}

// TestPartitionLookaheadIsCutMinimum checks the lookahead equals the
// minimum over cut-link latencies and assigned nodes' control
// latencies.
func TestPartitionLookaheadIsCutMinimum(t *testing.T) {
	g := B4()
	ctrl := uniformCtrl(g.NumNodes(), 50*time.Millisecond)
	plan := PartitionRegions(g, 4, nil, ctrl)
	min := time.Duration(0)
	for _, l := range g.Links() {
		ra, rb := plan.NodeRegion[l.A], plan.NodeRegion[l.B]
		if ra >= 0 && rb >= 0 && ra != rb {
			if min == 0 || l.Latency < min {
				min = l.Latency
			}
		}
	}
	if min > 50*time.Millisecond {
		min = 50 * time.Millisecond
	}
	if plan.Lookahead != min {
		t.Fatalf("lookahead %v, want %v", plan.Lookahead, min)
	}
}
