package topo

import (
	"testing"
	"time"
)

func TestSynthetic(t *testing.T) {
	g := Synthetic()
	if g.NumNodes() != 8 || g.NumLinks() != 10 {
		t.Fatalf("synthetic: %d nodes, %d links", g.NumNodes(), g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("synthetic not connected")
	}
	oldP, newP := SyntheticPaths()
	if err := g.ValidatePath(oldP); err != nil {
		t.Errorf("old path invalid: %v", err)
	}
	if err := g.ValidatePath(newP); err != nil {
		t.Errorf("new path invalid: %v", err)
	}
	for _, l := range g.Links() {
		if l.Latency != 20*time.Millisecond {
			t.Errorf("link %d latency = %v, want 20ms", l.ID, l.Latency)
		}
	}
}

func TestEvaluationTopologySizes(t *testing.T) {
	// The 2-tuples of the paper's Fig. 8: (#nodes, #edges).
	cases := []struct {
		g            *Topology
		nodes, edges int
	}{
		{B4(), 12, 19},
		{Internet2(), 16, 26},
		{AttMpls(), 25, 56},
		{Chinanet(), 38, 62},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.nodes || c.g.NumLinks() != c.edges {
			t.Errorf("%s: %d nodes, %d edges; want %d, %d",
				c.g.Name, c.g.NumNodes(), c.g.NumLinks(), c.nodes, c.edges)
		}
		if !c.g.Connected() {
			t.Errorf("%s not connected", c.g.Name)
		}
	}
}

func TestWANLatenciesPlausible(t *testing.T) {
	g := B4()
	or, _ := g.NodeByName("Oregon")
	tw, _ := g.NodeByName("Taiwan")
	l, ok := g.LinkBetween(or, tw)
	if !ok {
		t.Fatal("no Oregon-Taiwan link")
	}
	// Trans-pacific: roughly 9700 km -> ~48 ms one way at 2e8 m/s.
	if l.Latency < 30*time.Millisecond || l.Latency > 80*time.Millisecond {
		t.Errorf("trans-pacific latency = %v, implausible", l.Latency)
	}
	ca, _ := g.NodeByName("California")
	l2, _ := g.LinkBetween(or, ca)
	if l2.Latency >= l.Latency {
		t.Error("Oregon-California should be much shorter than Oregon-Taiwan")
	}
}

func TestFatTree(t *testing.T) {
	g := FatTree(4)
	// K=4: 4 core + 4 pods * (2 agg + 2 edge) = 20 switches, 32 links.
	if g.NumNodes() != 20 {
		t.Fatalf("fat-tree nodes = %d, want 20", g.NumNodes())
	}
	if g.NumLinks() != 32 {
		t.Fatalf("fat-tree links = %d, want 32", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("fat-tree not connected")
	}
	edges := EdgeSwitches(g)
	if len(edges) != 8 {
		t.Fatalf("edge switches = %d, want 8", len(edges))
	}
	// Any two edge switches in different pods are 4 hops apart.
	p := g.ShortestPath(edges[0], edges[7], ByHops)
	if len(p) != 5 {
		t.Errorf("cross-pod path %v, want 5 nodes", p)
	}
	// Fat-tree has many equal-cost paths: k-shortest must find several.
	paths := g.KShortestPaths(edges[0], edges[7], 4, ByHops)
	if len(paths) != 4 {
		t.Errorf("found %d paths, want 4", len(paths))
	}
}

func TestFatTreeOddKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FatTree(3)
}

func TestFig2Scenario(t *testing.T) {
	g, a, b, c := Fig2Scenario()
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every next-hop must be an adjacent node.
	for name, cfg := range map[string]map[NodeID]NodeID{"a": a, "b": b, "c": c} {
		for from, to := range cfg {
			if g.PortTo(from, to) == InvalidPort {
				t.Errorf("config %s: %d->%d not adjacent", name, from, to)
			}
		}
	}
	// Mixing (c) with v2 from (a) yields the loop v3->v1->v2->v3.
	mixed := map[NodeID]NodeID{0: 3, 3: 1, 1: 2, 2: 3}
	cur := NodeID(0)
	seen := map[NodeID]int{}
	for i := 0; i < 10; i++ {
		cur = mixed[cur]
		seen[cur]++
	}
	if seen[1] < 2 || seen[2] < 2 || seen[3] < 2 {
		t.Error("expected forwarding loop through v1,v2,v3 in the mixed config")
	}
}

func TestHaversine(t *testing.T) {
	// New York to Los Angeles: ~3940 km.
	km := HaversineKm(40.71, -74.01, 34.05, -118.24)
	if km < 3700 || km > 4100 {
		t.Errorf("NY-LA distance = %.0f km, implausible", km)
	}
	if HaversineKm(10, 20, 10, 20) != 0 {
		t.Error("identical points should be 0 km apart")
	}
}

func TestGeoLatencyFloor(t *testing.T) {
	if GeoLatency(1, 1, 1, 1) != 100*time.Microsecond {
		t.Error("co-located latency should hit the 100µs floor")
	}
}

func TestGeoMeshEdgeBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	geoMesh("x", []string{"a", "b"}, [][2]float64{{0, 0}, {1, 1}}, 5)
}
