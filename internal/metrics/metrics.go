// Package metrics provides the small statistics toolkit the evaluation
// harness uses: empirical CDFs, means with 99% confidence intervals, and
// simple series formatting matching the paper's reporting style.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over durations.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []time.Duration) *CDF {
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank.
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// At returns the empirical fraction of samples <= x.
func (c *CDF) At(x time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Mean returns the sample mean.
func (c *CDF) Mean() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range c.sorted {
		sum += v
	}
	return sum / time.Duration(len(c.sorted))
}

// Min and Max return the extremes.
func (c *CDF) Min() time.Duration { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() time.Duration { return c.Quantile(1) }

// Rows renders the CDF as "value fraction" rows at each sample point —
// the series a plotting tool would consume for the paper's figures.
func (c *CDF) Rows() string {
	var b strings.Builder
	for i, v := range c.sorted {
		fmt.Fprintf(&b, "%.1f\t%.3f\n",
			float64(v)/float64(time.Millisecond),
			float64(i+1)/float64(len(c.sorted)))
	}
	return b.String()
}

// Summary is a one-line digest used in the experiment tables.
func (c *CDF) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1fms p50=%.1fms p90=%.1fms max=%.1fms",
		c.N(),
		float64(c.Mean())/float64(time.Millisecond),
		float64(c.Quantile(0.5))/float64(time.Millisecond),
		float64(c.Quantile(0.9))/float64(time.Millisecond),
		float64(c.Max())/float64(time.Millisecond))
}

// MeanCI returns the mean of xs and the half-width of its 99% confidence
// interval (normal approximation, as in the paper's Fig. 8 error bars).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	const z99 = 2.576
	return mean, z99 * sd / math.Sqrt(n)
}

// Improvement returns the relative improvement of a over b in percent:
// negative values mean a is faster/smaller than b (the paper reports,
// e.g., B4: -39.1%).
func Improvement(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a) - float64(b)) / float64(b) * 100
}
