package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]time.Duration{ms(30), ms(10), ms(20), ms(40)})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Min() != ms(10) || c.Max() != ms(40) {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
	if c.Mean() != ms(25) {
		t.Errorf("mean = %v, want 25ms", c.Mean())
	}
	if q := c.Quantile(0.5); q != ms(20) {
		t.Errorf("p50 = %v, want 20ms", q)
	}
	if q := c.Quantile(1); q != ms(40) {
		t.Errorf("p100 = %v", q)
	}
	if q := c.Quantile(0); q != ms(10) {
		t.Errorf("p0 = %v", q)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	cases := map[time.Duration]float64{
		ms(5):  0,
		ms(10): 0.25,
		ms(25): 0.5,
		ms(40): 1,
		ms(99): 1,
	}
	for x, want := range cases {
		if got := c.At(x); got != want {
			t.Errorf("At(%v) = %f, want %f", x, got, want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.N() != 0 || c.Mean() != 0 || c.Quantile(0.5) != 0 || c.At(ms(1)) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFRowsAndSummary(t *testing.T) {
	c := NewCDF([]time.Duration{ms(10), ms(20)})
	rows := c.Rows()
	if !strings.Contains(rows, "10.0\t0.500") || !strings.Contains(rows, "20.0\t1.000") {
		t.Errorf("rows:\n%s", rows)
	}
	if s := c.Summary(); !strings.Contains(s, "n=2") || !strings.Contains(s, "mean=15.0ms") {
		t.Errorf("summary: %s", s)
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		c := NewCDF(samples)
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.Min() <= c.Mean() && c.Mean() <= c.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, ci := MeanCI([]float64{2, 2, 2, 2})
	if mean != 2 || ci != 0 {
		t.Errorf("constant samples: mean=%f ci=%f", mean, ci)
	}
	mean, ci = MeanCI([]float64{1, 3})
	if mean != 2 || ci <= 0 {
		t.Errorf("mean=%f ci=%f", mean, ci)
	}
	// 99% CI must be wider than a 1-sd/√n band.
	if ci < math.Sqrt2/math.Sqrt2 {
		t.Errorf("ci = %f implausibly narrow", ci)
	}
	if m, c := MeanCI(nil); m != 0 || c != 0 {
		t.Error("empty input")
	}
	if _, c := MeanCI([]float64{5}); c != 0 {
		t.Error("single sample must have zero CI")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(ms(60), ms(100)); got != -40 {
		t.Errorf("improvement = %f, want -40", got)
	}
	if got := Improvement(ms(150), ms(100)); got != 50 {
		t.Errorf("improvement = %f, want +50", got)
	}
	if got := Improvement(ms(10), 0); got != 0 {
		t.Errorf("zero base: %f", got)
	}
}
