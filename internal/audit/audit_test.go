package audit_test

import (
	"testing"
	"time"

	"p4update/internal/audit"
	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// bed builds a 4-node line fabric with a controller and one registered
// flow 0 -> 3.
func bed(t *testing.T) (*dataplane.Network, *controlplane.Controller, packet.FlowID) {
	t.Helper()
	g := topo.New("line")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < 4; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID(i+1), time.Millisecond, 100)
	}
	eng := sim.New(1)
	eng.MaxEvents = 100_000
	net := dataplane.NewNetwork(eng, g)
	ctl := controlplane.NewController(net, 0)
	f, err := ctl.RegisterFlow(0, 3, []topo.NodeID{0, 1, 2, 3}, 500)
	if err != nil {
		t.Fatal(err)
	}
	return net, ctl, f
}

func TestCleanStateAuditsClean(t *testing.T) {
	net, ctl, _ := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	a.Sweep()
	if r := a.Report(); r.Total() != 0 || r.Sweeps != 1 {
		t.Fatalf("clean fabric reported violations: %+v", r)
	}
}

// TestAuditorDetectsBlackhole checks the checker itself: deleting a
// mid-path rule must surface as a blackhole at that node.
func TestAuditorDetectsBlackhole(t *testing.T) {
	net, ctl, f := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	st, ok := net.Switch(2).PeekState(f)
	if !ok {
		t.Fatal("no state at node 2")
	}
	st.HasRule = false
	a.Sweep()
	r := a.Report()
	if r.Blackholes != 1 || r.BlackholeFlows != 1 {
		t.Fatalf("Blackholes = %d (%d flows), want 1", r.Blackholes, r.BlackholeFlows)
	}
	if len(r.Examples) != 1 || r.Examples[0].Kind != audit.Blackhole || r.Examples[0].Node != 2 {
		t.Fatalf("example = %+v, want blackhole at node 2", r.Examples)
	}
}

// TestAuditorDetectsLoop points node 1 back at node 0 and expects a
// loop report.
func TestAuditorDetectsLoop(t *testing.T) {
	net, ctl, f := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	back := net.Topo.PortTo(1, 0)
	net.Switch(1).InstallInitialRule(f, back, 2, 1, 500)
	a.Sweep()
	r := a.Report()
	if r.Loops != 1 || r.LoopFlows != 1 {
		t.Fatalf("Loops = %d (%d flows), want 1: %+v", r.Loops, r.LoopFlows, r)
	}
}

// TestAuditorDetectsOverCapacity overbooks one link past its 100 Mbps
// (100000 kbps) capacity.
func TestAuditorDetectsOverCapacity(t *testing.T) {
	net, ctl, _ := bed(t)
	if _, err := ctl.RegisterFlow(1, 2, []topo.NodeID{1, 2}, 120_000); err != nil {
		t.Fatal(err)
	}
	a := audit.Attach(net, ctl, audit.Config{})
	a.Sweep()
	r := a.Report()
	if r.OverCapacity != 1 || r.OverCapLinks != 1 {
		t.Fatalf("OverCapacity = %d (%d links), want 1: %+v", r.OverCapacity, r.OverCapLinks, r)
	}
	// The same fabric with the capacity invariant off must stay clean.
	b := audit.Attach(net, ctl, audit.Config{NoCapacity: true})
	b.Sweep()
	if r := b.Report(); r.Total() != 0 {
		t.Fatalf("NoCapacity sweep still reported: %+v", r)
	}
}

// TestAuditorDetectsVersionRegress rolls a node's applied version
// backwards between sweeps.
func TestAuditorDetectsVersionRegress(t *testing.T) {
	net, ctl, f := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	fwd := net.Topo.PortTo(1, 2)
	net.Switch(1).InstallInitialRule(f, fwd, 5, 2, 500)
	a.Sweep()
	net.Switch(1).InstallInitialRule(f, fwd, 3, 2, 500)
	a.Sweep()
	r := a.Report()
	if r.VersionRegressions != 1 || r.RegressFlows != 1 {
		t.Fatalf("VersionRegressions = %d, want 1: %+v", r.VersionRegressions, r)
	}
}

// TestCrashedSwitchIsNotABlackhole: a trace meeting a down switch is a
// physical outage, not a protocol violation.
func TestCrashedSwitchIsNotABlackhole(t *testing.T) {
	net, ctl, _ := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	net.Switch(2).Crash()
	a.Sweep()
	if r := a.Report(); r.Total() != 0 {
		t.Fatalf("down switch charged as violation: %+v", r)
	}
	net.Switch(2).Restore()
	a.Sweep()
	if r := a.Report(); r.Total() != 0 {
		t.Fatalf("restored switch audits dirty: %+v", r)
	}
}

// TestAfterStepPeriod wires the auditor to the engine and checks the
// sweep cadence.
func TestAfterStepPeriod(t *testing.T) {
	net, ctl, _ := bed(t)
	a := audit.Attach(net, ctl, audit.Config{Every: 2})
	for i := 0; i < 10; i++ {
		net.Eng.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	net.Eng.Run()
	if r := a.Report(); r.Sweeps != 5 {
		t.Fatalf("Sweeps = %d after 10 steps at Every=2, want 5", r.Sweeps)
	}
}

// TestOnSweepDeltas drives three sweeps — clean, blackholed, clean again
// after repair — and checks the hook sees per-sweep deltas, not running
// totals.
func TestOnSweepDeltas(t *testing.T) {
	net, ctl, f := bed(t)
	a := audit.Attach(net, ctl, audit.Config{})
	var got []audit.SweepStats
	a.OnSweep = func(s audit.SweepStats) { got = append(got, s) }

	a.Sweep()
	st, ok := net.Switch(2).PeekState(f)
	if !ok {
		t.Fatal("no state at node 2")
	}
	st.HasRule = false
	a.Sweep()
	st.HasRule = true
	a.Sweep()

	if len(got) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(got))
	}
	wantBH := []uint64{0, 1, 0}
	for i, s := range got {
		if s.Sweep != uint64(i+1) {
			t.Errorf("sweep %d numbered %d", i+1, s.Sweep)
		}
		if s.Blackholes != wantBH[i] || s.Total() != wantBH[i] {
			t.Errorf("sweep %d: blackhole delta %d, want %d", i+1, s.Blackholes, wantBH[i])
		}
	}
}
