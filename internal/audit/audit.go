// Package audit is the continuous invariant auditor of the test bed: a
// read-only observer that, every N engine steps, walks the live per-flow
// forwarding state of a fabric and asserts the consistency properties
// P4Update claims to preserve through every update (§11, Alg. 1/2):
//
//   - no blackhole: tracing a flow from its ingress always reaches its
//     destination's local-delivery rule;
//   - no loop: the trace never revisits a node;
//   - no link over-capacity: the actual traced load on a link never
//     exceeds its capacity (only meaningful when the congestion gate is
//     on — unconstrained setups disable it via Config.NoCapacity);
//   - version monotonicity: a node's applied version for a flow never
//     decreases.
//
// The auditor hooks sim.Engine.AfterStep and only reads state — it
// never schedules events, mutates registers, or draws randomness — so
// an audited run is step-for-step identical to an unaudited one, and
// violations it records are attributable purely to the system under
// test. It audits all three evaluated systems through the same shared
// switch substrate, which is what turns the paper's §11 comparison into
// a reproducible experiment.
package audit

import (
	"fmt"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Kind classifies a violation.
type Kind uint8

// Violation kinds.
const (
	Blackhole Kind = iota
	Loop
	OverCapacity
	VersionRegress
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Blackhole:
		return "blackhole"
	case Loop:
		return "loop"
	case OverCapacity:
		return "over-capacity"
	case VersionRegress:
		return "version-regress"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Violation is one recorded invariant breach.
type Violation struct {
	Kind Kind
	// Step and Time locate the breach in the trial's event sequence.
	Step   uint64
	Time   time.Duration
	Flow   packet.FlowID
	Node   topo.NodeID
	Detail string
}

// Config tunes the auditor.
type Config struct {
	// Every is the sweep period in engine steps (<=0 means every step).
	Every int
	// MaxExamples bounds the retained example violations (0 means 8).
	MaxExamples int
	// NoCapacity disables the link-capacity invariant — required for
	// setups that never enforce capacity (Congestion off), where links
	// are legitimately overbooked.
	NoCapacity bool
}

// Report summarizes a trial's audit: total violation counts per kind,
// the number of distinct flows (or links) involved, and a bounded set
// of example violations.
type Report struct {
	Sweeps uint64

	Blackholes         uint64
	Loops              uint64
	OverCapacity       uint64
	VersionRegressions uint64

	BlackholeFlows int
	LoopFlows      int
	OverCapLinks   int
	RegressFlows   int

	Examples []Violation
}

// Total returns the summed violation count across kinds.
func (r *Report) Total() uint64 {
	return r.Blackholes + r.Loops + r.OverCapacity + r.VersionRegressions
}

// portRef identifies one directed link endpoint in the load scratch.
type portRef struct {
	node topo.NodeID
	port topo.PortID
}

// Auditor holds the sweep state for one attached fabric. All scratch is
// reused across sweeps, so steady-state sweeping allocates only when a
// violation is recorded.
type Auditor struct {
	cfg Config
	net *dataplane.Network
	ctl *controlplane.Controller

	step   uint64
	sweeps uint64

	counts   [numKinds]uint64
	flowSets [numKinds]map[packet.FlowID]struct{}
	linkSet  map[portRef]struct{}
	examples []Violation

	// visited marks trace membership by generation, so loop detection
	// needs no per-flow clearing.
	visited []uint32
	visGen  uint32
	// load accumulates traced kbps per (node, egress port); touched
	// lists the entries to reset before the next sweep.
	load    [][]uint64
	touched []portRef
	// lastVer tracks the highest applied version seen per (node, flow
	// slot) for the monotonicity invariant; slotFlow remembers which
	// flow each slot held last sweep, so a recycled slot's version
	// history is reset instead of charging the new tenant with its
	// predecessor's versions.
	lastVer  [][]uint32
	slotFlow []packet.FlowID

	// OnSweep, when set, observes every completed sweep with its instant
	// and the violations newly recorded during it. Like the auditor it
	// must only read state — it is the seam SLO trackers hang off (e.g.
	// the soak harness's availability and recovery-time accounting). Set
	// it after Attach, before the run starts.
	OnSweep func(SweepStats)
}

// SweepStats describes one completed sweep: the virtual instant it ran
// and the violations newly recorded during it (deltas, not totals).
type SweepStats struct {
	Sweep              uint64
	Time               time.Duration
	Blackholes         uint64
	Loops              uint64
	OverCapacity       uint64
	VersionRegressions uint64
}

// Total sums the sweep's new violations across kinds.
func (s *SweepStats) Total() uint64 {
	return s.Blackholes + s.Loops + s.OverCapacity + s.VersionRegressions
}

// Attach installs a continuous auditor on the network's engine and
// returns it. The controller supplies flow endpoints (Flow DB).
func Attach(net *dataplane.Network, ctl *controlplane.Controller, cfg Config) *Auditor {
	if cfg.Every <= 0 {
		cfg.Every = 1
	}
	if cfg.MaxExamples <= 0 {
		cfg.MaxExamples = 8
	}
	n := net.Topo.NumNodes()
	a := &Auditor{
		cfg:     cfg,
		net:     net,
		ctl:     ctl,
		visited: make([]uint32, n),
		load:    make([][]uint64, n),
		lastVer: make([][]uint32, n),
	}
	for _, id := range net.Topo.Nodes() {
		a.load[id] = make([]uint64, net.Topo.Degree(id))
	}
	net.Eng.AfterStep = a.afterStep
	return a
}

// afterStep is the engine hook: it counts steps and sweeps every
// cfg.Every-th one.
func (a *Auditor) afterStep() {
	a.step++
	if a.step%uint64(a.cfg.Every) != 0 {
		return
	}
	a.Sweep()
}

// Report returns the audit summary accumulated so far.
func (a *Auditor) Report() Report {
	return Report{
		Sweeps:             a.sweeps,
		Blackholes:         a.counts[Blackhole],
		Loops:              a.counts[Loop],
		OverCapacity:       a.counts[OverCapacity],
		VersionRegressions: a.counts[VersionRegress],
		BlackholeFlows:     len(a.flowSets[Blackhole]),
		LoopFlows:          len(a.flowSets[Loop]),
		OverCapLinks:       len(a.linkSet),
		RegressFlows:       len(a.flowSets[VersionRegress]),
		Examples:           a.examples,
	}
}

// Sweep audits the fabric's current state once. It is exported so tests
// (and one-shot audits) can drive it without the engine hook.
func (a *Auditor) Sweep() {
	before := a.counts
	a.sweeps++
	for _, pr := range a.touched {
		a.load[pr.node][pr.port] = 0
	}
	a.touched = a.touched[:0]

	// Iterate the dense slot space directly: dead (recycled, vacant)
	// slots are skipped, so only live flows are audited, and a slot
	// whose tenant changed since the last sweep gets its per-node
	// version history cleared before the monotonicity check.
	nSlots := a.net.NumFlowSlots()
	for idx := 0; idx < nSlots; idx++ {
		f, ok := a.net.FlowAt(int32(idx))
		if !ok {
			continue
		}
		if idx >= len(a.slotFlow) {
			a.slotFlow = append(a.slotFlow, make([]packet.FlowID, idx+1-len(a.slotFlow))...)
		}
		if a.slotFlow[idx] != f {
			a.slotFlow[idx] = f
			for _, lv := range a.lastVer {
				if idx < len(lv) {
					lv[idx] = 0
				}
			}
		}
		rec, ok := a.ctl.Flow(f)
		if !ok {
			continue
		}
		a.checkVersions(idx, f)
		a.traceFlow(f, rec)
	}
	if !a.cfg.NoCapacity {
		a.checkCapacity()
	}
	if a.OnSweep != nil {
		a.OnSweep(SweepStats{
			Sweep:              a.sweeps,
			Time:               a.net.Eng.Now(),
			Blackholes:         a.counts[Blackhole] - before[Blackhole],
			Loops:              a.counts[Loop] - before[Loop],
			OverCapacity:       a.counts[OverCapacity] - before[OverCapacity],
			VersionRegressions: a.counts[VersionRegress] - before[VersionRegress],
		})
	}
}

// traceFlow follows the flow's active forwarding state from its ingress,
// reporting loops and blackholes and charging traced load to each
// crossed link. The walk forwards exactly like the data plane: on
// two-phase switches (§11 / PPCU) it carries the version tag a packet
// injected now would be stamped with at the ingress, and follows the
// retained previous rule wherever the tag predates the switch's current
// configuration — mid-update two-phase state is consistent for tagged
// packets and must not be reported as a blackhole. A trace that meets a
// crashed switch is abandoned without a report: a physical outage is
// not a protocol fault.
func (a *Auditor) traceFlow(f packet.FlowID, rec *controlplane.FlowRecord) {
	a.visGen++
	cur := rec.Src
	var tag uint32
	maxHops := a.net.Topo.NumNodes() + 1
	for hop := 0; hop <= maxHops; hop++ {
		if a.visited[cur] == a.visGen {
			a.report(Loop, f, cur, "forwarding loop revisits node")
			return
		}
		a.visited[cur] = a.visGen
		sw := a.net.Switch(cur)
		if sw.Down() {
			return
		}
		st, ok := sw.PeekState(f)
		if !ok || !st.HasRule {
			a.report(Blackhole, f, cur, "no forwarding rule")
			return
		}
		out := st.EgressPort
		if sw.TwoPhase {
			if hop == 0 && tag == 0 {
				tag = st.NewVersion // ingress stamps host traffic
			}
			if tag != 0 && tag < st.NewVersion && st.PrevValid {
				out = st.PrevEgressPort // previous configuration's rule
			}
		}
		if out == dataplane.PortLocal {
			if cur != rec.Dst {
				a.report(Blackhole, f, cur, "local delivery at non-destination")
			}
			return
		}
		next, ok := a.net.Topo.NeighborAt(cur, out)
		if !ok {
			a.report(Blackhole, f, cur, "egress port has no link")
			return
		}
		a.addLoad(cur, out, st.FlowSizeK)
		cur = next
	}
	a.report(Loop, f, cur, "trace exceeded hop bound")
}

// addLoad charges sizeK to the directed link (node, port).
func (a *Auditor) addLoad(node topo.NodeID, port topo.PortID, sizeK uint32) {
	if port < 0 || int(port) >= len(a.load[node]) {
		return
	}
	if a.load[node][port] == 0 {
		a.touched = append(a.touched, portRef{node, port})
	}
	a.load[node][port] += uint64(sizeK)
}

// checkCapacity compares traced load on every touched link against its
// capacity.
func (a *Auditor) checkCapacity() {
	for _, pr := range a.touched {
		c := a.net.Switch(pr.node).CapacityK(pr.port)
		if c > 0 && a.load[pr.node][pr.port] > c {
			a.counts[OverCapacity]++
			if a.linkSet == nil {
				a.linkSet = make(map[portRef]struct{})
			}
			a.linkSet[pr] = struct{}{}
			if len(a.examples) < a.cfg.MaxExamples {
				a.examples = append(a.examples, Violation{
					Kind: OverCapacity, Step: a.step, Time: a.net.Eng.Now(),
					Node: pr.node,
					Detail: fmt.Sprintf("port %d carries %d kbps, capacity %d kbps",
						pr.port, a.load[pr.node][pr.port], c),
				})
			}
		}
	}
}

// checkVersions asserts the flow's applied version never decreases on
// any node.
func (a *Auditor) checkVersions(idx int, f packet.FlowID) {
	for _, sw := range a.net.Switches() {
		st := sw.FlowStateAt(idx)
		if st == nil || !st.HasRule {
			continue
		}
		lv := a.lastVer[sw.ID]
		if idx >= len(lv) {
			grown := make([]uint32, idx+1)
			copy(grown, lv)
			lv = grown
			a.lastVer[sw.ID] = lv
		}
		if st.NewVersion < lv[idx] {
			a.report(VersionRegress, f, sw.ID, fmt.Sprintf(
				"applied version %d after %d", st.NewVersion, lv[idx]))
		} else {
			lv[idx] = st.NewVersion
		}
	}
}

// report records one violation.
func (a *Auditor) report(k Kind, f packet.FlowID, node topo.NodeID, detail string) {
	a.counts[k]++
	if a.flowSets[k] == nil {
		a.flowSets[k] = make(map[packet.FlowID]struct{})
	}
	a.flowSets[k][f] = struct{}{}
	if len(a.examples) < a.cfg.MaxExamples {
		a.examples = append(a.examples, Violation{
			Kind: k, Step: a.step, Time: a.net.Eng.Now(),
			Flow: f, Node: node, Detail: detail,
		})
	}
}
