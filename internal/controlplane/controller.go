package controlplane

import (
	"fmt"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// FlowRecord is one Flow-DB entry.
type FlowRecord struct {
	ID       packet.FlowID
	Src, Dst topo.NodeID
	Path     []topo.NodeID
	Version  uint32
	SizeK    uint32
}

// UpdateStatus tracks one triggered update for the evaluation.
type UpdateStatus struct {
	Flow    packet.FlowID
	Version uint32
	// Plan is the P4Update preparation result (nil for baselines).
	Plan *Plan
	// NewPath is the path whose establishment completes the update.
	NewPath []topo.NodeID
	// OldPath is the controller's view of the pre-update path; nodes on
	// it that left the path are cleaned up after completion (§11).
	OldPath []topo.NodeID
	// Sent is the virtual time the UIMs left the controller.
	Sent time.Duration
	// AllApplied is the virtual time the last new-path node committed
	// (zero until then).
	AllApplied time.Duration
	// Completed is the virtual time the controller received the probe
	// confirmation that the whole new path is established (zero until
	// then); the paper measures update time as Completed - Sent.
	Completed time.Duration
	// IngressReported is when the ingress's StatusUpdated UFM arrived.
	IngressReported time.Duration
	// Alarms collects verification alarms raised for this version.
	Alarms []packet.UFM
	// Retriggers counts §11 failure-recovery re-transmissions.
	Retriggers int
	// ProbeRetries counts confirmation probes re-injected after every
	// node committed. Re-probing a fully applied update is one
	// data-plane frame and cannot wedge the protocol, so it is not
	// charged against MaxRetriggers — the budget bounds the expensive
	// full-plan resends only. Without the split, an update that
	// commits cleanly but keeps losing its probe through a long fault
	// window exhausts the budget and never confirms, leaking its flow.
	ProbeRetries int
	// LastRetrigger is when the controller last consumed retrigger
	// budget for this update. Recovery fires at most once per
	// ProbeTimeout: without the spacing, one watchdog round of
	// StatusStalled reports from every switch on the path drains the
	// whole budget (each resend also resets the switches' stall-report
	// budgets, feeding the burst), leaving nothing for the probe
	// re-injections that finish a long recovery.
	LastRetrigger time.Duration
	// Queued marks an update accepted but deferred behind an ongoing
	// update of the same flow (ez-Segway serializes per flow, §4.2).
	// Version and Sent stay zero until the update launches; the same
	// record is then filled in and tracked to completion.
	Queued bool
	// Resend, when set by the driving system, re-transmits the update's
	// outstanding instructions. The §11 recovery watchdog fires it when
	// nodes are still missing and no plan is attached (systems with a
	// Plan keep the built-in UIM resend). Each firing counts against
	// MaxRetriggers.
	Resend func()

	pending map[topo.NodeID]bool
}

// Done reports whether the probe confirmed the update.
func (u *UpdateStatus) Done() bool { return u.Completed > 0 }

// Pending reports whether node n's version-tagged commit is still
// outstanding for this update.
func (u *UpdateStatus) Pending(n topo.NodeID) bool { return u.pending[n] }

// Controller is the logically centralized control plane.
type Controller struct {
	Eng  *sim.Engine
	Net  *dataplane.Network
	Topo *topo.Topology

	// Node is the switch co-located with the controller (for WAN
	// topologies the centroid, per §9.1).
	Node topo.NodeID

	flows   map[packet.FlowID]*FlowRecord
	trees   map[packet.FlowID]*TreeRecord
	updates map[updateKey]*UpdateStatus

	// OnNewFlow, when set, is invoked for Flow Report Messages of
	// unknown flows.
	OnNewFlow func(f packet.FlowID)
	// OnUFM, when set, observes every feedback message (the Central
	// baseline drives its rounds from per-node acknowledgements).
	OnUFM func(u packet.UFM)
	// OnAlarm, when set, observes verification alarms.
	OnAlarm func(u packet.UFM)
	// OnComplete, when set, observes probe-confirmed update completions.
	OnComplete func(u *UpdateStatus)
	// InjectProbeHook, when set, is consulted before the controller
	// injects a §9.1 confirmation probe at the ingress switch. Return
	// true to take over the injection — deployment mode routes the
	// probe request over the wire to the ingress switch's process
	// instead of touching its local (remote-owned) switch replica.
	InjectProbeHook func(u *UpdateStatus) bool
	// MaxRetriggers bounds §11 failure recovery: how many times a stalled
	// update's indications are re-sent (0 disables recovery).
	MaxRetriggers int
	// ProbeTimeout, when nonzero, arms a controller-side watchdog on
	// every pushed update: if the update has not completed when the
	// timer fires, the controller re-injects the confirmation probe
	// (once every node applied — a lost probe otherwise stalls
	// completion forever) or re-sends the plan's indications (while
	// nodes are still missing — covering the case where every
	// switch-side stall report was itself lost). Each firing counts
	// against MaxRetriggers, so recovery stays bounded.
	ProbeTimeout time.Duration
	// Plans, when set, memoizes plan preparation across trials that
	// share a frozen topology (see internal/plancache and the Planner
	// seam in planner.go). Plans returned from it are shared and must be
	// treated as immutable — which they are: the controller only
	// serializes UIMs, never mutates them.
	Plans Planner

	// UIM batching (BeginUIMBatch/FlushUIMBatch): while batching is on,
	// UIMs pushed through PushMessagesInto are coalesced per target
	// switch and shipped as one UIMBatch frame per switch at flush. The
	// batch scratch is reused across waves, so a steady-state reroute
	// wave allocates one frame struct per touched switch.
	batching   bool
	batchOrder []topo.NodeID
	batchIdx   map[topo.NodeID]int
	batchItems [][]*packet.UIM
	// BatchFrames / BatchedUIMs count flushed frames and the UIMs they
	// carried (experiment reporting).
	BatchFrames uint64
	BatchedUIMs uint64
}

type updateKey struct {
	flow    packet.FlowID
	version uint32
}

// NewController attaches a controller to the network and registers the
// controller-bound receive path and the apply observer.
func NewController(net *dataplane.Network, node topo.NodeID) *Controller {
	c := &Controller{
		Eng:     net.Eng,
		Net:     net,
		Topo:    net.Topo,
		Node:    node,
		flows:   make(map[packet.FlowID]*FlowRecord),
		updates: make(map[updateKey]*UpdateStatus),
	}
	net.ControllerRx = c.receive
	net.OnApply = c.onApply
	return c
}

// Flow returns the Flow-DB record for f.
func (c *Controller) Flow(f packet.FlowID) (*FlowRecord, bool) {
	r, ok := c.flows[f]
	return r, ok
}

// RegisterFlow records a flow in the Flow DB and seeds its rules in the
// data plane (version 1 initial deployment).
func (c *Controller) RegisterFlow(src, dst topo.NodeID, path []topo.NodeID, sizeK uint32) (packet.FlowID, error) {
	f := packet.HashFlow(uint16(src), uint16(dst))
	if err := c.RegisterFlowID(f, src, dst, path, sizeK); err != nil {
		return 0, err
	}
	return f, nil
}

// RegisterFlowID is RegisterFlow with a caller-chosen flow identifier:
// salted workloads carry several flows per (src, dst) pair, each with
// its own wire ID (traffic.FlowSpec.ID).
func (c *Controller) RegisterFlowID(f packet.FlowID, src, dst topo.NodeID, path []topo.NodeID, sizeK uint32) error {
	if err := c.Topo.ValidatePath(path); err != nil {
		return fmt.Errorf("controlplane: RegisterFlow: %w", err)
	}
	if path[0] != src || path[len(path)-1] != dst {
		return fmt.Errorf("controlplane: path endpoints do not match flow")
	}
	c.flows[f] = &FlowRecord{ID: f, Src: src, Dst: dst, Path: path, Version: 1, SizeK: sizeK}
	c.Net.InstallPath(f, path, 1, sizeK)
	return nil
}

// Status returns the tracking record of (flow, version).
func (c *Controller) Status(f packet.FlowID, version uint32) (*UpdateStatus, bool) {
	u, ok := c.updates[updateKey{f, version}]
	return u, ok
}

// Updates returns all tracked updates.
func (c *Controller) Updates() []*UpdateStatus {
	out := make([]*UpdateStatus, 0, len(c.updates))
	for _, u := range c.updates {
		out = append(out, u)
	}
	return out
}

// TriggerUpdate prepares and pushes a route update of flow f to newPath.
// It returns the tracked status. force pins the update type (nil = §7.5
// auto selection).
func (c *Controller) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID, force *packet.UpdateType) (*UpdateStatus, error) {
	rec, ok := c.flows[f]
	if !ok {
		return nil, fmt.Errorf("controlplane: unknown flow %d", f)
	}
	version := rec.Version + 1
	plan, err := PreparePlanCached(c.Plans, c.Topo, f, rec.Path, newPath, version, rec.SizeK, force)
	if err != nil {
		return nil, err
	}
	return c.Push(plan, rec)
}

// Push sends a prepared plan's UIMs and tracks completion. The Flow-DB
// record is updated optimistically (the controller's view of the intended
// state); completion is confirmed by UFMs and the probe traversal.
func (c *Controller) Push(plan *Plan, rec *FlowRecord) (*UpdateStatus, error) {
	msgs := make([]packet.Message, len(plan.UIMs))
	for i, m := range plan.UIMs {
		msgs[i] = m
	}
	u := c.PushMessages(plan.Flow, plan.Version, plan.OldPath, plan.NewPath, nil, plan.Targets, msgs, rec)
	u.Plan = plan
	return u, nil
}

// PushMessages is the protocol-agnostic trigger behind Push: it sends one
// prepared message per target switch and tracks completion of the update.
// pendingNodes is the set whose version-tagged commits complete the
// update (nil = every new-path node); completion is measured by the apply
// observer plus the probe traversal (§9.1 semantics), identical for every
// evaluated system.
func (c *Controller) PushMessages(flow packet.FlowID, version uint32, oldPath, newPath, pendingNodes []topo.NodeID,
	targets []topo.NodeID, msgs []packet.Message, rec *FlowRecord) *UpdateStatus {
	return c.PushMessagesInto(nil, flow, version, oldPath, newPath, pendingNodes, targets, msgs, rec)
}

// PushMessagesInto is PushMessages reusing a caller-held status record:
// an update handed out in the Queued state is filled in and launched
// through the same pointer, so callers observe the transition without
// re-querying. A nil u allocates a fresh record.
func (c *Controller) PushMessagesInto(u *UpdateStatus, flow packet.FlowID, version uint32,
	oldPath, newPath, pendingNodes []topo.NodeID,
	targets []topo.NodeID, msgs []packet.Message, rec *FlowRecord) *UpdateStatus {

	if pendingNodes == nil {
		pendingNodes = newPath
	}
	if u == nil {
		u = &UpdateStatus{}
	}
	u.Flow = flow
	u.Version = version
	u.Sent = c.Eng.Now()
	u.Queued = false
	u.pending = make(map[topo.NodeID]bool, len(pendingNodes))
	u.OldPath = oldPath
	u.NewPath = newPath
	for _, n := range pendingNodes {
		u.pending[n] = true
	}
	c.updates[updateKey{flow, version}] = u
	for i, m := range msgs {
		if c.batching {
			if uim, ok := m.(*packet.UIM); ok {
				c.batchAdd(targets[i], uim)
				continue
			}
		}
		c.Net.SendToSwitch(targets[i], m, 0)
	}
	if rec != nil {
		rec.Path = newPath
		rec.Version = version
	}
	c.armUpdateWatchdog(u)
	return u
}

// BeginUIMBatch switches the controller into UIM-batching mode: every
// UIM pushed until FlushUIMBatch is coalesced per destination switch
// instead of transmitted immediately. Non-UIM messages pass through
// unbatched. Used by reroute waves (a wave triggers hundreds of updates
// in the same virtual instant) to amortize marshal and scheduling cost;
// single-update paths never batch, so their timing is untouched.
func (c *Controller) BeginUIMBatch() {
	c.batching = true
	if c.batchIdx == nil {
		c.batchIdx = make(map[topo.NodeID]int)
	}
}

// batchAdd appends one UIM to its target's pending batch, keeping
// first-touch target order so flush transmission order is
// deterministic.
func (c *Controller) batchAdd(target topo.NodeID, m *packet.UIM) {
	bi, ok := c.batchIdx[target]
	if !ok {
		bi = len(c.batchOrder)
		c.batchIdx[target] = bi
		c.batchOrder = append(c.batchOrder, target)
		if bi == len(c.batchItems) {
			c.batchItems = append(c.batchItems, nil)
		}
	}
	c.batchItems[bi] = append(c.batchItems[bi], m)
}

// FlushUIMBatch transmits every pending batch — one UIMBatch frame per
// target switch, a bare UIM when a target accumulated only one — and
// leaves batching mode. Delivery timing is identical to unbatched
// sends (same instant, same control latency); only the per-message
// marshal/schedule overhead is amortized.
func (c *Controller) FlushUIMBatch() {
	if !c.batching {
		return
	}
	c.batching = false
	for bi, node := range c.batchOrder {
		items := c.batchItems[bi]
		if len(items) == 1 {
			c.Net.SendToSwitch(node, items[0], 0)
		} else {
			c.Net.SendToSwitch(node, &packet.UIMBatch{Items: items}, 0)
			c.BatchFrames++
			c.BatchedUIMs += uint64(len(items))
		}
		delete(c.batchIdx, node)
		c.batchItems[bi] = items[:0]
	}
	c.batchOrder = c.batchOrder[:0]
}

// UnregisterFlow removes a departed flow from the Flow DB and drops its
// tracked update records, bounding controller memory by live — not
// historical — flows. Data-plane teardown is separate
// (dataplane.Network.RetireFlow); callers retire only quiescent flows.
func (c *Controller) UnregisterFlow(f packet.FlowID) {
	rec, ok := c.flows[f]
	if !ok {
		return
	}
	delete(c.flows, f)
	delete(c.trees, f)
	for v := uint32(2); v <= rec.Version+1; v++ {
		delete(c.updates, updateKey{f, v})
	}
}

// ForgetUpdate drops the tracking record of one completed (flow,
// version) update. Long-lived flows rerouted many times call this from
// OnComplete so the updates map holds only in-flight work.
func (c *Controller) ForgetUpdate(f packet.FlowID, version uint32) {
	delete(c.updates, updateKey{f, version})
}

// armUpdateWatchdog schedules one end-to-end completion check for u
// (see ProbeTimeout). It re-arms itself until the update completes or
// the controller stops tracking it. Plan resends are bounded by the
// §11 retrigger budget; confirmation probes after AllApplied are not
// (see UpdateStatus.ProbeRetries).
func (c *Controller) armUpdateWatchdog(u *UpdateStatus) {
	if c.ProbeTimeout <= 0 {
		return
	}
	c.Eng.Schedule(c.ProbeTimeout, func() {
		if u.Done() {
			return
		}
		if _, tracked := c.updates[updateKey{u.Flow, u.Version}]; !tracked {
			return // flow retired or update forgotten; stop the watchdog
		}
		if u.AllApplied > 0 {
			// Every node committed but the probe confirmation never came
			// back: the probe (a data-plane frame) was lost. Re-inject
			// it without charging the §11 budget (see ProbeRetries).
			u.ProbeRetries++
			c.Eng.Trace.Watchdog(trace.NodeController,
				uint32(u.Flow), u.Version, uint32(u.ProbeRetries))
			c.injectProbe(u)
			c.armUpdateWatchdog(u)
			return
		}
		if u.Retriggers >= c.MaxRetriggers {
			// Budget spent: no more plan resends. Keep the watchdog
			// alive — straggler commits (from parked notifications or
			// earlier resends) can still empty the pending set, after
			// which budget-free confirmation probing resumes above.
			c.armUpdateWatchdog(u)
			return
		}
		if u.Retriggers > 0 && c.Eng.Now()-u.LastRetrigger < c.ProbeTimeout {
			// A stall report consumed this period's budget; wait out the
			// spacing before checking again.
			c.armUpdateWatchdog(u)
			return
		}
		u.Retriggers++
		u.LastRetrigger = c.Eng.Now()
		c.Eng.Trace.Watchdog(trace.NodeController,
			uint32(u.Flow), u.Version, uint32(u.Retriggers))
		switch {
		case u.Plan != nil:
			// Nodes are still missing and no stall report reached us:
			// re-send the plan's indications.
			for i, uim := range u.Plan.UIMs {
				c.Net.SendToSwitch(u.Plan.Targets[i], uim, 0)
			}
		case u.Resend != nil:
			// Plan-less systems (LocalVerify, PPCU, OptOracle) re-send
			// through their own scheduling loop.
			u.Resend()
		}
		c.armUpdateWatchdog(u)
	})
}

// injectProbe launches the §9.1 confirmation traversal from the
// update's ingress.
func (c *Controller) injectProbe(u *UpdateStatus) {
	ingress := u.NewPath[0]
	if c.InjectProbeHook != nil && c.InjectProbeHook(u) {
		return
	}
	c.Net.Switch(ingress).InjectData(&packet.Data{
		Flow: u.Flow, TTL: 64, Probe: true, ProbeVersion: u.Version,
	})
}

// TrackOnly registers completion tracking for (flow, version, newPath)
// without sending anything — for baselines that send messages through
// their own scheduling loop (Central rounds).
func (c *Controller) TrackOnly(flow packet.FlowID, version uint32, oldPath, newPath, pendingNodes []topo.NodeID, rec *FlowRecord) *UpdateStatus {
	return c.PushMessages(flow, version, oldPath, newPath, pendingNodes, nil, nil, rec)
}

// onApply observes rule commits; when the whole new path runs the target
// version, it launches the verification probe from the ingress (§9.1:
// "which we record with a packet traversal").
func (c *Controller) onApply(node topo.NodeID, f packet.FlowID, version uint32) {
	u, ok := c.updates[updateKey{f, version}]
	if !ok || !u.pending[node] {
		return
	}
	delete(u.pending, node)
	if len(u.pending) > 0 || u.AllApplied > 0 {
		return
	}
	u.AllApplied = c.Eng.Now()
	c.injectProbe(u)
}

// receive is the controller's message sink.
func (c *Controller) receive(from topo.NodeID, raw []byte) {
	m, err := packet.Decode(raw)
	if err != nil {
		return
	}
	if tr := c.Eng.Trace; tr != nil {
		flow, ver := dataplane.MsgMeta(m)
		tr.Recv(trace.NodeController, uint8(m.Type()), int32(from), flow, ver)
	}
	switch m := m.(type) {
	case *packet.FRM:
		if _, known := c.flows[m.Flow]; !known && c.OnNewFlow != nil {
			c.OnNewFlow(m.Flow)
		}
	case *packet.UFM:
		c.handleUFM(m)
	}
}

func (c *Controller) handleUFM(m *packet.UFM) {
	if c.OnUFM != nil {
		c.OnUFM(*m)
	}
	u, ok := c.updates[updateKey{m.Flow, m.Version}]
	switch m.Status {
	case packet.StatusUpdated:
		if ok && u.IngressReported == 0 {
			u.IngressReported = c.Eng.Now()
		}
	case packet.StatusProbeOK:
		if ok && u.Completed == 0 {
			u.Completed = c.Eng.Now()
			c.cleanupStaleRules(u)
			if c.OnComplete != nil {
				c.OnComplete(u)
			}
		}
	case packet.StatusAlarm:
		if ok {
			u.Alarms = append(u.Alarms, *m)
		}
		if c.OnAlarm != nil {
			c.OnAlarm(*m)
		}
	case packet.StatusStalled:
		// §11 failure recovery: a switch holds the indication but the
		// notification chain never arrived — re-send the plan's UIMs so
		// the coordination restarts from the egress.
		if ok && !u.Done() && (u.Plan != nil || u.Resend != nil) && u.Retriggers < c.MaxRetriggers &&
			!(c.ProbeTimeout > 0 && u.Retriggers > 0 && c.Eng.Now()-u.LastRetrigger < c.ProbeTimeout) {
			u.Retriggers++
			u.LastRetrigger = c.Eng.Now()
			c.Eng.Trace.Watchdog(trace.NodeController,
				uint32(u.Flow), u.Version, uint32(u.Retriggers))
			if u.Plan != nil {
				for i, uim := range u.Plan.UIMs {
					c.Net.SendToSwitch(u.Plan.Targets[i], uim, 0)
				}
			} else {
				u.Resend()
			}
		}
	}
}

// cleanupStaleRules implements the §11 rule cleanup: once an update is
// confirmed, the controller removes the flow's rules (and thereby their
// capacity reservations) from old-path nodes that left the path.
func (c *Controller) cleanupStaleRules(u *UpdateStatus) {
	if len(u.OldPath) == 0 {
		return
	}
	onNew := make(map[topo.NodeID]bool, len(u.NewPath))
	for _, n := range u.NewPath {
		onNew[n] = true
	}
	for _, n := range u.OldPath {
		if !onNew[n] {
			c.Net.SendToSwitch(n, &packet.CLN{Flow: u.Flow, Version: u.Version}, 0)
		}
	}
}

// UseCentroidControl places the controller at the topology centroid and
// derives per-switch control latencies from shortest-path propagation
// (§9.1, WAN topologies).
func UseCentroidControl(net *dataplane.Network) topo.NodeID {
	node := net.Topo.Centroid()
	lat := net.Topo.ControlLatencies(node)
	net.ControlLatency = func(n topo.NodeID) time.Duration { return lat[n] }
	return node
}

// UseSampledControl assigns each switch a control latency drawn once from
// sample (the fat-tree model of §9.1, normal-distribution latencies per
// Huang et al.).
func UseSampledControl(net *dataplane.Network, sample func() time.Duration) {
	lat := make([]time.Duration, net.Topo.NumNodes())
	for i := range lat {
		lat[i] = sample()
	}
	net.ControlLatency = func(n topo.NodeID) time.Duration { return lat[n] }
}
