package controlplane

import (
	"testing"

	"p4update/internal/topo"
)

func TestTreeDepths(t *testing.T) {
	g := topo.Synthetic()
	tree := ShortestPathTree(g, 7)
	depth, err := TreeDepths(g, 7, tree)
	if err != nil {
		t.Fatal(err)
	}
	if depth[7] != 0 {
		t.Errorf("root depth = %d", depth[7])
	}
	if len(depth) != g.NumNodes() {
		t.Errorf("tree covers %d nodes, want %d", len(depth), g.NumNodes())
	}
	for child, parent := range tree {
		if depth[child] != depth[parent]+1 {
			t.Errorf("depth(%d)=%d, parent %d depth %d", child, depth[child], parent, depth[parent])
		}
	}
}

func TestTreeDepthsRejectsCycle(t *testing.T) {
	g := topo.Synthetic()
	// 1->2, 2->1 cycle (both adjacent).
	if _, err := TreeDepths(g, 7, Tree{1: 2, 2: 1}); err == nil {
		t.Error("cycle accepted")
	}
	// Parentless non-root node.
	if _, err := TreeDepths(g, 7, Tree{3: 4}); err == nil {
		t.Error("dangling parent chain accepted")
	}
	// Non-adjacent edge.
	if _, err := TreeDepths(g, 7, Tree{0: 7}); err == nil {
		t.Error("non-adjacent edge accepted")
	}
}

func TestPrepareTreePlanCloneGroups(t *testing.T) {
	g := topo.Synthetic()
	tree := ShortestPathTree(g, 7)
	plan, err := PrepareTreePlan(g, 9, 7, tree, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Indications per node = max(1, #children).
	children := map[topo.NodeID]int{}
	for _, p := range tree {
		children[p]++
	}
	count := map[topo.NodeID]int{}
	for _, tgt := range plan.Targets {
		count[tgt]++
	}
	for _, n := range plan.Nodes {
		want := children[n]
		if want == 0 {
			want = 1
		}
		if count[n] != want {
			t.Errorf("node %d: %d indications, want %d", n, count[n], want)
		}
	}
	// All of a node's indications share identical verification labels.
	seen := map[topo.NodeID]*struct{ d uint16 }{}
	for i, uim := range plan.UIMs {
		n := plan.Targets[i]
		if prev, ok := seen[n]; ok {
			if prev.d != uim.NewDistance {
				t.Errorf("node %d: inconsistent labels across indications", n)
			}
		} else {
			seen[n] = &struct{ d uint16 }{uim.NewDistance}
		}
	}
}
