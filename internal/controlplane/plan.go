// Package controlplane implements the P4Update controller: the Network
// Information Base, the Flow DB, distance labeling, path segmentation
// (gateway detection and forward/backward classification), UIM generation
// and the update trigger, plus completion tracking for the evaluation.
//
// The preparation path (PreparePlan and its helpers) is deliberately pure
// so the control-plane computation-time experiments (the paper's Fig. 8)
// can time it in isolation.
package controlplane

import (
	"fmt"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Segment is one dual-layer path segment: a maximal slice of the new path
// between two consecutive gateway nodes (§3.2).
type Segment struct {
	// Nodes is the new-path slice from the ingress gateway to the egress
	// gateway, inclusive.
	Nodes []topo.NodeID
	// IngressGW is the gateway closer to the flow ingress, EgressGW the
	// one closer to the flow egress (w.r.t. the new path).
	IngressGW, EgressGW topo.NodeID
	// Forward reports whether the segment decreases the old-path
	// distance (updateable immediately); backward segments must wait.
	Forward bool
}

// Segmentation is the dual-layer decomposition of an update.
type Segmentation struct {
	// Gateways are the nodes on both the old and the new path, in
	// new-path order. The flow ingress and egress are always gateways.
	Gateways []topo.NodeID
	Segments []Segment
	// OldDistance maps every old-path node to its hop distance to the
	// egress along the old path (the "segment IDs" of §3.2).
	OldDistance map[topo.NodeID]uint16
}

// SegmentPaths computes the dual-layer segmentation of an update from
// oldPath to newPath. Both paths must share ingress and egress.
func SegmentPaths(oldPath, newPath []topo.NodeID) (Segmentation, error) {
	var s Segmentation
	if len(oldPath) < 1 || len(newPath) < 2 {
		return s, fmt.Errorf("controlplane: paths too short")
	}
	if oldPath[0] != newPath[0] || oldPath[len(oldPath)-1] != newPath[len(newPath)-1] {
		return s, fmt.Errorf("controlplane: old and new path must share ingress and egress")
	}
	s.OldDistance = make(map[topo.NodeID]uint16, len(oldPath))
	k := len(oldPath) - 1
	for i, n := range oldPath {
		s.OldDistance[n] = uint16(k - i)
	}
	onOld := make(map[topo.NodeID]bool, len(oldPath))
	for _, n := range oldPath {
		onOld[n] = true
	}
	for _, n := range newPath {
		if onOld[n] {
			s.Gateways = append(s.Gateways, n)
		}
	}
	// Segments between consecutive gateways along the new path.
	gwIndex := make(map[topo.NodeID]int, len(s.Gateways))
	for i, n := range newPath {
		if onOld[n] {
			gwIndex[n] = i
		}
	}
	for gi := 0; gi+1 < len(s.Gateways); gi++ {
		in, eg := s.Gateways[gi], s.Gateways[gi+1]
		seg := Segment{
			Nodes:     newPath[gwIndex[in] : gwIndex[eg]+1],
			IngressGW: in,
			EgressGW:  eg,
			Forward:   s.OldDistance[eg] < s.OldDistance[in],
		}
		s.Segments = append(s.Segments, seg)
	}
	return s, nil
}

// NodesNeedingUpdate counts the new-path nodes whose forwarding rule
// actually changes: nodes not on the old path, plus nodes whose next hop
// differs between the paths.
func NodesNeedingUpdate(oldPath, newPath []topo.NodeID) int {
	oldNext := make(map[topo.NodeID]topo.NodeID, len(oldPath))
	onOld := make(map[topo.NodeID]bool, len(oldPath))
	for i, n := range oldPath {
		onOld[n] = true
		if i+1 < len(oldPath) {
			oldNext[n] = oldPath[i+1]
		}
	}
	count := 0
	for i, n := range newPath {
		if i+1 >= len(newPath) {
			break // the egress keeps local delivery
		}
		if !onOld[n] || oldNext[n] != newPath[i+1] {
			count++
		}
	}
	return count
}

// slThreshold is the §7.5 deployment rule: single layer when only forward
// segments exist and at most this many nodes need updating.
const slThreshold = 5

// ChooseUpdateType implements the single/dual-layer combination policy of
// §7.5.
func ChooseUpdateType(seg Segmentation, oldPath, newPath []topo.NodeID) packet.UpdateType {
	for _, s := range seg.Segments {
		if !s.Forward {
			return packet.UpdateDual
		}
	}
	if NodesNeedingUpdate(oldPath, newPath) <= slThreshold {
		return packet.UpdateSingle
	}
	return packet.UpdateDual
}

// Plan is a fully prepared update: one UIM per new-path node.
type Plan struct {
	Flow    packet.FlowID
	Version uint32
	Type    packet.UpdateType
	OldPath []topo.NodeID
	NewPath []topo.NodeID
	Seg     Segmentation
	// UIMs holds the per-node indications in new-path order.
	UIMs []*packet.UIM
	// Targets holds the node each UIM is destined for, aligned with UIMs.
	Targets []topo.NodeID
}

// PreparePlan performs the control-plane preparation of one flow update:
// distance labeling, segmentation, update-type selection (unless forced),
// and UIM generation. This is the computation the paper's Fig. 8 times.
func PreparePlan(t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version uint32, sizeK uint32, force *packet.UpdateType) (*Plan, error) {

	// Cheap simple-path validation: paths are short, so a quadratic scan
	// beats building a set; adjacency is verified through the port
	// lookups below.
	for i, n := range newPath {
		if n < 0 || int(n) >= t.NumNodes() {
			return nil, fmt.Errorf("controlplane: new path: unknown node %d", n)
		}
		for j := 0; j < i; j++ {
			if newPath[j] == n {
				return nil, fmt.Errorf("controlplane: new path: node %d repeats", n)
			}
		}
	}
	seg, err := SegmentPaths(oldPath, newPath)
	if err != nil {
		return nil, err
	}
	ut := ChooseUpdateType(seg, oldPath, newPath)
	if force != nil {
		ut = *force
	}
	p := &Plan{
		Flow: flow, Version: version, Type: ut,
		OldPath: oldPath, NewPath: newPath, Seg: seg,
	}
	k := len(newPath) - 1
	uims := make([]packet.UIM, len(newPath)) // one contiguous allocation
	p.UIMs = make([]*packet.UIM, len(newPath))
	p.Targets = newPath
	gi := 0 // next gateway to match (gateways come in new-path order)
	for i, n := range newPath {
		uim := &uims[i]
		uim.Flow = flow
		uim.Version = version
		uim.NewDistance = uint16(k - i)
		uim.EgressPort = packet.NoPort
		uim.ChildPort = packet.NoPort
		uim.FlowSizeK = sizeK
		uim.UpdateType = ut
		if i < k {
			port := t.PortTo(n, newPath[i+1])
			if port == topo.InvalidPort {
				return nil, fmt.Errorf("controlplane: new path: %d and %d not adjacent", n, newPath[i+1])
			}
			uim.EgressPort = uint16(port)
		}
		if i > 0 {
			uim.ChildPort = uint16(t.PortTo(n, newPath[i-1]))
		}
		if i == 0 {
			uim.Role |= packet.RoleIngress
		}
		if i == k {
			uim.Role |= packet.RoleEgress
		}
		if gi < len(seg.Gateways) && seg.Gateways[gi] == n {
			gi++
			uim.Role |= packet.RoleGateway
			uim.OldDistance = seg.OldDistance[n]
		}
		p.UIMs[i] = uim
	}
	return p, nil
}
