package controlplane

import (
	"testing"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// echoHandler applies any UIM immediately (a minimal protocol for
// exercising the controller's tracking machinery in isolation).
type echoHandler struct{}

func (echoHandler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	port := dataplane.PortLocal
	if m.EgressPort != packet.NoPort {
		port = topo.PortID(int32(m.EgressPort))
	}
	sw.Apply(true, func() {
		sw.CommitState(m.Flow, dataplane.Commit{
			Port: port, Version: m.Version, Distance: m.NewDistance,
			OldVersion: st.NewVersion, OldDistance: st.NewDistance,
			SizeK: m.FlowSizeK,
		})
	})
}

func (echoHandler) HandleUNM(*dataplane.Switch, *packet.UNM, topo.PortID) {}

func bed(t *testing.T) (*sim.Engine, *dataplane.Network, *Controller) {
	t.Helper()
	g := topo.Synthetic()
	eng := sim.New(1)
	eng.MaxEvents = 500_000
	net := dataplane.NewNetwork(eng, g)
	net.SetHandler(echoHandler{})
	node := UseCentroidControl(net)
	return eng, net, NewController(net, node)
}

func TestRegisterFlowValidation(t *testing.T) {
	_, _, ctl := bed(t)
	if _, err := ctl.RegisterFlow(0, 7, []topo.NodeID{0, 4, 2, 7}, 100); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
	if _, err := ctl.RegisterFlow(0, 7, []topo.NodeID{1, 4, 2, 7}, 100); err == nil {
		t.Error("path not starting at src accepted")
	}
	if _, err := ctl.RegisterFlow(0, 7, []topo.NodeID{0, 7}, 100); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestUnknownFlowUpdateRejected(t *testing.T) {
	_, _, ctl := bed(t)
	if _, err := ctl.TriggerUpdate(12345, []topo.NodeID{0, 4, 2, 7}, nil); err == nil {
		t.Error("unknown flow accepted")
	}
}

func TestCompletionProbeAndCleanup(t *testing.T) {
	eng, net, ctl := bed(t)
	f, err := ctl.RegisterFlow(0, 7, []topo.NodeID{0, 4, 2, 7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var completed *UpdateStatus
	ctl.OnComplete = func(u *UpdateStatus) { completed = u }
	u, err := ctl.TriggerUpdate(f, []topo.NodeID{0, 1, 2, 3, 4, 5, 6, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if completed != u || !u.Done() {
		t.Fatal("completion callback not fired")
	}
	if u.AllApplied == 0 || u.Completed < u.AllApplied {
		t.Errorf("timestamps inconsistent: applied=%v completed=%v", u.AllApplied, u.Completed)
	}
	// §11 cleanup: no old-path-only nodes here (old ⊂ new), so nothing
	// to clean — verify by checking rules still exist everywhere.
	for _, n := range u.NewPath {
		if st, ok := net.Switch(n).PeekState(f); !ok || !st.HasRule {
			t.Errorf("node %d lost its rule", n)
		}
	}
	// Now move to a path abandoning v1, v3, v5, v6: they get cleaned.
	u2, err := ctl.TriggerUpdate(f, []topo.NodeID{0, 4, 2, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !u2.Done() {
		t.Fatal("second update incomplete")
	}
	for _, n := range []topo.NodeID{1, 3, 5, 6} {
		if st, ok := net.Switch(n).PeekState(f); ok && st.HasRule {
			t.Errorf("abandoned node %d kept its rule", n)
		}
	}
	rec, _ := ctl.Flow(f)
	if rec.Version != 3 || len(rec.Path) != 4 {
		t.Errorf("flow DB not updated: %+v", rec)
	}
}

func TestFRMTriggersOnNewFlow(t *testing.T) {
	eng, net, ctl := bed(t)
	var reported packet.FlowID
	ctl.OnNewFlow = func(f packet.FlowID) { reported = f }
	net.Switch(0).FRMEnabled = true
	net.Switch(0).InjectData(&packet.Data{Flow: 777, Seq: 1, TTL: 4})
	eng.Run()
	if reported != 777 {
		t.Errorf("OnNewFlow got %d, want 777", reported)
	}
}

func TestAlarmRecording(t *testing.T) {
	eng, net, ctl := bed(t)
	f, _ := ctl.RegisterFlow(0, 7, []topo.NodeID{0, 4, 2, 7}, 100)
	u, _ := ctl.TriggerUpdate(f, []topo.NodeID{0, 1, 2, 7}, nil)
	var alarms int
	ctl.OnAlarm = func(packet.UFM) { alarms++ }
	// A switch raises an alarm for this update's version.
	net.Switch(2).Alarm(f, u.Version, packet.ReasonDistance)
	eng.Run()
	if alarms != 1 || len(u.Alarms) != 1 {
		t.Errorf("alarms: hook=%d recorded=%d, want 1/1", alarms, len(u.Alarms))
	}
	if u.Alarms[0].Reason != packet.ReasonDistance {
		t.Errorf("alarm reason = %v", u.Alarms[0].Reason)
	}
}

func TestControlLatencyModels(t *testing.T) {
	g := topo.Synthetic()
	eng := sim.New(1)
	net := dataplane.NewNetwork(eng, g)
	node := UseCentroidControl(net)
	if net.ControlLatency(node) != 0 {
		t.Error("controller-co-located switch should have zero latency")
	}
	UseSampledControl(net, func() time.Duration { return 7 * time.Millisecond })
	for _, n := range g.Nodes() {
		if net.ControlLatency(n) != 7*time.Millisecond {
			t.Fatalf("sampled latency wrong for node %d", n)
		}
	}
}

func TestUpdatesListing(t *testing.T) {
	eng, _, ctl := bed(t)
	f, _ := ctl.RegisterFlow(0, 7, []topo.NodeID{0, 4, 2, 7}, 100)
	ctl.TriggerUpdate(f, []topo.NodeID{0, 1, 2, 7}, nil)
	eng.Run()
	if got := len(ctl.Updates()); got != 1 {
		t.Errorf("Updates() = %d entries, want 1", got)
	}
	if _, ok := ctl.Status(f, 2); !ok {
		t.Error("Status lookup failed")
	}
	if _, ok := ctl.Status(f, 9); ok {
		t.Error("phantom status")
	}
}
