package controlplane

import (
	"encoding/binary"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Planner is the unified planning seam shared by every update system: a
// memoizer for pure plan-preparation functions. Plan preparation —
// P4Update segment decomposition, ez-Segway message plans and
// dependency graphs, LocalVerify instruction waves, OptOracle round
// schedules — is a pure function of (topology, flow, paths, version,
// ...), so a cache keyed on those arguments returns byte-identical
// plans. Each system owns a small XxxCached wrapper that builds its key
// (a KeyBuf with a distinguishing prefix byte) and type-asserts the
// memoized value; internal/plancache provides the shared
// implementation.
type Planner interface {
	// Memo returns the value stored under key for topology t, computing
	// it with compute on a miss. Implementations bound to a different
	// topology must fall through to a direct compute, so a mis-wired
	// cache can never return plans for the wrong graph. Memoized values
	// are shared across trials and must be treated as immutable.
	Memo(t *topo.Topology, key string, compute func() (any, error)) (any, error)
}

// KeyBuf builds collision-free binary memo keys. Every encoder writes a
// self-delimiting encoding (fixed width, or length-prefixed for paths),
// so distinct argument tuples can never serialize to the same key.
type KeyBuf struct{ b []byte }

// U8 appends one byte (also used as the per-system key prefix).
func (k *KeyBuf) U8(v uint8) { k.b = append(k.b, v) }

// U32 appends a big-endian uint32.
func (k *KeyBuf) U32(v uint32) { k.b = binary.BigEndian.AppendUint32(k.b, v) }

// Path appends a length-prefixed node sequence.
func (k *KeyBuf) Path(p []topo.NodeID) {
	k.U32(uint32(len(p)))
	for _, n := range p {
		k.U32(uint32(n))
	}
}

// String returns the accumulated key.
func (k *KeyBuf) String() string { return string(k.b) }

// PreparePlanCached memoizes PreparePlan through p under a 'p'-prefixed
// key; a nil planner computes directly. The returned plan is shared
// across trials and must be treated as immutable — which it is: the
// controller only serializes UIMs, never mutates them.
func PreparePlanCached(p Planner, t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version, sizeK uint32, force *packet.UpdateType) (*Plan, error) {

	if p == nil {
		return PreparePlan(t, flow, oldPath, newPath, version, sizeK, force)
	}
	var k KeyBuf
	k.U8('p')
	k.U32(uint32(flow))
	k.U32(version)
	k.U32(sizeK)
	if force == nil {
		k.U8(0xff)
	} else {
		k.U8(uint8(*force))
	}
	k.Path(oldPath)
	k.Path(newPath)
	v, err := p.Memo(t, k.String(), func() (any, error) {
		return PreparePlan(t, flow, oldPath, newPath, version, sizeK, force)
	})
	plan, _ := v.(*Plan)
	return plan, err
}
