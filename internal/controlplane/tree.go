package controlplane

import (
	"fmt"
	"sort"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Destination-based routing (§11): instead of per-path flows, a flow is
// "all traffic to destination d", routed along a spanning tree rooted at
// d. The same single-layer verification applies — a node may only adopt a
// new parent whose distance to the root is exactly one smaller — and the
// update notification fans out from the root through the tree's clone
// groups (one indication per child programs the multicast session).

// Tree is a destination-rooted spanning tree given as child->parent
// edges; the root (destination) has no entry.
type Tree map[topo.NodeID]topo.NodeID

// TreeDepths returns each node's hop distance to the root, or an error
// if the parent relation is not a tree rooted at root (cycle, missing
// chain, or unknown node).
func TreeDepths(t *topo.Topology, root topo.NodeID, tree Tree) (map[topo.NodeID]uint16, error) {
	depth := map[topo.NodeID]uint16{root: 0}
	var resolve func(n topo.NodeID, hops int) (uint16, error)
	resolve = func(n topo.NodeID, hops int) (uint16, error) {
		if d, ok := depth[n]; ok {
			return d, nil
		}
		if hops > t.NumNodes() {
			return 0, fmt.Errorf("controlplane: tree contains a cycle at node %d", n)
		}
		parent, ok := tree[n]
		if !ok {
			return 0, fmt.Errorf("controlplane: node %d has no parent and is not the root", n)
		}
		if t.PortTo(n, parent) == topo.InvalidPort {
			return 0, fmt.Errorf("controlplane: tree edge %d->%d not adjacent", n, parent)
		}
		pd, err := resolve(parent, hops+1)
		if err != nil {
			return 0, err
		}
		depth[n] = pd + 1
		return pd + 1, nil
	}
	for n := range tree {
		if _, err := resolve(n, 0); err != nil {
			return nil, err
		}
	}
	return depth, nil
}

// ShortestPathTree builds the hop-count shortest-path tree toward root.
func ShortestPathTree(t *topo.Topology, root topo.NodeID) Tree {
	tree := make(Tree, t.NumNodes()-1)
	for _, n := range t.Nodes() {
		if n == root {
			continue
		}
		p := t.ShortestPath(n, root, topo.ByHops)
		if len(p) >= 2 {
			tree[n] = p[1]
		}
	}
	return tree
}

// TreePlan is a prepared destination-tree update: one UIM per (node,
// child) pair — each indication programs one clone-session port; the
// verification labels are identical on all of a node's indications.
type TreePlan struct {
	Flow    packet.FlowID
	Root    topo.NodeID
	Version uint32
	Tree    Tree
	Nodes   []topo.NodeID // every node of the tree, root first
	Targets []topo.NodeID
	UIMs    []*packet.UIM
}

// PrepareTreePlan labels a destination tree for a single-layer update.
func PrepareTreePlan(t *topo.Topology, flow packet.FlowID, root topo.NodeID,
	tree Tree, version uint32, sizeK uint32) (*TreePlan, error) {

	depth, err := TreeDepths(t, root, tree)
	if err != nil {
		return nil, err
	}
	children := make(map[topo.NodeID][]topo.NodeID)
	for child, parent := range tree {
		children[parent] = append(children[parent], child)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	p := &TreePlan{Flow: flow, Root: root, Version: version, Tree: tree}
	nodes := make([]topo.NodeID, 0, len(depth))
	for n := range depth {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if depth[nodes[i]] != depth[nodes[j]] {
			return depth[nodes[i]] < depth[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	p.Nodes = nodes

	for _, n := range nodes {
		base := packet.UIM{
			Flow:        flow,
			Version:     version,
			NewDistance: depth[n],
			EgressPort:  packet.NoPort,
			ChildPort:   packet.NoPort,
			FlowSizeK:   sizeK,
			UpdateType:  packet.UpdateSingle,
		}
		if n == root {
			base.Role |= packet.RoleEgress
		} else {
			base.EgressPort = uint16(t.PortTo(n, tree[n]))
		}
		if len(children[n]) == 0 && n != root {
			base.Role |= packet.RoleIngress // a leaf reports completion
		}
		if len(children[n]) == 0 {
			uim := base
			p.UIMs = append(p.UIMs, &uim)
			p.Targets = append(p.Targets, n)
			continue
		}
		// One indication per child: each programs one clone-group port.
		for _, c := range children[n] {
			uim := base
			uim.ChildPort = uint16(t.PortTo(n, c))
			p.UIMs = append(p.UIMs, &uim)
			p.Targets = append(p.Targets, n)
		}
	}
	return p, nil
}

// TreeRecord tracks a destination-routed "flow" in the Flow DB.
type TreeRecord struct {
	ID      packet.FlowID
	Root    topo.NodeID
	Tree    Tree
	Version uint32
	SizeK   uint32
}

// trees is lazily allocated on first RegisterTree.
func (c *Controller) treeDB() map[packet.FlowID]*TreeRecord {
	if c.trees == nil {
		c.trees = make(map[packet.FlowID]*TreeRecord)
	}
	return c.trees
}

// RegisterTree installs destination-based routing toward root along the
// given tree (version 1) and records it in the Flow DB.
func (c *Controller) RegisterTree(root topo.NodeID, tree Tree, sizeK uint32) (packet.FlowID, error) {
	depth, err := TreeDepths(c.Topo, root, tree)
	if err != nil {
		return 0, err
	}
	f := packet.HashFlow(0xffff, uint16(root)) // destination-keyed flow ID
	c.treeDB()[f] = &TreeRecord{ID: f, Root: root, Tree: tree, Version: 1, SizeK: sizeK}
	for n, d := range depth {
		sw := c.Net.Switch(n)
		if n == root {
			sw.InstallInitialRule(f, -2 /* dataplane.PortLocal */, 1, 0, sizeK)
			continue
		}
		sw.InstallInitialRule(f, c.Topo.PortTo(n, tree[n]), 1, d, sizeK)
	}
	return f, nil
}

// TreeOf returns the tree record for f.
func (c *Controller) TreeOf(f packet.FlowID) (*TreeRecord, bool) {
	r, ok := c.treeDB()[f]
	return r, ok
}

// TriggerTreeUpdate migrates destination routing for f onto newTree using
// a verified single-layer update: notifications fan out from the root,
// every node checks its new parent is one hop closer, and the update
// completes when the whole tree runs the new version (confirmed by a
// probe from a deepest leaf).
func (c *Controller) TriggerTreeUpdate(f packet.FlowID, newTree Tree) (*UpdateStatus, error) {
	rec, ok := c.treeDB()[f]
	if !ok {
		return nil, fmt.Errorf("controlplane: unknown destination flow %d", f)
	}
	version := rec.Version + 1
	plan, err := PrepareTreePlan(c.Topo, f, rec.Root, newTree, version, rec.SizeK)
	if err != nil {
		return nil, err
	}
	depth, _ := TreeDepths(c.Topo, rec.Root, newTree)
	// The completion probe starts at a deepest leaf (the longest branch).
	deepest := rec.Root
	for n, d := range depth {
		if d > depth[deepest] || (d == depth[deepest] && n < deepest) {
			deepest = n
		}
	}
	probePath := []topo.NodeID{deepest}
	for n := deepest; n != rec.Root; n = newTree[n] {
		probePath = append(probePath, newTree[n])
	}
	msgs := make([]packet.Message, len(plan.UIMs))
	for i, m := range plan.UIMs {
		msgs[i] = m
	}
	u := c.PushMessages(f, version, nil, probePath, plan.Nodes, plan.Targets, msgs, nil)
	rec.Tree = newTree
	rec.Version = version
	return u, nil
}
