package controlplane

import (
	"testing"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

func TestSegmentPathsFig1(t *testing.T) {
	oldP, newP := topo.SyntheticPaths()
	seg, err := SegmentPaths(oldP, newP)
	if err != nil {
		t.Fatal(err)
	}
	wantGW := []topo.NodeID{0, 2, 4, 7}
	if len(seg.Gateways) != len(wantGW) {
		t.Fatalf("gateways = %v", seg.Gateways)
	}
	for i := range wantGW {
		if seg.Gateways[i] != wantGW[i] {
			t.Fatalf("gateways = %v, want %v", seg.Gateways, wantGW)
		}
	}
	// Old distances are the "segment IDs" of §3.2: v7=0, v2=1, v4=2, v0=3.
	for n, want := range map[topo.NodeID]uint16{7: 0, 2: 1, 4: 2, 0: 3} {
		if seg.OldDistance[n] != want {
			t.Errorf("OldDistance[%d] = %d, want %d", n, seg.OldDistance[n], want)
		}
	}
	if len(seg.Segments) != 3 {
		t.Fatalf("segments = %+v", seg.Segments)
	}
	// {v0,v1,v2} forward, {v2,v3,v4} backward, {v4..v7} forward.
	if !seg.Segments[0].Forward || seg.Segments[1].Forward || !seg.Segments[2].Forward {
		t.Errorf("classification: %+v", seg.Segments)
	}
	if seg.Segments[1].IngressGW != 2 || seg.Segments[1].EgressGW != 4 {
		t.Errorf("backward segment gateways: %+v", seg.Segments[1])
	}
}

func TestSegmentPathsErrors(t *testing.T) {
	if _, err := SegmentPaths([]topo.NodeID{0, 1}, []topo.NodeID{0, 2}); err == nil {
		t.Error("mismatched egress accepted")
	}
	if _, err := SegmentPaths([]topo.NodeID{1, 2}, []topo.NodeID{0, 2}); err == nil {
		t.Error("mismatched ingress accepted")
	}
	if _, err := SegmentPaths(nil, []topo.NodeID{0, 1}); err == nil {
		t.Error("empty old path accepted")
	}
}

func TestSegmentPathsIdenticalPaths(t *testing.T) {
	p := []topo.NodeID{0, 1, 2}
	seg, err := SegmentPaths(p, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every node is a gateway; every segment is forward and unchanged.
	if len(seg.Gateways) != 3 {
		t.Errorf("gateways = %v", seg.Gateways)
	}
	for _, s := range seg.Segments {
		if !s.Forward {
			t.Errorf("identical paths produced backward segment %+v", s)
		}
	}
}

func TestNodesNeedingUpdate(t *testing.T) {
	oldP, newP := topo.SyntheticPaths()
	// v0,v1,...,v6 change (v7 keeps local delivery): 7 nodes.
	if got := NodesNeedingUpdate(oldP, newP); got != 7 {
		t.Errorf("changed = %d, want 7", got)
	}
	// Identical paths: nothing changes.
	if got := NodesNeedingUpdate(oldP, oldP); got != 0 {
		t.Errorf("identical paths changed = %d, want 0", got)
	}
	// Small detour: v4 flips plus fresh v5, v6.
	if got := NodesNeedingUpdate(oldP, []topo.NodeID{0, 4, 5, 6, 7}); got != 3 {
		t.Errorf("detour changed = %d, want 3", got)
	}
}

func TestChooseUpdateType(t *testing.T) {
	oldP, newP := topo.SyntheticPaths()
	seg, _ := SegmentPaths(oldP, newP)
	if got := ChooseUpdateType(seg, oldP, newP); got != packet.UpdateDual {
		t.Errorf("backward segment should force DL, got %v", got)
	}
	detour := []topo.NodeID{0, 4, 5, 6, 7}
	seg2, _ := SegmentPaths(oldP, detour)
	if got := ChooseUpdateType(seg2, oldP, detour); got != packet.UpdateSingle {
		t.Errorf("small forward detour should pick SL, got %v", got)
	}
}

func TestPreparePlanLabels(t *testing.T) {
	g := topo.Synthetic()
	oldP, newP := topo.SyntheticPaths()
	plan, err := PreparePlan(g, 42, oldP, newP, 2, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Type != packet.UpdateDual {
		t.Errorf("plan type = %v, want DL", plan.Type)
	}
	if len(plan.UIMs) != len(newP) {
		t.Fatalf("UIMs = %d, want %d", len(plan.UIMs), len(newP))
	}
	k := len(newP) - 1
	for i, uim := range plan.UIMs {
		n := plan.Targets[i]
		if uim.Flow != 42 || uim.Version != 2 {
			t.Fatalf("node %d: bad identity %+v", n, uim)
		}
		if uim.NewDistance != uint16(k-i) {
			t.Errorf("node %d: distance %d, want %d", n, uim.NewDistance, k-i)
		}
		// Egress port points at the next node; child port at the previous.
		if i < k {
			nxt, _ := g.NeighborAt(n, topo.PortID(int32(uim.EgressPort)))
			if nxt != newP[i+1] {
				t.Errorf("node %d egress port leads to %d, want %d", n, nxt, newP[i+1])
			}
		} else if uim.EgressPort != packet.NoPort {
			t.Error("egress node must deliver locally")
		}
		if i > 0 {
			child, _ := g.NeighborAt(n, topo.PortID(int32(uim.ChildPort)))
			if child != newP[i-1] {
				t.Errorf("node %d child port leads to %d, want %d", n, child, newP[i-1])
			}
		} else if uim.ChildPort != packet.NoPort {
			t.Error("ingress node has no child")
		}
	}
	// Role flags.
	if !plan.UIMs[0].Role.Has(packet.RoleIngress) || !plan.UIMs[k].Role.Has(packet.RoleEgress) {
		t.Error("ingress/egress roles missing")
	}
	gwWantOld := map[topo.NodeID]uint16{0: 3, 2: 1, 4: 2, 7: 0}
	for i, uim := range plan.UIMs {
		n := plan.Targets[i]
		if want, isGW := gwWantOld[n]; isGW {
			if !uim.Role.Has(packet.RoleGateway) || uim.OldDistance != want {
				t.Errorf("gateway %d: role=%v oldDist=%d want %d", n, uim.Role, uim.OldDistance, want)
			}
		} else if uim.Role.Has(packet.RoleGateway) {
			t.Errorf("node %d wrongly marked gateway", n)
		}
	}
}

func TestPreparePlanRejectsBadPaths(t *testing.T) {
	g := topo.Synthetic()
	oldP, _ := topo.SyntheticPaths()
	if _, err := PreparePlan(g, 1, oldP, []topo.NodeID{0, 1, 0, 7}, 2, 1000, nil); err == nil {
		t.Error("repeated node accepted")
	}
	if _, err := PreparePlan(g, 1, oldP, []topo.NodeID{0, 7}, 2, 1000, nil); err == nil {
		t.Error("non-adjacent hop accepted")
	}
	if _, err := PreparePlan(g, 1, oldP, []topo.NodeID{0, 99}, 2, 1000, nil); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestPreparePlanForcedType(t *testing.T) {
	g := topo.Synthetic()
	oldP, newP := topo.SyntheticPaths()
	sl := packet.UpdateSingle
	plan, err := PreparePlan(g, 1, oldP, newP, 2, 1000, &sl)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Type != packet.UpdateSingle {
		t.Errorf("forced type ignored: %v", plan.Type)
	}
}
