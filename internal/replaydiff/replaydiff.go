// Package replaydiff compares a recorded real-transport run against
// the simulator's golden trace for the same scenario. The simulator is
// the oracle: both runs execute identical verification logic, so after
// canonicalization — strip wall-clock, keep only decision events, and
// order them per (node, flow) — the two decision logs must agree
// verdict for verdict. Any divergence means the deployment path
// changed a protocol decision, not just its timing.
package replaydiff

import (
	"fmt"
	"sort"
	"strings"

	"p4update/internal/trace"
)

// Key addresses one decision sequence: the verdicts one node emitted
// for one flow. Per-key order is causal (a node's decisions about a
// flow are serialized by the protocol); the interleaving *across* keys
// at one node is scheduler timing, which canonicalization erases.
type Key struct {
	Node int32
	Flow uint32
}

// Decision is one canonicalized verdict.
type Decision struct {
	Code trace.Code
	Ver  uint32
}

// Log is a canonicalized decision log.
type Log struct {
	seqs map[Key][]Decision
}

// transient reports whether a verdict code depends on message arrival
// order rather than protocol outcome. A notification arriving before
// its indication parks as wait-uim in one run and never exists in
// another; retransmitted frames add duplicate verdicts the loss-free
// run lacks. Excluding them leaves exactly the decisions that commit,
// reject, or alarm — the ones the paper's correctness argument is
// about.
func transient(c trace.Code) bool {
	switch c {
	case trace.CodeWaitUIM, trace.CodeWaitDependency, trace.CodeDuplicate,
		trace.CodeCapacityBlock, trace.CodePriorityYield, trace.CodePriorityPromote:
		return true
	}
	return false
}

// Canonicalize reduces a raw event stream to its decision log: verdict
// events only, transient codes dropped, grouped per (node, flow) in
// stream order, timestamps discarded.
func Canonicalize(events []trace.Event) *Log {
	l := &Log{seqs: make(map[Key][]Decision)}
	for _, ev := range events {
		if ev.Kind != trace.KindVerdict || transient(trace.Code(ev.Class)) {
			continue
		}
		k := Key{Node: ev.Node, Flow: ev.Flow}
		l.seqs[k] = append(l.seqs[k], Decision{Code: trace.Code(ev.Class), Ver: ev.Ver})
	}
	return l
}

// OwnedBy filters events to those recorded at node — a process's own
// half of a multi-process conversation. Deployment processes replicate
// remote parties as silent stubs; filtering before Merge guarantees a
// decision is attributed to exactly one process.
func OwnedBy(events []trace.Event, node int32) []trace.Event {
	var out []trace.Event
	for _, ev := range events {
		if ev.Node == node {
			out = append(out, ev)
		}
	}
	return out
}

// Merge combines per-process logs into one fabric-wide log. Keys
// appearing in several logs concatenate in argument order (callers
// filter with OwnedBy first, making that case a bug they'll see as a
// diff).
func Merge(logs ...*Log) *Log {
	m := &Log{seqs: make(map[Key][]Decision)}
	for _, l := range logs {
		for k, seq := range l.seqs {
			m.seqs[k] = append(m.seqs[k], seq...)
		}
	}
	return m
}

// Keys returns the log's keys ordered by (node, flow).
func (l *Log) Keys() []Key {
	keys := make([]Key, 0, len(l.seqs))
	for k := range l.seqs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Flow < keys[j].Flow
	})
	return keys
}

// Decisions returns the decision sequence for k (nil if absent).
func (l *Log) Decisions(k Key) []Decision { return l.seqs[k] }

// Len reports the total decision count.
func (l *Log) Len() int {
	n := 0
	for _, s := range l.seqs {
		n += len(s)
	}
	return n
}

// Divergence is one point where the recorded log departs from the
// golden log.
type Divergence struct {
	Key   Key
	Index int // position in the key's decision sequence
	Got   string
	Want  string
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	return fmt.Sprintf("node %d flow %d decision %d: got %s, want %s",
		d.Key.Node, d.Key.Flow, d.Index, d.Got, d.Want)
}

func describe(s []Decision, i int) string {
	if i >= len(s) {
		return "(missing)"
	}
	return fmt.Sprintf("%s@v%d", s[i].Code, s[i].Ver)
}

// Diff compares a recorded log against the golden log and returns every
// divergence, ordered by key then index. An empty result certifies the
// runs are decision-equivalent.
func Diff(got, want *Log) []Divergence {
	keyset := make(map[Key]bool)
	for k := range got.seqs {
		keyset[k] = true
	}
	for k := range want.seqs {
		keyset[k] = true
	}
	keys := make([]Key, 0, len(keyset))
	for k := range keyset {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Flow < keys[j].Flow
	})
	var out []Divergence
	for _, k := range keys {
		g, w := got.seqs[k], want.seqs[k]
		n := len(g)
		if len(w) > n {
			n = len(w)
		}
		for i := 0; i < n; i++ {
			gs, ws := describe(g, i), describe(w, i)
			if gs != ws {
				out = append(out, Divergence{Key: k, Index: i, Got: gs, Want: ws})
			}
		}
	}
	return out
}

// Report renders divergences for logs/test output; empty input yields
// "decision logs identical".
func Report(divs []Divergence) string {
	if len(divs) == 0 {
		return "decision logs identical"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d divergence(s):\n", len(divs))
	for _, d := range divs {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return strings.TrimRight(b.String(), "\n")
}
