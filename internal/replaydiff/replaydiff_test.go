package replaydiff

import (
	"testing"

	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/wiring"
)

// fig2Events runs the canonical Fig-2 single-layer update in the
// simulator and returns the recorded events — the golden source the
// deployment harness also diffs against.
func fig2Events(t *testing.T) []trace.Event {
	t.Helper()
	g, _, _, _ := topo.Fig2Scenario()
	s := wiring.New(g, wiring.Config{Seed: 1, System: "p4update", Trace: &trace.Options{}})
	f, err := s.Ctl.RegisterFlow(0, 4, []topo.NodeID{0, 1, 2, 3, 4}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	forceSL := packet.UpdateSingle
	if _, err := s.Ctl.TriggerUpdate(f, []topo.NodeID{0, 1, 2, 4}, &forceSL); err != nil {
		t.Fatal(err)
	}
	s.Eng.Run()
	evs := s.Trace.Events()
	if len(evs) == 0 {
		t.Fatal("trial recorded no events")
	}
	return evs
}

// TestDiffIdentical asserts a run diffed against itself is clean.
func TestDiffIdentical(t *testing.T) {
	evs := fig2Events(t)
	want := Canonicalize(evs)
	if want.Len() == 0 {
		t.Fatal("golden log has no decisions")
	}
	if divs := Diff(Canonicalize(evs), want); len(divs) != 0 {
		t.Fatalf("self-diff not clean:\n%s", Report(divs))
	}
}

// TestDiffDetectsCorruptedVerdict corrupts exactly one verdict code in
// the recorded trace and asserts the diff reports exactly that
// divergence and nothing else.
func TestDiffDetectsCorruptedVerdict(t *testing.T) {
	evs := fig2Events(t)
	want := Canonicalize(evs)

	corrupted := append([]trace.Event(nil), evs...)
	idx := -1
	for i, ev := range corrupted {
		if ev.Kind == trace.KindVerdict && !transient(trace.Code(ev.Class)) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no canonical verdict in trace")
	}
	orig := trace.Code(corrupted[idx].Class)
	swapped := trace.CodeRejectOutdated
	if orig == swapped {
		swapped = trace.CodeApplySL
	}
	corrupted[idx].Class = uint8(swapped)

	divs := Diff(Canonicalize(corrupted), want)
	if len(divs) != 1 {
		t.Fatalf("got %d divergences, want exactly 1:\n%s", len(divs), Report(divs))
	}
	d := divs[0]
	if d.Key.Node != corrupted[idx].Node || d.Key.Flow != corrupted[idx].Flow {
		t.Errorf("divergence at %+v, want node %d flow %d", d.Key, corrupted[idx].Node, corrupted[idx].Flow)
	}
	if d.Index != 0 {
		t.Errorf("divergence index = %d, want 0 (first decision of that key)", d.Index)
	}
}

// TestNoFalsePositiveOnReorderedSameInstant permutes same-instant
// events of *different* flows at one node — exactly the nondeterminism
// a real transport introduces — and asserts the diff stays clean,
// while reordering decisions *within* one flow is still caught.
func TestNoFalsePositiveOnReorderedSameInstant(t *testing.T) {
	mk := func(node int32, flow uint32, code trace.Code, ver uint32) trace.Event {
		return trace.Event{Node: node, Kind: trace.KindVerdict,
			Class: uint8(code), Flow: flow, Ver: ver}
	}
	// Node 2 decides about flows 7 and 9 in the same virtual instant.
	a := []trace.Event{
		mk(2, 7, trace.CodeApplySL, 2),
		mk(2, 9, trace.CodeApplyEgress, 3),
		mk(2, 7, trace.CodeApplyEgress, 3),
	}
	b := []trace.Event{ // cross-flow interleaving swapped
		mk(2, 9, trace.CodeApplyEgress, 3),
		mk(2, 7, trace.CodeApplySL, 2),
		mk(2, 7, trace.CodeApplyEgress, 3),
	}
	if divs := Diff(Canonicalize(b), Canonicalize(a)); len(divs) != 0 {
		t.Fatalf("cross-flow reorder flagged:\n%s", Report(divs))
	}
	// Same-flow reorder is a real divergence, not timing noise.
	c := []trace.Event{
		mk(2, 9, trace.CodeApplyEgress, 3),
		mk(2, 7, trace.CodeApplyEgress, 3),
		mk(2, 7, trace.CodeApplySL, 2),
	}
	if divs := Diff(Canonicalize(c), Canonicalize(a)); len(divs) == 0 {
		t.Fatal("same-flow reorder not flagged")
	}
}

// TestTransientVerdictsIgnored asserts arrival-order-dependent codes
// (wait-uim, duplicate) never reach the canonical log: a run that
// parked a notification and a run that didn't are decision-equivalent.
func TestTransientVerdictsIgnored(t *testing.T) {
	evs := fig2Events(t)
	want := Canonicalize(evs)
	noisy := append([]trace.Event(nil), evs...)
	noisy = append(noisy, trace.Event{Node: 2, Kind: trace.KindVerdict,
		Class: uint8(trace.CodeWaitUIM), Flow: 1, Ver: 2})
	noisy = append(noisy, trace.Event{Node: 2, Kind: trace.KindVerdict,
		Class: uint8(trace.CodeDuplicate), Flow: 1, Ver: 2})
	if divs := Diff(Canonicalize(noisy), want); len(divs) != 0 {
		t.Fatalf("transient verdicts flagged:\n%s", Report(divs))
	}
}

// TestMergeOwnedBy splits a trace per node (as per-process recordings
// would be), merges the parts, and asserts the merged log equals the
// single-process canonicalization.
func TestMergeOwnedBy(t *testing.T) {
	evs := fig2Events(t)
	want := Canonicalize(evs)
	nodes := map[int32]bool{}
	for _, ev := range evs {
		nodes[ev.Node] = true
	}
	parts := make([]*Log, 0, len(nodes))
	for n := range nodes {
		parts = append(parts, Canonicalize(OwnedBy(evs, n)))
	}
	merged := Merge(parts...)
	if divs := Diff(merged, want); len(divs) != 0 {
		t.Fatalf("merged per-node logs diverge:\n%s", Report(divs))
	}
	if merged.Len() != want.Len() {
		t.Fatalf("merged %d decisions, want %d", merged.Len(), want.Len())
	}
}
