// Package transport moves the simulator's byte-level wire messages
// between real processes. An Endpoint wraps a datagram lower half
// (UDP in production, an in-memory loopback fabric in tests) with the
// minimal reliability the control conversation needs: per-peer
// sequence numbers, cumulative acks, bounded retransmit, duplicate
// suppression and in-order delivery. Epochs distinguish process
// incarnations so a restarted peer's state is never confused with its
// predecessor's.
//
// The envelope is packet.Frame — itself a packet.Message — so framed
// traffic stays inside the repo's single wire-format vocabulary and
// fuzz corpus.
package transport

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"p4update/internal/packet"
)

// ControllerPeer is the conventional peer ID of the controller process
// (matching dataplane.NodeController's -1).
const ControllerPeer int32 = -1

// Datagram is the unreliable lower half an Endpoint writes to.
// Implementations: *UDP (real sockets) and the loopback Fabric's ports.
type Datagram interface {
	WriteTo(peer int32, b []byte) error
}

// Handler receives in-order, de-duplicated frames. It is invoked
// without the endpoint's lock held, so it may call Send re-entrantly.
type Handler func(peer int32, f *packet.Frame)

// Stats counts an endpoint's reliability events.
type Stats struct {
	Sent        uint64 // sequenced frames first-sent
	Delivered   uint64 // frames handed to the handler
	Duplicates  uint64 // sequenced frames suppressed as already-seen
	Retransmits uint64 // RTO-triggered resends
	GaveUp      uint64 // frames abandoned after MaxTries
	Reordered   uint64 // frames buffered ahead of a gap
	DecodeErr   uint64 // datagrams that failed Frame decode
	Oversized   uint64 // sends rejected for exceeding MaxFramePayload
}

// Config parameterizes an Endpoint.
type Config struct {
	// Self is this process's node ID (ControllerPeer for controllerd).
	Self int32
	// Epoch is this process incarnation, strictly greater than any
	// earlier incarnation's (persisted and bumped across restarts).
	Epoch uint32
	// RTO is the retransmit timeout. Default 100ms.
	RTO time.Duration
	// MaxTries bounds retransmissions per frame; after MaxTries sends
	// the frame is abandoned (the snapshot/re-sync path repairs the
	// gap). Default 20.
	MaxTries int
	// Window bounds the per-peer out-of-order buffer. Default 256.
	Window int
	// Lower is the datagram lower half.
	Lower Datagram
	// Handler receives delivered frames.
	Handler Handler
}

// Endpoint is one process's reliable framing layer over Lower.
type Endpoint struct {
	cfg Config

	mu    sync.Mutex
	peers map[int32]*peerState
	stats Stats
}

type txFrame struct {
	raw      []byte
	lastSent time.Duration
	tries    int
}

type peerState struct {
	// Transmit side.
	nextSeq uint64
	unacked map[uint64]*txFrame
	// Receive side.
	epochKnown bool
	rxEpoch    uint32
	rxNext     uint64 // next in-order sequence expected
	pending    map[uint64]*packet.Frame
}

// NewEndpoint builds an endpoint; Config zero-values get defaults.
func NewEndpoint(cfg Config) *Endpoint {
	if cfg.RTO <= 0 {
		cfg.RTO = 100 * time.Millisecond
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = 20
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	return &Endpoint{cfg: cfg, peers: make(map[int32]*peerState)}
}

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// InFlight reports the number of sequenced frames awaiting ack.
func (e *Endpoint) InFlight() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, p := range e.peers {
		n += len(p.unacked)
	}
	return n
}

func (e *Endpoint) peer(id int32) *peerState {
	p := e.peers[id]
	if p == nil {
		p = &peerState{unacked: make(map[uint64]*txFrame), rxNext: 1,
			pending: make(map[uint64]*packet.Frame)}
		e.peers[id] = p
	}
	return p
}

// sequenced reports whether a verb gets a sequence number and
// retransmission. Acks must not be acked; hellos are periodic
// announcements whose loss the next hello repairs.
func sequenced(v packet.FrameVerb) bool {
	return v != packet.VerbAck && v != packet.VerbHello
}

// Send stamps f with this endpoint's identity/epoch (and, for
// sequenced verbs, the next per-peer sequence number), transmits it,
// and retains sequenced frames for retransmission until acked. now is
// the caller's monotonic clock, the same one later passed to Tick.
func (e *Endpoint) Send(peer int32, f *packet.Frame, now time.Duration) error {
	if len(f.Payload) > packet.MaxFramePayload {
		e.mu.Lock()
		e.stats.Oversized++
		e.mu.Unlock()
		return fmt.Errorf("transport: payload %d bytes exceeds the %d-byte frame limit",
			len(f.Payload), packet.MaxFramePayload)
	}
	f.Src = e.cfg.Self
	f.Epoch = e.cfg.Epoch
	e.mu.Lock()
	p := e.peer(peer)
	if sequenced(f.Verb) {
		p.nextSeq++
		f.Seq = p.nextSeq
	} else {
		f.Seq = 0
	}
	raw := packet.Marshal(f)
	if sequenced(f.Verb) {
		p.unacked[f.Seq] = &txFrame{raw: raw, lastSent: now, tries: 1}
		e.stats.Sent++
	}
	e.mu.Unlock()
	return e.cfg.Lower.WriteTo(peer, raw)
}

// Tick retransmits every unacked frame whose RTO has elapsed and
// abandons frames past MaxTries. Call it periodically (the UDP wrapper
// does; the loopback fabric's Advance does).
func (e *Endpoint) Tick(now time.Duration) {
	type resend struct {
		peer int32
		seq  uint64
		raw  []byte
	}
	var out []resend
	e.mu.Lock()
	for id, p := range e.peers {
		var dead []uint64
		for seq, tx := range p.unacked {
			if now-tx.lastSent < e.cfg.RTO {
				continue
			}
			if tx.tries >= e.cfg.MaxTries {
				dead = append(dead, seq)
				e.stats.GaveUp++
				continue
			}
			tx.tries++
			tx.lastSent = now
			e.stats.Retransmits++
			out = append(out, resend{peer: id, seq: seq, raw: tx.raw})
		}
		for _, seq := range dead {
			delete(p.unacked, seq)
		}
	}
	e.mu.Unlock()
	// Deterministic resend order for the loopback fabric: map iteration
	// above randomizes it, so order by (peer, seq) here.
	sort.Slice(out, func(i, j int) bool {
		if out[i].peer != out[j].peer {
			return out[i].peer < out[j].peer
		}
		return out[i].seq < out[j].seq
	})
	for _, r := range out {
		_ = e.cfg.Lower.WriteTo(r.peer, r.raw)
	}
}

// OnDatagram processes one received datagram: decodes the frame,
// reconciles epochs, acks/dedups/reorders sequenced traffic, and hands
// deliverable frames to the handler in sequence order. The handler and
// ack writes run without the endpoint lock held.
func (e *Endpoint) OnDatagram(b []byte, now time.Duration) {
	f := &packet.Frame{}
	if err := f.DecodeFromBytes(b); err != nil {
		e.mu.Lock()
		e.stats.DecodeErr++
		e.mu.Unlock()
		return
	}
	peer := f.Src
	var deliver []*packet.Frame
	var ackCum uint64
	sendAck := false

	e.mu.Lock()
	p := e.peer(peer)
	if !p.epochKnown || f.Epoch > p.rxEpoch {
		if p.epochKnown && f.Epoch > p.rxEpoch {
			// The peer restarted: its new incarnation numbers sequences
			// from 1 again, and our in-flight frames were addressed to
			// the dead process.
			p.rxNext = 1
			p.pending = make(map[uint64]*packet.Frame)
			p.unacked = make(map[uint64]*txFrame)
			p.nextSeq = 0
		}
		p.epochKnown = true
		p.rxEpoch = f.Epoch
	} else if f.Epoch < p.rxEpoch {
		// Stale incarnation; drop silently.
		e.mu.Unlock()
		return
	}

	switch {
	case f.Verb == packet.VerbAck:
		if cum, err := packet.ParseAck(f.Payload); err == nil {
			for seq := range p.unacked {
				if seq <= cum {
					delete(p.unacked, seq)
				}
			}
		}
	case !sequenced(f.Verb):
		deliver = append(deliver, f)
	default:
		switch {
		case f.Seq < p.rxNext:
			// Duplicate: the ack was lost; re-ack so the sender stops.
			e.stats.Duplicates++
			sendAck, ackCum = true, p.rxNext-1
		case f.Seq == p.rxNext:
			deliver = append(deliver, f)
			p.rxNext++
			for {
				nxt, ok := p.pending[p.rxNext]
				if !ok {
					break
				}
				delete(p.pending, p.rxNext)
				deliver = append(deliver, nxt)
				p.rxNext++
			}
			sendAck, ackCum = true, p.rxNext-1
		default: // gap: buffer ahead, re-ack the current cumulative
			if _, dup := p.pending[f.Seq]; !dup && len(p.pending) < e.cfg.Window {
				p.pending[f.Seq] = f
				e.stats.Reordered++
			} else if dup {
				e.stats.Duplicates++
			}
			sendAck, ackCum = true, p.rxNext-1
		}
	}
	e.stats.Delivered += uint64(len(deliver))
	e.mu.Unlock()

	if sendAck {
		ack := &packet.Frame{Verb: packet.VerbAck, Src: e.cfg.Self,
			Epoch: e.cfg.Epoch, InPort: packet.NoPort,
			Payload: packet.AppendAck(nil, ackCum)}
		_ = e.cfg.Lower.WriteTo(peer, packet.Marshal(ack))
	}
	for _, d := range deliver {
		e.cfg.Handler(peer, d)
	}
}
