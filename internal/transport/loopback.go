package transport

import (
	"sort"
	"time"

	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Fabric is the deterministic in-memory lower half used by transport
// tests: a single-threaded virtual-clock datagram network connecting
// any number of endpoints, with a faults.Rule-driven impairment layer
// (drop / duplicate / corrupt) matching the simulator's fault
// vocabulary. Everything runs on the caller's goroutine in FIFO order,
// so a test's delivery schedule is a pure function of its inputs.
type Fabric struct {
	now   time.Duration
	queue []delivery
	eps   map[int32]*Endpoint

	// Rules are consumed in order, first match wins, mirroring
	// faults.Injector semantics over the loopback datagrams.
	rules    []faults.Rule
	ruleLeft []int

	// Latency is the virtual one-way delivery delay recorded against
	// the clock (purely bookkeeping: deliveries stay FIFO).
	Latency time.Duration

	// Stats mirrors the impairment counters.
	Dropped    int
	Duplicated int
	Corrupted  int
}

type delivery struct {
	from, to int32
	raw      []byte
}

// NewFabric builds an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{eps: make(map[int32]*Endpoint)}
}

// Now returns the fabric's virtual clock.
func (f *Fabric) Now() time.Duration { return f.now }

// Use installs the impairment rules (replacing any previous set).
func (f *Fabric) Use(rules []faults.Rule) {
	f.rules = rules
	f.ruleLeft = make([]int, len(rules))
	for i, r := range rules {
		if r.Count <= 0 {
			f.ruleLeft[i] = -1 // unlimited, like faults.Injector
		} else {
			f.ruleLeft[i] = r.Count
		}
	}
}

// Attach registers an endpoint under a fabric address and returns the
// Datagram lower half to build it with. Call before NewEndpoint:
//
//	port := fab.Attach(3)
//	ep := transport.NewEndpoint(transport.Config{Self: 3, Lower: port, ...})
//	fab.Register(3, ep)
type port struct {
	f    *Fabric
	self int32
}

// WriteTo implements Datagram: the frame is copied (the endpoint
// retains its buffer for retransmit) and run through the fault rules.
func (p *port) WriteTo(peer int32, b []byte) error {
	f := p.f
	raw := append([]byte(nil), b...)
	switch f.match(p.self, peer, raw) {
	case faults.ActDrop:
		f.Dropped++
		return nil
	case faults.ActDuplicate:
		f.Duplicated++
		f.queue = append(f.queue, delivery{from: p.self, to: peer, raw: raw})
		f.queue = append(f.queue, delivery{from: p.self, to: peer, raw: append([]byte(nil), raw...)})
		return nil
	case faults.ActCorrupt:
		f.Corrupted++
		// Deterministic detectable corruption, like the simulator's
		// injector: truncate to half length so the decode fails and
		// the reliability layer must recover via retransmit.
		raw = raw[:len(raw)/2]
	}
	f.queue = append(f.queue, delivery{from: p.self, to: peer, raw: raw})
	return nil
}

// Attach returns the Datagram lower half for fabric address self.
func (f *Fabric) Attach(self int32) Datagram { return &port{f: f, self: self} }

// Register binds an endpoint to its fabric address for delivery.
func (f *Fabric) Register(self int32, ep *Endpoint) { f.eps[self] = ep }

// noAction is returned by match when no rule fires.
const noAction faults.RuleAction = 0xff

// match consumes the first live rule matching a datagram, mirroring
// the private faults.Injector matcher: From/To with AnyNode wildcard,
// and Type against the *inner* message type of a sequenced VerbMsg
// frame (TypeFrame matches the envelope itself; TypeInvalid matches
// anything). Fabric addresses map to node IDs, ControllerPeer to
// dataplane's controller pseudo-node.
func (f *Fabric) match(from, to int32, raw []byte) faults.RuleAction {
	for i, r := range f.rules {
		if f.ruleLeft[i] == 0 {
			continue
		}
		if r.From != faults.AnyNode && r.From != topo.NodeID(from) {
			continue
		}
		if r.To != faults.AnyNode && r.To != topo.NodeID(to) {
			continue
		}
		if r.Type != packet.TypeInvalid && !frameCarries(raw, r.Type) {
			continue
		}
		if f.ruleLeft[i] > 0 {
			f.ruleLeft[i]--
		}
		return r.Action
	}
	return noAction
}

// frameCarries reports whether a raw datagram is a Frame whose
// effective type matches t: the inner message type for VerbMsg frames,
// the envelope type otherwise.
func frameCarries(raw []byte, t packet.MsgType) bool {
	if len(raw) == 0 || packet.MsgType(raw[0]) != packet.TypeFrame {
		return false
	}
	if t == packet.TypeFrame {
		return true
	}
	if len(raw) <= packet.FrameHeaderSize || packet.FrameVerb(raw[1]) != packet.VerbMsg {
		return false
	}
	return packet.MsgType(raw[packet.FrameHeaderSize]) == t
}

// Step delivers the oldest queued datagram. It reports whether one was
// delivered.
func (f *Fabric) Step() bool {
	if len(f.queue) == 0 {
		return false
	}
	d := f.queue[0]
	f.queue = f.queue[1:]
	f.now += f.Latency
	if ep := f.eps[d.to]; ep != nil {
		ep.OnDatagram(d.raw, f.now)
	}
	return true
}

// Flush delivers until the queue drains (handlers may enqueue more).
func (f *Fabric) Flush() {
	for f.Step() {
	}
}

// Advance moves the virtual clock forward and ticks every endpoint's
// retransmit timer at the new instant, then flushes the deliveries the
// ticks produced. Endpoints tick in address order for determinism.
func (f *Fabric) Advance(d time.Duration) {
	f.now += d
	ids := make([]int32, 0, len(f.eps))
	for id := range f.eps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f.eps[id].Tick(f.now)
	}
	f.Flush()
}
