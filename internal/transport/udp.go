package transport

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// UDP is the production lower half: one socket per process, a static
// address book mapping peer IDs to UDP addresses, a reader goroutine
// feeding the endpoint, and a ticker goroutine driving retransmits.
// The clock handed to the endpoint is monotonic time since Start.
type UDP struct {
	conn  *net.UDPConn
	start time.Time

	mu    sync.Mutex
	peers map[int32]*net.UDPAddr

	ep      *Endpoint
	closed  chan struct{}
	started bool
	wg      sync.WaitGroup
}

// NewUDP wraps an already-bound connection (tests bind to 127.0.0.1:0
// and exchange real ports; daemons bind their conventional port).
func NewUDP(conn *net.UDPConn) *UDP {
	return &UDP{
		conn:   conn,
		start:  time.Now(),
		peers:  make(map[int32]*net.UDPAddr),
		closed: make(chan struct{}),
	}
}

// SetPeer registers or replaces a peer's address.
func (u *UDP) SetPeer(id int32, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: peer %d: %w", id, err)
	}
	u.mu.Lock()
	u.peers[id] = a
	u.mu.Unlock()
	return nil
}

// LocalAddr returns the bound socket address.
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// Now returns the monotonic clock passed to the endpoint.
func (u *UDP) Now() time.Duration { return time.Since(u.start) }

// WriteTo implements Datagram.
func (u *UDP) WriteTo(peer int32, b []byte) error {
	u.mu.Lock()
	a := u.peers[peer]
	u.mu.Unlock()
	if a == nil {
		return fmt.Errorf("transport: no address for peer %d", peer)
	}
	_, err := u.conn.WriteToUDP(b, a)
	return err
}

// Start launches the reader and retransmit-ticker goroutines feeding
// ep. tick is the Tick cadence (default RTO/4 when zero isn't usable;
// pass something like 25ms).
func (u *UDP) Start(ep *Endpoint, tick time.Duration) {
	if u.started {
		return
	}
	u.started = true
	u.ep = ep
	if tick <= 0 {
		tick = 25 * time.Millisecond
	}
	u.wg.Add(2)
	go func() {
		defer u.wg.Done()
		buf := make([]byte, 2048)
		for {
			n, _, err := u.conn.ReadFromUDP(buf)
			if err != nil {
				select {
				case <-u.closed:
					return
				default:
				}
				// Transient read errors (e.g. ICMP-triggered) are
				// indistinguishable from loss; keep reading.
				continue
			}
			ep.OnDatagram(buf[:n], u.Now())
		}
	}()
	go func() {
		defer u.wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-u.closed:
				return
			case <-t.C:
				ep.Tick(u.Now())
			}
		}
	}()
}

// Close stops the goroutines and closes the socket.
func (u *UDP) Close() error {
	select {
	case <-u.closed:
		return nil
	default:
	}
	close(u.closed)
	err := u.conn.Close()
	u.wg.Wait()
	return err
}
