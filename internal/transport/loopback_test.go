package transport

import (
	"testing"
	"time"

	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// pair wires two endpoints (controller -1 and switch 3) through a
// loopback fabric carrying the given faults.Plan rules, and records
// every frame each side delivers.
type pair struct {
	fab      *Fabric
	ctl, sw  *Endpoint
	ctlSeen  []*packet.Frame
	swSeen   []*packet.Frame
	ctlEpoch uint32
}

func newPair(t *testing.T, plan *faults.Plan, rto time.Duration) *pair {
	t.Helper()
	p := &pair{fab: NewFabric(), ctlEpoch: 1}
	if plan != nil {
		p.fab.Use(plan.Rules)
	}
	p.ctl = NewEndpoint(Config{
		Self: ControllerPeer, Epoch: p.ctlEpoch, RTO: rto,
		Lower:   p.fab.Attach(ControllerPeer),
		Handler: func(peer int32, f *packet.Frame) { p.ctlSeen = append(p.ctlSeen, f) },
	})
	p.sw = NewEndpoint(Config{
		Self: 3, Epoch: 1, RTO: rto,
		Lower:   p.fab.Attach(3),
		Handler: func(peer int32, f *packet.Frame) { p.swSeen = append(p.swSeen, f) },
	})
	p.fab.Register(ControllerPeer, p.ctl)
	p.fab.Register(3, p.sw)
	return p
}

func msgFrame(inner packet.Message) *packet.Frame {
	return &packet.Frame{Verb: packet.VerbMsg, InPort: packet.NoPort,
		Payload: packet.Marshal(inner)}
}

func seqsOf(frames []*packet.Frame) []uint64 {
	s := make([]uint64, len(frames))
	for i, f := range frames {
		s[i] = f.Seq
	}
	return s
}

// TestRetransmitAfterDrop drops the first controller→switch UIM frame
// with a faults.Plan rule and asserts the retransmit timer repairs the
// loss without the application noticing anything but delay.
func TestRetransmitAfterDrop(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.DropMatching(faults.AnyNode, 3, packet.TypeUIM, 1),
	}}
	p := newPair(t, plan, 50*time.Millisecond)

	uim := &packet.UIM{Flow: 7, Version: 2, EgressPort: 1, ChildPort: packet.NoPort}
	if err := p.ctl.Send(3, msgFrame(uim), p.fab.Now()); err != nil {
		t.Fatal(err)
	}
	p.fab.Flush()
	if len(p.swSeen) != 0 {
		t.Fatalf("frame delivered despite drop rule: %d frames", len(p.swSeen))
	}
	if p.fab.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", p.fab.Dropped)
	}

	// One RTO later the frame is resent and delivered, and the ack
	// clears the sender's in-flight queue.
	p.fab.Advance(60 * time.Millisecond)
	if len(p.swSeen) != 1 {
		t.Fatalf("delivered %d frames after RTO, want 1", len(p.swSeen))
	}
	if got := p.ctl.Stats().Retransmits; got != 1 {
		t.Errorf("Retransmits = %d, want 1", got)
	}
	if got := p.ctl.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after ack, want 0", got)
	}
	inner, err := packet.Decode(p.swSeen[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if inner.(*packet.UIM).Flow != 7 {
		t.Errorf("inner flow = %d, want 7", inner.(*packet.UIM).Flow)
	}
}

// TestDuplicateSuppression duplicates frames in the fabric and asserts
// each is delivered exactly once.
func TestDuplicateSuppression(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.DuplicateMatching(faults.AnyNode, faults.AnyNode, packet.TypeUNM, 3),
	}}
	p := newPair(t, plan, 50*time.Millisecond)

	for i := 0; i < 3; i++ {
		unm := &packet.UNM{Flow: packet.FlowID(100 + i), Vn: 2, Dn: 1, Vo: 1, Do: 2}
		if err := p.ctl.Send(3, msgFrame(unm), p.fab.Now()); err != nil {
			t.Fatal(err)
		}
	}
	p.fab.Flush()
	if p.fab.Duplicated != 3 {
		t.Fatalf("Duplicated = %d, want 3", p.fab.Duplicated)
	}
	if len(p.swSeen) != 3 {
		t.Fatalf("delivered %d frames, want 3 (duplicates suppressed)", len(p.swSeen))
	}
	if got := p.sw.Stats().Duplicates; got != 3 {
		t.Errorf("receiver Duplicates = %d, want 3", got)
	}
	for i, f := range p.swSeen {
		if f.Seq != uint64(i+1) {
			t.Errorf("delivery %d has seq %d, want %d", i, f.Seq, i+1)
		}
	}
}

// TestOutOfOrderDelivery drops the first of three frames, letting 2 and
// 3 arrive ahead of the retransmitted 1, and asserts the handler still
// sees sequence order 1, 2, 3.
func TestOutOfOrderDelivery(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.DropMatching(topo.NodeID(ControllerPeer), 3, packet.TypeUIM, 1),
	}}
	p := newPair(t, plan, 50*time.Millisecond)

	for i := 0; i < 3; i++ {
		uim := &packet.UIM{Flow: packet.FlowID(200 + i), Version: 2, EgressPort: 1, ChildPort: packet.NoPort}
		if err := p.ctl.Send(3, msgFrame(uim), p.fab.Now()); err != nil {
			t.Fatal(err)
		}
	}
	p.fab.Flush()
	// Frames 2 and 3 arrived and are buffered behind the gap.
	if len(p.swSeen) != 0 {
		t.Fatalf("delivered %d frames with seq 1 missing, want 0", len(p.swSeen))
	}
	if got := p.sw.Stats().Reordered; got != 2 {
		t.Errorf("Reordered = %d, want 2", got)
	}

	p.fab.Advance(60 * time.Millisecond) // retransmit seq 1
	if got, want := seqsOf(p.swSeen), []uint64{1, 2, 3}; len(got) != 3 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
}

// TestCorruptionRecovered truncates a frame in flight (the injector's
// detectable-corruption model); the decode failure counts as loss and
// retransmission recovers it.
func TestCorruptionRecovered(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.CorruptMatching(faults.AnyNode, faults.AnyNode, packet.TypeUFM, 1),
	}}
	p := newPair(t, plan, 50*time.Millisecond)

	ufm := &packet.UFM{Flow: 7, Version: 2, Status: packet.StatusUpdated, Node: 3}
	if err := p.sw.Send(ControllerPeer, msgFrame(ufm), p.fab.Now()); err != nil {
		t.Fatal(err)
	}
	p.fab.Flush()
	if len(p.ctlSeen) != 0 {
		t.Fatal("corrupted frame was delivered")
	}
	if got := p.ctl.Stats().DecodeErr; got != 1 {
		t.Errorf("DecodeErr = %d, want 1", got)
	}
	p.fab.Advance(60 * time.Millisecond)
	if len(p.ctlSeen) != 1 {
		t.Fatalf("delivered %d frames after retransmit, want 1", len(p.ctlSeen))
	}
}

// TestOversizedFrameRejected asserts Send refuses payloads beyond
// MaxFramePayload instead of emitting an unparseable datagram.
func TestOversizedFrameRejected(t *testing.T) {
	p := newPair(t, nil, 50*time.Millisecond)
	f := &packet.Frame{Verb: packet.VerbMsg, InPort: packet.NoPort,
		Payload: make([]byte, packet.MaxFramePayload+1)}
	if err := p.ctl.Send(3, f, p.fab.Now()); err == nil {
		t.Fatal("oversized send accepted")
	}
	if got := p.ctl.Stats().Oversized; got != 1 {
		t.Errorf("Oversized = %d, want 1", got)
	}
	p.fab.Flush()
	if len(p.swSeen) != 0 {
		t.Errorf("delivered %d frames, want 0", len(p.swSeen))
	}
}

// TestEpochRestartResync bumps the controller's epoch mid-conversation
// (a restart) and asserts the switch resets its per-peer state: the new
// incarnation's seq 1 is delivered, and pre-restart buffered frames are
// discarded rather than replayed into the new conversation.
func TestEpochRestartResync(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.DropMatching(faults.AnyNode, 3, packet.TypeUIM, 1),
	}}
	p := newPair(t, plan, time.Hour) // no retransmits: the gap persists
	// Seq 1 dropped, seq 2 buffered behind the gap.
	for i := 0; i < 2; i++ {
		uim := &packet.UIM{Flow: packet.FlowID(i), Version: 2, EgressPort: 1, ChildPort: packet.NoPort}
		if err := p.ctl.Send(3, msgFrame(uim), p.fab.Now()); err != nil {
			t.Fatal(err)
		}
	}
	p.fab.Flush()
	if len(p.swSeen) != 0 {
		t.Fatal("delivery despite gap")
	}

	// Controller restarts with epoch 2: fresh endpoint, seqs from 1.
	ctl2 := NewEndpoint(Config{
		Self: ControllerPeer, Epoch: 2, RTO: time.Hour,
		Lower:   p.fab.Attach(ControllerPeer),
		Handler: func(peer int32, f *packet.Frame) {},
	})
	p.fab.Register(ControllerPeer, ctl2)
	uim := &packet.UIM{Flow: 99, Version: 3, EgressPort: 1, ChildPort: packet.NoPort}
	if err := ctl2.Send(3, msgFrame(uim), p.fab.Now()); err != nil {
		t.Fatal(err)
	}
	p.fab.Flush()
	if len(p.swSeen) != 1 {
		t.Fatalf("delivered %d frames after restart, want 1", len(p.swSeen))
	}
	if p.swSeen[0].Epoch != 2 || p.swSeen[0].Seq != 1 {
		t.Errorf("delivered frame epoch/seq = %d/%d, want 2/1", p.swSeen[0].Epoch, p.swSeen[0].Seq)
	}
	inner, err := packet.Decode(p.swSeen[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if inner.(*packet.UIM).Flow != 99 {
		t.Errorf("post-restart flow = %d, want 99 (stale frame replayed?)", inner.(*packet.UIM).Flow)
	}
}

// TestGiveUpBounded asserts a frame that can never be delivered is
// abandoned after MaxTries rather than retried forever.
func TestGiveUpBounded(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{
		faults.DropMatching(faults.AnyNode, faults.AnyNode, packet.TypeInvalid, -1),
	}}
	p := newPair(t, plan, 10*time.Millisecond)
	if err := p.ctl.Send(3, msgFrame(&packet.CLN{Flow: 1, Version: 1}), p.fab.Now()); err != nil {
		t.Fatal(err)
	}
	p.fab.Flush()
	for i := 0; i < 40; i++ {
		p.fab.Advance(20 * time.Millisecond)
	}
	st := p.ctl.Stats()
	if st.GaveUp != 1 {
		t.Errorf("GaveUp = %d, want 1", st.GaveUp)
	}
	if p.ctl.InFlight() != 0 {
		t.Errorf("InFlight = %d, want 0 after give-up", p.ctl.InFlight())
	}
	if st.Retransmits >= 40 {
		t.Errorf("Retransmits = %d, want bounded below the tick count", st.Retransmits)
	}
}
