package plancache

import (
	"reflect"
	"sync"
	"testing"

	"p4update/internal/controlplane"
	"p4update/internal/ezsegway"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

func TestCacheReturnsIdenticalPlans(t *testing.T) {
	g := topo.B4()
	g.Freeze()
	ref := topo.B4()
	spec, err := traffic.SegmentedSingleFlow(ref, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c := New(g)

	direct, err := controlplane.PreparePlan(ref, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached1, err := controlplane.PreparePlanCached(c, g, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached2, err := controlplane.PreparePlanCached(c, g, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached1 != cached2 {
		t.Error("second Prepare did not return the memoized plan pointer")
	}
	if !reflect.DeepEqual(direct.Seg, cached1.Seg) || !reflect.DeepEqual(direct.Targets, cached1.Targets) {
		t.Error("cached plan differs from direct preparation")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	ezDirect, err := ezsegway.PreparePlanDep(ref, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ezCached, err := ezsegway.PrepareCached(c, g, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ezDirect.Changed, ezCached.Changed) || !reflect.DeepEqual(ezDirect.Targets, ezCached.Targets) {
		t.Error("cached ez-Segway plan differs from direct preparation")
	}

	set := []ezsegway.FlowUpdate{{Flow: spec.ID(), Old: spec.Old, New: spec.New, SizeK: spec.SizeK}}
	dc, de := ezsegway.ComputeCongestionDependencies(ref, set)
	cc, ce := ezsegway.DependenciesCached(c, g, set)
	if !reflect.DeepEqual(dc, cc) || !reflect.DeepEqual(de, ce) {
		t.Error("cached dependency graph differs from direct computation")
	}
}

// TestCacheForeignTopologyFallsThrough ensures a cache never answers for
// a topology it is not bound to.
func TestCacheForeignTopologyFallsThrough(t *testing.T) {
	g := topo.B4()
	g.Freeze()
	other := topo.Internet2()
	c := New(g)
	spec, err := traffic.SegmentedSingleFlow(other, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := controlplane.PreparePlanCached(c, other, spec.ID(), spec.Old, spec.New, 2, spec.SizeK, nil); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("foreign-topology query touched the cache: %d hits / %d misses", hits, misses)
	}
}

// TestCacheConcurrent hammers one cache from 8 goroutines (run under
// -race): all workers request the same small key set, so lookups,
// single-flight waits and stores all interleave.
func TestCacheConcurrent(t *testing.T) {
	g := topo.Internet2()
	g.Freeze()
	c := New(g)
	n := topo.NodeID(g.NumNodes() - 1)
	paths := g.KShortestPaths(0, n, 4, topo.ByLatency)
	if len(paths) < 2 {
		t.Skip("topology without alternative paths")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				old := paths[i%len(paths)]
				nw := paths[(i+1)%len(paths)]
				p, err := controlplane.PreparePlanCached(c, g, 42, old, nw, 2, 1, nil)
				if err != nil || p == nil {
					t.Errorf("Prepare: %v", err)
					return
				}
				ep, err := ezsegway.PrepareCached(c, g, 42, old, nw, 2, 1, 0, 0)
				if err != nil || ep == nil {
					t.Errorf("EZ Prepare: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if hits, misses := c.Stats(); misses == 0 || hits == 0 {
		t.Errorf("expected both hits and misses, got %d/%d", hits, misses)
	}
}
