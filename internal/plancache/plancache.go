// Package plancache memoizes control-plane preparation across the
// trials of one figure. PreparePlan (P4Update segment decomposition +
// UIM batches), PreparePlanDep (ez-Segway message plans) and
// ComputeCongestionDependencies (ez-Segway's global dependency graph)
// are pure functions of (topology, flow, paths, version, size, ...), so
// when every trial of a grid shares one frozen topology the plans can
// be computed once and handed — immutable — to each trial instead of
// being rebuilt per trial.
//
// A Cache is bound to a single frozen topology. Queries about any other
// topology fall through to direct computation, so a mis-wired cache can
// never return plans for the wrong graph. Caches are safe for
// concurrent use by parallel trial workers: hits take a read lock,
// misses are single-flighted.
package plancache

import (
	"encoding/binary"
	"sync"

	"p4update/internal/controlplane"
	"p4update/internal/ezsegway"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// Cache memoizes prepared plans for one shared topology. Use P4() and
// EZ() to obtain the per-system planner views that plug into
// controlplane.Controller.Plans and ezsegway.Controller.Plans.
type Cache struct {
	g *topo.Topology

	mu       sync.RWMutex
	p4       map[string]p4Entry
	ez       map[string]ezEntry
	deps     map[string]depEntry
	inflight map[string]chan struct{}

	// Hits and Misses are cumulative counters (for benchmarks/tests).
	hits   uint64
	misses uint64
}

type p4Entry struct {
	plan *controlplane.Plan
	err  error
}

type ezEntry struct {
	plan *ezsegway.Plan
	err  error
}

type depEntry struct {
	classes map[packet.FlowID]uint8
	edges   map[packet.FlowID]packet.FlowID
}

// New returns a cache bound to g. Freezing g first is recommended (the
// cache is meant to be shared across goroutines, and path computation
// inside plan preparation is only concurrency-safe on a frozen
// topology).
func New(g *topo.Topology) *Cache {
	return &Cache{
		g:        g,
		p4:       make(map[string]p4Entry),
		ez:       make(map[string]ezEntry),
		deps:     make(map[string]depEntry),
		inflight: make(map[string]chan struct{}),
	}
}

// Topo returns the topology the cache is bound to.
func (c *Cache) Topo() *topo.Topology { return c.g }

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// acquire single-flights computation of key: lookup runs under a read
// (then write) lock, compute outside all locks, store under the write
// lock. Exactly one caller per key computes; the rest wait.
func (c *Cache) acquire(key string, lookup func() bool, compute func(), store func()) {
	for {
		c.mu.RLock()
		hit := lookup()
		c.mu.RUnlock()
		if hit {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		if lookup() {
			c.hits++
			c.mu.Unlock()
			return
		}
		if done, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-done
			continue
		}
		done := make(chan struct{})
		c.inflight[key] = done
		c.mu.Unlock()

		compute()

		c.mu.Lock()
		store()
		c.misses++
		delete(c.inflight, key)
		c.mu.Unlock()
		close(done)
		return
	}
}

// keyBuf builds collision-free binary map keys.
type keyBuf struct{ b []byte }

func (k *keyBuf) u8(v uint8)   { k.b = append(k.b, v) }
func (k *keyBuf) u32(v uint32) { k.b = binary.BigEndian.AppendUint32(k.b, v) }
func (k *keyBuf) path(p []topo.NodeID) {
	k.u32(uint32(len(p)))
	for _, n := range p {
		k.u32(uint32(n))
	}
}
func (k *keyBuf) String() string { return string(k.b) }

// P4 returns the controlplane.Planner view of the cache.
func (c *Cache) P4() controlplane.Planner { return p4Planner{c} }

// EZ returns the ezsegway.Planner view of the cache.
func (c *Cache) EZ() ezsegway.Planner { return ezPlanner{c} }

type p4Planner struct{ c *Cache }

// Prepare implements controlplane.Planner. The returned plan is shared
// across trials and must be treated as immutable.
func (p p4Planner) Prepare(t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version, sizeK uint32, force *packet.UpdateType) (*controlplane.Plan, error) {

	c := p.c
	if t != c.g {
		return controlplane.PreparePlan(t, flow, oldPath, newPath, version, sizeK, force)
	}
	var k keyBuf
	k.u8('p')
	k.u32(uint32(flow))
	k.u32(version)
	k.u32(sizeK)
	if force == nil {
		k.u8(0xff)
	} else {
		k.u8(uint8(*force))
	}
	k.path(oldPath)
	k.path(newPath)
	key := k.String()

	var e p4Entry
	c.acquire(key,
		func() bool { var ok bool; e, ok = c.p4[key]; return ok },
		func() { e.plan, e.err = controlplane.PreparePlan(t, flow, oldPath, newPath, version, sizeK, force) },
		func() { c.p4[key] = e },
	)
	return e.plan, e.err
}

type ezPlanner struct{ c *Cache }

// Prepare implements ezsegway.Planner.
func (p ezPlanner) Prepare(t *topo.Topology, flow packet.FlowID, oldPath, newPath []topo.NodeID,
	version, sizeK uint32, prio uint8, dep packet.FlowID) (*ezsegway.Plan, error) {

	c := p.c
	if t != c.g {
		return ezsegway.PreparePlanDep(t, flow, oldPath, newPath, version, sizeK, prio, dep)
	}
	var k keyBuf
	k.u8('e')
	k.u32(uint32(flow))
	k.u32(version)
	k.u32(sizeK)
	k.u8(prio)
	k.u32(uint32(dep))
	k.path(oldPath)
	k.path(newPath)
	key := k.String()

	var e ezEntry
	c.acquire(key,
		func() bool { var ok bool; e, ok = c.ez[key]; return ok },
		func() {
			e.plan, e.err = ezsegway.PreparePlanDep(t, flow, oldPath, newPath, version, sizeK, prio, dep)
		},
		func() { c.ez[key] = e },
	)
	return e.plan, e.err
}

// Dependencies implements ezsegway.Planner. The returned maps are
// shared across trials: read-only. Callers pass the update set in a
// deterministic (flow-sorted) order, so identical in-flight sets key
// identically.
func (p ezPlanner) Dependencies(t *topo.Topology, updates []ezsegway.FlowUpdate) (map[packet.FlowID]uint8, map[packet.FlowID]packet.FlowID) {
	c := p.c
	if t != c.g {
		return ezsegway.ComputeCongestionDependencies(t, updates)
	}
	var k keyBuf
	k.u8('d')
	k.u32(uint32(len(updates)))
	for _, u := range updates {
		k.u32(uint32(u.Flow))
		k.u32(u.SizeK)
		k.path(u.Old)
		k.path(u.New)
	}
	key := k.String()

	var e depEntry
	c.acquire(key,
		func() bool { var ok bool; e, ok = c.deps[key]; return ok },
		func() { e.classes, e.edges = ezsegway.ComputeCongestionDependencies(t, updates) },
		func() { c.deps[key] = e },
	)
	return e.classes, e.edges
}
