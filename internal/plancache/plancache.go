// Package plancache memoizes control-plane preparation across the
// trials of one figure. Plan preparation — P4Update segment
// decomposition + UIM batches, ez-Segway message plans and congestion
// dependency graphs, LocalVerify instruction waves, OptOracle round
// schedules — is a pure function of (topology, flow, paths, version,
// size, ...), so when every trial of a grid shares one frozen topology
// the plans can be computed once and handed — immutable — to each trial
// instead of being rebuilt per trial.
//
// Cache implements the unified controlplane.Planner seam: each system's
// XxxCached wrapper builds a collision-free key (controlplane.KeyBuf
// with a per-system prefix byte) and calls Memo. A Cache is bound to a
// single frozen topology; queries about any other topology fall through
// to direct computation, so a mis-wired cache can never return plans
// for the wrong graph. Caches are safe for concurrent use by parallel
// trial workers: hits take a read lock, misses are single-flighted.
package plancache

import (
	"sync"

	"p4update/internal/controlplane"
	"p4update/internal/topo"
)

// Cache memoizes prepared plans for one shared topology. It plugs
// directly into controlplane.Controller.Plans, ezsegway.Controller.Plans
// and the other systems' Plans fields as a controlplane.Planner.
type Cache struct {
	g *topo.Topology

	mu       sync.RWMutex
	memo     map[string]entry
	inflight map[string]chan struct{}

	// Hits and Misses are cumulative counters (for benchmarks/tests).
	hits   uint64
	misses uint64
}

type entry struct {
	v   any
	err error
}

var _ controlplane.Planner = (*Cache)(nil)

// New returns a cache bound to g. Freezing g first is recommended (the
// cache is meant to be shared across goroutines, and path computation
// inside plan preparation is only concurrency-safe on a frozen
// topology).
func New(g *topo.Topology) *Cache {
	return &Cache{
		g:        g,
		memo:     make(map[string]entry),
		inflight: make(map[string]chan struct{}),
	}
}

// Topo returns the topology the cache is bound to.
func (c *Cache) Topo() *topo.Topology { return c.g }

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Memo implements controlplane.Planner. Values stored under a key are
// shared across trials and must be treated as immutable.
func (c *Cache) Memo(t *topo.Topology, key string, compute func() (any, error)) (any, error) {
	if t != c.g {
		return compute()
	}
	var e entry
	c.acquire(key,
		func() bool { var ok bool; e, ok = c.memo[key]; return ok },
		func() { e.v, e.err = compute() },
		func() { c.memo[key] = e },
	)
	return e.v, e.err
}

// acquire single-flights computation of key: lookup runs under a read
// (then write) lock, compute outside all locks, store under the write
// lock. Exactly one caller per key computes; the rest wait.
func (c *Cache) acquire(key string, lookup func() bool, compute func(), store func()) {
	for {
		c.mu.RLock()
		hit := lookup()
		c.mu.RUnlock()
		if hit {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		if lookup() {
			c.hits++
			c.mu.Unlock()
			return
		}
		if done, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-done
			continue
		}
		done := make(chan struct{})
		c.inflight[key] = done
		c.mu.Unlock()

		compute()

		c.mu.Lock()
		store()
		c.misses++
		delete(c.inflight, key)
		c.mu.Unlock()
		close(done)
		return
	}
}
