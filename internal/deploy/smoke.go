package deploy

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"p4update/internal/replaydiff"
	"p4update/internal/trace"
)

// Stdout markers the smoke harness keys on. The daemons print them;
// scripts and the harness watch for them.
const (
	MarkerUp        = "up epoch"
	MarkerPushed    = "controllerd: update pushed"
	MarkerCompleted = "controllerd: update completed"
)

// SmokeOptions configures the forked-binary deployment smoke run.
type SmokeOptions struct {
	// BinDir holds the controllerd and switchd binaries.
	BinDir string
	// BasePort is the conventional port base (controller = BasePort,
	// switch i = BasePort+1+i).
	BasePort int
	// WorkDir holds state and trace files; empty uses a temp dir.
	WorkDir string
	// Out receives progress and the forwarded daemon output.
	Out io.Writer
}

// proc is one forked daemon with a line watcher on its output.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  io.Writer

	mu      sync.Mutex
	waiters map[string]chan struct{}
}

func startProc(out io.Writer, name, bin string, args ...string) (*proc, error) {
	p := &proc{name: name, cmd: exec.Command(bin, args...), out: out, waiters: make(map[string]chan struct{})}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	p.cmd.Stderr = p.cmd.Stdout
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(p.out, "  [%s] %s\n", p.name, line)
			p.mu.Lock()
			for sub, ch := range p.waiters {
				if strings.Contains(line, sub) {
					close(ch)
					delete(p.waiters, sub)
				}
			}
			p.mu.Unlock()
		}
	}()
	return p, nil
}

// expect returns a channel closed when a future output line contains
// sub. Register before the line can appear.
func (p *proc) expect(sub string) <-chan struct{} {
	ch := make(chan struct{})
	p.mu.Lock()
	p.waiters[sub] = ch
	p.mu.Unlock()
	return ch
}

// terminate SIGTERMs the daemon (it dumps its trace and exits) and
// waits for it.
func (p *proc) terminate() error {
	if p.cmd.Process == nil {
		return nil
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("%s: did not exit on SIGTERM", p.name)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
}

func waitMarker(ch <-chan struct{}, d time.Duration, what string) error {
	select {
	case <-ch:
		return nil
	case <-time.After(d):
		return fmt.Errorf("timed out waiting for %s", what)
	}
}

// RunSmoke is the multi-process integration smoke: fork one switchd
// per fig2 node plus controllerd on localhost UDP, run the scenario
// update, SIGKILL the controller mid-update, let the switches finish
// on their own, restart the controller, require probe-confirmed
// completion — then replay-diff every process's flight recording
// against the simulated oracle.
func RunSmoke(o SmokeOptions) error {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.BasePort == 0 {
		o.BasePort = 18800
	}
	if o.WorkDir == "" {
		dir, err := os.MkdirTemp("", "p4update-deploy-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		o.WorkDir = dir
	}
	scn := Fig2Scenario()
	g, err := scn.Topology()
	if err != nil {
		return err
	}
	n := g.NumNodes()
	ctlBin := filepath.Join(o.BinDir, "controllerd")
	swBin := filepath.Join(o.BinDir, "switchd")
	for _, bin := range []string{ctlBin, swBin} {
		if _, err := os.Stat(bin); err != nil {
			return fmt.Errorf("deploy smoke: missing daemon binary (run `make daemons`): %w", err)
		}
	}
	tracePath := func(name string) string { return filepath.Join(o.WorkDir, name+".trace.jsonl") }

	var procs []*proc
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	fmt.Fprintf(o.Out, "deploy smoke: starting %d switchd + controllerd on 127.0.0.1:%d+\n", n, o.BasePort)
	var switches []*proc
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sw%d", i)
		p, err := startProc(o.Out, name, swBin,
			"-node", fmt.Sprint(i),
			"-base-port", fmt.Sprint(o.BasePort),
			"-state", filepath.Join(o.WorkDir, name+".json"),
			"-trace", tracePath(name))
		if err != nil {
			return err
		}
		procs = append(procs, p)
		switches = append(switches, p)
	}

	startCtl := func(epoch string) (*proc, error) {
		p, err := startProc(o.Out, "ctl-"+epoch, ctlBin,
			"-base-port", fmt.Sprint(o.BasePort),
			"-state", filepath.Join(o.WorkDir, "controller.json"),
			"-trace", tracePath("ctl-"+epoch))
		if err == nil {
			procs = append(procs, p)
		}
		return p, err
	}

	ctl1, err := startCtl("1")
	if err != nil {
		return err
	}
	pushed := ctl1.expect(MarkerPushed)
	if err := waitMarker(pushed, 30*time.Second, "update push"); err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "deploy smoke: update pushed — killing controller mid-update")
	if err := ctl1.terminate(); err != nil {
		return err
	}

	// Outage: long enough for the whole install chain to commit with no
	// controller (the daemon default install delay is 120ms per rule).
	time.Sleep(1500 * time.Millisecond)

	fmt.Fprintln(o.Out, "deploy smoke: restarting controller")
	ctl2, err := startCtl("2")
	if err != nil {
		return err
	}
	completed := ctl2.expect(MarkerCompleted)
	if err := waitMarker(completed, 30*time.Second, "update completion"); err != nil {
		return err
	}
	// Grace for the stale-path CLN to land before tearing down.
	time.Sleep(500 * time.Millisecond)
	if err := ctl2.terminate(); err != nil {
		return err
	}
	for _, p := range switches {
		if err := p.terminate(); err != nil {
			return err
		}
	}

	// Differential check: every process's own events vs the oracle.
	golden, err := GoldenEvents(scn)
	if err != nil {
		return err
	}
	want := replaydiff.Canonicalize(golden)
	if want.Len() == 0 {
		return fmt.Errorf("deploy smoke: oracle recorded no decisions")
	}
	load := func(name string, node int32) (*replaydiff.Log, error) {
		fh, err := os.Open(tracePath(name))
		if err != nil {
			return nil, err
		}
		defer fh.Close()
		evs, err := trace.ParseJSONL(fh)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return replaydiff.Canonicalize(replaydiff.OwnedBy(evs, node)), nil
	}
	logs := make([]*replaydiff.Log, 0, n+2)
	for _, name := range []string{"ctl-1", "ctl-2"} {
		l, err := load(name, trace.NodeController)
		if err != nil {
			return err
		}
		logs = append(logs, l)
	}
	for i := 0; i < n; i++ {
		l, err := load(fmt.Sprintf("sw%d", i), int32(i))
		if err != nil {
			return err
		}
		logs = append(logs, l)
	}
	got := replaydiff.Merge(logs...)
	divs := replaydiff.Diff(got, want)
	fmt.Fprintf(o.Out, "deploy smoke: replay diff over %d decisions: %s\n", want.Len(), replaydiff.Report(divs))
	if len(divs) != 0 {
		return fmt.Errorf("deploy smoke: deployment diverges from the simulated oracle")
	}
	if got.Len() != want.Len() {
		return fmt.Errorf("deploy smoke: merged %d decisions, oracle has %d", got.Len(), want.Len())
	}
	fmt.Fprintln(o.Out, "deploy smoke: PASS — controller killed and restarted mid-update, switches stayed autonomous, decision logs identical")
	return nil
}
