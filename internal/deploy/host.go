package deploy

import (
	"sync"
	"time"

	"p4update/internal/sim"
)

// Host drives a wiring.System's virtual-clock engine in real time,
// mapping wall-clock elapsed-since-start 1:1 onto virtual time. A pump
// goroutine keeps the engine caught up with the wall clock (install
// delays, watchdogs and probe timers fire on schedule); transport
// handlers enter the engine through Do, which serializes them against
// the pump. Everything the wiring.System owns — switches, controller,
// recorder — must only be touched inside Do or before Start.
type Host struct {
	mu    sync.Mutex
	eng   *sim.Engine
	start time.Time
	wake  chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewHost wraps an engine; the wall→virtual epoch is fixed here, so
// construct the Host right after wiring.New.
func NewHost(eng *sim.Engine) *Host {
	return &Host{
		eng:   eng,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

// Now is the current virtual time (wall time since construction).
func (h *Host) Now() time.Duration { return time.Since(h.start) }

// Do runs fn with the engine caught up to now and exclusive access to
// the system, then pokes the pump so timers fn scheduled are honored.
func (h *Host) Do(fn func()) {
	h.mu.Lock()
	h.eng.RunUntil(h.Now())
	fn()
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Start launches the pump.
func (h *Host) Start() {
	h.wg.Add(1)
	go h.pump()
}

// Stop halts the pump; pending virtual events are left unexecuted.
func (h *Host) Stop() {
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	h.wg.Wait()
}

func (h *Host) pump() {
	defer h.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		h.mu.Lock()
		h.eng.RunUntil(h.Now())
		next, ok := h.eng.NextAt()
		h.mu.Unlock()

		// Sleep until the next virtual event is due, or until a Do
		// call schedules new work, whichever comes first.
		wait := time.Hour
		if ok {
			if wait = next - h.Now(); wait <= 0 {
				wait = 50 * time.Microsecond
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-h.done:
			return
		case <-h.wake:
		case <-timer.C:
		}
	}
}
