package deploy

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"p4update/internal/packet"
	"p4update/internal/replaydiff"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// testScenario tightens the default scenario's timers so the crash
// test's controller outage comfortably covers the whole install chain.
func testScenario() Scenario {
	scn := Fig2Scenario()
	scn.InstallDelay = 40 * time.Millisecond
	scn.WatchdogTimeout = 3 * time.Second
	scn.ProbeTimeout = 3 * time.Second
	return scn
}

const testRTO = 30 * time.Millisecond

// fabric is an in-process deployment: every daemon runs in this test
// binary, talking real UDP over the loopback interface.
type fabric struct {
	t         *testing.T
	scn       Scenario
	dir       string
	peers     map[int32]string
	ctlPort   int
	switches  []*SwitchDaemon
	delivered chan packet.Data
}

func startFabric(t *testing.T, scn Scenario) *fabric {
	t.Helper()
	g, err := scn.Topology()
	if err != nil {
		t.Fatal(err)
	}
	fb := &fabric{
		t:         t,
		scn:       scn,
		dir:       t.TempDir(),
		peers:     make(map[int32]string),
		delivered: make(chan packet.Data, 64),
	}
	ctlConn, err := ListenLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	fb.ctlPort = ctlConn.LocalAddr().(*net.UDPAddr).Port
	fb.peers[-1] = ctlConn.LocalAddr().String()
	ctlConn.Close() // the controller rebinds this port when started

	n := g.NumNodes()
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := ListenLocal(0)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		fb.peers[int32(i)] = c.LocalAddr().String()
	}
	egress := scn.NewPath[len(scn.NewPath)-1]
	for i := 0; i < n; i++ {
		cfg := SwitchConfig{
			Node:      topo.NodeID(i),
			Scn:       scn,
			Conn:      conns[i],
			Peers:     fb.peers,
			StateFile: filepath.Join(fb.dir, fmt.Sprintf("sw%d.json", i)),
			RTO:       testRTO,
		}
		if topo.NodeID(i) == egress {
			cfg.OnDeliver = func(d *packet.Data) {
				select {
				case fb.delivered <- *d:
				default:
				}
			}
		}
		sd, err := NewSwitch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sd.Start()
		t.Cleanup(sd.Stop)
		fb.switches = append(fb.switches, sd)
	}
	return fb
}

// startController (re)binds the conventional controller port and
// launches a controller incarnation over the shared state file.
func (fb *fabric) startController() *ControllerDaemon {
	fb.t.Helper()
	conn, err := ListenLocal(fb.ctlPort)
	if err != nil {
		fb.t.Fatal(err)
	}
	d, err := NewControllerDaemon(ControllerConfig{
		Scn:       fb.scn,
		Conn:      conn,
		Peers:     fb.peers,
		StateFile: filepath.Join(fb.dir, "controller.json"),
		RTO:       testRTO,
	})
	if err != nil {
		fb.t.Fatal(err)
	}
	d.Start()
	fb.t.Cleanup(d.Stop)
	return d
}

func waitCh(t *testing.T, ch <-chan struct{}, d time.Duration, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(d):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// collectLog dumps a daemon's flight recording and canonicalizes the
// events it owns.
func collectLog(t *testing.T, dump func(w io.Writer) error, node int32) *replaydiff.Log {
	t.Helper()
	var buf bytes.Buffer
	if err := dump(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return replaydiff.Canonicalize(replaydiff.OwnedBy(evs, node))
}

// TestControllerCrashMidUpdate is the daemon-level regression for the
// paper's autonomy claim: kill controllerd right after it pushed the
// update's indications, assert the switch processes finish the update
// and keep forwarding on their own, restart the controller, and assert
// it re-syncs, confirms the update, cleans up the stale path — and that
// the whole multi-process run is decision-equivalent to the simulated
// oracle.
func TestControllerCrashMidUpdate(t *testing.T) {
	scn := testScenario()
	fb := startFabric(t, scn)
	f := scn.Flow()

	ctl1 := fb.startController()
	if ctl1.Epoch() != 1 {
		t.Fatalf("first incarnation epoch = %d, want 1", ctl1.Epoch())
	}
	waitCh(t, ctl1.Pushed(), 15*time.Second, "update push")
	ctl1.Stop() // crash: mid-update, before any switch could have confirmed

	// Outage phase: every new-path switch commits v2 with no controller.
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range scn.NewPath {
		for {
			if v, ok := fb.switches[n].FlowVersion(f); ok && v == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d did not commit v2 during the outage", n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Forwarding works end to end while the controller is down.
	fb.switches[scn.NewPath[0]].Inject(&packet.Data{Flow: f, TTL: 64})
	select {
	case d := <-fb.delivered:
		if d.Flow != f {
			t.Fatalf("delivered flow %d, want %d", d.Flow, f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no end-to-end delivery during the outage")
	}

	// Restart: the new incarnation re-syncs from disk + live switch
	// state and drives the update to probe-confirmed completion.
	ctl2 := fb.startController()
	if ctl2.Epoch() != 2 {
		t.Fatalf("second incarnation epoch = %d, want 2", ctl2.Epoch())
	}
	waitCh(t, ctl2.Completed(), 15*time.Second, "update completion")

	// §11 cleanup: the node that left the path drops its stale rule.
	stale := topo.NodeID(-1)
	onNew := make(map[topo.NodeID]bool)
	for _, n := range scn.NewPath {
		onNew[n] = true
	}
	for _, n := range scn.OldPath {
		if !onNew[n] {
			stale = n
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, ok := fb.switches[stale].FlowVersion(f); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale node %d still holds a rule after completion", stale)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctl2.Stop()

	// Differential check against the simulated oracle.
	golden, err := GoldenEvents(scn)
	if err != nil {
		t.Fatal(err)
	}
	want := replaydiff.Canonicalize(golden)
	if want.Len() == 0 {
		t.Fatal("oracle recorded no decisions")
	}
	logs := []*replaydiff.Log{
		collectLog(t, ctl1.WriteTrace, trace.NodeController),
		collectLog(t, ctl2.WriteTrace, trace.NodeController),
	}
	for i, sd := range fb.switches {
		logs = append(logs, collectLog(t, sd.WriteTrace, int32(i)))
	}
	got := replaydiff.Merge(logs...)
	if divs := replaydiff.Diff(got, want); len(divs) != 0 {
		t.Fatalf("deployment diverges from oracle:\n%s", replaydiff.Report(divs))
	}
	if got.Len() != want.Len() {
		t.Fatalf("merged %d decisions, oracle has %d", got.Len(), want.Len())
	}
}

// TestSwitchBootstrapFromLKG asserts a restarted switchd reinstalls its
// persisted last-known-good rules before hearing from anyone, and bumps
// its transport epoch.
func TestSwitchBootstrapFromLKG(t *testing.T) {
	scn := testScenario()
	f := scn.Flow()
	stateFile := filepath.Join(t.TempDir(), "sw0.json")
	err := saveJSON(stateFile, switchState{
		Epoch: 3,
		Rules: []lkgRule{{Flow: uint32(f), Port: 1, Version: 2, Distance: 3, SizeK: scn.SizeK}},
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ListenLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewSwitch(SwitchConfig{
		Node: 0, Scn: scn, Conn: conn,
		Peers:     map[int32]string{-1: "127.0.0.1:9"},
		StateFile: stateFile,
		RTO:       testRTO,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()
	if d.Epoch() != 4 {
		t.Errorf("epoch = %d, want 4", d.Epoch())
	}
	if v, ok := d.FlowVersion(f); !ok || v != 2 {
		t.Fatalf("restored rule = (v%d, %v), want v2 present", v, ok)
	}
	var st switchState
	if err := loadJSON(stateFile, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 || len(st.Rules) != 1 || st.Rules[0].Version != 2 {
		t.Fatalf("persisted state = %+v, want epoch 4 with the v2 rule", st)
	}
}
