// Package deploy runs the simulator's protocol stack as real OS
// processes: cmd/controllerd and cmd/switchd build the same
// wiring.System as a simulated trial, but hand every frame addressed
// to a remote party to internal/transport (UDP) instead of the
// in-memory queue, and drive the virtual-clock engine in real time.
// The simulator stays the oracle — GoldenEvents runs the identical
// scenario in-process, and internal/replaydiff certifies the recorded
// deployment run decision-equivalent to it.
package deploy

import (
	"fmt"
	"time"

	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
	"p4update/internal/wiring"
)

// Scenario is a deployment trial: one registered flow and one pushed
// route update, parameterized so the simulated golden run and the
// real-process run are built from the same values.
type Scenario struct {
	// Topo names the topology; "fig2" is the only deployed fabric.
	Topo string
	// Seed feeds the engines (identical in every process).
	Seed int64
	// FlowSrc/FlowDst and OldPath describe the pre-installed flow;
	// NewPath is the update pushed at trigger time.
	FlowSrc, FlowDst topo.NodeID
	OldPath, NewPath []topo.NodeID
	SizeK            uint32
	// ForceSL pins the update to single-layer (the fig2 scenario's
	// path pair would otherwise auto-select too).
	ForceSL bool
	// InstallDelay is the constant per-rule install latency.
	InstallDelay time.Duration
	// WatchdogTimeout / MaxRetriggers / ProbeTimeout configure §11
	// recovery, identical in oracle and deployment.
	WatchdogTimeout time.Duration
	MaxRetriggers   int
	ProbeTimeout    time.Duration
}

// Fig2Scenario is the deployment default: the paper's Fig. 2 topology,
// flow 0→4 moving from the 5-hop path to the 4-hop path (node 3 leaves
// the path and is cleaned up after confirmation).
func Fig2Scenario() Scenario {
	return Scenario{
		Topo:            "fig2",
		Seed:            1,
		FlowSrc:         0,
		FlowDst:         4,
		OldPath:         []topo.NodeID{0, 1, 2, 3, 4},
		NewPath:         []topo.NodeID{0, 1, 2, 4},
		SizeK:           1000,
		ForceSL:         true,
		InstallDelay:    120 * time.Millisecond,
		WatchdogTimeout: 2 * time.Second,
		MaxRetriggers:   3,
		ProbeTimeout:    2 * time.Second,
	}
}

// Topology materializes the scenario's fabric.
func (s Scenario) Topology() (*topo.Topology, error) {
	switch s.Topo {
	case "", "fig2":
		g, _, _, _ := topo.Fig2Scenario()
		return g, nil
	default:
		return nil, fmt.Errorf("deploy: unknown topology %q", s.Topo)
	}
}

// Flow returns the scenario flow's wire ID (the ingress hash, exactly
// as RegisterFlow derives it).
func (s Scenario) Flow() packet.FlowID {
	return packet.HashFlow(uint16(s.FlowSrc), uint16(s.FlowDst))
}

// Force returns the update-type pin for TriggerUpdate.
func (s Scenario) Force() *packet.UpdateType {
	if !s.ForceSL {
		return nil
	}
	f := packet.UpdateSingle
	return &f
}

// wiringCfg builds the trial config shared by the oracle and every
// deployment process; tr is nil for the oracle.
func (s Scenario) wiringCfg(tr wiringTransport) wiring.Config {
	return wiring.Config{
		Seed:             s.Seed,
		System:           "p4update",
		BaseInstallDelay: s.InstallDelay,
		WatchdogTimeout:  s.WatchdogTimeout,
		MaxRetriggers:    s.MaxRetriggers,
		ProbeTimeout:     s.ProbeTimeout,
		Trace:            &trace.Options{},
		Transport:        tr,
	}
}

// GoldenEvents executes the scenario entirely in the simulator and
// returns its flight recording — the oracle trace the deployment run
// is diffed against.
func GoldenEvents(s Scenario) ([]trace.Event, error) {
	g, err := s.Topology()
	if err != nil {
		return nil, err
	}
	sys := wiring.New(g, s.wiringCfg(nil))
	f, err := sys.Ctl.RegisterFlow(s.FlowSrc, s.FlowDst, s.OldPath, s.SizeK)
	if err != nil {
		return nil, err
	}
	if _, err := sys.Ctl.TriggerUpdate(f, s.NewPath, s.Force()); err != nil {
		return nil, err
	}
	sys.Eng.Run()
	return sys.Trace.Events(), nil
}
