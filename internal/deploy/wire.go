package deploy

import (
	"fmt"
	"net"
	"sort"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/transport"
)

// wiringTransport is the seam the deployment glue plugs into the
// dataplane (nil for the in-simulator oracle run).
type wiringTransport = dataplane.Transport

// wireView implements dataplane.Transport for one process: exactly one
// party (switch Self, or the controller) is local; every frame bound
// elsewhere is wrapped in a packet.Frame and handed to send (which
// feeds the reliability endpoint). The remaining wiring.System parties
// exist as silent replicas — the intercepts guarantee they never
// receive traffic.
type wireView struct {
	self       topo.NodeID
	controller bool
	send       func(to int32, f *packet.Frame)
}

func (v *wireView) LocalNode(n topo.NodeID) bool { return !v.controller && n == v.self }
func (v *wireView) LocalController() bool        { return v.controller }

func (v *wireView) ForwardPort(from, to topo.NodeID, inPort topo.PortID, raw []byte) {
	v.send(int32(to), &packet.Frame{Verb: packet.VerbMsg, InPort: uint16(int32(inPort)), Payload: raw})
}

func (v *wireView) ForwardUp(from topo.NodeID, raw []byte) {
	v.send(int32(transport.ControllerPeer), &packet.Frame{Verb: packet.VerbMsg, InPort: packet.NoPort, Payload: raw})
}

func (v *wireView) ForwardDown(to topo.NodeID, raw []byte) {
	v.send(int32(to), &packet.Frame{Verb: packet.VerbMsg, InPort: packet.NoPort, Payload: raw})
}

// rxPort maps a frame's InPort back to the dataplane's notion: NoPort
// (controller traffic) becomes topo.InvalidPort.
func rxPort(f *packet.Frame) topo.PortID {
	if f.InPort == packet.NoPort {
		return topo.InvalidPort
	}
	return topo.PortID(int32(f.InPort))
}

// Addressing convention: the controller listens on basePort, switch i
// on basePort+1+i, all on the IPv4 loopback.

// ListenLocal binds a UDP socket on 127.0.0.1:port (0 for ephemeral).
func ListenLocal(port int) (*net.UDPConn, error) {
	return net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
}

// PeerAddrs builds the conventional address book for a fabric of n
// switches: entry -1 is the controller, entries 0..n-1 the switches.
func PeerAddrs(basePort, n int) map[int32]string {
	m := make(map[int32]string, n+1)
	m[int32(transport.ControllerPeer)] = fmt.Sprintf("127.0.0.1:%d", basePort)
	for i := 0; i < n; i++ {
		m[int32(i)] = fmt.Sprintf("127.0.0.1:%d", basePort+1+i)
	}
	return m
}

// newWire stacks UDP + reliability endpoint for one daemon. peers may
// omit the daemon's own entry.
func newWire(conn *net.UDPConn, peers map[int32]string, self int32, epoch uint32,
	rto time.Duration, handler transport.Handler) (*transport.UDP, *transport.Endpoint, error) {

	udp := transport.NewUDP(conn)
	ids := make([]int32, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id == self {
			continue
		}
		if err := udp.SetPeer(id, peers[id]); err != nil {
			return nil, nil, err
		}
	}
	ep := transport.NewEndpoint(transport.Config{
		Self:  self,
		Epoch: epoch,
		RTO:   rto,
		// A controller outage must be survivable by in-flight frames:
		// with the default 100ms RTO this retries for ~12s before
		// declaring a peer gone.
		MaxTries: 120,
		Lower:    udp,
		Handler:  handler,
	})
	return udp, ep, nil
}
