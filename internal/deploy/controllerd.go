package deploy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/transport"
	"p4update/internal/wiring"
)

// ControllerConfig configures the controllerd process.
type ControllerConfig struct {
	Scn   Scenario
	Conn  *net.UDPConn
	Peers map[int32]string
	// StateFile persists registered flows, the in-flight update intent
	// and per-node acks; a restarted controller resumes tracking from
	// it instead of re-pushing the world.
	StateFile string
	RTO       time.Duration
}

// flowSpec is one persisted Flow-DB entry. Version and Path are the
// last *completed* configuration — an in-flight update lives in
// updateIntent until its probe confirms, then folds in here.
type flowSpec struct {
	Flow    uint32  `json:"flow"`
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	SizeK   uint32  `json:"size_k"`
	Version uint32  `json:"version"`
	Path    []int32 `json:"path"`
}

// updateIntent is the persisted write-ahead record of one pushed
// update: written before the first UIM leaves, amended as acks arrive,
// marked completed when the probe confirms.
type updateIntent struct {
	Flow      uint32  `json:"flow"`
	Version   uint32  `json:"version"`
	OldPath   []int32 `json:"old_path"`
	NewPath   []int32 `json:"new_path"`
	Acked     []int32 `json:"acked"`
	Completed bool    `json:"completed"`
}

// ctlState is the controllerd persistence record.
type ctlState struct {
	Epoch  uint32        `json:"epoch"`
	Flows  []flowSpec    `json:"flows"`
	Update *updateIntent `json:"update,omitempty"`
}

// ControllerDaemon runs the unmodified controlplane.Controller as a
// real process. It pushes full plan snapshots to switches, tracks
// per-switch acks (write-ahead persisted), and across a restart
// rebuilds its tracking from disk plus authoritative VerbState reports
// collected from the live switches — resending only what is still
// unacknowledged.
type ControllerDaemon struct {
	cfg   ControllerConfig
	epoch uint32
	state ctlState

	host *Host
	sys  *wiring.System
	udp  *transport.UDP
	ep   *transport.Endpoint
	view *wireView

	// u/plan track the in-flight update (nil when idle or completed).
	u    *controlplane.UpdateStatus
	plan *controlplane.Plan

	// lastState accumulates the newest (flow, version) each switch has
	// reported; the sync barrier reads it.
	lastState map[topo.NodeID]map[packet.FlowID]uint32
	synced    bool

	pushedCh    chan struct{}
	pushedOnce  sync.Once
	doneCh      chan struct{}
	doneOnce    sync.Once
	stopCh      chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
	helloPeriod time.Duration
}

// NewControllerDaemon builds the controller process; Start launches it.
func NewControllerDaemon(cfg ControllerConfig) (*ControllerDaemon, error) {
	d := &ControllerDaemon{
		cfg:         cfg,
		lastState:   make(map[topo.NodeID]map[packet.FlowID]uint32),
		pushedCh:    make(chan struct{}),
		doneCh:      make(chan struct{}),
		stopCh:      make(chan struct{}),
		helloPeriod: 100 * time.Millisecond,
	}
	if err := loadJSON(cfg.StateFile, &d.state); err != nil {
		return nil, fmt.Errorf("deploy: controllerd: %w", err)
	}
	d.epoch = d.state.Epoch + 1
	d.state.Epoch = d.epoch

	g, err := cfg.Scn.Topology()
	if err != nil {
		return nil, err
	}
	d.view = &wireView{controller: true}
	d.sys = wiring.New(g, cfg.Scn.wiringCfg(d.view))
	d.host = NewHost(d.sys.Eng)

	d.udp, d.ep, err = newWire(cfg.Conn, cfg.Peers, int32(transport.ControllerPeer),
		d.epoch, cfg.RTO, d.handle)
	if err != nil {
		return nil, err
	}
	d.view.send = func(to int32, f *packet.Frame) { d.ep.Send(to, f, d.udp.Now()) }

	ctl := d.sys.Ctl
	ctl.InjectProbeHook = func(u *controlplane.UpdateStatus) bool {
		d.view.send(int32(u.NewPath[0]), &packet.Frame{
			Verb:    packet.VerbProbe,
			InPort:  packet.NoPort,
			Payload: packet.AppendProbe(nil, u.Flow, u.Version),
		})
		return true
	}
	ctl.OnComplete = func(u *controlplane.UpdateStatus) {
		up := d.state.Update
		if up == nil || uint32(u.Flow) != up.Flow || u.Version != up.Version {
			return
		}
		up.Completed = true
		// Fold the confirmed configuration into the Flow DB record.
		for i := range d.state.Flows {
			if d.state.Flows[i].Flow == up.Flow {
				d.state.Flows[i].Version = up.Version
				d.state.Flows[i].Path = up.NewPath
			}
		}
		d.persist()
		d.doneOnce.Do(func() { close(d.doneCh) })
	}

	if d.epoch == 1 {
		if err := d.bootstrapFresh(); err != nil {
			return nil, err
		}
	} else if err := d.bootstrapRestart(); err != nil {
		return nil, err
	}
	return d, d.persist()
}

// bootstrapFresh registers the scenario flow (first incarnation).
func (d *ControllerDaemon) bootstrapFresh() error {
	scn := d.cfg.Scn
	f, err := d.sys.Ctl.RegisterFlow(scn.FlowSrc, scn.FlowDst, scn.OldPath, scn.SizeK)
	if err != nil {
		return err
	}
	d.state.Flows = []flowSpec{{
		Flow:    uint32(f),
		Src:     int32(scn.FlowSrc),
		Dst:     int32(scn.FlowDst),
		SizeK:   scn.SizeK,
		Version: 1,
		Path:    toWire(scn.OldPath),
	}}
	return nil
}

// bootstrapRestart rebuilds the Flow DB and — if an update intent is
// still open — its tracking record and plan, then replays persisted
// acks. Fresh VerbState reports (authoritative) top this up once the
// switches answer the hello round.
func (d *ControllerDaemon) bootstrapRestart() error {
	ctl := d.sys.Ctl
	for _, spec := range d.state.Flows {
		f := packet.FlowID(spec.Flow)
		err := ctl.RegisterFlowID(f, topo.NodeID(spec.Src), topo.NodeID(spec.Dst),
			fromWire(spec.Path), spec.SizeK)
		if err != nil {
			return err
		}
		rec, _ := ctl.Flow(f)
		rec.Version = spec.Version
	}
	up := d.state.Update
	if up == nil || up.Completed {
		return nil
	}
	f := packet.FlowID(up.Flow)
	rec, ok := ctl.Flow(f)
	if !ok {
		return fmt.Errorf("deploy: controllerd: intent for unknown flow %d", up.Flow)
	}
	oldPath, newPath := fromWire(up.OldPath), fromWire(up.NewPath)
	plan, err := controlplane.PreparePlan(d.sys.Topo, f, oldPath, newPath,
		up.Version, rec.SizeK, d.cfg.Scn.Force())
	if err != nil {
		return err
	}
	u := ctl.TrackOnly(f, up.Version, oldPath, newPath, nil, rec)
	u.Plan = plan
	d.u, d.plan = u, plan
	for _, n := range up.Acked {
		d.sys.Net.OnApply(topo.NodeID(n), f, up.Version)
	}
	return nil
}

// Start launches the transport, the engine pump, the snapshot push and
// the hello/sync loop.
func (d *ControllerDaemon) Start() {
	d.udp.Start(d.ep, tickFor(d.cfg.RTO))
	d.host.Start()
	d.host.Do(d.sendSnapshots)
	d.wg.Add(1)
	go d.helloLoop()
}

// Stop halts the daemon; persisted state stays for the next epoch.
func (d *ControllerDaemon) Stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.wg.Wait()
	d.udp.Close()
	d.host.Stop()
}

// Pushed is closed once the update's UIMs have been sent (this epoch or
// a previous one).
func (d *ControllerDaemon) Pushed() <-chan struct{} { return d.pushedCh }

// Completed is closed once the update's confirmation probe arrived.
func (d *ControllerDaemon) Completed() <-chan struct{} { return d.doneCh }

// Epoch returns this incarnation's transport epoch.
func (d *ControllerDaemon) Epoch() uint32 { return d.epoch }

// WriteTrace dumps the flight recording as JSONL.
func (d *ControllerDaemon) WriteTrace(w io.Writer) error {
	var err error
	d.host.Do(func() { err = d.sys.Trace.WriteJSONL(w) })
	return err
}

// sendSnapshots pushes every flow's full plan entry to every switch on
// its path (sequenced — the transport retries until each switch is up).
func (d *ControllerDaemon) sendSnapshots() {
	for _, spec := range d.state.Flows {
		path := make([]uint16, len(spec.Path))
		for i, n := range spec.Path {
			path[i] = uint16(n)
		}
		snap := packet.SnapshotFlow{
			Flow:    packet.FlowID(spec.Flow),
			Src:     uint16(spec.Src),
			Dst:     uint16(spec.Dst),
			Version: spec.Version,
			SizeK:   spec.SizeK,
			Path:    path,
		}
		for _, n := range spec.Path {
			d.view.send(n, &packet.Frame{
				Verb:    packet.VerbSnapshot,
				InPort:  packet.NoPort,
				Payload: packet.AppendSnapshot(nil, snap),
			})
		}
	}
}

// helloLoop polls the fabric with (unsequenced) hellos until the sync
// barrier passes, then exits; sequenced traffic needs no keepalive.
func (d *ControllerDaemon) helloLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.helloPeriod)
	defer t.Stop()
	for {
		var synced bool
		d.host.Do(func() {
			synced = d.synced
			if !synced {
				for _, n := range d.sys.Topo.Nodes() {
					d.view.send(int32(n), &packet.Frame{Verb: packet.VerbHello, InPort: packet.NoPort})
				}
			}
		})
		if synced {
			return
		}
		select {
		case <-d.stopCh:
			return
		case <-t.C:
		}
	}
}

// handle is the transport upcall; every branch runs inside host.Do.
func (d *ControllerDaemon) handle(peer int32, f *packet.Frame) {
	d.host.Do(func() {
		switch f.Verb {
		case packet.VerbMsg:
			d.sys.Net.ControllerRx(topo.NodeID(peer), f.Payload)
		case packet.VerbState:
			entries, err := packet.ParseState(f.Payload)
			if err != nil {
				return
			}
			d.handleState(topo.NodeID(peer), entries)
		}
	})
}

// handleState folds a switch's committed-version report in: it feeds
// the sync barrier and doubles as the (idempotent) commit-ack path for
// the in-flight update.
func (d *ControllerDaemon) handleState(node topo.NodeID, entries []packet.StateEntry) {
	m := d.lastState[node]
	if m == nil {
		m = make(map[packet.FlowID]uint32)
		d.lastState[node] = m
	}
	for _, e := range entries {
		if e.Version > m[e.Flow] {
			m[e.Flow] = e.Version
		}
	}
	if up := d.state.Update; up != nil && !up.Completed {
		for _, e := range entries {
			if uint32(e.Flow) == up.Flow && e.Version == up.Version {
				d.recordAck(node)
				d.sys.Net.OnApply(node, e.Flow, e.Version)
			}
		}
	}
	if !d.synced {
		d.trySync()
	}
}

// recordAck write-ahead-persists one switch's ack of the in-flight
// update.
func (d *ControllerDaemon) recordAck(node topo.NodeID) {
	up := d.state.Update
	for _, n := range up.Acked {
		if topo.NodeID(n) == node {
			return
		}
	}
	up.Acked = append(up.Acked, int32(node))
	d.persist()
}

// trySync checks the barrier: every switch on every flow's committed
// path has reported that flow at (at least) its committed version.
func (d *ControllerDaemon) trySync() {
	for _, spec := range d.state.Flows {
		for _, n := range spec.Path {
			if d.lastState[topo.NodeID(n)][packet.FlowID(spec.Flow)] < spec.Version {
				return
			}
		}
	}
	d.synced = true
	d.onSynced()
}

// onSynced fires once the fabric agrees with the persisted committed
// state: first incarnation triggers the scenario update; a restarted
// incarnation resends only the still-unacknowledged indications.
func (d *ControllerDaemon) onSynced() {
	defer d.pushedOnce.Do(func() { close(d.pushedCh) })
	scn := d.cfg.Scn
	ctl := d.sys.Ctl
	switch {
	case d.state.Update == nil:
		f := scn.Flow()
		rec, ok := ctl.Flow(f)
		if !ok {
			return
		}
		// Write the intent ahead of the first UIM: a crash between
		// persist and send replays as "resend everything unacked".
		d.state.Update = &updateIntent{
			Flow:    uint32(f),
			Version: rec.Version + 1,
			OldPath: toWire(rec.Path),
			NewPath: toWire(scn.NewPath),
		}
		d.persist()
		u, err := ctl.TriggerUpdate(f, scn.NewPath, scn.Force())
		if err != nil {
			return
		}
		d.u, d.plan = u, u.Plan
	case !d.state.Update.Completed && d.u != nil && !d.u.Done():
		for i, tgt := range d.plan.Targets {
			if d.u.Pending(tgt) {
				d.sys.Net.SendToSwitch(tgt, d.plan.UIMs[i], 0)
			}
		}
	case d.state.Update.Completed:
		d.doneOnce.Do(func() { close(d.doneCh) })
	}
}

// persist writes the controller record.
func (d *ControllerDaemon) persist() error {
	if d.cfg.StateFile == "" {
		return nil
	}
	return saveJSON(d.cfg.StateFile, d.state)
}

func toWire(p []topo.NodeID) []int32 {
	out := make([]int32, len(p))
	for i, n := range p {
		out[i] = int32(n)
	}
	return out
}

func fromWire(p []int32) []topo.NodeID {
	out := make([]topo.NodeID, len(p))
	for i, n := range p {
		out[i] = topo.NodeID(n)
	}
	return out
}
