package deploy

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/transport"
	"p4update/internal/wiring"
)

// SwitchConfig configures one switchd process.
type SwitchConfig struct {
	// Node is the switch this process owns.
	Node topo.NodeID
	Scn  Scenario
	// Conn is the pre-bound UDP socket (daemons bind their conventional
	// port; tests bind 127.0.0.1:0 and exchange real addresses).
	Conn *net.UDPConn
	// Peers is the fabric address book (see PeerAddrs).
	Peers map[int32]string
	// StateFile persists the last-known-good rules and the restart
	// epoch; empty disables persistence.
	StateFile string
	// RTO overrides the retransmission timeout (default 100ms).
	RTO time.Duration
	// OnDeliver, when set, observes local data-packet delivery (test
	// hook; called with the engine lock held — don't call back in).
	OnDeliver func(d *packet.Data)
}

// lkgRule is one persisted last-known-good forwarding rule.
type lkgRule struct {
	Flow     uint32 `json:"flow"`
	Port     int32  `json:"port"`
	Version  uint32 `json:"version"`
	Distance uint16 `json:"distance"`
	SizeK    uint32 `json:"size_k"`
}

// switchState is the switchd persistence record.
type switchState struct {
	Epoch uint32    `json:"epoch"`
	Rules []lkgRule `json:"rules"`
}

// SwitchDaemon runs one switch's unmodified core verification logic
// (via the full wiring.System) as a real process. On startup it bumps
// its transport epoch, restores last-known-good committed rules, and
// keeps forwarding regardless of controller liveness; every local rule
// commit is persisted and acknowledged upstream with a VerbState frame
// (idempotent — the same frame answers restart re-sync hellos).
type SwitchDaemon struct {
	cfg   SwitchConfig
	epoch uint32

	host *Host
	sys  *wiring.System
	sw   *dataplane.Switch
	udp  *transport.UDP
	ep   *transport.Endpoint
}

// NewSwitch builds a switch daemon; Start launches it.
func NewSwitch(cfg SwitchConfig) (*SwitchDaemon, error) {
	var st switchState
	if err := loadJSON(cfg.StateFile, &st); err != nil {
		return nil, fmt.Errorf("deploy: switchd %d: %w", cfg.Node, err)
	}
	g, err := cfg.Scn.Topology()
	if err != nil {
		return nil, err
	}
	d := &SwitchDaemon{cfg: cfg, epoch: st.Epoch + 1}

	view := &wireView{self: cfg.Node}
	d.sys = wiring.New(g, cfg.Scn.wiringCfg(view))
	d.sw = d.sys.Net.Switch(cfg.Node)
	d.host = NewHost(d.sys.Eng)

	d.udp, d.ep, err = newWire(cfg.Conn, cfg.Peers, int32(cfg.Node), d.epoch, cfg.RTO, d.handle)
	if err != nil {
		return nil, err
	}
	view.send = func(to int32, f *packet.Frame) { d.ep.Send(to, f, d.udp.Now()) }

	// Bootstrap: reinstall last-known-good rules, then immediately
	// persist the bumped epoch so a crash loop keeps advancing it.
	for _, r := range st.Rules {
		d.sw.InstallInitialRule(packet.FlowID(r.Flow), topo.PortID(r.Port),
			r.Version, r.Distance, r.SizeK)
	}
	if err := d.persist(); err != nil {
		return nil, err
	}

	// The replica controller wired into every process must stay silent
	// here: local commits persist and ack upstream instead.
	d.sys.Net.OnApply = func(node topo.NodeID, f packet.FlowID, version uint32) {
		if node != cfg.Node {
			return
		}
		d.persist()
		d.ep.Send(int32(transport.ControllerPeer), &packet.Frame{
			Verb:    packet.VerbState,
			InPort:  packet.NoPort,
			Payload: packet.AppendState(nil, []packet.StateEntry{{Flow: f, Version: version}}),
		}, d.udp.Now())
	}
	d.sys.Net.OnDeliver = func(node topo.NodeID, dp *packet.Data) {
		if node == cfg.Node && cfg.OnDeliver != nil {
			cfg.OnDeliver(dp)
		}
	}
	return d, nil
}

// Node returns the owned switch ID.
func (d *SwitchDaemon) Node() topo.NodeID { return d.cfg.Node }

// Epoch returns this incarnation's transport epoch.
func (d *SwitchDaemon) Epoch() uint32 { return d.epoch }

// Start launches the transport and the real-time engine pump.
func (d *SwitchDaemon) Start() {
	d.udp.Start(d.ep, tickFor(d.cfg.RTO))
	d.host.Start()
}

// Stop halts the transport and pump (rules and state stay on disk).
func (d *SwitchDaemon) Stop() {
	d.udp.Close()
	d.host.Stop()
}

// WriteTrace dumps the flight recording as JSONL.
func (d *SwitchDaemon) WriteTrace(w io.Writer) error {
	var err error
	d.host.Do(func() { err = d.sys.Trace.WriteJSONL(w) })
	return err
}

// Inject feeds a data packet into the owned switch's pipeline (test
// hook standing in for an attached host).
func (d *SwitchDaemon) Inject(dp *packet.Data) {
	d.host.Do(func() { d.sw.InjectData(dp) })
}

// FlowVersion reports the committed version of f at the owned switch.
func (d *SwitchDaemon) FlowVersion(f packet.FlowID) (version uint32, ok bool) {
	d.host.Do(func() {
		if st, have := d.sw.PeekState(f); have && st.HasRule {
			version, ok = st.NewVersion, true
		}
	})
	return version, ok
}

// handle is the transport upcall; every branch runs inside host.Do.
func (d *SwitchDaemon) handle(peer int32, f *packet.Frame) {
	d.host.Do(func() {
		switch f.Verb {
		case packet.VerbMsg:
			d.sw.Receive(f.Payload, rxPort(f))
		case packet.VerbHello:
			d.sendState()
		case packet.VerbSnapshot:
			snap, err := packet.ParseSnapshot(f.Payload)
			if err != nil {
				return
			}
			d.applySnapshot(snap)
			d.sendState()
		case packet.VerbProbe:
			flow, ver, err := packet.ParseProbe(f.Payload)
			if err != nil {
				return
			}
			d.sw.InjectData(&packet.Data{Flow: flow, TTL: 64, Probe: true, ProbeVersion: ver})
		}
	})
}

// applySnapshot adopts a controller plan entry the switch has not
// caught up to; an equal-or-newer committed rule wins (last-known-good
// survives a controller pushing stale state).
func (d *SwitchDaemon) applySnapshot(s packet.SnapshotFlow) {
	if st, ok := d.sw.PeekState(s.Flow); ok && st.HasRule && st.NewVersion >= s.Version {
		return
	}
	path := make([]topo.NodeID, len(s.Path))
	for i, n := range s.Path {
		path[i] = topo.NodeID(n)
	}
	d.sys.Net.InstallPath(s.Flow, path, s.Version, s.SizeK)
	d.persist()
}

// committed snapshots the owned switch's committed rules, sorted by
// flow for deterministic frames and state files.
func (d *SwitchDaemon) committed() []lkgRule {
	flows := d.sw.Flows()
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	var out []lkgRule
	for _, f := range flows {
		st, ok := d.sw.PeekState(f)
		if !ok || !st.HasRule {
			continue
		}
		out = append(out, lkgRule{
			Flow:     uint32(f),
			Port:     int32(st.EgressPort),
			Version:  st.NewVersion,
			Distance: st.NewDistance,
			SizeK:    st.FlowSizeK,
		})
	}
	return out
}

// sendState reports all committed (flow, version) pairs upstream.
func (d *SwitchDaemon) sendState() {
	rules := d.committed()
	entries := make([]packet.StateEntry, len(rules))
	for i, r := range rules {
		entries[i] = packet.StateEntry{Flow: packet.FlowID(r.Flow), Version: r.Version}
	}
	d.ep.Send(int32(transport.ControllerPeer), &packet.Frame{
		Verb:    packet.VerbState,
		InPort:  packet.NoPort,
		Payload: packet.AppendState(nil, entries),
	}, d.udp.Now())
}

// persist writes the last-known-good record (epoch + committed rules).
func (d *SwitchDaemon) persist() error {
	if d.cfg.StateFile == "" {
		return nil
	}
	return saveJSON(d.cfg.StateFile, switchState{Epoch: d.epoch, Rules: d.committed()})
}

// tickFor derives the retransmit-ticker cadence from the RTO.
func tickFor(rto time.Duration) time.Duration {
	if rto <= 0 {
		return 25 * time.Millisecond
	}
	return rto / 4
}

// loadJSON reads a persistence record; a missing file (or empty path)
// leaves the zero value.
func loadJSON(path string, v any) error {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// saveJSON writes a persistence record atomically (tmp + rename).
func saveJSON(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
