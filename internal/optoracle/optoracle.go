// Package optoracle implements an offline Černý-style optimal update
// scheduler (arXiv 1607.05159): given the old and new path of a flow it
// computes, ahead of time, the minimal sequence of maximal update
// rounds such that after every round the flow's forwarding state is
// loop- and blackhole-free for the controller's confirmed view — the
// same safety model the Central baseline evaluates online. The schedule
// length is a lower bound on the rounds any confirmed-view-consistent
// executor needs for that path pair, so every trial can be scored with
// an optimality gap (measured rounds / oracle rounds).
//
// The oracle also runs as an executable system: an idealized round
// executor with zero controller processing and queuing delay that ships
// each precomputed batch, waits for its acknowledgements, and sends the
// next — useful to sanity-check the bound against a live execution.
//
// Greedy maximal batching is optimal within this model in the practical
// sense proven here: the deepest not-yet-updated changed node on the
// new path is always safe (its new-rule suffix walk runs through
// already-updated or unchanged nodes straight to the egress), so every
// round makes progress and the schedule terminates in at most
// len(changed) rounds; and no schedule can beat it on the instances the
// evaluation generates, which the tests enforce per trial by asserting
// oracle rounds ≤ every system's measured rounds.
package optoracle

import (
	"fmt"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Schedule computes the minimal-round batch schedule moving oldPath to
// newPath under the confirmed-view safety model: a node may update in a
// round when walking its new next hop through the end-of-round view
// reaches the egress without a loop or a rule-less node. Returned
// batches list nodes deepest-first (downstream to upstream).
func Schedule(oldPath, newPath []topo.NodeID) [][]topo.NodeID {
	if len(newPath) == 0 {
		return nil
	}
	egress := newPath[len(newPath)-1]
	newNext := make(map[topo.NodeID]topo.NodeID, len(newPath))
	for i := 0; i+1 < len(newPath); i++ {
		newNext[newPath[i]] = newPath[i+1]
	}
	// view is the confirmed next hop per node (terminal modeled as the
	// node mapping to itself); nodes absent from view have no rule.
	view := make(map[topo.NodeID]topo.NodeID, len(oldPath)+len(newPath))
	for i := 0; i+1 < len(oldPath); i++ {
		view[oldPath[i]] = oldPath[i+1]
	}
	if len(oldPath) > 0 {
		last := oldPath[len(oldPath)-1]
		view[last] = last
	}
	view[egress] = egress

	done := make(map[topo.NodeID]bool, len(newPath))
	changed := 0
	for i := len(newPath) - 2; i >= 0; i-- {
		n := newPath[i]
		if v, ok := view[n]; ok && v == newPath[i+1] {
			done[n] = true
		} else {
			changed++
		}
	}
	done[egress] = true

	safe := func(n topo.NodeID, target topo.NodeID) bool {
		seen := map[topo.NodeID]bool{n: true}
		cur := target
		for {
			if cur == n || seen[cur] {
				return false // loop
			}
			seen[cur] = true
			nxt, ok := view[cur]
			if !ok {
				return false // blackhole
			}
			if nxt == cur {
				return true // terminal
			}
			cur = nxt
		}
	}

	var batches [][]topo.NodeID
	for changed > 0 {
		var batch []topo.NodeID
		for i := len(newPath) - 2; i >= 0; i-- {
			n := newPath[i]
			if done[n] {
				continue
			}
			target := newPath[i+1]
			if _, hasRule := view[n]; !hasRule || safe(n, target) {
				batch = append(batch, n)
			}
		}
		if len(batch) == 0 {
			// Unreachable under the progress argument above; bail rather
			// than loop forever if the model is ever extended.
			break
		}
		for _, n := range batch {
			i := indexOf(newPath, n)
			view[n] = newPath[i+1]
			done[n] = true
			changed--
		}
		batches = append(batches, batch)
	}
	return batches
}

func indexOf(path []topo.NodeID, n topo.NodeID) int {
	for i, p := range path {
		if p == n {
			return i
		}
	}
	return -1
}

// Rounds returns the oracle's lower bound on update rounds for the path
// pair (0 when nothing changes).
func Rounds(oldPath, newPath []topo.NodeID) int {
	return len(Schedule(oldPath, newPath))
}

// RoundsCached memoizes Rounds through p under an 'o'-prefixed key (the
// schedule is flow-independent); a nil planner computes directly.
func RoundsCached(p controlplane.Planner, t *topo.Topology, oldPath, newPath []topo.NodeID) int {
	return len(ScheduleCached(p, t, oldPath, newPath))
}

// ScheduleCached returns the memoized schedule (shared, immutable); a
// nil planner computes directly.
func ScheduleCached(p controlplane.Planner, t *topo.Topology, oldPath, newPath []topo.NodeID) [][]topo.NodeID {
	if p == nil {
		return Schedule(oldPath, newPath)
	}
	var k controlplane.KeyBuf
	k.U8('o')
	k.Path(oldPath)
	k.Path(newPath)
	v, _ := p.Memo(t, k.String(), func() (any, error) {
		return Schedule(oldPath, newPath), nil
	})
	batches, _ := v.([][]topo.NodeID)
	return batches
}

// Handler is the oracle's data-plane agent: a plain SDN switch that
// applies and acknowledges round instructions. Duplicate same-version
// instructions re-acknowledge so lost acks cannot stall a round.
type Handler struct{}

var _ dataplane.Handler = (*Handler)(nil)

// HandleUIM applies the instruction after the install delay and ACKs.
func (h *Handler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}
	if st.HasRule && m.Version <= st.NewVersion {
		if m.Version == st.NewVersion {
			sw.SendUFM(&packet.UFM{
				Flow: m.Flow, Version: m.Version, Status: packet.StatusUpdated,
			})
		}
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Version, 0, 0)
		return
	}
	newPort := dataplane.PortLocal
	if m.EgressPort != packet.NoPort {
		newPort = topo.PortID(int32(m.EgressPort))
	}
	sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyOracle,
		uint32(m.Flow), m.Version, uint32(int32(newPort)), 0)
	portChanged := !st.HasRule || st.EgressPort != newPort
	cp := *m
	sw.Apply(portChanged, func() {
		if sw.CommitState(cp.Flow, dataplane.Commit{
			Port:        newPort,
			Version:     cp.Version,
			Distance:    cp.NewDistance,
			OldVersion:  st.NewVersion,
			OldDistance: st.NewDistance,
			SizeK:       cp.FlowSizeK,
			Type:        packet.UpdateSingle,
		}) {
			sw.SendUFM(&packet.UFM{
				Flow: cp.Flow, Version: cp.Version, Status: packet.StatusUpdated,
			})
		}
	})
}

// HandleUNM is unused by the oracle.
func (h *Handler) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {}

// Coordinator executes precomputed schedules round by round with zero
// controller overhead (the idealized executor the bound is defined
// against).
type Coordinator struct {
	Ctl *controlplane.Controller
	// Plans, when set, memoizes schedules across trials that share a
	// frozen topology.
	Plans controlplane.Planner
	// TotalRounds accumulates scheduled rounds across every triggered
	// update (reported via the wiring metrics hook).
	TotalRounds uint64

	runs map[runKey]*run
}

type runKey struct {
	flow    packet.FlowID
	version uint32
}

type run struct {
	batches [][]topo.NodeID
	idx     int
	pending map[topo.NodeID]bool
	uims    map[topo.NodeID]*packet.UIM
}

// NewCoordinator wires the oracle executor over the shared tracker.
func NewCoordinator(ctl *controlplane.Controller) *Coordinator {
	c := &Coordinator{Ctl: ctl, runs: make(map[runKey]*run)}
	prev := ctl.OnUFM
	ctl.OnUFM = func(u packet.UFM) {
		if prev != nil {
			prev(u)
		}
		c.onUFM(u)
	}
	return c
}

// TriggerUpdate executes the precomputed optimal schedule for f.
func (c *Coordinator) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	rec, ok := c.Ctl.Flow(f)
	if !ok {
		return nil, fmt.Errorf("optoracle: unknown flow %d", f)
	}
	if err := c.Ctl.Topo.ValidatePath(newPath); err != nil {
		return nil, fmt.Errorf("optoracle: new path: %w", err)
	}
	version := rec.Version + 1
	oldPath := rec.Path
	t := c.Ctl.Topo
	batches := ScheduleCached(c.Plans, t, oldPath, newPath)

	var pendingNodes []topo.NodeID
	for _, b := range batches {
		pendingNodes = append(pendingNodes, b...)
	}
	u := c.Ctl.TrackOnly(f, version, oldPath, newPath, pendingNodes, rec)
	if len(pendingNodes) == 0 {
		// Nothing to move: the update is trivially complete.
		u.Completed = c.Ctl.Eng.Now()
		return u, nil
	}
	c.TotalRounds += uint64(len(batches))

	L := len(newPath)
	idx := make(map[topo.NodeID]int, L)
	for i, n := range newPath {
		idx[n] = i
	}
	r := &run{batches: batches, pending: make(map[topo.NodeID]bool),
		uims: make(map[topo.NodeID]*packet.UIM, len(pendingNodes))}
	for _, n := range pendingNodes {
		i := idx[n]
		m := &packet.UIM{
			Flow: f, Version: version,
			NewDistance: uint16(L - 1 - i),
			EgressPort:  packet.NoPort,
			ChildPort:   packet.NoPort,
			FlowSizeK:   rec.SizeK,
			UpdateType:  packet.UpdateSingle,
		}
		if i+1 < L {
			m.EgressPort = uint16(t.PortTo(n, newPath[i+1]))
		}
		r.uims[n] = m
	}
	c.runs[runKey{f, version}] = r
	u.Resend = func() { c.resendRound(f, version, r) }
	c.sendRound(f, version, r)
	return u, nil
}

// sendRound ships the current batch.
func (c *Coordinator) sendRound(f packet.FlowID, version uint32, r *run) {
	batch := r.batches[r.idx]
	c.Ctl.Eng.Trace.Round(uint32(f), version, uint32(len(batch)))
	for _, n := range batch {
		r.pending[n] = true
		c.Ctl.Net.SendToSwitch(n, r.uims[n], 0)
	}
}

// resendRound re-sends the current batch's outstanding instructions
// (recovery; applied nodes re-ack).
func (c *Coordinator) resendRound(f packet.FlowID, version uint32, r *run) {
	if r.idx >= len(r.batches) {
		return
	}
	for _, n := range r.batches[r.idx] {
		if r.pending[n] {
			c.Ctl.Net.SendToSwitch(n, r.uims[n], 0)
		}
	}
}

// onUFM advances the schedule on per-node acknowledgements.
func (c *Coordinator) onUFM(m packet.UFM) {
	if m.Status != packet.StatusUpdated {
		return
	}
	key := runKey{m.Flow, m.Version}
	r, ok := c.runs[key]
	if !ok {
		return
	}
	node := topo.NodeID(m.Node)
	if !r.pending[node] {
		return
	}
	delete(r.pending, node)
	if len(r.pending) > 0 {
		return
	}
	r.idx++
	if r.idx < len(r.batches) {
		c.sendRound(m.Flow, m.Version, r)
		return
	}
	delete(c.runs, key)
}
