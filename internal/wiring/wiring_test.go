package wiring

import (
	"testing"
	"time"

	"p4update/internal/topo"
)

func TestStrategyString(t *testing.T) {
	cases := []struct {
		s    Strategy
		want string
	}{
		{Auto, "p4update-auto"},
		{SingleLayer, "p4update-sl"},
		{DualLayer, "p4update-dl"},
		{EZSegway, "ez-segway"},
		{Central, "central"},
		{Strategy(42), "unknown"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(c.s), got, c.want)
		}
	}
}

func TestNewWiresStrategySpecificControllers(t *testing.T) {
	cases := []struct {
		strategy       Strategy
		wantEZ, wantCO bool
	}{
		{Auto, false, false},
		{SingleLayer, false, false},
		{DualLayer, false, false},
		{EZSegway, true, false},
		{Central, false, true},
	}
	for _, c := range cases {
		sys := New(topo.Synthetic(), Config{Seed: 1, Strategy: c.strategy})
		if sys.Eng == nil || sys.Net == nil || sys.Ctl == nil {
			t.Fatalf("%v: incomplete system", c.strategy)
		}
		if (sys.EZ != nil) != c.wantEZ || (sys.CO != nil) != c.wantCO {
			t.Errorf("%v: EZ=%v CO=%v, want EZ=%v CO=%v",
				c.strategy, sys.EZ != nil, sys.CO != nil, c.wantEZ, c.wantCO)
		}
	}
}

// TestTriggerCompletesUnderEveryStrategy drives one full update through
// each strategy's dispatch path — the single wiring-level switch that
// replaced the per-caller copies.
func TestTriggerCompletesUnderEveryStrategy(t *testing.T) {
	oldP, newP := topo.SyntheticPaths()
	for _, s := range []Strategy{Auto, SingleLayer, DualLayer, EZSegway, Central} {
		sys := New(topo.Synthetic(), Config{
			Seed:          1,
			Strategy:      s,
			MaxEvents:     5_000_000,
			CtrlProcDelay: 500 * time.Microsecond,
		})
		f, err := sys.Ctl.RegisterFlow(0, 7, oldP, 1000)
		if err != nil {
			t.Fatalf("%v: register: %v", s, err)
		}
		u, err := sys.Trigger(f, newP)
		if err != nil {
			t.Fatalf("%v: trigger: %v", s, err)
		}
		if u == nil {
			t.Fatalf("%v: nil status", s)
		}
		sys.Eng.Run()
		if !u.Done() {
			t.Errorf("%v: update did not complete", s)
		}
	}
}

func TestTriggerUnknownStrategyErrors(t *testing.T) {
	sys := New(topo.Synthetic(), Config{Seed: 1, Strategy: Strategy(42)})
	oldP, _ := topo.SyntheticPaths()
	f, err := sys.Ctl.RegisterFlow(0, 7, oldP, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Trigger(f, oldP); err == nil {
		t.Fatal("unknown strategy did not error")
	}
}
