package wiring

import (
	"time"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// RoundTracker measures per-update "rounds" uniformly across systems:
// the number of distinct virtual instants at which the update's pending
// new-path nodes committed. Grouping any consistent execution's commits
// by instant yields a valid round schedule, so the count is directly
// comparable to — and never below — the OptOracle schedule bound for
// the same path pair.
type RoundTracker struct {
	now func() time.Duration
	m   map[roundKey][]time.Duration
}

type roundKey struct {
	flow    packet.FlowID
	version uint32
}

// attachRoundTracker wraps the network's apply observer; the wrapper
// runs before the controller's own completion tracking so the pending
// check still sees the node as outstanding.
func attachRoundTracker(s *System) *RoundTracker {
	rt := &RoundTracker{now: s.Eng.Now, m: make(map[roundKey][]time.Duration)}
	ctl := s.Ctl
	prev := s.Net.OnApply
	s.Net.OnApply = func(node topo.NodeID, f packet.FlowID, version uint32) {
		if u, ok := ctl.Status(f, version); ok && u.Pending(node) {
			rt.observe(f, version, rt.now())
		}
		if prev != nil {
			prev(node, f, version)
		}
	}
	return rt
}

func (rt *RoundTracker) observe(f packet.FlowID, version uint32, at time.Duration) {
	k := roundKey{f, version}
	s := rt.m[k]
	if len(s) == 0 || s[len(s)-1] != at {
		rt.m[k] = append(s, at)
	}
}

// Rounds returns the number of distinct commit instants observed for
// (f, version) — 0 when the update had no pending nodes.
func (rt *RoundTracker) Rounds(f packet.FlowID, version uint32) int {
	return len(rt.m[roundKey{f, version}])
}
