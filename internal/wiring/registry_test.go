package wiring

import (
	"testing"

	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// build wires a Fig-1 testbed for the named system and registers the
// synthetic flow on its old path.
func buildNamed(t *testing.T, name string, topt *trace.Options) (*System, packet.FlowID, []topo.NodeID) {
	t.Helper()
	g := topo.Synthetic()
	sys := New(g, Config{Seed: 1, System: name, MaxEvents: 5_000_000, Trace: topt})
	oldP, newP := topo.SyntheticPaths()
	f, err := sys.Ctl.RegisterFlow(oldP[0], oldP[len(oldP)-1], oldP, 1000)
	if err != nil {
		t.Fatalf("%s: register: %v", name, err)
	}
	return sys, f, newP
}

// TestRegistryNames pins the registration order (the figures' series
// order) and the primary/variant split.
func TestRegistryNames(t *testing.T) {
	wantPrimary := []string{"p4update", "ez-segway", "central", "local-verify", "ppcu", "opt-oracle"}
	got := Names()
	if len(got) != len(wantPrimary) {
		t.Fatalf("Names() = %v, want %v", got, wantPrimary)
	}
	for i, n := range wantPrimary {
		if got[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], n)
		}
	}
	all := AllNames()
	if len(all) != len(wantPrimary)+2 {
		t.Fatalf("AllNames() = %v, want primaries + 2 variants", all)
	}
	for _, v := range []string{"p4update-sl", "p4update-dl"} {
		if _, ok := Lookup(v); !ok {
			t.Fatalf("variant %q not registered", v)
		}
	}
}

// TestEveryRegisteredSystemCompletesTraced drives every registered
// system — primaries and variants — through the Fig-1 single-flow
// update with a flight recorder attached: the update must complete and
// the recorder must have captured protocol events. This is the
// registry-level analogue of the core decision-coverage test: a system
// whose handler or coordinator breaks under tracing fails here by name.
func TestEveryRegisteredSystemCompletesTraced(t *testing.T) {
	for _, name := range AllNames() {
		t.Run(name, func(t *testing.T) {
			sys, f, newP := buildNamed(t, name, &trace.Options{})
			u, err := sys.Trigger(f, newP)
			if err != nil {
				t.Fatalf("trigger: %v", err)
			}
			sys.Eng.Run()
			if u == nil || !u.Done() {
				t.Fatalf("update did not complete under %s", name)
			}
			if sys.Trace == nil || sys.Trace.Recorded() == 0 {
				t.Fatalf("%s: traced run recorded no events", name)
			}
		})
	}
}

// TestEveryRegisteredSystemZeroAllocDataPathUntraced guards the
// zero-overhead contract at the registry level: after a completed
// update, steady-state data forwarding through each system's handler
// must not allocate when no recorder is attached. The injected packet
// is reused across iterations (InjectData does not take ownership; the
// fabric forwards pooled copies).
func TestEveryRegisteredSystemZeroAllocDataPathUntraced(t *testing.T) {
	for _, name := range AllNames() {
		t.Run(name, func(t *testing.T) {
			sys, f, newP := buildNamed(t, name, nil)
			if sys.Trace != nil {
				t.Fatal("untraced system unexpectedly carries a recorder")
			}
			u, err := sys.Trigger(f, newP)
			if err != nil {
				t.Fatalf("trigger: %v", err)
			}
			sys.Eng.Run()
			if u == nil || !u.Done() {
				t.Fatalf("update did not complete under %s", name)
			}
			ingress := newP[0]
			sw := sys.Net.Switch(ingress)
			d := &packet.Data{Flow: f, TTL: 64}
			var seq uint32
			// Warm the pools and the engine's event storage before measuring.
			for i := 0; i < 64; i++ {
				seq++
				d.Flow, d.Seq, d.TTL, d.Tag = f, seq, 64, 0
				sw.InjectData(d)
				sys.Eng.Run()
			}
			allocs := testing.AllocsPerRun(500, func() {
				seq++
				d.Flow, d.Seq, d.TTL, d.Tag = f, seq, 64, 0
				sw.InjectData(d)
				sys.Eng.Run()
			})
			if allocs != 0 {
				t.Errorf("%s: untraced data path allocates %.1f/op, want 0", name, allocs)
			}
		})
	}
}
