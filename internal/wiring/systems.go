package wiring

import (
	"time"

	"p4update/internal/central"
	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/ezsegway"
	"p4update/internal/localverify"
	"p4update/internal/optoracle"
	"p4update/internal/packet"
	"p4update/internal/ppcu"
	"p4update/internal/topo"
)

var (
	forceSingle = packet.UpdateSingle
	forceDual   = packet.UpdateDual
)

func init() {
	// Registration order is the default evaluation order (and the
	// figures' series order): the paper's system first, then its two
	// published baselines, then the systems added on top.
	Register(&p4updateSystem{name: "p4update", display: "P4Update"})
	RegisterVariant(&p4updateSystem{name: "p4update-sl", display: "P4Update/SL", force: &forceSingle})
	RegisterVariant(&p4updateSystem{name: "p4update-dl", display: "P4Update/DL", force: &forceDual})
	Register(&ezSegwaySystem{})
	Register(&centralSystem{})
	Register(&localVerifySystem{})
	Register(&ppcuSystem{})
	Register(&optOracleSystem{})
}

// p4updateSystem adapts the paper's protocol (internal/core +
// controlplane) to the registry; the variants pin the update layer the
// §7.5 policy would otherwise choose.
type p4updateSystem struct {
	name, display string
	force         *packet.UpdateType
}

func (p *p4updateSystem) Name() string        { return p.name }
func (p *p4updateSystem) DisplayName() string { return p.display }

func (p *p4updateSystem) Build(s *System) {
	s.Net.SetHandler(&core.Protocol{
		Congestion:      s.Cfg.Congestion,
		AllowChainedDL:  s.Cfg.ChainedDL,
		WatchdogTimeout: s.Cfg.WatchdogTimeout,
		MaxStallReports: s.Cfg.MaxStallReports,
	})
}

func (p *p4updateSystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.Ctl.TriggerUpdate(f, newPath, p.force)
}

// ezSegwaySystem adapts the decentralized ez-Segway baseline.
type ezSegwaySystem struct{}

func (*ezSegwaySystem) Name() string        { return "ez-segway" }
func (*ezSegwaySystem) DisplayName() string { return "ez-Segway" }

func (*ezSegwaySystem) Build(s *System) {
	s.Net.SetHandler(&ezsegway.Handler{Congestion: s.Cfg.Congestion})
	s.EZ = ezsegway.NewController(s.Ctl)
	s.EZ.Congestion = s.Cfg.Congestion
	if s.Cfg.Plans != nil {
		s.EZ.Plans = s.Cfg.Plans
	}
}

func (*ezSegwaySystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.EZ.TriggerUpdate(f, newPath)
}

// centralSystem adapts the centralized dependency-graph baseline.
type centralSystem struct{}

func (*centralSystem) Name() string        { return "central" }
func (*centralSystem) DisplayName() string { return "Central" }

func (*centralSystem) Build(s *System) {
	s.Net.SetHandler(&central.Handler{})
	s.CO = central.NewCoordinator(s.Ctl, s.Cfg.CtrlProcDelay)
	s.CO.Congestion = s.Cfg.Congestion
	// The controller also serves path setup and monitoring traffic;
	// every message queues behind it (§9.1, Jarschel et al.).
	if s.Cfg.CtrlQueueMean > 0 {
		rng := s.Eng.Rand()
		mean := float64(s.Cfg.CtrlQueueMean)
		s.CO.QueueDelay = func() time.Duration {
			return time.Duration(rng.ExpFloat64() * mean)
		}
	}
}

func (*centralSystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.CO.TriggerUpdate(f, newPath)
}

func (*centralSystem) ReportMetrics(s *System, extra map[string]float64) {
	extra["ctl_rounds"] = float64(s.CO.TotalRounds)
}

// localVerifySystem adapts the Foerster & Schmid-style decentralized
// local-verification scheduler.
type localVerifySystem struct{}

func (*localVerifySystem) Name() string        { return "local-verify" }
func (*localVerifySystem) DisplayName() string { return "LocalVerify" }

func (*localVerifySystem) Build(s *System) {
	s.Net.SetHandler(&localverify.Handler{Congestion: s.Cfg.Congestion})
	s.LV = localverify.NewController(s.Ctl)
	if s.Cfg.Plans != nil {
		s.LV.Plans = s.Cfg.Plans
	}
}

func (*localVerifySystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.LV.TriggerUpdate(f, newPath)
}

// ppcuSystem adapts the two-phase per-packet-consistency baseline. It
// turns on the data plane's version-tag fallback on every switch — the
// mechanism its phase flip relies on.
type ppcuSystem struct{}

func (*ppcuSystem) Name() string        { return "ppcu" }
func (*ppcuSystem) DisplayName() string { return "PPCU" }

func (*ppcuSystem) Build(s *System) {
	s.Net.SetHandler(&ppcu.Handler{Congestion: s.Cfg.Congestion})
	for _, sw := range s.Net.Switches() {
		sw.TwoPhase = true
	}
	s.PP = ppcu.NewCoordinator(s.Ctl)
}

func (*ppcuSystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.PP.TriggerUpdate(f, newPath)
}

func (*ppcuSystem) ReportMetrics(s *System, extra map[string]float64) {
	extra["phase_flips"] = float64(s.PP.Flips)
}

// optOracleSystem adapts the offline optimal scheduler's idealized
// executor.
type optOracleSystem struct{}

func (*optOracleSystem) Name() string        { return "opt-oracle" }
func (*optOracleSystem) DisplayName() string { return "OptOracle" }

func (*optOracleSystem) Build(s *System) {
	s.Net.SetHandler(&optoracle.Handler{})
	s.OO = optoracle.NewCoordinator(s.Ctl)
	if s.Cfg.Plans != nil {
		s.OO.Plans = s.Cfg.Plans
	}
}

func (*optOracleSystem) Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	return s.OO.TriggerUpdate(f, newPath)
}

func (*optOracleSystem) ReportMetrics(s *System, extra map[string]float64) {
	extra["opt_rounds"] = float64(s.OO.TotalRounds)
}
