package wiring

import (
	"fmt"
	"sort"
	"sync"

	"p4update/internal/controlplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// UpdateSystem is one pluggable consistent-update system. Implementations
// register themselves (Register / RegisterVariant) and are resolved by
// name at construction time; adding a system to the evaluation means
// registering it here — no enum, no construction switch, no hardcoded
// experiment lists.
type UpdateSystem interface {
	// Name is the registry key ("p4update", "ez-segway", ...).
	Name() string
	// DisplayName is the human-readable label used in tables and plots.
	DisplayName() string
	// Build wires the system's data-plane handler and controller glue
	// into a freshly constructed System: the engine, fabric, control
	// placement and tracking controller exist; install delays, fault
	// injection and auditors attach afterwards. Build must not run
	// events or draw from the engine RNG.
	Build(s *System)
	// Trigger starts a consistent update of f to newPath.
	Trigger(s *System, f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error)
}

// MetricsReporter is an optional UpdateSystem extension: systems with
// per-run extras (Central's dependency rounds, OptOracle's scheduled
// rounds, ...) report them into the trial's generic Extra map after the
// run, keeping runner metrics schema-stable as systems are added.
type MetricsReporter interface {
	ReportMetrics(s *System, extra map[string]float64)
}

var (
	regMu     sync.RWMutex
	registry  = make(map[string]UpdateSystem)
	primaries []string
)

// Register adds a primary system to the registry: it is resolvable by
// Lookup and listed by Names, so experiment grids iterate it by
// default. Registration order is the default evaluation order. Panics
// on a duplicate name.
func Register(sys UpdateSystem) {
	register(sys, true)
}

// RegisterVariant adds a lookup-only variant (e.g. the forced
// single/dual-layer P4Update modes): resolvable by name but not part of
// the default Names list.
func RegisterVariant(sys UpdateSystem) {
	register(sys, false)
}

func register(sys UpdateSystem, primary bool) {
	regMu.Lock()
	defer regMu.Unlock()
	name := sys.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("wiring: duplicate update system %q", name))
	}
	registry[name] = sys
	if primary {
		primaries = append(primaries, name)
	}
}

// Lookup resolves a registered system by name.
func Lookup(name string) (UpdateSystem, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sys, ok := registry[name]
	return sys, ok
}

// Names lists the primary systems in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(primaries))
	copy(out, primaries)
	return out
}

// AllNames lists every registered name, primaries first (registration
// order) followed by variants (sorted) — for "available systems" error
// messages.
func AllNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(primaries))
	copy(out, primaries)
	isPrimary := make(map[string]bool, len(primaries))
	for _, n := range primaries {
		isPrimary[n] = true
	}
	var variants []string
	for n := range registry {
		if !isPrimary[n] {
			variants = append(variants, n)
		}
	}
	sort.Strings(variants)
	return append(out, variants...)
}
