// Package wiring is the single construction path for a fully wired
// system under test. Both the public facade (p4update.NewNetwork) and
// the evaluation harness (experiments.NewBed) build their systems here.
// Which data-plane handler runs and which controller drives updates is
// resolved through the UpdateSystem registry (registry.go): systems
// register themselves by name, construction looks the name up and calls
// the entry's Build, and triggering dispatches through the same entry —
// adding a system never touches this file.
package wiring

import (
	"fmt"
	"math/rand"
	"time"

	"p4update/internal/audit"
	"p4update/internal/central"
	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/ezsegway"
	"p4update/internal/faults"
	"p4update/internal/localverify"
	"p4update/internal/optoracle"
	"p4update/internal/packet"
	"p4update/internal/plancache"
	"p4update/internal/ppcu"
	"p4update/internal/sim"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Strategy selects the update system a wired network runs.
//
// Deprecated: select systems by registered name (Config.System /
// Lookup). The enum remains as a thin alias layer so existing callers
// keep compiling; it maps onto registry names via SystemName.
type Strategy int

// Strategies.
const (
	// Auto runs P4Update with the §7.5 single/dual-layer policy.
	Auto Strategy = iota
	// SingleLayer forces single-layer P4Update.
	SingleLayer
	// DualLayer forces dual-layer P4Update.
	DualLayer
	// EZSegway runs the decentralized ez-Segway baseline.
	EZSegway
	// Central runs the centralized dependency-graph baseline.
	Central
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "p4update-auto"
	case SingleLayer:
		return "p4update-sl"
	case DualLayer:
		return "p4update-dl"
	case EZSegway:
		return "ez-segway"
	case Central:
		return "central"
	default:
		return "unknown"
	}
}

// SystemName maps the deprecated enum value onto its registry name (""
// for unknown values, which Lookup then rejects).
func (s Strategy) SystemName() string {
	switch s {
	case Auto:
		return "p4update"
	case SingleLayer:
		return "p4update-sl"
	case DualLayer:
		return "p4update-dl"
	case EZSegway:
		return "ez-segway"
	case Central:
		return "central"
	default:
		return ""
	}
}

// Config is the one knob set from which every system is built. The zero
// value is usable (seed 0, P4Update auto policy, no delays); callers
// layer their own defaults on top before calling New.
type Config struct {
	// Seed fixes the simulation's random streams.
	Seed int64
	// System selects the update system by registered name ("p4update",
	// "ez-segway", "central", "local-verify", "ppcu", "opt-oracle", or a
	// registered variant). Empty falls back to the deprecated Strategy
	// enum below.
	System string
	// Strategy selects the update system.
	//
	// Deprecated: set System to the registry name instead.
	Strategy Strategy
	// Congestion enables link-capacity enforcement and each system's
	// scheduler (P4Update §7.4, ez-Segway's static dependency graph).
	Congestion bool
	// ChainedDL enables the Appendix-C chained dual-layer extension.
	ChainedDL bool
	// WatchdogTimeout arms the §11 failure-recovery watchdog on held
	// indications (0 disables it).
	WatchdogTimeout time.Duration
	// MaxRetriggers bounds §11 stalled-update re-transmissions.
	MaxRetriggers int
	// MaxEvents bounds a run as a runaway-loop backstop (0 = unlimited).
	MaxEvents uint64
	// TwoPhase enables the §11 two-phase-commit integration.
	TwoPhase bool
	// Shards, when > 1, requests sharded execution: the topology is
	// partitioned into up to Shards regions, each executed by its own
	// worker goroutine under the conservative window/barrier runtime
	// (sim.Sharded). Sharding is an execution strategy, not a semantic
	// knob — a sharded trial produces byte-identical traces and metrics
	// to a sequential one — so configurations the runtime cannot
	// reproduce exactly (per-event engine randomness, fault injection,
	// auditing, congestion scheduling) silently fall back to the
	// sequential engine; EffectiveShards reports what actually ran.
	Shards int

	// Rule-install latency, first match wins:
	// InstallDelay (explicit sampler) > NodeDelayMean (exponential,
	// engine RNG) > BaseInstallDelay (constant) > instantaneous.
	InstallDelay     func() time.Duration
	NodeDelayMean    time.Duration
	BaseInstallDelay time.Duration

	// Controller placement and control-channel latency, first match
	// wins: SampledControl (explicit per-switch sampler, centroid
	// placement) > FatTreeControl (the §9.1 normal-distribution model,
	// Huang et al., derived from Seed) > Controller (pinned node,
	// propagation latencies) > topology centroid.
	SampledControl func() time.Duration
	FatTreeControl bool
	Controller     *topo.NodeID

	// CtrlProcDelay is the Central coordinator's per-message processing
	// time; CtrlQueueMean the mean of its exponential queuing delay
	// (§9.1, Jarschel et al.). Both only matter under Central.
	CtrlProcDelay time.Duration
	CtrlQueueMean time.Duration

	// Plans, when set, memoizes control-plane plan preparation across
	// the trials sharing a frozen topology (internal/plancache): each
	// distinct (flow, paths, version, ...) plan is computed once per
	// grid and cloned cheaply — shared immutably — into every trial.
	Plans *plancache.Cache

	// Faults, when set, attaches the deterministic chaos harness
	// (internal/faults) to the fabric. The plan is copied per system; a
	// zero plan Seed is replaced by this config's Seed so grid sweeps
	// get independent chaos per trial without spelling it out.
	Faults *faults.Plan
	// AuditEvery, when positive, attaches the continuous invariant
	// auditor (internal/audit) sweeping every AuditEvery engine steps.
	// The capacity invariant follows Congestion: unconstrained setups
	// legitimately overbook links.
	AuditEvery int
	// ProbeTimeout arms the controller-side end-to-end completion
	// watchdog (probe re-injection / indication re-send; see
	// controlplane.Controller.ProbeTimeout). Zero disables it.
	ProbeTimeout time.Duration
	// MaxStallReports bounds per-node §11 stall reporting (0 = default).
	MaxStallReports int
	// TrackRounds attaches a RoundTracker measuring per-update commit
	// rounds (for the optimality-gap evaluation). Off by default — the
	// tracker wraps the apply observer, which costs a map lookup per
	// commit.
	TrackRounds bool
	// Trace, when set, attaches a flight recorder (internal/trace) to the
	// engine; every protocol layer then logs its sends, receives,
	// verification verdicts, commits, and recovery events into the
	// recorder's ring buffer. Nil leaves tracing off — the hot path then
	// pays only a nil check per site.
	Trace *trace.Options

	// Transport, when set, splits the fabric across OS processes
	// (deployment mode, cmd/controllerd + cmd/switchd): frames
	// addressed to parties this process does not own leave through it
	// instead of the in-memory delivery queue. Mutually exclusive with
	// sharding — a deployment process hosts a small slice of the
	// fabric and runs its engine in real time.
	Transport dataplane.Transport
}

// System is a fully wired system under one update system: engine, data
// plane, tracking controller, and — depending on the system — the
// coordinator driving it.
type System struct {
	Cfg  Config
	Topo *topo.Topology
	Eng  *sim.Engine
	Net  *dataplane.Network
	Ctl  *controlplane.Controller
	// Driver is the registry entry the system was built from (nil when
	// the configured name resolves to nothing; Trigger then errors).
	Driver UpdateSystem
	// Per-system coordinators, filled by the driver's Build: EZ under
	// ez-segway, CO under central, LV under local-verify, PP under ppcu,
	// OO under opt-oracle.
	EZ *ezsegway.Controller
	CO *central.Coordinator
	LV *localverify.Controller
	PP *ppcu.Coordinator
	OO *optoracle.Coordinator
	// Inj is the attached fault injector (nil without Config.Faults);
	// Aud the attached invariant auditor (nil without AuditEvery).
	Inj *faults.Injector
	Aud *audit.Auditor
	// Trace is the attached flight recorder (nil without Config.Trace).
	Trace *trace.Recorder
	// Rounds is the attached round tracker (nil without TrackRounds).
	Rounds *RoundTracker
	// Sharded is the attached parallel runtime (nil when Config.Shards
	// <= 1 or the configuration forced a sequential fallback);
	// ShardPlan the region partition it runs.
	Sharded   *sim.Sharded
	ShardPlan *topo.RegionPlan

	name string
}

// EffectiveShards reports how many region workers execute the trial:
// 1 for sequential execution (including every sharding fallback).
func (s *System) EffectiveShards() int {
	if s.Sharded == nil {
		return 1
	}
	return s.Sharded.NumRegions()
}

// SystemName returns the resolved registry name the system was
// configured with (possibly unregistered).
func (s *System) SystemName() string { return s.name }

// New builds switches for every node of g, wires the fabric and a
// controller, and installs the configured update protocol.
func New(g *topo.Topology, cfg Config) *System {
	eng := sim.New(cfg.Seed)
	eng.MaxEvents = cfg.MaxEvents
	if cfg.Trace != nil {
		rec := trace.New(*cfg.Trace)
		rec.Clock = eng.Now
		eng.Trace = rec
	}
	net := dataplane.NewNetwork(eng, g)
	net.Proc = cfg.Transport

	var node topo.NodeID
	switch {
	case cfg.SampledControl != nil:
		node = g.Centroid()
		controlplane.UseSampledControl(net, cfg.SampledControl)
	case cfg.FatTreeControl:
		node = g.Centroid()
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
		controlplane.UseSampledControl(net, func() time.Duration {
			// Huang et al. measured switch control-path latencies of a
			// few milliseconds; clamp the normal sample to stay positive.
			d := time.Duration((4 + 2*rng.NormFloat64()) * float64(time.Millisecond))
			if d < 500*time.Microsecond {
				d = 500 * time.Microsecond
			}
			return d
		})
	case cfg.Controller != nil:
		node = *cfg.Controller
		lat := g.ControlLatencies(node)
		net.ControlLatency = func(n topo.NodeID) time.Duration { return lat[n] }
	default:
		node = controlplane.UseCentroidControl(net)
	}
	ctl := controlplane.NewController(net, node)
	ctl.MaxRetriggers = cfg.MaxRetriggers
	ctl.ProbeTimeout = cfg.ProbeTimeout
	if cfg.Plans != nil {
		ctl.Plans = cfg.Plans
	}

	name := cfg.System
	if name == "" {
		name = cfg.Strategy.SystemName()
	}
	s := &System{Cfg: cfg, Topo: g, Eng: eng, Net: net, Ctl: ctl, Trace: eng.Trace, name: name}
	if drv, ok := Lookup(name); ok {
		s.Driver = drv
		drv.Build(s)
	} else {
		// Unknown system: leave a functional data plane in place so the
		// system is still inspectable; Trigger reports the error.
		net.SetHandler(&core.Protocol{
			Congestion:      cfg.Congestion,
			AllowChainedDL:  cfg.ChainedDL,
			WatchdogTimeout: cfg.WatchdogTimeout,
			MaxStallReports: cfg.MaxStallReports,
		})
	}
	if cfg.TrackRounds {
		s.Rounds = attachRoundTracker(s)
	}

	switch {
	case cfg.InstallDelay != nil:
		net.SetInstallDelay(cfg.InstallDelay)
	case cfg.NodeDelayMean > 0:
		mean := float64(cfg.NodeDelayMean)
		rng := eng.Rand()
		net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * mean)
		})
	case cfg.BaseInstallDelay > 0:
		d := cfg.BaseInstallDelay
		net.SetInstallDelay(func() time.Duration { return d })
	}
	if cfg.TwoPhase {
		for _, sw := range net.Switches() {
			sw.TwoPhase = true
		}
	}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed ^ 0xfa17
		}
		s.Inj = faults.Attach(net, plan)
	}
	if cfg.AuditEvery > 0 {
		s.Aud = audit.Attach(net, ctl, audit.Config{
			Every:      cfg.AuditEvery,
			NoCapacity: !cfg.Congestion,
		})
	}
	trySharding(s)
	return s
}

// trySharding attaches the conservative parallel runtime when the
// configuration permits an exactly-equivalent sharded execution.
//
// The fallback matrix errs on the side of sequential execution: any
// feature that draws engine randomness per event (NodeDelayMean,
// InstallDelay samplers), observes every step globally (auditing,
// fault injection), or orders observable output by flow-interning
// sequence (the congestion scheduler's priority promotion) cannot be
// reproduced bit-exactly across region workers and keeps the trial on
// the sequential engine. Constant install delays, controller-side
// queuing (drawn at the barrier), round tracking, and tracing all
// shard safely.
func trySharding(s *System) {
	cfg := &s.Cfg
	if cfg.Shards <= 1 ||
		cfg.InstallDelay != nil || cfg.NodeDelayMean > 0 ||
		cfg.Faults != nil || cfg.AuditEvery > 0 || cfg.Congestion ||
		cfg.Transport != nil {
		return
	}
	if s.Eng.Scheduled() > 0 {
		// A driver Build scheduled setup events; attaching now would lose
		// them from the cursor's global order.
		return
	}
	g := s.Topo
	lats := make([]time.Duration, g.NumNodes())
	for _, id := range g.Nodes() {
		lats[id] = s.Net.ControlLatency(id)
	}
	plan := topo.PartitionRegions(g, cfg.Shards, nil, lats)
	if plan.Regions < 2 || plan.Lookahead <= 0 {
		return
	}
	sh := sim.AttachSharded(s.Eng, plan.Regions, plan.Lookahead)
	s.Net.AttachShards(sh, plan.NodeRegion)
	sh.PreRun = s.Net.RefreshShardHooks
	s.Sharded = sh
	s.ShardPlan = &plan
}

// Trigger starts a consistent route update of flow f to newPath under
// the system's registered driver. Under ez-segway a second update of a
// flow whose previous update is still in flight returns a status in the
// Queued state (it launches when the ongoing update completes).
func (s *System) Trigger(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	if s.Driver == nil {
		return nil, fmt.Errorf("wiring: unknown update system %q (available: %v)", s.name, AllNames())
	}
	return s.Driver.Trigger(s, f, newPath)
}

// ExtraMetrics collects the driver's per-system metric extras (nil when
// the driver reports none).
func (s *System) ExtraMetrics() map[string]float64 {
	mr, ok := s.Driver.(MetricsReporter)
	if !ok {
		return nil
	}
	extra := make(map[string]float64)
	mr.ReportMetrics(s, extra)
	if len(extra) == 0 {
		return nil
	}
	return extra
}
