// Package wiring is the single construction path for a fully wired
// system under test. Both the public facade (p4update.NewNetwork) and
// the evaluation harness (experiments.NewBed) build their systems here,
// so the strategy dispatch — which data-plane handler runs, which
// controller drives updates, how install and controller delays are
// sampled — exists exactly once.
package wiring

import (
	"fmt"
	"math/rand"
	"time"

	"p4update/internal/audit"
	"p4update/internal/central"
	"p4update/internal/controlplane"
	"p4update/internal/core"
	"p4update/internal/dataplane"
	"p4update/internal/ezsegway"
	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/plancache"
	"p4update/internal/sim"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Strategy selects the update system a wired network runs.
type Strategy int

// Strategies.
const (
	// Auto runs P4Update with the §7.5 single/dual-layer policy.
	Auto Strategy = iota
	// SingleLayer forces single-layer P4Update.
	SingleLayer
	// DualLayer forces dual-layer P4Update.
	DualLayer
	// EZSegway runs the decentralized ez-Segway baseline.
	EZSegway
	// Central runs the centralized dependency-graph baseline.
	Central
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "p4update-auto"
	case SingleLayer:
		return "p4update-sl"
	case DualLayer:
		return "p4update-dl"
	case EZSegway:
		return "ez-segway"
	case Central:
		return "central"
	default:
		return "unknown"
	}
}

// Config is the one knob set from which every system is built. The zero
// value is usable (seed 0, P4Update auto policy, no delays); callers
// layer their own defaults on top before calling New.
type Config struct {
	// Seed fixes the simulation's random streams.
	Seed int64
	// Strategy selects the update system.
	Strategy Strategy
	// Congestion enables link-capacity enforcement and each system's
	// scheduler (P4Update §7.4, ez-Segway's static dependency graph).
	Congestion bool
	// ChainedDL enables the Appendix-C chained dual-layer extension.
	ChainedDL bool
	// WatchdogTimeout arms the §11 failure-recovery watchdog on held
	// indications (0 disables it).
	WatchdogTimeout time.Duration
	// MaxRetriggers bounds §11 stalled-update re-transmissions.
	MaxRetriggers int
	// MaxEvents bounds a run as a runaway-loop backstop (0 = unlimited).
	MaxEvents uint64
	// TwoPhase enables the §11 two-phase-commit integration.
	TwoPhase bool

	// Rule-install latency, first match wins:
	// InstallDelay (explicit sampler) > NodeDelayMean (exponential,
	// engine RNG) > BaseInstallDelay (constant) > instantaneous.
	InstallDelay     func() time.Duration
	NodeDelayMean    time.Duration
	BaseInstallDelay time.Duration

	// Controller placement and control-channel latency, first match
	// wins: SampledControl (explicit per-switch sampler, centroid
	// placement) > FatTreeControl (the §9.1 normal-distribution model,
	// Huang et al., derived from Seed) > Controller (pinned node,
	// propagation latencies) > topology centroid.
	SampledControl func() time.Duration
	FatTreeControl bool
	Controller     *topo.NodeID

	// CtrlProcDelay is the Central coordinator's per-message processing
	// time; CtrlQueueMean the mean of its exponential queuing delay
	// (§9.1, Jarschel et al.). Both only matter under Central.
	CtrlProcDelay time.Duration
	CtrlQueueMean time.Duration

	// Plans, when set, memoizes control-plane plan preparation across
	// the trials sharing a frozen topology (internal/plancache): each
	// distinct (flow, paths, version, ...) plan is computed once per
	// grid and cloned cheaply — shared immutably — into every trial.
	Plans *plancache.Cache

	// Faults, when set, attaches the deterministic chaos harness
	// (internal/faults) to the fabric. The plan is copied per system; a
	// zero plan Seed is replaced by this config's Seed so grid sweeps
	// get independent chaos per trial without spelling it out.
	Faults *faults.Plan
	// AuditEvery, when positive, attaches the continuous invariant
	// auditor (internal/audit) sweeping every AuditEvery engine steps.
	// The capacity invariant follows Congestion: unconstrained setups
	// legitimately overbook links.
	AuditEvery int
	// ProbeTimeout arms the controller-side end-to-end completion
	// watchdog (probe re-injection / indication re-send; see
	// controlplane.Controller.ProbeTimeout). Zero disables it.
	ProbeTimeout time.Duration
	// MaxStallReports bounds per-node §11 stall reporting (0 = default).
	MaxStallReports int
	// Trace, when set, attaches a flight recorder (internal/trace) to the
	// engine; every protocol layer then logs its sends, receives,
	// verification verdicts, commits, and recovery events into the
	// recorder's ring buffer. Nil leaves tracing off — the hot path then
	// pays only a nil check per site.
	Trace *trace.Options
}

// System is a fully wired system under one update strategy: engine,
// data plane, tracking controller, and — depending on the strategy —
// the baseline coordinator driving it.
type System struct {
	Cfg  Config
	Topo *topo.Topology
	Eng  *sim.Engine
	Net  *dataplane.Network
	Ctl  *controlplane.Controller
	// EZ is non-nil under EZSegway, CO under Central.
	EZ *ezsegway.Controller
	CO *central.Coordinator
	// Inj is the attached fault injector (nil without Config.Faults);
	// Aud the attached invariant auditor (nil without AuditEvery).
	Inj *faults.Injector
	Aud *audit.Auditor
	// Trace is the attached flight recorder (nil without Config.Trace).
	Trace *trace.Recorder
}

// New builds switches for every node of g, wires the fabric and a
// controller, and installs the configured update protocol.
func New(g *topo.Topology, cfg Config) *System {
	eng := sim.New(cfg.Seed)
	eng.MaxEvents = cfg.MaxEvents
	if cfg.Trace != nil {
		rec := trace.New(*cfg.Trace)
		rec.Clock = eng.Now
		eng.Trace = rec
	}
	net := dataplane.NewNetwork(eng, g)

	switch cfg.Strategy {
	case EZSegway:
		net.SetHandler(&ezsegway.Handler{Congestion: cfg.Congestion})
	case Central:
		net.SetHandler(&central.Handler{})
	default:
		net.SetHandler(&core.Protocol{
			Congestion:      cfg.Congestion,
			AllowChainedDL:  cfg.ChainedDL,
			WatchdogTimeout: cfg.WatchdogTimeout,
			MaxStallReports: cfg.MaxStallReports,
		})
	}

	var node topo.NodeID
	switch {
	case cfg.SampledControl != nil:
		node = g.Centroid()
		controlplane.UseSampledControl(net, cfg.SampledControl)
	case cfg.FatTreeControl:
		node = g.Centroid()
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
		controlplane.UseSampledControl(net, func() time.Duration {
			// Huang et al. measured switch control-path latencies of a
			// few milliseconds; clamp the normal sample to stay positive.
			d := time.Duration((4 + 2*rng.NormFloat64()) * float64(time.Millisecond))
			if d < 500*time.Microsecond {
				d = 500 * time.Microsecond
			}
			return d
		})
	case cfg.Controller != nil:
		node = *cfg.Controller
		lat := g.ControlLatencies(node)
		net.ControlLatency = func(n topo.NodeID) time.Duration { return lat[n] }
	default:
		node = controlplane.UseCentroidControl(net)
	}
	ctl := controlplane.NewController(net, node)
	ctl.MaxRetriggers = cfg.MaxRetriggers
	ctl.ProbeTimeout = cfg.ProbeTimeout
	if cfg.Plans != nil {
		ctl.Plans = cfg.Plans.P4()
	}

	s := &System{Cfg: cfg, Topo: g, Eng: eng, Net: net, Ctl: ctl, Trace: eng.Trace}
	switch cfg.Strategy {
	case EZSegway:
		s.EZ = ezsegway.NewController(ctl)
		s.EZ.Congestion = cfg.Congestion
		if cfg.Plans != nil {
			s.EZ.Plans = cfg.Plans.EZ()
		}
	case Central:
		s.CO = central.NewCoordinator(ctl, cfg.CtrlProcDelay)
		s.CO.Congestion = cfg.Congestion
		// The controller also serves path setup and monitoring traffic;
		// every message queues behind it (§9.1, Jarschel et al.).
		if cfg.CtrlQueueMean > 0 {
			rng := eng.Rand()
			mean := float64(cfg.CtrlQueueMean)
			s.CO.QueueDelay = func() time.Duration {
				return time.Duration(rng.ExpFloat64() * mean)
			}
		}
	}

	switch {
	case cfg.InstallDelay != nil:
		net.SetInstallDelay(cfg.InstallDelay)
	case cfg.NodeDelayMean > 0:
		mean := float64(cfg.NodeDelayMean)
		rng := eng.Rand()
		net.SetInstallDelay(func() time.Duration {
			return time.Duration(rng.ExpFloat64() * mean)
		})
	case cfg.BaseInstallDelay > 0:
		d := cfg.BaseInstallDelay
		net.SetInstallDelay(func() time.Duration { return d })
	}
	if cfg.TwoPhase {
		for _, sw := range net.Switches() {
			sw.TwoPhase = true
		}
	}
	if cfg.Faults != nil {
		plan := *cfg.Faults
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed ^ 0xfa17
		}
		s.Inj = faults.Attach(net, plan)
	}
	if cfg.AuditEvery > 0 {
		s.Aud = audit.Attach(net, ctl, audit.Config{
			Every:      cfg.AuditEvery,
			NoCapacity: !cfg.Congestion,
		})
	}
	return s
}

// Trigger starts a consistent route update of flow f to newPath under
// the system's strategy. Under EZSegway a second update of a flow whose
// previous update is still in flight returns a status in the Queued
// state (it launches when the ongoing update completes).
func (s *System) Trigger(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	switch s.Cfg.Strategy {
	case EZSegway:
		return s.EZ.TriggerUpdate(f, newPath)
	case Central:
		return s.CO.TriggerUpdate(f, newPath)
	case SingleLayer:
		ut := packet.UpdateSingle
		return s.Ctl.TriggerUpdate(f, newPath, &ut)
	case DualLayer:
		ut := packet.UpdateDual
		return s.Ctl.TriggerUpdate(f, newPath, &ut)
	case Auto:
		return s.Ctl.TriggerUpdate(f, newPath, nil)
	default:
		return nil, fmt.Errorf("wiring: unknown strategy %d", s.Cfg.Strategy)
	}
}
