package wiring

import (
	"testing"
	"time"

	"p4update/internal/topo"
)

// TestShardsOneStaysSequential pins the shards=1 contract: no parallel
// runtime is attached, EffectiveShards reports 1, and the engine keeps
// its sequential zero-allocation hot path (the sharded seam in
// Engine.push is a single nil check).
func TestShardsOneStaysSequential(t *testing.T) {
	s := New(topo.B4(), Config{System: "p4update", BaseInstallDelay: time.Millisecond, Shards: 1})
	if s.Sharded != nil || s.ShardPlan != nil {
		t.Fatal("Shards=1 attached a parallel runtime")
	}
	if got := s.EffectiveShards(); got != 1 {
		t.Fatalf("EffectiveShards() = %d, want 1", got)
	}
	fn := func() {}
	allocs := testing.AllocsPerRun(10000, func() {
		s.Eng.Schedule(time.Microsecond, fn)
		s.Eng.Step()
	})
	if allocs != 0 {
		t.Errorf("shards=1 hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestShardsAttachWhenEligible checks an eligible configuration (fat
// tree, constant install delay, no per-event randomness) genuinely
// shards and reports the plan's region count.
func TestShardsAttachWhenEligible(t *testing.T) {
	s := New(topo.FatTree(4), Config{System: "p4update", BaseInstallDelay: time.Millisecond, Shards: 4})
	if s.Sharded == nil || s.ShardPlan == nil {
		t.Fatal("eligible Shards=4 config did not attach the parallel runtime")
	}
	if got := s.EffectiveShards(); got != s.Sharded.NumRegions() || got < 2 {
		t.Fatalf("EffectiveShards() = %d, NumRegions() = %d", got, s.Sharded.NumRegions())
	}
	if s.ShardPlan.Lookahead <= 0 {
		t.Fatalf("attached plan has lookahead %v", s.ShardPlan.Lookahead)
	}
}

// TestShardsFallbackMatrix checks each configuration the runtime cannot
// reproduce bit-exactly silently falls back to sequential execution.
func TestShardsFallbackMatrix(t *testing.T) {
	base := func() Config {
		return Config{System: "p4update", BaseInstallDelay: time.Millisecond, Shards: 4}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"install-delay sampler", func(c *Config) { c.InstallDelay = func() time.Duration { return time.Millisecond } }},
		{"node delay mean", func(c *Config) { c.NodeDelayMean = time.Millisecond }},
		{"congestion", func(c *Config) { c.Congestion = true }},
		{"audit", func(c *Config) { c.AuditEvery = 100 }},
	}
	for _, c := range cases {
		cfg := base()
		c.mut(&cfg)
		s := New(topo.FatTree(4), cfg)
		if s.Sharded != nil {
			t.Errorf("%s: expected sequential fallback, got %d regions", c.name, s.Sharded.NumRegions())
		}
		if got := s.EffectiveShards(); got != 1 {
			t.Errorf("%s: EffectiveShards() = %d, want 1", c.name, got)
		}
	}
}
