// Storm scheduling: compiling an operator-facing storm profile into a
// concrete fault Plan for one soak trial. A storm is ambient chaos
// (steady loss/reorder/corruption on every message class) plus a seeded
// schedule of recurring episodes — loss/reorder bursts, corruption
// bursts, switch crash/restore cycles, and controller partition windows.
// Episode streams are split per class through splitmix64, so tuning one
// episode class never perturbs another's schedule, and the same
// (seed, horizon, profile) triple always compiles to the same Plan —
// every system in a soak cell faces the identical storm.

package faults

import (
	"math/rand"
	"sort"
	"time"

	"p4update/internal/topo"
)

// EpisodeClass classifies one storm episode for SLO attribution.
type EpisodeClass uint8

// Episode classes.
const (
	EpisodeLossBurst EpisodeClass = iota
	EpisodeCorruptBurst
	EpisodeCrash
	EpisodePartition
	NumEpisodeClasses
)

var episodeClassNames = [NumEpisodeClasses]string{
	"loss-burst", "corrupt-burst", "crash", "partition",
}

func (c EpisodeClass) String() string {
	if int(c) < len(episodeClassNames) {
		return episodeClassNames[c]
	}
	return "unknown"
}

// Episode is one scheduled fault episode of a compiled storm. Start and
// End bound the injected disturbance; recovery time is measured from
// Start to the first clean audit sweep at or after End.
type Episode struct {
	Class EpisodeClass
	Start time.Duration
	End   time.Duration
	// Node is the crashed switch (EpisodeCrash) or AnyNode for
	// whole-controller partition windows; unused for rate bursts.
	Node topo.NodeID
}

// StormProfile parameterizes the recurring-episode generator. Each
// episode class fires with exponentially distributed gaps of the given
// mean ("Every") between one episode's end and the next one's start, and
// a length jittered uniformly within ±25% of the configured duration. A
// zero Every disables the class.
type StormProfile struct {
	Name string

	// Ambient chaos applied to all three message classes for the whole
	// run.
	Loss, Reorder, Corrupt float64
	ReorderBy              time.Duration

	// Loss/reorder bursts: windows where loss and reorder spike to the
	// burst rates (kind-wise max with ambient).
	BurstEvery, BurstLen    time.Duration
	BurstLoss, BurstReorder float64

	// Corruption bursts.
	CorruptEvery, CorruptLen time.Duration
	CorruptRate              float64

	// Switch crash/restore cycles: a uniformly chosen switch fail-stops
	// for CrashOutage, losing soft state but keeping committed rules.
	CrashEvery, CrashOutage time.Duration

	// Controller partition windows: all control-channel frames (both
	// directions, every switch) are dropped for PartitionLen.
	PartitionEvery, PartitionLen time.Duration
}

// StormProfiles returns the built-in operator profiles, mildest first.
//
//   - calm: light ambient loss with occasional single-switch crashes —
//     the "normal datacenter day" baseline.
//   - squall: the acceptance regime — 10% ambient loss+reorder with
//     recurring loss bursts, crash/restore cycles, and controller
//     partitions.
//   - hurricane: sustained heavy loss, corruption, long outages; even
//     P4Update is expected to burn real retrigger budget here.
func StormProfiles() []StormProfile {
	return []StormProfile{
		{
			Name: "calm",
			Loss: 0.02, Reorder: 0.02, ReorderBy: 2 * time.Millisecond,
			CrashEvery: 8 * time.Second, CrashOutage: 200 * time.Millisecond,
		},
		{
			Name: "squall",
			Loss: 0.10, Reorder: 0.10, ReorderBy: 2 * time.Millisecond,
			BurstEvery: 1500 * time.Millisecond, BurstLen: 250 * time.Millisecond,
			BurstLoss: 0.30, BurstReorder: 0.25,
			CrashEvery: 1200 * time.Millisecond, CrashOutage: 300 * time.Millisecond,
			PartitionEvery: 2 * time.Second, PartitionLen: 350 * time.Millisecond,
		},
		{
			Name: "hurricane",
			Loss: 0.20, Reorder: 0.15, Corrupt: 0.02, ReorderBy: 3 * time.Millisecond,
			BurstEvery: time.Second, BurstLen: 300 * time.Millisecond,
			BurstLoss: 0.45, BurstReorder: 0.35,
			CorruptEvery: 2500 * time.Millisecond, CorruptLen: 300 * time.Millisecond,
			CorruptRate: 0.10,
			CrashEvery:  800 * time.Millisecond, CrashOutage: 500 * time.Millisecond,
			PartitionEvery: 1500 * time.Millisecond, PartitionLen: 500 * time.Millisecond,
		},
	}
}

// LookupStorm resolves a built-in profile by name.
func LookupStorm(name string) (StormProfile, bool) {
	for _, p := range StormProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return StormProfile{}, false
}

// StormNames lists the built-in profile names in severity order.
func StormNames() []string {
	ps := StormProfiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// stormStream derives the independent per-class episode stream: storm
// schedules must not shift when the injector's frame-level draws do, so
// they never share streams with Inspect.
func stormStream(seed int64, class EpisodeClass) *rand.Rand {
	s := splitmix64(splitmix64(uint64(seed)^0xb0b0) + uint64(class) + 1)
	return rand.New(rand.NewSource(int64(s)))
}

// episodeTimes generates one class's schedule over [0, horizon): gaps
// are exponential with mean every, lengths uniform in [0.75, 1.25]×dur,
// and every episode ends strictly before the horizon so the trailing
// drain window always observes recovery.
func episodeTimes(rng *rand.Rand, every, dur, horizon time.Duration) [][2]time.Duration {
	if every <= 0 || dur <= 0 {
		return nil
	}
	var out [][2]time.Duration
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(every))
		length := time.Duration((0.75 + 0.5*rng.Float64()) * float64(dur))
		start := at + gap
		end := start + length
		if end >= horizon {
			return out
		}
		out = append(out, [2]time.Duration{start, end})
		at = end
	}
}

// BuildStorm compiles profile into a fault plan covering [0, horizon)
// plus the episode timeline for SLO attribution. The returned plan's
// Seed is left zero so wiring derives the injector's frame-level streams
// from the trial seed as usual; seed here controls only the episode
// schedule. Episodes are returned sorted by start time.
func BuildStorm(g *topo.Topology, seed int64, horizon time.Duration, p StormProfile) (*Plan, []Episode) {
	ambient := Rates{Drop: p.Loss, Reorder: p.Reorder, Corrupt: p.Corrupt, ReorderBy: p.ReorderBy}
	if ambient.Reorder > 0 && ambient.ReorderBy == 0 {
		ambient.ReorderBy = 2 * time.Millisecond
	}
	plan := &Plan{Data: ambient, Up: ambient, Down: ambient}
	var eps []Episode

	burstBy := ambient.ReorderBy
	if burstBy == 0 {
		burstBy = 2 * time.Millisecond
	}
	for _, w := range episodeTimes(stormStream(seed, EpisodeLossBurst), p.BurstEvery, p.BurstLen, horizon) {
		r := Rates{Drop: p.BurstLoss, Reorder: p.BurstReorder, ReorderBy: burstBy}
		plan.Bursts = append(plan.Bursts, Burst{From: w[0], Until: w[1], Data: r, Up: r, Down: r})
		eps = append(eps, Episode{Class: EpisodeLossBurst, Start: w[0], End: w[1]})
	}
	for _, w := range episodeTimes(stormStream(seed, EpisodeCorruptBurst), p.CorruptEvery, p.CorruptLen, horizon) {
		r := Rates{Corrupt: p.CorruptRate}
		plan.Bursts = append(plan.Bursts, Burst{From: w[0], Until: w[1], Data: r, Up: r, Down: r})
		eps = append(eps, Episode{Class: EpisodeCorruptBurst, Start: w[0], End: w[1]})
	}
	crashRng := stormStream(seed, EpisodeCrash)
	nodes := g.Nodes()
	for _, w := range episodeTimes(crashRng, p.CrashEvery, p.CrashOutage, horizon) {
		node := nodes[crashRng.Intn(len(nodes))]
		plan.Crashes = append(plan.Crashes, Crash{Node: node, At: w[0], Restore: w[1]})
		eps = append(eps, Episode{Class: EpisodeCrash, Start: w[0], End: w[1], Node: node})
	}
	for _, w := range episodeTimes(stormStream(seed, EpisodePartition), p.PartitionEvery, p.PartitionLen, horizon) {
		plan.Partitions = append(plan.Partitions, Partition{Node: AnyNode, From: w[0], Until: w[1]})
		eps = append(eps, Episode{Class: EpisodePartition, Start: w[0], End: w[1], Node: AnyNode})
	}

	sort.SliceStable(eps, func(i, j int) bool { return eps[i].Start < eps[j].Start })
	return plan, eps
}
