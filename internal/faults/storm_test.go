package faults

import (
	"reflect"
	"testing"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// injectAt schedules a single data frame of flow f at virtual instant at.
func injectAt(net *dataplane.Network, f packet.FlowID, at time.Duration, seq uint32) {
	net.Eng.ScheduleAt(at, func() {
		net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: seq, TTL: 8})
	})
}

func TestBurstWindowAppliesRates(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
	inj := Attach(net, Plan{Seed: 1, Bursts: []Burst{{
		From: 10 * time.Millisecond, Until: 20 * time.Millisecond,
		Data: Rates{Drop: 1},
	}}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	injectAt(net, f, 0, 1)                   // before the burst
	injectAt(net, f, 12*time.Millisecond, 2) // inside: dropped
	injectAt(net, f, 19*time.Millisecond, 3) // inside: dropped
	injectAt(net, f, 25*time.Millisecond, 4) // after: half-open window over
	net.Eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (only frames outside the burst)", delivered)
	}
	if inj.Stats.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", inj.Stats.Dropped)
	}
}

func TestBurstMergesKindWiseWithAmbient(t *testing.T) {
	// Ambient corrupts everything; a pure-drop burst must not mask it.
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
	inj := Attach(net, Plan{Seed: 1,
		Data:   Rates{Corrupt: 1},
		Bursts: []Burst{{From: 0, Until: time.Second, Data: Rates{Drop: 1}}},
	})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	injectAt(net, f, time.Millisecond, 1)
	net.Eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d, want 0", delivered)
	}
	if inj.Stats.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (burst drop rate in force)", inj.Stats.Dropped)
	}
}

// A zero-rate burst must leave a trial byte-identical to the burst-free
// plan: the segment timeline reproduces the ambient rates exactly and
// the draw sequence is a pure function of the frame sequence.
func TestZeroRateBurstIsTransparent(t *testing.T) {
	run := func(bursts []Burst) (int, Stats) {
		net := lineNet(t, 1)
		f := packet.FlowID(7)
		net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
		inj := Attach(net, Plan{Seed: 99, Data: Rates{Drop: 0.4}, Bursts: bursts})
		var delivered int
		net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
		for i := 0; i < 200; i++ {
			injectAt(net, f, time.Duration(i)*time.Millisecond, uint32(i))
		}
		net.Eng.Run()
		return delivered, inj.Stats
	}
	d1, s1 := run(nil)
	d2, s2 := run([]Burst{{From: 50 * time.Millisecond, Until: 150 * time.Millisecond}})
	if d1 != d2 || s1 != s2 {
		t.Fatalf("zero-rate burst perturbed the trial: delivered %d vs %d, stats %+v vs %+v", d1, d2, s1, s2)
	}
}

func TestActivePartitionEnd(t *testing.T) {
	net := lineNet(t, 1)
	inj := Attach(net, Plan{Seed: 1, Partitions: []Partition{
		{Node: AnyNode, From: 10 * time.Millisecond, Until: 30 * time.Millisecond},
		{Node: AnyNode, From: 20 * time.Millisecond, Until: 50 * time.Millisecond},
	}})
	check := func(at time.Duration, wantEnd time.Duration, wantActive bool) {
		net.Eng.ScheduleAt(at, func() {
			end, active := inj.ActivePartitionEnd()
			if active != wantActive || (active && end != wantEnd) {
				t.Errorf("at %v: ActivePartitionEnd = (%v, %v), want (%v, %v)",
					at, end, active, wantEnd, wantActive)
			}
		})
	}
	check(5*time.Millisecond, 0, false)
	check(15*time.Millisecond, 30*time.Millisecond, true)
	check(25*time.Millisecond, 50*time.Millisecond, true) // overlap: latest Until wins
	check(40*time.Millisecond, 50*time.Millisecond, true)
	check(60*time.Millisecond, 0, false)
	net.Eng.Run()
}

func TestBuildStormDeterministic(t *testing.T) {
	g := topo.B4()
	profile, ok := LookupStorm("squall")
	if !ok {
		t.Fatal("squall profile missing")
	}
	p1, e1 := BuildStorm(g, 42, 10*time.Second, profile)
	p2, e2 := BuildStorm(g, 42, 10*time.Second, profile)
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(e1, e2) {
		t.Fatal("same (seed, horizon, profile) compiled to different storms")
	}
	_, e3 := BuildStorm(g, 43, 10*time.Second, profile)
	if reflect.DeepEqual(e1, e3) {
		t.Fatal("different seeds produced the identical episode schedule")
	}
}

func TestBuildStormEpisodesWellFormed(t *testing.T) {
	g := topo.B4()
	horizon := 60 * time.Second
	for _, profile := range StormProfiles() {
		plan, eps := BuildStorm(g, 7, horizon, profile)
		if !plan.Active() {
			t.Errorf("%s: compiled plan inactive", profile.Name)
		}
		classes := map[EpisodeClass]int{}
		var last time.Duration
		for _, ep := range eps {
			if ep.Start < last {
				t.Fatalf("%s: episodes not sorted by start", profile.Name)
			}
			last = ep.Start
			if ep.End <= ep.Start || ep.End >= horizon {
				t.Errorf("%s: episode %v spans [%v, %v), want inside (start, horizon)",
					profile.Name, ep.Class, ep.Start, ep.End)
			}
			classes[ep.Class]++
			if ep.Class == EpisodeCrash && (ep.Node < 0 || int(ep.Node) >= g.NumNodes()) {
				t.Errorf("%s: crash episode names unknown node %d", profile.Name, ep.Node)
			}
		}
		if profile.CrashEvery > 0 && classes[EpisodeCrash] == 0 {
			t.Errorf("%s: no crash episodes over %v", profile.Name, horizon)
		}
		if profile.PartitionEvery > 0 && classes[EpisodePartition] == 0 {
			t.Errorf("%s: no partition episodes over %v", profile.Name, horizon)
		}
		if len(plan.Crashes) != classes[EpisodeCrash] ||
			len(plan.Partitions) != classes[EpisodePartition] ||
			len(plan.Bursts) != classes[EpisodeLossBurst]+classes[EpisodeCorruptBurst] {
			t.Errorf("%s: plan entries disagree with episode counts", profile.Name)
		}
	}
}

func TestStormProfileLookup(t *testing.T) {
	for _, name := range StormNames() {
		if p, ok := LookupStorm(name); !ok || p.Name != name {
			t.Errorf("LookupStorm(%q) = (%q, %v)", name, p.Name, ok)
		}
	}
	if _, ok := LookupStorm("tsunami"); ok {
		t.Error("LookupStorm accepted an unknown profile")
	}
}
