package faults

import (
	"testing"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// lineNet builds a 4-node line fabric with 1 ms, 100 Mbps links.
func lineNet(t *testing.T, seed int64) *dataplane.Network {
	t.Helper()
	g := topo.New("line")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < 4; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID(i+1), time.Millisecond, 100)
	}
	eng := sim.New(seed)
	eng.MaxEvents = 100_000
	return dataplane.NewNetwork(eng, g)
}

// installLine seeds a 0->3 path for flow f.
func installLine(net *dataplane.Network, f packet.FlowID) {
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 500)
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	installLine(net, f)
	inj := Attach(net, Plan{Seed: 1})
	if (&Plan{}).Active() {
		t.Error("zero plan reports Active")
	}
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	for i := 0; i < 10; i++ {
		net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: uint32(i), TTL: 8})
	}
	net.Eng.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d of 10 with zero plan", delivered)
	}
	if got := inj.Stats.Faulted(); got != 0 {
		t.Fatalf("zero plan faulted %d frames", got)
	}
	if inj.Stats.Inspected == 0 {
		t.Fatal("injector saw no frames")
	}
}

func TestDropRateOneLosesEverything(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	installLine(net, f)
	inj := Attach(net, Plan{Seed: 1, Data: Rates{Drop: 1}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d with drop rate 1", delivered)
	}
	if inj.Stats.Dropped == 0 {
		t.Fatal("no drops counted")
	}
}

func TestDuplicateRateOneDoublesDelivery(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	// Single hop so exactly one faultable transmission happens.
	net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
	inj := Attach(net, Plan{Seed: 1, Data: Rates{Duplicate: 1}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (original + duplicate)", delivered)
	}
	if inj.Stats.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", inj.Stats.Duplicated)
	}
}

func TestCorruptRateOneIsAlwaysDetected(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	installLine(net, f)
	inj := Attach(net, Plan{Seed: 42, Data: Rates{Corrupt: 1}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	for i := 0; i < 20; i++ {
		net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: uint32(i), TTL: 8})
	}
	net.Eng.Run()
	if delivered != 0 {
		t.Fatalf("%d corrupted frames decoded and delivered; corruption must be detectable", delivered)
	}
	if inj.Stats.Corrupted == 0 {
		t.Fatal("no corruptions counted")
	}
	if net.Switch(1).Stats.DecodeErrors != inj.Stats.Corrupted {
		t.Fatalf("DecodeErrors = %d, want %d (every corruption detected at first hop)",
			net.Switch(1).Stats.DecodeErrors, inj.Stats.Corrupted)
	}
}

func TestReorderSwapsFrames(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
	// Reorder every frame by up to 10 ms over a 1 ms link: with many
	// frames some must arrive out of sequence.
	Attach(net, Plan{Seed: 3, Data: Rates{Reorder: 1, ReorderBy: 10 * time.Millisecond}})
	var seqs []uint32
	net.OnDeliver = func(_ topo.NodeID, d *packet.Data) { seqs = append(seqs, d.Seq) }
	for i := 0; i < 20; i++ {
		net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: uint32(i), TTL: 8})
	}
	net.Eng.Run()
	if len(seqs) != 20 {
		t.Fatalf("delivered %d of 20 (reorder must not lose frames)", len(seqs))
	}
	swapped := false
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			swapped = true
			break
		}
	}
	if !swapped {
		t.Fatal("no reordering observed at rate 1")
	}
}

func TestRuleFiresExactlyCountTimes(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	net.InstallPath(f, []topo.NodeID{0, 1}, 1, 500)
	inj := Attach(net, Plan{Rules: []Rule{
		DropMatching(0, 1, packet.TypeData, 2),
	}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	for i := 0; i < 5; i++ {
		net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: uint32(i), TTL: 8})
	}
	net.Eng.Run()
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3 (first 2 dropped)", delivered)
	}
	if inj.RuleHits(0) != 2 {
		t.Fatalf("RuleHits = %d, want 2", inj.RuleHits(0))
	}
}

func TestRuleTypeAndEndpointFilters(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	installLine(net, f)
	// A UNM-only rule must not touch data traffic; a wrong-link rule
	// must not fire at all.
	inj := Attach(net, Plan{Rules: []Rule{
		DropMatching(0, 1, packet.TypeUNM, 0),
		DropMatching(2, 1, packet.TypeData, 0),
	}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if inj.RuleHits(0) != 0 || inj.RuleHits(1) != 0 {
		t.Fatalf("filtered rules fired: %d, %d", inj.RuleHits(0), inj.RuleHits(1))
	}
}

func TestCrashRestoreLifecycle(t *testing.T) {
	net := lineNet(t, 1)
	f := packet.FlowID(7)
	installLine(net, f)
	inj := Attach(net, Plan{Crashes: []Crash{
		{Node: 1, At: 5 * time.Millisecond, Restore: 20 * time.Millisecond},
	}})
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	// One packet before the crash, one during, one after restore.
	sw0 := net.Switch(0)
	inject := func() { sw0.InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8}) }
	net.Eng.Schedule(0, inject)
	net.Eng.Schedule(10*time.Millisecond, inject)
	net.Eng.Schedule(30*time.Millisecond, inject)
	net.Eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (mid-outage packet lost)", delivered)
	}
	sw1 := net.Switch(1)
	if sw1.Stats.Crashes != 1 || sw1.Stats.Restores != 1 {
		t.Fatalf("crash/restore stats = %d/%d, want 1/1", sw1.Stats.Crashes, sw1.Stats.Restores)
	}
	if sw1.Stats.CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d, want 1", sw1.Stats.CrashDrops)
	}
	if inj.Stats.Crashes != 1 || inj.Stats.Restores != 1 {
		t.Fatalf("injector crash/restore stats = %d/%d", inj.Stats.Crashes, inj.Stats.Restores)
	}
	// Committed rules survive the outage.
	st, ok := sw1.PeekState(f)
	if !ok || !st.HasRule {
		t.Fatal("committed rule lost across crash")
	}
}

func TestPartitionWindowDropsControlFrames(t *testing.T) {
	net := lineNet(t, 1)
	var ctlGot int
	net.ControllerRx = func(topo.NodeID, []byte) { ctlGot++ }
	inj := Attach(net, Plan{Partitions: []Partition{
		{Node: AnyNode, From: 5 * time.Millisecond, Until: 15 * time.Millisecond},
	}})
	send := func() {
		net.SendToController(2, &packet.UFM{Flow: 7, Version: 1, Status: packet.StatusAlarm})
	}
	net.Eng.Schedule(0, send)                   // before window
	net.Eng.Schedule(10*time.Millisecond, send) // inside window
	net.Eng.Schedule(20*time.Millisecond, send) // after window
	net.Eng.Run()
	if ctlGot != 2 {
		t.Fatalf("controller received %d, want 2", ctlGot)
	}
	if inj.Stats.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", inj.Stats.PartitionDrops)
	}
	// Partitions never touch the data plane.
	f := packet.FlowID(7)
	installLine(net, f)
	var delivered int
	net.OnDeliver = func(topo.NodeID, *packet.Data) { delivered++ }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if delivered != 1 {
		t.Fatal("partition affected data-plane frame")
	}
}

// TestStreamIndependence checks the splittable-PRNG property the grid
// determinism relies on: adding a second fault kind must not change the
// first kind's decisions.
func TestStreamIndependence(t *testing.T) {
	decisions := func(plan Plan) []bool {
		net := lineNet(t, 1)
		inj := Attach(net, plan)
		var out []bool
		raw := packet.Marshal(&packet.Data{Flow: 7, Seq: 1, TTL: 8})
		for i := 0; i < 200; i++ {
			buf := append([]byte(nil), raw...)
			_, act := inj.Inspect(dataplane.FaultData, 0, 1, buf)
			out = append(out, act.Drop)
		}
		return out
	}
	a := decisions(Plan{Seed: 9, Data: Rates{Drop: 0.3}})
	b := decisions(Plan{Seed: 9, Data: Rates{Drop: 0.3, Duplicate: 0.5, Corrupt: 0.2, Reorder: 0.4, ReorderBy: time.Millisecond}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d changed when other fault kinds were enabled", i)
		}
	}
}
