// Package faults is the deterministic chaos harness of the test bed: a
// seeded fault-injection plan driving per-message-class probabilities
// for drop, duplicate, corrupt, delay-jitter, and reorder, plus
// scheduled switch crash/restart and controller-channel partition
// windows.
//
// Determinism is the design center. Every probabilistic fault kind
// draws from its own splitmix64-derived stream per message class, so
// enabling one fault kind never perturbs another's draw sequence, and a
// rate of zero consumes no randomness at all — a plan with all rates
// zero leaves a trial byte-identical to one with no injector attached.
// Targeted rules (drop the first UNM from node 5 to node 4, ...) match
// purely on frame metadata and consume no randomness either, so they
// compose with rate-based chaos without disturbing it. Trials execute
// single-threaded on their own engine, which is what makes the whole
// harness byte-identical across runner worker counts.
package faults

import (
	"math/rand"
	"sort"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// AnyNode is the wildcard node for Rule and Partition matching. It is
// distinct from dataplane.NodeController, which names the controller
// end of a control-channel frame.
const AnyNode topo.NodeID = -1 << 30

// Rates holds the probabilistic fault intensities for one message
// class. A zero rate disables the kind and consumes no randomness.
type Rates struct {
	// Drop is the per-frame loss probability.
	Drop float64
	// Duplicate is the per-frame probability of at-least-once delivery
	// (a second copy lands one millisecond after the first).
	Duplicate float64
	// Corrupt is the per-frame probability of detectable damage: the
	// frame is truncated or its type byte is mangled in place, so the
	// receiver counts a decode error — the software analogue of a frame
	// failing its CRC.
	Corrupt float64
	// Reorder is the per-frame probability of an extra hold of up to
	// ReorderBy, long enough to land the frame behind later traffic.
	Reorder   float64
	ReorderBy time.Duration
	// Jitter, when nonzero, adds a uniform [0, Jitter] delay to every
	// frame of the class.
	Jitter time.Duration
}

// enabled reports whether any fault kind of the class is active.
func (r Rates) enabled() bool {
	return r.Drop > 0 || r.Duplicate > 0 || r.Corrupt > 0 || r.Reorder > 0 || r.Jitter > 0
}

// RuleAction is the deterministic effect of a matched Rule.
type RuleAction uint8

// Rule actions.
const (
	ActDrop RuleAction = iota
	ActDuplicate
	ActCorrupt
)

// Class bits for Rule.Classes.
const (
	ClassData uint8 = 1 << dataplane.FaultData
	ClassUp   uint8 = 1 << dataplane.FaultControlUp
	ClassDown uint8 = 1 << dataplane.FaultControlDown
)

// Rule is a targeted, randomness-free fault: it fires on the first
// Count frames matching its filters (Count 0 = unlimited). Rules are
// the plan-level replacement for the bespoke Drop/Duplicate/Mangle
// closures the protocol recovery tests used to wire by hand.
type Rule struct {
	// From/To filter the frame's endpoints (AnyNode = wildcard; the
	// controller end of a control frame is dataplane.NodeController).
	From, To topo.NodeID
	// Type filters on the wire message type (TypeInvalid = any).
	Type packet.MsgType
	// Classes is a bitmask of Class* values (0 = all classes).
	Classes uint8
	Action  RuleAction
	Count   int
}

// DropMatching builds a rule dropping the first count matching frames.
func DropMatching(from, to topo.NodeID, t packet.MsgType, count int) Rule {
	return Rule{From: from, To: to, Type: t, Action: ActDrop, Count: count}
}

// DuplicateMatching builds a rule duplicating the first count matching
// frames.
func DuplicateMatching(from, to topo.NodeID, t packet.MsgType, count int) Rule {
	return Rule{From: from, To: to, Type: t, Action: ActDuplicate, Count: count}
}

// CorruptMatching builds a rule corrupting the first count matching
// frames (deterministic half-length truncation).
func CorruptMatching(from, to topo.NodeID, t packet.MsgType, count int) Rule {
	return Rule{From: from, To: to, Type: t, Action: ActCorrupt, Count: count}
}

// Crash schedules a fail-stop switch outage: Node goes down at virtual
// instant At and, if Restore is nonzero, comes back at Restore with its
// committed rules intact and its soft state lost.
type Crash struct {
	Node    topo.NodeID
	At      time.Duration
	Restore time.Duration
}

// Burst is a scheduled rate-burst window: while From <= now < Until the
// injector's effective per-class rates are the kind-wise maximum of the
// plan's ambient rates and the burst's. Bursts are how a storm schedule
// (see BuildStorm) turns steady background chaos into recurring episodes
// — a loss spike, a corruption wave — without touching the ambient plan.
// Overlapping bursts combine kind-wise, again by maximum.
type Burst struct {
	From, Until    time.Duration
	Data, Up, Down Rates
}

// Partition is a controller-channel outage window: control frames to
// and from Node (AnyNode = every switch) are dropped while From <= now
// < Until.
type Partition struct {
	Node        topo.NodeID
	From, Until time.Duration
}

// Plan is a complete, self-describing fault schedule for one trial.
// The zero value injects nothing.
type Plan struct {
	// Seed feeds the injector's random streams. Zero means "derive from
	// the trial seed" (wiring substitutes the trial seed at attach
	// time), so grid sweeps get independent chaos per trial for free.
	Seed int64

	// Data, Up, and Down are the probabilistic intensities for
	// switch-to-switch, switch-to-controller, and controller-to-switch
	// frames respectively.
	Data, Up, Down Rates

	Rules      []Rule
	Crashes    []Crash
	Partitions []Partition
	Bursts     []Burst
}

// Active reports whether the plan can affect a trial at all.
func (p *Plan) Active() bool {
	return p.Data.enabled() || p.Up.enabled() || p.Down.enabled() ||
		len(p.Rules) > 0 || len(p.Crashes) > 0 || len(p.Partitions) > 0 ||
		len(p.Bursts) > 0
}

// Stats counts injector decisions, split by origin.
type Stats struct {
	Inspected      uint64 // frames offered to the injector
	Dropped        uint64 // rate-based drops
	Duplicated     uint64 // rate-based duplicates
	Corrupted      uint64 // rate-based corruptions
	Reordered      uint64 // rate-based reorder holds
	Jittered       uint64 // frames with jitter applied
	PartitionDrops uint64 // drops inside partition windows
	RuleDrops      uint64
	RuleDups       uint64
	RuleCorrupts   uint64
	Crashes        uint64 // executed crash events
	Restores       uint64 // executed restore events
}

// Faulted reports the total number of frames the injector affected.
func (s *Stats) Faulted() uint64 {
	return s.Dropped + s.Duplicated + s.Corrupted + s.Reordered +
		s.PartitionDrops + s.RuleDrops + s.RuleDups + s.RuleCorrupts
}

// fault kinds index the per-class stream array.
const (
	kindDrop = iota
	kindDuplicate
	kindCorrupt
	kindReorder
	kindJitter
	numKinds
)

// Injector implements dataplane.FaultInjector for one attached network.
type Injector struct {
	plan Plan
	net  *dataplane.Network

	// rng holds one independent stream per (message class, fault kind),
	// each seeded through splitmix64 so the streams are uncorrelated.
	rng [3][numKinds]*rand.Rand

	// ruleLeft is the remaining fire budget per rule (-1 = unlimited);
	// ruleHits counts fires.
	ruleLeft []int
	ruleHits []int

	// segs is the precomputed burst timeline: effective per-class rates
	// for each half-open interval between burst boundaries, nil when the
	// plan has no bursts (so burst-free plans stay byte-identical to the
	// pre-burst injector). segIdx is the monotonic cursor — virtual time
	// never runs backward, so Inspect advances it in amortized O(1).
	segs   []rateSeg
	segIdx int

	// parts is the plan's partition list sorted by From (a private copy;
	// plans are shared across a grid's trials and must not be mutated),
	// with partIdx skipping the expired prefix.
	parts   []Partition
	partIdx int

	Stats Stats
}

// rateSeg is one interval of the burst timeline: from this instant until
// the next segment's start, rates[class] is in effect.
type rateSeg struct {
	from  time.Duration
	rates [3]Rates
}

// maxRates merges b into a kind-wise: each probability and delay bound
// takes the larger of the two, so overlapping bursts and ambient chaos
// compose monotonically (a burst can only add faults, never mask them).
func maxRates(a, b Rates) Rates {
	if b.Drop > a.Drop {
		a.Drop = b.Drop
	}
	if b.Duplicate > a.Duplicate {
		a.Duplicate = b.Duplicate
	}
	if b.Corrupt > a.Corrupt {
		a.Corrupt = b.Corrupt
	}
	if b.Reorder > a.Reorder {
		a.Reorder = b.Reorder
	}
	if b.ReorderBy > a.ReorderBy {
		a.ReorderBy = b.ReorderBy
	}
	if b.Jitter > a.Jitter {
		a.Jitter = b.Jitter
	}
	return a
}

// splitmix64 is the stream-splitting mixer (Steele et al.): it turns
// sequential stream indexes into uncorrelated 64-bit seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d649bb133111eb
	x ^= x >> 31
	return x
}

// Attach installs plan on net and returns the live injector. Crash and
// restore events are scheduled on the network's engine immediately.
func Attach(net *dataplane.Network, plan Plan) *Injector {
	inj := &Injector{plan: plan, net: net}
	for c := 0; c < 3; c++ {
		for k := 0; k < numKinds; k++ {
			seed := splitmix64(uint64(plan.Seed)<<8 | uint64(c*numKinds+k+1))
			inj.rng[c][k] = rand.New(rand.NewSource(int64(seed)))
		}
	}
	inj.ruleLeft = make([]int, len(plan.Rules))
	inj.ruleHits = make([]int, len(plan.Rules))
	for i, r := range plan.Rules {
		if r.Count == 0 {
			inj.ruleLeft[i] = -1
		} else {
			inj.ruleLeft[i] = r.Count
		}
	}
	inj.buildSegments()
	if len(plan.Partitions) > 0 {
		inj.parts = append([]Partition(nil), plan.Partitions...)
		sort.SliceStable(inj.parts, func(i, j int) bool {
			return inj.parts[i].From < inj.parts[j].From
		})
	}
	net.Faults = inj
	for _, cr := range plan.Crashes {
		sw := net.Switch(cr.Node)
		net.Eng.ScheduleAt(cr.At, func() {
			if !sw.Down() {
				inj.Stats.Crashes++
			}
			sw.Crash()
		})
		if cr.Restore > 0 {
			net.Eng.ScheduleAt(cr.Restore, func() {
				if sw.Down() {
					inj.Stats.Restores++
				}
				sw.Restore()
			})
		}
	}
	return inj
}

// RuleHits reports how many frames rule i has fired on.
func (inj *Injector) RuleHits(i int) int { return inj.ruleHits[i] }

// Plan returns the attached plan.
func (inj *Injector) Plan() *Plan { return &inj.plan }

// classRates returns the plan's rates for a fault class.
func (inj *Injector) classRates(class dataplane.FaultClass) *Rates {
	switch class {
	case dataplane.FaultData:
		return &inj.plan.Data
	case dataplane.FaultControlUp:
		return &inj.plan.Up
	default:
		return &inj.plan.Down
	}
}

// buildSegments flattens the plan's bursts into the segment timeline:
// boundaries are every burst From/Until (plus zero), and each segment's
// effective rates are the ambient rates merged kind-wise with every
// burst covering the segment. Quadratic in the burst count, paid once
// at attach.
func (inj *Injector) buildSegments() {
	if len(inj.plan.Bursts) == 0 {
		return
	}
	bounds := []time.Duration{0}
	for _, b := range inj.plan.Bursts {
		if b.Until <= b.From {
			continue
		}
		bounds = append(bounds, b.From, b.Until)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	for _, at := range bounds {
		if n := len(inj.segs); n > 0 && inj.segs[n-1].from == at {
			continue
		}
		seg := rateSeg{from: at, rates: [3]Rates{inj.plan.Data, inj.plan.Up, inj.plan.Down}}
		for _, b := range inj.plan.Bursts {
			if b.From <= at && at < b.Until {
				seg.rates[dataplane.FaultData] = maxRates(seg.rates[dataplane.FaultData], b.Data)
				seg.rates[dataplane.FaultControlUp] = maxRates(seg.rates[dataplane.FaultControlUp], b.Up)
				seg.rates[dataplane.FaultControlDown] = maxRates(seg.rates[dataplane.FaultControlDown], b.Down)
			}
		}
		inj.segs = append(inj.segs, seg)
	}
}

// effectiveRates returns the rates in force for class at the current
// virtual instant: the ambient plan rates when no bursts exist, else the
// precomputed segment under the monotonic cursor.
func (inj *Injector) effectiveRates(class dataplane.FaultClass) *Rates {
	if inj.segs == nil {
		return inj.classRates(class)
	}
	now := inj.net.Eng.Now()
	for inj.segIdx+1 < len(inj.segs) && inj.segs[inj.segIdx+1].from <= now {
		inj.segIdx++
	}
	return &inj.segs[inj.segIdx].rates[class]
}

// matchRule reports whether rule i applies to the frame.
func (inj *Injector) matchRule(i int, class dataplane.FaultClass, from, to topo.NodeID, raw []byte) bool {
	r := &inj.plan.Rules[i]
	if inj.ruleLeft[i] == 0 {
		return false
	}
	if r.Classes != 0 && r.Classes&(1<<class) == 0 {
		return false
	}
	if r.From != AnyNode && r.From != from {
		return false
	}
	if r.To != AnyNode && r.To != to {
		return false
	}
	if r.Type != packet.TypeInvalid && (len(raw) == 0 || packet.MsgType(raw[0]) != r.Type) {
		return false
	}
	return true
}

// inPartition reports whether a control frame touching node is inside a
// partition window at the current virtual time. Windows are scanned in
// From order; the cursor permanently skips fully expired prefix windows
// (time is monotonic), so long storm schedules cost amortized O(active).
func (inj *Injector) inPartition(node topo.NodeID) bool {
	now := inj.net.Eng.Now()
	for inj.partIdx < len(inj.parts) && inj.parts[inj.partIdx].Until <= now {
		inj.partIdx++
	}
	for i := inj.partIdx; i < len(inj.parts); i++ {
		p := inj.parts[i]
		if p.From > now {
			break
		}
		if p.Until <= now {
			continue
		}
		if p.Node == AnyNode || p.Node == node {
			return true
		}
	}
	return false
}

// ActivePartitionEnd reports whether any partition window (for any node)
// covers the current virtual instant and, if so, the latest Until among
// the covering windows — the earliest moment the control channel is
// guaranteed clear of every currently active window. Harnesses use it to
// defer controller-driven work (e.g. reroute trigger waves) past an
// outage instead of burning retrigger budget into a black hole.
func (inj *Injector) ActivePartitionEnd() (time.Duration, bool) {
	now := inj.net.Eng.Now()
	var end time.Duration
	active := false
	for i := inj.partIdx; i < len(inj.parts); i++ {
		p := inj.parts[i]
		if p.From > now {
			break
		}
		if p.Until <= now {
			continue
		}
		active = true
		if p.Until > end {
			end = p.Until
		}
	}
	return end, active
}

// corruptDetectably damages raw in place so that the receiver's decode
// is guaranteed to fail — the model of a frame whose CRC catches the
// damage. Even draws truncate; odd draws set the type byte's high bit
// (an unknown message type), exercising both decode error paths.
func corruptDetectably(r *rand.Rand, raw []byte) []byte {
	if len(raw) == 0 {
		return raw
	}
	if r.Intn(2) == 0 {
		return raw[:r.Intn(len(raw))]
	}
	raw[0] |= 0x80
	return raw
}

// Inspect implements dataplane.FaultInjector. Targeted rules run first
// (consuming no randomness), then partition windows, then the rate
// draws — each kind from its own stream, each gated on a nonzero rate.
// All corruption rewrites alias raw's allocation, as the interface
// requires.
func (inj *Injector) Inspect(class dataplane.FaultClass, from, to topo.NodeID, raw []byte) ([]byte, dataplane.FaultAction) {
	inj.Stats.Inspected++
	var act dataplane.FaultAction

	for i := range inj.plan.Rules {
		if !inj.matchRule(i, class, from, to, raw) {
			continue
		}
		if inj.ruleLeft[i] > 0 {
			inj.ruleLeft[i]--
		}
		inj.ruleHits[i]++
		switch inj.plan.Rules[i].Action {
		case ActDrop:
			inj.Stats.RuleDrops++
			act.Drop = true
			return raw, act
		case ActDuplicate:
			inj.Stats.RuleDups++
			act.Duplicate = true
		case ActCorrupt:
			inj.Stats.RuleCorrupts++
			raw = raw[:len(raw)/2]
		}
		break // first matching rule wins
	}

	if class != dataplane.FaultData && len(inj.plan.Partitions) > 0 {
		node := from
		if class == dataplane.FaultControlDown {
			node = to
		}
		if inj.inPartition(node) {
			inj.Stats.PartitionDrops++
			act.Drop = true
			return raw, act
		}
	}

	rates := inj.effectiveRates(class)
	streams := &inj.rng[class]
	if rates.Drop > 0 && streams[kindDrop].Float64() < rates.Drop {
		inj.Stats.Dropped++
		act.Drop = true
		return raw, act
	}
	if rates.Duplicate > 0 && streams[kindDuplicate].Float64() < rates.Duplicate {
		inj.Stats.Duplicated++
		act.Duplicate = true
	}
	if rates.Corrupt > 0 && streams[kindCorrupt].Float64() < rates.Corrupt {
		inj.Stats.Corrupted++
		raw = corruptDetectably(streams[kindCorrupt], raw)
	}
	if rates.Reorder > 0 && rates.ReorderBy > 0 && streams[kindReorder].Float64() < rates.Reorder {
		inj.Stats.Reordered++
		act.Delay += time.Duration(1 + streams[kindReorder].Int63n(int64(rates.ReorderBy)))
	}
	if rates.Jitter > 0 {
		inj.Stats.Jittered++
		act.Delay += time.Duration(streams[kindJitter].Int63n(int64(rates.Jitter) + 1))
	}
	return raw, act
}
