// Package ppcu implements per-packet consistent updates with per-flow
// version stamping (in the style of Reitblatt et al.'s two-phase
// consistent updates and the PPCU line of work, arXiv 1609.00126): the
// controller first installs the new-version rules on every interior
// new-path node — old packets keep matching the previous configuration
// through the data plane's version-tag fallback — and only after every
// interior install is acknowledged does it flip the ingress, whose
// version stamp atomically moves all new packets onto the new
// configuration. Per-packet consistency holds by construction; the cost
// is a controller round-trip between the two phases and double rule
// occupancy until cleanup.
package ppcu

import (
	"fmt"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Handler is the PPCU data-plane agent: a plain two-phase switch that
// applies whatever rule the controller sends and acknowledges it. The
// consistency logic lives in the version-tag fallback of the shared
// data plane (Switch.TwoPhase) plus the coordinator's phase barrier.
type Handler struct {
	// Congestion enables the per-link capacity check before a move.
	Congestion bool
}

var _ dataplane.Handler = (*Handler)(nil)

// HandleUIM applies the instruction after the install delay and ACKs.
// Duplicate same-version instructions re-acknowledge, so the phase
// barrier survives lost acks.
func (h *Handler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}
	if st.HasRule && m.Version <= st.NewVersion {
		if m.Version == st.NewVersion {
			sw.SendUFM(&packet.UFM{
				Flow: m.Flow, Version: m.Version, Status: packet.StatusUpdated,
			})
		}
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Version, 0, 0)
		return
	}
	cp := *m
	h.apply(sw, &cp)
}

// apply commits the instructed rule (capacity-gated under Congestion).
func (h *Handler) apply(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	if st.HasRule && m.Version <= st.NewVersion {
		return // raced a newer commit while parked on capacity
	}
	newPort := dataplane.PortLocal
	if m.EgressPort != packet.NoPort {
		newPort = topo.PortID(int32(m.EgressPort))
	}
	if h.Congestion && newPort != dataplane.PortLocal &&
		!(st.HasRule && st.EgressPort == newPort && st.FlowSizeK >= m.FlowSizeK) {
		if sw.RemainingK(newPort) < uint64(m.FlowSizeK) {
			sw.Tracer().Verdict(int32(sw.ID), trace.CodeCapacityBlock,
				uint32(m.Flow), m.Version, uint32(int32(newPort)), uint32(m.FlowSizeK))
			sw.ParkOnCapacity(newPort, func() { h.apply(sw, m) })
			return
		}
		sw.StageReservation(m.Flow, newPort, m.FlowSizeK, m.Version)
	}
	sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyPPCU,
		uint32(m.Flow), m.Version, uint32(int32(newPort)), 0)
	portChanged := !st.HasRule || st.EgressPort != newPort
	sw.Apply(portChanged, func() {
		if sw.CommitState(m.Flow, dataplane.Commit{
			Port:        newPort,
			Version:     m.Version,
			Distance:    m.NewDistance,
			OldVersion:  st.NewVersion,
			OldDistance: st.NewDistance,
			SizeK:       m.FlowSizeK,
			Type:        packet.UpdateSingle,
		}) {
			sw.SendUFM(&packet.UFM{
				Flow: m.Flow, Version: m.Version, Status: packet.StatusUpdated,
			})
		}
	})
}

// HandleUNM is unused by PPCU.
func (h *Handler) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {}

// Coordinator drives two-phase PPCU updates over the shared tracker.
type Coordinator struct {
	Ctl *controlplane.Controller
	// Flips counts completed phase-1 → phase-2 transitions
	// (diagnostics, reported via the wiring metrics hook).
	Flips uint64

	runs map[runKey]*run
}

type runKey struct {
	flow    packet.FlowID
	version uint32
}

// run is one in-flight two-phase update.
type run struct {
	u *controlplane.UpdateStatus
	// pending is the outstanding phase-1 ack set.
	pending map[topo.NodeID]bool
	// targets/msgs are the phase-1 instructions (interior nodes).
	targets []topo.NodeID
	msgs    []packet.Message
	// ingress/ingressUIM is the phase-2 flip instruction.
	ingress    topo.NodeID
	ingressUIM *packet.UIM
	flipped    bool
}

// NewCoordinator wires a PPCU control plane over the shared tracker.
func NewCoordinator(ctl *controlplane.Controller) *Coordinator {
	c := &Coordinator{Ctl: ctl, runs: make(map[runKey]*run)}
	prevUFM := ctl.OnUFM
	ctl.OnUFM = func(u packet.UFM) {
		if prevUFM != nil {
			prevUFM(u)
		}
		c.onUFM(u)
	}
	prevDone := ctl.OnComplete
	ctl.OnComplete = func(u *controlplane.UpdateStatus) {
		if prevDone != nil {
			prevDone(u)
		}
		delete(c.runs, runKey{u.Flow, u.Version})
	}
	return c
}

// TriggerUpdate starts a two-phase update of f to newPath: phase 1
// installs the new rules on every changed interior node, phase 2 flips
// the ingress once all of phase 1 is acknowledged.
func (c *Coordinator) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	rec, ok := c.Ctl.Flow(f)
	if !ok {
		return nil, fmt.Errorf("ppcu: unknown flow %d", f)
	}
	if err := c.Ctl.Topo.ValidatePath(newPath); err != nil {
		return nil, fmt.Errorf("ppcu: new path: %w", err)
	}
	version := rec.Version + 1
	oldPath := rec.Path
	t := c.Ctl.Topo
	L := len(newPath)

	mk := func(i int) *packet.UIM {
		n := newPath[i]
		m := &packet.UIM{
			Flow: f, Version: version,
			NewDistance: uint16(L - 1 - i),
			EgressPort:  packet.NoPort,
			ChildPort:   packet.NoPort,
			FlowSizeK:   rec.SizeK,
			UpdateType:  packet.UpdateSingle,
		}
		if i+1 < L {
			m.EgressPort = uint16(t.PortTo(n, newPath[i+1]))
		}
		if i == 0 {
			m.Role |= packet.RoleIngress
		}
		if i == L-1 {
			m.Role |= packet.RoleEgress
		}
		return m
	}

	r := &run{ingress: newPath[0], ingressUIM: mk(0), pending: make(map[topo.NodeID]bool)}
	// Phase 1: every non-ingress node whose rule changes (or that has no
	// rule yet). Unchanged interiors keep forwarding correctly for both
	// versions, so they need no install.
	pendingNodes := []topo.NodeID{newPath[0]} // the flip completes the update
	for i := 1; i < L; i++ {
		// A node is changed when its old next hop differs from the new
		// one; terminal delivery (egress) counts as next hop "self".
		n := newPath[i]
		oldHop, onOld := nextOf(oldPath, n)
		newHop, _ := nextOf(newPath, n)
		if onOld && oldHop == newHop {
			continue
		}
		r.pending[n] = true
		pendingNodes = append(pendingNodes, n)
		r.targets = append(r.targets, n)
		r.msgs = append(r.msgs, mk(i))
	}

	u := c.Ctl.TrackOnly(f, version, oldPath, newPath, pendingNodes, rec)
	r.u = u
	u.Resend = func() { c.resend(r) }
	c.runs[runKey{f, version}] = r
	if len(r.targets) == 0 {
		c.flip(r)
		return u, nil
	}
	for i, m := range r.msgs {
		c.Ctl.Net.SendToSwitch(r.targets[i], m, 0)
	}
	return u, nil
}

// nextOf returns n's successor on path (the node itself at the
// terminal), and whether n is on path at all.
func nextOf(path []topo.NodeID, n topo.NodeID) (topo.NodeID, bool) {
	for i, p := range path {
		if p == n {
			if i+1 < len(path) {
				return path[i+1], true
			}
			return n, true
		}
	}
	return 0, false
}

// flip launches phase 2: the ingress commit stamps all new packets with
// the new version, atomically moving the flow onto the new rules.
func (c *Coordinator) flip(r *run) {
	r.flipped = true
	c.Flips++
	c.Ctl.Net.SendToSwitch(r.ingress, r.ingressUIM, 0)
}

// resend is the recovery hook: before the flip it re-sends the
// outstanding phase-1 instructions (applied nodes re-ack), after it the
// flip instruction itself.
func (c *Coordinator) resend(r *run) {
	if !r.flipped {
		for i, m := range r.msgs {
			if r.pending[r.targets[i]] {
				c.Ctl.Net.SendToSwitch(r.targets[i], m, 0)
			}
		}
		return
	}
	c.Ctl.Net.SendToSwitch(r.ingress, r.ingressUIM, 0)
}

// onUFM advances the phase barrier on per-node acknowledgements.
func (c *Coordinator) onUFM(m packet.UFM) {
	if m.Status != packet.StatusUpdated {
		return
	}
	r, ok := c.runs[runKey{m.Flow, m.Version}]
	if !ok {
		return
	}
	node := topo.NodeID(m.Node)
	if !r.pending[node] {
		return
	}
	delete(r.pending, node)
	if len(r.pending) == 0 && !r.flipped {
		c.flip(r)
	}
}
