package dataplane

import (
	"fmt"
	"sync"
	"time"

	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// FaultClass classifies a frame for the fault injector: the three
// transmission paths of the fabric are faultable independently.
type FaultClass uint8

// Fault classes.
const (
	// FaultData is a switch-to-switch frame (SendPort).
	FaultData FaultClass = iota
	// FaultControlUp is a switch-to-controller frame (SendToController).
	FaultControlUp
	// FaultControlDown is a controller-to-switch frame (SendToSwitch).
	FaultControlDown
)

// FaultAction is the injector's verdict on one frame about to be
// transmitted.
type FaultAction struct {
	// Drop discards the frame.
	Drop bool
	// Duplicate delivers a second copy one millisecond after the first
	// (at-least-once delivery).
	Duplicate bool
	// Delay adds latency to the frame: small values model jitter, values
	// above the link latency reorder the frame behind later traffic.
	Delay time.Duration
}

// FaultInjector decides the fate of every transmitted frame. It is the
// seam internal/faults plugs into; the legacy per-hook closures
// (Drop/Duplicate/Mangle/...) remain as a thin compatibility shim for
// targeted unit tests and are consulted before the injector.
type FaultInjector interface {
	// Inspect may corrupt the frame by rewriting raw in place; a
	// returned slice must alias raw's allocation (in-place edits or
	// truncation only) so buffer recycling stays valid.
	Inspect(class FaultClass, from, to topo.NodeID, raw []byte) ([]byte, FaultAction)
}

// Network is the fabric connecting the switches of one topology: it
// serializes messages onto links, applies link latency, and offers
// failure-injection hooks (drop, corrupt, delay) plus observation hooks
// for the experiment harnesses.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology

	switches []*Switch

	// ControlLatency returns the control-channel latency between the
	// controller and the given switch (one direction).
	ControlLatency func(node topo.NodeID) time.Duration

	// ControllerRx receives controller-bound messages (FRM/UFM).
	ControllerRx func(from topo.NodeID, raw []byte)

	// Drop, when set, may discard a data-plane frame in flight.
	Drop func(from, to topo.NodeID, raw []byte) bool
	// Duplicate, when set, may deliver a data-plane frame twice (tests
	// protocol idempotence under at-least-once delivery).
	Duplicate func(from, to topo.NodeID, raw []byte) bool
	// Mangle, when set, may rewrite a data-plane frame in flight
	// (bit-flip / corruption injection).
	Mangle func(from, to topo.NodeID, raw []byte) []byte
	// ExtraDelay, when set, adds latency to a data-plane frame.
	ExtraDelay func(from, to topo.NodeID, raw []byte) time.Duration

	// Faults, when set, is consulted for every frame on all three
	// transmission paths — data plane and both control-channel
	// directions (internal/faults implements it). It runs after the
	// legacy closures above, so with no injector attached the fabric
	// behaves byte-identically to earlier revisions.
	Faults FaultInjector

	// Proc, when set, splits the fabric across OS processes
	// (deployment mode): frames addressed to nodes this process does
	// not own are serialized into fresh buffers and handed to the
	// transport instead of the in-memory delivery queue. Sends are
	// trace-recorded before the intercept, so a process's flight
	// recorder captures its half of the conversation exactly as the
	// simulator would.
	Proc Transport

	// DropControl, when set, may discard a controller<->switch frame.
	DropControl func(node topo.NodeID, toController bool, raw []byte) bool
	// ExtraControlDelay, when set, adds latency to a controller<->switch
	// frame (models stragglers and reordering, §4.1).
	ExtraControlDelay func(node topo.NodeID, toController bool, raw []byte) time.Duration

	// OnApply observes committed rule changes (measurement only).
	OnApply func(node topo.NodeID, f packet.FlowID, version uint32)
	// OnDeliver observes local data-packet delivery at an egress.
	OnDeliver func(node topo.NodeID, d *packet.Data)

	// pool recycles message structs and marshal buffers; deliveries and
	// frames drawn from it live only until Receive/ControllerRx return.
	pool packet.Pool
	// freeDeliv recycles in-flight delivery records; deliverFn is the
	// method value bound once so scheduling a delivery allocates nothing.
	freeDeliv []*delivery
	deliverFn func(any)

	// flows interns flow IDs into dense indexes shared by every switch of
	// the fabric (see flowTable). The table is shared by all region views
	// of a sharded fabric.
	flows *flowTable

	// Sharded execution (see AttachShards; all zero on an unsharded
	// fabric). A sharded fabric has one *region view* per region — a
	// shallow copy of the base network bound to that region's engine,
	// with its own pool and delivery free list — and every switch is
	// rebound to its region's view, so all engine access from switch code
	// automatically lands on the right event queue. The base network
	// (region -1) carries the controller and resident switches.
	sh       *sim.Sharded
	region   int32
	regionOf []int32
	views    []*Network
	base     *Network
}

// flowTable interns flow IDs into dense indexes in first-touch order,
// with a free list so retired flows' slots are recycled: under
// streaming churn the table (and every per-switch dense slice indexed
// by it) is sized by *live* flows, not by every flow that ever existed.
// On an unsharded fabric it is single-threaded and lock-free; a sharded
// fabric shares one table across region workers and takes the mutex.
// Index values then depend on worker interleaving, which is safe
// because nothing observable orders by index outside the congestion
// path (which forces sequential execution) and the auditor (which also
// forces sequential execution); retirement itself only runs in
// root-engine (barrier) context.
type flowTable struct {
	mu     sync.Mutex
	shared bool
	idx    map[packet.FlowID]int32
	ids    []packet.FlowID // slot-indexed; dead slots hold their last ID
	live   []bool          // slot-indexed liveness
	free   []int32         // recycled slots, LIFO
	// scratch is the reusable backing array of FlowIDs(): the compacted
	// live view, rebuilt per call.
	scratch []packet.FlowID
}

func (t *flowTable) slot(f packet.FlowID) int32 {
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	if i, ok := t.idx[f]; ok {
		return i
	}
	var i int32
	if k := len(t.free); k > 0 {
		i = t.free[k-1]
		t.free = t.free[:k-1]
		t.ids[i] = f
		t.live[i] = true
	} else {
		i = int32(len(t.ids))
		t.ids = append(t.ids, f)
		t.live = append(t.live, true)
	}
	t.idx[f] = i
	return i
}

// release frees f's slot for reuse. The (f, i) pair is re-checked under
// the lock so a stale release can never free a reassigned slot.
func (t *flowTable) release(f packet.FlowID, i int32) {
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	if j, ok := t.idx[f]; !ok || j != i {
		return
	}
	delete(t.idx, f)
	t.live[i] = false
	t.free = append(t.free, i)
}

func (t *flowTable) peek(f packet.FlowID) (int32, bool) {
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	i, ok := t.idx[f]
	return i, ok
}

func (t *flowTable) id(i int32) packet.FlowID {
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	return t.ids[i]
}

// delivery is a pooled in-flight frame: switch-bound (ctrl false, via
// node/inPort) or controller-bound (ctrl true, node = sender). recycle
// marks the last delivery of raw, after which the buffer returns to the
// pool.
type delivery struct {
	ctrl    bool
	node    topo.NodeID
	inPort  topo.PortID
	raw     []byte
	recycle bool
}

// NewNetwork builds a switch per topology node. Control latency defaults
// to zero until configured.
func NewNetwork(eng *sim.Engine, t *topo.Topology) *Network {
	n := &Network{Eng: eng, Topo: t, region: -1}
	n.flows = &flowTable{idx: make(map[packet.FlowID]int32)}
	n.deliverFn = n.deliver
	n.switches = make([]*Switch, t.NumNodes())
	for _, id := range t.Nodes() {
		n.switches[id] = newSwitch(id, n)
	}
	return n
}

// flowSlot interns f, returning its dense fabric-wide index.
func (n *Network) flowSlot(f packet.FlowID) int32 { return n.flows.slot(f) }

// peekFlowSlot returns f's dense index without interning it.
func (n *Network) peekFlowSlot(f packet.FlowID) (int32, bool) { return n.flows.peek(f) }

// Pool returns the network's message/buffer pool.
func (n *Network) Pool() *packet.Pool { return &n.pool }

// Tracer returns the trial's flight recorder (nil = tracing off). All
// recorder methods are nil-receiver-safe, so call sites may chain
// without a guard; hot paths load it once and branch.
func (n *Network) Tracer() *trace.Recorder { return n.Eng.Trace }

// MsgMeta extracts the (flow, version) pair a protocol message carries,
// for the flight recorder. Messages without a version report zero.
func MsgMeta(m packet.Message) (flow uint32, ver uint32) {
	switch m := m.(type) {
	case *packet.UIM:
		return uint32(m.Flow), m.Version
	case *packet.UNM:
		return uint32(m.Flow), m.Vn
	case *packet.UFM:
		return uint32(m.Flow), m.Version
	case *packet.FRM:
		return uint32(m.Flow), 0
	case *packet.CLN:
		return uint32(m.Flow), m.Version
	case *packet.EZI:
		return uint32(m.Flow), m.Version
	case *packet.EZN:
		return uint32(m.Flow), m.Version
	}
	return 0, 0
}

// recordSend logs an outbound protocol frame. Data packets are the
// per-packet forwarding hot path and are deliberately not traced (probe
// outcomes surface as StatusProbeOK UFMs).
func (n *Network) recordSend(tr *trace.Recorder, from, to topo.NodeID, m packet.Message) {
	if b, ok := m.(*packet.UIMBatch); ok {
		// A batch frame traces as its contained UIMs, so batched and
		// unbatched runs produce comparable message summaries.
		for _, it := range b.Items {
			tr.Send(int32(from), uint8(packet.TypeUIM), int32(to), uint32(it.Flow), it.Version)
		}
		return
	}
	if t := m.Type(); t != packet.TypeData {
		f, v := MsgMeta(m)
		tr.Send(int32(from), uint8(t), int32(to), f, v)
	}
}

// FlowIDs returns every *live* flow interned by the fabric, in
// deterministic slot order (first-touch order until slots recycle).
// The slice is owned by the network and rebuilt on every call: callers
// (the invariant auditor) must treat it as read-only and must not
// retain it across calls.
func (n *Network) FlowIDs() []packet.FlowID {
	t := n.flows
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	t.scratch = t.scratch[:0]
	for i, f := range t.ids {
		if t.live[i] {
			t.scratch = append(t.scratch, f)
		}
	}
	return t.scratch
}

// NumFlowSlots returns the size of the dense flow-slot space (live
// peak, not historical count). Slot indexes returned by the interner
// are always < NumFlowSlots at the time of interning.
func (n *Network) NumFlowSlots() int {
	t := n.flows
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	return len(t.ids)
}

// FlowAt returns the live flow occupying dense slot i, or false for a
// dead (recycled, currently vacant) slot.
func (n *Network) FlowAt(i int32) (packet.FlowID, bool) {
	t := n.flows
	if t.shared {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	if i < 0 || int(i) >= len(t.ids) || !t.live[i] {
		return 0, false
	}
	return t.ids[i], true
}

// RetireFlow removes every trace of a departed flow from the fabric —
// per-switch state blocks (recycled into each switch's free list),
// capacity reservations, waiter-table slots — and releases its dense
// slot for reuse. Callers must only retire quiescent flows (no update
// in flight): late frames for a retired flow are dropped harmlessly by
// the PeekState guards, but a commit staged *before* retirement would
// re-intern the ID into a fresh slot. Returns false if f was never
// interned (or already retired).
func (n *Network) RetireFlow(f packet.FlowID) bool {
	i, ok := n.flows.peek(f)
	if !ok {
		return false
	}
	for _, sw := range n.switches {
		sw.retireFlow(i, f)
	}
	n.flows.release(f, i)
	return true
}

// newDelivery pops a delivery record from the free list.
func (n *Network) newDelivery() *delivery {
	if k := len(n.freeDeliv); k > 0 {
		dv := n.freeDeliv[k-1]
		n.freeDeliv = n.freeDeliv[:k-1]
		return dv
	}
	return &delivery{}
}

// deliver consumes a scheduled delivery record: it hands the frame to
// the destination (switch pipeline or controller), recycles the marshal
// buffer if this was its last use, and returns the record to the free
// list. It is scheduled through ScheduleArg with the bound deliverFn so
// the steady-state send path allocates nothing.
func (n *Network) deliver(x any) {
	dv := x.(*delivery)
	if dv.ctrl {
		n.ControllerRx(dv.node, dv.raw)
	} else if sw := n.switches[dv.node]; sw.down {
		// Frames addressed to a crashed switch vanish at its port.
		sw.Stats.CrashDrops++
	} else {
		sw.Receive(dv.raw, dv.inPort)
	}
	if dv.recycle {
		n.pool.PutBuf(dv.raw)
	}
	dv.raw = nil
	n.freeDeliv = append(n.freeDeliv, dv)
}

// AttachShards converts the fabric to sharded execution over the
// sharded runtime sh, with regionOf mapping every node to its region
// (-1 = resident on the root engine). One region view per region is
// built and every non-resident switch is rebound to its region's view.
// Must be called before any traffic flows.
func (n *Network) AttachShards(sh *sim.Sharded, regionOf []int32) {
	n.sh = sh
	n.region = -1
	n.regionOf = regionOf
	n.base = n
	n.flows.shared = true
	n.views = make([]*Network, sh.NumRegions())
	for r := range n.views {
		v := &Network{}
		*v = *n
		v.Eng = sh.RegionEngine(r)
		v.region = int32(r)
		v.pool = packet.Pool{}
		v.freeDeliv = nil
		v.deliverFn = v.deliver
		n.views[r] = v
	}
	// Views were copied before n.views was populated; share the final
	// slice so every view can route to every other.
	for _, v := range n.views {
		v.views = n.views
	}
	for id, sw := range n.switches {
		if r := regionOf[id]; r >= 0 {
			sw.net = n.views[r]
		}
	}
	n.RefreshShardHooks()
}

// RefreshShardHooks copies the base network's hook fields into every
// region view and wraps OnApply so window-context commits replay at the
// barrier (where they may observe global state). The sharded runtime
// calls it at the start of every run, so hooks installed after wiring
// (experiment harnesses replace OnDeliver per trial) still propagate.
func (n *Network) RefreshShardHooks() {
	for r, v := range n.views {
		v.ControlLatency = n.ControlLatency
		v.ControllerRx = n.ControllerRx
		v.OnDeliver = n.OnDeliver
		v.Drop, v.Duplicate, v.Mangle, v.ExtraDelay = n.Drop, n.Duplicate, n.Mangle, n.ExtraDelay
		v.DropControl, v.ExtraControlDelay = n.DropControl, n.ExtraControlDelay
		v.Faults = n.Faults
		if chain := n.OnApply; chain != nil {
			sh, region := n.sh, int32(r)
			v.OnApply = func(node topo.NodeID, f packet.FlowID, ver uint32) {
				if sh.InWindow() {
					sh.LogHook(region, func() { chain(node, f, ver) })
					return
				}
				chain(node, f, ver)
			}
		} else {
			v.OnApply = nil
		}
	}
}

// scheduleDelivery routes one in-flight frame to its destination's
// execution context. Unsharded this is a plain engine insert; sharded,
// window-context cross-region (and controller-bound) sends are captured
// in the action log for the barrier, while barrier-context sends insert
// directly into the destination region's queue.
func (n *Network) scheduleDelivery(to topo.NodeID, ctrl bool, delay time.Duration, dv *delivery) {
	if n.sh == nil {
		n.Eng.ScheduleArg(delay, n.deliverFn, dv)
		return
	}
	dst, dr := n.base, int32(-1)
	if !ctrl {
		if r := n.regionOf[to]; r >= 0 {
			dst, dr = n.views[r], r
		}
	}
	if n.sh.InWindow() {
		if dr == n.region {
			// Same-region: stays inside this worker's window.
			n.Eng.ScheduleArg(delay, n.deliverFn, dv)
			return
		}
		// Cross-region: the lookahead guarantees the delivery instant is
		// at or beyond the window horizon, so barrier materialization
		// cannot miss its turn.
		n.sh.LogCross(n.region, n.Eng.Now()+delay, nil, dst.deliverFn, dv, dr)
		return
	}
	dst.Eng.ScheduleArg(delay, dst.deliverFn, dv)
}

// ScheduleNode schedules fn in node's execution context: its region
// engine under sharded execution, the trial engine otherwise (where it
// is exactly Eng.Schedule). Window-context calls are only legal from
// node's own region — i.e. from code already executing on that switch —
// which the sharded push path enforces for resident nodes and the
// region affinity of switch code guarantees elsewhere.
func (n *Network) ScheduleNode(node topo.NodeID, delay time.Duration, fn func()) sim.Timer {
	return n.switches[node].net.Eng.Schedule(delay, fn)
}

// Switch returns the switch at the given node.
func (n *Network) Switch(id topo.NodeID) *Switch { return n.switches[id] }

// Switches returns all switches indexed by NodeID.
func (n *Network) Switches() []*Switch { return n.switches }

// SetHandler installs h on every switch.
func (n *Network) SetHandler(h Handler) {
	for _, sw := range n.switches {
		sw.SetHandler(h)
	}
}

// SetInstallDelay installs the rule-install delay sampler on every switch.
func (n *Network) SetInstallDelay(f func() time.Duration) {
	for _, sw := range n.switches {
		sw.InstallDelay = f
	}
}

// Transport routes frames that leave this OS process in deployment
// mode (cmd/controllerd, cmd/switchd). The Network consults it on
// every send path; frames between two locally-owned parties stay on
// the in-memory queue, everything else crosses the wire. Forward*
// receive freshly-allocated buffers (never pooled) because a reliable
// transport retains them for retransmission.
type Transport interface {
	// LocalNode reports whether this process owns switch n.
	LocalNode(n topo.NodeID) bool
	// LocalController reports whether this process owns the controller.
	LocalController() bool
	// ForwardPort carries a switch-to-switch frame that will arrive at
	// to on inPort.
	ForwardPort(from, to topo.NodeID, inPort topo.PortID, raw []byte)
	// ForwardUp carries a switch-to-controller frame.
	ForwardUp(from topo.NodeID, raw []byte)
	// ForwardDown carries a controller-to-switch frame.
	ForwardDown(to topo.NodeID, raw []byte)
}

// SendPort serializes m and transmits it out the given port of from,
// delivering it to the neighbor after the link latency.
func (n *Network) SendPort(from topo.NodeID, port topo.PortID, m packet.Message) {
	if port == PortLocal || port == topo.InvalidPort {
		return
	}
	link, ok := n.Topo.LinkAt(from, port)
	if !ok {
		panic(fmt.Sprintf("dataplane: node %d has no port %d", from, port))
	}
	to := link.Other(from)
	if n.switches[from].down {
		return // a crashed switch transmits nothing
	}
	if tr := n.Eng.Trace; tr != nil {
		n.recordSend(tr, from, to, m)
	}
	if n.Proc != nil && !n.Proc.LocalNode(to) {
		n.Proc.ForwardPort(from, to, link.PortAt(to), packet.Marshal(m))
		return
	}
	raw := m.SerializeTo(n.pool.GetBuf())
	if n.Drop != nil && n.Drop(from, to, raw) {
		n.pool.PutBuf(raw)
		return
	}
	recycle := true
	if n.Mangle != nil {
		// The hook may return an aliased or test-owned slice; never
		// recycle a mangled frame.
		raw = n.Mangle(from, to, raw)
		recycle = false
	}
	delay := link.Latency
	if n.ExtraDelay != nil {
		delay += n.ExtraDelay(from, to, raw)
	}
	dup := n.Duplicate != nil && n.Duplicate(from, to, raw)
	if n.Faults != nil {
		var act FaultAction
		raw, act = n.Faults.Inspect(FaultData, from, to, raw)
		if act.Drop {
			if recycle {
				n.pool.PutBuf(raw)
			}
			return
		}
		dup = dup || act.Duplicate
		delay += act.Delay
	}
	inPort := link.PortAt(to)
	dv := n.newDelivery()
	*dv = delivery{node: to, inPort: inPort, raw: raw, recycle: recycle && !dup}
	n.scheduleDelivery(to, false, delay, dv)
	if dup {
		// Same raw delivered twice: only the second (last) delivery may
		// recycle the buffer.
		dv2 := n.newDelivery()
		*dv2 = delivery{node: to, inPort: inPort, raw: raw, recycle: recycle}
		n.scheduleDelivery(to, false, delay+time.Millisecond, dv2)
	}
}

// NodeController is the sentinel NodeID representing the controller end
// of a control-channel frame in fault-injector callbacks.
const NodeController topo.NodeID = -1

// SendToController serializes m and delivers it to the controller after
// the node's control-channel latency.
func (n *Network) SendToController(from topo.NodeID, m packet.Message) {
	if n.Proc != nil && !n.Proc.LocalController() {
		if n.switches[from].down {
			return
		}
		if tr := n.Eng.Trace; tr != nil {
			n.recordSend(tr, from, NodeController, m)
		}
		n.Proc.ForwardUp(from, packet.Marshal(m))
		return
	}
	if n.ControllerRx == nil {
		return
	}
	if n.switches[from].down {
		return // a crashed switch transmits nothing
	}
	if tr := n.Eng.Trace; tr != nil {
		n.recordSend(tr, from, NodeController, m)
	}
	raw := m.SerializeTo(n.pool.GetBuf())
	if n.DropControl != nil && n.DropControl(from, true, raw) {
		n.pool.PutBuf(raw)
		return
	}
	var delay time.Duration
	if n.ControlLatency != nil {
		delay = n.ControlLatency(from)
	}
	if n.ExtraControlDelay != nil {
		delay += n.ExtraControlDelay(from, true, raw)
	}
	var dup bool
	if n.Faults != nil {
		var act FaultAction
		raw, act = n.Faults.Inspect(FaultControlUp, from, NodeController, raw)
		if act.Drop {
			n.pool.PutBuf(raw)
			return
		}
		dup = act.Duplicate
		delay += act.Delay
	}
	// raw is valid only for the duration of the ControllerRx call; the
	// controller decodes (copying every field) and must not retain it.
	dv := n.newDelivery()
	*dv = delivery{ctrl: true, node: from, raw: raw, recycle: !dup}
	n.scheduleDelivery(from, true, delay, dv)
	if dup {
		dv2 := n.newDelivery()
		*dv2 = delivery{ctrl: true, node: from, raw: raw, recycle: true}
		n.scheduleDelivery(from, true, delay+time.Millisecond, dv2)
	}
}

// SendToSwitch serializes m at the controller and delivers it to node
// after the control-channel latency. The extraDelay parameter lets
// callers model per-message controller-side queuing.
func (n *Network) SendToSwitch(node topo.NodeID, m packet.Message, extraDelay time.Duration) {
	if tr := n.Eng.Trace; tr != nil {
		n.recordSend(tr, NodeController, node, m)
	}
	if n.Proc != nil && !n.Proc.LocalNode(node) {
		n.Proc.ForwardDown(node, packet.Marshal(m))
		return
	}
	raw := m.SerializeTo(n.pool.GetBuf())
	if n.DropControl != nil && n.DropControl(node, false, raw) {
		n.pool.PutBuf(raw)
		return
	}
	delay := extraDelay
	if n.ControlLatency != nil {
		delay += n.ControlLatency(node)
	}
	if n.ExtraControlDelay != nil {
		delay += n.ExtraControlDelay(node, false, raw)
	}
	var dup bool
	if n.Faults != nil {
		var act FaultAction
		raw, act = n.Faults.Inspect(FaultControlDown, NodeController, node, raw)
		if act.Drop {
			n.pool.PutBuf(raw)
			return
		}
		dup = act.Duplicate
		delay += act.Delay
	}
	dv := n.newDelivery()
	*dv = delivery{node: node, inPort: topo.InvalidPort, raw: raw, recycle: !dup}
	n.scheduleDelivery(node, false, delay, dv)
	if dup {
		dv2 := n.newDelivery()
		*dv2 = delivery{node: node, inPort: topo.InvalidPort, raw: raw, recycle: true}
		n.scheduleDelivery(node, false, delay+time.Millisecond, dv2)
	}
}

// InstallPath seeds forwarding rules for flow f along path with the given
// version and size, labeling distances by hop count to the egress. It is
// the experiment-setup counterpart of an initial SL deployment.
func (n *Network) InstallPath(f packet.FlowID, path []topo.NodeID, version uint32, sizeK uint32) {
	if err := n.Topo.ValidatePath(path); err != nil {
		panic(fmt.Sprintf("dataplane: InstallPath: %v", err))
	}
	k := len(path) - 1
	for i, node := range path {
		port := PortLocal
		if i < k {
			port = n.Topo.PortTo(node, path[i+1])
		}
		n.switches[node].InstallInitialRule(f, port, version, uint16(k-i), sizeK)
	}
}

// TracePath follows the current forwarding state of flow f from node
// start, returning the nodes visited (including start) until local
// delivery, a missing rule, or maxHops steps (loop guard).
func (n *Network) TracePath(f packet.FlowID, start topo.NodeID, maxHops int) (visited []topo.NodeID, delivered bool) {
	cur := start
	for hop := 0; hop <= maxHops; hop++ {
		visited = append(visited, cur)
		st, ok := n.switches[cur].PeekState(f)
		if !ok || !st.HasRule {
			return visited, false
		}
		if st.EgressPort == PortLocal {
			return visited, true
		}
		next, ok := n.Topo.NeighborAt(cur, st.EgressPort)
		if !ok {
			return visited, false
		}
		cur = next
	}
	return visited, false
}
