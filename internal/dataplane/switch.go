package dataplane

import (
	"time"

	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Handler implements an update protocol on top of the switch substrate.
// P4Update (internal/core) and the evaluation baselines plug in here.
type Handler interface {
	// HandleUIM processes a controller indication (or baseline
	// instruction encoded as a UIM).
	HandleUIM(sw *Switch, m *packet.UIM)
	// HandleUNM processes a data-plane notification arriving on inPort.
	HandleUNM(sw *Switch, m *packet.UNM, inPort topo.PortID)
}

// MessageHandler is an optional Handler extension for protocols with
// additional message types (the evaluation baselines).
type MessageHandler interface {
	HandleMessage(sw *Switch, m packet.Message, inPort topo.PortID)
}

// resubmitLatency models one pass through the BMv2 resubmission path.
const resubmitLatency = 100 * time.Microsecond

// Switch is one P4 forwarding device. Its per-flow and per-port state
// lives in dense slices instead of maps: flows are indexed by the
// fabric-wide interned flow index (Network.flowSlot), ports by their
// slot (real ports map to themselves, PortLocal to one extra trailing
// slot), so the busiest lookups of the simulation are array loads.
type Switch struct {
	ID  topo.NodeID
	net *Network
	// degree is the node's port count; port slots are 0..degree-1 for
	// real ports plus slot degree for PortLocal.
	degree int

	flowStates []*FlowState // dense by flow index; nil = no state yet
	// stateChunks slab-allocates FlowState values in fixed-capacity
	// blocks: pointers into a block never move (blocks are appended, not
	// regrown), and a fresh-flow touch costs one allocation per block
	// instead of one per flow.
	stateChunks [][]FlowState
	// freeStates recycles retired flows' state blocks (reset to fresh,
	// reservation-slice capacity kept), so steady-state churn allocates
	// no new slab blocks; freeUIMSlots recycles their waiter-table rows.
	freeStates   []*FlowState
	freeUIMSlots []int32
	reserved     []uint64 // kbps reserved per real egress port
	handler      Handler

	// InstallDelay samples the time a forwarding-rule change takes to
	// commit (the per-node update slowness of §9.1). Nil means instant.
	InstallDelay func() time.Duration

	// FRMEnabled makes the switch clone unknown-flow data packets to the
	// controller as Flow Report Messages.
	FRMEnabled bool

	// TwoPhase enables §11 two-phase-commit forwarding: the ingress
	// stamps packets with its committed version; switches forward
	// lower-tagged packets over their retained previous rule, yielding
	// per-packet consistency.
	TwoPhase bool

	// DataTap, when set, observes every data packet entering the switch
	// (used by the Fig-2 per-packet traces).
	DataTap func(sw *Switch, d *packet.Data, inPort topo.PortID)

	// capWaiters holds work parked on insufficient capacity or on the
	// priority gate, indexed by the slot of the egress port it waits for.
	capWaiters [][]parked
	// uimWaiters holds work parked until an indication arrives
	// (Alg. 1 line 10 / Alg. 2 line 5), indexed by the flow's lazily
	// assigned FlowState.uimSlot.
	uimWaiters [][]parked
	// highWaiting tracks, per egress-port slot, the HIGH priority flows
	// currently waiting to move onto that port (§7.4 gate). The sets are
	// tiny, so membership is a linear scan.
	highWaiting [][]packet.FlowID

	// down marks the switch crashed (fail-stop): it neither sends nor
	// receives, and its soft state is gone. epoch counts crashes so that
	// commits staged before a crash (Apply closures already in the event
	// queue) recognize they belong to a dead incarnation.
	down  bool
	epoch uint32

	Stats Stats
}

type parked struct {
	fire func()
}

// newSwitch wires a switch into its network.
func newSwitch(id topo.NodeID, net *Network) *Switch {
	deg := net.Topo.Degree(id)
	return &Switch{
		ID:          id,
		net:         net,
		degree:      deg,
		reserved:    make([]uint64, deg),
		capWaiters:  make([][]parked, deg+1),
		highWaiting: make([][]packet.FlowID, deg+1),
	}
}

// portSlot maps an egress port to its dense slot: real ports map to
// themselves, PortLocal to the extra trailing slot, and any other
// sentinel (topo.InvalidPort) to -1, meaning no slot — no capacity, no
// waiters.
func (sw *Switch) portSlot(port topo.PortID) int {
	if port >= 0 && int(port) < sw.degree {
		return int(port)
	}
	if port == PortLocal {
		return sw.degree
	}
	return -1
}

// growFlows extends the per-flow slices to hold index i.
func (sw *Switch) growFlows(i int) {
	if i < len(sw.flowStates) {
		return
	}
	sw.flowStates = append(sw.flowStates, make([]*FlowState, i+1-len(sw.flowStates))...)
}

// maxStateChunk caps the FlowState slab block size. Blocks double from
// 4 up to this cap, so a single-flow trial pays one tiny block while a
// many-flow trial amortizes to one allocation per 64 flows.
const maxStateChunk = 64

// allocState hands out a recycled state block when one is free, else a
// pointer into the current slab block, opening a new block when it is
// full. In-block appends never relocate (capacity is fixed), so the
// returned pointer is stable for the switch's lifetime.
func (sw *Switch) allocState() *FlowState {
	if k := len(sw.freeStates); k > 0 {
		st := sw.freeStates[k-1]
		sw.freeStates = sw.freeStates[:k-1]
		return st
	}
	k := len(sw.stateChunks)
	if k == 0 || len(sw.stateChunks[k-1]) == cap(sw.stateChunks[k-1]) {
		// Blocks double 4→8→16→32, then stay at the cap; the shift must
		// not scale with the chunk count (4<<k overflows once a switch
		// has opened enough capped chunks — hundreds of thousands of
		// live flows under streaming churn).
		size := maxStateChunk
		if k < 4 {
			size = 4 << k
		}
		sw.stateChunks = append(sw.stateChunks, make([]FlowState, 0, size))
		k++
	}
	c := &sw.stateChunks[k-1]
	*c = append(*c, freshFlowState())
	return &(*c)[len(*c)-1]
}

// SetHandler installs the update-protocol handler.
func (sw *Switch) SetHandler(h Handler) { sw.handler = h }

// Network returns the fabric the switch is attached to.
func (sw *Switch) Network() *Network { return sw.net }

// Tracer returns the trial's flight recorder (nil = tracing off); the
// protocol handlers record their verdicts through it.
func (sw *Switch) Tracer() *trace.Recorder { return sw.net.Eng.Trace }

// recordRecv logs a decoded inbound protocol frame, resolving the
// arrival port to the peer node (controller frames arrive portless).
func (sw *Switch) recordRecv(tr *trace.Recorder, m packet.Message, inPort topo.PortID) {
	peer := int32(NodeController)
	if inPort >= 0 {
		if nb, ok := sw.net.Topo.NeighborAt(sw.ID, inPort); ok {
			peer = int32(nb)
		}
	}
	if b, ok := m.(*packet.UIMBatch); ok {
		for _, it := range b.Items {
			tr.Recv(int32(sw.ID), uint8(packet.TypeUIM), peer, uint32(it.Flow), it.Version)
		}
		return
	}
	f, v := MsgMeta(m)
	tr.Recv(int32(sw.ID), uint8(m.Type()), peer, f, v)
}

// Now returns the current virtual time.
func (sw *Switch) Now() time.Duration { return sw.net.Eng.Now() }

// State returns the flow's register slice, allocating fresh-node state on
// first touch. The returned pointer stays stable for the flow's lifetime
// (handlers capture it in closures), only the index slice relocates.
func (sw *Switch) State(f packet.FlowID) *FlowState {
	i := int(sw.net.flowSlot(f))
	sw.growFlows(i)
	st := sw.flowStates[i]
	if st == nil {
		st = sw.allocState()
		sw.flowStates[i] = st
	}
	return st
}

// PeekState returns the flow's register slice without allocating.
func (sw *Switch) PeekState(f packet.FlowID) (*FlowState, bool) {
	if i, ok := sw.net.peekFlowSlot(f); ok && int(i) < len(sw.flowStates) {
		if st := sw.flowStates[i]; st != nil {
			return st, true
		}
	}
	return nil, false
}

// Flows returns the IDs of all flows with state on this switch, in
// deterministic fabric-interning order.
func (sw *Switch) Flows() []packet.FlowID {
	out := make([]packet.FlowID, 0, len(sw.flowStates))
	for i, st := range sw.flowStates {
		if st != nil {
			out = append(out, sw.net.flows.id(int32(i)))
		}
	}
	return out
}

// Pool returns the per-network message/buffer pool, so protocol
// handlers can draw short-lived messages from it instead of allocating.
func (sw *Switch) Pool() *packet.Pool { return &sw.net.pool }

// FlowStateAt returns the switch's state block for the fabric-wide flow
// index i (Network.FlowIDs order), or nil if the flow never touched
// this switch. It exists so the invariant auditor can scan per-flow
// state without a map lookup per (node, flow) pair; callers must treat
// the result as read-only.
func (sw *Switch) FlowStateAt(i int) *FlowState {
	if i >= 0 && i < len(sw.flowStates) {
		return sw.flowStates[i]
	}
	return nil
}

// retireFlow tears down the flow occupying dense slot i on this switch:
// it returns the committed rule's capacity reservation and any staged
// ones, clears waiter-table membership, and recycles the state block
// and waiter row. Called by Network.RetireFlow for quiescent flows.
func (sw *Switch) retireFlow(i int32, f packet.FlowID) {
	if int(i) >= len(sw.flowStates) {
		return
	}
	st := sw.flowStates[i]
	if st == nil {
		return
	}
	for _, pr := range st.PendingRes {
		sw.Release(pr.Port, pr.SizeK)
	}
	if st.HasRule {
		sw.Release(st.EgressPort, st.FlowSizeK)
	}
	if st.uimSlot != 0 {
		sw.uimWaiters[st.uimSlot-1] = sw.uimWaiters[st.uimSlot-1][:0]
		sw.freeUIMSlots = append(sw.freeUIMSlots, st.uimSlot)
	}
	for s := range sw.highWaiting {
		set := sw.highWaiting[s]
		for j, g := range set {
			if g == f {
				sw.highWaiting[s] = append(set[:j], set[j+1:]...)
				break
			}
		}
	}
	sw.flowStates[i] = nil
	pend := st.PendingRes[:0]
	*st = freshFlowState()
	st.PendingRes = pend
	sw.freeStates = append(sw.freeStates, st)
}

// Receive is the switch's pipeline entry point: it parses the frame and
// dispatches on message type. inPort is the arrival port, or
// topo.InvalidPort for frames from the controller or host side.
//
// Pooled message types (Data, UNM, EZN) are recycled once dispatch
// returns: a handler that parks work for later resubmission must copy
// the message into the closure rather than capture the pointer.
func (sw *Switch) Receive(raw []byte, inPort topo.PortID) {
	m, err := sw.net.pool.Decode(raw)
	if err != nil {
		sw.Stats.DecodeErrors++
		return
	}
	if tr := sw.net.Eng.Trace; tr != nil && m.Type() != packet.TypeData {
		sw.recordRecv(tr, m, inPort)
	}
	switch m := m.(type) {
	case *packet.Data:
		sw.handleData(m, inPort)
		sw.net.pool.PutData(m)
	case *packet.UIM:
		sw.Stats.UIMReceived++
		if sw.handler != nil {
			sw.handler.HandleUIM(sw, m)
		}
	case *packet.UNM:
		sw.Stats.UNMReceived++
		if sw.handler != nil {
			sw.handler.HandleUNM(sw, m, inPort)
		}
		sw.net.pool.PutUNM(m)
	case *packet.CLN:
		sw.handleCleanup(m)
	case *packet.UIMBatch:
		// Unpack and dispatch each indication as if it arrived alone.
		// Items are freshly allocated by the decoder (never pooled):
		// handlers retain the staged pointer in FlowState.UIM.
		for _, u := range m.Items {
			sw.Stats.UIMReceived++
			if sw.handler != nil {
				sw.handler.HandleUIM(sw, u)
			}
		}
	default:
		// Baseline protocols define extra message types; hand them to the
		// handler when it supports them, else drop.
		if mh, ok := sw.handler.(MessageHandler); ok {
			mh.HandleMessage(sw, m, inPort)
			sw.net.pool.Recycle(m)
			return
		}
		sw.Stats.DecodeErrors++
	}
}

// handleData runs the forwarding pipeline for a data packet. Probe
// packets forward exactly like data; the egress reports their arrival to
// the controller (the measurement traversal of §9.1 — it is injected only
// once every tracked switch has applied, so no per-hop version check is
// needed and the same mechanism measures every evaluated system).
func (sw *Switch) handleData(d *packet.Data, inPort topo.PortID) {
	if sw.DataTap != nil {
		sw.DataTap(sw, d, inPort)
	}
	st, ok := sw.PeekState(d.Flow)
	if !ok || !st.HasRule {
		if sw.FRMEnabled {
			sw.net.SendToController(sw.ID, &packet.FRM{Flow: d.Flow})
		}
		sw.Stats.BlackholeDrops++
		return
	}
	out := st.EgressPort
	if sw.TwoPhase {
		if inPort == topo.InvalidPort && d.Tag == 0 {
			// Host-side arrival at the ingress: stamp the committed
			// version (the "tag flip" happens implicitly because the
			// ingress is updated last in a single-layer update).
			d.Tag = st.NewVersion
		}
		if d.Tag != 0 && d.Tag < st.NewVersion && st.PrevValid {
			out = st.PrevEgressPort // previous configuration's rule
		}
	}
	if out == PortLocal {
		sw.Stats.DataDelivered++
		if d.Probe {
			sw.net.SendToController(sw.ID, &packet.UFM{
				Flow: d.Flow, Version: d.ProbeVersion,
				Status: packet.StatusProbeOK, Node: uint16(sw.ID),
			})
		}
		if sw.net.OnDeliver != nil {
			sw.net.OnDeliver(sw.ID, d)
		}
		return
	}
	if d.TTL <= 1 {
		sw.Stats.TTLDrops++
		return
	}
	// Forward a pooled copy: SendPort serializes synchronously, so the
	// struct can be recycled as soon as it returns, and the caller's d
	// (possibly host-owned via InjectData) is never mutated.
	fwd := sw.net.pool.GetData()
	*fwd = *d
	fwd.TTL = d.TTL - 1
	sw.Stats.DataForwarded++
	sw.net.SendPort(sw.ID, out, fwd)
	sw.net.pool.PutData(fwd)
}

// handleCleanup removes the flow's stale rule (§11 "Rule Cleanup"): only
// rules strictly older than the cleanup version, not locally delivering,
// and not covered by a pending indication are removed; their capacity is
// released.
func (sw *Switch) handleCleanup(m *packet.CLN) {
	st, ok := sw.PeekState(m.Flow)
	if !ok || !st.HasRule {
		return
	}
	if st.EgressPort == PortLocal {
		return // never remove the egress delivery rule
	}
	if st.NewVersion >= m.Version || st.IndicatedVersion >= m.Version {
		return // rule belongs to this or a newer configuration
	}
	sw.Release(st.EgressPort, st.FlowSizeK)
	st.HasRule = false
	st.EgressPort = topo.InvalidPort
	st.EgressPortUpdated = topo.InvalidPort
	st.NewDistance = FreshDistance
	st.PrevValid = false
	sw.Stats.RulesCleaned++
}

// InjectData delivers a host-originated data packet into the pipeline.
// A crashed switch drops host traffic at the port.
func (sw *Switch) InjectData(d *packet.Data) {
	if sw.down {
		sw.Stats.CrashDrops++
		return
	}
	sw.handleData(d, topo.InvalidPort)
}

// SendUNM clones a notification out the given port (the clone-session
// primitive of §8). Sending to an invalid port is a silent no-op so
// handlers can pass a UIM's ChildPort through unconditionally.
func (sw *Switch) SendUNM(port topo.PortID, m *packet.UNM) {
	if port < 0 {
		return
	}
	sw.net.SendPort(sw.ID, port, m)
}

// SendUFM clones a feedback message to the controller.
func (sw *Switch) SendUFM(m *packet.UFM) {
	m.Node = uint16(sw.ID)
	sw.net.SendToController(sw.ID, m)
}

// Alarm reports an inconsistent update to the controller (the "drop UNM,
// inform controller" arms of Alg. 1/Alg. 2).
func (sw *Switch) Alarm(f packet.FlowID, version uint32, reason packet.AlarmReason) {
	sw.Stats.AlarmsSent++
	sw.net.Eng.Trace.Alarm(int32(sw.ID), uint8(reason), uint32(f), version)
	sw.SendUFM(&packet.UFM{
		Flow: f, Version: version, Status: packet.StatusAlarm, Reason: reason,
	})
}

// ParkOnUIM stores work until a (newer) indication for the flow arrives;
// the P4 prototype realizes this wait by packet resubmission.
func (sw *Switch) ParkOnUIM(f packet.FlowID, fire func()) {
	st := sw.State(f)
	if st.uimSlot == 0 {
		if k := len(sw.freeUIMSlots); k > 0 {
			st.uimSlot = sw.freeUIMSlots[k-1]
			sw.freeUIMSlots = sw.freeUIMSlots[:k-1]
		} else {
			sw.uimWaiters = append(sw.uimWaiters, nil)
			st.uimSlot = int32(len(sw.uimWaiters))
		}
	}
	sw.uimWaiters[st.uimSlot-1] = append(sw.uimWaiters[st.uimSlot-1], parked{fire: fire})
}

// WakeUIMWaiters re-injects work parked on the flow's indication.
func (sw *Switch) WakeUIMWaiters(f packet.FlowID) {
	st, ok := sw.PeekState(f)
	if !ok || st.uimSlot == 0 {
		return
	}
	waiters := sw.uimWaiters[st.uimSlot-1]
	if len(waiters) == 0 {
		return
	}
	// Reset before scheduling so the backing array is reused by the next
	// park; the fires run later, off the engine, never reentrantly here.
	sw.uimWaiters[st.uimSlot-1] = waiters[:0]
	for _, w := range waiters {
		sw.Stats.Resubmissions++
		sw.net.Eng.Schedule(resubmitLatency, w.fire)
	}
}

// ParkOnCapacity stores work until capacity conditions on port change
// (release or waiter-set shrink).
func (sw *Switch) ParkOnCapacity(port topo.PortID, fire func()) {
	if s := sw.portSlot(port); s >= 0 {
		sw.capWaiters[s] = append(sw.capWaiters[s], parked{fire: fire})
	}
}

// wakeCapacityWaiters re-injects work parked on port.
func (sw *Switch) wakeCapacityWaiters(port topo.PortID) {
	s := sw.portSlot(port)
	if s < 0 {
		return
	}
	waiters := sw.capWaiters[s]
	if len(waiters) == 0 {
		return
	}
	sw.capWaiters[s] = waiters[:0]
	for _, w := range waiters {
		sw.Stats.Resubmissions++
		sw.net.Eng.Schedule(resubmitLatency, w.fire)
	}
}

// CapacityK returns the capacity of the link at port in kbps
// (0 for PortLocal, which is uncapacitated).
func (sw *Switch) CapacityK(port topo.PortID) uint64 {
	if port < 0 {
		return 0
	}
	l, ok := sw.net.Topo.LinkAt(sw.ID, port)
	if !ok {
		return 0
	}
	return uint64(l.Capacity * 1000)
}

// ReservedK returns the kbps currently reserved on port.
func (sw *Switch) ReservedK(port topo.PortID) uint64 {
	if port < 0 || int(port) >= len(sw.reserved) {
		return 0
	}
	return sw.reserved[port]
}

// RemainingK returns the unreserved kbps on port.
func (sw *Switch) RemainingK(port topo.PortID) uint64 {
	c := sw.CapacityK(port)
	r := sw.ReservedK(port)
	if r >= c {
		return 0
	}
	return c - r
}

// Reserve books sizeK on port (no-op for local delivery).
func (sw *Switch) Reserve(port topo.PortID, sizeK uint32) {
	if port < 0 || int(port) >= len(sw.reserved) {
		return
	}
	sw.reserved[port] += uint64(sizeK)
}

// Release frees sizeK on port and wakes capacity waiters.
func (sw *Switch) Release(port topo.PortID, sizeK uint32) {
	if port < 0 || int(port) >= len(sw.reserved) {
		return
	}
	if sw.reserved[port] <= uint64(sizeK) {
		sw.reserved[port] = 0
	} else {
		sw.reserved[port] -= uint64(sizeK)
	}
	sw.wakeCapacityWaiters(port)
}

// HasCapacityWaiters reports whether any message is parked waiting for
// capacity on port (input to the dynamic priority rule of §7.4).
func (sw *Switch) HasCapacityWaiters(port topo.PortID) bool {
	s := sw.portSlot(port)
	return s >= 0 && len(sw.capWaiters[s]) > 0
}

// StageReservation books capacity for an in-flight rule install of flow f
// so later gate decisions see it; CommitRule consumes it.
func (sw *Switch) StageReservation(f packet.FlowID, port topo.PortID, sizeK uint32, version uint32) {
	sw.Reserve(port, sizeK)
	st := sw.State(f)
	st.PendingRes = append(st.PendingRes, PendingReservation{Port: port, SizeK: sizeK, Version: version})
}

// MarkHighWaiting records that flow f (high priority) waits to move onto
// port; the §7.4 gate blocks low-priority flows while the set is nonempty.
func (sw *Switch) MarkHighWaiting(port topo.PortID, f packet.FlowID) {
	s := sw.portSlot(port)
	if s < 0 {
		return
	}
	for _, g := range sw.highWaiting[s] {
		if g == f {
			return
		}
	}
	sw.highWaiting[s] = append(sw.highWaiting[s], f)
}

// ClearHighWaiting removes f from port's high-priority waiter set and
// wakes parked flows.
func (sw *Switch) ClearHighWaiting(port topo.PortID, f packet.FlowID) {
	s := sw.portSlot(port)
	if s < 0 {
		return
	}
	set := sw.highWaiting[s]
	for i, g := range set {
		if g == f {
			sw.highWaiting[s] = append(set[:i], set[i+1:]...)
			sw.wakeCapacityWaiters(port)
			return
		}
	}
}

// HighWaitingOn reports whether any high-priority flow other than f waits
// to move onto port.
func (sw *Switch) HighWaitingOn(port topo.PortID, f packet.FlowID) bool {
	s := sw.portSlot(port)
	if s < 0 {
		return false
	}
	for _, g := range sw.highWaiting[s] {
		if g != f {
			return true
		}
	}
	return false
}

// RaisePriorityOfMoversFrom marks every flow that currently occupies port
// and has a pending move away from it as high priority (§7.4: "all flows
// that desire to move away from e obtain high priority"). Iteration is in
// fabric-interning order, so the marking order is deterministic.
func (sw *Switch) RaisePriorityOfMoversFrom(port topo.PortID) {
	for i, st := range sw.flowStates {
		if st == nil || !st.HasRule || st.EgressPort != port {
			continue
		}
		if st.UIM != nil && st.UIM.Version > st.NewVersion {
			st.Priority = PriorityHigh
			dest := topo.PortID(int32(st.UIM.EgressPort))
			if st.UIM.EgressPort == packet.NoPort {
				dest = PortLocal
			}
			if tr := sw.net.Eng.Trace; tr != nil {
				tr.Verdict(int32(sw.ID), trace.CodePriorityPromote,
					uint32(sw.net.flows.id(int32(i))), st.UIM.Version, uint32(int32(dest)), uint32(int32(port)))
			}
			sw.MarkHighWaiting(dest, sw.net.flows.id(int32(i)))
		}
	}
}

// registerWriteDelay models a pure register update (no table change).
const registerWriteDelay = 50 * time.Microsecond

// Apply stages a forwarding-state change and commits it after the install
// delay. portChanged selects the cost model: a forwarding-table rewrite
// pays the (possibly sampled) install delay, while a register-only
// relabel is a fast data-plane write. The commit closure runs exactly
// once; it must re-validate against the registers because a higher
// version may have won the race meanwhile.
func (sw *Switch) Apply(portChanged bool, commit func()) {
	d := registerWriteDelay
	if portChanged && sw.InstallDelay != nil {
		d = sw.InstallDelay()
	}
	if sw.net.Faults != nil || sw.epoch > 0 {
		// Epoch-guard the staged commit: if the switch crashes while the
		// install is in flight, the commit belonged to the dead
		// incarnation and must not touch the ASIC. The wrapper is only
		// built when faults are possible, keeping the zero-allocation
		// baseline hot path intact.
		e := sw.epoch
		sw.net.Eng.Schedule(d, func() {
			if sw.epoch == e && !sw.down {
				commit()
			}
		})
		return
	}
	sw.net.Eng.Schedule(d, commit)
}

// Crash takes the switch offline in the fail-stop model §11 assumes:
// committed forwarding rules and capacity reservations persist (they
// live in the ASIC), but every piece of in-flight soft state is lost —
// parked work, staged indications, pending install reservations, and
// scheduled commits (invalidated via the epoch counter). While down the
// switch neither transmits nor receives.
func (sw *Switch) Crash() {
	if sw.down {
		return
	}
	sw.down = true
	sw.epoch++
	sw.Stats.Crashes++
	sw.net.Eng.Trace.Crash(int32(sw.ID), sw.epoch)
	// Clear waiter lists before releasing staged reservations so the
	// releases' wakeCapacityWaiters find nothing to reschedule.
	for i := range sw.capWaiters {
		sw.capWaiters[i] = sw.capWaiters[i][:0]
		sw.highWaiting[i] = sw.highWaiting[i][:0]
	}
	for i := range sw.uimWaiters {
		sw.uimWaiters[i] = sw.uimWaiters[i][:0]
	}
	for _, st := range sw.flowStates {
		if st == nil {
			continue
		}
		for _, pr := range st.PendingRes {
			sw.Release(pr.Port, pr.SizeK)
		}
		st.PendingRes = st.PendingRes[:0]
		st.UIM = nil
		st.ChildPorts = nil
		st.Applying = false
		st.ApplyingVersion = 0
		st.Priority = PriorityLow
		st.StallReports = 0
		// Indication registers are soft state too: fall back to the
		// committed version so a retransmitted indication is accepted
		// afresh after restart.
		st.IndicatedVersion = st.NewVersion
	}
}

// Restore brings a crashed switch back online: committed rules intact,
// soft state empty. The controller's stall/retrigger machinery is what
// re-drives any update the crash interrupted.
func (sw *Switch) Restore() {
	if !sw.down {
		return
	}
	sw.down = false
	sw.Stats.Restores++
	sw.net.Eng.Trace.Restore(int32(sw.ID), sw.epoch)
}

// Down reports whether the switch is currently crashed.
func (sw *Switch) Down() bool { return sw.down }

// CommitRule flips the flow's forwarding to the staged configuration from
// uim: it moves the capacity reservation, updates the Table-1 registers
// (old_version/old_distance receive the caller-supplied values — the
// previous configuration for single-layer, the inherited labels for
// dual-layer) and bumps Stats. Callers are responsible for verification;
// CommitRule only refuses to move backwards in version.
func (sw *Switch) CommitRule(f packet.FlowID, uim *packet.UIM, oldVersion uint32, inherited uint16, counter uint16) bool {
	newPort := topo.PortID(int32(uim.EgressPort))
	if uim.EgressPort == packet.NoPort {
		newPort = PortLocal
	}
	return sw.CommitState(f, Commit{
		Port:        newPort,
		Version:     uim.Version,
		Distance:    uim.NewDistance,
		OldVersion:  oldVersion,
		OldDistance: inherited,
		SizeK:       uim.FlowSizeK,
		Type:        uim.UpdateType,
		Counter:     counter,
	})
}

// Commit describes a forwarding-state transition for CommitState.
type Commit struct {
	Port        topo.PortID
	Version     uint32
	Distance    uint16
	OldVersion  uint32
	OldDistance uint16
	SizeK       uint32
	Type        packet.UpdateType
	Counter     uint16
}

// CommitState is the protocol-agnostic commit primitive behind CommitRule.
func (sw *Switch) CommitState(f packet.FlowID, c Commit) bool {
	st := sw.State(f)
	if st.HasRule && c.Version <= st.NewVersion {
		// A newer (or same) version already committed: return any
		// reservation staged for this superseded install.
		keep := st.PendingRes[:0]
		for _, pr := range st.PendingRes {
			if pr.Version <= st.NewVersion {
				sw.Release(pr.Port, pr.SizeK)
			} else {
				keep = append(keep, pr)
			}
		}
		st.PendingRes = keep
		return false
	}
	oldPort := st.EgressPort
	oldSize := st.FlowSizeK
	if st.HasRule {
		sw.Release(oldPort, oldSize)
	}
	// Consume the reservation staged for this install (if any); stale
	// staged reservations of superseded versions are returned.
	reservedAlready := false
	keep := st.PendingRes[:0]
	for _, pr := range st.PendingRes {
		switch {
		case !reservedAlready && pr.Version == c.Version && pr.Port == c.Port && pr.SizeK == c.SizeK:
			reservedAlready = true
		case pr.Version <= c.Version:
			sw.Release(pr.Port, pr.SizeK)
		default:
			keep = append(keep, pr)
		}
	}
	st.PendingRes = keep
	if !reservedAlready {
		sw.Reserve(c.Port, c.SizeK)
	}

	if st.HasRule {
		st.PrevEgressPort = oldPort
		st.PrevValid = true
	}
	st.OldVersion = c.OldVersion
	st.OldDistance = c.OldDistance
	st.NewVersion = c.Version
	st.NewDistance = c.Distance
	st.EgressPort = c.Port
	st.EgressPortUpdated = c.Port
	st.FlowSizeK = c.SizeK
	st.LastType = c.Type
	st.Counter = c.Counter
	st.HasRule = true
	st.Applying = false
	st.Priority = PriorityLow
	sw.ClearHighWaiting(c.Port, f)
	sw.Stats.RulesApplied++
	if tr := sw.net.Eng.Trace; tr != nil {
		tr.Commit(int32(sw.ID), uint32(f), c.Version, int32(c.Port), uint32(c.Distance))
	}
	if sw.net.OnApply != nil {
		sw.net.OnApply(sw.ID, f, c.Version)
	}
	return true
}

// InstallInitialRule seeds a flow rule outside the update protocol (used
// to set up experiment start states). It reserves capacity and marks the
// rule as version/distance labelled.
func (sw *Switch) InstallInitialRule(f packet.FlowID, port topo.PortID, version uint32, distance uint16, sizeK uint32) {
	st := sw.State(f)
	if st.HasRule {
		sw.Release(st.EgressPort, st.FlowSizeK)
	}
	st.EgressPort = port
	st.EgressPortUpdated = port
	st.NewVersion = version
	st.NewDistance = distance
	st.OldVersion = version
	st.OldDistance = distance
	st.FlowSizeK = sizeK
	st.LastType = packet.UpdateSingle
	st.HasRule = true
	sw.Reserve(port, sizeK)
}
