// Faults-based equivalents of the bespoke Drop/Mangle closure tests:
// the same scenarios expressed as plan rules. The legacy closure hooks
// stay covered by TestSendPortDropAndMangle as the compatibility shim.
// This file is an external test package because the in-package tests
// cannot import internal/faults (import cycle).
package dataplane_test

import (
	"testing"
	"time"

	"p4update/internal/dataplane"
	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// lineNet builds a 4-node line fabric with 1 ms, 100 Mbps links.
func lineNet(t *testing.T, seed int64) (*dataplane.Network, *topo.Topology) {
	t.Helper()
	g := topo.New("line")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < 4; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID(i+1), time.Millisecond, 100)
	}
	eng := sim.New(seed)
	eng.MaxEvents = 100_000
	return dataplane.NewNetwork(eng, g), g
}

func TestPlanDropRuleLosesDataFrame(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(3)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 100)
	inj := faults.Attach(net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.DropMatching(1, 2, packet.TypeData, 1),
	}})
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if inj.RuleHits(0) != 1 {
		t.Fatal("drop rule not exercised")
	}
	if net.Switch(3).Stats.DataDelivered != 0 {
		t.Error("dropped packet delivered")
	}
	// The rule budget is spent: the next packet goes through.
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 2, TTL: 8})
	net.Eng.Run()
	if net.Switch(3).Stats.DataDelivered != 1 {
		t.Error("second packet lost after the rule budget was spent")
	}
}

func TestPlanCorruptRuleRejectedAtReceiver(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(3)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 100)
	inj := faults.Attach(net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.CorruptMatching(0, 1, packet.TypeData, 1),
	}})
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if inj.RuleHits(0) != 1 {
		t.Fatal("corrupt rule not exercised")
	}
	if net.Switch(1).Stats.DecodeErrors != 1 {
		t.Error("corrupted frame not rejected at the receiver")
	}
	if net.Switch(3).Stats.DataDelivered != 0 {
		t.Error("corrupted packet delivered")
	}
}

func TestPlanDuplicateRuleDeliversTwice(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(3)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 100)
	faults.Attach(net, faults.Plan{Seed: 1, Rules: []faults.Rule{
		faults.DuplicateMatching(2, 3, packet.TypeData, 1),
	}})
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if got := net.Switch(3).Stats.DataDelivered; got != 2 {
		t.Fatalf("DataDelivered = %d, want 2 (original + duplicate)", got)
	}
}

func TestCrashDropsInFlightDelivery(t *testing.T) {
	// A frame already on the wire to a switch that crashes before it
	// lands is dropped at delivery time, not received by the corpse.
	net, _ := lineNet(t, 1)
	f := packet.FlowID(3)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 100)
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Schedule(500*time.Microsecond, func() { net.Switch(1).Crash() })
	net.Eng.Run()
	if net.Switch(1).Stats.CrashDrops == 0 {
		t.Error("in-flight frame into the crashed switch not dropped")
	}
	if net.Switch(3).Stats.DataDelivered != 0 {
		t.Error("packet delivered through a crashed switch")
	}
}
