// Package dataplane models a P4 software switch at the granularity the
// P4Update paper depends on: per-flow register arrays (the Update
// Information Base of Table 1), a match-action forwarding stage, packet
// clone sessions toward neighbors and the controller, resubmission for
// data-plane waiting, and per-link capacity accounting.
//
// The update protocol itself (verification and coordination) is pluggable
// through the Handler interface so that P4Update and the evaluation
// baselines share the same switch substrate.
package dataplane

import (
	"p4update/internal/packet"
	"p4update/internal/topo"
)

// PortLocal is the sentinel forwarding port meaning "deliver locally":
// the switch is the flow's egress and hands the packet to the host side.
const PortLocal topo.PortID = -2

// FreshDistance is the effective distance label of a node that has no
// forwarding rule for a flow yet. Treating it as +inf makes the dual-layer
// gateway check Dn(v) > Do(UNM) pass for fresh nodes.
const FreshDistance uint16 = 0xffff

// FlowPriority is the dynamic inter-flow scheduling priority of §7.4.
type FlowPriority uint8

// Flow priorities.
const (
	PriorityLow  FlowPriority = 0
	PriorityHigh FlowPriority = 1
)

// FlowState is the per-flow slice of the Update Information Base. Fields
// map 1:1 onto the registers of the paper's Table 1:
//
//	new_distance        -> NewDistance (distance label of the applied config)
//	new_version         -> NewVersion  (version of the applied config)
//	egress_port_updated -> EgressPortUpdated (staged next port, from UIM)
//	old_distance        -> OldDistance (previous/inherited distance = segment ID)
//	old_version         -> OldVersion  (previous config version)
//	egress_port         -> EgressPort  (active forwarding port)
//	flow_size           -> FlowSizeK   (flow size bound, kbps)
//	flow_priority       -> Priority    (dynamic inter-flow priority)
//	t                   -> LastType    (last update type: SL or DL)
//	counter             -> Counter     (dual-layer hop counter)
//
// In the P4 prototype the "indication" labels live in registers written on
// UIM arrival; we keep the freshest UIM as a staged struct (UIM) with the
// same effect.
type FlowState struct {
	NewDistance       uint16
	NewVersion        uint32
	EgressPortUpdated topo.PortID
	OldDistance       uint16
	OldVersion        uint32
	EgressPort        topo.PortID
	FlowSizeK         uint32
	Priority          FlowPriority
	LastType          packet.UpdateType
	Counter           uint16

	// HasRule reports whether EgressPort holds a valid forwarding rule.
	HasRule bool
	// IndicatedVersion is the highest configuration version the control
	// plane has indicated to this node for the flow (protects in-use
	// rules from cleanup).
	IndicatedVersion uint32
	// PrevEgressPort retains the previous configuration's forwarding
	// port for two-phase-commit forwarding (§11); PrevValid reports
	// whether it holds a rule. Note the paper's §10 caveat applies: the
	// retained rule doubles the per-flow rule space.
	PrevEgressPort topo.PortID
	PrevValid      bool
	// PendingRes tracks capacity staged for in-flight rule installs so
	// concurrent gate decisions cannot oversubscribe a link.
	PendingRes []PendingReservation
	// UIM is the freshest (highest-version) indication received.
	UIM *packet.UIM
	// ChildPorts is the clone group for the UIM's version: the ports
	// toward every child that must be notified after this node applies.
	// Path flows have one child; destination trees (§11) have one per
	// tree child. Populated from the indications' ChildPort fields.
	ChildPorts []topo.PortID
	// Proto holds protocol-private per-flow state (the baselines use it
	// for their instruction records).
	Proto any
	// Applying is set while a staged rule waits out the install delay,
	// and holds the version being installed.
	Applying        bool
	ApplyingVersion uint32
	// StallReports counts §11 watchdog firings for the currently awaited
	// version, bounding how often the node re-reports a stalled update.
	// It is reset whenever the awaited indication (re-)arrives.
	StallReports uint8

	// uimSlot is the flow's slot in the switch's UIM-waiter table plus
	// one (0 = not assigned yet); assigned on first ParkOnUIM so the
	// table stays as small as the set of flows that ever parked.
	uimSlot int32
}

// CurrentDistance returns the node's effective distance under its applied
// configuration: NewDistance once a rule exists, FreshDistance otherwise.
func (st *FlowState) CurrentDistance() uint16 {
	if !st.HasRule {
		return FreshDistance
	}
	return st.NewDistance
}

// PendingReservation is capacity booked at verification time for a rule
// install that has not committed yet.
type PendingReservation struct {
	Port    topo.PortID
	SizeK   uint32
	Version uint32
}

// freshFlowState is the fresh-node state (no rule, version 0).
func freshFlowState() FlowState {
	return FlowState{
		EgressPort:        topo.InvalidPort,
		EgressPortUpdated: topo.InvalidPort,
		NewDistance:       FreshDistance,
		OldDistance:       FreshDistance,
	}
}

// Stats counts observable switch events; the experiment harnesses and the
// failure-injection tests read them.
type Stats struct {
	DataForwarded  uint64 // data packets sent out a port
	DataDelivered  uint64 // data packets delivered locally at the egress
	BlackholeDrops uint64 // data packets dropped for lack of a rule
	TTLDrops       uint64 // data packets dropped on TTL expiry
	DecodeErrors   uint64 // undecodable frames
	UNMReceived    uint64
	UIMReceived    uint64
	AlarmsSent     uint64 // StatusAlarm UFMs emitted
	Resubmissions  uint64 // parked messages re-injected into the pipeline
	RulesApplied   uint64 // committed forwarding-rule changes
	RulesCleaned   uint64 // stale rules removed by cleanup messages
	Crashes        uint64 // Crash() transitions
	Restores       uint64 // Restore() transitions
	CrashDrops     uint64 // frames dropped at a down switch
}
