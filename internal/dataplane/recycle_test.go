package dataplane

import (
	"math/rand"
	"testing"

	"p4update/internal/packet"
	"p4update/internal/topo"
)

// TestSlotRecyclingNeverAliasesLiveFlows drives a long random
// install/retire churn over the interning table and checks the two
// core recycling invariants after every step: no dense slot is shared
// by two live flows, and the slot space never grows past the peak live
// population.
func TestSlotRecyclingNeverAliasesLiveFlows(t *testing.T) {
	net, _ := lineNet(t, 1)
	rng := rand.New(rand.NewSource(42))
	path := []topo.NodeID{0, 1, 2, 3}

	live := make(map[packet.FlowID]int32)
	peak := 0
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			f := packet.FlowID(rng.Uint32())
			if _, ok := live[f]; ok {
				continue
			}
			net.InstallPath(f, path, 1, 1)
			i, ok := net.peekFlowSlot(f)
			if !ok {
				t.Fatalf("step %d: flow %d not interned after install", step, f)
			}
			live[f] = i
		} else {
			// Retire a pseudo-random live flow.
			k := rng.Intn(len(live))
			var victim packet.FlowID
			for f := range live {
				if k == 0 {
					victim = f
					break
				}
				k--
			}
			if !net.RetireFlow(victim) {
				t.Fatalf("step %d: retire of live flow %d failed", step, victim)
			}
			delete(live, victim)
		}
		if len(live) > peak {
			peak = len(live)
		}
		if net.NumFlowSlots() > peak {
			t.Fatalf("step %d: %d slots for peak live %d — table grows with history",
				step, net.NumFlowSlots(), peak)
		}
	}

	// Final audit: every live flow occupies its recorded slot, every
	// slot holds at most one live flow, and dead slots report vacant.
	seen := make(map[int32]packet.FlowID)
	for f, i := range live {
		got, ok := net.peekFlowSlot(f)
		if !ok || got != i {
			t.Fatalf("flow %d moved from slot %d to (%d, %v)", f, i, got, ok)
		}
		if prev, dup := seen[i]; dup {
			t.Fatalf("slot %d shared by live flows %d and %d", i, prev, f)
		}
		seen[i] = f
		if id, ok := net.FlowAt(i); !ok || id != f {
			t.Fatalf("FlowAt(%d) = (%d, %v), want (%d, true)", i, id, ok, f)
		}
	}
	for i := 0; i < net.NumFlowSlots(); i++ {
		f, ok := net.FlowAt(int32(i))
		if !ok {
			continue
		}
		if got, has := live[f]; !has || got != int32(i) {
			t.Fatalf("slot %d reports flow %d which is not live there", i, f)
		}
	}
}

// TestFlowIDsIterateLiveOnly checks that the fabric-wide flow iterator
// skips retired flows and re-reports recycled slots' new tenants.
func TestFlowIDsIterateLiveOnly(t *testing.T) {
	net, _ := lineNet(t, 1)
	path := []topo.NodeID{0, 1, 2, 3}
	for f := packet.FlowID(1); f <= 10; f++ {
		net.InstallPath(f, path, 1, 1)
	}
	for f := packet.FlowID(2); f <= 10; f += 2 {
		net.RetireFlow(f)
	}
	want := map[packet.FlowID]bool{1: true, 3: true, 5: true, 7: true, 9: true}
	got := net.FlowIDs()
	if len(got) != len(want) {
		t.Fatalf("FlowIDs returned %d flows, want %d: %v", len(got), len(want), got)
	}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("FlowIDs returned retired flow %d", f)
		}
	}
	// Recycled slots pick up new tenants and reappear exactly once.
	net.InstallPath(100, path, 1, 1)
	net.InstallPath(101, path, 1, 1)
	count := make(map[packet.FlowID]int)
	for _, f := range net.FlowIDs() {
		count[f]++
	}
	if count[100] != 1 || count[101] != 1 || len(count) != 7 {
		t.Fatalf("after recycling, FlowIDs = %v", count)
	}
	if net.NumFlowSlots() != 10 {
		t.Fatalf("slot space grew to %d, want 10", net.NumFlowSlots())
	}
}

// TestSteadyStateRecyclingAllocationFree asserts the perf contract of
// the free-list design: once the fabric has reached its peak live
// population, install/retire churn allocates nothing — slots come off
// the interning free list and FlowState blocks off each switch's slab
// free list, so steady-state memory does not grow with historical flow
// count.
func TestSteadyStateRecyclingAllocationFree(t *testing.T) {
	net, _ := lineNet(t, 1)
	path := []topo.NodeID{0, 1, 2, 3}
	ids := make([]packet.FlowID, 32)
	for i := range ids {
		ids[i] = packet.FlowID(1000 + i)
	}
	cycle := func() {
		for _, f := range ids {
			net.InstallPath(f, path, 1, 1)
		}
		for _, f := range ids {
			net.RetireFlow(f)
		}
	}
	cycle() // warm: grow table, maps, and free lists to peak
	if avg := testing.AllocsPerRun(100, cycle); avg > 0.5 {
		t.Fatalf("steady-state install/retire cycle allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestRetireFlowReleasesSwitchState checks that retirement recycles the
// per-switch state blocks: a retired flow's FlowState pointer is
// reused by the next allocation on the same switch.
func TestRetireFlowReleasesSwitchState(t *testing.T) {
	net, _ := lineNet(t, 1)
	path := []topo.NodeID{0, 1, 2, 3}
	f := packet.FlowID(7)
	net.InstallPath(f, path, 1, 1)
	sw := net.Switch(1)
	st, ok := sw.PeekState(f)
	if !ok {
		t.Fatal("no state after install")
	}
	net.RetireFlow(f)
	if _, ok := sw.PeekState(f); ok {
		t.Fatal("state still visible after retire")
	}
	g := packet.FlowID(8)
	net.InstallPath(g, path, 1, 1)
	st2, ok := sw.PeekState(g)
	if !ok {
		t.Fatal("no state after reinstall")
	}
	if st != st2 {
		t.Fatal("retired FlowState block was not recycled")
	}
	if st2.HasRule != true || st2.NewVersion != 1 {
		t.Fatalf("recycled state not reset: %+v", st2)
	}
}
