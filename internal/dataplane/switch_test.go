package dataplane

import (
	"testing"
	"time"

	"p4update/internal/packet"
	"p4update/internal/sim"
	"p4update/internal/topo"
)

// lineNet builds a 4-node line fabric with 1 ms, 100 Mbps links.
func lineNet(t *testing.T, seed int64) (*Network, *topo.Topology) {
	t.Helper()
	g := topo.New("line")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < 4; i++ {
		g.AddLink(topo.NodeID(i), topo.NodeID(i+1), time.Millisecond, 100)
	}
	eng := sim.New(seed)
	eng.MaxEvents = 100_000
	return NewNetwork(eng, g), g
}

func TestInstallPathAndForwarding(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(7)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 500)

	// Registers carry hop distances to the egress.
	for i, want := range []uint16{3, 2, 1, 0} {
		st, ok := net.Switch(topo.NodeID(i)).PeekState(f)
		if !ok || st.NewDistance != want {
			t.Errorf("node %d distance = %v, want %d", i, st, want)
		}
	}
	// A packet injected at the ingress is delivered at the egress.
	var deliveredAt topo.NodeID = -1
	net.OnDeliver = func(n topo.NodeID, d *packet.Data) { deliveredAt = n }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if deliveredAt != 3 {
		t.Fatalf("delivered at %d, want 3", deliveredAt)
	}
	if net.Switch(3).Stats.DataDelivered != 1 {
		t.Error("egress delivery not counted")
	}
	if net.Switch(1).Stats.DataForwarded != 1 {
		t.Error("transit forwarding not counted")
	}
}

func TestBlackholeAndTTLDrops(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(7)
	// No rule anywhere: blackhole at the ingress.
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	if net.Switch(0).Stats.BlackholeDrops != 1 {
		t.Error("missing-rule packet not counted as blackhole")
	}
	// TTL expiry mid-path.
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 500)
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 2, TTL: 2})
	net.Eng.Run()
	if net.Switch(1).Stats.TTLDrops != 1 {
		t.Errorf("TTL drop not counted: %+v", net.Switch(1).Stats)
	}
	if net.Switch(3).Stats.DataDelivered != 0 {
		t.Error("expired packet delivered")
	}
}

func TestFRMGeneratedForUnknownFlow(t *testing.T) {
	net, _ := lineNet(t, 1)
	var got *packet.FRM
	net.ControllerRx = func(from topo.NodeID, raw []byte) {
		if m, err := packet.Decode(raw); err == nil {
			if frm, ok := m.(*packet.FRM); ok {
				got = frm
			}
		}
	}
	net.Switch(0).FRMEnabled = true
	net.Switch(0).InjectData(&packet.Data{Flow: 99, Seq: 1, TTL: 8})
	net.Eng.Run()
	if got == nil || got.Flow != 99 {
		t.Fatalf("FRM = %+v, want flow 99", got)
	}
}

func TestCapacityAccounting(t *testing.T) {
	net, g := lineNet(t, 1)
	sw := net.Switch(1)
	p := g.PortTo(1, 2)
	if sw.CapacityK(p) != 100_000 {
		t.Fatalf("capacity = %d, want 100000 kbps", sw.CapacityK(p))
	}
	sw.Reserve(p, 60_000)
	if sw.RemainingK(p) != 40_000 {
		t.Errorf("remaining = %d, want 40000", sw.RemainingK(p))
	}
	sw.Reserve(p, 60_000) // oversubscribed
	if sw.RemainingK(p) != 0 {
		t.Errorf("oversubscribed remaining = %d, want 0", sw.RemainingK(p))
	}
	sw.Release(p, 120_000)
	if sw.ReservedK(p) != 0 {
		t.Errorf("reserved after full release = %d, want 0", sw.ReservedK(p))
	}
	// Local port is uncapacitated and ignores reservations.
	sw.Reserve(PortLocal, 999)
	if sw.ReservedK(PortLocal) != 0 {
		t.Error("PortLocal took a reservation")
	}
}

func TestCommitStateMovesReservation(t *testing.T) {
	net, g := lineNet(t, 1)
	sw := net.Switch(1)
	f := packet.FlowID(5)
	p01 := g.PortTo(1, 0)
	p12 := g.PortTo(1, 2)
	sw.InstallInitialRule(f, p01, 1, 2, 30_000)
	if sw.ReservedK(p01) != 30_000 {
		t.Fatal("initial reservation missing")
	}
	ok := sw.CommitState(f, Commit{
		Port: p12, Version: 2, Distance: 1,
		OldVersion: 1, OldDistance: 2, SizeK: 30_000,
	})
	if !ok {
		t.Fatal("commit refused")
	}
	if sw.ReservedK(p01) != 0 || sw.ReservedK(p12) != 30_000 {
		t.Errorf("reservations: old=%d new=%d", sw.ReservedK(p01), sw.ReservedK(p12))
	}
	st, _ := sw.PeekState(f)
	if st.NewVersion != 2 || st.OldVersion != 1 || st.EgressPort != p12 {
		t.Errorf("registers after commit: %+v", st)
	}
	// Committing an older version is refused.
	if sw.CommitState(f, Commit{Port: p01, Version: 1, SizeK: 30_000}) {
		t.Error("older version committed")
	}
	if sw.ReservedK(p12) != 30_000 {
		t.Error("refused commit disturbed reservations")
	}
}

func TestStagedReservationConsumedOrReturned(t *testing.T) {
	net, g := lineNet(t, 1)
	sw := net.Switch(1)
	f := packet.FlowID(5)
	p12 := g.PortTo(1, 2)
	sw.StageReservation(f, p12, 10_000, 2)
	if sw.ReservedK(p12) != 10_000 {
		t.Fatal("staged reservation not booked")
	}
	// Commit of the same version+port consumes it without double booking.
	sw.CommitState(f, Commit{Port: p12, Version: 2, SizeK: 10_000})
	if sw.ReservedK(p12) != 10_000 {
		t.Errorf("after commit reserved = %d, want 10000 (no double booking)", sw.ReservedK(p12))
	}
	// A staged reservation superseded by a newer commit is returned.
	sw.StageReservation(f, p12, 5_000, 3)
	p01 := g.PortTo(1, 0)
	sw.CommitState(f, Commit{Port: p01, Version: 4, SizeK: 10_000})
	if sw.ReservedK(p12) != 0 {
		t.Errorf("stale staged reservation leaked: %d", sw.ReservedK(p12))
	}
}

func TestParkAndWakeUIM(t *testing.T) {
	net, _ := lineNet(t, 1)
	sw := net.Switch(1)
	fired := 0
	sw.ParkOnUIM(3, func() { fired++ })
	sw.ParkOnUIM(3, func() { fired++ })
	sw.WakeUIMWaiters(4) // different flow: nothing
	net.Eng.Run()
	if fired != 0 {
		t.Fatal("woke the wrong flow's waiters")
	}
	sw.WakeUIMWaiters(3)
	net.Eng.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if sw.Stats.Resubmissions != 2 {
		t.Errorf("resubmissions = %d, want 2", sw.Stats.Resubmissions)
	}
}

func TestParkOnCapacityWokenByRelease(t *testing.T) {
	net, g := lineNet(t, 1)
	sw := net.Switch(1)
	p := g.PortTo(1, 2)
	fired := false
	sw.Reserve(p, 100_000)
	sw.ParkOnCapacity(p, func() { fired = true })
	net.Eng.Run()
	if fired {
		t.Fatal("woke without a release")
	}
	sw.Release(p, 100_000)
	net.Eng.Run()
	if !fired {
		t.Fatal("release did not wake the parked work")
	}
}

func TestHighWaitingBookkeeping(t *testing.T) {
	net, g := lineNet(t, 1)
	sw := net.Switch(1)
	p := g.PortTo(1, 2)
	sw.MarkHighWaiting(p, 5)
	if !sw.HighWaitingOn(p, 6) {
		t.Error("other flow should see the high waiter")
	}
	if sw.HighWaitingOn(p, 5) {
		t.Error("a flow is not blocked by itself")
	}
	sw.ClearHighWaiting(p, 5)
	if sw.HighWaitingOn(p, 6) {
		t.Error("cleared waiter still visible")
	}
}

func TestCleanupGuards(t *testing.T) {
	net, g := lineNet(t, 1)
	f := packet.FlowID(9)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 500)
	sw1 := net.Switch(1)
	p := g.PortTo(1, 2)

	// Cleanup for an older-or-equal version: refused.
	sw1.Receive(packet.Marshal(&packet.CLN{Flow: f, Version: 1}), topo.InvalidPort)
	if st, _ := sw1.PeekState(f); !st.HasRule {
		t.Fatal("cleanup removed a rule of the same version")
	}
	// A pending indication protects the rule.
	st, _ := sw1.PeekState(f)
	st.IndicatedVersion = 2
	sw1.Receive(packet.Marshal(&packet.CLN{Flow: f, Version: 2}), topo.InvalidPort)
	if st, _ := sw1.PeekState(f); !st.HasRule {
		t.Fatal("cleanup removed a rule with a pending indication")
	}
	// The egress delivery rule is never removed.
	sw3 := net.Switch(3)
	sw3.Receive(packet.Marshal(&packet.CLN{Flow: f, Version: 99}), topo.InvalidPort)
	if st, _ := sw3.PeekState(f); !st.HasRule {
		t.Fatal("cleanup removed the egress rule")
	}
	// A genuinely stale rule is removed and its capacity released.
	st.IndicatedVersion = 0
	if sw1.ReservedK(p) != 500 {
		t.Fatalf("precondition: reservation = %d", sw1.ReservedK(p))
	}
	sw1.Receive(packet.Marshal(&packet.CLN{Flow: f, Version: 2}), topo.InvalidPort)
	if st, _ := sw1.PeekState(f); st.HasRule {
		t.Fatal("stale rule survived cleanup")
	}
	if sw1.ReservedK(p) != 0 {
		t.Error("cleanup did not release the reservation")
	}
	if sw1.Stats.RulesCleaned != 1 {
		t.Errorf("RulesCleaned = %d, want 1", sw1.Stats.RulesCleaned)
	}
}

func TestDecodeErrorCounted(t *testing.T) {
	net, _ := lineNet(t, 1)
	net.Switch(0).Receive([]byte{0xff, 1, 2}, topo.InvalidPort)
	if net.Switch(0).Stats.DecodeErrors != 1 {
		t.Error("undecodable frame not counted")
	}
	// Controller-bound types arriving at a switch are also dropped.
	net.Switch(0).Receive(packet.Marshal(&packet.UFM{Flow: 1}), topo.InvalidPort)
	if net.Switch(0).Stats.DecodeErrors != 2 {
		t.Error("misdelivered UFM not dropped")
	}
}

func TestApplyDelayModel(t *testing.T) {
	net, _ := lineNet(t, 1)
	sw := net.Switch(0)
	sw.InstallDelay = func() time.Duration { return 10 * time.Millisecond }
	var portChangeAt, relabelAt time.Duration
	sw.Apply(true, func() { portChangeAt = net.Eng.Now() })
	sw.Apply(false, func() { relabelAt = net.Eng.Now() })
	net.Eng.Run()
	if portChangeAt != 10*time.Millisecond {
		t.Errorf("port change committed at %v, want 10ms", portChangeAt)
	}
	if relabelAt >= portChangeAt {
		t.Errorf("register relabel (%v) should be faster than a table write (%v)", relabelAt, portChangeAt)
	}
}

func TestTracePathLoopGuard(t *testing.T) {
	net, g := lineNet(t, 1)
	f := packet.FlowID(3)
	// Create an artificial loop 1->2->1.
	net.Switch(1).InstallInitialRule(f, g.PortTo(1, 2), 1, 1, 100)
	net.Switch(2).InstallInitialRule(f, g.PortTo(2, 1), 1, 1, 100)
	visited, delivered := net.TracePath(f, 1, 10)
	if delivered {
		t.Fatal("loop reported as delivered")
	}
	if len(visited) != 11 {
		t.Errorf("loop guard visited %d nodes, want maxHops+1", len(visited))
	}
}

// TestSendPortDropAndMangle covers the legacy closure hooks, kept as a
// thin compatibility shim under the plan-based chaos harness (see
// faults_integration_test.go for the faults.Plan equivalents).
func TestSendPortDropAndMangle(t *testing.T) {
	net, _ := lineNet(t, 1)
	f := packet.FlowID(3)
	net.InstallPath(f, []topo.NodeID{0, 1, 2, 3}, 1, 100)

	dropped := 0
	net.Drop = func(from, to topo.NodeID, raw []byte) bool {
		if from == 1 && to == 2 {
			dropped++
			return true
		}
		return false
	}
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 1, TTL: 8})
	net.Eng.Run()
	if dropped != 1 {
		t.Fatal("drop hook not invoked")
	}
	if net.Switch(3).Stats.DataDelivered != 0 {
		t.Error("dropped packet delivered")
	}
	net.Drop = nil
	net.Mangle = func(from, to topo.NodeID, raw []byte) []byte { return []byte{0xee} }
	net.Switch(0).InjectData(&packet.Data{Flow: f, Seq: 2, TTL: 8})
	net.Eng.Run()
	if net.Switch(1).Stats.DecodeErrors != 1 {
		t.Error("mangled frame not rejected at the receiver")
	}
}
