// Package localverify implements a decentralized local-verification
// update scheduler in the style of Foerster & Schmid ("Local Checkability
// in Dynamic Networks", and the consistent-update survey's local-check
// schedulers, arXiv 1908.10086): the controller ships every new-path node
// one distance-labelled instruction, the egress anchors the update, and
// each node applies only after locally verifying a confirmation from its
// downstream neighbor on the new path — the confirmation must carry the
// expected version and a distance exactly one below the node's own label,
// so a forged, reordered or stale confirmation is rejected locally
// without controller involvement.
//
// Unlike P4Update there is no dual-layer mode, no version fast-forward
// and no switch-side stall watchdog: lost messages are repaired by the
// controller's probe-timeout resend, which every already-applied node
// answers by re-confirming upstream (duplicate instructions and
// confirmations are idempotent).
package localverify

import (
	"fmt"

	"p4update/internal/controlplane"
	"p4update/internal/dataplane"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/trace"
)

// Plan is a prepared LocalVerify update: one distance-labelled UIM per
// new-path node, emitted ingress-to-egress.
type Plan struct {
	Flow    packet.FlowID
	Version uint32
	NewPath []topo.NodeID
	Targets []topo.NodeID
	Msgs    []packet.Message
}

// PreparePlan computes the instruction wave for one flow update. Every
// new-path node gets an instruction (the scheme verifies hop-by-hop, so
// even nodes whose port is unchanged re-commit under the new version):
// distance L-1-i, the downstream egress port, and the upstream child
// port the confirmation is relayed to.
func PreparePlan(t *topo.Topology, flow packet.FlowID, newPath []topo.NodeID,
	version, sizeK uint32) (*Plan, error) {

	if err := t.ValidatePath(newPath); err != nil {
		return nil, fmt.Errorf("localverify: new path: %w", err)
	}
	L := len(newPath)
	p := &Plan{Flow: flow, Version: version, NewPath: newPath}
	for i, n := range newPath {
		m := &packet.UIM{
			Flow: flow, Version: version,
			NewDistance: uint16(L - 1 - i),
			EgressPort:  packet.NoPort,
			ChildPort:   packet.NoPort,
			FlowSizeK:   sizeK,
			UpdateType:  packet.UpdateSingle,
		}
		if i+1 < L {
			m.EgressPort = uint16(t.PortTo(n, newPath[i+1]))
		}
		if i > 0 {
			m.ChildPort = uint16(t.PortTo(n, newPath[i-1]))
		}
		if i == 0 {
			m.Role |= packet.RoleIngress
		}
		if i == L-1 {
			m.Role |= packet.RoleEgress
		}
		p.Targets = append(p.Targets, n)
		p.Msgs = append(p.Msgs, m)
	}
	return p, nil
}

// PrepareCached memoizes PreparePlan through p under an 'l'-prefixed
// key; a nil planner computes directly.
func PrepareCached(p controlplane.Planner, t *topo.Topology, flow packet.FlowID, newPath []topo.NodeID,
	version, sizeK uint32) (*Plan, error) {

	if p == nil {
		return PreparePlan(t, flow, newPath, version, sizeK)
	}
	var k controlplane.KeyBuf
	k.U8('l')
	k.U32(uint32(flow))
	k.U32(version)
	k.U32(sizeK)
	k.Path(newPath)
	v, err := p.Memo(t, k.String(), func() (any, error) {
		return PreparePlan(t, flow, newPath, version, sizeK)
	})
	plan, _ := v.(*Plan)
	return plan, err
}

// flowLVState is the per-flow, per-switch protocol state. It lives in
// FlowState.Proto and survives fail-stop crashes alongside the committed
// rules it describes.
type flowLVState struct {
	instr   *packet.UIM
	applied bool
}

func lvState(st *dataplane.FlowState) *flowLVState {
	ls, ok := st.Proto.(*flowLVState)
	if !ok {
		ls = &flowLVState{}
		st.Proto = ls
	}
	return ls
}

// Handler is the LocalVerify data-plane handler.
type Handler struct {
	// Congestion enables the per-link capacity check before a move
	// (waiters are woken FIFO when capacity frees up).
	Congestion bool
}

var _ dataplane.Handler = (*Handler)(nil)

// HandleUIM stores the instruction; the egress anchors the update by
// applying immediately, everyone else waits for the downstream
// confirmation.
func (h *Handler) HandleUIM(sw *dataplane.Switch, m *packet.UIM) {
	st := sw.State(m.Flow)
	ls := lvState(st)
	if ls.instr != nil && m.Version <= ls.instr.Version {
		// Duplicate (controller resend during recovery): an applied node
		// re-confirms upstream so a lost confirmation is repaired.
		if m.Version == ls.instr.Version && ls.applied {
			h.confirmUpstream(sw, ls.instr)
		}
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Version, 0, 0)
		return
	}
	// m is pool-owned and recycled when dispatch returns, but the parks
	// and Apply commits below outlive this call — keep a private copy.
	cp := *m
	ls.instr = &cp
	ls.applied = false
	if m.Version > st.IndicatedVersion {
		st.IndicatedVersion = m.Version
	}
	if cp.Role.Has(packet.RoleEgress) {
		h.apply(sw, ls, &cp)
	}
	sw.WakeUIMWaiters(m.Flow)
}

// HandleUNM locally verifies the downstream confirmation: it must carry
// the instructed version and a distance exactly one below the node's own
// label (a hop-count witness that the downstream next hop really runs
// the new configuration).
func (h *Handler) HandleUNM(sw *dataplane.Switch, m *packet.UNM, inPort topo.PortID) {
	cp := *m
	m = &cp
	st := sw.State(m.Flow)
	ls := lvState(st)
	if ls.instr == nil || ls.instr.Version < m.Vn {
		// Instruction not here yet: wait (resubmission).
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeWaitUIM,
			uint32(m.Flow), m.Vn, 0, 0)
		sw.ParkOnUIM(m.Flow, func() { h.HandleUNM(sw, m, inPort) })
		return
	}
	instr := ls.instr
	if m.Vn < instr.Version {
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeRejectOutdated,
			uint32(m.Flow), m.Vn, instr.Version, 0)
		sw.Alarm(m.Flow, m.Vn, packet.ReasonOutdated)
		return
	}
	if m.Dn+1 != instr.NewDistance {
		// The confirmation did not come from our downstream successor on
		// the new path — applying could form a loop. Reject locally.
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeRejectDistance,
			uint32(m.Flow), m.Vn, uint32(m.Dn), uint32(instr.NewDistance))
		sw.Alarm(m.Flow, m.Vn, packet.ReasonDistance)
		return
	}
	if ls.applied {
		// Duplicate confirmation: re-relay upstream (at-least-once
		// delivery keeps the wave alive across losses).
		sw.Tracer().Verdict(int32(sw.ID), trace.CodeDuplicate,
			uint32(m.Flow), m.Vn, 0, 0)
		h.confirmUpstream(sw, instr)
		return
	}
	h.apply(sw, ls, instr)
}

// apply commits the instructed rule (capacity-gated under Congestion)
// and confirms upstream.
func (h *Handler) apply(sw *dataplane.Switch, ls *flowLVState, instr *packet.UIM) {
	st := sw.State(instr.Flow)
	newPort := dataplane.PortLocal
	if instr.EgressPort != packet.NoPort {
		newPort = topo.PortID(int32(instr.EgressPort))
	}
	if h.Congestion && newPort != dataplane.PortLocal &&
		!(st.HasRule && st.EgressPort == newPort && st.FlowSizeK >= instr.FlowSizeK) {
		if sw.RemainingK(newPort) < uint64(instr.FlowSizeK) {
			sw.Tracer().Verdict(int32(sw.ID), trace.CodeCapacityBlock,
				uint32(instr.Flow), instr.Version, uint32(int32(newPort)), uint32(instr.FlowSizeK))
			sw.ParkOnCapacity(newPort, func() { h.apply(sw, ls, instr) })
			return
		}
		sw.StageReservation(instr.Flow, newPort, instr.FlowSizeK, instr.Version)
	}
	sw.Tracer().Verdict(int32(sw.ID), trace.CodeApplyLV,
		uint32(instr.Flow), instr.Version, uint32(int32(newPort)), 0)
	portChanged := !st.HasRule || st.EgressPort != newPort
	sw.Apply(portChanged, func() {
		ok := sw.CommitState(instr.Flow, dataplane.Commit{
			Port:        newPort,
			Version:     instr.Version,
			Distance:    instr.NewDistance,
			OldVersion:  st.NewVersion,
			OldDistance: st.NewDistance,
			SizeK:       instr.FlowSizeK,
			Type:        packet.UpdateSingle,
		})
		if !ok {
			return
		}
		ls.applied = true
		h.confirmUpstream(sw, instr)
		if instr.Role.Has(packet.RoleIngress) {
			sw.SendUFM(&packet.UFM{
				Flow: instr.Flow, Version: instr.Version, Status: packet.StatusUpdated,
			})
		}
	})
}

// confirmUpstream relays the verified confirmation toward the ingress.
func (h *Handler) confirmUpstream(sw *dataplane.Switch, instr *packet.UIM) {
	if instr.ChildPort == packet.NoPort {
		return
	}
	unm := sw.Pool().GetUNM()
	unm.Flow = instr.Flow
	unm.UpdateType = packet.UpdateSingle
	unm.Vn = instr.Version
	unm.Dn = instr.NewDistance
	sw.SendUNM(topo.PortID(int32(instr.ChildPort)), unm)
	sw.Pool().PutUNM(unm)
}

// Controller drives LocalVerify updates over the shared tracker: one
// instruction wave per update, completion measured identically to every
// other system (apply observer + probe traversal).
type Controller struct {
	Ctl *controlplane.Controller
	// Plans, when set, memoizes instruction waves across trials that
	// share a frozen topology.
	Plans controlplane.Planner
}

// NewController wires a LocalVerify control plane over the shared
// tracker.
func NewController(ctl *controlplane.Controller) *Controller {
	return &Controller{Ctl: ctl}
}

// TriggerUpdate prepares and pushes an update of f to newPath. The
// returned status carries a Resend hook, so the controller-side probe
// watchdog can restart a wave stalled by loss or crashes.
func (c *Controller) TriggerUpdate(f packet.FlowID, newPath []topo.NodeID) (*controlplane.UpdateStatus, error) {
	rec, ok := c.Ctl.Flow(f)
	if !ok {
		return nil, fmt.Errorf("localverify: unknown flow %d", f)
	}
	version := rec.Version + 1
	oldPath := rec.Path
	plan, err := PrepareCached(c.Plans, c.Ctl.Topo, f, newPath, version, rec.SizeK)
	if err != nil {
		return nil, err
	}
	u := c.Ctl.PushMessagesInto(nil, f, version, oldPath, newPath, nil, plan.Targets, plan.Msgs, rec)
	u.Resend = func() {
		for i := range plan.Msgs {
			c.Ctl.Net.SendToSwitch(plan.Targets[i], plan.Msgs[i], 0)
		}
	}
	return u, nil
}
