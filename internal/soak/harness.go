// Package soak composes the streaming churn workload with the
// deterministic chaos harness into a long-running "fabric operator"
// scenario: Poisson flow arrivals and departures with continuous
// reroute waves, sustained while a compiled storm (faults.BuildStorm)
// fires recurring loss/reorder/corrupt bursts, switch crash/restore
// cycles, and controller partition windows, and while the invariant
// auditor sweeps at tight intervals.
//
// The harness is the fault-aware superset of the churn experiment's
// driver: with no injector attached it schedules the identical resident
// event sequence (the churn experiment delegates here and stays
// byte-identical), and with one attached it adds the operator behaviors
// that make faults and churn compose — teardown of a flow whose path
// crosses a crashed switch is re-deferred until the fabric heals,
// reroute trigger waves are postponed past controller partition windows
// instead of burning retrigger budget into a black hole, and every
// update's §11 retrigger burn is attributed to the storm episode that
// overlapped it. SLO accounting (availability, completion quantiles,
// per-episode recovery time) accumulates in an SLO tracker fed by the
// auditor's per-sweep deltas and is rendered as a JSON operator Report.
package soak

import (
	"fmt"
	"sort"
	"time"

	"p4update/internal/controlplane"
	"p4update/internal/faults"
	"p4update/internal/packet"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// Options tunes one soak (or plain churn) trial.
type Options struct {
	// ArrivalRate is the flow arrival rate (flows per second of virtual
	// time); MeanLifetime the mean exponential flow lifetime. The
	// steady-state live population approaches ArrivalRate*MeanLifetime.
	ArrivalRate  float64
	MeanLifetime time.Duration
	// Duration is the admission window; the trial then drains for Drain
	// extra virtual time so in-flight updates and departures settle.
	Duration time.Duration
	Drain    time.Duration
	// RerouteEvery is the mean interval between link perturbations
	// (0 disables reroutes — pure arrival/departure churn).
	RerouteEvery time.Duration
	// EdgeOnly restricts flow endpoints to the topology's degree-minimal
	// edge layer (fat-tree edge switches).
	EdgeOnly bool
	// RetireGrace delays data-plane teardown of a departed flow after
	// its last update completes, letting stale cleanup frames drain
	// before the flow's slot is recycled. It is also the re-check period
	// for teardown deferred across a switch outage.
	RetireGrace time.Duration

	// Episodes is the storm timeline (faults.BuildStorm) used for SLO
	// attribution: retrigger burn is charged to the latest overlapping
	// episode and recovery time is measured per episode. Nil for pure
	// churn.
	Episodes []faults.Episode
	// MaxRetriggers is the per-update §11 recovery budget the wired
	// controller runs with; the report expresses retrigger burn as a
	// fraction of it.
	MaxRetriggers int
}

// Counters is the harness's event bookkeeping, exported for metric maps.
type Counters struct {
	Arrivals, Departures, Retired uint64
	Waves, Triggered, Completed   uint64
	SkippedBusy, SkippedSame      uint64
	TriggerErrs                   uint64
	// WavesDeferred counts reroute trigger scans postponed past a
	// controller partition window; RetireDeferrals counts teardown
	// re-deferrals because a switch on the flow's path was down.
	WavesDeferred   uint64
	RetireDeferrals uint64
	// ProbeRetries totals the budget-free confirmation re-probes of
	// fully applied updates (controlplane.UpdateStatus.ProbeRetries).
	ProbeRetries uint64
	PeakLive     int
}

// soakFlow is the harness's view of one live flow.
type soakFlow struct {
	src, dst topo.NodeID
	path     []topo.NodeID
	updating bool
	departed bool
}

// Harness drives one trial: it owns the live-flow table and the
// link→flows index, and schedules every arrival, departure, and reroute
// wave as resident (root-engine) events — so a sharded execution
// replays the identical sequence at barriers and the trial stays
// byte-identical across shard counts and runner workers.
type Harness struct {
	sys *wiring.System
	g   *topo.Topology
	w   *traffic.ChurnWorkload
	opt Options

	live      map[packet.FlowID]*soakFlow
	linkFlows map[topo.LinkID]map[packet.FlowID]struct{}
	samples   []time.Duration
	inflight  map[packet.FlowID]*controlplane.UpdateStatus

	c   Counters
	slo *SLO

	scratch []packet.FlowID // sorted wave worklist, reused
}

// NewWorkload builds the seeded churn workload for one trial under opt.
func NewWorkload(g *topo.Topology, seed int64, opt Options) (*traffic.ChurnWorkload, error) {
	cand := g.Nodes()
	if opt.EdgeOnly {
		cand = topo.EdgeSwitches(g)
	}
	return traffic.NewChurnWorkload(g, seed, traffic.ChurnConfig{
		ArrivalRate:  opt.ArrivalRate,
		MeanLifetime: opt.MeanLifetime,
		Duration:     opt.Duration,
		RerouteEvery: opt.RerouteEvery,
		// Jitter is applied by the caller before wiring (control
		// latencies derive from link latencies); never here.
		LatencyJitter: 0,
		Candidates:    cand,
	})
}

// NewHarness wires a harness onto an already built system. It chains
// onto the controller's OnComplete hook (coordinators like ez-Segway
// wrap it at build time) and, when an auditor is attached, hangs the
// SLO tracker off its per-sweep deltas. Call Start, run the engine, then
// Finish.
func NewHarness(sys *wiring.System, g *topo.Topology, w *traffic.ChurnWorkload, opt Options) *Harness {
	h := &Harness{
		sys:       sys,
		g:         g,
		w:         w,
		opt:       opt,
		live:      make(map[packet.FlowID]*soakFlow),
		linkFlows: make(map[topo.LinkID]map[packet.FlowID]struct{}),
		inflight:  make(map[packet.FlowID]*controlplane.UpdateStatus),
		slo:       newSLO(opt.Episodes, opt.MaxRetriggers),
	}
	prev := sys.Ctl.OnComplete
	sys.Ctl.OnComplete = func(u *controlplane.UpdateStatus) {
		if prev != nil {
			prev(u)
		}
		h.onUpdateComplete(u)
	}
	if sys.Aud != nil {
		sys.Aud.OnSweep = h.slo.onSweep
	}
	return h
}

// Start schedules the first arrival and reroute events.
func (h *Harness) Start() {
	h.scheduleNextArrival()
	h.scheduleNextReroute()
}

// Counters returns the harness's event bookkeeping.
func (h *Harness) Counters() Counters { return h.c }

// Samples returns the completed-update durations in completion order.
func (h *Harness) Samples() []time.Duration { return h.samples }

// LiveFlows returns the current live-flow population.
func (h *Harness) LiveFlows() int { return len(h.live) }

// pathLinks calls fn with the LinkID of every hop of path.
func (h *Harness) pathLinks(path []topo.NodeID, fn func(topo.LinkID)) {
	for i := 0; i+1 < len(path); i++ {
		l, ok := h.g.LinkBetween(path[i], path[i+1])
		if !ok {
			panic(fmt.Sprintf("soak: no link %d-%d on flow path", path[i], path[i+1]))
		}
		fn(l.ID)
	}
}

func (h *Harness) indexFlow(f packet.FlowID, path []topo.NodeID) {
	h.pathLinks(path, func(id topo.LinkID) {
		m := h.linkFlows[id]
		if m == nil {
			m = make(map[packet.FlowID]struct{})
			h.linkFlows[id] = m
		}
		m[f] = struct{}{}
	})
}

func (h *Harness) unindexFlow(f packet.FlowID, path []topo.NodeID) {
	h.pathLinks(path, func(id topo.LinkID) {
		delete(h.linkFlows[id], f)
	})
}

// pathDown reports whether any switch on path is currently crashed.
func (h *Harness) pathDown(path []topo.NodeID) bool {
	for _, n := range path {
		if h.sys.Net.Switch(n).Down() {
			return true
		}
	}
	return false
}

// retire tears the flow down everywhere: harness tables, controller
// Flow DB, and the data-plane interning slot (recycled for the next
// arrival). Callers only retire quiescent flows — either never updated,
// or RetireGrace after their last update completed. When a switch on
// the flow's path is down, its ASIC still holds the flow's committed
// rules but is unreachable — a real operator cannot reclaim the slot
// until the fabric heals — so teardown is re-deferred instead of
// silently dropping the flow's state mid-outage.
func (h *Harness) retire(f packet.FlowID) {
	cf, ok := h.live[f]
	if !ok {
		return
	}
	if h.sys.Inj != nil && h.pathDown(cf.path) {
		h.c.RetireDeferrals++
		grace := h.opt.RetireGrace
		if grace <= 0 {
			grace = time.Millisecond
		}
		h.sys.Eng.Schedule(grace, func() { h.retire(f) })
		return
	}
	h.unindexFlow(f, cf.path)
	delete(h.live, f)
	h.sys.Ctl.UnregisterFlow(f)
	h.sys.Net.RetireFlow(f)
	h.c.Retired++
}

// onArrival registers the flow along the current shortest path and
// schedules its departure and the next arrival.
func (h *Harness) onArrival(a traffic.ChurnArrival) {
	f := a.ID()
	path := h.g.ShortestPath(a.Src, a.Dst, topo.ByLatency)
	if err := h.sys.Ctl.RegisterFlowID(f, a.Src, a.Dst, path, 1); err != nil {
		panic(fmt.Sprintf("soak: register: %v", err))
	}
	cf := &soakFlow{src: a.Src, dst: a.Dst, path: path}
	h.live[f] = cf
	h.indexFlow(f, path)
	h.c.Arrivals++
	if len(h.live) > h.c.PeakLive {
		h.c.PeakLive = len(h.live)
	}
	h.sys.Eng.ScheduleAt(a.At+a.Lifetime, func() { h.onDeparture(f) })
	h.scheduleNextArrival()
}

// onDeparture retires the flow immediately when it is quiescent, or
// defers teardown to update completion when a reroute is in flight.
// departed is set in both branches: a flow whose teardown is deferred
// across a switch outage stays in the live table until the fabric
// heals, and marking it keeps reroute waves from triggering fresh
// updates on a flow that is already gone (the teardown would then
// unregister the flow mid-update and wedge it forever).
func (h *Harness) onDeparture(f packet.FlowID) {
	cf, ok := h.live[f]
	if !ok {
		return
	}
	h.c.Departures++
	cf.departed = true
	if cf.updating {
		return
	}
	h.retire(f)
}

// onReroute applies the link perturbation and runs (or defers) the
// trigger scan for the affected flows.
func (h *Harness) onReroute(r traffic.ChurnReroute) {
	base := h.w.BaseLatency(r.Link)
	h.g.SetLinkLatency(r.Link, time.Duration(float64(base)*r.Factor))
	h.c.Waves++

	if h.deferWave(r.Link) {
		h.scheduleNextReroute()
		return
	}
	h.waveScan(r.Link)
	h.scheduleNextReroute()
}

// deferWave postpones the trigger scan for link past the end of any
// active controller partition window: triggering into a partition only
// burns §11 retrigger budget on UIMs a dead channel will drop. The
// latency perturbation itself stays applied — the physical event
// happened — only the controller's reaction waits, like an operator
// holding a config push during a management-plane outage.
func (h *Harness) deferWave(link topo.LinkID) bool {
	inj := h.sys.Inj
	if inj == nil {
		return false
	}
	until, active := inj.ActivePartitionEnd()
	if !active {
		return false
	}
	h.c.WavesDeferred++
	h.sys.Eng.ScheduleAt(until, func() {
		if h.deferWave(link) { // another window may have opened
			return
		}
		h.waveScan(link)
	})
	return true
}

// waveScan triggers one update per affected flow whose shortest path
// changed, batching the wave's UIMs per destination switch. Affected
// flows are visited in FlowID order so the trigger sequence is
// deterministic.
func (h *Harness) waveScan(link topo.LinkID) {
	h.scratch = h.scratch[:0]
	for f := range h.linkFlows[link] {
		h.scratch = append(h.scratch, f)
	}
	sort.Slice(h.scratch, func(i, j int) bool { return h.scratch[i] < h.scratch[j] })

	h.sys.Ctl.BeginUIMBatch()
	for _, f := range h.scratch {
		cf := h.live[f]
		if cf == nil || cf.updating || cf.departed {
			h.c.SkippedBusy++
			continue
		}
		sp := h.g.ShortestPath(cf.src, cf.dst, topo.ByLatency)
		if samePath(sp, cf.path) {
			h.c.SkippedSame++
			continue
		}
		u, err := h.sys.Trigger(f, sp)
		if err != nil {
			h.c.TriggerErrs++
			continue
		}
		h.unindexFlow(f, cf.path)
		cf.path = sp
		cf.updating = true
		h.indexFlow(f, sp)
		h.c.Triggered++
		if u != nil {
			h.inflight[f] = u
		}
	}
	h.sys.Ctl.FlushUIMBatch()
}

// onUpdateComplete samples the update time, charges its retrigger burn
// to the overlapping storm episode, drops the per-update tracking
// record (the controller's updates map holds only in-flight work), and
// finishes a deferred departure after the retire grace.
func (h *Harness) onUpdateComplete(u *controlplane.UpdateStatus) {
	h.c.Completed++
	h.samples = append(h.samples, u.Completed-u.Sent)
	h.slo.chargeUpdate(u.Sent, u.Completed, u.Retriggers)
	h.c.ProbeRetries += uint64(u.ProbeRetries)
	delete(h.inflight, u.Flow)
	h.sys.Ctl.ForgetUpdate(u.Flow, u.Version)
	cf, ok := h.live[u.Flow]
	if !ok {
		return
	}
	cf.updating = false
	if cf.departed {
		h.sys.Eng.Schedule(h.opt.RetireGrace, func() { h.retire(u.Flow) })
	}
}

func (h *Harness) scheduleNextArrival() {
	a, ok := h.w.NextArrival(func(f packet.FlowID) bool {
		_, taken := h.live[f]
		return taken
	})
	if !ok {
		return
	}
	h.sys.Eng.ScheduleAt(a.At, func() { h.onArrival(a) })
}

func (h *Harness) scheduleNextReroute() {
	r, ok := h.w.NextReroute()
	if !ok {
		return
	}
	h.sys.Eng.ScheduleAt(r.At, func() { h.onReroute(r) })
}

func samePath(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// crashOrphaned reports whether an update still in flight at trial end
// was doomed by a switch outage rather than stalled by the protocol: a
// node on its flow's current path is down right now, or was inside a
// crash episode at some instant of the update's lifetime [sent, now].
func (h *Harness) crashOrphaned(cf *soakFlow, sent, now time.Duration) bool {
	if h.pathDown(cf.path) {
		return true
	}
	for _, ep := range h.opt.Episodes {
		if ep.Class != faults.EpisodeCrash {
			continue
		}
		if ep.Start > now {
			break
		}
		if ep.End <= sent {
			continue
		}
		for _, n := range cf.path {
			if n == ep.Node {
				return true
			}
		}
	}
	return false
}
