package soak

import (
	"encoding/json"
	"sort"
	"time"

	"p4update/internal/faults"
)

// ViolationCounts is the report's audit summary.
type ViolationCounts struct {
	Blackholes         uint64 `json:"blackholes"`
	Loops              uint64 `json:"loops"`
	OverCapacity       uint64 `json:"over_capacity"`
	VersionRegressions uint64 `json:"version_regressions"`
	Total              uint64 `json:"total"`
}

// LatencySLO is the update-completion quantile summary.
type LatencySLO struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// ClassSLO aggregates one fault class's episodes: how many the storm
// fired, how many the fabric recovered from (a clean sweep after the
// episode ended), recovery-time statistics, and the §11 retrigger
// budget burned by updates the class's episodes overlapped.
type ClassSLO struct {
	Class          string  `json:"class"`
	Episodes       int     `json:"episodes"`
	Recovered      int     `json:"recovered"`
	RecoveryMeanMs float64 `json:"recovery_mean_ms"`
	RecoveryMaxMs  float64 `json:"recovery_max_ms"`
	UpdatesCharged uint64  `json:"updates_charged"`
	Retriggers     uint64  `json:"retriggers"`
	BudgetBurnPct  float64 `json:"budget_burn_pct"`
}

// EpisodeReport is one storm episode's line in the operator report.
type EpisodeReport struct {
	Class   string  `json:"class"`
	Node    int     `json:"node,omitempty"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	// RecoveryMs is episode start → first post-episode clean sweep;
	// -1 when no clean sweep was observed before the trial ended.
	RecoveryMs     float64 `json:"recovery_ms"`
	UpdatesCharged uint64  `json:"updates_charged"`
	Retriggers     uint64  `json:"retriggers"`
}

// InjectionStats summarizes what the fault injector actually did.
type InjectionStats struct {
	Inspected      uint64 `json:"inspected"`
	Dropped        uint64 `json:"dropped"`
	Duplicated     uint64 `json:"duplicated"`
	Corrupted      uint64 `json:"corrupted"`
	Reordered      uint64 `json:"reordered"`
	PartitionDrops uint64 `json:"partition_drops"`
	Crashes        uint64 `json:"crashes"`
	Restores       uint64 `json:"restores"`
}

// Report is the per-trial JSON operator report: one (system × storm
// profile) cell of a soak grid. Every field derives from virtual-time
// state, so reports are byte-identical across runner worker counts.
type Report struct {
	System     string  `json:"system"`
	Profile    string  `json:"profile"`
	Seed       int64   `json:"seed"`
	VirtualSec float64 `json:"virtual_sec"`

	Arrivals   uint64 `json:"arrivals"`
	Departures uint64 `json:"departures"`
	Retired    uint64 `json:"retired"`
	PeakLive   int    `json:"peak_live"`
	EndLive    int    `json:"end_live"`

	Waves           uint64 `json:"waves"`
	WavesDeferred   uint64 `json:"waves_deferred"`
	RetireDeferrals uint64 `json:"retire_deferrals"`

	UpdatesTriggered uint64 `json:"updates_triggered"`
	UpdatesCompleted uint64 `json:"updates_completed"`
	// InFlight updates at trial end split three ways. Confirming: every
	// node committed the target version — the data plane is established
	// and consistent — but the §9.1 probe confirmation has not survived
	// the ambient loss yet (the controller keeps re-probing, budget-
	// free). CrashOrphaned: not fully applied and doomed by a switch
	// outage on the flow's path (the completion contract excludes
	// them). Stalled: the protocol's own failure to converge.
	InFlight      uint64 `json:"in_flight"`
	Confirming    uint64 `json:"confirming"`
	CrashOrphaned uint64 `json:"crash_orphaned"`
	Stalled       uint64 `json:"stalled"`

	AvailabilityPct float64 `json:"availability_pct"`
	AuditedSec      float64 `json:"audited_sec"`
	UnavailableSec  float64 `json:"unavailable_sec"`
	Sweeps          uint64  `json:"sweeps"`
	DirtySweeps     uint64  `json:"dirty_sweeps"`

	Violations ViolationCounts `json:"violations"`
	Latency    LatencySLO      `json:"latency"`

	MaxRetriggers int    `json:"max_retriggers"`
	Retriggers    uint64 `json:"retriggers"`
	// ProbeRetries counts budget-free confirmation re-probes of fully
	// applied updates (they are not part of the §11 burn).
	ProbeRetries uint64 `json:"probe_retries"`
	// BudgetBurnPct is total retriggers over the total §11 budget the
	// triggered updates were collectively allowed.
	BudgetBurnPct float64 `json:"budget_burn_pct"`

	Classes  []ClassSLO      `json:"classes"`
	Episodes []EpisodeReport `json:"episodes"`

	Injection *InjectionStats `json:"injection,omitempty"`
}

// Marshal renders the report as deterministic indented JSON.
func (r *Report) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// quantile returns the p-quantile of sorted in milliseconds.
func quantile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return ms(sorted[int(p*float64(len(sorted)-1))])
}

// Finish closes the trial and builds its operator report. Call it after
// the engine has drained (or hit its horizon). In-flight updates are
// classified (confirming vs crash-orphaned vs stalled) and their
// retrigger burn is charged as if they ended now.
func (h *Harness) Finish(system, profile string, seed int64) *Report {
	now := h.sys.Eng.Now()
	var confirming, orphaned, stalled uint64
	for f, u := range h.inflight {
		sent := u.Sent
		if sent == 0 { // queued, never launched
			sent = now
		}
		h.slo.chargeUpdate(sent, now, u.Retriggers)
		h.c.ProbeRetries += uint64(u.ProbeRetries)
		cf := h.live[f]
		switch {
		case u.AllApplied > 0:
			// The path is established; only the §9.1 confirmation is
			// outstanding against the ambient loss.
			confirming++
		case cf != nil && h.crashOrphaned(cf, sent, now):
			orphaned++
		default:
			stalled++
		}
	}

	rep := &Report{
		System:     system,
		Profile:    profile,
		Seed:       seed,
		VirtualSec: now.Seconds(),

		Arrivals:   h.c.Arrivals,
		Departures: h.c.Departures,
		Retired:    h.c.Retired,
		PeakLive:   h.c.PeakLive,
		EndLive:    len(h.live),

		Waves:           h.c.Waves,
		WavesDeferred:   h.c.WavesDeferred,
		RetireDeferrals: h.c.RetireDeferrals,

		UpdatesTriggered: h.c.Triggered,
		UpdatesCompleted: h.c.Completed,
		InFlight:         uint64(len(h.inflight)),
		Confirming:       confirming,
		CrashOrphaned:    orphaned,
		Stalled:          stalled,

		AvailabilityPct: h.slo.availabilityPct(),
		AuditedSec:      h.slo.audited.Seconds(),
		UnavailableSec:  h.slo.unavailable.Seconds(),
		Sweeps:          h.slo.sweeps,
		DirtySweeps:     h.slo.dirtySweeps,

		Violations: ViolationCounts{
			Blackholes:         h.slo.blackholes,
			Loops:              h.slo.loops,
			OverCapacity:       h.slo.overCap,
			VersionRegressions: h.slo.regress,
			Total:              h.slo.violationTotal(),
		},

		MaxRetriggers: h.opt.MaxRetriggers,
		Retriggers:    h.slo.totalRetrig,
		ProbeRetries:  h.c.ProbeRetries,
	}

	if len(h.samples) > 0 {
		sorted := append([]time.Duration(nil), h.samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, s := range sorted {
			sum += s
		}
		rep.Latency = LatencySLO{
			P50Ms:  quantile(sorted, 0.50),
			P99Ms:  quantile(sorted, 0.99),
			P999Ms: quantile(sorted, 0.999),
			MaxMs:  ms(sorted[len(sorted)-1]),
			MeanMs: ms(sum) / float64(len(sorted)),
		}
	}

	if h.opt.MaxRetriggers > 0 && h.c.Triggered > 0 {
		rep.BudgetBurnPct = 100 * float64(h.slo.totalRetrig) /
			(float64(h.c.Triggered) * float64(h.opt.MaxRetriggers))
	}

	rep.Classes, rep.Episodes = h.classReports()

	if h.sys.Inj != nil {
		st := h.sys.Inj.Stats
		rep.Injection = &InjectionStats{
			Inspected:      st.Inspected,
			Dropped:        st.Dropped,
			Duplicated:     st.Duplicated,
			Corrupted:      st.Corrupted,
			Reordered:      st.Reordered,
			PartitionDrops: st.PartitionDrops,
			Crashes:        st.Crashes,
			Restores:       st.Restores,
		}
	}
	return rep
}

// classReports folds the per-episode SLO state into the per-class and
// per-episode report sections, in class order then start order.
func (h *Harness) classReports() ([]ClassSLO, []EpisodeReport) {
	s := h.slo
	if len(s.episodes) == 0 {
		return nil, nil
	}
	classes := make([]ClassSLO, faults.NumEpisodeClasses)
	for c := range classes {
		classes[c].Class = faults.EpisodeClass(c).String()
	}
	eps := make([]EpisodeReport, len(s.episodes))
	for i, ep := range s.episodes {
		cl := &classes[ep.Class]
		cl.Episodes++
		cl.UpdatesCharged += s.epDone[i]
		cl.Retriggers += s.epRetrig[i]
		rec := float64(-1)
		if s.recovery[i] >= 0 {
			rec = ms(s.recovery[i])
			cl.Recovered++
			cl.RecoveryMeanMs += rec // sum for now; divided below
			if rec > cl.RecoveryMaxMs {
				cl.RecoveryMaxMs = rec
			}
		}
		node := 0
		if ep.Class == faults.EpisodeCrash {
			node = int(ep.Node)
		}
		eps[i] = EpisodeReport{
			Class:          ep.Class.String(),
			Node:           node,
			StartMs:        ms(ep.Start),
			EndMs:          ms(ep.End),
			RecoveryMs:     rec,
			UpdatesCharged: s.epDone[i],
			Retriggers:     s.epRetrig[i],
		}
	}
	out := classes[:0]
	for c := range classes {
		cl := classes[c]
		if cl.Episodes == 0 {
			continue
		}
		if cl.Recovered > 0 {
			cl.RecoveryMeanMs /= float64(cl.Recovered)
		}
		if h.opt.MaxRetriggers > 0 && cl.UpdatesCharged > 0 {
			cl.BudgetBurnPct = 100 * float64(cl.Retriggers) /
				(float64(cl.UpdatesCharged) * float64(h.opt.MaxRetriggers))
		}
		out = append(out, cl)
	}
	return out, eps
}
