package soak

import (
	"time"

	"p4update/internal/audit"
	"p4update/internal/faults"
)

// SLO accumulates the operator-grade service accounting for one trial:
//
//   - availability: the fraction of audited virtual time with zero
//     blackholes — each inter-sweep interval is charged unavailable when
//     its closing sweep records a new blackhole;
//   - per-episode recovery time: episode start → first post-episode
//     clean sweep (every invariant holding);
//   - retrigger budget burn: each update's §11 retrigger count is
//     charged to the latest storm episode overlapping its in-flight
//     window, or to ambient chaos when none does.
//
// The tracker is pure bookkeeping — it never touches the engine, so an
// attached tracker leaves the event sequence untouched.
type SLO struct {
	episodes      []faults.Episode
	maxRetriggers int

	sweeps, dirtySweeps  uint64
	lastSweep            time.Duration
	audited, unavailable time.Duration

	blackholes, loops, overCap, regress uint64

	recovery           []time.Duration // per episode; -1 until recovered
	epDone             []uint64        // updates charged per episode
	epRetrig           []uint64
	ambDone, ambRetrig uint64
	totalRetrig        uint64
}

func newSLO(eps []faults.Episode, maxRetriggers int) *SLO {
	s := &SLO{episodes: eps, maxRetriggers: maxRetriggers}
	s.recovery = make([]time.Duration, len(eps))
	for i := range s.recovery {
		s.recovery[i] = -1
	}
	s.epDone = make([]uint64, len(eps))
	s.epRetrig = make([]uint64, len(eps))
	return s
}

// onSweep consumes one per-sweep delta from the auditor (the
// audit.Auditor.OnSweep seam).
func (s *SLO) onSweep(st audit.SweepStats) {
	dt := st.Time - s.lastSweep
	s.lastSweep = st.Time
	s.sweeps++
	s.audited += dt
	s.blackholes += st.Blackholes
	s.loops += st.Loops
	s.overCap += st.OverCapacity
	s.regress += st.VersionRegressions
	if st.Blackholes > 0 {
		s.unavailable += dt
	}
	if st.Total() > 0 {
		s.dirtySweeps++
		return
	}
	// A clean sweep recovers every episode that has already ended.
	for i := range s.episodes {
		if s.recovery[i] < 0 && s.episodes[i].End <= st.Time {
			s.recovery[i] = st.Time - s.episodes[i].Start
		}
	}
}

// chargeUpdate attributes one update's retrigger burn: the update was
// in flight over [sent, until] and retriggered `retriggers` times.
// Episodes are sorted by start, so the scan can stop at the first
// episode starting after the window; the latest overlapping episode
// wins the attribution (it is the one the operator was fighting when
// the update finally landed).
func (s *SLO) chargeUpdate(sent, until time.Duration, retriggers int) {
	s.totalRetrig += uint64(retriggers)
	idx := -1
	for i := range s.episodes {
		ep := &s.episodes[i]
		if ep.Start > until {
			break
		}
		if ep.End > sent {
			idx = i
		}
	}
	if idx >= 0 {
		s.epDone[idx]++
		s.epRetrig[idx] += uint64(retriggers)
	} else {
		s.ambDone++
		s.ambRetrig += uint64(retriggers)
	}
}

// violationTotal sums the violations the tracker has seen.
func (s *SLO) violationTotal() uint64 {
	return s.blackholes + s.loops + s.overCap + s.regress
}

// availabilityPct computes the headline availability (100% when nothing
// was audited — no evidence of unavailability).
func (s *SLO) availabilityPct() float64 {
	if s.audited <= 0 {
		return 100
	}
	return 100 * (1 - float64(s.unavailable)/float64(s.audited))
}
