package packet

import "encoding/binary"

// TypeCLN is the rule-cleanup message (§11 "Rule Cleanup"): after an
// update completes, stale rules on abandoned old-path nodes are removed
// and their capacity reservations released.
const TypeCLN MsgType = 18

// CLN asks a switch to remove the flow's rule if it predates version
// (the switch keeps rules belonging to the given or a newer
// configuration).
type CLN struct {
	Flow    FlowID
	Version uint32
}

const clnSize = 9

// Type implements Message.
func (m *CLN) Type() MsgType { return TypeCLN }

// SerializeTo implements Message.
func (m *CLN) SerializeTo(b []byte) []byte {
	var buf [clnSize]byte
	buf[0] = byte(TypeCLN)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint32(buf[5:9], m.Version)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *CLN) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeCLN, clnSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Version = binary.BigEndian.Uint32(b[5:9])
	return nil
}
