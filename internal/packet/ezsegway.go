package packet

import "encoding/binary"

// The ez-Segway baseline (Nguyen et al., SOSR'17, adapted per the paper's
// §9.1) uses two extra wire formats: the per-switch instruction message
// EZI and the intra-/inter-segment notification EZN. They live alongside
// the P4Update formats so both systems run on the same switch substrate.

// Additional message types for the baseline protocols.
const (
	TypeEZI MsgType = 16
	TypeEZN MsgType = 17
)

// EZFlags describes a switch's role in an ez-Segway update.
type EZFlags uint8

// EZI flags.
const (
	// EZEgress marks the flow egress.
	EZEgress EZFlags = 1 << iota
	// EZIngress marks the flow ingress.
	EZIngress
	// EZInitNow marks a gateway that initiates its upstream segment
	// immediately (the segment is not_in_loop).
	EZInitNow
	// EZInitAfterApply marks a gateway whose upstream segment is in_loop:
	// it may only be initiated after the gateway itself applied, i.e.
	// after the downstream dependency finished.
	EZInitAfterApply
	// EZRelay marks a segment-interior node that forwards the
	// notification to its upstream neighbor after applying.
	EZRelay
)

// Has reports whether all bits of g are set in f.
func (f EZFlags) Has(g EZFlags) bool { return f&g == g }

// EZI is the ez-Segway instruction the controller sends each switch on
// the new path.
type EZI struct {
	Flow       FlowID
	Version    uint32
	EgressPort uint16 // new next-hop port (NoPort at the egress)
	ChildPort  uint16 // port toward the upstream neighbor (NoPort at ingress)
	FlowSizeK  uint32
	Flags      EZFlags
	// Priority is the CP-computed congestion scheduling class (0 = no
	// dependency; higher moves first on contended links).
	Priority uint8
	// DepFlow, when nonzero, is the flow whose move away must be
	// confirmed before this flow's move may proceed (the CP-computed
	// static inter-flow dependency).
	DepFlow FlowID
}

const eziSize = 23

// Type implements Message.
func (m *EZI) Type() MsgType { return TypeEZI }

// SerializeTo implements Message.
func (m *EZI) SerializeTo(b []byte) []byte {
	var buf [eziSize]byte
	buf[0] = byte(TypeEZI)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint32(buf[5:9], m.Version)
	binary.BigEndian.PutUint16(buf[9:11], m.EgressPort)
	binary.BigEndian.PutUint16(buf[11:13], m.ChildPort)
	binary.BigEndian.PutUint32(buf[13:17], m.FlowSizeK)
	buf[17] = byte(m.Flags)
	buf[18] = m.Priority
	binary.BigEndian.PutUint32(buf[19:23], uint32(m.DepFlow))
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *EZI) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeEZI, eziSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Version = binary.BigEndian.Uint32(b[5:9])
	m.EgressPort = binary.BigEndian.Uint16(b[9:11])
	m.ChildPort = binary.BigEndian.Uint16(b[11:13])
	m.FlowSizeK = binary.BigEndian.Uint32(b[13:17])
	m.Flags = EZFlags(b[17])
	m.Priority = b[18]
	m.DepFlow = FlowID(binary.BigEndian.Uint32(b[19:23]))
	return nil
}

// EZN is the ez-Segway data-plane notification propagating an update
// upstream through a segment. It carries no verification labels — the
// receiving switch applies unconditionally.
type EZN struct {
	Flow    FlowID
	Version uint32
}

const eznSize = 9

// Type implements Message.
func (m *EZN) Type() MsgType { return TypeEZN }

// SerializeTo implements Message.
func (m *EZN) SerializeTo(b []byte) []byte {
	var buf [eznSize]byte
	buf[0] = byte(TypeEZN)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint32(buf[5:9], m.Version)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *EZN) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeEZN, eznSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Version = binary.BigEndian.Uint32(b[5:9])
	return nil
}
