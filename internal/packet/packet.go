// Package packet defines the byte-level wire formats exchanged in the
// P4Update system: data-plane packets and the four control message types
// of the paper's Fig. 5 — Flow Report Messages (FRM), Update Indication
// Messages (UIM), Update Notification Messages (UNM) and Update Feedback
// Messages (UFM).
//
// Every message implements Message with gopacket-style SerializeTo /
// DecodeFromBytes semantics: serialization appends a fixed-layout
// big-endian header; decoding validates the length and type byte.
package packet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// MsgType discriminates the wire messages.
type MsgType uint8

// Message type values. Zero is reserved as invalid.
const (
	TypeInvalid MsgType = iota
	TypeData
	TypeFRM
	TypeUIM
	TypeUNM
	TypeUFM
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeFRM:
		return "FRM"
	case TypeUIM:
		return "UIM"
	case TypeUNM:
		return "UNM"
	case TypeUFM:
		return "UFM"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// FlowID identifies a flow. The paper derives it by hashing the flow's
// source-destination pair at the ingress switch (§B).
type FlowID uint32

// HashFlow computes the FlowID for a source-destination pair the way the
// ingress switch does for FRM generation.
func HashFlow(src, dst uint16) FlowID {
	h := fnv.New32a()
	var b [4]byte
	binary.BigEndian.PutUint16(b[0:2], src)
	binary.BigEndian.PutUint16(b[2:4], dst)
	h.Write(b[:])
	return FlowID(h.Sum32())
}

// HashFlowSalt computes the FlowID for a source-destination pair plus a
// disambiguating salt — scale workloads carry more simultaneous flows
// than a topology has distinct (src, dst) pairs, and the salt models the
// transport 5-tuple fields the ingress hash would also cover. Salt 0
// reduces to HashFlow, so unsalted flows keep their historical IDs.
func HashFlowSalt(src, dst, salt uint16) FlowID {
	if salt == 0 {
		return HashFlow(src, dst)
	}
	h := fnv.New32a()
	var b [6]byte
	binary.BigEndian.PutUint16(b[0:2], src)
	binary.BigEndian.PutUint16(b[2:4], dst)
	binary.BigEndian.PutUint16(b[4:6], salt)
	h.Write(b[:])
	return FlowID(h.Sum32())
}

// UpdateType tags an update as single-layer or dual-layer (register "t"
// of Table 1).
type UpdateType uint8

// Update type values.
const (
	UpdateSingle UpdateType = 0
	UpdateDual   UpdateType = 1
)

// String implements fmt.Stringer.
func (u UpdateType) String() string {
	if u == UpdateDual {
		return "DL"
	}
	return "SL"
}

// Message is the common interface of all wire formats.
type Message interface {
	// Type returns the message's type discriminator.
	Type() MsgType
	// SerializeTo appends the encoded message to b and returns the
	// extended slice.
	SerializeTo(b []byte) []byte
	// DecodeFromBytes parses the message from b, which must contain
	// exactly one encoded message of this type.
	DecodeFromBytes(b []byte) error
}

// Decode parses any supported message from b.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("packet: empty buffer")
	}
	var m Message
	switch MsgType(b[0]) {
	case TypeData:
		m = &Data{}
	case TypeFRM:
		m = &FRM{}
	case TypeUIM:
		m = &UIM{}
	case TypeUNM:
		m = &UNM{}
	case TypeUFM:
		m = &UFM{}
	case TypeEZI:
		m = &EZI{}
	case TypeEZN:
		m = &EZN{}
	case TypeCLN:
		m = &CLN{}
	case TypeUIMBatch:
		m = &UIMBatch{}
	case TypeFrame:
		m = &Frame{}
	default:
		return nil, fmt.Errorf("packet: unknown message type %d", b[0])
	}
	if err := m.DecodeFromBytes(b); err != nil {
		return nil, err
	}
	return m, nil
}

// Marshal is a convenience wrapper serializing m into a fresh buffer.
func Marshal(m Message) []byte { return m.SerializeTo(nil) }

func checkFrame(b []byte, want MsgType, size int) error {
	if len(b) != size {
		return fmt.Errorf("packet: %v frame is %d bytes, want %d", want, len(b), size)
	}
	if MsgType(b[0]) != want {
		return fmt.Errorf("packet: type byte %d, want %v", b[0], want)
	}
	return nil
}
