package packet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFrameRoundTrip pins the canonical round-trip property for framed
// messages: encode → decode → encode is the identity for every verb,
// and the decoded inner payload of a VerbMsg frame is the original
// message byte-for-byte.
func TestFrameRoundTrip(t *testing.T) {
	inner := Marshal(&UIM{Flow: 7, Version: 2, NewDistance: 3, OldDistance: 5,
		EgressPort: 1, ChildPort: NoPort, FlowSizeK: 1000,
		UpdateType: UpdateSingle, Role: RoleIngress})
	frames := []*Frame{
		{Verb: VerbMsg, Src: 4, Epoch: 3, Seq: 17, InPort: 2, Payload: inner},
		{Verb: VerbAck, Src: -1, Epoch: 1, InPort: NoPort, Payload: AppendAck(nil, 16)},
		{Verb: VerbHello, Src: -1, Epoch: 2, InPort: NoPort},
		{Verb: VerbState, Src: 0, Epoch: 1, Seq: 1, InPort: NoPort,
			Payload: AppendState(nil, []StateEntry{{Flow: 7, Version: 2}})},
		{Verb: VerbSnapshot, Src: -1, Epoch: 2, Seq: 2, InPort: NoPort,
			Payload: AppendSnapshot(nil, SnapshotFlow{Flow: 7, Src: 0, Dst: 4, Version: 2, SizeK: 500, Path: []uint16{0, 1, 2, 4}})},
		{Verb: VerbProbe, Src: -1, Epoch: 2, Seq: 3, InPort: NoPort, Payload: AppendProbe(nil, 7, 2)},
	}
	for _, f := range frames {
		raw := Marshal(f)
		got := &Frame{}
		if err := got.DecodeFromBytes(raw); err != nil {
			t.Fatalf("%v: decode: %v", f.Verb, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%v: decode(encode(f)) = %+v, want %+v", f.Verb, got, f)
		}
		if !bytes.Equal(Marshal(got), raw) {
			t.Errorf("%v: re-encode is not byte-identical", f.Verb)
		}
		m, err := Decode(raw)
		if err != nil {
			t.Fatalf("%v: generic Decode: %v", f.Verb, err)
		}
		if m.Type() != TypeFrame {
			t.Errorf("%v: Decode type = %v, want %v", f.Verb, m.Type(), TypeFrame)
		}
	}
	// A VerbMsg frame's payload decodes back to the inner message.
	f := &Frame{}
	if err := f.DecodeFromBytes(Marshal(frames[0])); err != nil {
		t.Fatal(err)
	}
	if m, err := Decode(f.Payload); err != nil {
		t.Fatalf("inner payload does not decode: %v", err)
	} else if m.Type() != TypeUIM {
		t.Errorf("inner payload type = %v, want %v", m.Type(), TypeUIM)
	}
}

// TestFrameValidation exercises the decoder's reject paths: short
// buffers, bad verbs, length mismatches and oversized payloads.
func TestFrameValidation(t *testing.T) {
	good := Marshal(&Frame{Verb: VerbHello, Src: 1, Epoch: 1, InPort: NoPort})

	short := good[:FrameHeaderSize-1]
	if err := (&Frame{}).DecodeFromBytes(short); err == nil {
		t.Error("short frame accepted")
	}

	badVerb := bytes.Clone(good)
	badVerb[1] = 0
	if err := (&Frame{}).DecodeFromBytes(badVerb); err == nil {
		t.Error("verb 0 accepted")
	}
	badVerb[1] = byte(VerbProbe) + 1
	if err := (&Frame{}).DecodeFromBytes(badVerb); err == nil {
		t.Error("out-of-range verb accepted")
	}

	trailing := append(bytes.Clone(good), 0xaa)
	if err := (&Frame{}).DecodeFromBytes(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}

	// Claimed payload length beyond MaxFramePayload is rejected even if
	// the buffer is consistent with the claim.
	big := &Frame{Verb: VerbMsg, Src: 1, Epoch: 1, Seq: 1, InPort: NoPort,
		Payload: make([]byte, MaxFramePayload)}
	raw := Marshal(big)
	raw = append(raw, 0xbb) // grow buffer
	bePut16(raw[20:22], MaxFramePayload+1)
	if err := (&Frame{}).DecodeFromBytes(raw); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized payload length: err = %v, want limit error", err)
	}
}

func bePut16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }

// TestFramePayloadHelpers covers the verb-body helpers' error paths.
func TestFramePayloadHelpers(t *testing.T) {
	if _, err := ParseAck([]byte{1, 2, 3}); err == nil {
		t.Error("short ACK accepted")
	}
	if _, err := ParseState([]byte{0}); err == nil {
		t.Error("short STATE accepted")
	}
	if _, err := ParseState(AppendState(nil, []StateEntry{{Flow: 1, Version: 1}})[:5]); err == nil {
		t.Error("truncated STATE accepted")
	}
	if _, err := ParseSnapshot([]byte{1, 2}); err == nil {
		t.Error("short SNAPSHOT accepted")
	}
	snap := AppendSnapshot(nil, SnapshotFlow{Flow: 1, Version: 1, Path: []uint16{0, 1}})
	if _, err := ParseSnapshot(snap[:len(snap)-1]); err == nil {
		t.Error("truncated SNAPSHOT accepted")
	}
	if _, _, err := ParseProbe([]byte{1}); err == nil {
		t.Error("short PROBE accepted")
	}
	// Happy paths round-trip.
	if cum, err := ParseAck(AppendAck(nil, 77)); err != nil || cum != 77 {
		t.Errorf("ACK round-trip = (%d, %v), want (77, nil)", cum, err)
	}
	entries := []StateEntry{{Flow: 9, Version: 4}, {Flow: 10, Version: 5}}
	if got, err := ParseState(AppendState(nil, entries)); err != nil || !reflect.DeepEqual(got, entries) {
		t.Errorf("STATE round-trip = (%v, %v), want (%v, nil)", got, err, entries)
	}
	s := SnapshotFlow{Flow: 9, Src: 0, Dst: 4, Version: 4, SizeK: 100, Path: []uint16{0, 3, 4}}
	if got, err := ParseSnapshot(AppendSnapshot(nil, s)); err != nil || !reflect.DeepEqual(got, s) {
		t.Errorf("SNAPSHOT round-trip = (%v, %v), want (%v, nil)", got, err, s)
	}
	if fl, v, err := ParseProbe(AppendProbe(nil, 9, 4)); err != nil || fl != 9 || v != 4 {
		t.Errorf("PROBE round-trip = (%v, %d, %v), want (9, 4, nil)", fl, v, err)
	}
}
