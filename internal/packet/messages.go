package packet

import (
	"encoding/binary"
	"fmt"
)

// Role flags carried in a UIM, telling a switch which role it plays on the
// new path.
type Role uint8

// Role bits.
const (
	// RoleEgress marks the flow's egress switch (new distance 0).
	RoleEgress Role = 1 << iota
	// RoleIngress marks the flow's ingress switch.
	RoleIngress
	// RoleGateway marks a gateway node: a node on both the old and the
	// new path (dual-layer segmentation, §3.2).
	RoleGateway
)

// Has reports whether all bits of r2 are set in r.
func (r Role) Has(r2 Role) bool { return r&r2 == r2 }

// Layer discriminates dual-layer UNMs.
type Layer uint8

// UNM layers.
const (
	// LayerIntra is the second-layer UNM propagating inside a segment
	// (and the only layer used by SL updates).
	LayerIntra Layer = 0
	// LayerInter is the first-layer UNM coordinating gateways.
	LayerInter Layer = 1
)

// Data is a data-plane packet of a flow. Probe packets additionally
// carry the configuration version whose deployment they confirm. Tag is
// the two-phase-commit version stamp of §11 ("2-Phase Commit Updates"):
// when two-phase forwarding is enabled, the ingress stamps each packet
// with its committed version and downstream switches that have already
// moved on forward tagged packets over their retained previous rule, so
// every packet traverses exactly one configuration end to end.
type Data struct {
	Flow         FlowID
	Seq          uint32
	TTL          uint8
	Probe        bool
	ProbeVersion uint32
	Tag          uint32
}

const dataSize = 19

// Type implements Message.
func (d *Data) Type() MsgType { return TypeData }

// SerializeTo implements Message.
func (d *Data) SerializeTo(b []byte) []byte {
	var buf [dataSize]byte
	buf[0] = byte(TypeData)
	binary.BigEndian.PutUint32(buf[1:5], uint32(d.Flow))
	binary.BigEndian.PutUint32(buf[5:9], d.Seq)
	buf[9] = d.TTL
	if d.Probe {
		buf[10] = 1
	}
	binary.BigEndian.PutUint32(buf[11:15], d.ProbeVersion)
	binary.BigEndian.PutUint32(buf[15:19], d.Tag)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (d *Data) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeData, dataSize); err != nil {
		return err
	}
	d.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	d.Seq = binary.BigEndian.Uint32(b[5:9])
	d.TTL = b[9]
	d.Probe = b[10] != 0
	d.ProbeVersion = binary.BigEndian.Uint32(b[11:15])
	d.Tag = binary.BigEndian.Uint32(b[15:19])
	return nil
}

// FRM is the Flow Report Message an ingress switch clones to the
// controller when a new flow emerges (§B).
type FRM struct {
	Flow FlowID
	Src  uint16
	Dst  uint16
}

const frmSize = 9

// Type implements Message.
func (m *FRM) Type() MsgType { return TypeFRM }

// SerializeTo implements Message.
func (m *FRM) SerializeTo(b []byte) []byte {
	var buf [frmSize]byte
	buf[0] = byte(TypeFRM)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint16(buf[5:7], m.Src)
	binary.BigEndian.PutUint16(buf[7:9], m.Dst)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *FRM) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeFRM, frmSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Src = binary.BigEndian.Uint16(b[5:7])
	m.Dst = binary.BigEndian.Uint16(b[7:9])
	return nil
}

// UIM is the Update Indication Message the controller sends to each switch
// on a flow's new path. It carries the verification labels of §3: version
// number, new distance, (for gateways) the old-path distance, plus the new
// egress port, the flow's size bound and the update type (§8).
type UIM struct {
	Flow        FlowID
	Version     uint32
	NewDistance uint16
	OldDistance uint16 // only meaningful when Role has RoleGateway
	EgressPort  uint16
	// ChildPort is the clone-session port toward the node's child
	// (upstream neighbor) on the new path; §8 realizes this as a
	// one-to-one port-based forwarding table for UNM clones.
	// NoPort when the node is the flow ingress.
	ChildPort  uint16
	FlowSizeK  uint32 // flow size bound in kbps
	UpdateType UpdateType
	Role       Role
}

// NoPort is the wire encoding of "no port" (egress delivery / no child).
const NoPort uint16 = 0xffff

const uimSize = 23

// Type implements Message.
func (m *UIM) Type() MsgType { return TypeUIM }

// SerializeTo implements Message.
func (m *UIM) SerializeTo(b []byte) []byte {
	var buf [uimSize]byte
	buf[0] = byte(TypeUIM)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint32(buf[5:9], m.Version)
	binary.BigEndian.PutUint16(buf[9:11], m.NewDistance)
	binary.BigEndian.PutUint16(buf[11:13], m.OldDistance)
	binary.BigEndian.PutUint16(buf[13:15], m.EgressPort)
	binary.BigEndian.PutUint16(buf[15:17], m.ChildPort)
	binary.BigEndian.PutUint32(buf[17:21], m.FlowSizeK)
	buf[21] = byte(m.UpdateType)
	buf[22] = byte(m.Role)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *UIM) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeUIM, uimSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Version = binary.BigEndian.Uint32(b[5:9])
	m.NewDistance = binary.BigEndian.Uint16(b[9:11])
	m.OldDistance = binary.BigEndian.Uint16(b[11:13])
	m.EgressPort = binary.BigEndian.Uint16(b[13:15])
	m.ChildPort = binary.BigEndian.Uint16(b[15:17])
	m.FlowSizeK = binary.BigEndian.Uint32(b[17:21])
	m.UpdateType = UpdateType(b[21])
	m.Role = Role(b[22])
	return nil
}

// UNM is the Update Notification Message switches exchange in the data
// plane. It carries the sender's previous configuration (Vo, Do) and
// current configuration (Vn, Dn) labels plus the dual-layer hop counter
// used for symmetry breaking (Alg. 2).
type UNM struct {
	Flow       FlowID
	Layer      Layer
	UpdateType UpdateType
	Vn         uint32
	Dn         uint16
	Vo         uint32
	Do         uint16
	Counter    uint16
}

const unmSize = 21

// Type implements Message.
func (m *UNM) Type() MsgType { return TypeUNM }

// SerializeTo implements Message.
func (m *UNM) SerializeTo(b []byte) []byte {
	var buf [unmSize]byte
	buf[0] = byte(TypeUNM)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	buf[5] = byte(m.Layer)
	buf[6] = byte(m.UpdateType)
	binary.BigEndian.PutUint32(buf[7:11], m.Vn)
	binary.BigEndian.PutUint16(buf[11:13], m.Dn)
	binary.BigEndian.PutUint32(buf[13:17], m.Vo)
	binary.BigEndian.PutUint16(buf[17:19], m.Do)
	binary.BigEndian.PutUint16(buf[19:21], m.Counter)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *UNM) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeUNM, unmSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Layer = Layer(b[5])
	m.UpdateType = UpdateType(b[6])
	m.Vn = binary.BigEndian.Uint32(b[7:11])
	m.Dn = binary.BigEndian.Uint16(b[11:13])
	m.Vo = binary.BigEndian.Uint32(b[13:17])
	m.Do = binary.BigEndian.Uint16(b[17:19])
	m.Counter = binary.BigEndian.Uint16(b[19:21])
	return nil
}

// UFMStatus reports what a UFM signals to the controller.
type UFMStatus uint8

// UFM status codes.
const (
	// StatusUpdated: the reporting switch applied the new configuration.
	StatusUpdated UFMStatus = 1
	// StatusAlarm: local verification rejected an inconsistent update.
	StatusAlarm UFMStatus = 2
	// StatusProbeOK: the egress received a probe confirming the new
	// ingress-to-egress path is fully established.
	StatusProbeOK UFMStatus = 3
	// StatusStalled: a switch holds an indication whose update has not
	// arrived within the watchdog window — likely a lost UNM (§11
	// "Failures in the Update Process").
	StatusStalled UFMStatus = 4
)

// String implements fmt.Stringer.
func (s UFMStatus) String() string {
	switch s {
	case StatusUpdated:
		return "updated"
	case StatusAlarm:
		return "alarm"
	case StatusProbeOK:
		return "probe-ok"
	case StatusStalled:
		return "stalled"
	default:
		return fmt.Sprintf("UFMStatus(%d)", uint8(s))
	}
}

// AlarmReason explains a StatusAlarm UFM.
type AlarmReason uint8

// Alarm reasons (the inconsistency classes of §7.1).
const (
	ReasonNone AlarmReason = iota
	// ReasonDistance: the parent's distance does not verify (potential
	// loop; Fig. 6b).
	ReasonDistance
	// ReasonOutdated: the notification carries an outdated version
	// (Fig. 6c).
	ReasonOutdated
	// ReasonFlowSize: the flow's size bound changed unexpectedly (§A.2).
	ReasonFlowSize
)

// String implements fmt.Stringer.
func (r AlarmReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonDistance:
		return "distance-mismatch"
	case ReasonOutdated:
		return "outdated-version"
	case ReasonFlowSize:
		return "flow-size-mismatch"
	default:
		return fmt.Sprintf("AlarmReason(%d)", uint8(r))
	}
}

// UFM is the Update Feedback Message a switch sends to the controller to
// report update success or an alarm.
type UFM struct {
	Flow    FlowID
	Version uint32
	Status  UFMStatus
	Reason  AlarmReason
	Node    uint16
}

const ufmSize = 13

// Type implements Message.
func (m *UFM) Type() MsgType { return TypeUFM }

// SerializeTo implements Message.
func (m *UFM) SerializeTo(b []byte) []byte {
	var buf [ufmSize]byte
	buf[0] = byte(TypeUFM)
	binary.BigEndian.PutUint32(buf[1:5], uint32(m.Flow))
	binary.BigEndian.PutUint32(buf[5:9], m.Version)
	buf[9] = byte(m.Status)
	buf[10] = byte(m.Reason)
	binary.BigEndian.PutUint16(buf[11:13], m.Node)
	return append(b, buf[:]...)
}

// DecodeFromBytes implements Message.
func (m *UFM) DecodeFromBytes(b []byte) error {
	if err := checkFrame(b, TypeUFM, ufmSize); err != nil {
		return err
	}
	m.Flow = FlowID(binary.BigEndian.Uint32(b[1:5]))
	m.Version = binary.BigEndian.Uint32(b[5:9])
	m.Status = UFMStatus(b[9])
	m.Reason = AlarmReason(b[10])
	m.Node = binary.BigEndian.Uint16(b[11:13])
	return nil
}
