package packet

import (
	"reflect"
	"testing"
)

func batchUIM(i int) *UIM {
	return &UIM{
		Flow: FlowID(100 + i), Version: uint32(2 + i), NewDistance: uint16(i),
		OldDistance: uint16(i + 1), EgressPort: 3, ChildPort: NoPort,
		FlowSizeK: uint32(10 * i), UpdateType: UpdateSingle, Role: RoleIngress,
	}
}

func TestRoundTripUIMBatch(t *testing.T) {
	in := &UIMBatch{Items: []*UIM{batchUIM(0), batchUIM(1), batchUIM(2)}}
	out := &UIMBatch{}
	if err := out.DecodeFromBytes(Marshal(in)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestDecodeDispatchesUIMBatch(t *testing.T) {
	in := &UIMBatch{Items: []*UIM{batchUIM(0), batchUIM(1)}}
	m, err := Decode(Marshal(in))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := m.(*UIMBatch)
	if !ok {
		t.Fatalf("Decode returned %T, want *UIMBatch", m)
	}
	if !reflect.DeepEqual(in, b) {
		t.Fatalf("decoded batch differs: %+v != %+v", in, b)
	}
}

func TestUIMBatchDecodeRejectsBadFrames(t *testing.T) {
	good := Marshal(&UIMBatch{Items: []*UIM{batchUIM(0), batchUIM(1)}})
	cases := map[string][]byte{
		"empty":           {},
		"header only":     good[:batchHeader],
		"truncated item":  good[:len(good)-1],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"count mismatch":  append([]byte{byte(TypeUIMBatch), 0, 9}, good[batchHeader:]...),
		"wrong type byte": append([]byte{byte(TypeUIM)}, good[1:]...),
	}
	for name, b := range cases {
		if err := (&UIMBatch{}).DecodeFromBytes(b); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}
}

func TestUIMBatchItemsAreIndependent(t *testing.T) {
	// Decoded items must be fresh allocations — switches retain the
	// *UIM pointers in their flow state, so pooling or aliasing them
	// across frames would corrupt live state.
	raw := Marshal(&UIMBatch{Items: []*UIM{batchUIM(0), batchUIM(0)}})
	out := &UIMBatch{}
	if err := out.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if out.Items[0] == out.Items[1] {
		t.Fatal("decoded batch items alias the same UIM")
	}
	out.Items[0].Version = 99
	if out.Items[1].Version == 99 {
		t.Fatal("mutating one decoded item changed another")
	}
}

func TestUIMBatchSerializePanicsPastLimit(t *testing.T) {
	items := make([]*UIM, maxBatchItems+1)
	u := batchUIM(0)
	for i := range items {
		items[i] = u
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SerializeTo accepted more items than the count field can express")
		}
	}()
	(&UIMBatch{Items: items}).SerializeTo(nil)
}
