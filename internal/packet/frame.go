package packet

import (
	"encoding/binary"
	"fmt"
	"math"
)

// TypeFrame is the transport envelope carried by the real-process
// deployment mode (cmd/controllerd, cmd/switchd). A Frame wraps one of
// the simulator's wire messages — or a small transport-control payload
// — with the sequencing metadata a lossy datagram transport needs:
// per-peer sequence number, sender epoch (bumped across restarts) and
// the sending node's identity.
const TypeFrame MsgType = 20

// FrameVerb discriminates what a Frame's payload carries.
type FrameVerb uint8

// Frame verbs. Zero is reserved as invalid.
const (
	// VerbMsg wraps one encoded packet.Message (UIM/UNM/UFM/CLN/...)
	// for sequenced, retransmitted delivery.
	VerbMsg FrameVerb = 1 + iota
	// VerbAck carries a cumulative acknowledgement (uint64 sequence)
	// for the reverse direction. Acks are themselves unsequenced.
	VerbAck
	// VerbHello announces a (re)started peer and its new epoch. A
	// switch answers a controller hello with VerbState.
	VerbHello
	// VerbState reports a switch's committed per-flow versions to the
	// controller (restart re-sync).
	VerbState
	// VerbSnapshot pushes one flow's full last-known-good plan entry
	// (path + version) from controller to switch.
	VerbSnapshot
	// VerbProbe asks the ingress switch to inject the §9.1
	// confirmation probe for a flow/version.
	VerbProbe
)

// String implements fmt.Stringer.
func (v FrameVerb) String() string {
	switch v {
	case VerbMsg:
		return "MSG"
	case VerbAck:
		return "ACK"
	case VerbHello:
		return "HELLO"
	case VerbState:
		return "STATE"
	case VerbSnapshot:
		return "SNAPSHOT"
	case VerbProbe:
		return "PROBE"
	default:
		return fmt.Sprintf("FrameVerb(%d)", uint8(v))
	}
}

// FrameHeaderSize is the fixed envelope prefix:
// [0] type, [1] verb, [2:10] seq, [10:14] epoch, [14:18] src,
// [18:20] inPort, [20:22] payload length.
const FrameHeaderSize = 22

// MaxFramePayload bounds a frame's payload so one frame always fits a
// single UDP datagram comfortably under the conventional 1500-byte MTU.
const MaxFramePayload = 1024

// Frame is the transport envelope (see TypeFrame). A frame that did
// not arrive on a data-plane port (controller traffic) carries
// InPort = NoPort.
type Frame struct {
	Verb   FrameVerb
	Src    int32  // sending node ID; -1 is the controller
	Epoch  uint32 // sender incarnation, bumped on restart
	Seq    uint64 // per-peer sequence number; 0 for unsequenced verbs
	InPort uint16 // receiving data-plane port for VerbMsg, else NoPort
	// Payload is verb-specific: an encoded Message for VerbMsg, a
	// helper-encoded body for the control verbs, empty for VerbHello.
	Payload []byte
}

// Type implements Message.
func (m *Frame) Type() MsgType { return TypeFrame }

// SerializeTo implements Message.
func (m *Frame) SerializeTo(b []byte) []byte {
	if len(m.Payload) > MaxFramePayload {
		panic(fmt.Sprintf("packet: Frame payload %d bytes exceeds the %d-byte limit",
			len(m.Payload), MaxFramePayload))
	}
	var hdr [FrameHeaderSize]byte
	hdr[0] = byte(TypeFrame)
	hdr[1] = byte(m.Verb)
	binary.BigEndian.PutUint64(hdr[2:10], m.Seq)
	binary.BigEndian.PutUint32(hdr[10:14], m.Epoch)
	binary.BigEndian.PutUint32(hdr[14:18], uint32(m.Src))
	binary.BigEndian.PutUint16(hdr[18:20], m.InPort)
	binary.BigEndian.PutUint16(hdr[20:22], uint16(len(m.Payload)))
	b = append(b, hdr[:]...)
	return append(b, m.Payload...)
}

// DecodeFromBytes implements Message. The payload is copied out of b so
// a decoded Frame never aliases a pooled receive buffer.
func (m *Frame) DecodeFromBytes(b []byte) error {
	if len(b) < FrameHeaderSize {
		return fmt.Errorf("packet: Frame is %d bytes, want >= %d", len(b), FrameHeaderSize)
	}
	if MsgType(b[0]) != TypeFrame {
		return fmt.Errorf("packet: type byte %d, want %v", b[0], TypeFrame)
	}
	verb := FrameVerb(b[1])
	if verb < VerbMsg || verb > VerbProbe {
		return fmt.Errorf("packet: unknown frame verb %d", b[1])
	}
	n := int(binary.BigEndian.Uint16(b[20:22]))
	if n > MaxFramePayload {
		return fmt.Errorf("packet: Frame payload %d bytes exceeds the %d-byte limit", n, MaxFramePayload)
	}
	if len(b) != FrameHeaderSize+n {
		return fmt.Errorf("packet: Frame is %d bytes, want %d for a %d-byte payload",
			len(b), FrameHeaderSize+n, n)
	}
	m.Verb = verb
	m.Seq = binary.BigEndian.Uint64(b[2:10])
	m.Epoch = binary.BigEndian.Uint32(b[10:14])
	m.Src = int32(binary.BigEndian.Uint32(b[14:18]))
	m.InPort = binary.BigEndian.Uint16(b[18:20])
	m.Payload = append(m.Payload[:0], b[FrameHeaderSize:]...)
	if n == 0 {
		m.Payload = nil
	}
	return nil
}

// --- Verb payload helpers -------------------------------------------------
//
// The control verbs carry tiny fixed-layout bodies; these helpers keep
// the encode/decode pairs next to each other and strictly validated.

// AppendAck encodes a VerbAck payload: the highest contiguously
// received sequence number.
func AppendAck(b []byte, cum uint64) []byte {
	var w [8]byte
	binary.BigEndian.PutUint64(w[:], cum)
	return append(b, w[:]...)
}

// ParseAck decodes a VerbAck payload.
func ParseAck(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("packet: ACK payload is %d bytes, want 8", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// StateEntry is one committed (flow, version) pair in a VerbState body.
type StateEntry struct {
	Flow    FlowID
	Version uint32
}

const stateEntrySize = 8

// AppendState encodes a VerbState payload: uint16 count + entries.
func AppendState(b []byte, entries []StateEntry) []byte {
	if len(entries) > math.MaxUint16 {
		panic(fmt.Sprintf("packet: %d state entries exceed the frame limit", len(entries)))
	}
	var w [2]byte
	binary.BigEndian.PutUint16(w[:], uint16(len(entries)))
	b = append(b, w[:]...)
	for _, e := range entries {
		var eb [stateEntrySize]byte
		binary.BigEndian.PutUint32(eb[0:4], uint32(e.Flow))
		binary.BigEndian.PutUint32(eb[4:8], e.Version)
		b = append(b, eb[:]...)
	}
	return b
}

// ParseState decodes a VerbState payload.
func ParseState(b []byte) ([]StateEntry, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("packet: STATE payload is %d bytes, want >= 2", len(b))
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) != 2+n*stateEntrySize {
		return nil, fmt.Errorf("packet: STATE payload is %d bytes, want %d for %d entries",
			len(b), 2+n*stateEntrySize, n)
	}
	entries := make([]StateEntry, n)
	for i := range entries {
		off := 2 + i*stateEntrySize
		entries[i].Flow = FlowID(binary.BigEndian.Uint32(b[off : off+4]))
		entries[i].Version = binary.BigEndian.Uint32(b[off+4 : off+8])
	}
	return entries, nil
}

// SnapshotFlow is a VerbSnapshot body: one flow's last-known-good plan
// entry, enough for a switch to rebuild its forwarding rule from
// scratch (restart bootstrap) or adopt a version it missed.
type SnapshotFlow struct {
	Flow    FlowID
	Src     uint16
	Dst     uint16
	Version uint32
	SizeK   uint32
	Path    []uint16 // node IDs, ingress first
}

const snapshotHeader = 18

// AppendSnapshot encodes a VerbSnapshot payload.
func AppendSnapshot(b []byte, s SnapshotFlow) []byte {
	if len(s.Path) > math.MaxUint16 {
		panic(fmt.Sprintf("packet: snapshot path of %d hops exceeds the frame limit", len(s.Path)))
	}
	var hdr [snapshotHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(s.Flow))
	binary.BigEndian.PutUint16(hdr[4:6], s.Src)
	binary.BigEndian.PutUint16(hdr[6:8], s.Dst)
	binary.BigEndian.PutUint32(hdr[8:12], s.Version)
	binary.BigEndian.PutUint32(hdr[12:16], s.SizeK)
	binary.BigEndian.PutUint16(hdr[16:18], uint16(len(s.Path)))
	b = append(b, hdr[:]...)
	for _, n := range s.Path {
		var w [2]byte
		binary.BigEndian.PutUint16(w[:], n)
		b = append(b, w[:]...)
	}
	return b
}

// ParseSnapshot decodes a VerbSnapshot payload.
func ParseSnapshot(b []byte) (SnapshotFlow, error) {
	var s SnapshotFlow
	if len(b) < snapshotHeader {
		return s, fmt.Errorf("packet: SNAPSHOT payload is %d bytes, want >= %d", len(b), snapshotHeader)
	}
	n := int(binary.BigEndian.Uint16(b[16:18]))
	if len(b) != snapshotHeader+2*n {
		return s, fmt.Errorf("packet: SNAPSHOT payload is %d bytes, want %d for %d hops",
			len(b), snapshotHeader+2*n, n)
	}
	s.Flow = FlowID(binary.BigEndian.Uint32(b[0:4]))
	s.Src = binary.BigEndian.Uint16(b[4:6])
	s.Dst = binary.BigEndian.Uint16(b[6:8])
	s.Version = binary.BigEndian.Uint32(b[8:12])
	s.SizeK = binary.BigEndian.Uint32(b[12:16])
	s.Path = make([]uint16, n)
	for i := range s.Path {
		s.Path[i] = binary.BigEndian.Uint16(b[snapshotHeader+2*i : snapshotHeader+2*i+2])
	}
	return s, nil
}

// AppendProbe encodes a VerbProbe payload: flow + version to confirm.
func AppendProbe(b []byte, flow FlowID, version uint32) []byte {
	var w [8]byte
	binary.BigEndian.PutUint32(w[0:4], uint32(flow))
	binary.BigEndian.PutUint32(w[4:8], version)
	return append(b, w[:]...)
}

// ParseProbe decodes a VerbProbe payload.
func ParseProbe(b []byte) (FlowID, uint32, error) {
	if len(b) != 8 {
		return 0, 0, fmt.Errorf("packet: PROBE payload is %d bytes, want 8", len(b))
	}
	return FlowID(binary.BigEndian.Uint32(b[0:4])), binary.BigEndian.Uint32(b[4:8]), nil
}
