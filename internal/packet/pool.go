package packet

import "fmt"

// Pool recycles the hot-path message structs (Data, UNM, EZN) and
// marshal buffers for one simulation engine.
//
// The simulation engine is single-threaded by contract, so the free
// lists need no locking (unlike sync.Pool, nothing is ever contended
// and nothing is dropped by GC cycles). Ownership protocol: whoever
// pops a struct with Get*/Decode owns it until it calls Put*/Recycle;
// handlers that need a message beyond the dispatch call (e.g. parked
// resubmission closures) must copy the struct first.
//
// Message types that protocols retain by reference — UIM (held in
// FlowState.UIM and controller plans for retriggering) and EZI (held in
// ez-Segway switch state) — are deliberately not pooled.
type Pool struct {
	data []*Data
	unm  []*UNM
	ezn  []*EZN
	bufs [][]byte
}

// GetData pops a zeroed Data from the pool (allocating if empty).
func (p *Pool) GetData() *Data {
	if n := len(p.data); n > 0 {
		d := p.data[n-1]
		p.data = p.data[:n-1]
		return d
	}
	return &Data{}
}

// PutData zeroes d and returns it to the pool.
func (p *Pool) PutData(d *Data) {
	*d = Data{}
	p.data = append(p.data, d)
}

// GetUNM pops a zeroed UNM from the pool (allocating if empty).
func (p *Pool) GetUNM() *UNM {
	if n := len(p.unm); n > 0 {
		m := p.unm[n-1]
		p.unm = p.unm[:n-1]
		return m
	}
	return &UNM{}
}

// PutUNM zeroes m and returns it to the pool.
func (p *Pool) PutUNM(m *UNM) {
	*m = UNM{}
	p.unm = append(p.unm, m)
}

// GetEZN pops a zeroed EZN from the pool (allocating if empty).
func (p *Pool) GetEZN() *EZN {
	if n := len(p.ezn); n > 0 {
		m := p.ezn[n-1]
		p.ezn = p.ezn[:n-1]
		return m
	}
	return &EZN{}
}

// PutEZN zeroes m and returns it to the pool.
func (p *Pool) PutEZN(m *EZN) {
	*m = EZN{}
	p.ezn = append(p.ezn, m)
}

// GetBuf pops a zero-length marshal buffer (nil if the pool is empty;
// SerializeTo grows it as needed and the grown capacity is what gets
// recycled).
func (p *Pool) GetBuf() []byte {
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs = p.bufs[:n-1]
		return b
	}
	return nil
}

// PutBuf returns a marshal buffer to the pool, keeping its capacity.
func (p *Pool) PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.bufs = append(p.bufs, b[:0])
}

// Decode parses any supported message from b, drawing the hot message
// types (Data, UNM, EZN) from the pool instead of allocating. The
// caller owns the result and should hand it back via Recycle once
// dispatch is complete.
func (p *Pool) Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("packet: empty buffer")
	}
	var m Message
	switch MsgType(b[0]) {
	case TypeData:
		m = p.GetData()
	case TypeUNM:
		m = p.GetUNM()
	case TypeEZN:
		m = p.GetEZN()
	default:
		return Decode(b)
	}
	if err := m.DecodeFromBytes(b); err != nil {
		p.Recycle(m)
		return nil, err
	}
	return m, nil
}

// Recycle returns a pooled message type to its free list; non-pooled
// types are a no-op.
func (p *Pool) Recycle(m Message) {
	switch m := m.(type) {
	case *Data:
		p.PutData(m)
	case *UNM:
		p.PutUNM(m)
	case *EZN:
		p.PutEZN(m)
	}
}
