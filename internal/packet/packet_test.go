package packet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripData(t *testing.T) {
	in := &Data{Flow: 0xdeadbeef, Seq: 42, TTL: 64, Probe: true, ProbeVersion: 7}
	b := Marshal(in)
	out := &Data{}
	if err := out.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestRoundTripFRM(t *testing.T) {
	in := &FRM{Flow: HashFlow(3, 9), Src: 3, Dst: 9}
	out := &FRM{}
	if err := out.DecodeFromBytes(Marshal(in)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestRoundTripUIM(t *testing.T) {
	in := &UIM{
		Flow: 9, Version: 3, NewDistance: 7, OldDistance: 2,
		EgressPort: 5, ChildPort: NoPort, FlowSizeK: 125000, UpdateType: UpdateDual,
		Role: RoleGateway | RoleIngress,
	}
	out := &UIM{}
	if err := out.DecodeFromBytes(Marshal(in)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestRoundTripUNM(t *testing.T) {
	in := &UNM{
		Flow: 1, Layer: LayerInter, UpdateType: UpdateDual,
		Vn: 5, Dn: 4, Vo: 4, Do: 1, Counter: 3,
	}
	out := &UNM{}
	if err := out.DecodeFromBytes(Marshal(in)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestRoundTripUFM(t *testing.T) {
	in := &UFM{Flow: 8, Version: 2, Status: StatusAlarm, Reason: ReasonDistance, Node: 4}
	out := &UFM{}
	if err := out.DecodeFromBytes(Marshal(in)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestDecodeDispatch(t *testing.T) {
	msgs := []Message{
		&Data{Flow: 1, TTL: 64},
		&FRM{Flow: 2},
		&UIM{Flow: 3, Version: 1},
		&UNM{Flow: 4, Vn: 1},
		&UFM{Flow: 5, Status: StatusUpdated},
	}
	for _, m := range msgs {
		got, err := Decode(Marshal(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Errorf("decoded type %v, want %v", got.Type(), m.Type())
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("decoded %+v, want %+v", got, m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, err := Decode([]byte{0xff, 0, 0}); err == nil {
		t.Error("unknown type accepted")
	}
	// Truncated UIM.
	b := Marshal(&UIM{Flow: 1})
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	// Wrong type byte for the target struct.
	u := &UNM{}
	if err := u.DecodeFromBytes(Marshal(&UFM{})); err == nil {
		t.Error("UNM decoded a UFM frame")
	}
}

func TestSerializeAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	b := (&FRM{Flow: 7}).SerializeTo(append([]byte{}, prefix...))
	if !bytes.Equal(b[:3], prefix) {
		t.Error("SerializeTo did not preserve the prefix")
	}
	out := &FRM{}
	if err := out.DecodeFromBytes(b[3:]); err != nil {
		t.Fatal(err)
	}
}

func TestHashFlowDeterministicAndSpread(t *testing.T) {
	if HashFlow(1, 2) != HashFlow(1, 2) {
		t.Error("HashFlow not deterministic")
	}
	if HashFlow(1, 2) == HashFlow(2, 1) {
		t.Error("HashFlow should distinguish direction")
	}
	seen := map[FlowID]bool{}
	for s := uint16(0); s < 50; s++ {
		for d := uint16(50); d < 100; d++ {
			seen[HashFlow(s, d)] = true
		}
	}
	if len(seen) != 50*50 {
		t.Errorf("collisions in small ID space: %d unique of 2500", len(seen))
	}
}

func TestQuickUNMRoundTrip(t *testing.T) {
	f := func(flow uint32, layer, ut uint8, vn uint32, dn uint16, vo uint32, do, c uint16) bool {
		in := &UNM{
			Flow: FlowID(flow), Layer: Layer(layer % 2), UpdateType: UpdateType(ut % 2),
			Vn: vn, Dn: dn, Vo: vo, Do: do, Counter: c,
		}
		out := &UNM{}
		if err := out.DecodeFromBytes(Marshal(in)); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUIMRoundTrip(t *testing.T) {
	f := func(flow, v uint32, nd, od, ep, cp uint16, fs uint32, ut, role uint8) bool {
		in := &UIM{
			Flow: FlowID(flow), Version: v, NewDistance: nd, OldDistance: od,
			EgressPort: ep, ChildPort: cp, FlowSizeK: fs, UpdateType: UpdateType(ut % 2), Role: Role(role % 8),
		}
		out := &UIM{}
		if err := out.DecodeFromBytes(Marshal(in)); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoleHas(t *testing.T) {
	r := RoleGateway | RoleEgress
	if !r.Has(RoleGateway) || !r.Has(RoleEgress) || r.Has(RoleIngress) {
		t.Errorf("Role.Has broken for %b", r)
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		TypeUIM.String():         "UIM",
		UpdateDual.String():      "DL",
		UpdateSingle.String():    "SL",
		StatusProbeOK.String():   "probe-ok",
		ReasonOutdated.String():  "outdated-version",
		MsgType(99).String():     "MsgType(99)",
		UFMStatus(99).String():   "UFMStatus(99)",
		AlarmReason(99).String(): "AlarmReason(99)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer: got %q want %q", got, want)
		}
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		// Decode must reject or parse — never panic — for arbitrary input.
		m, err := Decode(b)
		return (m == nil) == (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Every valid type byte with a wrong length is rejected cleanly.
	for _, typ := range []MsgType{TypeData, TypeFRM, TypeUIM, TypeUNM, TypeUFM, TypeEZI, TypeEZN, TypeCLN} {
		for n := 0; n < 32; n++ {
			buf := make([]byte, n+1)
			buf[0] = byte(typ)
			m, err := Decode(buf)
			if err == nil {
				// Accept only if this is the exact frame size.
				if len(Marshal(m)) != len(buf) {
					t.Fatalf("type %v accepted a %d-byte frame", typ, len(buf))
				}
			}
		}
	}
}
