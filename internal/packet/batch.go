package packet

import (
	"encoding/binary"
	"fmt"
)

// TypeUIMBatch identifies a batched-indication frame.
const TypeUIMBatch MsgType = 19

// UIMBatch coalesces several Update Indication Messages addressed to
// the same switch into one control-channel frame. Reroute waves under
// streaming churn trigger hundreds of updates in the same virtual
// instant; batching amortizes the per-message marshal and scheduling
// cost without changing delivery timing (the frame leaves and arrives
// exactly when the individual UIMs would have, in the same relative
// order). The receiving switch unpacks and dispatches each item as if
// it had arrived alone.
type UIMBatch struct {
	Items []*UIM
}

// batchHeader is the frame prefix: type byte + uint16 item count.
const batchHeader = 3

// maxBatchItems bounds one frame's item count to what the uint16 count
// field can express.
const maxBatchItems = 0xffff

// Type implements Message.
func (m *UIMBatch) Type() MsgType { return TypeUIMBatch }

// SerializeTo implements Message.
func (m *UIMBatch) SerializeTo(b []byte) []byte {
	if len(m.Items) > maxBatchItems {
		panic(fmt.Sprintf("packet: UIMBatch with %d items exceeds the frame limit", len(m.Items)))
	}
	var hdr [batchHeader]byte
	hdr[0] = byte(TypeUIMBatch)
	binary.BigEndian.PutUint16(hdr[1:3], uint16(len(m.Items)))
	b = append(b, hdr[:]...)
	for _, it := range m.Items {
		b = it.SerializeTo(b)
	}
	return b
}

// DecodeFromBytes implements Message. Items are decoded into fresh UIM
// structs (never pooled): switches retain the staged indication pointer
// in FlowState.UIM, so batch items must outlive the frame.
func (m *UIMBatch) DecodeFromBytes(b []byte) error {
	if len(b) < batchHeader {
		return fmt.Errorf("packet: UIMBatch frame is %d bytes, want >= %d", len(b), batchHeader)
	}
	if MsgType(b[0]) != TypeUIMBatch {
		return fmt.Errorf("packet: type byte %d, want %v", b[0], TypeUIMBatch)
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) != batchHeader+n*uimSize {
		return fmt.Errorf("packet: UIMBatch frame is %d bytes, want %d for %d items",
			len(b), batchHeader+n*uimSize, n)
	}
	m.Items = make([]*UIM, n)
	for i := 0; i < n; i++ {
		it := &UIM{}
		off := batchHeader + i*uimSize
		if err := it.DecodeFromBytes(b[off : off+uimSize]); err != nil {
			return err
		}
		m.Items[i] = it
	}
	return nil
}
