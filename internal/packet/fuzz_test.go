package packet

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds returns one valid encoding of every wire format, so the
// fuzzer starts from the real message layouts instead of pure noise.
func fuzzSeeds() [][]byte {
	msgs := []Message{
		&Data{Flow: 7, Seq: 42, TTL: 8, Probe: true, ProbeVersion: 3, Tag: 2},
		&FRM{Flow: 99, Src: 1, Dst: 6},
		&UIM{Flow: 7, Version: 2, NewDistance: 3, OldDistance: 5,
			EgressPort: 1, ChildPort: NoPort, FlowSizeK: 1000,
			UpdateType: UpdateDual, Role: RoleGateway | RoleIngress},
		&UNM{Flow: 7, Layer: LayerInter, UpdateType: UpdateDual,
			Vn: 2, Dn: 3, Vo: 1, Do: 4, Counter: 2},
		&UFM{Flow: 7, Version: 2, Status: StatusStalled, Reason: ReasonDistance, Node: 4},
		&EZI{Flow: 7, Version: 2, EgressPort: 1, ChildPort: 2, FlowSizeK: 500,
			Flags: EZIngress | EZInitNow, Priority: 1, DepFlow: 8},
		&EZN{Flow: 7, Version: 2},
		&CLN{Flow: 7, Version: 2},
		// Transport envelopes (deployment mode): one frame per verb,
		// including a sequenced VerbMsg wrapping an inner wire message.
		&Frame{Verb: VerbMsg, Src: 2, Epoch: 1, Seq: 9, InPort: 1,
			Payload: Marshal(&UNM{Flow: 7, Layer: LayerIntra, Vn: 2, Dn: 3, Vo: 1, Do: 4})},
		&Frame{Verb: VerbAck, Src: -1, Epoch: 1, InPort: NoPort, Payload: AppendAck(nil, 9)},
		&Frame{Verb: VerbHello, Src: -1, Epoch: 2, InPort: NoPort},
		&Frame{Verb: VerbState, Src: 3, Epoch: 1, Seq: 1, InPort: NoPort,
			Payload: AppendState(nil, []StateEntry{{Flow: 7, Version: 2}, {Flow: 99, Version: 1}})},
		&Frame{Verb: VerbSnapshot, Src: -1, Epoch: 2, Seq: 4, InPort: NoPort,
			Payload: AppendSnapshot(nil, SnapshotFlow{Flow: 7, Src: 0, Dst: 4, Version: 2, SizeK: 1000, Path: []uint16{0, 1, 2, 4}})},
		&Frame{Verb: VerbProbe, Src: -1, Epoch: 2, Seq: 5, InPort: NoPort,
			Payload: AppendProbe(nil, 7, 2)},
	}
	seeds := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		seeds = append(seeds, Marshal(m))
	}
	return seeds
}

// FuzzDecode drives the wire decoder with arbitrary frames — exactly
// what the fault injector's corrupt path feeds every receiver — and
// asserts the decoder's contract: it never panics, and any frame it
// accepts re-encodes to a frame that decodes to the same message (the
// decoded form is canonical).
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
		// Truncations and a flipped type byte mirror corruptDetectably.
		f.Add(seed[:len(seed)/2])
		mangled := bytes.Clone(seed)
		mangled[0] |= 0x80
		f.Add(mangled)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		out := Marshal(m)
		if len(out) != len(b) || out[0] != b[0] {
			t.Fatalf("re-encode changed frame shape: in %d bytes type %d, out %d bytes type %d",
				len(b), b[0], len(out), out[0])
		}
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode(encode(m)) = %+v, want %+v", m2, m)
		}
	})
}

// TestFuzzSeedsDecode pins the seed corpus itself: every encoder output
// must decode, so the fuzzer's starting points are all on the happy
// path.
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		if _, err := Decode(seed); err != nil {
			t.Errorf("seed %d does not decode: %v", i, err)
		}
	}
}
