package p4update_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"p4update"
	"p4update/internal/controlplane"
	"p4update/internal/experiments"
	"p4update/internal/plancache"
	"p4update/internal/topo"
	"p4update/internal/traffic"
	"p4update/internal/wiring"
)

// benchHost is the host-context block every generated BENCH_*.json
// report embeds. It is stamped automatically at write time — reports
// never carry stale hand-written host metadata.
type benchHost struct {
	NumCPU     int    `json:"num_cpu"`
	Gomaxprocs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// currentBenchHost samples the host context of this bench run.
func currentBenchHost() benchHost {
	return benchHost{
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// writeBenchJSON writes payload as indented JSON to path.
func writeBenchJSON(path string, payload any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSyntheticOnce runs one forced-strategy update on the synthetic
// topology with straggler install delays and returns the completion time.
func runSyntheticOnce(strat string, oldP, newP []topo.NodeID, seed int64) (time.Duration, error) {
	s := p4update.StrategySL
	if strat == "DL" {
		s = p4update.StrategyDL
	}
	rngSeed := seed
	net := p4update.NewNetwork(topo.Synthetic(),
		p4update.WithSeed(rngSeed),
		p4update.WithStrategy(s),
	)
	// Straggler model: exponential install delays, seeded per run.
	eng := net.Fabric().Eng
	net.Fabric().SetInstallDelay(func() time.Duration {
		return time.Duration(eng.Rand().ExpFloat64() * float64(100*time.Millisecond))
	})
	f, err := net.AddFlow(oldP[0], oldP[len(oldP)-1], oldP, 1.0)
	if err != nil {
		return 0, err
	}
	u, err := net.UpdateFlow(f, newP)
	if err != nil {
		return 0, err
	}
	net.Run()
	if !u.Done() {
		return 0, fmt.Errorf("%s update did not complete", strat)
	}
	return u.Completed - u.Sent, nil
}

// runFig7TrialOnce executes exactly the trial body Fig7SingleFlow shards
// across the pool: a synthetic-topology bed with the straggler install
// model, one engineered single-flow update, run to quiescence.
func runFig7TrialOnce(kind experiments.SystemKind, seed int64) (time.Duration, error) {
	oldP, newP := topo.SyntheticPaths()
	spec := traffic.FlowSpec{Src: oldP[0], Dst: oldP[len(oldP)-1], Old: oldP, New: newP, SizeK: 1000}
	cfg := experiments.DefaultBedConfig()
	cfg.NodeDelayMean = 100 * time.Millisecond
	b := experiments.NewBed(kind, topo.Synthetic(), seed, cfg)
	if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
		return 0, err
	}
	u, err := b.Trigger(spec.ID(), spec.New)
	if err != nil {
		return 0, err
	}
	b.Eng.Run()
	if u == nil || !u.Done() {
		return 0, fmt.Errorf("%v update did not complete", kind)
	}
	return u.Completed - u.Sent, nil
}

// planForBench exposes plan preparation to the benchmark without leaking
// internal imports into the benchmark file proper.
func planForBench(g *topo.Topology, oldP, newP []topo.NodeID, version uint32) (*controlplane.Plan, error) {
	return controlplane.PreparePlan(g, 1, oldP, newP, version, 1000, nil)
}

// setupTrialFresh pays the full pre-cache per-trial construction bill
// of one fig7b-style multi-flow trial: a fresh fat-tree build (private,
// cold path oracle), the run's workload regenerated from scratch
// (shortest + 2nd-shortest queries per pair — pre-cache every system's
// trial redid this for the same run), fresh wiring, and a from-scratch
// update plan per flow.
func setupTrialFresh(seed int64) error {
	g := topo.FatTree(4)
	tcfg := traffic.DefaultConfig()
	tcfg.Candidates = topo.EdgeSwitches(g)
	flows, err := traffic.MultiFlowWorkload(g, rand.New(rand.NewSource(seed)), tcfg)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultBedConfig()
	cfg.Congestion = true
	cfg.FatTreeControl = true
	_ = wiring.New(g, cfg.WiringConfig(experiments.KindP4Update, 1))
	for _, f := range flows {
		if _, err := controlplane.PreparePlan(g, f.ID(), f.Old, f.New, 2, f.SizeK, nil); err != nil {
			return err
		}
	}
	return nil
}

// sharedSetup is the figure-scoped state every trial of a grid now
// shares: one frozen topology snapshot, one warm plan cache, and the
// run's memoized workload.
type sharedSetup struct {
	g     *topo.Topology
	plans *plancache.Cache
	flows []traffic.FlowSpec
}

func newSharedSetup(seed int64) (*sharedSetup, error) {
	g := topo.FatTree(4)
	g.Freeze()
	tcfg := traffic.DefaultConfig()
	tcfg.Candidates = topo.EdgeSwitches(g)
	flows, err := traffic.MultiFlowWorkload(g, rand.New(rand.NewSource(seed)), tcfg)
	if err != nil {
		return nil, err
	}
	plans := plancache.New(g)
	// Warm the cache the way a grid's first trial does.
	for _, f := range flows {
		if _, err := controlplane.PreparePlanCached(plans, g, f.ID(), f.Old, f.New, 2, f.SizeK, nil); err != nil {
			return nil, err
		}
	}
	return &sharedSetup{g: g, plans: plans, flows: flows}, nil
}

// setupTrial is the post-cache per-trial construction bill for the same
// trial: wire a bed over the shared frozen snapshot, take the memoized
// workload, and fetch each flow's memoized plan.
func (s *sharedSetup) setupTrial() error {
	cfg := experiments.DefaultBedConfig()
	cfg.Congestion = true
	cfg.FatTreeControl = true
	wcfg := cfg.WiringConfig(experiments.KindP4Update, 1)
	wcfg.Plans = s.plans
	_ = wiring.New(s.g, wcfg)
	for _, f := range s.flows {
		if _, err := controlplane.PreparePlanCached(s.plans, s.g, f.ID(), f.Old, f.New, 2, f.SizeK, nil); err != nil {
			return err
		}
	}
	return nil
}

// manyFlowsBench holds the shared state of the scale scenario: one
// frozen fat-tree K=8, its plan cache, and one pre-generated workload.
type manyFlowsBench struct {
	g     *topo.Topology
	plans *plancache.Cache
	flows []traffic.FlowSpec
}

func newManyFlowsBench(nFlows int) (*manyFlowsBench, error) {
	return newManyFlowsBenchK(8, nFlows)
}

// newManyFlowsBenchK is newManyFlowsBench on an arbitrary fat-tree
// radix (the sharded-engine benchmark runs K=16).
func newManyFlowsBenchK(k, nFlows int) (*manyFlowsBench, error) {
	g := topo.FatTree(k)
	g.Freeze()
	flows, err := traffic.ManyFlowWorkload(g, rand.New(rand.NewSource(1)), nFlows, topo.EdgeSwitches(g))
	if err != nil {
		return nil, err
	}
	return &manyFlowsBench{g: g, plans: plancache.New(g), flows: flows}, nil
}

// run executes one many-flow trial end to end — wire the bed, register
// and trigger every flow, run the simulation to quiescence — and returns
// the completion time of the last flow.
func (mb *manyFlowsBench) run(kind experiments.SystemKind, seed int64) (time.Duration, error) {
	return mb.runSharded(kind, seed, 1)
}

// runSharded is run under the sharded event engine (shards <= 1 stays
// on the sequential engine; the completion time is identical either
// way — that equality is asserted by the experiments package's
// sharded-equality tests, so the benchmark only measures wall clock).
func (mb *manyFlowsBench) runSharded(kind experiments.SystemKind, seed int64, shards int) (time.Duration, error) {
	cfg := experiments.DefaultBedConfig()
	cfg.FatTreeControl = true
	wcfg := cfg.WiringConfig(kind, seed)
	wcfg.Plans = mb.plans
	wcfg.Shards = shards
	bed := &experiments.Bed{Kind: kind, System: wiring.New(mb.g, wcfg)}
	if err := bed.Register(mb.flows); err != nil {
		return 0, err
	}
	updates := make([]*controlplane.UpdateStatus, 0, len(mb.flows))
	for _, f := range mb.flows {
		u, err := bed.Trigger(f.ID(), f.New)
		if err != nil {
			return 0, err
		}
		if u != nil {
			updates = append(updates, u)
		}
	}
	bed.Eng.Run()
	var last time.Duration
	for _, u := range updates {
		if !u.Done() {
			return 0, fmt.Errorf("%v: update did not complete", kind)
		}
		if u.Completed > last {
			last = u.Completed
		}
	}
	return last, nil
}
