package p4update_test

import (
	"fmt"
	"time"

	"p4update"
	"p4update/internal/controlplane"
	"p4update/internal/experiments"
	"p4update/internal/topo"
	"p4update/internal/traffic"
)

// runSyntheticOnce runs one forced-strategy update on the synthetic
// topology with straggler install delays and returns the completion time.
func runSyntheticOnce(strat string, oldP, newP []topo.NodeID, seed int64) (time.Duration, error) {
	s := p4update.StrategySL
	if strat == "DL" {
		s = p4update.StrategyDL
	}
	rngSeed := seed
	net := p4update.NewNetwork(topo.Synthetic(),
		p4update.WithSeed(rngSeed),
		p4update.WithStrategy(s),
	)
	// Straggler model: exponential install delays, seeded per run.
	eng := net.Fabric().Eng
	net.Fabric().SetInstallDelay(func() time.Duration {
		return time.Duration(eng.Rand().ExpFloat64() * float64(100*time.Millisecond))
	})
	f, err := net.AddFlow(oldP[0], oldP[len(oldP)-1], oldP, 1.0)
	if err != nil {
		return 0, err
	}
	u, err := net.UpdateFlow(f, newP)
	if err != nil {
		return 0, err
	}
	net.Run()
	if !u.Done() {
		return 0, fmt.Errorf("%s update did not complete", strat)
	}
	return u.Completed - u.Sent, nil
}

// runFig7TrialOnce executes exactly the trial body Fig7SingleFlow shards
// across the pool: a synthetic-topology bed with the straggler install
// model, one engineered single-flow update, run to quiescence.
func runFig7TrialOnce(kind experiments.SystemKind, seed int64) (time.Duration, error) {
	oldP, newP := topo.SyntheticPaths()
	spec := traffic.FlowSpec{Src: oldP[0], Dst: oldP[len(oldP)-1], Old: oldP, New: newP, SizeK: 1000}
	cfg := experiments.DefaultBedConfig()
	cfg.NodeDelayMean = 100 * time.Millisecond
	b := experiments.NewBed(kind, topo.Synthetic(), seed, cfg)
	if err := b.Register([]traffic.FlowSpec{spec}); err != nil {
		return 0, err
	}
	u, err := b.Trigger(spec.ID(), spec.New)
	if err != nil {
		return 0, err
	}
	b.Eng.Run()
	if u == nil || !u.Done() {
		return 0, fmt.Errorf("%v update did not complete", kind)
	}
	return u.Completed - u.Sent, nil
}

// planForBench exposes plan preparation to the benchmark without leaking
// internal imports into the benchmark file proper.
func planForBench(g *topo.Topology, oldP, newP []topo.NodeID, version uint32) (*controlplane.Plan, error) {
	return controlplane.PreparePlan(g, 1, oldP, newP, version, 1000, nil)
}
