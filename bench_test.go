package p4update_test

// One benchmark per table/figure of the paper's evaluation. The benches
// re-run the corresponding experiment and report the headline quantity as
// a custom metric (simulated milliseconds, ratios, or packet counts), so
// `go test -bench=. -benchmem` regenerates the whole evaluation.

import (
	"fmt"
	"testing"
	"time"

	"p4update/internal/experiments"
	"p4update/internal/topo"
)

// BenchmarkFig2InconsistentUpdates reproduces §4.1: out-of-order
// configuration deployment. Metrics: packets lost at the egress and
// duplicate (looped) receptions at v1.
func BenchmarkFig2InconsistentUpdates(b *testing.B) {
	for _, kind := range []experiments.SystemKind{
		experiments.KindP4Update, experiments.KindEZSegway,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			var lost, dup int
			for i := 0; i < b.N; i++ {
				r, err := experiments.Fig2(kind, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				lost += r.LostAtV4
				dup += r.DupAtV1
			}
			b.ReportMetric(float64(lost)/float64(b.N), "lost-pkts")
			b.ReportMetric(float64(dup)/float64(b.N), "looped-pkts")
		})
	}
}

// BenchmarkFig4FastForward reproduces §4.2: U3 completion while U2 is in
// flight. Metric: mean U3 completion in simulated milliseconds.
func BenchmarkFig4FastForward(b *testing.B) {
	r, err := experiments.Fig4(30, 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		mean time.Duration
	}{
		{"P4Update", r.P4Update.Mean()},
		{"ezSegway", r.EZSegway.Mean()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = c
			}
			b.ReportMetric(float64(c.mean)/float64(time.Millisecond), "sim-ms")
		})
	}
}

// benchFig7 runs one Fig. 7 subplot and reports each system's mean
// simulated update time.
func benchFig7(b *testing.B, run func(runs int, seed int64) (*experiments.Fig7Result, error)) {
	b.Helper()
	r, err := run(10, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range r.Series {
		s := s
		b.Run(s.System.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(s.CDF.Mean())/float64(time.Millisecond), "sim-ms")
			b.ReportMetric(float64(s.Failed), "failed-runs")
		})
	}
}

// BenchmarkFig7SingleFlow covers Fig. 7a/c/e (single flow, straggler
// install delays).
func BenchmarkFig7SingleFlow(b *testing.B) {
	cases := []struct {
		name string
		mk   func() *topo.Topology
	}{
		{"synthetic", topo.Synthetic},
		{"b4", topo.B4},
		{"internet2", topo.Internet2},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchFig7(b, func(runs int, seed int64) (*experiments.Fig7Result, error) {
				return experiments.Fig7SingleFlow(c.mk, c.name, runs, seed)
			})
		})
	}
}

// BenchmarkFig7MultiFlow covers Fig. 7b/d/f (multiple flows, congestion
// freedom, gravity traffic).
func BenchmarkFig7MultiFlow(b *testing.B) {
	cases := []struct {
		name    string
		mk      func() *topo.Topology
		fatTree bool
	}{
		{"fattree", func() *topo.Topology { return topo.FatTree(4) }, true},
		{"b4", topo.B4, false},
		{"internet2", topo.Internet2, false},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchFig7(b, func(runs int, seed int64) (*experiments.Fig7Result, error) {
				return experiments.Fig7MultiFlow(c.mk, c.name, c.fatTree, runs, seed)
			})
		})
	}
}

// BenchmarkFig8Preparation reproduces the control-plane preparation-time
// ratio (DL-P4Update ÷ ez-Segway) per topology, with and without
// congestion freedom.
func BenchmarkFig8Preparation(b *testing.B) {
	for _, congestion := range []bool{false, true} {
		name := "woCongestion"
		updates := 1000
		if congestion {
			name = "withCongestion"
			updates = 100
		}
		b.Run(name, func(b *testing.B) {
			r, err := experiments.Fig8(congestion, updates, 15, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range r.Rows {
				row := row
				b.Run(row.Topo, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
					}
					b.ReportMetric(row.Ratio, "prep-ratio")
				})
			}
		})
	}
}

// BenchmarkAblationUpdateType quantifies the §7.5 trade-off the paper
// discusses: dual layer wins on segmented updates (Fig. 1 scenario),
// single layer on small forward-only detours.
func BenchmarkAblationUpdateType(b *testing.B) {
	scenarios := []struct {
		name string
		old  []topo.NodeID
		new  []topo.NodeID
	}{
		{"segmented", []topo.NodeID{0, 4, 2, 7}, []topo.NodeID{0, 1, 2, 3, 4, 5, 6, 7}},
		{"smallDetour", []topo.NodeID{0, 4, 2, 7}, []topo.NodeID{0, 4, 5, 6, 7}},
	}
	for _, sc := range scenarios {
		for _, strat := range []string{"SL", "DL"} {
			strat := strat
			sc := sc
			b.Run(sc.name+"/"+strat, func(b *testing.B) {
				var total time.Duration
				runs := 10
				for r := 0; r < runs; r++ {
					d, err := runSyntheticOnce(strat, sc.old, sc.new, int64(r+1))
					if err != nil {
						b.Fatal(err)
					}
					total += d
				}
				for i := 0; i < b.N; i++ {
				}
				b.ReportMetric(float64(total/time.Duration(runs))/float64(time.Millisecond), "sim-ms")
			})
		}
	}
}

// BenchmarkFig7Trial measures one Fig. 7a inner-loop trial end to end —
// wire a synthetic-topology bed, trigger the engineered single-flow
// update, run the simulation to quiescence — and reports allocations.
// This is the unit of work the parallel runner shards, so its allocs/op
// is the GC pressure of the whole evaluation.
func BenchmarkFig7Trial(b *testing.B) {
	for _, kind := range []experiments.SystemKind{
		experiments.KindP4Update, experiments.KindEZSegway,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := runFig7TrialOnce(kind, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if d <= 0 {
					b.Fatal("update did not complete")
				}
			}
		})
	}
}

// BenchmarkTrialSetup isolates the per-trial construction cost the
// shared-snapshot + plan-cache path removes from the fig7 grid:
// "perTrial" rebuilds the topology (with its private path oracle), the
// wiring and the update plan from scratch — the pre-cache inner loop —
// while "shared" wires a bed over one frozen snapshot and fetches the
// memoized plan, which is all a trial pays now.
func BenchmarkTrialSetup(b *testing.B) {
	b.Run("perTrial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := setupTrialFresh(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		sh, err := newSharedSetup(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sh.setupTrial(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkManyFlowsTrial runs one many-flow scale trial — 500
// simultaneous flow updates on a fat-tree K=8 over a shared frozen
// snapshot and warm plan cache — and reports allocations. This is the
// trial body whose switch-state churn the dense per-switch slices are
// meant to flatten.
func BenchmarkManyFlowsTrial(b *testing.B) {
	mb, err := newManyFlowsBench(500)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []experiments.SystemKind{
		experiments.KindP4Update, experiments.KindEZSegway,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := mb.run(kind, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				if d <= 0 {
					b.Fatal("no update completed")
				}
			}
		})
	}
}

// BenchmarkPreparePlan measures the raw control-plane preparation
// throughput (the per-update cost behind Fig. 8a).
func BenchmarkPreparePlan(b *testing.B) {
	g := topo.Synthetic()
	oldP, newP := topo.SyntheticPaths()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planForBench(g, oldP, newP, uint32(i+2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManyFlowsSharded measures the sharded event engine on the
// heaviest scale scenario in the evaluation: 500 simultaneous flow
// updates on a fat-tree K=16 (320 switches), executed sequentially
// (shards=1) and across 2/4/8 region workers. The trial results are
// byte-identical across shard counts (asserted by the experiments
// package's sharded-equality tests); this benchmark isolates the
// wall-clock cost of the window/barrier runtime. Results are tracked
// in BENCH_sharded_engine.json.
func BenchmarkManyFlowsSharded(b *testing.B) {
	mb, err := newManyFlowsBenchK(16, 500)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := mb.runSharded(experiments.KindP4Update, int64(i+1), shards)
				if err != nil {
					b.Fatal(err)
				}
				if d <= 0 {
					b.Fatal("no update completed")
				}
			}
		})
	}
}
