// Inconsistent updates: the §4.1 scenario. A controller with an outdated
// network view deploys configuration (c) while configuration (b) is still
// in transit. Without verification (ez-Segway) the data plane forms a
// forwarding loop and drops packets on TTL expiry; P4Update's switches
// verify locally, fast-forward to the newest consistent version, and
// deliver every packet exactly once.
//
//	go run ./examples/inconsistent-updates
package main

import (
	"fmt"
	"log"

	"p4update/internal/experiments"
)

func main() {
	fmt.Println("Scenario (paper §4.1 / Fig. 2):")
	fmt.Println("  flow v0→v4 at 125 pps, TTL 64")
	fmt.Println("  t=200ms: configuration (c) deploys")
	fmt.Println("  t=600ms: the delayed configuration (b) finally arrives")
	fmt.Println()

	for _, kind := range []experiments.SystemKind{
		experiments.KindEZSegway, experiments.KindP4Update,
	} {
		r, err := experiments.Fig2(kind, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r)
		if r.DupAtV1 > 0 {
			fmt.Printf("  -> %s trapped packets in the v1,v2,v3 loop; %d were lost to TTL expiry\n",
				r.System, r.LostAtV4)
		} else {
			fmt.Printf("  -> %s rejected the out-of-order deployment and stayed consistent\n",
				r.System)
		}
		fmt.Println()
	}
}
