// Destination routing: the §11 extension. Instead of per-path flows, all
// traffic toward one destination follows a spanning tree rooted there; a
// verified single-layer update migrates the whole tree at once — the
// notification fans out from the root through per-switch clone groups,
// and every node locally checks that its new parent is one hop closer.
//
//	go run ./examples/destination-routing
package main

import (
	"fmt"
	"log"
	"time"

	"p4update"
)

func main() {
	g := p4update.Internet2()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(5),
		p4update.WithInstallDelay(func() time.Duration { return 2 * time.Millisecond }),
	)

	root, _ := g.NodeByName("Chicago")
	base := p4update.ShortestPathTree(g, root)
	f, err := net.AddDestinationTree(root, base, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("destination tree toward %s installed (%d nodes)\n",
		g.Node(root).Name, g.NumNodes())

	// Steer three west-coast sites off their shortest branches (e.g. for
	// maintenance on the Seattle—Chicago span).
	next := p4update.Tree{}
	for n, p := range base {
		next[n] = p
	}
	seattle, _ := g.NodeByName("Seattle")
	saltlake, _ := g.NodeByName("SaltLake")
	denver, _ := g.NodeByName("Denver")
	kansas, _ := g.NodeByName("KansasCity")
	next[seattle] = saltlake
	next[saltlake] = denver
	next[denver] = kansas

	u, err := net.UpdateDestinationTree(f, next)
	if err != nil {
		log.Fatal(err)
	}
	net.Run()
	if !u.Done() {
		log.Fatal("tree update did not complete")
	}
	fmt.Printf("tree migrated in %v (version %d)\n", u.Completed-u.Sent, u.Version)

	for _, name := range []string{"Seattle", "SaltLake", "Denver", "LosAngeles"} {
		n, _ := g.NodeByName(name)
		path, delivered := net.Forwarding(f, n)
		names := make([]string, len(path))
		for i, v := range path {
			names[i] = g.Node(v).Name
		}
		fmt.Printf("  %-11s -> %v (delivered=%v)\n", name, names, delivered)
	}
}
