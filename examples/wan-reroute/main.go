// WAN reroute: congestion-aware multi-flow updates on the B4 topology.
// A flow's move onto the Oklahoma—Atlanta link lacks capacity until
// another flow vacates it; P4Update parks the move in the data plane
// (§7.4), the vacating flow's stale reservation is released by rule
// cleanup (§11), and the parked move resumes — no controller involvement.
//
//	go run ./examples/wan-reroute
package main

import (
	"fmt"
	"log"
	"time"

	"p4update"
)

func main() {
	g := p4update.B4()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(7),
		p4update.WithCongestionFreedom(),
		p4update.WithInstallDelay(func() time.Duration { return time.Millisecond }),
	)

	name := func(id p4update.NodeID) string { return g.Node(id).Name }
	byName := func(n string) p4update.NodeID {
		id, ok := g.NodeByName(n)
		if !ok {
			log.Fatalf("no node %s", n)
		}
		return id
	}
	or, ca, io, ok, at := byName("Oregon"), byName("California"),
		byName("Iowa"), byName("Oklahoma"), byName("Atlanta")
	tw, sg, be, vi := byName("Taiwan"), byName("Singapore"),
		byName("Belgium"), byName("Virginia")

	// f1 currently takes the long way around the planet (500 Mbps); the
	// direct corridor it wants runs through Oklahoma—Atlanta.
	f1, err := net.AddFlow(or, at, []p4update.NodeID{or, tw, sg, be, vi, at}, 500)
	if err != nil {
		log.Fatal(err)
	}
	// f2 occupies Oklahoma—Atlanta with 600 Mbps (the link carries 1000).
	f2, err := net.AddFlow(ca, at, []p4update.NodeID{ca, ok, at}, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f1 (%d): %s->%s via the Pacific ring, 500 Mbps\n", f1, name(or), name(at))
	fmt.Printf("f2 (%d): %s->%s via Oklahoma, 600 Mbps\n", f2, name(ca), name(at))
	fmt.Println()

	// Both updates launch together. f1 wants Oklahoma—Atlanta (500+600 >
	// 1000: blocked); f2 moves off it onto Iowa—Atlanta. When f2's old
	// rule at Oklahoma is cleaned up, the reservation drops and f1's
	// parked move resumes.
	u1, err := net.UpdateFlow(f1, []p4update.NodeID{or, ca, ok, at})
	if err != nil {
		log.Fatal(err)
	}
	u2, err := net.UpdateFlow(f2, []p4update.NodeID{ca, io, at})
	if err != nil {
		log.Fatal(err)
	}

	net.Run()

	for _, u := range []*p4update.UpdateStatus{u2, u1} {
		if !u.Done() {
			log.Fatalf("flow %d update did not complete", u.Flow)
		}
		fmt.Printf("flow %d converged in %v\n", u.Flow, u.Completed-u.Sent)
	}
	if u1.Completed <= u2.Completed {
		log.Fatal("expected f1 to finish after f2 freed the link")
	}
	fmt.Println()
	for _, f := range []p4update.FlowID{f1, f2} {
		rec, _ := net.Controller().Flow(f)
		path, delivered := net.Forwarding(f, rec.Src)
		names := make([]string, len(path))
		for i, n := range path {
			names[i] = name(n)
		}
		fmt.Printf("flow %d now: %v (delivered=%v)\n", f, names, delivered)
	}
	st := net.Stats()
	fmt.Printf("\nscheduler work: %d parked-message resubmissions, %d stale rules cleaned\n",
		st.Resubmissions, st.RulesCleaned)
	sw := net.Switch(ok)
	fmt.Printf("Oklahoma->Atlanta reserved: %d kbps of %d\n",
		sw.ReservedK(g.PortTo(ok, at)), sw.CapacityK(g.PortTo(ok, at)))
}
