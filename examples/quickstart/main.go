// Quickstart: perform one locally verified consistent route update on the
// paper's Fig-1 example network and watch it converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"p4update"
)

func main() {
	// The Fig-1 topology: eight switches v0..v7, 20 ms links. The flow
	// initially runs v0→v4→v2→v7 and is rerouted onto the long path
	// v0→v1→...→v7, which requires dual-layer segmentation (the middle
	// segment is backward and must wait for its dependency).
	g := p4update.Synthetic()
	net := p4update.NewNetwork(g,
		p4update.WithSeed(42),
		p4update.WithInstallDelay(func() time.Duration { return 2 * time.Millisecond }),
	)

	oldPath, newPath := p4update.SyntheticPaths()
	flow, err := net.AddFlow(0, 7, oldPath, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %d installed along %v\n", flow, oldPath)

	status, err := net.UpdateFlow(flow, newPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update v%d triggered (%v plan, %d segments)\n",
		status.Version, status.Plan.Type, len(status.Plan.Seg.Segments))
	for i, s := range status.Plan.Seg.Segments {
		kind := "backward (waits for downstream)"
		if s.Forward {
			kind = "forward (updates immediately)"
		}
		fmt.Printf("  segment %d: %v — %s\n", i, s.Nodes, kind)
	}

	net.Run()

	if !status.Done() {
		log.Fatal("update did not complete")
	}
	fmt.Printf("update confirmed after %v (in-network coordination + probe)\n",
		status.Completed-status.Sent)
	path, delivered := net.Forwarding(flow, 0)
	fmt.Printf("forwarding now: %v (delivered=%v)\n", path, delivered)

	stats := net.Stats()
	fmt.Printf("data plane: %d rules applied, %d UNMs exchanged, %d alarms\n",
		stats.RulesApplied, stats.UNMReceived, stats.AlarmsSent)
}
